// Benchmarks regenerating every table and figure of the paper (one bench
// per experiment; see DESIGN.md's per-experiment index), plus kernel and
// runtime microbenchmarks. Run with:
//
//	go test -bench=. -benchmem
package micronets

import (
	"math/rand"
	"testing"

	"micronets/internal/experiments"
	"micronets/internal/graph"
	"micronets/internal/kernels"
	"micronets/internal/mcu"
	"micronets/internal/tflm"
	"micronets/internal/zoo"
)

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table1()) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFigure2MemoryMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2("MicroNet-KWS-L", 42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3LayerCharacterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(20, 42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4LatencyLinearity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure4(40, 42)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			if s.R2 < 0.9 {
				b.Fatalf("linearity regressed: %s/%s r2=%.3f", s.Backbone, s.Device, s.R2)
			}
		}
	}
}

func BenchmarkFigure5PowerEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(60, 42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7KWSPareto(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RenderPareto("kws", 42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8VWWPareto(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RenderPareto("vww", 42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9PowerTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10SubByte(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure10(42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11MCUNetComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure11(42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2FourBitKWS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3AnomalyDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4FullResults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5Architectures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table5()) == 0 {
			b.Fatal("empty")
		}
	}
}

// --- runtime microbenchmarks -------------------------------------------

func loweredModel(b *testing.B, name string) *graph.Model {
	b.Helper()
	e, err := zoo.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	m, err := graph.FromSpec(e.Spec, rand.New(rand.NewSource(1)), graph.LowerOptions{AppendSoftmax: true})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchInvoke(b *testing.B, name string, eng kernels.Engine) {
	b.Helper()
	m := loweredModel(b, name)
	ip, err := tflm.NewInterpreterWithEngine(m, 0, eng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ip.Invoke(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvoke* compare the naive direct-convolution kernels
// (kernels.Reference) against the parallel im2col+GEMM engine
// (kernels.Gemm) on KWS- and VWW-shaped models. The acceptance bar for
// the engine is ≥2× on the VWW model:
//
//	go test -bench=BenchmarkInvoke
func BenchmarkInvokeKWSSReference(b *testing.B) { benchInvoke(b, "MicroNet-KWS-S", kernels.Reference) }
func BenchmarkInvokeKWSSParallel(b *testing.B)  { benchInvoke(b, "MicroNet-KWS-S", kernels.Gemm) }

// BenchmarkInvokeKWSSProfiledHook is the same invoke with a per-op timer
// installed. Compare against BenchmarkInvokeKWSSParallel to bound the
// profiling-hook overhead; with no hook set, Invoke takes the untimed
// path (a single nil check), so the disabled cost is ~0.
func BenchmarkInvokeKWSSProfiledHook(b *testing.B) {
	m := loweredModel(b, "MicroNet-KWS-S")
	ip, err := tflm.NewInterpreterWithEngine(m, 0, kernels.Gemm)
	if err != nil {
		b.Fatal(err)
	}
	var sink int64
	ip.SetOpTimer(func(index int, kind graph.OpKind, name string, ns int64) { sink += ns })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ip.Invoke(); err != nil {
			b.Fatal(err)
		}
	}
	if b.N > 0 && sink < 0 {
		b.Fatal("impossible negative time")
	}
}
func BenchmarkInvokeKWSLReference(b *testing.B) { benchInvoke(b, "MicroNet-KWS-L", kernels.Reference) }
func BenchmarkInvokeKWSLParallel(b *testing.B)  { benchInvoke(b, "MicroNet-KWS-L", kernels.Gemm) }
func BenchmarkInvokeVWWReference(b *testing.B)  { benchInvoke(b, "MicroNet-VWW-1", kernels.Reference) }
func BenchmarkInvokeVWWParallel(b *testing.B)   { benchInvoke(b, "MicroNet-VWW-1", kernels.Gemm) }

// BenchmarkInvokeBatchKWSS measures the batched API, which amortizes
// plan setup and input copies across a batch of 16.
func BenchmarkInvokeBatchKWSS(b *testing.B) {
	m := loweredModel(b, "MicroNet-KWS-S")
	ip, err := tflm.NewInterpreter(m, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	batch := make([][]int8, 16)
	for i := range batch {
		batch[i] = make([]int8, len(ip.Input()))
		for j := range batch[i] {
			batch[i][j] = int8(rng.Intn(256) - 128)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ip.InvokeBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemoryPlannerKWSL(b *testing.B) {
	m := loweredModel(b, "MicroNet-KWS-L")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tflm.PlanMemory(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLatencyModelVWW1(b *testing.B) {
	m := loweredModel(b, "MicroNet-VWW-1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if mcu.Latency(m, mcu.F746ZG) <= 0 {
			b.Fatal("bad latency")
		}
	}
}

func BenchmarkSerializeKWSM(b *testing.B) {
	m := loweredModel(b, "MicroNet-KWS-M")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if graph.SerializedSize(m) <= 0 {
			b.Fatal("bad size")
		}
	}
}
