#!/usr/bin/env bash
# serve_smoke.sh — build cmd/serve, boot it in the background, and prove
# one real /v2 round-trip: readiness, model metadata, and an infer POST
# whose response carries an argmax class. Also runs the two-stage NAS
# harness first (search_smoke.sh: 64 proxy trials + trained finalist
# re-rank) and proves that an exported frontier model is servable through
# the same /v2 protocol. Used by `make serve-smoke` and the CI
# serve-smoke job (keep the two in sync by editing only this file).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:${SERVE_SMOKE_PORT:-8151}"
WORK="$(mktemp -d)"
BIN="$WORK/micronets-serve"
MODEL="MicroNet-KWS-S"

# --- Two-stage NAS search (64 proxy trials + trained finalist re-rank)
# and its BENCH_search.json assertions live in search_smoke.sh so `make
# search-smoke` and this script can't drift.
./scripts/search_smoke.sh "$WORK"
NAS_MODEL=$(jq -r '.specs[0].Name' "$WORK/frontier.json")
echo "search OK: exported frontier model $NAS_MODEL"

go build -o "$BIN" ./cmd/serve

"$BIN" -addr "$ADDR" -models "$MODEL,DSCNN-S,$NAS_MODEL" -specs "$WORK/frontier.json" -log json &
PID=$!
cleanup() { kill "$PID" 2>/dev/null || true; wait "$PID" 2>/dev/null || true; }
trap cleanup EXIT

for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/v2/health/ready" >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
curl -fsS "http://$ADDR/v2/health/ready" | jq -e '.ready == true' >/dev/null
echo "ready OK"

curl -fsS "http://$ADDR/v2/models" | jq -e '.models | length == 3' >/dev/null
curl -fsS "http://$ADDR/v2/models/$MODEL" | jq -e '.inputs[0].shape == [49,10,1]' >/dev/null
echo "metadata OK"

PAYLOAD=$(jq -n '{inputs:[{name:"input",shape:[49,10,1],datatype:"FP32",data:[range(490)|0.25]}]}')
RESP=$(curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "$PAYLOAD" "http://$ADDR/v2/models/$MODEL/infer")
echo "$RESP" | jq -e '.outputs[] | select(.name=="class") | .data | length == 1' >/dev/null
echo "$RESP" | jq -e '.outputs[] | select(.name=="scores") | .data | length == 12' >/dev/null
echo "infer OK: class $(echo "$RESP" | jq -c '[.outputs[] | select(.name=="class") | .data[0]]') score $(echo "$RESP" | jq -c '[.outputs[] | select(.name=="score") | .data[0]]')"

# The searched architecture serves through the identical protocol.
NAS_RESP=$(curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "$PAYLOAD" "http://$ADDR/v2/models/$NAS_MODEL/infer")
echo "$NAS_RESP" | jq -e '.outputs[] | select(.name=="class") | .data | length == 1' >/dev/null
echo "$NAS_RESP" | jq -e --arg m "$NAS_MODEL" '.model_name == $m' >/dev/null
echo "NAS infer OK: $NAS_MODEL answered class $(echo "$NAS_RESP" | jq -c '[.outputs[] | select(.name=="class") | .data[0]]')"

curl -fsS "http://$ADDR/metrics" | grep -q 'micronets_serve_requests_total{model="MicroNet-KWS-S"} 1'
echo "metrics OK"

# Graceful drain: SIGTERM must flip readiness and exit zero.
kill -TERM "$PID"
wait "$PID"
echo "drain OK"
trap - EXIT
echo "serve smoke: all checks passed"
