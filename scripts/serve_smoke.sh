#!/usr/bin/env bash
# serve_smoke.sh — build cmd/serve, boot it in the background under a
# device-class RAM budget, and prove the full serving story end to end:
# readiness, model metadata, a real infer POST, and the model-repository
# control plane — a frontier spec exported by the NAS search (run first
# via search_smoke.sh) is hot-loaded through POST /v2/repository/.../load
# and served WITHOUT any restart, an over-budget load is rejected with a
# structured 409, and an unload drains the model back out of the index.
# Then the inference-graph router: the cascade cmd/search exported is
# registered and served, deterministic cascades prove gate-hit and
# escalation paths (with /metrics counters to match), a dangling model
# ref is a structured 4xx, and unloading a graph-referenced model 409s.
# Used by `make serve-smoke` and the CI serve-smoke job (keep the two in
# sync by editing only this file).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:${SERVE_SMOKE_PORT:-8151}"
WORK="$(mktemp -d)"
BIN="$WORK/micronets-serve"
MODEL="MicroNet-KWS-S"

# --- Two-stage NAS search (64 proxy trials + trained finalist re-rank)
# and its BENCH_search.json assertions live in search_smoke.sh so `make
# search-smoke` and this script can't drift.
./scripts/search_smoke.sh "$WORK"
NAS_MODEL=$(jq -r '.specs[0].Name' "$WORK/frontier.json")
echo "search OK: exported frontier model $NAS_MODEL"

go build -o "$BIN" ./cmd/serve

# Boot WITHOUT the searched model: it arrives later through the admin
# API. Pool sizes and max batch are planned per model from
# tflm.PlanMemoryBatch; a version's reservation is its shared prepared
# weights plus the pooled arenas, so the budget is sized to hold the boot
# pair, the NAS model, and the frontier fan-out below — but NOT
# MicroNet-AD-L (353KB arena at batch 1 plus weights, asserted as a 409).
"$BIN" -addr "$ADDR" -models "$MODEL,DSCNN-S" -ram-budget 768KB -pool 1 -max-batch 4 -log json &
PID=$!
cleanup() { kill "$PID" 2>/dev/null || true; wait "$PID" 2>/dev/null || true; }
trap cleanup EXIT

for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/v2/health/ready" >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
curl -fsS "http://$ADDR/v2/health/ready" | jq -e '.ready == true' >/dev/null
echo "ready OK"

curl -fsS "http://$ADDR/v2/models" | jq -e '.models | length == 2' >/dev/null
curl -fsS "http://$ADDR/v2/models/$MODEL" | jq -e '.inputs[0].shape == [49,10,1]' >/dev/null
echo "metadata OK"

# The repository index carries per-version state plus the budget-planned
# RAM/flash columns.
INDEX=$(curl -fsS "http://$ADDR/v2/repository/index")
echo "$INDEX" | jq -e '.models | length == 2' >/dev/null
echo "$INDEX" | jq -e --arg m "$MODEL" \
    '.models[] | select(.name == $m) | .state == "READY" and .planned_ram_bytes > 0 and .flash_bytes > 0 and .pool_size >= 1' >/dev/null
echo "$INDEX" | jq -e '.ram_budget_bytes == 786432 and .ram_planned_bytes > 0 and .ram_planned_bytes <= .ram_budget_bytes' >/dev/null
# Every row's reservation must equal shared weights + pool x arena.
echo "$INDEX" | jq -e '[.models[] | .planned_ram_bytes == .shared_weight_bytes + .pool_size * .arena_bytes_per_replica] | all' >/dev/null
echo "repository index OK: $(echo "$INDEX" | jq -c '[.models[] | {name, state, pool_size, max_batch}]')"

PAYLOAD=$(jq -n '{inputs:[{name:"input",shape:[49,10,1],datatype:"FP32",data:[range(490)|0.25]}]}')
RESP=$(curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "$PAYLOAD" "http://$ADDR/v2/models/$MODEL/infer")
echo "$RESP" | jq -e '.outputs[] | select(.name=="class") | .data | length == 1' >/dev/null
echo "$RESP" | jq -e '.outputs[] | select(.name=="scores") | .data | length == 12' >/dev/null
echo "infer OK: class $(echo "$RESP" | jq -c '[.outputs[] | select(.name=="class") | .data[0]]') score $(echo "$RESP" | jq -c '[.outputs[] | select(.name=="score") | .data[0]]')"

# --- Per-op profile: measured wall time joined against the mcu cost
# model. The shares must be a distribution and the linear fit must be
# reported — the live check of the paper's §3 linearity claim.
PROFILE=$(curl -fsS "http://$ADDR/v2/models/$MODEL/profile?runs=3")
echo "$PROFILE" | jq -e '.version == 1 and (.ops | length > 4)' >/dev/null
echo "$PROFILE" | jq -e '[.ops[].measured_share] | add | . > 0.99 and . < 1.01' >/dev/null
echo "$PROFILE" | jq -e '.r2 > 0 and .ns_per_cycle > 0' >/dev/null
echo "profile OK: r2=$(echo "$PROFILE" | jq -r '.r2') ns/cycle=$(echo "$PROFILE" | jq -r '.ns_per_cycle') over $(echo "$PROFILE" | jq -r '.ops | length') ops"

# --- Request tracing: every response carries a trace id; opting in with
# X-Micronets-Trace returns the span tree (request -> queue/invoke).
HDRS=$(curl -fsS -D - -o /dev/null -X POST -H 'Content-Type: application/json' \
    -H 'X-Micronets-Trace: 1' -d "$PAYLOAD" "http://$ADDR/v2/models/$MODEL/infer")
echo "$HDRS" | grep -qi '^x-micronets-trace-id: [0-9a-f]\{16\}'
echo "$HDRS" | grep -i '^x-micronets-trace:' | grep -q '"name":"invoke"'
echo "trace OK: span tree returned on opt-in"

# --- Hot-load the searched model through the control plane: the running
# server picks it up from the exported spec file, plans it against the
# budget, and serves it — the acceptance criterion's "no restart" path.
curl -fsS "http://$ADDR/v2/models/$NAS_MODEL" -o /dev/null -w '' 2>/dev/null \
    && { echo "NAS model served before load?"; exit 1; } || true
LOAD=$(curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "{\"spec_file\": \"$WORK/frontier.json\"}" \
    "http://$ADDR/v2/repository/models/$NAS_MODEL/load")
echo "$LOAD" | jq -e '.state == "READY" and .version == 1 and .planned_ram_bytes > 0' >/dev/null
curl -fsS "http://$ADDR/v2/repository/index" | jq -e --arg m "$NAS_MODEL" \
    '.models[] | select(.name == $m) | .state == "READY"' >/dev/null
NAS_RESP=$(curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "$PAYLOAD" "http://$ADDR/v2/models/$NAS_MODEL/infer")
echo "$NAS_RESP" | jq -e '.outputs[] | select(.name=="class") | .data | length == 1' >/dev/null
echo "$NAS_RESP" | jq -e --arg m "$NAS_MODEL" '.model_name == $m' >/dev/null
echo "hot-load OK: $NAS_MODEL served with zero restarts (class $(echo "$NAS_RESP" | jq -c '[.outputs[] | select(.name=="class") | .data[0]]'))"

# --- An over-budget load must be a structured 409, not an OOM: the AD-L
# weights + arena (353KB at batch 1) exceed whatever the budget has left.
CONFLICT_CODE=$(curl -s -o "$WORK/conflict.json" -w '%{http_code}' -X POST \
    "http://$ADDR/v2/repository/models/MicroNet-AD-L/load")
test "$CONFLICT_CODE" = "409"
jq -e '.code == "ram_budget_exceeded" and .needed_bytes > 0 and .budget_bytes == 786432' "$WORK/conflict.json" >/dev/null
echo "budget rejection OK: $(jq -c '{code, needed_bytes, budget_bytes, planned_bytes}' "$WORK/conflict.json")"

# --- Unload drains DSCNN-S out of the index and the data path.
curl -fsS -X POST "http://$ADDR/v2/repository/models/DSCNN-S/unload" | jq -e '.state == "DRAINING"' >/dev/null
for _ in $(seq 1 100); do
    if ! curl -fsS "http://$ADDR/v2/repository/index" | jq -e '.models[] | select(.name == "DSCNN-S")' >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
curl -fsS "http://$ADDR/v2/repository/index" | jq -e '[.models[] | select(.name == "DSCNN-S")] | length == 0' >/dev/null
UNLOADED_CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/v2/models/DSCNN-S")
test "$UNLOADED_CODE" = "404"
echo "unload OK: DSCNN-S drained out of the index"

# --- Inference graphs: register the cascade cmd/search exported, plus
# two hand-made cascades whose thresholds force both outcomes, and prove
# the router end to end — infer, counters, validation 4xx, unload guard.

# The exported cascade's stages are frontier models; load every exported
# spec so the graph validates (loads are idempotent).
for m in $(jq -r '.specs[].Name' "$WORK/frontier.json"); do
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d "{\"spec_file\": \"$WORK/frontier.json\"}" \
        "http://$ADDR/v2/repository/models/$m/load" >/dev/null
done
CASCADE_NAME=$(jq -r '.name' "$WORK/cascade.json")
curl -fsS -X PUT -H 'Content-Type: application/json' \
    -d @"$WORK/cascade.json" "http://$ADDR/v2/graphs/$CASCADE_NAME" \
    | jq -e '.revision == 1 and (.models | length == 2)' >/dev/null
GRESP=$(curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "$PAYLOAD" "http://$ADDR/v2/graphs/$CASCADE_NAME/infer")
echo "$GRESP" | jq -e '.outputs[] | select(.name=="class") | .data | length == 1' >/dev/null
echo "$GRESP" | jq -e '.served_by | length == 1' >/dev/null
echo "graph OK: searched cascade $CASCADE_NAME served by $(echo "$GRESP" | jq -c '.served_by[0]') (escalations $(echo "$GRESP" | jq -c '.escalations[0]'))"

# cas-lo (threshold 0) must always answer at the gate; cas-hi
# (threshold 1.0) can never clear a quantized softmax (max 255/256), so
# it must always escalate — deterministic counters for /metrics below.
jq -n --arg gate "$NAS_MODEL" --arg big "$MODEL" \
    '{root: {kind: "cascade", threshold: 0, children: [
        {kind: "model", model: $gate}, {kind: "model", model: $big}]}}' |
    curl -fsS -X PUT -d @- "http://$ADDR/v2/graphs/cas-lo" | jq -e '.revision == 1' >/dev/null
jq -n --arg gate "$NAS_MODEL" --arg big "$MODEL" \
    '{root: {kind: "cascade", threshold: 1.0, children: [
        {kind: "model", model: $gate}, {kind: "model", model: $big}]}}' |
    curl -fsS -X PUT -d @- "http://$ADDR/v2/graphs/cas-hi" | jq -e '.revision == 1' >/dev/null
curl -fsS -X POST -d "$PAYLOAD" "http://$ADDR/v2/graphs/cas-lo/infer" \
    | jq -e --arg m "$NAS_MODEL" '.served_by[0] == $m and .escalations[0] == 0' >/dev/null
curl -fsS -X POST -d "$PAYLOAD" "http://$ADDR/v2/graphs/cas-hi/infer" \
    | jq -e --arg m "$MODEL" '.served_by[0] == $m and .escalations[0] == 1' >/dev/null
curl -fsS "http://$ADDR/v2/graphs/cas-lo" \
    | jq -e '.stats.nodes[] | select(.kind=="cascade") | .gate_hits == 1 and (.escalations // 0) == 0' >/dev/null
echo "cascade routing OK: cas-lo gates, cas-hi escalates to $MODEL"

# A spec naming an unloaded model is a structured 404 at registration,
# not a 5xx at infer time.
BADGRAPH_CODE=$(jq -n '{root: {kind: "model", model: "no-such-model"}}' |
    curl -s -o "$WORK/badgraph.json" -w '%{http_code}' -X PUT -d @- "http://$ADDR/v2/graphs/bad")
test "$BADGRAPH_CODE" = "404"
jq -e '.code == "unknown_model" and .model == "no-such-model"' "$WORK/badgraph.json" >/dev/null
echo "graph validation OK: dangling model ref rejected with unknown_model"

# Unloading a model a graph references must 409 with the holders listed.
GUARD_CODE=$(curl -s -o "$WORK/guard.json" -w '%{http_code}' -X POST \
    "http://$ADDR/v2/repository/models/$MODEL/unload")
test "$GUARD_CODE" = "409"
jq -e '.code == "model_referenced" and (.graphs | index("cas-lo") != null)' "$WORK/guard.json" >/dev/null
curl -fsS -X POST -d "$PAYLOAD" "http://$ADDR/v2/models/$MODEL/infer" >/dev/null
echo "unload guard OK: $MODEL kept serving behind $(jq -c '.graphs' "$WORK/guard.json")"

# --- Metrics expose the repository state: per-model version/pool/arena
# gauges plus the budget pair, and the graph router's counter families
# (the deterministic cascades above guarantee non-zero gate-hit and
# escalation counts).
METRICS=$(curl -fsS "http://$ADDR/metrics")
echo "$METRICS" | grep -q 'micronets_serve_requests_total{model="MicroNet-KWS-S"} [1-9]'
echo "$METRICS" | grep -q "micronets_serve_model_versions{model=\"$NAS_MODEL\"} 1"
echo "$METRICS" | grep -q "micronets_serve_pool_size{model=\"$NAS_MODEL\"} "
echo "$METRICS" | grep -q "micronets_serve_planned_arena_bytes{model=\"$NAS_MODEL\"} "
echo "$METRICS" | grep -q 'micronets_serve_ram_budget_bytes 786432'
echo "$METRICS" | grep -q 'micronets_serve_shared_weight_bytes{model="'"$MODEL"'"}'
echo "$METRICS" | grep -q 'micronets_serve_ram_planned_bytes '
echo "$METRICS" | grep -q 'micronets_graphs_registered 3'
echo "$METRICS" | grep -q 'micronets_graph_requests_total{graph="cas-lo"} 1'
echo "$METRICS" | grep -q "micronets_graph_requests_total{graph=\"$CASCADE_NAME\"} 1"
echo "$METRICS" | grep -q 'micronets_graph_gate_hits_total{graph="cas-lo",node="root"} 1'
echo "$METRICS" | grep -q 'micronets_graph_escalations_total{graph="cas-hi",node="root"} 1'
# Latency histograms: cumulative buckets ending in le="+Inf", for the
# per-model serve families (end-to-end, queue wait, invoke) and the
# per-graph family — populated by the loadgen traffic above.
echo "$METRICS" | grep -q "micronets_serve_request_latency_seconds_bucket{model=\"$MODEL\",le=\"+Inf\"} "
echo "$METRICS" | grep -q "micronets_serve_queue_wait_seconds_bucket{model=\"$MODEL\",le=\"+Inf\"} "
echo "$METRICS" | grep -q "micronets_serve_invoke_seconds_bucket{model=\"$MODEL\",le=\"+Inf\"} "
echo "$METRICS" | grep -q 'micronets_graph_request_latency_seconds_bucket{graph="cas-lo",le="+Inf"} '
echo "$METRICS" | grep -q "micronets_serve_request_latency_seconds_count{model=\"$MODEL\"} "
echo "metrics OK (incl. graph gate-hit/escalation counters and latency histograms)"

# --- Open-loop load: cmd/loadgen drives the booted server (one model
# target, one graph target), writes BENCH_serve.json, and gates on the
# p99 SLO itself (exit 1 on breach). Runs after the exact-count /metrics
# assertions above, which its traffic would perturb. The generous
# 2s/1500ms settings keep shared CI runners from flaking; the gate still
# catches pathological regressions.
go run ./cmd/loadgen -addr "http://$ADDR" \
    -targets "model:$MODEL,graph:cas-lo" -rps 25 -duration 2s \
    -slo-p99 1500 -out BENCH_serve.json
jq -e '.targets | length == 2' BENCH_serve.json >/dev/null
jq -e '[.targets[] | select(.completed > 0 and .errors == 0 and .p99_ms > 0)] | length == 2' BENCH_serve.json >/dev/null
jq -e '.slo_pass == true' BENCH_serve.json >/dev/null
echo "loadgen OK: $(jq -c '[.targets[] | {target, throughput_rps, p50_ms, p99_ms}]' BENCH_serve.json)"

# --- BENCH_graph.json: the cascade must beat the single large model on
# mean latency over mixed traffic (the paper's op-budget logic, measured
# on the serving path).
go run ./cmd/bench -exp graph -json -graph-requests 12 >/dev/null
jq -e '.cascade.cascade_mean_ms < .cascade.large_mean_ms
    and .cascade.speedup_vs_large > 1 and .cascade.gate_hits > 0' BENCH_graph.json >/dev/null
jq -e '.cascade.cascade_p50_ms > 0 and .cascade.cascade_p99_ms >= .cascade.cascade_p50_ms' BENCH_graph.json >/dev/null
echo "bench graph OK: cascade $(jq -r '.cascade.cascade_mean_ms' BENCH_graph.json)ms vs large-only $(jq -r '.cascade.large_mean_ms' BENCH_graph.json)ms ($(jq -r '.cascade.speedup_vs_large' BENCH_graph.json)x)"

# Graceful drain: SIGTERM must flip readiness and exit zero.
kill -TERM "$PID"
wait "$PID"
echo "drain OK"
trap - EXIT
echo "serve smoke: all checks passed"
