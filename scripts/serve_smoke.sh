#!/usr/bin/env bash
# serve_smoke.sh — build cmd/serve, boot it in the background, and prove
# one real /v2 round-trip: readiness, model metadata, and an infer POST
# whose response carries an argmax class. Also runs the NAS harness first
# (cmd/search -trials 64) and proves that an exported frontier model is
# servable through the same /v2 protocol. Used by `make serve-smoke` and
# the CI serve-smoke job (keep the two in sync by editing only this file).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:${SERVE_SMOKE_PORT:-8151}"
WORK="$(mktemp -d)"
BIN="$WORK/micronets-serve"
MODEL="MicroNet-KWS-S"

# --- NAS search: 64 hardware-in-the-loop trials, JSONL log + exported frontier.
go run ./cmd/search -trials 64 -seed 42 \
    -log "$WORK/search_trials.jsonl" -export "$WORK/frontier.json" -export-top 3
test -s "$WORK/search_trials.jsonl"
head -1 "$WORK/search_trials.jsonl" | jq -e 'has("trial") and has("metrics")' >/dev/null
jq -e '.specs | length >= 1' "$WORK/frontier.json" >/dev/null
NAS_MODEL=$(jq -r '.specs[0].Name' "$WORK/frontier.json")
echo "search OK: exported frontier model $NAS_MODEL"

# Machine-readable frontier for the cross-PR perf trajectory — resumes
# the trial log the search above just wrote instead of re-evaluating.
go run ./cmd/bench -exp search -json -search-log "$WORK/search_trials.jsonl" >/dev/null
jq -e '.frontier | length >= 1' BENCH_search.json >/dev/null
echo "bench search OK: $(jq '.frontier | length' BENCH_search.json) frontier points in BENCH_search.json"

go build -o "$BIN" ./cmd/serve

"$BIN" -addr "$ADDR" -models "$MODEL,DSCNN-S,$NAS_MODEL" -specs "$WORK/frontier.json" -log json &
PID=$!
cleanup() { kill "$PID" 2>/dev/null || true; wait "$PID" 2>/dev/null || true; }
trap cleanup EXIT

for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/v2/health/ready" >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
curl -fsS "http://$ADDR/v2/health/ready" | jq -e '.ready == true' >/dev/null
echo "ready OK"

curl -fsS "http://$ADDR/v2/models" | jq -e '.models | length == 3' >/dev/null
curl -fsS "http://$ADDR/v2/models/$MODEL" | jq -e '.inputs[0].shape == [49,10,1]' >/dev/null
echo "metadata OK"

PAYLOAD=$(jq -n '{inputs:[{name:"input",shape:[49,10,1],datatype:"FP32",data:[range(490)|0.25]}]}')
RESP=$(curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "$PAYLOAD" "http://$ADDR/v2/models/$MODEL/infer")
echo "$RESP" | jq -e '.outputs[] | select(.name=="class") | .data | length == 1' >/dev/null
echo "$RESP" | jq -e '.outputs[] | select(.name=="scores") | .data | length == 12' >/dev/null
echo "infer OK: class $(echo "$RESP" | jq -c '[.outputs[] | select(.name=="class") | .data[0]]') score $(echo "$RESP" | jq -c '[.outputs[] | select(.name=="score") | .data[0]]')"

# The searched architecture serves through the identical protocol.
NAS_RESP=$(curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "$PAYLOAD" "http://$ADDR/v2/models/$NAS_MODEL/infer")
echo "$NAS_RESP" | jq -e '.outputs[] | select(.name=="class") | .data | length == 1' >/dev/null
echo "$NAS_RESP" | jq -e --arg m "$NAS_MODEL" '.model_name == $m' >/dev/null
echo "NAS infer OK: $NAS_MODEL answered class $(echo "$NAS_RESP" | jq -c '[.outputs[] | select(.name=="class") | .data[0]]')"

curl -fsS "http://$ADDR/metrics" | grep -q 'micronets_serve_requests_total{model="MicroNet-KWS-S"} 1'
echo "metrics OK"

# Graceful drain: SIGTERM must flip readiness and exit zero.
kill -TERM "$PID"
wait "$PID"
echo "drain OK"
trap - EXIT
echo "serve smoke: all checks passed"
