#!/usr/bin/env bash
# mesh_smoke.sh — boot TWO cmd/serve replicas with different RAM budgets
# plus the cmd/router front door, and prove the fleet tier end to end:
# merged /v2 views (models, repository index with per-replica budget
# summaries), budget-aware placement (a load neither replica can fit is
# a fleet-wide structured 409; after freeing budget on replica B the
# same load spills onto B), failover (killing replica A mid-flight
# leaves the shared model serving through per-request retry and the
# health loop marks A down), and the micronets_mesh_* metric family.
# Finishes by driving cmd/loadgen THROUGH the router and gating on its
# p99 SLO (BENCH_serve.json). Used by `make mesh-smoke` and the CI
# mesh-smoke job (keep the two in sync by editing only this file).
set -euo pipefail
cd "$(dirname "$0")/.."

PORT_A="${MESH_SMOKE_PORT_A:-8161}"
PORT_B="${MESH_SMOKE_PORT_B:-8162}"
PORT_R="${MESH_SMOKE_PORT_R:-8160}"
ADDR_A="127.0.0.1:$PORT_A"
ADDR_B="127.0.0.1:$PORT_B"
ADDR_R="127.0.0.1:$PORT_R"
URL_A="http://$ADDR_A"
URL_B="http://$ADDR_B"
WORK="$(mktemp -d)"

go build -o "$WORK/serve" ./cmd/serve
go build -o "$WORK/router" ./cmd/router

# Budgets are sized from the planned reservations at -pool 1 -max-batch 4
# (MicroNet-KWS-S 310704, DSCNN-S 110832) and MicroNet-AD-L's MINIMAL
# plan — the budget planner scales pool/batch down to fit, bottoming out
# at weights 483940 + one batch-1 arena 353280 = 837220 bytes:
#   A: 448KB   — holds KWS-S, free ~148K: AD-L can never fit here.
#   B: 1200000 — holds KWS-S + DSCNN-S, free ~778K: AD-L does NOT fit
#      until DSCNN-S is unloaded (free then ~889K), then it does.
"$WORK/serve" -addr "$ADDR_A" -models MicroNet-KWS-S -ram-budget 448KB \
    -pool 1 -max-batch 4 -log json >"$WORK/a.log" 2>&1 &
PID_A=$!
"$WORK/serve" -addr "$ADDR_B" -models MicroNet-KWS-S,DSCNN-S -ram-budget 1200000 \
    -pool 1 -max-batch 4 -log json >"$WORK/b.log" 2>&1 &
PID_B=$!
cleanup() {
    kill "$PID_A" "$PID_B" "${PID_R:-}" 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup EXIT

for _ in $(seq 1 100); do
    if curl -fsS "$URL_A/v2/health/ready" >/dev/null 2>&1 \
        && curl -fsS "$URL_B/v2/health/ready" >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
curl -fsS "$URL_A/v2/health/ready" | jq -e '.ready == true and .models_ready == 1' >/dev/null
curl -fsS "$URL_B/v2/health/ready" | jq -e '.ready == true and .models_ready == 2' >/dev/null
echo "replicas OK: A($ADDR_A, 448KB) B($ADDR_B, 1200000B)"

# Fast health cadence so the failover assertion below doesn't stall the
# script: mark-down lands within ~2 polls of the kill.
"$WORK/router" -addr "$ADDR_R" -replicas "$URL_A,$URL_B" \
    -health-interval 200ms -down-after 2 -up-after 1 -log json >"$WORK/r.log" 2>&1 &
PID_R=$!
for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR_R/v2/health/ready" >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
READY=$(curl -fsS "http://$ADDR_R/v2/health/ready")
echo "$READY" | jq -e '.ready == true and .replicas == 2 and .replicas_up == 2' >/dev/null
echo "$READY" | jq -e '.models_ready == 2' >/dev/null # KWS-S + DSCNN-S, deduplicated
echo "router ready OK: $(echo "$READY" | jq -c .)"

# --- Merged fleet views: /v2/models is the union; the repository index
# carries every row annotated with its replica plus per-replica budget
# summaries and summed fleet totals.
curl -fsS "http://$ADDR_R/v2/models" | jq -e '[.models[].name] == ["DSCNN-S","MicroNet-KWS-S"]' >/dev/null
INDEX=$(curl -fsS "http://$ADDR_R/v2/repository/index")
echo "$INDEX" | jq -e '.models | length == 3' >/dev/null # KWS on both + DSCNN on B
echo "$INDEX" | jq -e --arg a "$URL_A" --arg b "$URL_B" \
    '([.models[] | select(.name == "MicroNet-KWS-S") | .replica] | sort) == ([$a, $b] | sort)' >/dev/null
echo "$INDEX" | jq -e --arg b "$URL_B" \
    '.models[] | select(.name == "DSCNN-S") | .replica == $b' >/dev/null
echo "$INDEX" | jq -e '.replicas | length == 2 and all(.[]; .up == true and .free_bytes > 0)' >/dev/null
echo "$INDEX" | jq -e '.ram_budget_bytes == 1658752' >/dev/null # 448KB + 1200000
echo "$INDEX" | jq -e '.free_bytes == .ram_budget_bytes - .ram_planned_bytes' >/dev/null
echo "merged index OK: $(echo "$INDEX" | jq -c '{budget: .ram_budget_bytes, planned: .ram_planned_bytes, free: .free_bytes}')"

# --- Data plane through the front door: a real infer, answered by a
# replica the router names in X-Micronets-Replica, trace id passed through.
PAYLOAD=$(jq -n '{inputs:[{name:"input",shape:[49,10,1],datatype:"FP32",data:[range(490)|0.25]}]}')
HDRS=$(curl -fsS -D - -o "$WORK/infer.json" -X POST -H 'Content-Type: application/json' \
    -H 'X-Micronets-Trace-Id: mesh-smoke-trace' \
    -d "$PAYLOAD" "http://$ADDR_R/v2/models/MicroNet-KWS-S/infer")
echo "$HDRS" | grep -qi '^x-micronets-replica: http://127.0.0.1'
echo "$HDRS" | grep -qi '^x-micronets-trace-id: mesh-smoke-trace'
jq -e '.outputs[] | select(.name=="class") | .data | length == 1' "$WORK/infer.json" >/dev/null
echo "infer via router OK ($(echo "$HDRS" | grep -i '^x-micronets-replica' | tr -d '\r'))"

# --- Placement, act 1: AD-L fits NOWHERE (A free ~148K, B free ~778K,
# AD-L needs ≥837K even at its minimal plan) — the router must answer
# its own fleet-wide 409 after spilling off every candidate.
CODE=$(curl -s -o "$WORK/fleet409.json" -w '%{http_code}' -X POST \
    "http://$ADDR_R/v2/repository/models/MicroNet-AD-L/load")
test "$CODE" = "409"
jq -e '.code == "ram_budget_exceeded" and .needed_bytes > 0' "$WORK/fleet409.json" >/dev/null
echo "fleet 409 OK: $(jq -c '{code, needed_bytes, free_bytes}' "$WORK/fleet409.json")"

# --- Placement, act 2: free B's budget (unload DSCNN-S through the
# router; it fans out to the holder), wait for the drain, reload — the
# placement must spill off A and land on B.
curl -fsS -X POST "http://$ADDR_R/v2/repository/models/DSCNN-S/unload" \
    | jq -e --arg b "$URL_B" '.unloaded_from == [$b]' >/dev/null
for _ in $(seq 1 100); do
    if curl -fsS "$URL_B/v2/repository/index" | jq -e '.free_bytes >= 837220' >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
LOAD_HDRS=$(curl -fsS -D - -o "$WORK/load.json" -X POST \
    "http://$ADDR_R/v2/repository/models/MicroNet-AD-L/load")
echo "$LOAD_HDRS" | grep -qi "^x-micronets-replica: $URL_B"
jq -e '.state == "READY"' "$WORK/load.json" >/dev/null
curl -fsS "http://$ADDR_R/v2/repository/index" | jq -e --arg b "$URL_B" \
    '.models[] | select(.name == "MicroNet-AD-L") | .replica == $b and .state == "READY"' >/dev/null
curl -fsS "$URL_A/v2/repository/index" | jq -e '[.models[] | select(.name == "MicroNet-AD-L")] | length == 0' >/dev/null
echo "spill placement OK: MicroNet-AD-L landed on B after freeing its budget"

# --- Mesh metrics: the placement story must be visible in the
# micronets_mesh_* family (spills where AD-L bounced, a placement on B,
# one fleet-wide placement failure from act 1).
METRICS=$(curl -fsS "http://$ADDR_R/metrics")
echo "$METRICS" | grep -q 'micronets_mesh_replicas 2'
echo "$METRICS" | grep -q 'micronets_mesh_replicas_up 2'
echo "$METRICS" | grep -q 'micronets_mesh_placement_failures_total 1'
echo "$METRICS" | grep -Eq 'micronets_mesh_spills_total\{replica="[^"]+"\} [1-9]'
echo "$METRICS" | grep -Eq "micronets_mesh_placements_total\{replica=\"$URL_B\"\} [1-9]"
echo "$METRICS" | grep -Eq 'micronets_mesh_replica_requests_total\{replica="[^"]+"\} [1-9]'
echo "$METRICS" | grep -q 'micronets_mesh_request_latency_seconds_bucket'
echo "mesh metrics OK"

# --- Failover: kill A outright. The immediate next infer must still
# succeed (per-request retry onto B), and the health loop must mark A
# down within a few polls.
kill -9 "$PID_A" 2>/dev/null || true
for i in $(seq 1 5); do
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d "$PAYLOAD" "http://$ADDR_R/v2/models/MicroNet-KWS-S/infer" \
        | jq -e '.model_name == "MicroNet-KWS-S"' >/dev/null
done
for _ in $(seq 1 50); do
    if curl -fsS "http://$ADDR_R/v2/health/ready" | jq -e '.replicas_up == 1' >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
curl -fsS "http://$ADDR_R/v2/health/ready" | jq -e '.ready == true and .replicas_up == 1' >/dev/null
# Capture /metrics before grepping: grep -q exits at the first match and
# would close the pipe mid-body, flaking curl with exit 23.
METRICS=$(curl -fsS "http://$ADDR_R/metrics")
echo "$METRICS" | grep -Eq "micronets_mesh_replica_up\{replica=\"$URL_A\"\} 0"
echo "$METRICS" | grep -Eq "micronets_mesh_health_transitions_total\{replica=\"$URL_A\"\} [1-9]"
# The merged surfaces shrink to the survivor without serving stale rows.
curl -fsS "http://$ADDR_R/v2/repository/index" | jq -e --arg b "$URL_B" \
    '[.models[].replica] | unique == [$b]' >/dev/null
echo "failover OK: A killed, infers kept serving, A marked down"

# --- Open-loop load THROUGH the router: cmd/loadgen resolves its target
# from the router's merged /v2/models, drives it, writes
# BENCH_serve.json, and gates on the p99 SLO itself (exit 1 on breach).
go run ./cmd/loadgen -addr "http://$ADDR_R" \
    -targets "model:MicroNet-KWS-S" -rps 25 -duration 2s \
    -slo-p99 1500 -out BENCH_serve.json
jq -e '.targets | length == 1' BENCH_serve.json >/dev/null
jq -e '.targets[0].completed > 0 and .targets[0].errors == 0' BENCH_serve.json >/dev/null
jq -e '.slo_pass == true' BENCH_serve.json >/dev/null
echo "loadgen via router OK: $(jq -c '[.targets[] | {target, throughput_rps, p50_ms, p99_ms}]' BENCH_serve.json)"

echo "mesh smoke: all checks passed"
