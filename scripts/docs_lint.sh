#!/usr/bin/env bash
# docs_lint.sh — fail if a first-class package lacks a package comment.
#
# Every package listed here must have a `// Package <name> ...` godoc
# comment (kept in its doc.go by convention, though the check accepts it
# on any file's package clause). This is the CI teeth behind
# docs/ARCHITECTURE.md: a package can't be added to the public story
# without documenting itself.
set -euo pipefail
cd "$(dirname "$0")/.."

PACKAGES=(
  internal/kernels
  internal/tflm
  internal/mcu
  internal/obs
  internal/search
  internal/serve
  internal/servegraph
  internal/zoo
)

fail=0
for pkg in "${PACKAGES[@]}"; do
  name=$(basename "$pkg")
  if ! grep -l "^// Package ${name} " "$pkg"/*.go >/dev/null 2>&1; then
    echo "docs-lint: package ${pkg} has no '// Package ${name} ...' comment (add a doc.go)" >&2
    fail=1
    continue
  fi
  # The comment must sit directly above a package clause, not float free.
  ok=0
  for f in $(grep -l "^// Package ${name} " "$pkg"/*.go); do
    if awk -v name="$name" '
      /^\/\/ Package / && $3 == name { seen = 1 }
      /^package / { if (seen && $2 == name) { found = 1 }; seen = 0 }
      /^$/ { seen = 0 }
      END { exit found ? 0 : 1 }
    ' "$f"; then
      ok=1
      break
    fi
  done
  if [ "$ok" -ne 1 ]; then
    echo "docs-lint: ${pkg}: '// Package ${name}' comment is not attached to the package clause" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "docs-lint: all $(echo "${#PACKAGES[@]}") packages carry package comments"
