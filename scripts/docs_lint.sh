#!/usr/bin/env bash
# docs_lint.sh — DEPRECATED thin wrapper, kept for one release.
#
# The package-comment check moved into the microvet suite as the
# `pkgdoc` analyzer (internal/analysis, docs/ANALYSIS.md), which is
# typed against the real AST instead of grep/awk heuristics and runs as
# part of `make lint`. Call microvet directly; this wrapper only exists
# so stale invocations keep working and will be removed next release.
set -euo pipefail
cd "$(dirname "$0")/.."
echo "docs_lint.sh is deprecated: use 'go run ./cmd/microvet -analyzers pkgdoc ./...'" >&2
exec go run ./cmd/microvet -analyzers pkgdoc ./...
