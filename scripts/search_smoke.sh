#!/usr/bin/env bash
# search_smoke.sh — run the two-stage NAS search end to end (64 proxy
# trials, then 2 frontier finalists re-ranked by 30-step real training
# runs) and prove the trained re-rank landed: the JSONL log must carry
# finalist records whose trained accuracy is non-zero and distinct from
# the capacity proxy, and BENCH_search.json must carry the
# proxy-vs-trained columns. Used by `make search-smoke` and by
# serve_smoke.sh (so the CI serve-smoke job exercises the same path on
# every push — keep the flags here in sync with nothing else).
#
# Usage: search_smoke.sh [workdir]  (defaults to a fresh mktemp dir)
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="${1:-$(mktemp -d)}"

# --- NAS search: 64 hardware-in-the-loop trials, then the accuracy-in-
# the-loop finalist stage; JSONL log + exported frontier + a cascade
# graph spec built from the exported points (fast gate → accurate final).
go run ./cmd/search -trials 64 -seed 42 -finalists 2 -train-steps 30 \
    -log "$WORK/search_trials.jsonl" -export "$WORK/frontier.json" -export-top 3 \
    -export-cascade "$WORK/cascade.json" -cascade-stages 2 -cascade-threshold 0.7
test -s "$WORK/search_trials.jsonl"
head -1 "$WORK/search_trials.jsonl" | jq -e 'has("trial") and has("metrics")' >/dev/null
jq -e '.specs | length >= 1' "$WORK/frontier.json" >/dev/null

# The cascade spec must be a ready-to-PUT graph whose stages all name
# models present in the frontier export (serve_smoke.sh registers it
# against a live server).
jq -e '.root.kind == "cascade" and (.root.children | length == 2)
    and ([.root.children[].kind] | all(. == "model"))
    and .root.threshold == 0.7' "$WORK/cascade.json" >/dev/null
jq -e --slurpfile f "$WORK/frontier.json" \
    '[.root.children[].model] - [$f[0].specs[].Name] == []' "$WORK/cascade.json" >/dev/null
echo "cascade export OK: $(jq -c '{name, stages: [.root.children[].model]}' "$WORK/cascade.json")"

# The trained re-rank must be durable and honest: finalist records carry a
# non-zero trained accuracy distinct from the proxy (a trial whose
# training failed carries err instead, and never a trained score).
FINALISTS=$(jq -s '[.[] | select(.stage == "finalist" and .err == null)] | length' "$WORK/search_trials.jsonl")
test "$FINALISTS" -ge 1
jq -s -e '[.[] | select(.stage == "finalist" and .err == null)]
    | all(.metrics.trained_accuracy > 0 and .metrics.trained_accuracy != .metrics.accuracy_proxy)' \
    "$WORK/search_trials.jsonl" >/dev/null
echo "search OK: $FINALISTS finalists trained (log $WORK/search_trials.jsonl)"

# Machine-readable frontier for the cross-PR perf trajectory — resumes
# the trial log the search above just wrote (same seed/device/budget)
# instead of re-evaluating or re-training.
go run ./cmd/bench -exp search -json -finalists 2 -train-steps 30 \
    -search-log "$WORK/search_trials.jsonl" >/dev/null
jq -e '.frontier | length >= 1' BENCH_search.json >/dev/null
jq -e '.finalists | length >= 1' BENCH_search.json >/dev/null
jq -e '[.finalists[] | select(.trained_accuracy > 0 and .trained_accuracy != .accuracy_proxy)] | length >= 1' \
    BENCH_search.json >/dev/null
echo "bench search OK: $(jq '.frontier | length' BENCH_search.json) frontier points, $(jq '.finalists | length' BENCH_search.json) trained finalists in BENCH_search.json"
