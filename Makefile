# Local entry points mirroring .github/workflows/ci.yml so the two can't
# drift: `make ci` runs exactly what the workflow runs.

GO ?= go

.PHONY: build test bench lint ci

build:
	$(GO) build ./...

test:
	$(GO) test -race -shuffle=on ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-smoke is the CI variant: every benchmark once, as a regression
# canary rather than a measurement.
.PHONY: bench-smoke
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# lint = go vet + gofmt + microvet (the repo-specific analyzer suite;
# see docs/ANALYSIS.md). microvet subsumes the old docs_lint.sh package-
# comment check via its pkgdoc analyzer.
lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi
	$(GO) run ./cmd/microvet ./...

# serve runs the HTTP inference server on :8151 (all servable zoo models).
.PHONY: serve
serve:
	$(GO) run ./cmd/serve

# serve-smoke runs the NAS search, boots cmd/serve under a RAM budget and
# proves a live /v2 round-trip plus the repository control plane: the
# exported frontier model is hot-loaded with zero restarts, an
# over-budget load 409s, an unload drains — the same script the CI
# serve-smoke job runs.
.PHONY: serve-smoke
serve-smoke:
	./scripts/serve_smoke.sh

# router runs the model-mesh placement router; point it at running
# replicas with REPLICAS="http://host:8151,http://host:8152".
.PHONY: router
router:
	$(GO) run ./cmd/router -replicas "$(REPLICAS)"

# mesh-smoke boots two budgeted cmd/serve replicas plus cmd/router and
# proves the fleet tier: merged /v2 views, budget spill placement, a
# fleet-wide 409, replica-kill failover, mesh metrics, and an SLO-gated
# loadgen run through the front door — the same script the CI mesh-smoke
# job runs.
.PHONY: mesh-smoke
mesh-smoke:
	./scripts/mesh_smoke.sh

# search-smoke runs just the two-stage NAS search end to end (64 proxy
# trials, 2 finalists re-ranked by 30-step real training runs) and
# asserts the trained accuracies landed in the trial log and
# BENCH_search.json. serve-smoke runs the same script before serving.
.PHONY: search-smoke
search-smoke:
	./scripts/search_smoke.sh

# fuzz-smoke runs each kernels fuzz target briefly, as CI does.
.PHONY: fuzz-smoke
fuzz-smoke:
	for target in FuzzConv2DParity FuzzDWConv2DParity FuzzDenseParity FuzzRequantize; do \
		$(GO) test -run '^$$' -fuzz "^$$target$$" -fuzztime 10s ./internal/kernels || exit 1; \
	done

# cover enforces the CI coverage floor on the numerics-critical packages.
.PHONY: cover
cover:
	$(GO) test -coverprofile=coverage.out \
		-coverpkg=./internal/kernels,./internal/tflm \
		./internal/kernels ./internal/tflm
	$(GO) tool cover -func=coverage.out | tail -1

# search runs the hardware-in-the-loop NAS harness with defaults.
.PHONY: search
search:
	$(GO) run ./cmd/search

# profile prints the per-op measured-vs-predicted latency table (the live
# check of the paper's §3 linearity claim) for one zoo model.
.PHONY: profile
profile:
	$(GO) run ./cmd/bench -exp profile

# loadgen drives a running `make serve` with open-loop traffic and writes
# BENCH_serve.json (p50/p95/p99 per target).
.PHONY: loadgen
loadgen:
	$(GO) run ./cmd/loadgen

ci: build lint test bench-smoke fuzz-smoke serve-smoke mesh-smoke cover
