# Local entry points mirroring .github/workflows/ci.yml so the two can't
# drift: `make ci` runs exactly what the workflow runs.

GO ?= go

.PHONY: build test bench lint ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-smoke is the CI variant: every benchmark once, as a regression
# canary rather than a measurement.
.PHONY: bench-smoke
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

# serve runs the HTTP inference server on :8151 (all servable zoo models).
.PHONY: serve
serve:
	$(GO) run ./cmd/serve

# serve-smoke boots cmd/serve and proves a live /v2 round-trip — the same
# script the CI serve-smoke job runs.
.PHONY: serve-smoke
serve-smoke:
	./scripts/serve_smoke.sh

ci: build lint test bench-smoke serve-smoke
