// Command bench regenerates the paper's tables and figures as text
// reports.
//
// Usage:
//
//	bench                 # run everything
//	bench -exp fig4       # one experiment: table1..table5, fig2..fig11, div4, engine
//	bench -exp engine -json   # also write BENCH_engine.json (machine-readable)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"micronets/internal/experiments"
	"micronets/internal/graph"
	"micronets/internal/mcu"
	"micronets/internal/zoo"
)

const seed = 42

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	exp := flag.String("exp", "all", "experiment id (table1..table5, fig2..fig11, div4, engine, search) or 'all'")
	jsonOut := flag.Bool("json", false, "also write BENCH_<exp>.json with machine-readable results, so the perf trajectory is tracked across PRs")
	searchLog := flag.String("search-log", "", "JSONL trial log for -exp search: a matching prior cmd/search run is resumed instead of re-evaluated")
	finalists := flag.Int("finalists", 2, "frontier finalists the search experiment re-ranks with real training runs (0 disables)")
	trainSteps := flag.Int("train-steps", 30, "training steps per search finalist")
	graphRequests := flag.Int("graph-requests", 24, "mixed-traffic requests for -exp graph (cascade vs single large model)")
	profileModel := flag.String("profile-model", "MicroNet-KWS-S", "zoo model for -exp profile (measured vs predicted per-op latency)")
	profileRuns := flag.Int("profile-runs", 8, "profiled invokes averaged by -exp profile")
	flag.Parse()

	// engineRows/searchRows/graphReport/profileReport cache those
	// experiments' measurements so -json serializes the exact run that was
	// printed, not a second one.
	var engineRows []experiments.EngineRow
	var searchRows, finalistRows []experiments.SearchRow
	var graphReport *experiments.GraphReport
	var profileReport *mcu.Profile

	runners := []struct {
		id string
		fn func() (string, error)
	}{
		{"table1", func() (string, error) { return experiments.Table1(), nil }},
		{"fig2", func() (string, error) { return experiments.Figure2("MicroNet-KWS-L", seed) }},
		{"fig3", runFig3},
		{"fig4", runFig4},
		{"fig5", runFig5},
		{"table5", func() (string, error) { return experiments.Table5(), nil }},
		{"fig7", func() (string, error) { return experiments.RenderPareto("kws", seed) }},
		{"fig8", func() (string, error) { return experiments.RenderPareto("vww", seed) }},
		{"fig9", func() (string, error) { return experiments.Figure9(seed) }},
		{"fig10", runFig10},
		{"fig11", func() (string, error) { return experiments.Figure11(seed) }},
		{"table2", func() (string, error) { return experiments.Table2(seed) }},
		{"table3", func() (string, error) { return experiments.Table3(seed) }},
		{"table4", func() (string, error) { return experiments.Table4(seed) }},
		{"div4", runDiv4},
		{"engine", func() (string, error) {
			rows, err := experiments.EngineComparison(experiments.EngineModels, seed)
			if err != nil {
				return "", err
			}
			engineRows = rows
			return experiments.RenderEngineRows(rows), nil
		}},
		{"search", func() (string, error) {
			rows, res, err := experiments.SearchExperiment(64, seed, *searchLog, *finalists, *trainSteps)
			if err != nil {
				return "", err
			}
			searchRows = rows
			finalistRows = experiments.FinalistRows(res)
			return experiments.RenderSearchRows(rows, res), nil
		}},
		{"graph", func() (string, error) {
			rep, err := experiments.GraphExperiment(*graphRequests, seed)
			if err != nil {
				return "", err
			}
			graphReport = rep
			return experiments.RenderGraphReport(rep), nil
		}},
		{"profile", func() (string, error) {
			rep, err := experiments.ProfileExperiment(*profileModel, *profileRuns, seed)
			if err != nil {
				return "", err
			}
			profileReport = rep
			return experiments.RenderProfileReport(rep), nil
		}},
	}
	ran := false
	for _, r := range runners {
		if *exp != "all" && r.id != *exp {
			continue
		}
		ran = true
		out, err := r.fn()
		if err != nil {
			log.Fatalf("%s: %v", r.id, err)
		}
		fmt.Printf("=== %s ===\n%s\n", r.id, out)
		if *jsonOut {
			if err := writeJSON(r.id, out, engineRows, searchRows, finalistRows, graphReport, profileReport); err != nil {
				log.Fatalf("%s: write json: %v", r.id, err)
			}
		}
	}
	if !ran {
		log.Fatalf("unknown experiment %q", *exp)
	}
}

// engineJSONRow is one (model, engine) perf point in BENCH_engine.json —
// the cross-PR trajectory format for the host inference engines.
type engineJSONRow struct {
	Model      string  `json:"model"`
	Engine     string  `json:"engine"`
	NsPerOp    int64   `json:"ns_per_op"`
	MMACs      float64 `json:"mmacs"`
	Speedup    float64 `json:"speedup_vs_reference"`
	ExactMatch bool    `json:"exact_match"`
}

// writeJSON writes BENCH_<id>.json. The engine and search experiments
// serialize the same measured rows their text tables rendered; text-only
// experiments get the rendered report wrapped so every experiment is
// still diffable by machine. The search payload carries both the full
// frontier (proxy-ranked) and the finalist re-rank (trained accuracy),
// so the proxy-vs-trained gap is tracked across PRs.
func writeJSON(id, report string, rows []experiments.EngineRow, searchRows, finalistRows []experiments.SearchRow, graphReport *experiments.GraphReport, profileReport *mcu.Profile) error {
	path := fmt.Sprintf("BENCH_%s.json", id)
	var payload any
	if id == "graph" && graphReport != nil {
		payload = map[string]any{"experiment": id, "cascade": graphReport}
	} else if id == "profile" && profileReport != nil {
		payload = map[string]any{"experiment": id, "profile": profileReport}
	} else if id == "search" && searchRows != nil {
		if finalistRows == nil {
			finalistRows = []experiments.SearchRow{}
		}
		payload = map[string]any{"experiment": id, "frontier": searchRows, "finalists": finalistRows}
	} else if id == "engine" && rows != nil {
		flat := make([]engineJSONRow, 0, 3*len(rows))
		for _, r := range rows {
			flat = append(flat,
				engineJSONRow{Model: r.Model, Engine: "reference", NsPerOp: int64(r.ReferenceS * 1e9),
					MMACs: float64(r.MACs) / 1e6, Speedup: 1, ExactMatch: r.AgreeOut},
				engineJSONRow{Model: r.Model, Engine: "gemm", NsPerOp: int64(r.GemmS * 1e9),
					MMACs: float64(r.MACs) / 1e6, Speedup: r.Speedup, ExactMatch: r.AgreeOut},
				engineJSONRow{Model: r.Model, Engine: "gemm16", NsPerOp: int64(r.WideS * 1e9),
					MMACs: float64(r.MACs) / 1e6, Speedup: r.WideSpeedup, ExactMatch: r.AgreeOut},
			)
		}
		payload = map[string]any{"experiment": id, "rows": flat}
	} else {
		payload = map[string]any{"experiment": id, "report": report}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("wrote %s", path)
	return nil
}

func runFig3() (string, error) {
	pts, err := experiments.Figure3(60, seed)
	if err != nil {
		return "", err
	}
	spread := experiments.ThroughputSpread(pts)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: layer latency vs ops on %s (%d layers)\n", mcu.F767ZI.Name, len(pts))
	fmt.Fprintf(&b, "%-8s %12s %12s %12s\n", "kind", "p10 Mops/s", "med Mops/s", "p90 Mops/s")
	for _, k := range []string{"conv", "fc", "dwconv"} {
		s := spread[k]
		fmt.Fprintf(&b, "%-8s %12.1f %12.1f %12.1f\n", k, s[0], s[1], s[2])
	}
	b.WriteString("(conv/fc sustain higher ops/s than depthwise, with wide per-layer spread)\n")
	return b.String(), nil
}

func runFig4() (string, error) {
	series, err := experiments.Figure4(120, seed)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: whole-model latency vs op count (random backbone samples)\n")
	fmt.Fprintf(&b, "%-8s %-14s %8s %10s %14s\n", "backbone", "device", "models", "r^2", "Mops/s (1/slope)")
	for _, s := range series {
		fmt.Fprintf(&b, "%-8s %-14s %8d %10.4f %14.1f\n",
			s.Backbone, s.Device, len(s.Points), s.R2, s.ThroughputMops)
	}
	b.WriteString("(latency is linear in ops per backbone; KWS backbone ~40% higher throughput; M7 ~2x M4)\n")
	return b.String(), nil
}

func runFig5() (string, error) {
	series, err := experiments.Figure5(400, seed)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: power and energy of 400 random image-backbone models\n")
	fmt.Fprintf(&b, "%-14s %14s %12s %16s\n", "device", "power σ/µ", "energy r^2", "mJ per Mop")
	for _, s := range series {
		fmt.Fprintf(&b, "%-14s %14.5f %12.4f %16.4f\n",
			s.Device, s.PowerSigmaMu, s.EnergyR2, s.EnergySlopeMJ)
	}
	b.WriteString("(power is model-independent; energy is linear in ops; smaller MCU uses less energy despite longer latency)\n")
	return b.String(), nil
}

func runFig10() (string, error) {
	rows, err := experiments.Figure10(seed)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: latency increase of 4-bit kernels vs 8-bit on %s\n", mcu.F746ZG.Name)
	fmt.Fprintf(&b, "%-18s %10s %14s %14s\n", "model", "8b lat(s)", "4bA/8bW (+%)", "4bA/4bW (+%)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %10.3f %14.2f %14.2f\n",
			r.Model, r.Lat8w8a, r.Lat4a8wIncreasePct, r.Lat4a4wIncreasePct)
	}
	b.WriteString("(paper: +19.28% KWS-M, +28.8% KWS-L for 4bA/4bW)\n")
	return b.String(), nil
}

// runDiv4 reproduces the §3.2 observation that a conv layer with channels
// divisible by four is dramatically faster (paper: 138->140 channels took
// 37.5 ms to 21.5 ms, a 57% speedup +> 1.74x).
func runDiv4() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "CMSIS-NN channel divisibility fast path (§3.2)\n")
	fmt.Fprintf(&b, "%-10s %12s\n", "channels", "latency(ms)")
	for _, c := range []int{136, 137, 138, 139, 140, 141, 142, 143, 144} {
		spec := zoo.DSCNN("S")
		spec.Blocks[1].OutC = c
		spec.Blocks[2].OutC = c
		m, err := graph.FromSpec(spec, rand.New(rand.NewSource(seed)), graph.LowerOptions{})
		if err != nil {
			return "", err
		}
		// Time just the affected pointwise convs.
		_, lats, err := mcu.ModelLatency(m, mcu.F767ZI)
		if err != nil {
			return "", err
		}
		var ms float64
		for i, op := range m.Ops {
			if op.Kind == graph.OpConv2D && op.KH == 1 {
				ms += lats[i].Seconds * 1000
			}
		}
		fmt.Fprintf(&b, "%-10d %12.2f\n", c, ms)
	}
	return b.String(), nil
}
