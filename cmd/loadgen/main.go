// Command loadgen drives the serve HTTP server with open-loop traffic
// and reports per-target throughput and latency quantiles — the
// SLO-gated benchmark behind BENCH_serve.json.
//
// Open-loop means requests fire on a fixed schedule regardless of how
// fast earlier ones complete, so queueing delay shows up in the measured
// latency instead of silently throttling the offered rate (the
// coordinated-omission trap of closed-loop generators).
//
// Usage:
//
//	loadgen                                       # all ready models, 20 rps each, 5s
//	loadgen -targets model:MicroNet-KWS-S -rps 50
//	loadgen -targets graph:cascade,DSCNN-S -duration 10s
//	loadgen -slo-p99 250 -out BENCH_serve.json    # exit 1 if any target's p99 > 250ms
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"micronets/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	addr := flag.String("addr", "http://127.0.0.1:8151", "serve base URL")
	targetsFlag := flag.String("targets", "", "comma-separated targets: model:NAME, graph:NAME, or bare NAME (= model); empty = every ready model")
	rps := flag.Float64("rps", 20, "offered requests per second, per target")
	duration := flag.Duration("duration", 5*time.Second, "load duration per target (targets run concurrently)")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request timeout")
	out := flag.String("out", "BENCH_serve.json", "output JSON path ('' disables)")
	sloP99 := flag.Float64("slo-p99", 0, "p99 latency SLO in ms; any target over it fails the run (0 disables)")
	seed := flag.Int64("seed", 42, "input-noise seed")
	flag.Parse()

	client := &http.Client{Timeout: *timeout}
	base := strings.TrimRight(*addr, "/")

	targets, err := resolveTargets(client, base, *targetsFlag, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if len(targets) == 0 {
		log.Fatal("no targets: server reports no ready models and -targets is empty")
	}

	log.Printf("driving %d target(s) at %.0f rps each for %s", len(targets), *rps, *duration)
	var wg sync.WaitGroup
	for _, t := range targets {
		wg.Add(1)
		go func(t *target) {
			defer wg.Done()
			t.run(client, *rps, *duration)
		}(t)
	}
	wg.Wait()

	report := buildReport(targets, *duration, *sloP99)
	renderReport(os.Stdout, report)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("write %s: %v", *out, err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			f.Close()
			log.Fatalf("write %s: %v", *out, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("write %s: %v", *out, err)
		}
		log.Printf("wrote %s", *out)
	}

	if !report.SLOPass {
		log.Fatalf("SLO breach: p99 over %.1f ms on at least one target", *sloP99)
	}
}

// target is one traffic stream: a model or graph endpoint plus the
// pre-encoded request body and the stats it accumulates.
type target struct {
	name string // "model:MicroNet-KWS-S" or "graph:cascade"
	url  string
	body []byte

	sent      atomic.Uint64
	completed atomic.Uint64
	errors    atomic.Uint64
	hist      obs.Histogram
}

// resolveTargets parses -targets (or lists every ready model when it is
// empty), fetches each target's input shape from the server's metadata
// endpoints, and pre-encodes one random FP32 request body per target.
func resolveTargets(client *http.Client, base, flagVal string, seed int64) ([]*target, error) {
	var specs []string
	if flagVal == "" {
		var list struct {
			Models []struct {
				Name string `json:"name"`
			} `json:"models"`
		}
		if err := getJSON(client, base+"/v2/models", &list); err != nil {
			return nil, fmt.Errorf("list models at %s: %w", base, err)
		}
		for _, m := range list.Models {
			specs = append(specs, "model:"+m.Name)
		}
	} else {
		for _, s := range strings.Split(flagVal, ",") {
			if s = strings.TrimSpace(s); s != "" {
				specs = append(specs, s)
			}
		}
	}

	rng := rand.New(rand.NewSource(seed))
	targets := make([]*target, 0, len(specs))
	for _, spec := range specs {
		kind, name := "model", spec
		if k, n, ok := strings.Cut(spec, ":"); ok {
			kind, name = k, n
		}
		var shape []int
		var inferURL string
		switch kind {
		case "model":
			var meta struct {
				Inputs []struct {
					Shape []int `json:"shape"`
				} `json:"inputs"`
			}
			if err := getJSON(client, base+"/v2/models/"+name, &meta); err != nil {
				return nil, fmt.Errorf("model %s: %w", name, err)
			}
			if len(meta.Inputs) == 0 {
				return nil, fmt.Errorf("model %s: metadata reports no inputs", name)
			}
			shape = meta.Inputs[0].Shape
			inferURL = base + "/v2/models/" + name + "/infer"
		case "graph":
			var meta struct {
				Stats struct {
					InputShape []int `json:"input_shape"`
				} `json:"stats"`
			}
			if err := getJSON(client, base+"/v2/graphs/"+name, &meta); err != nil {
				return nil, fmt.Errorf("graph %s: %w", name, err)
			}
			shape = meta.Stats.InputShape
			inferURL = base + "/v2/graphs/" + name + "/infer"
		default:
			return nil, fmt.Errorf("target %q: kind must be model: or graph:", spec)
		}
		elems := 1
		for _, d := range shape {
			elems *= d
		}
		if elems <= 0 {
			return nil, fmt.Errorf("target %s: degenerate input shape %v", spec, shape)
		}
		data := make([]float64, elems)
		for i := range data {
			data[i] = rng.Float64()*2 - 1
		}
		body, err := json.Marshal(map[string]any{
			"inputs": []map[string]any{{
				"name": "input", "datatype": "FP32", "shape": shape, "data": data,
			}},
		})
		if err != nil {
			return nil, err
		}
		targets = append(targets, &target{name: kind + ":" + name, url: inferURL, body: body})
	}
	return targets, nil
}

// run fires requests at the target on an open-loop schedule: one goroutine
// per tick, so a slow server accumulates in-flight requests (and measured
// queueing delay) instead of slowing the offered rate.
func (t *target) run(client *http.Client, rps float64, d time.Duration) {
	if rps <= 0 {
		rps = 1
	}
	interval := time.Duration(float64(time.Second) / rps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.After(d)
	var inflight sync.WaitGroup
	for {
		select {
		case <-deadline:
			inflight.Wait()
			return
		case <-ticker.C:
			t.sent.Add(1)
			inflight.Add(1)
			go func() {
				defer inflight.Done()
				start := time.Now()
				resp, err := client.Post(t.url, "application/json", bytes.NewReader(t.body))
				if err != nil {
					t.errors.Add(1)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.errors.Add(1)
					return
				}
				t.hist.Observe(time.Since(start))
				t.completed.Add(1)
			}()
		}
	}
}

// targetReport is one target's row in BENCH_serve.json.
type targetReport struct {
	Target        string  `json:"target"`
	URL           string  `json:"url"`
	OfferedRPS    float64 `json:"offered_rps"`
	Sent          uint64  `json:"sent"`
	Completed     uint64  `json:"completed"`
	Errors        uint64  `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	MeanMs        float64 `json:"mean_ms"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
}

// serveReport is the BENCH_serve.json payload: the serving-latency
// trajectory CI tracks and gates across PRs.
type serveReport struct {
	Experiment string         `json:"experiment"`
	DurationS  float64        `json:"duration_s"`
	Targets    []targetReport `json:"targets"`
	SLOP99Ms   float64        `json:"slo_p99_ms,omitempty"`
	SLOPass    bool           `json:"slo_pass"`
}

func buildReport(targets []*target, d time.Duration, sloP99 float64) *serveReport {
	rep := &serveReport{Experiment: "serve", DurationS: d.Seconds(), SLOP99Ms: sloP99, SLOPass: true}
	for _, t := range targets {
		snap := t.hist.Snapshot()
		row := targetReport{
			Target:        t.name,
			URL:           t.url,
			Sent:          t.sent.Load(),
			Completed:     t.completed.Load(),
			Errors:        t.errors.Load(),
			ThroughputRPS: float64(t.completed.Load()) / d.Seconds(),
			MeanMs:        snap.Mean().Seconds() * 1e3,
			P50Ms:         snap.P50().Seconds() * 1e3,
			P95Ms:         snap.P95().Seconds() * 1e3,
			P99Ms:         snap.P99().Seconds() * 1e3,
		}
		if d > 0 {
			row.OfferedRPS = float64(row.Sent) / d.Seconds()
		}
		if t.errors.Load() > 0 || t.completed.Load() == 0 {
			rep.SLOPass = false
		}
		if sloP99 > 0 && row.P99Ms > sloP99 {
			rep.SLOPass = false
		}
		rep.Targets = append(rep.Targets, row)
	}
	return rep
}

func renderReport(w io.Writer, r *serveReport) {
	fmt.Fprintf(w, "open-loop load, %.1fs per target\n", r.DurationS)
	fmt.Fprintf(w, "%-28s %9s %9s %7s %10s %9s %9s %9s\n",
		"target", "sent", "ok", "errs", "thru rps", "p50 ms", "p95 ms", "p99 ms")
	for _, t := range r.Targets {
		fmt.Fprintf(w, "%-28s %9d %9d %7d %10.1f %9.2f %9.2f %9.2f\n",
			t.Target, t.Sent, t.Completed, t.Errors, t.ThroughputRPS, t.P50Ms, t.P95Ms, t.P99Ms)
	}
	if r.SLOP99Ms > 0 {
		status := "PASS"
		if !r.SLOPass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "SLO p99 <= %.1f ms: %s\n", r.SLOP99Ms, status)
	}
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(b)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
