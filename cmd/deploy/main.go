// Command deploy lowers a zoo model to the int8 runtime, plans its memory,
// and reports the Figure 2-style memory map plus modeled latency and energy
// on a chosen MCU.
//
// Usage:
//
//	deploy -model MicroNet-KWS-M -device M [-bits 8] [-save model.mnet]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"micronets"
	"micronets/internal/graph"
	"micronets/internal/mcu"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("deploy: ")
	model := flag.String("model", "MicroNet-KWS-M", "zoo model name")
	device := flag.String("device", "M", "device class: S, M or L")
	bits := flag.Int("bits", 8, "weight/activation bit width (8 or 4)")
	save := flag.String("save", "", "optional path to write the serialized .mnet model")
	flag.Parse()

	spec, err := micronets.Model(*model)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := mcu.ByClass(*device)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := micronets.Deploy(spec, dev, micronets.DeployOptions{
		WeightBits: *bits, ActBits: *bits, AppendSoftmax: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s\n\n", spec.Name, dev)
	fmt.Print(dep.Report)
	fmt.Printf("\n  Ops: %.1f Mops   Latency: %.3f s   Power: %.0f mW   Energy: %.1f mJ\n",
		float64(dep.Model.TotalOps())/1e6, dep.LatencySeconds, dep.ActivePowerMW, dep.EnergyMJ)
	if dep.FitsErr != nil {
		fmt.Printf("  NOT DEPLOYABLE: %v\n", dep.FitsErr)
	} else {
		fmt.Printf("  Fits %s: yes\n", dev.Name)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		if err := graph.Save(f, dep.Model); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Serialized model: %s (%d bytes)\n", *save, graph.SerializedSize(dep.Model))
	}
}
