// Command characterize runs the §3 hardware characterization on the MCU
// simulator: layer-wise latency (Figure 3), whole-model latency linearity
// (Figure 4), power/energy (Figure 5) and duty-cycled traces (Figure 9).
// It can also emit raw CSV scatter data for external plotting.
//
// Usage:
//
//	characterize [-models 200] [-layers 100] [-csv fig4.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"micronets/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("characterize: ")
	nModels := flag.Int("models", 200, "random models per backbone (Figure 4/5)")
	nLayers := flag.Int("layers", 100, "random layers per kind (Figure 3)")
	csv := flag.String("csv", "", "write Figure 4 scatter points to this CSV file")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()

	pts, err := experiments.Figure3(*nLayers, *seed)
	if err != nil {
		log.Fatal(err)
	}
	spread := experiments.ThroughputSpread(pts)
	fmt.Printf("Figure 3 (%d layers on the large MCU): ops/s percentiles\n", len(pts))
	for _, k := range []string{"conv", "fc", "dwconv"} {
		s := spread[k]
		fmt.Printf("  %-8s p10 %6.1f   median %6.1f   p90 %6.1f  Mops/s\n", k, s[0], s[1], s[2])
	}

	series, err := experiments.Figure4(*nModels, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 4 (%d random models per backbone):\n", *nModels)
	for _, s := range series {
		fmt.Printf("  %-6s on %-12s r²=%.4f  throughput %.1f Mops/s\n",
			s.Backbone, s.Device, s.R2, s.ThroughputMops)
	}
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(f, "backbone,device,mops,latency_s")
		for _, s := range series {
			for _, p := range s.Points {
				fmt.Fprintf(f, "%s,%s,%.3f,%.6f\n", s.Backbone, s.Device, p.X, p.Y)
			}
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote scatter data to %s\n", *csv)
	}

	fig5, err := experiments.Figure5(*nModels, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 5 (%d random models):\n", *nModels)
	for _, s := range fig5 {
		fmt.Printf("  %-12s power σ/µ=%.5f (paper: 0.00731)  energy r²=%.4f  %.3f mJ/Mop\n",
			s.Device, s.PowerSigmaMu, s.EnergyR2, s.EnergySlopeMJ)
	}

	out, err := experiments.Figure9(*seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", out)
}
