// Command microvet runs the repo-specific static analyzers over the
// module and exits non-zero if any invariant is violated. It is wired
// into `make lint` and the CI lint job; see docs/ANALYSIS.md for what
// each analyzer enforces and how to bless intentional violations.
//
// Usage:
//
//	go run ./cmd/microvet [-analyzers a,b] [-list] [packages...]
//
// Packages default to ./... and accept any `go list` pattern.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"micronets/internal/analysis"
)

func main() {
	var (
		only  = flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
		list  = flag.Bool("list", false, "list analyzers and exit")
		reach = flag.Bool("reach", false, "print the hotpathalloc reachability set with provenance and exit")
	)
	flag.Parse()

	all := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return
	}

	analyzers := all
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		analyzers = nil
		for _, a := range all {
			if want[a.Name()] {
				analyzers = append(analyzers, a)
				delete(want, a.Name())
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "microvet: unknown analyzer %q (use -list)\n", name)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader(".")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "microvet: %v\n", err)
		os.Exit(2)
	}

	if *reach {
		hp := analysis.NewHotPathAlloc()
		analysis.Run(loader.Fset, pkgs, []analysis.Analyzer{hp})
		keys := make([]string, 0, len(hp.Reachable))
		for k := range hp.Reachable {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			from := hp.Origin[k]
			if from == "" {
				from = "(root)"
			}
			fmt.Printf("%-70s <- %s\n", k, from)
		}
		return
	}

	diags := analysis.Run(loader.Fset, pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "microvet: %d finding(s) across %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "microvet: clean (%d package(s), %d analyzer(s))\n", len(pkgs), len(analyzers))
}
