// Command router runs the model-mesh placement router: one /v2 front
// door over N cmd/serve replicas. It health-checks the replica list,
// places admin loads by consistent-hash affinity with budget spill
// (a 409 ram_budget_exceeded from one replica moves the load to the
// next candidate), and proxies the data plane with bounded
// retry-on-alternate-replica and exponential backoff.
//
// Usage:
//
//	router -replicas http://127.0.0.1:8151,http://127.0.0.1:8152
//	router -addr :8150 -replicas ...          # front-door listen address
//	router -health-interval 500ms             # faster mark-down/mark-up
//	router -down-after 3 -up-after 2          # health hysteresis
//	router -max-attempts 2 -retry-backoff 10ms
//
// Endpoints (same /v2 surface as one replica, fleet-merged where a
// replica answer would be partial):
//
//	GET  /v2/health/live | /v2/health/ready   (ready while ≥1 replica is up)
//	GET  /v2/models                           (fleet union)
//	GET  /v2/models/{name} | .../profile
//	POST /v2/models/{name}/infer
//	GET  /v2/repository/index                 (merged fleet view + per-replica budgets)
//	POST /v2/repository/models/{name}/load    (placed: affinity + budget spill)
//	POST /v2/repository/models/{name}/unload  (fanned out to holders)
//	GET  /v2/graphs | /v2/graphs/{name} | POST .../infer
//	PUT  /v2/graphs/{name}                    (placed where the models live)
//	DELETE /v2/graphs/{name}
//	GET  /metrics                             (micronets_mesh_* family)
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"micronets/internal/mesh"
)

func main() {
	addr := flag.String("addr", ":8150", "front-door listen address")
	replicas := flag.String("replicas", "", "comma-separated backend replica base URLs (required)")
	healthInterval := flag.Duration("health-interval", time.Second, "period of the replica health/fleet-view poll")
	downAfter := flag.Int("down-after", 2, "consecutive failed probes before a replica is marked down")
	upAfter := flag.Int("up-after", 1, "consecutive successful probes before a down replica is marked up")
	maxAttempts := flag.Int("max-attempts", 3, "max replicas one proxied request may try")
	retryBackoff := flag.Duration("retry-backoff", 25*time.Millisecond, "initial pause before retrying on an alternate replica (doubles per attempt, capped at 1s)")
	vnodes := flag.Int("vnodes", 128, "virtual nodes per replica on the consistent-hash ring")
	logFormat := flag.String("log", "text", "request log format: text or json")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logFormat == "json" {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	urls := splitList(*replicas)
	if len(urls) == 0 {
		logger.Error("at least one -replicas URL is required")
		os.Exit(1)
	}

	rt, err := mesh.New(mesh.Config{
		Replicas:       urls,
		HealthInterval: *healthInterval,
		DownAfter:      *downAfter,
		UpAfter:        *upAfter,
		MaxAttempts:    *maxAttempts,
		RetryBackoff:   *retryBackoff,
		VirtualNodes:   *vnodes,
		Logger:         logger,
	})
	if err != nil {
		logger.Error("router construction failed", "err", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := rt.ListenAndServe(ctx, *addr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("router failed", "err", err)
		os.Exit(1)
	}
	logger.Info("router exiting")
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
