// Command serve runs the HTTP inference server: zoo models behind a
// KServe-v2-style JSON protocol with pre-warmed interpreter pools,
// adaptive micro-batching, and a Triton-style model-repository control
// plane for hot load/unload with zero restarts.
//
// Usage:
//
//	serve                                   # serve every runtime-servable zoo model on :8151
//	serve -models MicroNet-KWS-S,DSCNN-S    # a subset
//	serve -max-batch 16 -max-delay 4ms      # wider batching window
//	serve -ram-budget 320KB                 # emulate the medium MCU: pool sizes and
//	                                        # max batch planned from what fits; models
//	                                        # over budget skipped (boot) or 409'd (admin)
//	serve -watch-specs frontier.json        # hot-load cmd/search exports on change
//	serve -no-admin                         # freeze the model and graph sets at boot
//	serve -debug-addr 127.0.0.1:6060        # net/http/pprof on a separate listener
//
// Endpoints:
//
//	GET  /v2/health/live | /v2/health/ready
//	GET  /v2/models | /v2/models/{name}
//	POST /v2/models/{name}/infer
//	GET  /v2/repository/index
//	POST /v2/repository/models/{name}/load | .../unload
//	GET  /v2/graphs | /v2/graphs/{name}
//	PUT  /v2/graphs/{name}        (register an inference graph)
//	DELETE /v2/graphs/{name}
//	POST /v2/graphs/{name}/infer  (route through cascades/ensembles/splits)
//	GET  /metrics
//
// SIGINT/SIGTERM triggers a graceful drain: readiness fails first, then
// in-flight requests and queued batches finish before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"micronets"
	"micronets/internal/serve"
	"micronets/internal/zoo"
)

func main() {
	addr := flag.String("addr", ":8151", "listen address")
	models := flag.String("models", "all", "comma-separated zoo models to load at boot, or 'all' for every servable model")
	specs := flag.String("specs", "", "comma-separated spec files (cmd/search -export output) to register into the zoo before loading")
	watchSpecs := flag.String("watch-specs", "", "comma-separated spec files or directories to poll and hot-load on change")
	watchInterval := flag.Duration("watch-interval", 2*time.Second, "poll interval for -watch-specs")
	ramBudget := flag.String("ram-budget", "0", "RAM budget for planned arenas across all models (e.g. 320KB to emulate DeviceM; 0 = unbudgeted)")
	noAdmin := flag.Bool("no-admin", false, "disable the /v2/repository and graph-mutation control-plane endpoints")
	pool := flag.Int("pool", 2, "desired interpreters per model (a RAM budget may scale this down)")
	maxBatch := flag.Int("max-batch", 8, "max requests coalesced into one InvokeBatch call (a RAM budget may scale this down)")
	maxDelay := flag.Duration("max-delay", 2*time.Millisecond, "max wait for the micro-batch window to fill")
	weightBits := flag.Int("weight-bits", 8, "weight datatype (8, or 4 for emulated sub-byte kernels)")
	actBits := flag.Int("act-bits", 8, "activation datatype (8 only for serving; 4-bit activations are a memory/latency emulation the runtime cannot execute)")
	softmax := flag.Bool("softmax", true, "append the classifier softmax op")
	seed := flag.Int64("seed", 42, "synthetic-weight seed (equal seeds serve bit-identical models)")
	logFormat := flag.String("log", "text", "request log format: text or json")
	debugAddr := flag.String("debug-addr", "", "optional address for the net/http/pprof debug listener (e.g. 127.0.0.1:6060); empty disables")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logFormat == "json" {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	budgetBytes, err := serve.ParseRAMBudget(*ramBudget)
	if err != nil {
		logger.Error("bad -ram-budget", "err", err)
		os.Exit(1)
	}

	// Register searched architectures first so "all" (and explicit -models
	// lists) can include freshly exported frontier winners.
	for _, path := range splitList(*specs) {
		loaded, err := zoo.RegisterSpecFile(path)
		if err != nil {
			logger.Error("loading spec file failed", "path", path, "err", err)
			os.Exit(1)
		}
		logger.Info("registered searched models", "path", path, "models", len(loaded))
	}

	// Resolve "all" here, not in the server: the spec watcher below may
	// load models into the repository before (or while) the server boots,
	// and the catalogue default must not depend on that race. A
	// catalogue-wide boot is best-effort under -ram-budget (unfittable
	// models are skipped with a warning); a curated -models list is not.
	names := splitList(*models)
	serveAll := *models == "all"
	if serveAll {
		names = zoo.ServableNames()
	}

	deploy := micronets.DeployOptions{
		WeightBits:    *weightBits,
		ActBits:       *actBits,
		Seed:          *seed,
		AppendSoftmax: *softmax,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The pprof surface rides a separate listener on a fresh mux, so
	// profiling endpoints are never exposed on the serving address and die
	// with the process rather than the drain.
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof debug listener", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	// The server owns the repository; the spec watcher runs inside its
	// lifecycle, starting strictly after the boot loads so the curated
	// model set can never lose a budget race against a watched file.
	err = micronets.Serve(ctx, micronets.ServeOptions{
		Addr:           *addr,
		Models:         names,
		PoolSize:       *pool,
		MaxBatch:       *maxBatch,
		MaxDelay:       *maxDelay,
		RAMBudgetBytes: budgetBytes,
		SkipOverBudget: serveAll,
		DisableAdmin:   *noAdmin,
		WatchSpecs:     splitList(*watchSpecs),
		WatchInterval:  *watchInterval,
		Logger:         logger,
		Deploy:         deploy,
	})
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
	logger.Info("drained, exiting")
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
