// Command serve runs the HTTP inference server: zoo models behind a
// KServe-v2-style JSON protocol with pre-warmed interpreter pools and
// adaptive micro-batching.
//
// Usage:
//
//	serve                                   # serve every runtime-servable zoo model on :8151
//	serve -models MicroNet-KWS-S,DSCNN-S    # a subset
//	serve -max-batch 16 -max-delay 4ms      # wider batching window
//
// Endpoints:
//
//	GET  /v2/health/live | /v2/health/ready
//	GET  /v2/models | /v2/models/{name}
//	POST /v2/models/{name}/infer
//	GET  /metrics
//
// SIGINT/SIGTERM triggers a graceful drain: readiness fails first, then
// in-flight requests and queued batches finish before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"micronets"
	"micronets/internal/zoo"
)

func main() {
	addr := flag.String("addr", ":8151", "listen address")
	models := flag.String("models", "all", "comma-separated zoo models to preload, or 'all' for every servable model")
	specs := flag.String("specs", "", "comma-separated spec files (cmd/search -export output) to register into the zoo before preloading")
	pool := flag.Int("pool", 2, "pre-warmed interpreters per model")
	maxBatch := flag.Int("max-batch", 8, "max requests coalesced into one InvokeBatch call")
	maxDelay := flag.Duration("max-delay", 2*time.Millisecond, "max wait for the micro-batch window to fill")
	weightBits := flag.Int("weight-bits", 8, "weight datatype (8, or 4 for emulated sub-byte kernels)")
	actBits := flag.Int("act-bits", 8, "activation datatype (8 or 4)")
	softmax := flag.Bool("softmax", true, "append the classifier softmax op")
	seed := flag.Int64("seed", 42, "synthetic-weight seed (equal seeds serve bit-identical models)")
	logFormat := flag.String("log", "text", "request log format: text or json")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logFormat == "json" {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	// Register searched architectures first so "all" (and explicit -models
	// lists) can include freshly exported frontier winners.
	for _, path := range strings.Split(*specs, ",") {
		if path = strings.TrimSpace(path); path == "" {
			continue
		}
		loaded, err := zoo.RegisterSpecFile(path)
		if err != nil {
			logger.Error("loading spec file failed", "path", path, "err", err)
			os.Exit(1)
		}
		logger.Info("registered searched models", "path", path, "models", len(loaded))
	}

	var names []string
	if *models == "all" {
		names = zoo.ServableNames()
	} else {
		for _, n := range strings.Split(*models, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err := micronets.Serve(ctx, micronets.ServeOptions{
		Addr:     *addr,
		Models:   names,
		PoolSize: *pool,
		MaxBatch: *maxBatch,
		MaxDelay: *maxDelay,
		Logger:   logger,
		Deploy: micronets.DeployOptions{
			WeightBits:    *weightBits,
			ActBits:       *actBits,
			Seed:          *seed,
			AppendSoftmax: *softmax,
		},
	})
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
	logger.Info("drained, exiting")
}
