// Command zoostat prints the model inventory: analyzed op counts, parameter
// counts and working-set estimates for every zoo architecture, side by side
// with the paper's published numbers. Used to validate (and calibrate) the
// reconstructed architectures.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"micronets/internal/graph"
	"micronets/internal/mcu"
	"micronets/internal/tflm"
	"micronets/internal/zoo"
)

func main() {
	cat := zoo.Catalog()
	fmt.Printf("%-22s %-4s %9s %9s %9s %9s %9s %9s %8s %8s %8s %8s\n",
		"model", "task", "Mops", "pMops", "flashKB", "pFlash", "sramKB", "pSRAM", "latM", "pLatM", "latS", "pLatS")
	for _, name := range zoo.Names() {
		e := cat[name]
		if e.Spec == nil {
			fmt.Printf("%-22s %-4s  (stats-only: paper flash %.0fKB sram %.0fKB)\n", e.Name, e.Task, e.Paper.FlashKB, e.Paper.SRAMKB)
			continue
		}
		m, err := graph.FromSpec(e.Spec, rand.New(rand.NewSource(1)), graph.LowerOptions{AppendSoftmax: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "lower %s: %v\n", name, err)
			continue
		}
		rep, err := tflm.Report(m, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "report %s: %v\n", name, err)
			continue
		}
		latM := mcu.Latency(m, mcu.F746ZG)
		latS := mcu.Latency(m, mcu.F446RE)
		fmt.Printf("%-22s %-4s %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f %8.3f %8.3f %8.3f %8.3f\n",
			e.Name, e.Task,
			float64(m.TotalOps())/1e6, e.Paper.MOps,
			float64(rep.ModelFlash())/1024, e.Paper.FlashKB,
			float64(rep.ModelSRAM())/1024, e.Paper.SRAMKB,
			latM, e.Paper.LatM, latS, e.Paper.LatS)
	}
}
