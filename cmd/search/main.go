// Command search runs differentiable NAS (§5) for a task under MCU
// constraints, on the synthetic datasets, and prints the discovered
// architecture with its resource usage.
//
// Usage:
//
//	search -task kws -device S [-steps 150] [-maxc 64] [-blocks 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"micronets/internal/core"
	"micronets/internal/datasets"
	"micronets/internal/mcu"
	"micronets/internal/nn"
	"micronets/internal/tflm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("search: ")
	task := flag.String("task", "kws", "task: kws or ad")
	device := flag.String("device", "S", "target MCU class: S, M or L")
	steps := flag.Int("steps", 150, "search steps")
	maxC := flag.Int("maxc", 64, "maximum block width (paper uses 276)")
	blocks := flag.Int("blocks", 5, "number of searchable DS blocks (paper uses 9)")
	perClass := flag.Int("per-class", 10, "synthetic clips per class")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	dev, err := mcu.ByClass(*device)
	if err != nil {
		log.Fatal(err)
	}

	var cfg core.SupernetConfig
	var ds *datasets.Dataset
	switch *task {
	case "kws":
		cfg = core.KWSSupernetConfig(49, 10, 12, *maxC, *blocks)
		ds = datasets.SynthKWS(datasets.KWSOptions{PerClass: *perClass, Seed: *seed})
	case "ad":
		cfg = core.ADSupernetConfig(*maxC, *blocks)
		ad := datasets.SynthAD(datasets.ADOptions{ClipsPerMachine: *perClass, Seed: *seed})
		ds = ad.ClassifierDataset()
	default:
		log.Fatalf("unknown task %q", *task)
	}
	rng := rand.New(rand.NewSource(*seed))
	trainDS, valDS := ds.Split(rng, 0.3)

	// Budgets from the device, minus the TFLM overheads the paper
	// subtracts ("available SRAM minus the expected TFLM overhead").
	sramBudget := float64(dev.SRAMBytes() - tflm.InterpreterSRAMBytes - tflm.OtherSRAMBytes)
	flashBudget := float64(dev.FlashBytes()-tflm.RuntimeCodeFlashBytes-tflm.OtherFlashBytes) * 0.8
	cons := core.Constraints{
		MaxParams:       flashBudget,
		MaxWorkMemElems: sramBudget * 0.8, // leave room for persistent buffers
		MaxOps:          40e6,             // latency target via the ops proxy (§5.1.2)
	}

	sn, err := core.NewSupernet(rng, cfg)
	if err != nil {
		log.Fatal(err)
	}
	trainRng := rand.New(rand.NewSource(*seed + 1))
	valRng := rand.New(rand.NewSource(*seed + 2))
	res, err := core.RunSearch(sn,
		func(step int) core.Batch {
			x, labels := trainDS.RandomBatch(trainRng, 16)
			return core.Batch{X: x, Labels: labels}
		},
		func(step int) core.Batch {
			x, labels := valDS.RandomBatch(valRng, 16)
			return core.Batch{X: x, Labels: labels}
		},
		cons,
		core.SearchConfig{
			Steps: *steps, ArchStartStep: *steps / 5,
			WeightLR: nn.CosineSchedule{Start: 0.05, End: 0.002, Steps: *steps},
			Seed:     *seed,
			Log:      func(s string) { fmt.Println("  " + s) },
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ndiscovered architecture:\n  %s\n\n", res.Spec)
	a, err := res.Spec.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("params %.1f KB (budget %.1f KB)\n", float64(a.TotalParams)/1024, cons.MaxParams/1024)
	fmt.Printf("working memory %.1f KB (budget %.1f KB)\n", float64(a.PeakWorkingSetBytes)/1024, cons.MaxWorkMemElems/1024)
	fmt.Printf("ops %.1f Mops (budget %.1f Mops)\n", float64(a.TotalOps())/1e6, cons.MaxOps/1e6)
	if len(res.Violations) > 0 {
		fmt.Printf("relaxed-model violations at end of search: %v\n", res.Violations)
	} else {
		fmt.Println("all constraints satisfied")
	}
}
