// Command search runs the parallel two-stage hardware-in-the-loop NAS
// harness (internal/search). Stage one sweeps: candidate architectures —
// random samples, evolutionary mutations of the live Pareto frontier, and
// an optional DNAS-warm-started seed (§5) — are lowered through the real
// deployment path (graph → tflm memory planner → mcu latency/energy
// models) and competed on (accuracy-proxy, latency, SRAM, flash). Stage
// two re-ranks: -finalists K frontier points are trained for real
// (-train-steps each) on the task's quick synthetic dataset, and their
// measured accuracy replaces the proxy in the finalist ordering. Every
// trial — and every finalist training — is checkpointed to a JSONL log
// for resume; frontier winners are exported as a spec file cmd/serve can
// load with -specs, or published straight into a RUNNING server's
// /v2/repository control plane with -publish (zero restarts).
//
// Usage:
//
//	search -task kws -device S -trials 64 -finalists 3 -train-steps 60
//	search -task ad -device L -trials 256 -log trials.jsonl -export frontier.json
//	search -task kws -device S -trials 64 -log trials.jsonl   # re-run resumes
//	search -trials 128 -publish http://localhost:8151         # hot-deploy the frontier
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"micronets/internal/experiments"
	"micronets/internal/mcu"
	"micronets/internal/search"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("search: ")
	task := flag.String("task", "kws", "task: kws or ad")
	device := flag.String("device", "S", "target MCU class: S, M or L")
	trials := flag.Int("trials", 64, "total candidate evaluations (including resumed)")
	workers := flag.Int("workers", 0, "parallel evaluation workers (0 = min(NumCPU, 8))")
	seed := flag.Int64("seed", 42, "search seed (per-trial candidate generation is derived from it)")
	sramKB := flag.Int("sram-kb", 0, "SRAM budget in KB (0 = device SRAM)")
	flashKB := flag.Int("flash-kb", 0, "flash budget in KB (0 = device flash)")
	maxLatMS := flag.Float64("max-latency-ms", 0, "latency budget in ms (0 = unconstrained)")
	dnasSteps := flag.Int("dnas-steps", 40, "DNAS warm-start steps for trial 0 (0 disables)")
	finalists := flag.Int("finalists", 3, "frontier finalists re-ranked by real training runs (0 disables stage two)")
	trainSteps := flag.Int("train-steps", 60, "training steps per finalist (stage two)")
	logPath := flag.String("log", "search_trials.jsonl", "JSONL trial log (checkpoint/resume); empty disables")
	exportPath := flag.String("export", "search_frontier.json", "spec file for the exported frontier; empty disables")
	exportTop := flag.Int("export-top", 0, "export at most N frontier models, spread across the latency range (0 = all)")
	publish := flag.String("publish", "", "base URL of a running serve instance (e.g. http://localhost:8151) to hot-load the exported frontier into, no restart")
	exportCascade := flag.String("export-cascade", "", "also write a cascade graph spec (PUT /v2/graphs body) built from the exported frontier")
	cascadeStages := flag.Int("cascade-stages", 3, "stages in the exported cascade, spread fast to slow across the frontier")
	cascadeThreshold := flag.Float64("cascade-threshold", 0.7, "early-exit confidence of the exported cascade's non-final stages")
	mutateFrac := flag.Float64("mutate-frac", 0.5, "fraction of trials mutating a frontier member (0 disables mutation)")
	flag.Parse()

	dev, err := mcu.ByClass(*device)
	if err != nil {
		log.Fatal(err)
	}
	budgets := search.DeviceBudgets(dev)
	if *sramKB > 0 {
		budgets.SRAMBytes = *sramKB * 1024
	}
	if *flashKB > 0 {
		budgets.FlashBytes = *flashKB * 1024
	}
	if *maxLatMS > 0 {
		budgets.MaxLatencyS = *maxLatMS / 1e3
	}

	// The harness treats MutateFrac 0 as "use the default"; the flag's 0
	// means "no mutation", which the harness spells as negative.
	if *mutateFrac == 0 {
		*mutateFrac = -1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("searching %s architectures for %s (budgets: %d KB SRAM, %d KB flash)\n",
		*task, dev, budgets.SRAMBytes/1024, budgets.FlashBytes/1024)
	res, err := search.Run(ctx, search.Config{
		Task:           *task,
		Device:         dev,
		Budgets:        budgets,
		Trials:         *trials,
		Workers:        *workers,
		Seed:           *seed,
		MutateFrac:     *mutateFrac,
		DNASSteps:      *dnasSteps,
		Finalists:      *finalists,
		TrainSteps:     *trainSteps,
		CheckpointPath: *logPath,
		Log:            func(s string) { fmt.Println("  " + s) },
	})
	if res == nil && err != nil {
		log.Fatal(err)
	}
	if err != nil {
		log.Printf("interrupted (%v); reporting the partial frontier", err)
	}

	pts := res.Frontier.Points()
	feasible := 0
	for _, r := range res.Trials {
		if r.Feasible {
			feasible++
		}
	}
	fmt.Printf("\n%d trials (%d resumed), %d feasible, Pareto frontier %d:\n\n",
		len(res.Trials), res.Resumed, feasible, len(pts))
	fmt.Print(experiments.RenderSearchTable(experiments.FrontierRows(res)))
	if finalistRows := experiments.FinalistRows(res); len(finalistRows) > 0 {
		fmt.Printf("\nfinalist re-rank (%d trained for %d steps each, best first):\n\n",
			len(finalistRows), *trainSteps)
		fmt.Print(experiments.RenderSearchTable(finalistRows))
	}
	if len(pts) == 0 {
		if err != nil {
			log.Fatal("interrupted before any feasible candidate was found; re-run with the same -log to continue")
		}
		log.Fatal("no feasible candidates; loosen the budgets or raise -trials")
	}

	if *exportPath != "" || *publish != "" || *exportCascade != "" {
		// Points are latency-sorted; an even spread covers the whole
		// frontier, not just its fast end.
		exported := search.SpreadPoints(pts, *exportTop)
		prefix := fmt.Sprintf("NAS-%s-%s", *task, dev.Class)
		file, names, err := search.ExportFrontier(exported, prefix, strings.Join(os.Args, " "))
		if err != nil {
			log.Fatal(err)
		}
		if *exportPath != "" {
			if err := search.WriteSpecFile(*exportPath, file); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nexported %d frontier models to %s (serve with: serve -specs %s -models %s)\n",
				len(names), *exportPath, *exportPath, strings.Join(names, ","))
		}
		if *exportCascade != "" {
			// The cascade spans the *exported* points — its stage names are
			// the spec-file names a server loads, so the two files travel
			// together.
			spec, err := search.ExportCascade(exported, prefix, *cascadeThreshold, *cascadeStages)
			if err != nil {
				log.Fatal(err)
			}
			if err := search.WriteCascadeFile(*exportCascade, spec); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("exported a %d-stage cascade graph to %s (register with: curl -X PUT .../v2/graphs/%s -d @%s)\n",
				len(spec.Root.Children), *exportCascade, spec.Name, *exportCascade)
		}
		if *publish != "" {
			// Hot-load the frontier into the running server through its
			// /v2/repository admin API — the zero-restart serving path.
			loaded, err := search.PublishFrontier(ctx, *publish, file)
			if err != nil {
				if len(loaded) > 0 {
					log.Printf("partially published %d models (%s) before failing", len(loaded), strings.Join(loaded, ","))
				}
				log.Fatal(err)
			}
			fmt.Printf("published %d frontier models to %s with zero restarts: %s\n",
				len(loaded), *publish, strings.Join(loaded, ","))
		}
	}
}
