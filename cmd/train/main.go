// Command train trains a model on one of the synthetic task datasets,
// optionally with QAT, evaluates it, exports it to the int8 runtime and
// reports the float-vs-int8 accuracy and deployment cost.
//
// Usage:
//
//	train -task kws [-steps 200] [-width 16] [-qat] [-device S]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"micronets"
	"micronets/internal/arch"
	"micronets/internal/datasets"
	"micronets/internal/graph"
	"micronets/internal/mcu"
	"micronets/internal/nn"
	"micronets/internal/tensor"
	"micronets/internal/tflm"
	"micronets/internal/train"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")
	task := flag.String("task", "kws", "task: kws, vww or ad")
	steps := flag.Int("steps", 200, "training steps")
	width := flag.Int("width", 16, "base channel width of the demo model")
	qat := flag.Bool("qat", true, "quantization-aware training")
	device := flag.String("device", "S", "deployment MCU class")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var ds *datasets.Dataset
	var spec *arch.Spec
	w := *width
	switch *task {
	case "kws":
		ds = datasets.SynthKWS(datasets.KWSOptions{PerClass: 12, Seed: *seed})
		spec = &arch.Spec{
			Name: "train-kws", Task: "kws", InputH: 49, InputW: 10, InputC: 1, NumClasses: 12,
			Blocks: []arch.Block{
				{Kind: arch.Conv, KH: 10, KW: 4, OutC: w, Stride: 1},
				{Kind: arch.DSBlock, KH: 3, KW: 3, OutC: w + w/2, Stride: 2},
				{Kind: arch.DSBlock, KH: 3, KW: 3, OutC: w + w/2, Stride: 1},
				{Kind: arch.AvgPool, KH: 25, KW: 5, Stride: 1},
				{Kind: arch.Dense, OutC: 12},
			},
		}
	case "vww":
		ds = datasets.SynthVWW(datasets.VWWOptions{Size: 32, PerClass: 60, Seed: *seed})
		spec = &arch.Spec{
			Name: "train-vww", Task: "vww", InputH: 32, InputW: 32, InputC: 1, NumClasses: 2,
			Blocks: []arch.Block{
				{Kind: arch.Conv, KH: 3, KW: 3, OutC: w / 2, Stride: 2},
				{Kind: arch.IBN, KH: 3, KW: 3, Expand: w, OutC: w / 2, Stride: 1},
				{Kind: arch.IBN, KH: 3, KW: 3, Expand: w * 2, OutC: w, Stride: 2},
				{Kind: arch.GlobalPool},
				{Kind: arch.Dense, OutC: 2},
			},
		}
	case "ad":
		ad := datasets.SynthAD(datasets.ADOptions{ClipsPerMachine: 8, Seed: *seed})
		ds = ad.ClassifierDataset()
		spec = &arch.Spec{
			Name: "train-ad", Task: "ad", InputH: 32, InputW: 32, InputC: 1, NumClasses: 4,
			Blocks: []arch.Block{
				{Kind: arch.Conv, KH: 3, KW: 3, OutC: w / 2, Stride: 1},
				{Kind: arch.DSBlock, KH: 3, KW: 3, OutC: w, Stride: 2},
				{Kind: arch.DSBlock, KH: 3, KW: 3, OutC: w, Stride: 2},
				{Kind: arch.GlobalPool},
				{Kind: arch.Dense, OutC: 4},
			},
		}
	default:
		log.Fatalf("unknown task %q", *task)
	}

	opts := arch.BuildOptions{}
	if *qat {
		opts.QuantWeightBits, opts.QuantActBits = 8, 8
	}
	model, err := arch.Build(rng, spec, opts)
	if err != nil {
		log.Fatal(err)
	}
	trainDS, testDS := ds.Split(rng, 0.25)
	fmt.Printf("training %s on %d samples (%d steps, QAT=%v)...\n",
		spec.Name, len(trainDS.Samples), *steps, *qat)
	if _, err := train.Fit(model, trainDS, train.Config{
		Steps: *steps, BatchSize: 16,
		LR:          nn.CosineSchedule{Start: 0.05, End: 0.001, Steps: *steps},
		WeightDecay: 0.001,
		SpecAugment: *task == "kws",
		MixupAlpha:  map[bool]float32{true: 0.3, false: 0}[*task == "ad"],
		Seed:        *seed,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("float test accuracy: %.1f%%\n", train.Accuracy(model, testDS)*100)

	calib, _ := trainDS.RandomBatch(rng, 32)
	gm, err := graph.Export(spec, model, calib, graph.LowerOptions{AppendSoftmax: true})
	if err != nil {
		log.Fatal(err)
	}
	ip, err := tflm.NewInterpreter(gm, 0)
	if err != nil {
		log.Fatal(err)
	}
	xs := make([]*tensor.Tensor, len(testDS.Samples))
	for i, s := range testDS.Samples {
		xs[i] = s.X
	}
	preds, _, err := ip.ClassifyBatch(xs)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i, s := range testDS.Samples {
		if preds[i] == s.Label {
			correct++
		}
	}
	fmt.Printf("int8 test accuracy:  %.1f%%\n", float64(correct)/float64(len(testDS.Samples))*100)

	dev, err := mcu.ByClass(*device)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := micronets.DeployModel(spec, gm, dev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed on %s: latency %.3f s, energy %.1f mJ, SRAM %.1f KB, flash %.1f KB\n",
		dev.Name, dep.LatencySeconds, dep.EnergyMJ,
		float64(dep.Report.ModelSRAM())/1024, float64(dep.Report.ModelFlash())/1024)
	if dep.FitsErr != nil {
		fmt.Printf("WARNING: %v\n", dep.FitsErr)
	}
}
