// Package micronets is the public API of the MicroNets reproduction
// (Banbury et al., MLSys 2021): TinyML model architectures discovered with
// differentiable NAS under MCU memory and latency constraints, deployed
// through a TFLM-style int8 interpreter and evaluated on simulated
// commodity Cortex-M microcontrollers.
//
// The typical flow is:
//
//	spec, _ := micronets.Model("MicroNet-KWS-S")
//	dep, _ := micronets.Deploy(spec, micronets.DeviceS, micronets.DeployOptions{})
//	fmt.Println(dep.LatencySeconds, dep.EnergyMJ, dep.Report)
//
// Training, dataset synthesis, DNAS search and the experiment harness live
// in the internal packages and are exercised by the cmd/ tools and
// examples/.
package micronets

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"runtime"
	"time"

	"micronets/internal/arch"
	"micronets/internal/graph"
	"micronets/internal/mcu"
	"micronets/internal/serve"
	"micronets/internal/tensor"
	"micronets/internal/tflm"
	"micronets/internal/zoo"
)

// Device size classes matching the paper's small/medium/large MCUs.
var (
	// DeviceS is the STM32F446RE (Cortex-M4, 128 KB SRAM, 512 KB flash).
	DeviceS = mcu.F446RE
	// DeviceM is the STM32F746ZG (Cortex-M7, 320 KB SRAM, 1 MB flash).
	DeviceM = mcu.F746ZG
	// DeviceL is the STM32F767ZI (Cortex-M7, 512 KB SRAM, 2 MB flash).
	DeviceL = mcu.F767ZI
)

// Model returns a named architecture from the zoo (see ModelNames).
func Model(name string) (*arch.Spec, error) {
	e, err := zoo.Get(name)
	if err != nil {
		return nil, err
	}
	if e.Spec == nil {
		return nil, fmt.Errorf("micronets: %s is a stats-only comparison point (no public architecture)", name)
	}
	return e.Spec, nil
}

// ModelNames lists every model in the zoo.
func ModelNames() []string { return zoo.Names() }

// DeployOptions configures Deploy.
type DeployOptions struct {
	// WeightBits and ActBits select the datatype (default 8; 4 enables the
	// paper's emulated sub-byte kernels).
	WeightBits, ActBits int
	// Seed controls the synthetic weights used when no trained model is
	// supplied.
	Seed int64
	// AppendSoftmax adds the classifier softmax op.
	AppendSoftmax bool
}

// Deployment is the result of deploying a model on a device.
type Deployment struct {
	Spec   *arch.Spec
	Model  *graph.Model
	Device *mcu.Device
	Report *tflm.MemoryReport

	// LatencySeconds is the modeled end-to-end inference latency.
	LatencySeconds float64
	// ActivePowerMW is the board draw while inferring.
	ActivePowerMW float64
	// EnergyMJ is energy per inference in millijoules.
	EnergyMJ float64
	// Layers is the per-op latency breakdown.
	Layers []mcu.LayerLatency
	// FitsErr is non-nil when the model does not fit the device.
	FitsErr error
}

// Deploy lowers a spec to the int8 runtime, plans its memory, checks it
// against the device budgets, and models latency and energy. A non-fitting
// model still returns a Deployment (with FitsErr set) so callers can report
// "not deployable" rows as the paper's tables do; models using unsupported
// operators return an error.
func Deploy(spec *arch.Spec, dev *mcu.Device, opts DeployOptions) (*Deployment, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	m, err := graph.FromSpec(spec, rng, graph.LowerOptions{
		WeightBits:    opts.WeightBits,
		ActBits:       opts.ActBits,
		AppendSoftmax: opts.AppendSoftmax,
	})
	if err != nil {
		return nil, err
	}
	return DeployModel(spec, m, dev)
}

// DeployModel deploys an already-lowered model (e.g. a trained export).
func DeployModel(spec *arch.Spec, m *graph.Model, dev *mcu.Device) (*Deployment, error) {
	report, err := tflm.Report(m, nil)
	if err != nil {
		return nil, err
	}
	lat, layers, err := mcu.ModelLatency(m, dev)
	if err != nil {
		return nil, err
	}
	d := &Deployment{
		Spec: spec, Model: m, Device: dev, Report: report,
		LatencySeconds: lat,
		ActivePowerMW:  mcu.ActivePowerMW(m, dev),
		EnergyMJ:       mcu.EnergyPerInferenceMJ(m, dev),
		Layers:         layers,
	}
	d.FitsErr = report.FitsDevice(dev.SRAMBytes(), dev.FlashBytes())
	for _, op := range m.Ops {
		if op.Kind == graph.OpTransposedConv {
			// Join rather than overwrite: a model can both overflow the
			// device and use an unsupported operator, and callers deserve
			// to see every reason it is not deployable.
			d.FitsErr = errors.Join(d.FitsErr,
				fmt.Errorf("micronets: %s uses %s, unsupported by the runtime", m.Name, op.Kind))
			break
		}
	}
	return d, nil
}

// classifyRegistry caches lowered models behind ClassifyBatch and
// Preload, so search/characterization loops that re-classify the same
// spec amortize lowering and memory planning across calls, not just
// within one batch. The cache is LRU-bounded so a DNAS search sweeping
// thousands of distinct candidate specs cannot grow memory without bound,
// and pools lazily grow to GOMAXPROCS so concurrent callers classifying
// the same spec are not serialized onto one interpreter.
var classifyRegistry = serve.NewRegistry(serve.RegistryConfig{
	PoolSize:   1,
	PoolMax:    runtime.GOMAXPROCS(0),
	MaxEntries: 32,
})

// modelOptions maps the public DeployOptions onto the serving registry's
// cache key.
func modelOptions(opts DeployOptions) serve.ModelOptions {
	return serve.ModelOptions{
		WeightBits:    opts.WeightBits,
		ActBits:       opts.ActBits,
		Seed:          opts.Seed,
		AppendSoftmax: opts.AppendSoftmax,
	}
}

// ClassifyBatch runs every input through a pooled interpreter for the
// spec on the parallel GEMM engine — the batched analogue of
// Interpreter.Classify for search, characterization and benchmark loops.
// The lowered graph and its memory plan are cached in a process-wide
// registry keyed by the spec and options, so repeat calls for the same
// model pay neither lowering nor planning again. It returns the argmax
// class and dequantized top score per input.
func ClassifyBatch(spec *arch.Spec, opts DeployOptions, xs []*tensor.Tensor) ([]int, []float32, error) {
	entry, err := classifyRegistry.GetSpec(spec, modelOptions(opts))
	if err != nil {
		return nil, nil, err
	}
	return entry.ClassifyBatch(xs)
}

// Preload warms the ClassifyBatch cache for a set of zoo models, so an
// evaluation loop's first call pays no lowering latency. It is a
// compatibility shim over the registry cache that backs ClassifyBatch;
// serving processes should manage model lifecycles through a Repository
// (NewRepository / ServeOptions.Repository) instead.
func Preload(names []string, opts DeployOptions) error {
	return classifyRegistry.Preload(names, modelOptions(opts))
}

// ClassifyModelBatch is ClassifyBatch for an already-lowered model (e.g.
// a trained export).
func ClassifyModelBatch(m *graph.Model, xs []*tensor.Tensor) ([]int, []float32, error) {
	ip, err := tflm.NewInterpreter(m, 0)
	if err != nil {
		return nil, nil, err
	}
	return ip.ClassifyBatch(xs)
}

// ---- model repository: the serving control plane ----

// ModelStatus is a snapshot of one model version in a Repository: name,
// version number, lifecycle state, and the budget-planned capacity
// (pool size, max batch, arena reservation). It is also the row format
// of the GET /v2/repository/index admin endpoint.
type ModelStatus = serve.ModelStatus

// Model lifecycle states (see serve.ModelState).
const (
	StateLoading  = serve.StateLoading
	StateReady    = serve.StateReady
	StateDraining = serve.StateDraining
	StateUnloaded = serve.StateUnloaded
)

// RepositoryOptions configures NewRepository.
type RepositoryOptions struct {
	// RAMBudgetBytes bounds the summed planned arena bytes across every
	// loaded model version (0 = unbudgeted). Set it to a device-class
	// SRAM size — e.g. 320*1024 to emulate DeviceM — and the repository
	// sizes each model's pool and micro-batch from what fits, rejecting
	// loads that would not (serve.BudgetError).
	RAMBudgetBytes int
	// PoolSize is the desired interpreter replicas per model (default 2);
	// a budget may scale it down per model, never up.
	PoolSize int
	// MaxBatch and MaxDelay bound the micro-batching window (defaults 8
	// and 2ms); a budget may scale MaxBatch down per model.
	MaxBatch int
	MaxDelay time.Duration
	// Logger receives lifecycle events.
	Logger *slog.Logger
	// Deploy is the default lowering for LoadModel/LoadSpecFile/Watch.
	Deploy DeployOptions
}

// Repository is the versioned model store behind the serving API: it
// owns load/unload/swap lifecycles, keyed by spec fingerprint + quant
// options, with blue/green version swaps (the old version drains only
// after the new one is ready) and RAM-budgeted capacity planning via
// tflm.PlanMemoryBatch. Pass one to ServeOptions.Repository to drive a
// live server programmatically, or let Serve build its own and drive it
// over the /v2/repository admin endpoints.
type Repository struct{ inner *serve.Repository }

// NewRepository returns an empty repository.
func NewRepository(opts RepositoryOptions) *Repository {
	return &Repository{inner: serve.NewRepository(serve.RepositoryConfig{
		RAMBudgetBytes: opts.RAMBudgetBytes,
		PoolSize:       opts.PoolSize,
		Batch:          serve.BatcherConfig{MaxBatch: opts.MaxBatch, MaxDelay: opts.MaxDelay},
		Options:        modelOptions(opts.Deploy),
		Logger:         opts.Logger,
	})}
}

// Load publishes spec as the serving version of spec.Name — lowering,
// budget planning, pool warm-up, then a blue/green swap if an older
// version was serving. Re-loading an identical spec+options is an
// idempotent no-op. An over-budget load fails with *serve.BudgetError.
func (r *Repository) Load(spec *arch.Spec, opts DeployOptions) (ModelStatus, error) {
	return r.inner.Load(spec, modelOptions(opts))
}

// LoadModel is Load for a zoo catalogue name (including search exports
// registered at runtime).
func (r *Repository) LoadModel(name string, opts DeployOptions) (ModelStatus, error) {
	return r.inner.LoadZoo(name, modelOptions(opts))
}

// LoadSpecFile registers a cmd/search -export file into the zoo and
// loads every spec in it — the restartless -specs.
func (r *Repository) LoadSpecFile(path string, opts DeployOptions) ([]ModelStatus, error) {
	return r.inner.LoadSpecFile(path, modelOptions(opts))
}

// Swap is Load restricted to names already serving: an explicit
// redeploy, failing with *serve.NotLoadedError otherwise.
func (r *Repository) Swap(spec *arch.Spec, opts DeployOptions) (ModelStatus, error) {
	return r.inner.Swap(spec, modelOptions(opts))
}

// Unload drains the serving version of a name and retires it; in-flight
// inferences finish first.
func (r *Repository) Unload(name string) error { return r.inner.Unload(name) }

// Index reports every live version (READY, LOADING, DRAINING), sorted by
// name then newest first.
func (r *Repository) Index() []ModelStatus { return r.inner.Index() }

// Watch polls spec files (or directories of *.json spec files) and
// hot-loads new or changed exports until ctx is done — run it in a
// goroutine next to Serve to make `cmd/search -export` output servable
// with zero restarts.
func (r *Repository) Watch(ctx context.Context, paths []string, interval time.Duration, opts DeployOptions) {
	r.inner.WatchSpecs(ctx, paths, interval, modelOptions(opts))
}

// Close drains every model version and rejects further loads.
func (r *Repository) Close() { r.inner.Close() }

// ServeOptions configures the HTTP inference server (see internal/serve
// for the subsystem: model repository → interpreter pools → adaptive
// micro-batcher → kernels engine).
type ServeOptions struct {
	// Addr is the listen address (default ":8151").
	Addr string
	// Repository, when set, is the control plane the server serves from
	// — the caller keeps its lifecycle and may Load/Unload concurrently
	// with live traffic. When nil the server builds and owns one.
	Repository *Repository
	// Models are zoo names to load at boot; empty serves every
	// runtime-servable catalogue model (when the repository starts
	// empty), skipping models that exceed the RAM budget.
	Models []string
	// PoolSize is desired pre-warmed interpreters per model (default 2).
	PoolSize int
	// MaxBatch and MaxDelay bound the micro-batching window (defaults 8
	// and 2ms).
	MaxBatch int
	MaxDelay time.Duration
	// RAMBudgetBytes bounds summed planned arena bytes across all loaded
	// models (0 = unbudgeted). Ignored when Repository is set.
	RAMBudgetBytes int
	// SkipOverBudget makes the boot Models list best-effort under a RAM
	// budget: models that cannot fit are skipped with a warning instead
	// of failing startup. Set for catalogue-wide boots.
	SkipOverBudget bool
	// DisableAdmin turns off the /v2/repository endpoints, freezing the
	// model set at the boot list.
	DisableAdmin bool
	// WatchSpecs lists spec files or directories of *.json spec files to
	// poll and hot-load on change; the watcher starts after the boot
	// loads (so it never races them for budget) and stops with the
	// server. WatchInterval defaults to 2s.
	WatchSpecs    []string
	WatchInterval time.Duration
	// Logger receives one structured line per request.
	Logger *slog.Logger
	// Deploy selects the default lowering (bits, seed, softmax).
	Deploy DeployOptions
}

func (o ServeOptions) config() serve.Config {
	cfg := serve.Config{
		Models:         o.Models,
		Options:        modelOptions(o.Deploy),
		PoolSize:       o.PoolSize,
		Batch:          serve.BatcherConfig{MaxBatch: o.MaxBatch, MaxDelay: o.MaxDelay},
		RAMBudgetBytes: o.RAMBudgetBytes,
		SkipOverBudget: o.SkipOverBudget,
		DisableAdmin:   o.DisableAdmin,
		WatchSpecs:     o.WatchSpecs,
		WatchInterval:  o.WatchInterval,
		Logger:         o.Logger,
	}
	if o.Repository != nil {
		cfg.Repository = o.Repository.inner
	}
	return cfg
}

// Serve loads the requested models into the repository and serves the
// KServe-v2-style inference protocol (/v2/health/*, /v2/models,
// /v2/models/{name}/infer, /metrics) plus the /v2/repository admin
// control plane until ctx is cancelled, then drains gracefully. This is
// the long-lived serving path behind cmd/serve, and a thin shim over the
// Repository lifecycle API.
func Serve(ctx context.Context, opts ServeOptions) error {
	srv, err := serve.New(opts.config())
	if err != nil {
		return err
	}
	addr := opts.Addr
	if addr == "" {
		addr = ":8151"
	}
	return srv.ListenAndServe(ctx, addr)
}

// ServeHandler returns the fully warmed inference handler without binding
// a listener — for embedding the serving surface into an existing HTTP
// server or tests. Like Serve it is a shim over the Repository control
// plane. The caller owns the returned server's lifecycle; call its Close
// to drain. WatchSpecs is rejected here: the watcher needs a serving
// lifecycle to stop with, so embedders run Repository.Watch themselves
// on a context they own.
func ServeHandler(opts ServeOptions) (http.Handler, *serve.Server, error) {
	if len(opts.WatchSpecs) > 0 {
		return nil, nil, errors.New("micronets: ServeHandler does not run the spec watcher; use Serve, or run Repository.Watch on your own context")
	}
	srv, err := serve.New(opts.config())
	if err != nil {
		return nil, nil, err
	}
	return srv.Handler(), srv, nil
}

// Paper returns the published Table 4/2/3 numbers for a model, for
// side-by-side comparison with simulated measurements.
func Paper(name string) (zoo.PaperStats, error) {
	e, err := zoo.Get(name)
	if err != nil {
		return zoo.PaperStats{}, err
	}
	return e.Paper, nil
}
