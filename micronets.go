// Package micronets is the public API of the MicroNets reproduction
// (Banbury et al., MLSys 2021): TinyML model architectures discovered with
// differentiable NAS under MCU memory and latency constraints, deployed
// through a TFLM-style int8 interpreter and evaluated on simulated
// commodity Cortex-M microcontrollers.
//
// The typical flow is:
//
//	spec, _ := micronets.Model("MicroNet-KWS-S")
//	dep, _ := micronets.Deploy(spec, micronets.DeviceS, micronets.DeployOptions{})
//	fmt.Println(dep.LatencySeconds, dep.EnergyMJ, dep.Report)
//
// Training, dataset synthesis, DNAS search and the experiment harness live
// in the internal packages and are exercised by the cmd/ tools and
// examples/.
package micronets

import (
	"fmt"
	"math/rand"

	"micronets/internal/arch"
	"micronets/internal/graph"
	"micronets/internal/mcu"
	"micronets/internal/tensor"
	"micronets/internal/tflm"
	"micronets/internal/zoo"
)

// Device size classes matching the paper's small/medium/large MCUs.
var (
	// DeviceS is the STM32F446RE (Cortex-M4, 128 KB SRAM, 512 KB flash).
	DeviceS = mcu.F446RE
	// DeviceM is the STM32F746ZG (Cortex-M7, 320 KB SRAM, 1 MB flash).
	DeviceM = mcu.F746ZG
	// DeviceL is the STM32F767ZI (Cortex-M7, 512 KB SRAM, 2 MB flash).
	DeviceL = mcu.F767ZI
)

// Model returns a named architecture from the zoo (see ModelNames).
func Model(name string) (*arch.Spec, error) {
	e, err := zoo.Get(name)
	if err != nil {
		return nil, err
	}
	if e.Spec == nil {
		return nil, fmt.Errorf("micronets: %s is a stats-only comparison point (no public architecture)", name)
	}
	return e.Spec, nil
}

// ModelNames lists every model in the zoo.
func ModelNames() []string { return zoo.Names() }

// DeployOptions configures Deploy.
type DeployOptions struct {
	// WeightBits and ActBits select the datatype (default 8; 4 enables the
	// paper's emulated sub-byte kernels).
	WeightBits, ActBits int
	// Seed controls the synthetic weights used when no trained model is
	// supplied.
	Seed int64
	// AppendSoftmax adds the classifier softmax op.
	AppendSoftmax bool
}

// Deployment is the result of deploying a model on a device.
type Deployment struct {
	Spec   *arch.Spec
	Model  *graph.Model
	Device *mcu.Device
	Report *tflm.MemoryReport

	// LatencySeconds is the modeled end-to-end inference latency.
	LatencySeconds float64
	// ActivePowerMW is the board draw while inferring.
	ActivePowerMW float64
	// EnergyMJ is energy per inference in millijoules.
	EnergyMJ float64
	// Layers is the per-op latency breakdown.
	Layers []mcu.LayerLatency
	// FitsErr is non-nil when the model does not fit the device.
	FitsErr error
}

// Deploy lowers a spec to the int8 runtime, plans its memory, checks it
// against the device budgets, and models latency and energy. A non-fitting
// model still returns a Deployment (with FitsErr set) so callers can report
// "not deployable" rows as the paper's tables do; models using unsupported
// operators return an error.
func Deploy(spec *arch.Spec, dev *mcu.Device, opts DeployOptions) (*Deployment, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	m, err := graph.FromSpec(spec, rng, graph.LowerOptions{
		WeightBits:    opts.WeightBits,
		ActBits:       opts.ActBits,
		AppendSoftmax: opts.AppendSoftmax,
	})
	if err != nil {
		return nil, err
	}
	return DeployModel(spec, m, dev)
}

// DeployModel deploys an already-lowered model (e.g. a trained export).
func DeployModel(spec *arch.Spec, m *graph.Model, dev *mcu.Device) (*Deployment, error) {
	report, err := tflm.Report(m, nil)
	if err != nil {
		return nil, err
	}
	lat, layers := mcu.ModelLatency(m, dev)
	d := &Deployment{
		Spec: spec, Model: m, Device: dev, Report: report,
		LatencySeconds: lat,
		ActivePowerMW:  mcu.ActivePowerMW(m, dev),
		EnergyMJ:       mcu.EnergyPerInferenceMJ(m, dev),
		Layers:         layers,
	}
	d.FitsErr = report.FitsDevice(dev.SRAMBytes(), dev.FlashBytes())
	for _, op := range m.Ops {
		if op.Kind == graph.OpTransposedConv {
			d.FitsErr = fmt.Errorf("micronets: %s uses %s, unsupported by the runtime", m.Name, op.Kind)
		}
	}
	return d, nil
}

// ClassifyBatch lowers a spec once, plans its memory once, and runs every
// input through the resulting interpreter on the parallel GEMM engine —
// the batched analogue of Interpreter.Classify for search,
// characterization and benchmark loops that amortizes graph lowering and
// plan setup across the batch. It returns the argmax class and
// dequantized top score per input.
func ClassifyBatch(spec *arch.Spec, opts DeployOptions, xs []*tensor.Tensor) ([]int, []float32, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	m, err := graph.FromSpec(spec, rng, graph.LowerOptions{
		WeightBits:    opts.WeightBits,
		ActBits:       opts.ActBits,
		AppendSoftmax: opts.AppendSoftmax,
	})
	if err != nil {
		return nil, nil, err
	}
	return ClassifyModelBatch(m, xs)
}

// ClassifyModelBatch is ClassifyBatch for an already-lowered model (e.g.
// a trained export).
func ClassifyModelBatch(m *graph.Model, xs []*tensor.Tensor) ([]int, []float32, error) {
	ip, err := tflm.NewInterpreter(m, 0)
	if err != nil {
		return nil, nil, err
	}
	return ip.ClassifyBatch(xs)
}

// Paper returns the published Table 4/2/3 numbers for a model, for
// side-by-side comparison with simulated measurements.
func Paper(name string) (zoo.PaperStats, error) {
	e, err := zoo.Get(name)
	if err != nil {
		return zoo.PaperStats{}, err
	}
	return e.Paper, nil
}
