// Package micronets is the public API of the MicroNets reproduction
// (Banbury et al., MLSys 2021): TinyML model architectures discovered with
// differentiable NAS under MCU memory and latency constraints, deployed
// through a TFLM-style int8 interpreter and evaluated on simulated
// commodity Cortex-M microcontrollers.
//
// The typical flow is:
//
//	spec, _ := micronets.Model("MicroNet-KWS-S")
//	dep, _ := micronets.Deploy(spec, micronets.DeviceS, micronets.DeployOptions{})
//	fmt.Println(dep.LatencySeconds, dep.EnergyMJ, dep.Report)
//
// Training, dataset synthesis, DNAS search and the experiment harness live
// in the internal packages and are exercised by the cmd/ tools and
// examples/.
package micronets

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"runtime"
	"time"

	"micronets/internal/arch"
	"micronets/internal/graph"
	"micronets/internal/mcu"
	"micronets/internal/serve"
	"micronets/internal/tensor"
	"micronets/internal/tflm"
	"micronets/internal/zoo"
)

// Device size classes matching the paper's small/medium/large MCUs.
var (
	// DeviceS is the STM32F446RE (Cortex-M4, 128 KB SRAM, 512 KB flash).
	DeviceS = mcu.F446RE
	// DeviceM is the STM32F746ZG (Cortex-M7, 320 KB SRAM, 1 MB flash).
	DeviceM = mcu.F746ZG
	// DeviceL is the STM32F767ZI (Cortex-M7, 512 KB SRAM, 2 MB flash).
	DeviceL = mcu.F767ZI
)

// Model returns a named architecture from the zoo (see ModelNames).
func Model(name string) (*arch.Spec, error) {
	e, err := zoo.Get(name)
	if err != nil {
		return nil, err
	}
	if e.Spec == nil {
		return nil, fmt.Errorf("micronets: %s is a stats-only comparison point (no public architecture)", name)
	}
	return e.Spec, nil
}

// ModelNames lists every model in the zoo.
func ModelNames() []string { return zoo.Names() }

// DeployOptions configures Deploy.
type DeployOptions struct {
	// WeightBits and ActBits select the datatype (default 8; 4 enables the
	// paper's emulated sub-byte kernels).
	WeightBits, ActBits int
	// Seed controls the synthetic weights used when no trained model is
	// supplied.
	Seed int64
	// AppendSoftmax adds the classifier softmax op.
	AppendSoftmax bool
}

// Deployment is the result of deploying a model on a device.
type Deployment struct {
	Spec   *arch.Spec
	Model  *graph.Model
	Device *mcu.Device
	Report *tflm.MemoryReport

	// LatencySeconds is the modeled end-to-end inference latency.
	LatencySeconds float64
	// ActivePowerMW is the board draw while inferring.
	ActivePowerMW float64
	// EnergyMJ is energy per inference in millijoules.
	EnergyMJ float64
	// Layers is the per-op latency breakdown.
	Layers []mcu.LayerLatency
	// FitsErr is non-nil when the model does not fit the device.
	FitsErr error
}

// Deploy lowers a spec to the int8 runtime, plans its memory, checks it
// against the device budgets, and models latency and energy. A non-fitting
// model still returns a Deployment (with FitsErr set) so callers can report
// "not deployable" rows as the paper's tables do; models using unsupported
// operators return an error.
func Deploy(spec *arch.Spec, dev *mcu.Device, opts DeployOptions) (*Deployment, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	m, err := graph.FromSpec(spec, rng, graph.LowerOptions{
		WeightBits:    opts.WeightBits,
		ActBits:       opts.ActBits,
		AppendSoftmax: opts.AppendSoftmax,
	})
	if err != nil {
		return nil, err
	}
	return DeployModel(spec, m, dev)
}

// DeployModel deploys an already-lowered model (e.g. a trained export).
func DeployModel(spec *arch.Spec, m *graph.Model, dev *mcu.Device) (*Deployment, error) {
	report, err := tflm.Report(m, nil)
	if err != nil {
		return nil, err
	}
	lat, layers, err := mcu.ModelLatency(m, dev)
	if err != nil {
		return nil, err
	}
	d := &Deployment{
		Spec: spec, Model: m, Device: dev, Report: report,
		LatencySeconds: lat,
		ActivePowerMW:  mcu.ActivePowerMW(m, dev),
		EnergyMJ:       mcu.EnergyPerInferenceMJ(m, dev),
		Layers:         layers,
	}
	d.FitsErr = report.FitsDevice(dev.SRAMBytes(), dev.FlashBytes())
	for _, op := range m.Ops {
		if op.Kind == graph.OpTransposedConv {
			d.FitsErr = fmt.Errorf("micronets: %s uses %s, unsupported by the runtime", m.Name, op.Kind)
		}
	}
	return d, nil
}

// classifyRegistry caches lowered models behind ClassifyBatch and
// Preload, so search/characterization loops that re-classify the same
// spec amortize lowering and memory planning across calls, not just
// within one batch. The cache is LRU-bounded so a DNAS search sweeping
// thousands of distinct candidate specs cannot grow memory without bound,
// and pools lazily grow to GOMAXPROCS so concurrent callers classifying
// the same spec are not serialized onto one interpreter.
var classifyRegistry = serve.NewRegistry(serve.RegistryConfig{
	PoolSize:   1,
	PoolMax:    runtime.GOMAXPROCS(0),
	MaxEntries: 32,
})

// modelOptions maps the public DeployOptions onto the serving registry's
// cache key.
func modelOptions(opts DeployOptions) serve.ModelOptions {
	return serve.ModelOptions{
		WeightBits:    opts.WeightBits,
		ActBits:       opts.ActBits,
		Seed:          opts.Seed,
		AppendSoftmax: opts.AppendSoftmax,
	}
}

// ClassifyBatch runs every input through a pooled interpreter for the
// spec on the parallel GEMM engine — the batched analogue of
// Interpreter.Classify for search, characterization and benchmark loops.
// The lowered graph and its memory plan are cached in a process-wide
// registry keyed by the spec and options, so repeat calls for the same
// model pay neither lowering nor planning again. It returns the argmax
// class and dequantized top score per input.
func ClassifyBatch(spec *arch.Spec, opts DeployOptions, xs []*tensor.Tensor) ([]int, []float32, error) {
	entry, err := classifyRegistry.GetSpec(spec, modelOptions(opts))
	if err != nil {
		return nil, nil, err
	}
	return entry.ClassifyBatch(xs)
}

// Preload warms the ClassifyBatch registry for a set of zoo models, so a
// serving or evaluation loop's first request pays no lowering latency.
func Preload(names []string, opts DeployOptions) error {
	return classifyRegistry.Preload(names, modelOptions(opts))
}

// ClassifyModelBatch is ClassifyBatch for an already-lowered model (e.g.
// a trained export).
func ClassifyModelBatch(m *graph.Model, xs []*tensor.Tensor) ([]int, []float32, error) {
	ip, err := tflm.NewInterpreter(m, 0)
	if err != nil {
		return nil, nil, err
	}
	return ip.ClassifyBatch(xs)
}

// ServeOptions configures the HTTP inference server (see internal/serve
// for the subsystem: model registry → interpreter pools → adaptive
// micro-batcher → kernels engine).
type ServeOptions struct {
	// Addr is the listen address (default ":8151").
	Addr string
	// Models are zoo names to preload; empty serves every
	// runtime-servable catalogue model.
	Models []string
	// PoolSize is pre-warmed interpreters per model (default 2).
	PoolSize int
	// MaxBatch and MaxDelay bound the micro-batching window (defaults 8
	// and 2ms).
	MaxBatch int
	MaxDelay time.Duration
	// Logger receives one structured line per request.
	Logger *slog.Logger
	// Deploy selects the lowering (bits, seed, softmax) for every model.
	Deploy DeployOptions
}

func (o ServeOptions) config() serve.Config {
	return serve.Config{
		Models:   o.Models,
		Options:  modelOptions(o.Deploy),
		PoolSize: o.PoolSize,
		Batch:    serve.BatcherConfig{MaxBatch: o.MaxBatch, MaxDelay: o.MaxDelay},
		Logger:   o.Logger,
	}
}

// Serve preloads the requested models and serves the KServe-v2-style
// inference protocol (/v2/health/*, /v2/models, /v2/models/{name}/infer,
// /metrics) until ctx is cancelled, then drains gracefully. This is the
// long-lived serving path behind cmd/serve.
func Serve(ctx context.Context, opts ServeOptions) error {
	srv, err := serve.New(opts.config())
	if err != nil {
		return err
	}
	addr := opts.Addr
	if addr == "" {
		addr = ":8151"
	}
	return srv.ListenAndServe(ctx, addr)
}

// ServeHandler returns the fully warmed inference handler without binding
// a listener — for embedding the serving surface into an existing HTTP
// server or tests. The caller owns the returned server's lifecycle; call
// its Close to drain the batchers.
func ServeHandler(opts ServeOptions) (http.Handler, *serve.Server, error) {
	srv, err := serve.New(opts.config())
	if err != nil {
		return nil, nil, err
	}
	return srv.Handler(), srv, nil
}

// Paper returns the published Table 4/2/3 numbers for a model, for
// side-by-side comparison with simulated measurements.
func Paper(name string) (zoo.PaperStats, error) {
	e, err := zoo.Get(name)
	if err != nil {
		return zoo.PaperStats{}, err
	}
	return e.Paper, nil
}
