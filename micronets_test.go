package micronets

import (
	"math"
	"testing"
)

func TestModelAndDeployFacade(t *testing.T) {
	spec, err := Model("MicroNet-KWS-S")
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(spec, DeviceS, DeployOptions{AppendSoftmax: true})
	if err != nil {
		t.Fatal(err)
	}
	if dep.FitsErr != nil {
		t.Fatalf("KWS-S must fit the small MCU: %v", dep.FitsErr)
	}
	paper, err := Paper("MicroNet-KWS-S")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dep.LatencySeconds-paper.LatS)/paper.LatS > 0.10 {
		t.Fatalf("facade latency %.3f vs paper %.3f", dep.LatencySeconds, paper.LatS)
	}
	if dep.EnergyMJ <= 0 || dep.ActivePowerMW <= 0 {
		t.Fatal("energy/power must be positive")
	}
	if len(dep.Layers) == 0 {
		t.Fatal("per-layer breakdown missing")
	}
}

func TestDeployNotFitting(t *testing.T) {
	spec, err := Model("MicroNet-KWS-L")
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(spec, DeviceS, DeployOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dep.FitsErr == nil {
		t.Fatal("KWS-L must not fit the small MCU (Table 4)")
	}
}

func TestStatsOnlyModelsRejected(t *testing.T) {
	if _, err := Model("ProxylessNas"); err == nil {
		t.Fatal("stats-only entries must not return a spec")
	}
	if _, err := Model("nope"); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestModelNamesNonEmpty(t *testing.T) {
	if len(ModelNames()) < 20 {
		t.Fatalf("zoo too small: %d entries", len(ModelNames()))
	}
}

func TestFourBitDeploySmaller(t *testing.T) {
	spec, err := Model("MicroNet-KWS-L")
	if err != nil {
		t.Fatal(err)
	}
	d8, err := Deploy(spec, DeviceM, DeployOptions{WeightBits: 8, ActBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	d4, err := Deploy(spec, DeviceM, DeployOptions{WeightBits: 4, ActBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d4.Report.ModelFlash() >= d8.Report.ModelFlash() {
		t.Fatal("4-bit weights must shrink flash (Table 2)")
	}
	if d4.Report.ArenaBytes >= d8.Report.ArenaBytes {
		t.Fatal("4-bit activations must shrink the arena (Table 2)")
	}
	if d4.LatencySeconds <= d8.LatencySeconds {
		t.Fatal("4-bit emulation must cost latency (Figure 10)")
	}
}
