package micronets

import (
	"math"
	"math/rand"
	"testing"

	"micronets/internal/graph"
	"micronets/internal/tensor"
	"micronets/internal/tflm"
)

func TestModelAndDeployFacade(t *testing.T) {
	spec, err := Model("MicroNet-KWS-S")
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(spec, DeviceS, DeployOptions{AppendSoftmax: true})
	if err != nil {
		t.Fatal(err)
	}
	if dep.FitsErr != nil {
		t.Fatalf("KWS-S must fit the small MCU: %v", dep.FitsErr)
	}
	paper, err := Paper("MicroNet-KWS-S")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dep.LatencySeconds-paper.LatS)/paper.LatS > 0.10 {
		t.Fatalf("facade latency %.3f vs paper %.3f", dep.LatencySeconds, paper.LatS)
	}
	if dep.EnergyMJ <= 0 || dep.ActivePowerMW <= 0 {
		t.Fatal("energy/power must be positive")
	}
	if len(dep.Layers) == 0 {
		t.Fatal("per-layer breakdown missing")
	}
}

func TestDeployNotFitting(t *testing.T) {
	spec, err := Model("MicroNet-KWS-L")
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(spec, DeviceS, DeployOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dep.FitsErr == nil {
		t.Fatal("KWS-L must not fit the small MCU (Table 4)")
	}
}

func TestStatsOnlyModelsRejected(t *testing.T) {
	if _, err := Model("ProxylessNas"); err == nil {
		t.Fatal("stats-only entries must not return a spec")
	}
	if _, err := Model("nope"); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestModelNamesNonEmpty(t *testing.T) {
	if len(ModelNames()) < 20 {
		t.Fatalf("zoo too small: %d entries", len(ModelNames()))
	}
}

func TestFourBitDeploySmaller(t *testing.T) {
	spec, err := Model("MicroNet-KWS-L")
	if err != nil {
		t.Fatal(err)
	}
	d8, err := Deploy(spec, DeviceM, DeployOptions{WeightBits: 8, ActBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	d4, err := Deploy(spec, DeviceM, DeployOptions{WeightBits: 4, ActBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d4.Report.ModelFlash() >= d8.Report.ModelFlash() {
		t.Fatal("4-bit weights must shrink flash (Table 2)")
	}
	if d4.Report.ArenaBytes >= d8.Report.ArenaBytes {
		t.Fatal("4-bit activations must shrink the arena (Table 2)")
	}
	if d4.LatencySeconds <= d8.LatencySeconds {
		t.Fatal("4-bit emulation must cost latency (Figure 10)")
	}
}

func TestClassifyBatchFacade(t *testing.T) {
	spec, err := Model("MicroNet-KWS-S")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	xs := make([]*tensor.Tensor, 5)
	for i := range xs {
		xs[i] = tensor.Randn(rng, 1, 1, spec.InputH, spec.InputW, spec.InputC).
			Reshape(spec.InputH, spec.InputW, spec.InputC)
	}
	classes, scores, err := ClassifyBatch(spec, DeployOptions{AppendSoftmax: true}, xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != len(xs) || len(scores) != len(xs) {
		t.Fatalf("got %d classes / %d scores for %d inputs", len(classes), len(scores), len(xs))
	}
	for i, c := range classes {
		if c < 0 || c >= spec.NumClasses {
			t.Fatalf("input %d: class %d out of range", i, c)
		}
		if scores[i] < 0 || scores[i] > 1 {
			t.Fatalf("input %d: softmax score %f out of range", i, scores[i])
		}
	}
	// Batched classification must agree with the one-at-a-time facade on
	// the same lowered model (same Seed -> same synthetic weights).
	rng2 := rand.New(rand.NewSource(0))
	m, err := graph.FromSpec(spec, rng2, graph.LowerOptions{AppendSoftmax: true})
	if err != nil {
		t.Fatal(err)
	}
	ip, err := tflm.NewInterpreter(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		cls, score, err := ip.Classify(x)
		if err != nil {
			t.Fatal(err)
		}
		if cls != classes[i] || score != scores[i] {
			t.Fatalf("input %d: batch (%d, %f) vs single (%d, %f)", i, classes[i], scores[i], cls, score)
		}
	}
}
