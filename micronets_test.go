package micronets

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"micronets/internal/arch"
	"micronets/internal/graph"
	"micronets/internal/tensor"
	"micronets/internal/tflm"
)

func TestModelAndDeployFacade(t *testing.T) {
	spec, err := Model("MicroNet-KWS-S")
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(spec, DeviceS, DeployOptions{AppendSoftmax: true})
	if err != nil {
		t.Fatal(err)
	}
	if dep.FitsErr != nil {
		t.Fatalf("KWS-S must fit the small MCU: %v", dep.FitsErr)
	}
	paper, err := Paper("MicroNet-KWS-S")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dep.LatencySeconds-paper.LatS)/paper.LatS > 0.10 {
		t.Fatalf("facade latency %.3f vs paper %.3f", dep.LatencySeconds, paper.LatS)
	}
	if dep.EnergyMJ <= 0 || dep.ActivePowerMW <= 0 {
		t.Fatal("energy/power must be positive")
	}
	if len(dep.Layers) == 0 {
		t.Fatal("per-layer breakdown missing")
	}
}

func TestDeployNotFitting(t *testing.T) {
	spec, err := Model("MicroNet-KWS-L")
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(spec, DeviceS, DeployOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dep.FitsErr == nil {
		t.Fatal("KWS-L must not fit the small MCU (Table 4)")
	}
}

// TestDeployModelJoinsFitAndUnsupportedErrors: a model that BOTH
// overflows the device SRAM and uses a transposed conv must report both
// problems — the unsupported-op check used to silently overwrite the
// FitsDevice error.
func TestDeployModelJoinsFitAndUnsupportedErrors(t *testing.T) {
	// 64x64x1 input into a 256-channel stride-1 conv: the activation
	// arena alone (64*64*256 = 1 MB) overflows every device class; the
	// trailing transposed conv is unsupported by the runtime.
	spec := &arch.Spec{
		Name: "overflow-tconv-test", Task: "ad", Source: "repro",
		InputH: 64, InputW: 64, InputC: 1, NumClasses: 0,
		Blocks: []arch.Block{
			{Kind: arch.Conv, KH: 3, KW: 3, OutC: 256, Stride: 1},
			{Kind: arch.TransposedConv, KH: 3, KW: 3, OutC: 1, Stride: 2},
		},
	}
	dep, err := Deploy(spec, DeviceS, DeployOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dep.FitsErr == nil {
		t.Fatal("model must not be deployable")
	}
	msg := dep.FitsErr.Error()
	if !strings.Contains(msg, "does not fit") {
		t.Fatalf("FitsErr lost the SRAM overflow: %q", msg)
	}
	if !strings.Contains(msg, "unsupported by the runtime") {
		t.Fatalf("FitsErr lost the unsupported-op report: %q", msg)
	}
}

func TestStatsOnlyModelsRejected(t *testing.T) {
	if _, err := Model("ProxylessNas"); err == nil {
		t.Fatal("stats-only entries must not return a spec")
	}
	if _, err := Model("nope"); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestModelNamesNonEmpty(t *testing.T) {
	if len(ModelNames()) < 20 {
		t.Fatalf("zoo too small: %d entries", len(ModelNames()))
	}
}

func TestFourBitDeploySmaller(t *testing.T) {
	spec, err := Model("MicroNet-KWS-L")
	if err != nil {
		t.Fatal(err)
	}
	d8, err := Deploy(spec, DeviceM, DeployOptions{WeightBits: 8, ActBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	d4, err := Deploy(spec, DeviceM, DeployOptions{WeightBits: 4, ActBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d4.Report.ModelFlash() >= d8.Report.ModelFlash() {
		t.Fatal("4-bit weights must shrink flash (Table 2)")
	}
	if d4.Report.ArenaBytes >= d8.Report.ArenaBytes {
		t.Fatal("4-bit activations must shrink the arena (Table 2)")
	}
	if d4.LatencySeconds <= d8.LatencySeconds {
		t.Fatal("4-bit emulation must cost latency (Figure 10)")
	}
}

func TestClassifyBatchFacade(t *testing.T) {
	spec, err := Model("MicroNet-KWS-S")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	xs := make([]*tensor.Tensor, 5)
	for i := range xs {
		xs[i] = tensor.Randn(rng, 1, 1, spec.InputH, spec.InputW, spec.InputC).
			Reshape(spec.InputH, spec.InputW, spec.InputC)
	}
	classes, scores, err := ClassifyBatch(spec, DeployOptions{AppendSoftmax: true}, xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != len(xs) || len(scores) != len(xs) {
		t.Fatalf("got %d classes / %d scores for %d inputs", len(classes), len(scores), len(xs))
	}
	for i, c := range classes {
		if c < 0 || c >= spec.NumClasses {
			t.Fatalf("input %d: class %d out of range", i, c)
		}
		if scores[i] < 0 || scores[i] > 1 {
			t.Fatalf("input %d: softmax score %f out of range", i, scores[i])
		}
	}
	// Batched classification must agree with the one-at-a-time facade on
	// the same lowered model (same Seed -> same synthetic weights).
	rng2 := rand.New(rand.NewSource(0))
	m, err := graph.FromSpec(spec, rng2, graph.LowerOptions{AppendSoftmax: true})
	if err != nil {
		t.Fatal(err)
	}
	ip, err := tflm.NewInterpreter(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		cls, score, err := ip.Classify(x)
		if err != nil {
			t.Fatal(err)
		}
		if cls != classes[i] || score != scores[i] {
			t.Fatalf("input %d: batch (%d, %f) vs single (%d, %f)", i, classes[i], scores[i], cls, score)
		}
	}
}

// TestClassifyBatchAmortizesLowering: repeat ClassifyBatch calls for the
// same spec and options must hit the registry cache instead of re-lowering
// the graph and re-planning memory (PR 2 satellite fix).
func TestClassifyBatchAmortizesLowering(t *testing.T) {
	spec, err := Model("MicroNet-KWS-S")
	if err != nil {
		t.Fatal(err)
	}
	opts := DeployOptions{Seed: 1234, AppendSoftmax: true}
	elems := spec.InputH * spec.InputW * spec.InputC
	xs := []*tensor.Tensor{tensor.New(elems)}

	if _, _, err := ClassifyBatch(spec, opts, xs); err != nil {
		t.Fatal(err)
	}
	before := classifyRegistry.Lowerings()
	c1, s1, err := ClassifyBatch(spec, opts, xs)
	if err != nil {
		t.Fatal(err)
	}
	if got := classifyRegistry.Lowerings(); got != before {
		t.Fatalf("second ClassifyBatch re-lowered the graph (lowerings %d -> %d)", before, got)
	}
	// And the cached path still agrees with a from-scratch lowering.
	rng := rand.New(rand.NewSource(opts.Seed))
	m, err := graph.FromSpec(spec, rng, graph.LowerOptions{AppendSoftmax: true})
	if err != nil {
		t.Fatal(err)
	}
	ip, err := tflm.NewInterpreter(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantC, wantS, err := ip.ClassifyBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	if c1[0] != wantC[0] || s1[0] != wantS[0] {
		t.Fatalf("cached ClassifyBatch (%d, %f) diverged from fresh lowering (%d, %f)",
			c1[0], s1[0], wantC[0], wantS[0])
	}
}

// TestRepositoryFacadeEndToEnd: the public Repository API drives a live
// server — load two models into a caller-owned repository, serve through
// ServeOptions.Repository, hot-swap and unload while the handler stays
// up, and observe every transition through Index.
func TestRepositoryFacadeEndToEnd(t *testing.T) {
	repo := NewRepository(RepositoryOptions{
		PoolSize: 1,
		Deploy:   DeployOptions{Seed: 42, AppendSoftmax: true},
	})
	defer repo.Close()
	if _, err := repo.LoadModel("MicroNet-KWS-S", DeployOptions{Seed: 42, AppendSoftmax: true}); err != nil {
		t.Fatal(err)
	}

	h, srv, err := ServeHandler(ServeOptions{
		Repository: repo,
		Models:     []string{"DSCNN-S"}, // loads into the injected repo
		Deploy:     DeployOptions{Seed: 42, AppendSoftmax: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()

	idx := repo.Index()
	if len(idx) != 2 {
		t.Fatalf("index has %d entries, want 2: %+v", len(idx), idx)
	}
	for _, st := range idx {
		if st.State != StateReady || st.PoolSize != 1 {
			t.Fatalf("boot entry not READY/pool-1: %+v", st)
		}
	}

	// Hot-swap KWS-S to a different seed through the public API while the
	// HTTP surface is live, then verify the data path still answers.
	spec, err := Model("MicroNet-KWS-S")
	if err != nil {
		t.Fatal(err)
	}
	st, err := repo.Swap(spec, DeployOptions{Seed: 7, AppendSoftmax: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 2 || st.State != StateReady {
		t.Fatalf("swap status %+v, want READY version 2", st)
	}
	body := `{"inputs":[{"name":"input","datatype":"FP32","data":[` +
		strings.Repeat("0.5,", 489) + `0.5]}]}`
	resp, err := http.Post(ts.URL+"/v2/models/MicroNet-KWS-S/infer", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("infer after swap: status %d", resp.StatusCode)
	}

	// Unload through the public API: the HTTP surface 404s the name once
	// the drain completes, without the server restarting.
	if err := repo.Unload("DSCNN-S"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("DSCNN-S never drained out of the index")
		}
		found := false
		for _, st := range repo.Index() {
			if st.Name == "DSCNN-S" {
				found = true
			}
		}
		if !found {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	r2, err := http.Get(ts.URL + "/v2/models/DSCNN-S")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != 404 {
		t.Fatalf("metadata of unloaded model: status %d, want 404", r2.StatusCode)
	}
}

// TestServeHandlerEndToEnd: the public embedding entry point serves a
// live infer round-trip.
func TestServeHandlerEndToEnd(t *testing.T) {
	h, srv, err := ServeHandler(ServeOptions{
		Models: []string{"MicroNet-KWS-S"},
		Deploy: DeployOptions{Seed: 42, AppendSoftmax: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v2/health/ready")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ready: status %d", resp.StatusCode)
	}
	body := `{"inputs":[{"name":"input","datatype":"FP32","shape":[490],"data":[` +
		strings.Repeat("0.5,", 489) + `0.5]}]}`
	r2, err := http.Post(ts.URL+"/v2/models/MicroNet-KWS-S/infer", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != 200 {
		t.Fatalf("infer: status %d", r2.StatusCode)
	}
	var out struct {
		Outputs []struct {
			Name string    `json:"name"`
			Data []float64 `json:"data"`
		} `json:"outputs"`
	}
	if err := json.NewDecoder(r2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range out.Outputs {
		if o.Name == "class" && len(o.Data) == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no argmax class in response: %+v", out)
	}
}
