package autograd

import (
	"fmt"
	"math"

	"micronets/internal/tensor"
)

// LogSoftmaxRows computes a numerically stable row-wise log-softmax of a
// [n,k] matrix, returning raw tensors (no autodiff). Shared by the loss ops.
func LogSoftmaxRows(logits *tensor.Tensor) *tensor.Tensor {
	n, k := logits.Shape[0], logits.Shape[1]
	out := tensor.New(n, k)
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		maxv := row[0]
		for _, x := range row[1:] {
			if x > maxv {
				maxv = x
			}
		}
		var sum float64
		for _, x := range row {
			sum += math.Exp(float64(x - maxv))
		}
		lse := float32(math.Log(sum)) + maxv
		dst := out.Data[i*k : (i+1)*k]
		for j, x := range row {
			dst[j] = x - lse
		}
	}
	return out
}

// SoftmaxRows computes a row-wise softmax of a [n,k] matrix (no autodiff).
func SoftmaxRows(logits *tensor.Tensor) *tensor.Tensor {
	lsm := LogSoftmaxRows(logits)
	return tensor.Apply(lsm, func(x float32) float32 { return float32(math.Exp(float64(x))) })
}

// CrossEntropy computes mean cross-entropy between logits [n,k] and integer
// labels. Fused with softmax for numerical stability; the gradient is
// (softmax - onehot)/n.
func CrossEntropy(logits *Var, labels []int) *Var {
	n, k := logits.Value.Shape[0], logits.Value.Shape[1]
	if len(labels) != n {
		panic(fmt.Sprintf("autograd: CrossEntropy %d labels for batch %d", len(labels), n))
	}
	lsm := LogSoftmaxRows(logits.Value)
	var loss float64
	for i, y := range labels {
		if y < 0 || y >= k {
			panic(fmt.Sprintf("autograd: label %d out of range [0,%d)", y, k))
		}
		loss -= float64(lsm.Data[i*k+y])
	}
	out := tensor.Scalar(float32(loss / float64(n)))
	var v *Var
	v = newOp(out, func() {
		g := tensor.Apply(lsm, func(x float32) float32 { return float32(math.Exp(float64(x))) })
		for i, y := range labels {
			g.Data[i*k+y] -= 1
		}
		scale := v.Grad.Data[0] / float32(n)
		logits.accumulate(tensor.Scale(g, scale))
	}, logits)
	return v
}

// SoftCrossEntropy computes mean cross-entropy against soft target
// distributions q [n,k]: loss = -mean_i Σ_j q_ij log p_ij. Used both for
// knowledge distillation (teacher probabilities) and mixup (mixed one-hots).
func SoftCrossEntropy(logits *Var, targets *tensor.Tensor) *Var {
	n, k := logits.Value.Shape[0], logits.Value.Shape[1]
	if targets.Shape[0] != n || targets.Shape[1] != k {
		panic(fmt.Sprintf("autograd: SoftCrossEntropy targets %v vs logits %v", targets.Shape, logits.Value.Shape))
	}
	lsm := LogSoftmaxRows(logits.Value)
	var loss float64
	for i := range lsm.Data {
		loss -= float64(targets.Data[i]) * float64(lsm.Data[i])
	}
	out := tensor.Scalar(float32(loss / float64(n)))
	var v *Var
	v = newOp(out, func() {
		p := tensor.Apply(lsm, func(x float32) float32 { return float32(math.Exp(float64(x))) })
		g := tensor.New(n, k)
		for i := 0; i < n; i++ {
			var qsum float32
			for j := 0; j < k; j++ {
				qsum += targets.Data[i*k+j]
			}
			for j := 0; j < k; j++ {
				g.Data[i*k+j] = p.Data[i*k+j]*qsum - targets.Data[i*k+j]
			}
		}
		scale := v.Grad.Data[0] / float32(n)
		logits.accumulate(tensor.Scale(g, scale))
	}, logits)
	return v
}

// MSE computes mean squared error between a and target (constant).
func MSE(a *Var, target *tensor.Tensor) *Var {
	if !tensor.SameShape(a.Value, target) {
		panic(fmt.Sprintf("autograd: MSE shape mismatch %v vs %v", a.Value.Shape, target.Shape))
	}
	diff := tensor.Sub(a.Value, target)
	out := tensor.Scalar(tensor.Dot(diff, diff) / float32(diff.Len()))
	var v *Var
	v = newOp(out, func() {
		scale := 2 * v.Grad.Data[0] / float32(diff.Len())
		a.accumulate(tensor.Scale(diff, scale))
	}, a)
	return v
}

// DistillLoss blends hard-label cross-entropy with a temperature-scaled KL
// term against teacher logits, following Hinton et al. as used by the
// paper's VWW recipe (coefficient 0.5, temperature 4).
func DistillLoss(student *Var, labels []int, teacherLogits *tensor.Tensor, coeff, temperature float32) *Var {
	hard := CrossEntropy(student, labels)
	if teacherLogits == nil || coeff == 0 {
		return hard
	}
	// Soft targets at temperature T.
	scaled := tensor.Scale(teacherLogits, 1/temperature)
	q := SoftmaxRows(scaled)
	softLogits := Scale(student, 1/temperature)
	soft := SoftCrossEntropy(softLogits, q)
	// The T² factor keeps gradient magnitudes comparable across temperatures.
	return Add(Scale(hard, 1-coeff), Scale(soft, coeff*temperature*temperature))
}
