package autograd

import (
	"math"
	"math/rand"
	"testing"

	"micronets/internal/tensor"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func checkOp(t *testing.T, name string, f func([]*Var) *Var, inputs []*tensor.Tensor) {
	t.Helper()
	if _, err := GradCheck(f, inputs, 1e-2, 2e-2); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

func TestGradAdd(t *testing.T) {
	r := rng(1)
	checkOp(t, "add", func(v []*Var) *Var {
		return Mean(Add(v[0], v[1]))
	}, []*tensor.Tensor{tensor.Randn(r, 1, 3, 4), tensor.Randn(r, 1, 3, 4)})
}

func TestGradSubMul(t *testing.T) {
	r := rng(2)
	checkOp(t, "submul", func(v []*Var) *Var {
		return Mean(Mul(Sub(v[0], v[1]), v[0]))
	}, []*tensor.Tensor{tensor.Randn(r, 1, 2, 3), tensor.Randn(r, 1, 2, 3)})
}

func TestGradMatMul(t *testing.T) {
	r := rng(3)
	checkOp(t, "matmul", func(v []*Var) *Var {
		return Mean(MatMul(v[0], v[1]))
	}, []*tensor.Tensor{tensor.Randn(r, 1, 3, 4), tensor.Randn(r, 1, 4, 2)})
}

func TestGradReLUFamily(t *testing.T) {
	r := rng(4)
	// Offset values away from the kinks at 0 and 6.
	x := tensor.Apply(tensor.RandUniform(r, -3, 9, 2, 5), func(v float32) float32 {
		if v > -0.1 && v < 0.1 {
			return v + 0.5
		}
		if v > 5.9 && v < 6.1 {
			return v + 0.5
		}
		return v
	})
	checkOp(t, "relu", func(v []*Var) *Var { return Mean(ReLU(v[0])) }, []*tensor.Tensor{x.Clone()})
	checkOp(t, "relu6", func(v []*Var) *Var { return Mean(ReLU6(v[0])) }, []*tensor.Tensor{x.Clone()})
}

func TestGradSigmoid(t *testing.T) {
	r := rng(5)
	checkOp(t, "sigmoid", func(v []*Var) *Var {
		return Mean(Sigmoid(v[0]))
	}, []*tensor.Tensor{tensor.Randn(r, 1, 3, 3)})
}

func TestGradBiasAdd(t *testing.T) {
	r := rng(6)
	checkOp(t, "biasadd", func(v []*Var) *Var {
		return Mean(Square(BiasAdd(v[0], v[1])))
	}, []*tensor.Tensor{tensor.Randn(r, 1, 2, 2, 2, 3), tensor.Randn(r, 1, 3)})
}

func TestGradChannelScale(t *testing.T) {
	r := rng(7)
	checkOp(t, "channelscale", func(v []*Var) *Var {
		return Mean(Square(ChannelScale(v[0], v[1])))
	}, []*tensor.Tensor{tensor.Randn(r, 1, 1, 2, 2, 4), tensor.Randn(r, 1, 4)})
}

func TestGradScalarMul(t *testing.T) {
	r := rng(8)
	checkOp(t, "scalarmul", func(v []*Var) *Var {
		return Mean(Square(ScalarMul(v[1], v[0])))
	}, []*tensor.Tensor{tensor.Randn(r, 1, 2, 3), tensor.Randn(r, 1)})
}

func TestGradConv2D(t *testing.T) {
	r := rng(9)
	spec := tensor.Same(3, 3, 2, 2, 5, 4)
	checkOp(t, "conv2d", func(v []*Var) *Var {
		return Mean(Square(Conv2D(v[0], v[1], spec)))
	}, []*tensor.Tensor{tensor.Randn(r, 1, 1, 5, 4, 2), tensor.Randn(r, 1, 3, 3, 2, 3)})
}

func TestGradDepthwiseConv2D(t *testing.T) {
	r := rng(10)
	spec := tensor.Same(3, 3, 1, 1, 4, 4)
	checkOp(t, "dwconv", func(v []*Var) *Var {
		return Mean(Square(DepthwiseConv2D(v[0], v[1], spec)))
	}, []*tensor.Tensor{tensor.Randn(r, 1, 1, 4, 4, 3), tensor.Randn(r, 1, 3, 3, 3)})
}

func TestGradPools(t *testing.T) {
	r := rng(11)
	spec := tensor.ConvSpec{KH: 2, KW: 2, SH: 2, SW: 2}
	checkOp(t, "avgpool", func(v []*Var) *Var {
		return Mean(Square(AvgPool2D(v[0], spec)))
	}, []*tensor.Tensor{tensor.Randn(r, 1, 1, 4, 4, 2)})
	checkOp(t, "globalavgpool", func(v []*Var) *Var {
		return Mean(Square(GlobalAvgPool(v[0])))
	}, []*tensor.Tensor{tensor.Randn(r, 1, 2, 3, 3, 2)})
}

func TestGradMaxPool(t *testing.T) {
	// Use well-separated values so the argmax is stable under eps-perturbation.
	x := tensor.FromSlice([]float32{1, 9, 3, 5, 2, 8, 4, 7, 0, 6, 10, 11, 12, 13, 14, 15}, 1, 4, 4, 1)
	spec := tensor.ConvSpec{KH: 2, KW: 2, SH: 2, SW: 2}
	checkOp(t, "maxpool", func(v []*Var) *Var {
		return Mean(Square(MaxPool2D(v[0], spec)))
	}, []*tensor.Tensor{x})
}

func TestGradSoftmaxVec(t *testing.T) {
	r := rng(12)
	checkOp(t, "softmaxvec", func(v []*Var) *Var {
		sm := SoftmaxVec(v[0], 1.5)
		return Mean(Mul(sm, v[1]))
	}, []*tensor.Tensor{tensor.Randn(r, 1, 5), tensor.Randn(r, 1, 5)})
}

func TestGradCrossEntropy(t *testing.T) {
	r := rng(13)
	labels := []int{0, 2, 1}
	checkOp(t, "ce", func(v []*Var) *Var {
		return CrossEntropy(v[0], labels)
	}, []*tensor.Tensor{tensor.Randn(r, 1, 3, 4)})
}

func TestGradSoftCrossEntropy(t *testing.T) {
	r := rng(14)
	q := tensor.FromSlice([]float32{0.7, 0.2, 0.1, 0.1, 0.8, 0.1}, 2, 3)
	checkOp(t, "softce", func(v []*Var) *Var {
		return SoftCrossEntropy(v[0], q)
	}, []*tensor.Tensor{tensor.Randn(r, 1, 2, 3)})
}

func TestGradMSE(t *testing.T) {
	r := rng(15)
	target := tensor.Randn(r, 1, 2, 3)
	checkOp(t, "mse", func(v []*Var) *Var {
		return MSE(v[0], target)
	}, []*tensor.Tensor{tensor.Randn(r, 1, 2, 3)})
}

func TestGradBatchNormTraining(t *testing.T) {
	r := rng(16)
	checkOp(t, "batchnorm", func(v []*Var) *Var {
		y, _ := BatchNorm(v[0], v[1], v[2], 1e-3, nil)
		return Mean(Square(y))
	}, []*tensor.Tensor{
		tensor.Randn(r, 1, 4, 2, 2, 3),
		tensor.RandUniform(r, 0.5, 1.5, 3),
		tensor.Randn(r, 0.5, 3),
	})
}

func TestGradBatchNormInference(t *testing.T) {
	r := rng(17)
	stats := &BatchNormStats{
		Mean: tensor.Randn(r, 0.5, 3),
		Var:  tensor.RandUniform(r, 0.5, 2, 3),
	}
	checkOp(t, "batchnorm-inf", func(v []*Var) *Var {
		y, _ := BatchNorm(v[0], v[1], v[2], 1e-3, stats)
		return Mean(Square(y))
	}, []*tensor.Tensor{
		tensor.Randn(r, 1, 2, 2, 2, 3),
		tensor.RandUniform(r, 0.5, 1.5, 3),
		tensor.Randn(r, 0.5, 3),
	})
}

func TestGradConcat(t *testing.T) {
	r := rng(18)
	checkOp(t, "concat", func(v []*Var) *Var {
		return Mean(Square(Concat(v[0], v[1])))
	}, []*tensor.Tensor{tensor.Randn(r, 1, 2, 3), tensor.Randn(r, 1, 2, 2)})
}

func TestGradMaxNAndIndex(t *testing.T) {
	a := tensor.Scalar(1.0)
	b := tensor.Scalar(5.0)
	c := tensor.Scalar(3.0)
	va, vb, vc := Param(a), Param(b), Param(c)
	m := MaxN(va, vb, vc)
	Backward(m)
	if vb.Grad.Data[0] != 1 || va.Grad != nil && va.Grad.Data[0] != 0 {
		t.Fatalf("MaxN gradient must flow only to the max")
	}

	vec := Param(tensor.FromSlice([]float32{1, 2, 3}, 3))
	loss := Scale(Index(vec, 1), 2)
	Backward(loss)
	if vec.Grad.Data[1] != 2 || vec.Grad.Data[0] != 0 {
		t.Fatalf("Index gradient wrong: %v", vec.Grad.Data)
	}
}

func TestFakeQuantForwardLevels(t *testing.T) {
	x := Constant(tensor.FromSlice([]float32{-1.2, -0.4, 0, 0.3, 0.9, 1.5}, 6))
	y := FakeQuant(Param(x.Value), -1, 1, 8)
	// All outputs must lie on the quantization grid.
	scale := float64(2.0 / 255.0)
	for _, v := range y.Value.Data {
		q := float64(v) / scale
		if math.Abs(q-math.Round(q)) > 1e-3 {
			t.Fatalf("value %v not on the 8-bit grid", v)
		}
	}
	// Values inside range move by at most half a step.
	if math.Abs(float64(y.Value.Data[3])-0.3) > scale/2+1e-6 {
		t.Fatalf("in-range value moved too far: %v", y.Value.Data[3])
	}
}

func TestFakeQuantSTEGradientMask(t *testing.T) {
	x := Param(tensor.FromSlice([]float32{-5, 0.2, 5}, 3))
	y := FakeQuant(x, -1, 1, 8)
	Backward(Sum(y))
	if x.Grad.Data[0] != 0 || x.Grad.Data[2] != 0 {
		t.Fatalf("out-of-range STE gradient must be 0: %v", x.Grad.Data)
	}
	if x.Grad.Data[1] != 1 {
		t.Fatalf("in-range STE gradient must pass: %v", x.Grad.Data)
	}
}

func TestLSQQuantGrid(t *testing.T) {
	r := rng(19)
	x := Param(tensor.Randn(r, 1, 10))
	step := Param(tensor.Scalar(0.1))
	y := LSQQuant(x, step, 8, true)
	for _, v := range y.Value.Data {
		q := float64(v) / 0.1
		if math.Abs(q-math.Round(q)) > 1e-4 {
			t.Fatalf("LSQ output %v not on grid", v)
		}
	}
	Backward(Sum(y))
	if step.Grad == nil {
		t.Fatal("LSQ must produce a step gradient")
	}
}

func TestBackwardAccumulatesAcrossUses(t *testing.T) {
	x := Param(tensor.Scalar(3))
	y := Add(x, x) // dy/dx = 2
	Backward(Sum(y))
	if x.Grad.Data[0] != 2 {
		t.Fatalf("shared-use gradient = %v, want 2", x.Grad.Data[0])
	}
}

func TestNoGradForConstants(t *testing.T) {
	c := Constant(tensor.Scalar(5))
	x := Param(tensor.Scalar(2))
	y := Mul(c, x)
	Backward(y)
	if c.Grad != nil {
		t.Fatal("constants must not accumulate gradients")
	}
	if x.Grad.Data[0] != 5 {
		t.Fatalf("dx = %v, want 5", x.Grad.Data[0])
	}
}

func TestDeepChainNoStackOverflow(t *testing.T) {
	x := Param(tensor.Scalar(1))
	v := NewVar(x.Value, true)
	v = x
	for i := 0; i < 20000; i++ {
		v = AddScalar(v, 0.0001)
	}
	Backward(Sum(v))
	if x.Grad.Data[0] != 1 {
		t.Fatalf("deep chain gradient = %v", x.Grad.Data[0])
	}
}

func TestDistillLossReducesToCE(t *testing.T) {
	r := rng(20)
	logits := tensor.Randn(r, 1, 2, 3)
	labels := []int{0, 2}
	plain := CrossEntropy(Param(logits.Clone()), labels).Scalar()
	kd := DistillLoss(Param(logits.Clone()), labels, nil, 0.5, 4).Scalar()
	if math.Abs(float64(plain-kd)) > 1e-6 {
		t.Fatalf("nil-teacher distill must equal CE: %v vs %v", plain, kd)
	}
}
