package autograd

import (
	"micronets/internal/tensor"
)

// Conv2D applies a standard convolution. x is [n,h,w,inC], w is
// [kh,kw,inC,outC]. The backward pass uses the im2col adjoint.
func Conv2D(x, w *Var, spec tensor.ConvSpec) *Var {
	n, h, ww, c := x.Value.Shape[0], x.Value.Shape[1], x.Value.Shape[2], x.Value.Shape[3]
	outC := w.Value.Shape[3]
	oh, ow := spec.OutSize(h, ww)
	cols := tensor.Im2Col(x.Value, spec)
	wmat := w.Value.Reshape(spec.KH*spec.KW*c, outC)
	y := tensor.MatMul(cols, wmat).Reshape(n, oh, ow, outC)
	var v *Var
	v = newOp(y, func() {
		dy := v.Grad.Reshape(n*oh*ow, outC)
		if w.requiresGrad {
			dw := tensor.TMatMul(cols, dy) // [khkwC, outC]
			w.accumulate(dw.Reshape(w.Value.Shape...))
		}
		if x.requiresGrad {
			dcols := tensor.MatMulT(dy, wmat) // dy @ wmatᵀ = [n*oh*ow, khkwC]
			dx := tensor.Col2Im(dcols, spec, n, h, ww, c)
			x.accumulate(dx)
		}
	}, x, w)
	return v
}

// DepthwiseConv2D applies a depthwise convolution with multiplier 1.
// x is [n,h,w,c], w is [kh,kw,c].
func DepthwiseConv2D(x, w *Var, spec tensor.ConvSpec) *Var {
	y := tensor.DepthwiseConv2D(x.Value, w.Value, spec)
	var v *Var
	v = newOp(y, func() {
		dx, dw := tensor.DepthwiseConv2DBackward(x.Value, w.Value, v.Grad, spec)
		x.accumulate(dx)
		w.accumulate(dw)
	}, x, w)
	return v
}

// AvgPool2D applies average pooling.
func AvgPool2D(x *Var, spec tensor.ConvSpec) *Var {
	y := tensor.AvgPool2D(x.Value, spec)
	var v *Var
	v = newOp(y, func() {
		x.accumulate(tensor.AvgPool2DBackward(x.Value, v.Grad, spec))
	}, x)
	return v
}

// MaxPool2D applies max pooling.
func MaxPool2D(x *Var, spec tensor.ConvSpec) *Var {
	y, arg := tensor.MaxPool2D(x.Value, spec)
	shape := append([]int(nil), x.Value.Shape...)
	var v *Var
	v = newOp(y, func() {
		x.accumulate(tensor.MaxPool2DBackward(shape, arg, v.Grad))
	}, x)
	return v
}

// GlobalAvgPool reduces [n,h,w,c] to [n,c] by averaging over space — the
// final pooling in every MicroNet architecture.
func GlobalAvgPool(x *Var) *Var {
	n, h, w, c := x.Value.Shape[0], x.Value.Shape[1], x.Value.Shape[2], x.Value.Shape[3]
	y := tensor.New(n, c)
	inv := 1 / float32(h*w)
	for b := 0; b < n; b++ {
		for i := 0; i < h*w; i++ {
			src := x.Value.Data[(b*h*w+i)*c : (b*h*w+i+1)*c]
			dst := y.Data[b*c : (b+1)*c]
			for j := 0; j < c; j++ {
				dst[j] += src[j]
			}
		}
		for j := 0; j < c; j++ {
			y.Data[b*c+j] *= inv
		}
	}
	var v *Var
	v = newOp(y, func() {
		dx := tensor.New(x.Value.Shape...)
		for b := 0; b < n; b++ {
			g := v.Grad.Data[b*c : (b+1)*c]
			for i := 0; i < h*w; i++ {
				dst := dx.Data[(b*h*w+i)*c : (b*h*w+i+1)*c]
				for j := 0; j < c; j++ {
					dst[j] = g[j] * inv
				}
			}
		}
		x.accumulate(dx)
	}, x)
	return v
}
