package autograd

import (
	"fmt"
	"math"

	"micronets/internal/tensor"
)

// BatchNormStats holds per-channel batch statistics computed by BatchNorm's
// forward pass, so the owning layer can maintain running averages.
type BatchNormStats struct {
	Mean, Var *tensor.Tensor
}

// BatchNorm normalizes x over all dimensions except the last (channel)
// dimension, then applies a per-channel affine transform gamma*xhat+beta.
//
// If useStats is non-nil those statistics are used (inference mode) and
// receive no gradient; otherwise batch statistics are computed and returned.
func BatchNorm(x, gamma, beta *Var, eps float32, useStats *BatchNormStats) (*Var, *BatchNormStats) {
	c := x.Value.Dim(-1)
	if gamma.Value.Len() != c || beta.Value.Len() != c {
		panic(fmt.Sprintf("autograd: BatchNorm params len %d/%d vs channels %d",
			gamma.Value.Len(), beta.Value.Len(), c))
	}
	m := x.Value.Len() / c
	var mean, variance *tensor.Tensor
	training := useStats == nil
	if training {
		mean = tensor.New(c)
		variance = tensor.New(c)
		for i := 0; i < x.Value.Len(); i += c {
			for j := 0; j < c; j++ {
				mean.Data[j] += x.Value.Data[i+j]
			}
		}
		for j := 0; j < c; j++ {
			mean.Data[j] /= float32(m)
		}
		for i := 0; i < x.Value.Len(); i += c {
			for j := 0; j < c; j++ {
				d := x.Value.Data[i+j] - mean.Data[j]
				variance.Data[j] += d * d
			}
		}
		for j := 0; j < c; j++ {
			variance.Data[j] /= float32(m)
		}
	} else {
		mean, variance = useStats.Mean, useStats.Var
	}

	invStd := tensor.New(c)
	for j := 0; j < c; j++ {
		invStd.Data[j] = float32(1 / math.Sqrt(float64(variance.Data[j]+eps)))
	}
	xhat := tensor.New(x.Value.Shape...)
	out := tensor.New(x.Value.Shape...)
	for i := 0; i < x.Value.Len(); i += c {
		for j := 0; j < c; j++ {
			xh := (x.Value.Data[i+j] - mean.Data[j]) * invStd.Data[j]
			xhat.Data[i+j] = xh
			out.Data[i+j] = gamma.Value.Data[j]*xh + beta.Value.Data[j]
		}
	}

	var v *Var
	v = newOp(out, func() {
		// dbeta_j = Σ dy, dgamma_j = Σ dy*xhat
		dgamma := tensor.New(c)
		dbeta := tensor.New(c)
		for i := 0; i < v.Grad.Len(); i += c {
			for j := 0; j < c; j++ {
				dgamma.Data[j] += v.Grad.Data[i+j] * xhat.Data[i+j]
				dbeta.Data[j] += v.Grad.Data[i+j]
			}
		}
		gamma.accumulate(dgamma.Reshape(gamma.Value.Shape...))
		beta.accumulate(dbeta.Reshape(beta.Value.Shape...))
		if !x.requiresGrad {
			return
		}
		dx := tensor.New(x.Value.Shape...)
		if training {
			// Full batch-norm backward: statistics depend on x.
			// dx = gamma*invStd/m * (m*dy - Σdy - xhat*Σ(dy*xhat))
			for i := 0; i < v.Grad.Len(); i += c {
				for j := 0; j < c; j++ {
					g := v.Grad.Data[i+j]
					dx.Data[i+j] = gamma.Value.Data[j] * invStd.Data[j] / float32(m) *
						(float32(m)*g - dbeta.Data[j] - xhat.Data[i+j]*dgamma.Data[j])
				}
			}
		} else {
			// Frozen statistics: plain affine.
			for i := 0; i < v.Grad.Len(); i += c {
				for j := 0; j < c; j++ {
					dx.Data[i+j] = v.Grad.Data[i+j] * gamma.Value.Data[j] * invStd.Data[j]
				}
			}
		}
		x.accumulate(dx)
	}, x, gamma, beta)

	if training {
		return v, &BatchNormStats{Mean: mean, Var: variance}
	}
	return v, nil
}
