package autograd

import (
	"fmt"

	"micronets/internal/tensor"
)

// GradCheck compares the analytic gradient of f with a central finite
// difference approximation for every element of every input. f must build a
// fresh graph from the inputs each call and return a scalar Var. It returns
// the worst absolute error observed, or an error describing the first
// element exceeding tol.
//
// This is the correctness backstop for the whole training stack: every op
// in this package has a GradCheck-based test.
func GradCheck(f func(inputs []*Var) *Var, inputs []*tensor.Tensor, eps, tol float64) (float64, error) {
	vars := make([]*Var, len(inputs))
	for i, t := range inputs {
		vars[i] = Param(t)
	}
	loss := f(vars)
	Backward(loss)

	worst := 0.0
	for vi, t := range inputs {
		analytic := vars[vi].Grad
		if analytic == nil {
			analytic = tensor.New(t.Shape...)
		}
		for ei := range t.Data {
			orig := t.Data[ei]
			t.Data[ei] = orig + float32(eps)
			plus := float64(f(constVars(inputs)).Scalar())
			t.Data[ei] = orig - float32(eps)
			minus := float64(f(constVars(inputs)).Scalar())
			t.Data[ei] = orig
			numeric := (plus - minus) / (2 * eps)
			diff := abs(numeric - float64(analytic.Data[ei]))
			denom := 1.0 + abs(numeric)
			rel := diff / denom
			if rel > worst {
				worst = rel
			}
			if rel > tol {
				return worst, fmt.Errorf(
					"gradcheck: input %d elem %d: analytic %g vs numeric %g (rel err %g > tol %g)",
					vi, ei, analytic.Data[ei], numeric, rel, tol)
			}
		}
	}
	return worst, nil
}

func constVars(ts []*tensor.Tensor) []*Var {
	vs := make([]*Var, len(ts))
	for i, t := range ts {
		vs[i] = Param(t) // params so the graph is built identically
	}
	return vs
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
