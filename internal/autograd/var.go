// Package autograd implements reverse-mode automatic differentiation over
// the tensor package. It provides the training substrate for the
// reproduction: the paper trains supernets with gradient descent
// ("DNAS uses gradient descent and lends itself to straightforward
// implementation in modern auto-differentiation software"), so this package
// is the Go stand-in for that software.
//
// The design is a dynamic tape: every operation returns a *Var that records
// its parents and a backward closure. Backward(loss) topologically sorts the
// graph and runs the closures in reverse order, accumulating gradients.
package autograd

import (
	"fmt"

	"micronets/internal/tensor"
)

// Var is a node in the autodiff graph: a value, an optional gradient, and
// the recipe to push gradients to its parents.
type Var struct {
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	// Name is an optional label used in error messages and debugging.
	Name string

	requiresGrad bool
	parents      []*Var
	back         func()
}

// NewVar wraps a tensor as a leaf variable. If requiresGrad is true the
// variable accumulates gradients during Backward.
func NewVar(t *tensor.Tensor, requiresGrad bool) *Var {
	return &Var{Value: t, requiresGrad: requiresGrad}
}

// Param is shorthand for a trainable leaf.
func Param(t *tensor.Tensor) *Var { return NewVar(t, true) }

// Constant is shorthand for a non-trainable leaf.
func Constant(t *tensor.Tensor) *Var { return NewVar(t, false) }

// RequiresGrad reports whether this variable participates in gradients.
func (v *Var) RequiresGrad() bool { return v.requiresGrad }

// Detach returns a constant view of v's value, cutting the graph.
func (v *Var) Detach() *Var { return Constant(v.Value) }

// Scalar returns the single element of a scalar Var.
func (v *Var) Scalar() float32 {
	if v.Value.Len() != 1 {
		panic(fmt.Sprintf("autograd: Scalar() on non-scalar %v", v.Value.Shape))
	}
	return v.Value.Data[0]
}

// ensureGrad lazily allocates the gradient buffer.
func (v *Var) ensureGrad() *tensor.Tensor {
	if v.Grad == nil {
		v.Grad = tensor.New(v.Value.Shape...)
	}
	return v.Grad
}

// accumulate adds g into v's gradient if v participates in autodiff.
func (v *Var) accumulate(g *tensor.Tensor) {
	if !v.requiresGrad {
		return
	}
	tensor.AddInPlace(v.ensureGrad(), g)
}

// ZeroGrad clears the gradient buffer (keeping it allocated).
func (v *Var) ZeroGrad() {
	if v.Grad != nil {
		v.Grad.Fill(0)
	}
}

// newOp constructs a non-leaf Var. The backward closure is only retained if
// at least one parent requires gradients, which keeps pure-inference
// forward passes cheap.
func newOp(value *tensor.Tensor, back func(), parents ...*Var) *Var {
	req := false
	for _, p := range parents {
		if p != nil && p.requiresGrad {
			req = true
			break
		}
	}
	v := &Var{Value: value, requiresGrad: req}
	if req {
		v.parents = parents
		v.back = back
	}
	return v
}

// Backward runs reverse-mode differentiation from root, which must be a
// scalar. Gradients accumulate into every reachable Var with
// requiresGrad=true.
func Backward(root *Var) {
	if root.Value.Len() != 1 {
		panic(fmt.Sprintf("autograd: Backward root must be scalar, got %v", root.Value.Shape))
	}
	order := topoSort(root)
	root.ensureGrad().Fill(1)
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.back != nil {
			if n.Grad == nil {
				// No gradient flowed to this node (e.g. dead branch).
				n.ensureGrad()
			}
			n.back()
		}
	}
}

// topoSort returns the reachable graph in topological order (parents before
// children), iteratively to avoid stack overflow on deep supernets.
func topoSort(root *Var) []*Var {
	var order []*Var
	seen := map[*Var]bool{}
	type frame struct {
		v    *Var
		next int
	}
	stack := []frame{{v: root}}
	seen[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.v.parents) {
			p := f.v.parents[f.next]
			f.next++
			if p != nil && p.requiresGrad && !seen[p] {
				seen[p] = true
				stack = append(stack, frame{v: p})
			}
			continue
		}
		order = append(order, f.v)
		stack = stack[:len(stack)-1]
	}
	return order
}

// Collect walks the graph from root and returns all leaf parameters
// (requiresGrad leaves). Mostly useful in tests; real models track their
// parameters explicitly.
func Collect(root *Var) []*Var {
	var params []*Var
	for _, v := range topoSort(root) {
		if v.back == nil && v.requiresGrad {
			params = append(params, v)
		}
	}
	return params
}
