package autograd

import (
	"math"

	"micronets/internal/tensor"
)

// FakeQuant simulates affine quantization of x into 2^bits levels over
// [lo, hi] during the forward pass, with a straight-through estimator
// backward that passes gradients only where x fell inside the range. This
// is the quantization-aware-training mechanism used by the paper (8-bit for
// all models, 4-bit for the sub-byte study).
func FakeQuant(x *Var, lo, hi float32, bits int) *Var {
	if hi <= lo {
		hi = lo + 1e-6
	}
	levels := float32(int(1)<<uint(bits)) - 1
	// Nudge the range so zero is exactly representable, as in TFLite.
	scale := (hi - lo) / levels
	zero := float32(math.Round(float64(-lo / scale)))
	if zero < 0 {
		zero = 0
	}
	if zero > levels {
		zero = levels
	}
	qlo := -zero * scale
	qhi := (levels - zero) * scale

	out := tensor.Apply(x.Value, func(v float32) float32 {
		if v < qlo {
			v = qlo
		}
		if v > qhi {
			v = qhi
		}
		q := float32(math.Round(float64((v - qlo) / scale)))
		return qlo + q*scale
	})
	var vr *Var
	vr = newOp(out, func() {
		g := tensor.New(x.Value.Shape...)
		for i, v := range x.Value.Data {
			if v >= qlo && v <= qhi {
				g.Data[i] = vr.Grad.Data[i]
			}
		}
		x.accumulate(g)
	}, x)
	return vr
}

// LSQQuant implements Learned Step Size Quantization (Esser et al. 2020,
// cited in §5.1.3): the quantizer step is itself a trainable scalar
// parameter, realizing the paper's "ranges of quantizers are learnt with
// gradient descent".
//
// step must be a scalar Var; signedness picks the integer grid.
func LSQQuant(x, step *Var, bits int, signed bool) *Var {
	var qn, qp float32
	if signed {
		qn = -float32(int(1) << uint(bits-1))
		qp = float32(int(1)<<uint(bits-1)) - 1
	} else {
		qn = 0
		qp = float32(int(1)<<uint(bits)) - 1
	}
	s := step.Value.Data[0]
	if s <= 1e-8 {
		s = 1e-8
	}
	// Gradient scale recommended by the LSQ paper: 1/sqrt(numel * qp).
	gscale := float32(1 / math.Sqrt(float64(x.Value.Len())*float64(qp)))

	n := x.Value.Len()
	out := tensor.New(x.Value.Shape...)
	ratio := make([]float32, n)
	for i, v := range x.Value.Data {
		r := v / s
		ratio[i] = r
		if r < qn {
			r = qn
		}
		if r > qp {
			r = qp
		}
		out.Data[i] = float32(math.Round(float64(r))) * s
	}
	var vr *Var
	vr = newOp(out, func() {
		var ds float64
		dx := tensor.New(x.Value.Shape...)
		for i := 0; i < n; i++ {
			g := vr.Grad.Data[i]
			r := ratio[i]
			switch {
			case r <= qn:
				ds += float64(g) * float64(qn)
			case r >= qp:
				ds += float64(g) * float64(qp)
			default:
				dx.Data[i] = g
				ds += float64(g) * (math.Round(float64(r)) - float64(r))
			}
		}
		x.accumulate(dx)
		step.accumulate(tensor.Scalar(float32(ds) * gscale).Reshape(step.Value.Shape...))
	}, x, step)
	return vr
}
