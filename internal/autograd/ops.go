package autograd

import (
	"fmt"
	"math"

	"micronets/internal/tensor"
)

// Add returns a+b elementwise.
func Add(a, b *Var) *Var {
	out := tensor.Add(a.Value, b.Value)
	var v *Var
	v = newOp(out, func() {
		a.accumulate(v.Grad)
		b.accumulate(v.Grad)
	}, a, b)
	return v
}

// Sub returns a-b elementwise.
func Sub(a, b *Var) *Var {
	out := tensor.Sub(a.Value, b.Value)
	var v *Var
	v = newOp(out, func() {
		a.accumulate(v.Grad)
		b.accumulate(tensor.Scale(v.Grad, -1))
	}, a, b)
	return v
}

// Mul returns a*b elementwise.
func Mul(a, b *Var) *Var {
	out := tensor.Mul(a.Value, b.Value)
	var v *Var
	v = newOp(out, func() {
		a.accumulate(tensor.Mul(v.Grad, b.Value))
		b.accumulate(tensor.Mul(v.Grad, a.Value))
	}, a, b)
	return v
}

// Scale returns a*s for a constant scalar s.
func Scale(a *Var, s float32) *Var {
	out := tensor.Scale(a.Value, s)
	var v *Var
	v = newOp(out, func() {
		a.accumulate(tensor.Scale(v.Grad, s))
	}, a)
	return v
}

// AddScalar returns a+s for a constant scalar s.
func AddScalar(a *Var, s float32) *Var {
	out := tensor.Apply(a.Value, func(x float32) float32 { return x + s })
	var v *Var
	v = newOp(out, func() {
		a.accumulate(v.Grad)
	}, a)
	return v
}

// ScalarMul returns x scaled by a scalar variable s (s participates in
// gradients). This is the core primitive behind DNAS decision nodes:
// y = z_k * f_k(x).
func ScalarMul(s, x *Var) *Var {
	if s.Value.Len() != 1 {
		panic(fmt.Sprintf("autograd: ScalarMul scale must be scalar, got %v", s.Value.Shape))
	}
	sv := s.Value.Data[0]
	out := tensor.Scale(x.Value, sv)
	var v *Var
	v = newOp(out, func() {
		x.accumulate(tensor.Scale(v.Grad, sv))
		s.accumulate(tensor.Scalar(tensor.Dot(x.Value, v.Grad)).Reshape(s.Value.Shape...))
	}, s, x)
	return v
}

// MatMul returns a@b for 2-D variables.
func MatMul(a, b *Var) *Var {
	out := tensor.MatMul(a.Value, b.Value)
	var v *Var
	v = newOp(out, func() {
		a.accumulate(tensor.MatMulT(v.Grad, b.Value)) // dA = dY @ Bᵀ
		b.accumulate(tensor.TMatMul(a.Value, v.Grad)) // dB = Aᵀ @ dY
	}, a, b)
	return v
}

// Reshape returns a view of a with a new shape.
func Reshape(a *Var, shape ...int) *Var {
	out := a.Value.Reshape(shape...)
	var v *Var
	v = newOp(out, func() {
		a.accumulate(v.Grad.Reshape(a.Value.Shape...))
	}, a)
	return v
}

// ReLU returns max(x, 0).
func ReLU(a *Var) *Var {
	out := tensor.Apply(a.Value, func(x float32) float32 {
		if x > 0 {
			return x
		}
		return 0
	})
	var v *Var
	v = newOp(out, func() {
		g := tensor.New(a.Value.Shape...)
		for i, x := range a.Value.Data {
			if x > 0 {
				g.Data[i] = v.Grad.Data[i]
			}
		}
		a.accumulate(g)
	}, a)
	return v
}

// ReLU6 returns min(max(x,0),6) — the activation used throughout
// MobileNetV2/DS-CNN style MCU models because it bounds activation ranges
// for 8-bit quantization.
func ReLU6(a *Var) *Var {
	out := tensor.Apply(a.Value, func(x float32) float32 {
		if x < 0 {
			return 0
		}
		if x > 6 {
			return 6
		}
		return x
	})
	var v *Var
	v = newOp(out, func() {
		g := tensor.New(a.Value.Shape...)
		for i, x := range a.Value.Data {
			if x > 0 && x < 6 {
				g.Data[i] = v.Grad.Data[i]
			}
		}
		a.accumulate(g)
	}, a)
	return v
}

// Sigmoid returns 1/(1+exp(-x)).
func Sigmoid(a *Var) *Var {
	out := tensor.Apply(a.Value, func(x float32) float32 {
		return float32(1 / (1 + math.Exp(-float64(x))))
	})
	var v *Var
	v = newOp(out, func() {
		g := tensor.New(a.Value.Shape...)
		for i, y := range out.Data {
			g.Data[i] = v.Grad.Data[i] * y * (1 - y)
		}
		a.accumulate(g)
	}, a)
	return v
}

// BiasAdd adds a bias vector along the last dimension of x.
func BiasAdd(x, bias *Var) *Var {
	c := x.Value.Dim(-1)
	if bias.Value.Len() != c {
		panic(fmt.Sprintf("autograd: BiasAdd bias %v vs channels %d", bias.Value.Shape, c))
	}
	out := x.Value.Clone()
	for i := 0; i < out.Len(); i += c {
		for j := 0; j < c; j++ {
			out.Data[i+j] += bias.Value.Data[j]
		}
	}
	var v *Var
	v = newOp(out, func() {
		x.accumulate(v.Grad)
		if bias.requiresGrad {
			db := tensor.New(c)
			for i := 0; i < v.Grad.Len(); i += c {
				for j := 0; j < c; j++ {
					db.Data[j] += v.Grad.Data[i+j]
				}
			}
			bias.accumulate(db)
		}
	}, x, bias)
	return v
}

// ChannelScale multiplies x by a per-channel vector m along the last
// dimension. It implements FBNetV2-style channel masking, which is how the
// DNAS search relaxes width choices: y = x * (Σ_k z_k mask_k).
func ChannelScale(x, m *Var) *Var {
	c := x.Value.Dim(-1)
	if m.Value.Len() != c {
		panic(fmt.Sprintf("autograd: ChannelScale mask %v vs channels %d", m.Value.Shape, c))
	}
	out := x.Value.Clone()
	for i := 0; i < out.Len(); i += c {
		for j := 0; j < c; j++ {
			out.Data[i+j] *= m.Value.Data[j]
		}
	}
	var v *Var
	v = newOp(out, func() {
		if x.requiresGrad {
			dx := tensor.New(x.Value.Shape...)
			for i := 0; i < v.Grad.Len(); i += c {
				for j := 0; j < c; j++ {
					dx.Data[i+j] = v.Grad.Data[i+j] * m.Value.Data[j]
				}
			}
			x.accumulate(dx)
		}
		if m.requiresGrad {
			dm := tensor.New(c)
			for i := 0; i < v.Grad.Len(); i += c {
				for j := 0; j < c; j++ {
					dm.Data[j] += v.Grad.Data[i+j] * x.Value.Data[i+j]
				}
			}
			dm = dm.Reshape(m.Value.Shape...)
			m.accumulate(dm)
		}
	}, x, m)
	return v
}

// Mean reduces to the scalar mean of all elements.
func Mean(a *Var) *Var {
	out := tensor.Scalar(tensor.Mean(a.Value))
	inv := 1 / float32(a.Value.Len())
	var v *Var
	v = newOp(out, func() {
		g := tensor.New(a.Value.Shape...).Fill(v.Grad.Data[0] * inv)
		a.accumulate(g)
	}, a)
	return v
}

// Sum reduces to the scalar sum of all elements.
func Sum(a *Var) *Var {
	out := tensor.Scalar(tensor.Sum(a.Value))
	var v *Var
	v = newOp(out, func() {
		g := tensor.New(a.Value.Shape...).Fill(v.Grad.Data[0])
		a.accumulate(g)
	}, a)
	return v
}

// Square returns x*x elementwise.
func Square(a *Var) *Var {
	out := tensor.Mul(a.Value, a.Value)
	var v *Var
	v = newOp(out, func() {
		g := tensor.Mul(v.Grad, a.Value)
		a.accumulate(tensor.Scale(g, 2))
	}, a)
	return v
}

// AddN sums any number of equal-shaped variables.
func AddN(vs ...*Var) *Var {
	if len(vs) == 0 {
		panic("autograd: AddN of nothing")
	}
	out := vs[0].Value.Clone()
	for _, x := range vs[1:] {
		tensor.AddInPlace(out, x.Value)
	}
	parents := append([]*Var(nil), vs...)
	var v *Var
	v = newOp(out, func() {
		for _, p := range parents {
			p.accumulate(v.Grad)
		}
	}, parents...)
	return v
}

// MaxN returns the elementwise-scalar maximum of scalar variables, routing
// the gradient to the (first) argmax. Used for the SRAM working-memory
// model: total working memory = max over graph nodes.
func MaxN(vs ...*Var) *Var {
	if len(vs) == 0 {
		panic("autograd: MaxN of nothing")
	}
	best := 0
	for i, x := range vs {
		if x.Value.Data[0] > vs[best].Value.Data[0] {
			best = i
		}
		_ = i
	}
	winner := vs[best]
	out := tensor.Scalar(winner.Value.Data[0])
	var v *Var
	v = newOp(out, func() {
		winner.accumulate(v.Grad.Reshape(winner.Value.Shape...))
	}, vs...)
	return v
}

// SoftmaxVec computes softmax over a flat vector (used for DNAS
// architecture parameters, optionally with a temperature).
func SoftmaxVec(a *Var, temperature float32) *Var {
	if temperature <= 0 {
		panic("autograd: SoftmaxVec temperature must be positive")
	}
	n := a.Value.Len()
	out := tensor.New(a.Value.Shape...)
	maxv := tensor.Max(a.Value)
	var sum float64
	for i := 0; i < n; i++ {
		e := math.Exp(float64((a.Value.Data[i] - maxv) / temperature))
		out.Data[i] = float32(e)
		sum += e
	}
	for i := 0; i < n; i++ {
		out.Data[i] = float32(float64(out.Data[i]) / sum)
	}
	var v *Var
	v = newOp(out, func() {
		// dL/da_i = (1/T) * p_i * (g_i - Σ_j g_j p_j)
		var dot float64
		for i := 0; i < n; i++ {
			dot += float64(v.Grad.Data[i]) * float64(out.Data[i])
		}
		g := tensor.New(a.Value.Shape...)
		for i := 0; i < n; i++ {
			g.Data[i] = out.Data[i] * (v.Grad.Data[i] - float32(dot)) / temperature
		}
		a.accumulate(g)
	}, a)
	return v
}

// Index extracts element i of a flat vector as a scalar Var.
func Index(a *Var, i int) *Var {
	out := tensor.Scalar(a.Value.Data[i])
	var v *Var
	v = newOp(out, func() {
		g := tensor.New(a.Value.Shape...)
		g.Data[i] = v.Grad.Data[0]
		a.accumulate(g)
	}, a)
	return v
}

// Concat concatenates along the last (channel) dimension. All inputs must
// share the leading dimensions.
func Concat(vs ...*Var) *Var {
	if len(vs) == 0 {
		panic("autograd: Concat of nothing")
	}
	lead := tensor.NumElems(vs[0].Value.Shape) / vs[0].Value.Dim(-1)
	totalC := 0
	for _, x := range vs {
		if tensor.NumElems(x.Value.Shape)/x.Value.Dim(-1) != lead {
			panic("autograd: Concat leading dims differ")
		}
		totalC += x.Value.Dim(-1)
	}
	shape := append([]int(nil), vs[0].Value.Shape...)
	shape[len(shape)-1] = totalC
	out := tensor.New(shape...)
	off := 0
	for _, x := range vs {
		c := x.Value.Dim(-1)
		for r := 0; r < lead; r++ {
			copy(out.Data[r*totalC+off:r*totalC+off+c], x.Value.Data[r*c:(r+1)*c])
		}
		off += c
	}
	parents := append([]*Var(nil), vs...)
	var v *Var
	v = newOp(out, func() {
		off := 0
		for _, x := range parents {
			c := x.Value.Dim(-1)
			if x.requiresGrad {
				g := tensor.New(x.Value.Shape...)
				for r := 0; r < lead; r++ {
					copy(g.Data[r*c:(r+1)*c], v.Grad.Data[r*totalC+off:r*totalC+off+c])
				}
				x.accumulate(g)
			}
			off += c
		}
	}, parents...)
	return v
}
