package experiments

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLinearFitRecoversPlantedLine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var pts []XY
	for i := 0; i < 100; i++ {
		x := rng.Float64() * 50
		pts = append(pts, XY{X: x, Y: 3*x + 2 + rng.NormFloat64()*0.01})
	}
	slope, intercept, r2 := LinearFit(pts)
	if math.Abs(slope-3) > 0.01 || math.Abs(intercept-2) > 0.1 {
		t.Fatalf("fit = %v x + %v", slope, intercept)
	}
	if r2 < 0.999 {
		t.Fatalf("r2 = %v", r2)
	}
}

func TestQuickLinearFitPerfectOnLines(t *testing.T) {
	f := func(m, b float64, seed int64) bool {
		if math.IsNaN(m) || math.IsInf(m, 0) || math.Abs(m) > 1e6 ||
			math.IsNaN(b) || math.IsInf(b, 0) || math.Abs(b) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		var pts []XY
		for i := 0; i < 20; i++ {
			x := rng.Float64()*100 - 50
			pts = append(pts, XY{X: x, Y: m*x + b})
		}
		slope, intercept, r2 := LinearFit(pts)
		scale := math.Max(1, math.Abs(m))
		return math.Abs(slope-m) < 1e-6*scale && math.Abs(intercept-b) < 1e-4*scale && r2 > 0.999999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestFigure4PaperClaims asserts the central §3.3 result: per-backbone
// linearity (r² in the paper's 0.95..0.99 band), a ~40% backbone
// throughput gap, and ~2x between M7 and M4.
func TestFigure4PaperClaims(t *testing.T) {
	series, err := Figure4(100, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	tp := map[string]float64{}
	for _, s := range series {
		if s.R2 < 0.93 || s.R2 > 0.999 {
			t.Errorf("%s/%s r2=%.3f outside band", s.Backbone, s.Device, s.R2)
		}
		tp[s.Backbone+"/"+s.Device] = s.ThroughputMops
	}
	gap := tp["kws/STM32F746ZG"] / tp["image/STM32F746ZG"]
	if gap < 1.2 || gap > 1.7 {
		t.Errorf("backbone throughput gap %.2f, want ~1.4", gap)
	}
	m7m4 := tp["kws/STM32F746ZG"] / tp["kws/STM32F446RE"]
	if m7m4 < 1.8 || m7m4 > 2.7 {
		t.Errorf("M7/M4 ratio %.2f, want ~2", m7m4)
	}
}

// TestFigure5PaperClaims asserts §3.4: power constant (σ/µ ~ 0.007),
// energy linear in ops, and the smaller MCU cheaper in energy.
func TestFigure5PaperClaims(t *testing.T) {
	series, err := Figure5(120, 42)
	if err != nil {
		t.Fatal(err)
	}
	var slopeS, slopeM float64
	for _, s := range series {
		if s.PowerSigmaMu > 0.02 {
			t.Errorf("%s power σ/µ = %v, want ~0.007", s.Device, s.PowerSigmaMu)
		}
		if s.EnergyR2 < 0.9 {
			t.Errorf("%s energy r2 = %v", s.Device, s.EnergyR2)
		}
		if s.Device == "STM32F446RE" {
			slopeS = s.EnergySlopeMJ
		} else {
			slopeM = s.EnergySlopeMJ
		}
	}
	if slopeS >= slopeM {
		t.Errorf("small MCU energy slope (%.3f) must be below medium (%.3f)", slopeS, slopeM)
	}
}

func TestFigure3Spread(t *testing.T) {
	pts, err := Figure3(25, 42)
	if err != nil {
		t.Fatal(err)
	}
	spread := ThroughputSpread(pts)
	if spread["conv"][1] < 2*spread["dwconv"][1] {
		t.Errorf("conv median throughput %.0f not >> dwconv %.0f", spread["conv"][1], spread["dwconv"][1])
	}
	if spread["conv"][2] < 1.5*spread["conv"][0] {
		t.Errorf("conv spread too narrow: %v (Figure 3 shows wide per-layer variation)", spread["conv"])
	}
}

func TestFigure10Ordering(t *testing.T) {
	rows, err := Figure10(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Lat4a8wIncreasePct <= 0 || r.Lat4a4wIncreasePct <= r.Lat4a8wIncreasePct {
			t.Errorf("%s: overheads must be positive and 4w4a > 4a8w: %+v", r.Model, r)
		}
	}
	if rows[1].Lat4a4wIncreasePct <= rows[0].Lat4a4wIncreasePct {
		t.Error("KWS-L overhead must exceed KWS-M (Figure 10)")
	}
}

func TestMeasureZooKWS(t *testing.T) {
	ms, err := MeasureZoo("kws", 42)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Measured{}
	for _, m := range ms {
		byName[m.Name] = m
	}
	// Deployability decisions from §6.3 / Table 4.
	if !byName["MicroNet-KWS-S"].DeployableS {
		t.Error("KWS-S must fit the small MCU")
	}
	if !byName["MicroNet-KWS-M"].DeployableS {
		t.Error("KWS-M must fit the small MCU (paper: 'deployable on the smallest MCU')")
	}
	if byName["MicroNet-KWS-L"].DeployableS {
		t.Error("KWS-L must not fit the small MCU")
	}
	if !byName["MicroNet-KWS-L"].DeployableM {
		t.Error("KWS-L must fit the medium MCU")
	}
	if byName["MBNETV2-L"].DeployableM {
		t.Error("MBNETV2-L 'does not fit and is omitted' (§6.3)")
	}
}

// TestMicroNetsParetoOptimal asserts the headline claim: MicroNet KWS
// models are on the latency and flash Pareto fronts.
func TestMicroNetsParetoOptimal(t *testing.T) {
	ms, err := MeasureZoo("kws", 42)
	if err != nil {
		t.Fatal(err)
	}
	lat := ParetoFront(ms, func(m Measured) float64 { return m.LatM })
	flash := ParetoFront(ms, func(m Measured) float64 { return m.FlashKB })
	for _, name := range []string{"MicroNet-KWS-S", "MicroNet-KWS-M", "MicroNet-KWS-L"} {
		if !OnFront(lat, name) {
			t.Errorf("%s not on the latency Pareto front", name)
		}
		if !OnFront(flash, name) {
			t.Errorf("%s not on the flash Pareto front", name)
		}
	}
}

func TestParetoFrontInvariants(t *testing.T) {
	ms, err := MeasureZoo("ad", 42)
	if err != nil {
		t.Fatal(err)
	}
	cost := func(m Measured) float64 { return m.SRAMKB }
	front := ParetoFront(ms, cost)
	// No front point dominates another front point.
	for _, a := range front {
		for _, b := range front {
			if a.Name == b.Name {
				continue
			}
			if cost(a) <= cost(b) && a.PaperAcc >= b.PaperAcc &&
				(cost(a) < cost(b) || a.PaperAcc > b.PaperAcc) {
				t.Fatalf("front point %s dominates front point %s", a.Name, b.Name)
			}
		}
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	if !strings.Contains(Table1(), "STM32F746ZG") {
		t.Error("Table1 missing device")
	}
	if !strings.Contains(Table5(), "MicroNet-KWS-L") {
		t.Error("Table5 missing model")
	}
	for _, f := range []func() (string, error){
		func() (string, error) { return Figure2("MicroNet-KWS-L", 42) },
		func() (string, error) { return RenderPareto("kws", 42) },
		func() (string, error) { return Table2(42) },
		func() (string, error) { return Table3(42) },
		func() (string, error) { return Figure11(42) },
		func() (string, error) { return Figure9(42) },
	} {
		out, err := f()
		if err != nil {
			t.Fatal(err)
		}
		if len(out) < 50 {
			t.Fatalf("renderer output too short: %q", out)
		}
	}
}

func TestTable3ConvAENotDeployable(t *testing.T) {
	out, err := Table3(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Conv-AE") && !strings.Contains(line, "ND") {
			t.Fatalf("Conv-AE row must be ND: %s", line)
		}
	}
}

func TestFigure2MatchesPaperStructure(t *testing.T) {
	out, err := Figure2("MicroNet-KWS-L", 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"TF Micro interpreter : 4.0 KB", "TF Micro code        : 37.0 KB", "Free SRAM", "Free flash"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Figure 2 missing %q:\n%s", frag, out)
		}
	}
}
