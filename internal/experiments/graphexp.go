package experiments

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"sort"
	"strings"
	"time"

	"micronets/internal/obs"
	"micronets/internal/serve"
	"micronets/internal/servegraph"
	"micronets/internal/zoo"
)

// GraphReport is the result of the cascade-vs-single-model serving
// experiment: mixed traffic through a two-stage cascade (small gate,
// frontier-large fallback) against the same traffic through the large
// model alone.
type GraphReport struct {
	Gate  string `json:"gate"`
	Large string `json:"large"`
	// GateMOps/LargeMOps are the per-inference op counts, the static side
	// of the story the latencies confirm.
	GateMOps  float64 `json:"gate_mops"`
	LargeMOps float64 `json:"large_mops"`
	Requests  int     `json:"requests"`
	// Threshold is the cascade early-exit confidence, chosen adaptively as
	// the 25th percentile of the gate's confidence on the traffic so ~75%
	// of requests exit at the gate.
	Threshold   float64 `json:"threshold"`
	GateHits    uint64  `json:"gate_hits"`
	Escalations uint64  `json:"escalations"`
	GateHitRate float64 `json:"gate_hit_rate"`
	// Mean per-request wall latencies over the same inputs, with
	// p50/p99 from the per-path latency histograms.
	GateMeanMs    float64 `json:"gate_mean_ms"`
	GateP50Ms     float64 `json:"gate_p50_ms"`
	GateP99Ms     float64 `json:"gate_p99_ms"`
	LargeMeanMs   float64 `json:"large_mean_ms"`
	LargeP50Ms    float64 `json:"large_p50_ms"`
	LargeP99Ms    float64 `json:"large_p99_ms"`
	CascadeMeanMs float64 `json:"cascade_mean_ms"`
	CascadeP50Ms  float64 `json:"cascade_p50_ms"`
	CascadeP99Ms  float64 `json:"cascade_p99_ms"`
	// Speedup is LargeMeanMs / CascadeMeanMs — >1 means the cascade beats
	// serving everything on the large model.
	Speedup float64 `json:"speedup_vs_large"`
	// Agreement is the fraction of requests where the cascade's answer
	// class matches the large model's (the escalated ones match trivially).
	Agreement float64 `json:"agreement_with_large"`
}

// GraphExperiment measures the cascade routing win end-to-end through the
// real serving stack: repository-loaded models, micro-batchers, and the
// servegraph router — everything but the HTTP layer. n is the number of
// mixed-traffic requests (n >= 4; each request is one random KWS row).
func GraphExperiment(n int, seed int64) (*GraphReport, error) {
	if n < 4 {
		n = 4
	}
	const gateName, largeName = "DSCNN-S", "MicroNet-KWS-L"
	repo := serve.NewRepository(serve.RepositoryConfig{
		PoolSize: 1,
		// MaxBatch 1 dispatches every request immediately, so measured
		// latency is model time, not batching-window time.
		Batch:   serve.BatcherConfig{MaxBatch: 1, MaxDelay: time.Millisecond},
		Options: serve.ModelOptions{Seed: seed, AppendSoftmax: true},
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	defer repo.Close()
	for _, name := range []string{gateName, largeName} {
		if _, err := repo.LoadZoo(name, serve.ModelOptions{Seed: seed, AppendSoftmax: true}); err != nil {
			return nil, fmt.Errorf("graph experiment: load %s: %w", name, err)
		}
	}
	backend := serve.GraphBackend(repo)
	info, err := backend.ModelInfo(gateName)
	if err != nil {
		return nil, err
	}
	elems := info.InputH * info.InputW * info.InputC

	rng := rand.New(rand.NewSource(seed))
	inputs := make([][]float64, n)
	for i := range inputs {
		row := make([]float64, elems)
		for j := range row {
			row[j] = rng.Float64()*2 - 1
		}
		inputs[i] = row
	}

	ctx := context.Background()
	var gateHist, largeHist, cascadeHist obs.Histogram
	timeInfer := func(model string, x []float64, h *obs.Histogram) (servegraph.Scored, float64, error) {
		start := time.Now()
		s, err := backend.Infer(ctx, model, x)
		d := time.Since(start)
		h.Observe(d)
		return s, d.Seconds() * 1e3, err
	}

	// Profile both models on the whole traffic: the gate pass yields the
	// confidence distribution the threshold is drawn from, the large pass
	// the single-model baseline the cascade must beat.
	confidences := make([]float64, n)
	largeClasses := make([]int, n)
	var gateMs, largeMs float64
	for i, x := range inputs {
		s, ms, err := timeInfer(gateName, x, &gateHist)
		if err != nil {
			return nil, err
		}
		gateMs += ms
		best := 0
		for j, p := range s.Probs {
			if p > s.Probs[best] {
				best = j
			}
		}
		confidences[i] = s.Probs[best]

		s, ms, err = timeInfer(largeName, x, &largeHist)
		if err != nil {
			return nil, err
		}
		largeMs += ms
		best = 0
		for j, p := range s.Probs {
			if p > s.Probs[best] {
				best = j
			}
		}
		largeClasses[i] = best
	}

	// Adaptive threshold: the 25th-percentile gate confidence. Everything
	// at or above it (~75% of traffic) exits at the gate, so the blended
	// latency lands near gate + 0.25*large regardless of how peaked the
	// untrained confidence distribution happens to be.
	sorted := append([]float64(nil), confidences...)
	sort.Float64s(sorted)
	threshold := sorted[n/4]
	if threshold > 1 {
		threshold = 1
	}

	reg := servegraph.NewRegistry(backend)
	g, err := reg.Put(&servegraph.Spec{
		Name: "bench-cascade",
		Root: &servegraph.NodeSpec{
			Kind: servegraph.KindCascade, Name: "cascade", Threshold: threshold,
			Children: []*servegraph.NodeSpec{
				{Kind: servegraph.KindModel, Model: gateName},
				{Kind: servegraph.KindModel, Model: largeName},
			},
		},
	})
	if err != nil {
		return nil, err
	}

	var cascadeMs float64
	agree := 0
	for i, x := range inputs {
		start := time.Now()
		res, err := g.Infer(ctx, x, "")
		if err != nil {
			return nil, err
		}
		d := time.Since(start)
		cascadeHist.Observe(d)
		cascadeMs += d.Seconds() * 1e3
		if res.Class == largeClasses[i] {
			agree++
		}
	}

	var gateHits, escalations uint64
	for _, ns := range g.Stats().Nodes {
		if ns.Kind == servegraph.KindCascade {
			gateHits, escalations = ns.GateHits, ns.Escalations
		}
	}

	gateE, err := zoo.Get(gateName)
	if err != nil {
		return nil, err
	}
	largeE, err := zoo.Get(largeName)
	if err != nil {
		return nil, err
	}

	rep := &GraphReport{
		Gate:          gateName,
		Large:         largeName,
		GateMOps:      gateE.Paper.MOps,
		LargeMOps:     largeE.Paper.MOps,
		Requests:      n,
		Threshold:     threshold,
		GateHits:      gateHits,
		Escalations:   escalations,
		GateHitRate:   float64(gateHits) / float64(n),
		GateMeanMs:    gateMs / float64(n),
		GateP50Ms:     gateHist.Snapshot().P50().Seconds() * 1e3,
		GateP99Ms:     gateHist.Snapshot().P99().Seconds() * 1e3,
		LargeMeanMs:   largeMs / float64(n),
		LargeP50Ms:    largeHist.Snapshot().P50().Seconds() * 1e3,
		LargeP99Ms:    largeHist.Snapshot().P99().Seconds() * 1e3,
		CascadeMeanMs: cascadeMs / float64(n),
		CascadeP50Ms:  cascadeHist.Snapshot().P50().Seconds() * 1e3,
		CascadeP99Ms:  cascadeHist.Snapshot().P99().Seconds() * 1e3,
		Agreement:     float64(agree) / float64(n),
	}
	if rep.CascadeMeanMs > 0 {
		rep.Speedup = rep.LargeMeanMs / rep.CascadeMeanMs
	}
	return rep, nil
}

// RenderGraphReport formats a GraphReport as the bench text table.
func RenderGraphReport(r *GraphReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Inference-graph cascade vs single large model (%d mixed requests)\n", r.Requests)
	fmt.Fprintf(&b, "gate %s (%.1f MOps), fallback %s (%.1f MOps), early-exit confidence %.3f\n",
		r.Gate, r.GateMOps, r.Large, r.LargeMOps, r.Threshold)
	fmt.Fprintf(&b, "%-22s %12s %10s %10s %14s\n", "path", "mean ms/req", "p50 ms", "p99 ms", "vs large-only")
	fmt.Fprintf(&b, "%-22s %12.2f %10.2f %10.2f %14s\n", r.Gate+" only", r.GateMeanMs, r.GateP50Ms, r.GateP99Ms, "-")
	fmt.Fprintf(&b, "%-22s %12.2f %10.2f %10.2f %14.2fx\n", r.Large+" only", r.LargeMeanMs, r.LargeP50Ms, r.LargeP99Ms, 1.0)
	fmt.Fprintf(&b, "%-22s %12.2f %10.2f %10.2f %14.2fx\n", "cascade", r.CascadeMeanMs, r.CascadeP50Ms, r.CascadeP99Ms, r.Speedup)
	fmt.Fprintf(&b, "gate answered %d/%d requests (%.0f%%), %d escalated; cascade agrees with %s on %.0f%% of answers\n",
		r.GateHits, r.Requests, 100*r.GateHitRate, r.Escalations, r.Large, 100*r.Agreement)
	b.WriteString("(the tiny gate absorbs the easy majority, so blended latency approaches the gate's — the serving-side version of the paper's per-inference op budget)\n")
	return b.String()
}
