package experiments

import (
	"context"
	"fmt"
	"strings"

	"micronets/internal/mcu"
	"micronets/internal/search"
)

// SearchRow is one Pareto-frontier point of the NAS experiment, the
// machine-readable row of BENCH_search.json — the cross-PR trajectory
// format for the search subsystem (frontier quality should only improve
// as the harness and spaces get smarter). TrainedAcc is 0 for points the
// accuracy-in-the-loop second stage did not train.
type SearchRow struct {
	Trial      int     `json:"trial"`
	Source     string  `json:"source"`
	AccProxy   float64 `json:"accuracy_proxy"`
	TrainedAcc float64 `json:"trained_accuracy"`
	LatencyMS  float64 `json:"latency_ms"`
	EnergyMJ   float64 `json:"energy_mj"`
	ArenaKB    float64 `json:"arena_kb"`
	SRAMKB     float64 `json:"sram_kb"`
	WeightKB   float64 `json:"weight_kb"`
	FlashKB    float64 `json:"flash_kb"`
	MOps       float64 `json:"mops"`
}

func rowFromPoint(p search.Point) SearchRow {
	return SearchRow{
		Trial:      p.Trial,
		Source:     p.Source,
		AccProxy:   p.Metrics.AccuracyProxy,
		TrainedAcc: p.Metrics.TrainedAccuracy,
		LatencyMS:  p.Metrics.LatencyS * 1e3,
		EnergyMJ:   p.Metrics.EnergyMJ,
		ArenaKB:    float64(p.Metrics.ArenaBytes) / 1024,
		SRAMKB:     float64(p.Metrics.TotalSRAMBytes) / 1024,
		WeightKB:   float64(p.Metrics.WeightBytes) / 1024,
		FlashKB:    float64(p.Metrics.TotalFlashBytes) / 1024,
		MOps:       float64(p.Metrics.Ops) / 1e6,
	}
}

// FrontierRows flattens a finished run's Pareto frontier into rows; it is
// the single conversion cmd/search and cmd/bench both render from.
func FrontierRows(res *search.Result) []SearchRow {
	var rows []SearchRow
	for _, p := range res.Frontier.Points() {
		rows = append(rows, rowFromPoint(p))
	}
	return rows
}

// FinalistRows flattens the stage-two re-rank (best trained accuracy
// first) — the proxy-vs-trained comparison BENCH_search.json records.
func FinalistRows(res *search.Result) []SearchRow {
	var rows []SearchRow
	for _, p := range res.Finalists {
		rows = append(rows, rowFromPoint(p))
	}
	return rows
}

// SearchExperiment runs the two-stage NAS harness for the paper's KWS
// task on the small MCU (the most constrained Table 4 setting) and
// returns the frontier as rows plus the run's summary counters. A
// non-empty checkpoint path resumes a matching prior run (same
// task/device/seed, and same train-steps for the finalist stage) instead
// of re-evaluating — the serve-smoke script uses this to derive
// BENCH_search.json from the cmd/search run it already paid for.
// finalists 0 disables the accuracy-in-the-loop stage.
func SearchExperiment(trials int, seed int64, checkpoint string, finalists, trainSteps int) ([]SearchRow, *search.Result, error) {
	dev := mcu.F446RE
	res, err := search.Run(context.Background(), search.Config{
		Task: "kws", Device: dev, Budgets: search.DeviceBudgets(dev),
		Trials: trials, Seed: seed, DNASSteps: 40,
		Finalists: finalists, TrainSteps: trainSteps,
		CheckpointPath: checkpoint,
	})
	if err != nil {
		return nil, nil, err
	}
	return FrontierRows(res), res, nil
}

// RenderSearchTable renders frontier rows in the style of the paper's
// Table 4 (per-model resource/latency columns); the trained column shows
// "-" for points the second stage did not train.
func RenderSearchTable(rows []SearchRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-8s %8s %10s %10s %10s %10s %8s\n",
		"trial", "source", "acc(%)", "trained(%)", "lat(ms)", "SRAM(KB)", "flash(KB)", "MOps")
	for _, r := range rows {
		trained := "-"
		if r.TrainedAcc > 0 {
			trained = fmt.Sprintf("%.2f", r.TrainedAcc)
		}
		fmt.Fprintf(&b, "trial-%03d  %-8s %8.2f %10s %10.2f %10.1f %10.1f %8.1f\n",
			r.Trial, r.Source, r.AccProxy, trained, r.LatencyMS, r.SRAMKB, r.FlashKB, r.MOps)
	}
	return b.String()
}

// RenderSearchRows renders the full experiment report: run counters, the
// frontier table, and — when the accuracy-in-the-loop stage ran — the
// finalist re-rank ordered by trained accuracy.
func RenderSearchRows(rows []SearchRow, res *search.Result) string {
	var b strings.Builder
	feasible := 0
	for _, r := range res.Trials {
		if r.Feasible {
			feasible++
		}
	}
	fmt.Fprintf(&b, "NAS harness on %s: %d trials (%d resumed), %d feasible, frontier %d\n",
		res.Device.Name, len(res.Trials), res.Resumed, feasible, len(rows))
	b.WriteString(RenderSearchTable(rows))
	finalists := FinalistRows(res)
	if len(finalists) == 0 {
		b.WriteString("(accuracy is a capacity proxy; run with finalists > 0 for the accuracy-in-the-loop re-rank)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "\nfinalist re-rank (%d trained, real short training runs, best first):\n", len(finalists))
	b.WriteString(RenderSearchTable(finalists))
	return b.String()
}
