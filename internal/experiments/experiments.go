// Package experiments regenerates every table and figure of the paper's
// evaluation from the reproduction's own substrates: the random-model
// characterization studies (Figures 3-5, 9), the memory map (Figure 2),
// the Pareto comparisons (Figures 7, 8, 11), the sub-byte study (Figure
// 10, Table 2), and the results tables (Tables 1-5). See DESIGN.md for the
// per-experiment index.
package experiments

import (
	"math"
	"math/rand"
	"sort"

	"micronets/internal/core"
	"micronets/internal/graph"
	"micronets/internal/mcu"
)

// XY is one scatter point.
type XY struct {
	X, Y float64
}

// LinearFit returns the least-squares line y = slope*x + intercept and the
// coefficient of determination r².
func LinearFit(pts []XY) (slope, intercept, r2 float64) {
	n := float64(len(pts))
	if n < 2 {
		return 0, 0, 0
	}
	var sx, sy, sxx, sxy, syy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
		sxx += p.X * p.X
		sxy += p.X * p.Y
		syy += p.Y * p.Y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	// r² = 1 - SSres/SStot
	meanY := sy / n
	var ssRes, ssTot float64
	for _, p := range pts {
		pred := slope*p.X + intercept
		ssRes += (p.Y - pred) * (p.Y - pred)
		ssTot += (p.Y - meanY) * (p.Y - meanY)
	}
	if ssTot == 0 {
		return slope, intercept, 1
	}
	return slope, intercept, 1 - ssRes/ssTot
}

// ---------------------------------------------------------------------------
// Figure 3: layer-wise latency vs ops.

// LayerPoint is one single-layer measurement.
type LayerPoint struct {
	Kind      string
	Ops       int64
	LatencyMS float64
}

// Figure3 characterizes random individual layers on the STM32F767ZI, as in
// the paper: conv2d and fully connected layers exhibit lower latency per
// op than depthwise convolutions, with spread from IM2COL overheads and
// the ÷4 channel alignment effect.
func Figure3(perKind int, seed int64) ([]LayerPoint, error) {
	rng := rand.New(rand.NewSource(seed))
	var out []LayerPoint
	for _, kind := range []string{"conv", "dwconv", "fc"} {
		for i := 0; i < perKind; i++ {
			layer := core.RandomSingleLayer(rng, kind, i)
			m, err := graph.FromSpec(layer.Spec, rng, graph.LowerOptions{})
			if err != nil {
				return nil, err
			}
			_, lats, err := mcu.ModelLatency(m, mcu.F767ZI)
			if err != nil {
				return nil, err
			}
			for oi, op := range m.Ops {
				var k string
				switch op.Kind {
				case graph.OpConv2D:
					k = "conv"
				case graph.OpDWConv2D:
					k = "dwconv"
				case graph.OpDense:
					k = "fc"
				default:
					continue
				}
				// For the dwconv spec (lowered as a DS block) keep only
				// the depthwise op itself as the datapoint.
				if kind == "dwconv" && k != "dwconv" {
					continue
				}
				out = append(out, LayerPoint{
					Kind: k, Ops: op.Ops(m), LatencyMS: lats[oi].Seconds * 1000,
				})
			}
		}
	}
	return out, nil
}

// ThroughputSpread summarizes ops/s percentiles per layer kind, the
// quantitative form of Figure 3's visual spread.
func ThroughputSpread(points []LayerPoint) map[string][3]float64 {
	byKind := map[string][]float64{}
	for _, p := range points {
		if p.LatencyMS <= 0 {
			continue
		}
		byKind[p.Kind] = append(byKind[p.Kind], float64(p.Ops)/(p.LatencyMS/1000)/1e6)
	}
	out := map[string][3]float64{}
	for k, v := range byKind {
		sort.Float64s(v)
		out[k] = [3]float64{
			v[len(v)/10],   // p10
			v[len(v)/2],    // median
			v[len(v)*9/10], // p90
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 4: whole-model latency is linear in ops.

// Fig4Series is one (backbone, device) scatter with its fit.
type Fig4Series struct {
	Backbone string
	Device   string
	Points   []XY // x: Mops, y: latency seconds
	Slope    float64
	R2       float64
	// ThroughputMops is 1/slope: the emergent whole-model ops/s.
	ThroughputMops float64
}

// Figure4 samples random models from the KWS and image-classification
// backbones and measures them on the small and medium MCUs. The paper's
// claim, which the test suite asserts, is 0.95 < r² < 0.99 per series, a
// ~40% higher slope for the KWS backbone, and ~2x between the MCUs.
func Figure4(perBackbone int, seed int64) ([]Fig4Series, error) {
	rng := rand.New(rand.NewSource(seed))
	devices := []*mcu.Device{mcu.F446RE, mcu.F746ZG}
	var series []Fig4Series
	for _, backbone := range []string{"kws", "image"} {
		models := make([]*graph.Model, 0, perBackbone)
		for i := 0; i < perBackbone; i++ {
			var err error
			var m *graph.Model
			if backbone == "kws" {
				m, err = graph.FromSpec(core.RandomKWSModel(rng, i), rng, graph.LowerOptions{})
			} else {
				m, err = graph.FromSpec(core.RandomImageModel(rng, i), rng, graph.LowerOptions{})
			}
			if err != nil {
				return nil, err
			}
			models = append(models, m)
		}
		for _, dev := range devices {
			s := Fig4Series{Backbone: backbone, Device: dev.Name}
			for _, m := range models {
				s.Points = append(s.Points, XY{
					X: float64(m.TotalOps()) / 1e6,
					Y: mcu.Latency(m, dev),
				})
			}
			s.Slope, _, s.R2 = LinearFit(s.Points)
			if s.Slope > 0 {
				s.ThroughputMops = 1 / s.Slope
			}
			series = append(series, s)
		}
	}
	return series, nil
}

// ---------------------------------------------------------------------------
// Figure 5: power is constant; energy is linear in ops.

// Fig5Point is one random model's power/energy measurement.
type Fig5Point struct {
	Mops     float64
	PowerMW  float64
	EnergyMJ float64
}

// Fig5Series is the per-device result with the power-constancy statistic.
type Fig5Series struct {
	Device        string
	Points        []Fig5Point
	PowerSigmaMu  float64 // σ/µ of power across models (paper: 0.00731)
	EnergyR2      float64 // r² of energy vs ops
	EnergySlopeMJ float64 // mJ per Mop
}

// Figure5 measures power and energy for random image-backbone models on
// both MCUs (the paper used 400 models from the CIFAR10 backbone).
func Figure5(nModels int, seed int64) ([]Fig5Series, error) {
	rng := rand.New(rand.NewSource(seed))
	models := make([]*graph.Model, 0, nModels)
	for i := 0; i < nModels; i++ {
		m, err := graph.FromSpec(core.RandomImageModel(rng, i), rng, graph.LowerOptions{})
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	var out []Fig5Series
	for _, dev := range []*mcu.Device{mcu.F446RE, mcu.F746ZG} {
		s := Fig5Series{Device: dev.Name}
		var sum, sumSq float64
		var exy []XY
		for _, m := range models {
			p := mcu.ActivePowerMW(m, dev)
			e := mcu.EnergyPerInferenceMJ(m, dev)
			mops := float64(m.TotalOps()) / 1e6
			s.Points = append(s.Points, Fig5Point{Mops: mops, PowerMW: p, EnergyMJ: e})
			sum += p
			sumSq += p * p
			exy = append(exy, XY{X: mops, Y: e})
		}
		n := float64(len(models))
		mean := sum / n
		variance := sumSq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		s.PowerSigmaMu = math.Sqrt(variance) / mean
		s.EnergySlopeMJ, _, s.EnergyR2 = LinearFit(exy)
		out = append(out, s)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 10 / Table 2: sub-byte kernel overhead.

// Fig10Row is the latency increase of 4-bit variants over 8-bit for one
// model.
type Fig10Row struct {
	Model              string
	Lat8w8a            float64
	Lat4a8wIncreasePct float64
	Lat4a4wIncreasePct float64
}

// Figure10 measures MicroNet-KWS-M and -L with 4-bit activations and
// weights on the medium MCU. Paper: +19.28% (M) and +28.8% (L) for
// 4-bit/4-bit.
func Figure10(seed int64) ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, name := range []string{"MicroNet-KWS-M", "MicroNet-KWS-L"} {
		spec, err := zooSpec(name)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		m8, err := graph.FromSpec(spec, rng, graph.LowerOptions{WeightBits: 8, ActBits: 8})
		if err != nil {
			return nil, err
		}
		m4a, err := graph.FromSpec(spec, rand.New(rand.NewSource(seed)), graph.LowerOptions{WeightBits: 8, ActBits: 4})
		if err != nil {
			return nil, err
		}
		m4a4w, err := graph.FromSpec(spec, rand.New(rand.NewSource(seed)), graph.LowerOptions{WeightBits: 4, ActBits: 4})
		if err != nil {
			return nil, err
		}
		l8 := mcu.Latency(m8, mcu.F746ZG)
		rows = append(rows, Fig10Row{
			Model:              name,
			Lat8w8a:            l8,
			Lat4a8wIncreasePct: (mcu.Latency(m4a, mcu.F746ZG)/l8 - 1) * 100,
			Lat4a4wIncreasePct: (mcu.Latency(m4a4w, mcu.F746ZG)/l8 - 1) * 100,
		})
	}
	return rows, nil
}
