package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"micronets/internal/graph"
	"micronets/internal/mcu"
	"micronets/internal/tflm"
	"micronets/internal/zoo"
)

// ProfileExperiment measures per-op wall time for a zoo model on this
// host (averaged over runs profiled invokes, after one warm-up) and
// joins it against the mcu cost model's per-op cycle predictions — the
// offline twin of GET /v2/models/{name}/profile, and the source of the
// README's predicted-vs-actual table.
func ProfileExperiment(model string, runs int, seed int64) (*mcu.Profile, error) {
	if runs < 1 {
		runs = 1
	}
	e, err := zoo.Get(model)
	if err != nil {
		return nil, err
	}
	if e.Spec == nil {
		return nil, fmt.Errorf("experiments: %s is a stats-only comparison point (no public architecture)", model)
	}
	rng := rand.New(rand.NewSource(seed))
	m, err := graph.FromSpec(e.Spec, rng, graph.LowerOptions{AppendSoftmax: e.Spec.NumClasses > 1})
	if err != nil {
		return nil, err
	}
	ip, err := tflm.NewInterpreter(m, 0)
	if err != nil {
		return nil, err
	}
	in := ip.Input()
	fill := func() {
		for i := range in {
			in[i] = int8(i%251 - 125)
		}
	}
	fill()
	if err := ip.Invoke(); err != nil {
		return nil, err
	}
	sums := make([]float64, len(m.Ops))
	for run := 0; run < runs; run++ {
		fill()
		timings, err := ip.ProfileInvoke()
		if err != nil {
			return nil, err
		}
		for _, t := range timings {
			sums[t.Index] += float64(t.Ns)
		}
	}
	for i := range sums {
		sums[i] /= float64(runs)
	}
	return mcu.JoinProfile(m, sums, runs)
}

// RenderProfileReport formats a Profile as the bench text table:
// one row per op, measured vs predicted shares and the per-op ratio.
func RenderProfileReport(p *mcu.Profile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Per-op measured latency vs cost-model prediction — %s (%d runs)\n", p.Model, p.Runs)
	fmt.Fprintf(&b, "%-4s %-20s %-12s %12s %9s %9s %7s\n",
		"#", "kind", "op", "measured µs", "meas %", "pred %", "ratio")
	for _, o := range p.Ops {
		fmt.Fprintf(&b, "%-4d %-20s %-12s %12.1f %8.1f%% %8.1f%% %7.2f\n",
			o.Index, o.Kind, o.Name, o.MeasuredNs/1e3,
			100*o.MeasuredShare, 100*o.PredictedShare, o.Ratio)
	}
	fmt.Fprintf(&b, "total %.2f ms measured over %.0f predicted cycles (%.3f ns/cycle), linear-fit R² = %.3f\n",
		p.TotalMeasuredNs/1e6, p.TotalPredictedCycles, p.NsPerCycle, p.R2)
	b.WriteString("(ratio = measured share / predicted share; near-1 ratios and high R² are the paper's §3 linearity claim holding on this host)\n")
	return b.String()
}
