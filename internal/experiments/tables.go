package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"micronets/internal/arch"
	"micronets/internal/graph"
	"micronets/internal/mcu"
	"micronets/internal/tflm"
	"micronets/internal/zoo"
)

func zooSpec(name string) (*arch.Spec, error) {
	e, err := zoo.Get(name)
	if err != nil {
		return nil, err
	}
	if e.Spec == nil {
		return nil, fmt.Errorf("experiments: %s has no spec", name)
	}
	return e.Spec, nil
}

// Measured is one model's simulated deployment measurement across devices.
type Measured struct {
	Name     string
	Task     string
	PaperAcc float64 // paper-reported accuracy/AUC (provenance: Table 4)
	MOps     float64
	FlashKB  float64
	SRAMKB   float64
	// Latency/energy per device class; NaN-equivalent 0 when not deployable.
	LatS, LatM, LatL                      float64
	EnergyS, EnergyM                      float64
	DeployableS, DeployableM, DeployableL bool
	Notes                                 string
}

// MeasureZoo deploys every constructible zoo entry of a task and measures
// it on all three MCUs; stats-only entries are passed through with the
// paper's numbers (marked in Notes).
func MeasureZoo(task string, seed int64) ([]Measured, error) {
	var out []Measured
	for _, e := range zoo.ByTask(task) {
		m := Measured{Name: e.Name, Task: e.Task, PaperAcc: e.Paper.Accuracy, Notes: e.Notes}
		if e.Spec == nil {
			m.MOps = e.Paper.MOps
			m.FlashKB = e.Paper.FlashKB
			m.SRAMKB = e.Paper.SRAMKB
			m.LatS, m.LatM, m.LatL = e.Paper.LatS, e.Paper.LatM, e.Paper.LatL
			m.Notes = strings.TrimSpace("paper numbers; " + e.Notes)
			// Deployability from published SRAM/flash.
			m.DeployableS = e.Paper.SRAMKB < 120 && e.Paper.FlashKB < 437
			m.DeployableM = e.Paper.SRAMKB < 312 && e.Paper.FlashKB < 949
			m.DeployableL = e.Paper.SRAMKB < 504 && e.Paper.FlashKB < 1973
			out = append(out, m)
			continue
		}
		rng := rand.New(rand.NewSource(seed))
		gm, err := graph.FromSpec(e.Spec, rng, graph.LowerOptions{AppendSoftmax: e.Spec.NumClasses > 1})
		if err != nil {
			return nil, fmt.Errorf("lowering %s: %w", e.Name, err)
		}
		rep, err := tflm.Report(gm, nil)
		if err != nil {
			return nil, err
		}
		m.MOps = float64(gm.TotalOps()) / 1e6
		m.FlashKB = float64(rep.ModelFlash()) / 1024
		m.SRAMKB = float64(rep.ModelSRAM()) / 1024
		hasTConv := false
		for _, op := range gm.Ops {
			if op.Kind == graph.OpTransposedConv {
				hasTConv = true
			}
		}
		check := func(dev *mcu.Device) bool {
			if hasTConv {
				return false
			}
			return rep.FitsDevice(dev.SRAMBytes(), dev.FlashBytes()) == nil
		}
		m.DeployableS = check(mcu.F446RE)
		m.DeployableM = check(mcu.F746ZG)
		m.DeployableL = check(mcu.F767ZI)
		if m.DeployableS {
			m.LatS = mcu.Latency(gm, mcu.F446RE)
			m.EnergyS = mcu.EnergyPerInferenceMJ(gm, mcu.F446RE)
		}
		if m.DeployableM {
			m.LatM = mcu.Latency(gm, mcu.F746ZG)
			m.EnergyM = mcu.EnergyPerInferenceMJ(gm, mcu.F746ZG)
		}
		if m.DeployableL {
			m.LatL = mcu.Latency(gm, mcu.F767ZI)
		}
		out = append(out, m)
	}
	return out, nil
}

// ParetoFront returns the subset of points not dominated on (cost, value):
// a point is dominated if another has cost <= and value >= with one strict.
// Points with zero cost (not deployable) are excluded.
func ParetoFront(pts []Measured, cost func(Measured) float64) []Measured {
	var valid []Measured
	for _, p := range pts {
		if cost(p) > 0 {
			valid = append(valid, p)
		}
	}
	var front []Measured
	for _, p := range valid {
		dominated := false
		for _, q := range valid {
			if q.Name == p.Name {
				continue
			}
			if cost(q) <= cost(p) && q.PaperAcc >= p.PaperAcc &&
				(cost(q) < cost(p) || q.PaperAcc > p.PaperAcc) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool { return cost(front[i]) < cost(front[j]) })
	return front
}

// OnFront reports whether name is on the Pareto front.
func OnFront(front []Measured, name string) bool {
	for _, p := range front {
		if p.Name == name {
			return true
		}
	}
	return false
}

// Table1 renders the hardware comparison.
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: TinyML hardware targeted in this work\n")
	fmt.Fprintf(&b, "%-14s %-11s %8s %9s %9s %8s\n", "Platform", "Arch", "SRAM", "eFlash", "Power", "Price")
	for _, d := range mcu.Devices() {
		fmt.Fprintf(&b, "%-14s %-11s %7dK %8dK %7.1fW $%.0f\n",
			d.Name, d.CPU, d.SRAMKB, d.FlashKB, d.ActiveMW/1000*2.2, d.PriceUSD)
	}
	return b.String()
}

// Figure2 renders the memory map for a KWS model on the medium MCU.
func Figure2(modelName string, seed int64) (string, error) {
	spec, err := zooSpec(modelName)
	if err != nil {
		return "", err
	}
	m, err := graph.FromSpec(spec, rand.New(rand.NewSource(seed)), graph.LowerOptions{AppendSoftmax: true})
	if err != nil {
		return "", err
	}
	rep, err := tflm.Report(m, nil)
	if err != nil {
		return "", err
	}
	dev := mcu.F746ZG
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: memory occupancy of %s on %s\n", modelName, dev.Name)
	b.WriteString(rep.String())
	fmt.Fprintf(&b, "  Free SRAM : %.1f KB of %d KB\n",
		float64(dev.SRAMBytes()-rep.TotalSRAM())/1024, dev.SRAMKB)
	fmt.Fprintf(&b, "  Free flash: %.1f KB of %d KB\n",
		float64(dev.FlashBytes()-rep.TotalFlash())/1024, dev.FlashKB)
	return b.String(), nil
}

// RenderPareto renders a Figure 7/8-style comparison for one task: each
// model's accuracy (paper-reported), simulated latency, SRAM and flash,
// deployability, and whether it is Pareto-optimal on each axis.
func RenderPareto(task string, seed int64) (string, error) {
	ms, err := MeasureZoo(task, seed)
	if err != nil {
		return "", err
	}
	latFront := ParetoFront(ms, func(m Measured) float64 { return m.LatM })
	sramFront := ParetoFront(ms, func(m Measured) float64 { return m.SRAMKB })
	flashFront := ParetoFront(ms, func(m Measured) float64 { return m.FlashKB })
	var b strings.Builder
	title := map[string]string{"kws": "Figure 7: KWS", "vww": "Figure 8: VWW", "ad": "Table 3 support: AD"}[task]
	fmt.Fprintf(&b, "%s accuracy/latency/memory comparison (accuracy: paper-reported; latency/memory: simulated)\n", title)
	fmt.Fprintf(&b, "%-22s %7s %9s %9s %9s %6s %6s %6s  %s\n",
		"model", "acc%", "latM(s)", "SRAM(KB)", "Flash(KB)", "fitS", "fitM", "fitL", "pareto")
	for _, m := range ms {
		var tags []string
		if OnFront(latFront, m.Name) {
			tags = append(tags, "lat")
		}
		if OnFront(sramFront, m.Name) {
			tags = append(tags, "sram")
		}
		if OnFront(flashFront, m.Name) {
			tags = append(tags, "flash")
		}
		fmt.Fprintf(&b, "%-22s %7.2f %9.3f %9.1f %9.1f %6v %6v %6v  %s\n",
			m.Name, m.PaperAcc, m.LatM, m.SRAMKB, m.FlashKB,
			m.DeployableS, m.DeployableM, m.DeployableL, strings.Join(tags, ","))
	}
	return b.String(), nil
}

// Figure11 renders the MCUNet comparison on KWS.
func Figure11(seed int64) (string, error) {
	ms, err := MeasureZoo("kws", seed)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: KWS on STM32F746 — MicroNets vs MCUNet (MCUNet points estimated from Lin et al. figures, as in the paper)\n")
	fmt.Fprintf(&b, "%-22s %7s %10s %10s\n", "model", "acc%", "lat(ms)", "SRAM(KB)")
	for _, m := range ms {
		if !strings.HasPrefix(m.Name, "MicroNet-KWS") && !strings.HasPrefix(m.Name, "DSCNN") {
			continue
		}
		fmt.Fprintf(&b, "%-22s %7.2f %10.0f %10.1f\n", m.Name, m.PaperAcc, m.LatM*1000, m.SRAMKB)
	}
	for _, p := range zoo.MCUNetKWS() {
		fmt.Fprintf(&b, "%-22s %7.2f %10.0f %10.1f\n", p.Name, p.Accuracy, p.LatencyMS, p.SRAMKB)
	}
	return b.String(), nil
}

// Table2 renders the 4-bit KWS study.
func Table2(seed int64) (string, error) {
	type variant struct {
		name         string
		spec         string
		wBits, aBits int
	}
	variants := []variant{
		{"MN-KWS-L (8-b W/8-b A)", "MicroNet-KWS-L", 8, 8},
		{"MN-KWS-M (8-b W/8-b A)", "MicroNet-KWS-M", 8, 8},
		{"MN-KWS-L (4-b W/4-b A)", "MicroNet-KWS-L", 4, 4},
	}
	paperAcc := map[string]float64{
		"MN-KWS-L (8-b W/8-b A)": 96.5,
		"MN-KWS-M (8-b W/8-b A)": 95.8,
		"MN-KWS-L (4-b W/4-b A)": 96.3,
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: KWS results for 4-bit quantized MicroNet models (accuracy: paper; rest: simulated)\n")
	fmt.Fprintf(&b, "%-26s %8s %10s %12s %10s\n", "model", "acc%", "latM(s)", "size(KB)", "SRAM(KB)")
	for _, v := range variants {
		spec, err := zooSpec(v.spec)
		if err != nil {
			return "", err
		}
		m, err := graph.FromSpec(spec, rand.New(rand.NewSource(seed)), graph.LowerOptions{
			WeightBits: v.wBits, ActBits: v.aBits, AppendSoftmax: true,
		})
		if err != nil {
			return "", err
		}
		rep, err := tflm.Report(m, nil)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-26s %8.1f %10.3f %12.1f %10.1f\n",
			v.name, paperAcc[v.name], mcu.Latency(m, mcu.F746ZG),
			float64(rep.ModelFlash())/1024, float64(rep.ModelSRAM())/1024)
	}
	return b.String(), nil
}

// Table3 renders the anomaly-detection comparison with the uptime metric
// (latency / stride between successive inputs).
func Table3(seed int64) (string, error) {
	ms, err := MeasureZoo("ad", seed)
	if err != nil {
		return "", err
	}
	// Stride per model family (§6.4): our models 640 ms; FC-AE 32 ms;
	// MBNetV2-0.5AD 256 ms.
	stride := func(name string) float64 {
		switch {
		case strings.HasPrefix(name, "FC-AE"):
			return 0.032
		case name == "MBNETV2-0.5AD":
			return 0.256
		default:
			return 0.640
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: AD results (AUC: paper-reported; rest: simulated)\n")
	fmt.Fprintf(&b, "%-22s %8s %9s %10s %9s %10s %8s\n",
		"model", "AUC%", "Ops(M)", "Size(KB)", "Mem(KB)", "Uptime(%)", "target")
	for _, m := range ms {
		lat, target := 0.0, "ND"
		switch {
		case m.DeployableS:
			lat, target = m.LatS, "S"
		case m.DeployableM:
			lat, target = m.LatM, "M"
		case m.DeployableL:
			lat, target = m.LatL, "L"
		}
		up := "ND"
		if target != "ND" {
			up = fmt.Sprintf("%.1f", lat/stride(m.Name)*100)
		}
		fmt.Fprintf(&b, "%-22s %8.2f %9.1f %10.1f %9.1f %10s %8s\n",
			m.Name, m.PaperAcc, m.MOps, m.FlashKB, m.SRAMKB, up, target)
	}
	return b.String(), nil
}

// Table4 renders the full results table across tasks.
func Table4(seed int64) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: full results (accuracy: paper; all system metrics: simulated)\n")
	fmt.Fprintf(&b, "%-22s %-5s %7s %9s %9s %8s %8s %8s %8s %9s %9s\n",
		"model", "task", "acc%", "flashKB", "sramKB", "Mops", "latS", "latM", "latL", "engS(mJ)", "engM(mJ)")
	for _, task := range []string{"kws", "vww", "ad"} {
		ms, err := MeasureZoo(task, seed)
		if err != nil {
			return "", err
		}
		for _, m := range ms {
			f := func(v float64) string {
				if v == 0 {
					return "-"
				}
				return fmt.Sprintf("%.3f", v)
			}
			fe := func(v float64) string {
				if v == 0 {
					return "-"
				}
				return fmt.Sprintf("%.1f", v)
			}
			fmt.Fprintf(&b, "%-22s %-5s %7.2f %9.1f %9.1f %8.1f %8s %8s %8s %9s %9s\n",
				m.Name, m.Task, m.PaperAcc, m.FlashKB, m.SRAMKB, m.MOps,
				f(m.LatS), f(m.LatM), f(m.LatL), fe(m.EnergyS), fe(m.EnergyM))
		}
	}
	return b.String(), nil
}

// Table5 renders the model architecture listings.
func Table5() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5 / Figure 6: MicroNet model architectures\n")
	for _, name := range []string{
		"MicroNet-KWS-L", "MicroNet-KWS-M", "MicroNet-KWS-S",
		"MicroNet-AD-L", "MicroNet-AD-M", "MicroNet-AD-S",
		"MicroNet-VWW-1", "MicroNet-VWW-2", "MicroNet-VWW-3", "MicroNet-VWW-4",
	} {
		spec, err := zooSpec(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "  %s\n", spec)
	}
	return b.String()
}

// Figure9 renders the duty-cycled power traces: a small and a medium KWS
// model on both MCUs at one inference per second.
func Figure9(seed int64) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: current draw at 1 inference/second (average includes deep sleep)\n")
	fmt.Fprintf(&b, "%-18s %-14s %10s %12s %12s %12s\n",
		"model", "device", "lat(s)", "active(mA)", "avg(mA)", "avgPwr(mW)")
	for _, name := range []string{"MicroNet-KWS-S", "MicroNet-KWS-M"} {
		spec, err := zooSpec(name)
		if err != nil {
			return "", err
		}
		for _, dev := range []*mcu.Device{mcu.F446RE, mcu.F746ZG} {
			m, err := graph.FromSpec(spec, rand.New(rand.NewSource(seed)), graph.LowerOptions{AppendSoftmax: true})
			if err != nil {
				return "", err
			}
			rep, err := tflm.Report(m, nil)
			if err != nil {
				return "", err
			}
			if rep.FitsDevice(dev.SRAMBytes(), dev.FlashBytes()) != nil {
				continue
			}
			trace := mcu.CurrentTrace(m, dev, 1.0, 0.001, 2.0, rand.New(rand.NewSource(seed)))
			avg := mcu.AverageCurrentMA(trace)
			fmt.Fprintf(&b, "%-18s %-14s %10.3f %12.1f %12.1f %12.1f\n",
				name, dev.Name, mcu.Latency(m, dev),
				mcu.ActivePowerMW(m, dev)/dev.SupplyVoltage, avg, avg*dev.SupplyVoltage)
		}
	}
	return b.String(), nil
}
