package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"micronets/internal/graph"
	"micronets/internal/kernels"
	"micronets/internal/tflm"
	"micronets/internal/zoo"
)

// EngineRow is one model's host-side kernel-engine comparison: wall time
// per inference on the naive Reference kernels, the scalar parallel
// im2col+GEMM engine, and the 16-wide unrolled microkernel variant — all
// bit-exact by construction (the parity tests enforce it; this experiment
// re-checks the full output as a smoke signal).
type EngineRow struct {
	Model      string
	MACs       int64
	ReferenceS float64
	GemmS      float64
	WideS      float64
	// Speedup is gemm vs reference; WideSpeedup is wide vs reference.
	Speedup     float64
	WideSpeedup float64
	AgreeOut    bool
}

// engineTime returns the best-of-runs single-inference wall time for one
// engine, plus the final output bytes, using InvokeBatch so plan setup is
// paid once for the whole measurement batch.
func engineTime(m *graph.Model, eng kernels.Engine, batch [][]int8, runs int) (float64, []int8, error) {
	ip, err := tflm.NewInterpreterWithEngine(m, 0, eng)
	if err != nil {
		return 0, nil, err
	}
	var outs [][]int8
	best := 0.0
	for r := 0; r < runs; r++ {
		start := time.Now()
		outs, err = ip.InvokeBatch(batch)
		if err != nil {
			return 0, nil, err
		}
		if d := time.Since(start).Seconds() / float64(len(batch)); r == 0 || d < best {
			best = d
		}
	}
	return best, outs[len(outs)-1], nil
}

// EngineComparison measures Reference vs Gemm inference time for the
// named zoo models on this host. batch inputs per run amortize setup;
// the reported time is the best of 3 runs per engine.
func EngineComparison(names []string, seed int64) ([]EngineRow, error) {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]EngineRow, 0, len(names))
	for _, name := range names {
		e, err := zoo.Get(name)
		if err != nil {
			return nil, err
		}
		m, err := graph.FromSpec(e.Spec, rng, graph.LowerOptions{AppendSoftmax: true})
		if err != nil {
			return nil, err
		}
		inElems := m.Tensors[m.Input].Elems()
		const batchN = 4
		batch := make([][]int8, batchN)
		for b := range batch {
			batch[b] = make([]int8, inElems)
			for i := range batch[b] {
				batch[b][i] = int8(rng.Intn(256) - 128)
			}
		}
		refS, refOut, err := engineTime(m, kernels.Reference, batch, 3)
		if err != nil {
			return nil, err
		}
		gemmS, gemmOut, err := engineTime(m, kernels.Gemm, batch, 3)
		if err != nil {
			return nil, err
		}
		wideS, wideOut, err := engineTime(m, kernels.Wide, batch, 3)
		if err != nil {
			return nil, err
		}
		agree := len(refOut) == len(gemmOut) && len(refOut) == len(wideOut)
		if agree {
			for i := range refOut {
				if refOut[i] != gemmOut[i] || refOut[i] != wideOut[i] {
					agree = false
					break
				}
			}
		}
		rows = append(rows, EngineRow{
			Model:       name,
			MACs:        m.TotalMACs(),
			ReferenceS:  refS,
			GemmS:       gemmS,
			WideS:       wideS,
			Speedup:     refS / gemmS,
			WideSpeedup: refS / wideS,
			AgreeOut:    agree,
		})
	}
	return rows, nil
}

// EngineModels is the default model set for the engine comparison —
// shared by the text report and cmd/bench's BENCH_engine.json so both
// always describe the same measurement.
var EngineModels = []string{
	"MicroNet-KWS-S", "MicroNet-KWS-M", "MicroNet-VWW-1", "MicroNet-VWW-2",
}

// RenderEngineComparison measures EngineModels and formats the result.
func RenderEngineComparison(seed int64) (string, error) {
	rows, err := EngineComparison(EngineModels, seed)
	if err != nil {
		return "", err
	}
	return RenderEngineRows(rows), nil
}

// RenderEngineRows formats already-measured engine rows as a text table,
// letting callers render and serialize one timing run instead of paying
// (and potentially disagreeing across) two.
func RenderEngineRows(rows []EngineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Host inference engines: naive direct conv vs parallel im2col+GEMM (scalar and 16-wide microkernel)\n")
	fmt.Fprintf(&b, "%-18s %10s %12s %12s %12s %9s %9s %7s\n",
		"model", "MMACs", "naive (ms)", "gemm (ms)", "wide (ms)", "gemm-up", "wide-up", "exact")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %10.1f %12.2f %12.2f %12.2f %8.2fx %8.2fx %7v\n",
			r.Model, float64(r.MACs)/1e6, r.ReferenceS*1e3, r.GemmS*1e3, r.WideS*1e3,
			r.Speedup, r.WideSpeedup, r.AgreeOut)
	}
	b.WriteString("(all engines produce bit-identical int8 outputs; see kernels parity tests)\n")
	return b.String()
}
