package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, ns := range []int64{0, 1, 512, 1024, 1500, 4096, 1e6, 1e7, 5e8, 1e9, 8e9, 1 << 40} {
		idx := bucketIndex(ns)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", ns, idx)
		}
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", ns, idx, prev)
		}
		prev = idx
		if idx < numBuckets-1 && ns >= bucketUpperNs(idx) {
			t.Fatalf("ns %d >= upper bound %d of its own bucket %d", ns, bucketUpperNs(idx), idx)
		}
	}
}

func TestBucketBoundsIncreasing(t *testing.T) {
	for i := 1; i < numBuckets; i++ {
		if bucketUpperNs(i) <= bucketUpperNs(i-1) {
			t.Fatalf("bucket bounds not increasing at %d: %d <= %d", i, bucketUpperNs(i), bucketUpperNs(i-1))
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	// Log-bucketed: quantiles are approximate; sub-buckets bound the
	// relative error at ~25%.
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.5, 500 * time.Millisecond}, {0.95, 950 * time.Millisecond}, {0.99, 990 * time.Millisecond}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		lo := time.Duration(float64(c.want) * 0.7)
		hi := time.Duration(float64(c.want) * 1.3)
		if got < lo || got > hi {
			t.Errorf("Quantile(%v) = %v, want within [%v, %v]", c.q, got, lo, hi)
		}
	}
	wantMean := 500500 * time.Microsecond
	if m := s.Mean(); m < wantMean-time.Millisecond || m > wantMean+time.Millisecond {
		t.Errorf("Mean = %v, want ~%v", m, wantMean)
	}
}

func TestHistogramEmptyAndExtremes(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatalf("empty histogram should report zeros, got q99=%v mean=%v", s.Quantile(0.99), s.Mean())
	}
	h.Observe(-time.Second)          // clamps to 0
	h.Observe(0)                     // below min
	h.Observe(100 * time.Hour)       // overflow bucket
	h.Observe(500 * time.Nanosecond) // below min
	s = h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.Buckets[0] != 3 || s.Buckets[numBuckets-1] != 1 {
		t.Fatalf("extreme observations misplaced: first=%d overflow=%d", s.Buckets[0], s.Buckets[numBuckets-1])
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}

func TestSnapshotMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	a.Observe(2 * time.Millisecond)
	b.Observe(time.Second)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 {
		t.Fatalf("merged count = %d, want 3", sa.Count)
	}
	if want := (3*time.Millisecond + time.Second).Nanoseconds(); sa.SumNs != want {
		t.Fatalf("merged sum = %d, want %d", sa.SumNs, want)
	}
}

func TestWritePrometheusCumulative(t *testing.T) {
	var h Histogram
	h.Observe(2 * time.Millisecond)
	h.Observe(50 * time.Millisecond)
	h.Observe(2 * time.Second)
	var sb strings.Builder
	WriteHistogramHead(&sb, "x_seconds", "test family.")
	h.Snapshot().WritePrometheus(&sb, "x_seconds", `model="m"`)
	out := sb.String()

	if !strings.Contains(out, "# HELP x_seconds test family.") || !strings.Contains(out, "# TYPE x_seconds histogram") {
		t.Fatalf("missing HELP/TYPE header:\n%s", out)
	}
	if !strings.Contains(out, `x_seconds_bucket{model="m",le="+Inf"} 3`) {
		t.Fatalf("missing +Inf bucket with total count:\n%s", out)
	}
	if !strings.Contains(out, `x_seconds_count{model="m"} 3`) {
		t.Fatalf("missing _count:\n%s", out)
	}
	// Bucket counts must be cumulative (non-decreasing top to bottom).
	last := int64(-1)
	n := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "x_seconds_bucket") {
			continue
		}
		n++
		var v int64
		if _, err := fmtSscanLast(line, &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative at %q (prev %d)", line, last)
		}
		last = v
	}
	if n < 10 {
		t.Fatalf("too few bucket lines: %d", n)
	}
	if last != 3 {
		t.Fatalf("final cumulative bucket = %d, want 3", last)
	}
}

// fmtSscanLast parses the final whitespace-separated token of a sample
// line as an integer.
func fmtSscanLast(line string, v *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var err error
	*v, err = parseInt(line[i+1:])
	if err != nil {
		return 0, err
	}
	return 1, nil
}

func parseInt(s string) (int64, error) {
	var v int64
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, errBadInt
		}
		v = v*10 + int64(r-'0')
	}
	return v, nil
}

var errBadInt = &parseErr{}

type parseErr struct{}

func (*parseErr) Error() string { return "bad int" }

func TestTraceSpans(t *testing.T) {
	tr := NewTrace()
	if len(tr.ID()) != 16 {
		t.Fatalf("trace ID %q, want 16 hex chars", tr.ID())
	}
	root := tr.Start("request", nil)
	child := tr.Start("invoke", root)
	child.SetAttr("model", "m")
	child.End()
	tr.Add("queue", root, time.Now().Add(-time.Millisecond), time.Millisecond, map[string]string{"batch": "4"})
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
		if s.TraceID != tr.ID() {
			t.Errorf("span %q trace ID %q != %q", s.Name, s.TraceID, tr.ID())
		}
	}
	if byName["request"].Parent != 0 {
		t.Errorf("root span has parent %d", byName["request"].Parent)
	}
	if byName["invoke"].Parent != byName["request"].ID {
		t.Errorf("invoke parent = %d, want %d", byName["invoke"].Parent, byName["request"].ID)
	}
	if byName["queue"].Parent != byName["request"].ID {
		t.Errorf("queue parent = %d, want %d", byName["queue"].Parent, byName["request"].ID)
	}
	if byName["invoke"].Attrs["model"] != "m" {
		t.Errorf("invoke attrs = %v", byName["invoke"].Attrs)
	}
	if byName["queue"].DurNs != time.Millisecond.Nanoseconds() {
		t.Errorf("queue dur = %d", byName["queue"].DurNs)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	h := tr.Start("x", nil)
	h.SetAttr("k", "v")
	h.End()
	tr.Add("y", nil, time.Now(), 0, nil)
	if tr.ID() != "" || tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatal("nil trace should be inert")
	}
	var nh *SpanHandle
	nh.SetAttr("k", "v")
	nh.End()
	if nh.ID() != 0 {
		t.Fatal("nil span handle should be inert")
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < maxSpans+10; i++ {
		tr.Start("s", nil).End()
	}
	if n := len(tr.Spans()); n != maxSpans {
		t.Fatalf("stored %d spans, want cap %d", n, maxSpans)
	}
	if d := tr.Dropped(); d != 10 {
		t.Fatalf("dropped = %d, want 10", d)
	}
}

func TestTraceDoubleEnd(t *testing.T) {
	tr := NewTrace()
	h := tr.Start("x", nil)
	h.End()
	h.End()
	if n := len(tr.Spans()); n != 1 {
		t.Fatalf("double End recorded %d spans", n)
	}
}

func TestContextHelpers(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != nil || SpanFrom(ctx) != nil || TraceIDFrom(ctx) != "" {
		t.Fatal("empty context should yield nils")
	}
	ctx = ContextWithTraceID(ctx, "abc")
	if TraceIDFrom(ctx) != "abc" {
		t.Fatalf("TraceIDFrom = %q", TraceIDFrom(ctx))
	}
	tr := NewTrace()
	ctx = ContextWithTrace(ctx, tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom lost the trace")
	}
	if TraceIDFrom(ctx) != tr.ID() {
		t.Fatalf("TraceIDFrom = %q, want trace's own ID %q", TraceIDFrom(ctx), tr.ID())
	}
	h := tr.Start("x", nil)
	ctx = ContextWithSpan(ctx, h)
	if SpanFrom(ctx) != h {
		t.Fatal("SpanFrom lost the span")
	}
}

func TestQuantileInterpolationWithinBucket(t *testing.T) {
	// All mass in one bucket: quantiles must stay inside that bucket's
	// bounds and increase with q.
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Millisecond)
	}
	s := h.Snapshot()
	idx := bucketIndex((10 * time.Millisecond).Nanoseconds())
	lower := bucketUpperNs(idx - 1)
	upper := bucketUpperNs(idx)
	q1, q2 := s.Quantile(0.1), s.Quantile(0.9)
	if q1.Nanoseconds() < lower || q2.Nanoseconds() > upper {
		t.Fatalf("quantiles [%v, %v] escaped bucket [%d, %d]", q1, q2, lower, upper)
	}
	if q2 < q1 {
		t.Fatalf("quantiles not monotone: q90 %v < q10 %v", q2, q1)
	}
	if math.Abs(float64(s.Quantile(1.0).Nanoseconds())-float64(upper)) > 1 {
		t.Fatalf("q100 = %v, want bucket upper %d", s.Quantile(1.0), upper)
	}
}
