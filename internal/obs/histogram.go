package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-bucketed with log-linear sub-buckets (the
// HDR-histogram layout): each power-of-two octave of nanoseconds splits
// into 4 linear sub-buckets, giving ~19% worst-case relative error on
// quantiles at a fixed 93-counter footprint. The tracked range is
// 2^histMinPow ns (~1µs) to 2^histMaxPow ns (~8.6s); faster observations
// land in the first bucket, slower ones in the overflow bucket.
const (
	histMinPow = 10
	histMaxPow = 33
	subBits    = 2
	numSub     = 1 << subBits
	numBuckets = (histMaxPow-histMinPow)*numSub + 1 // + overflow
)

// Histogram is a lock-free latency histogram. The zero value is ready to
// use; it must not be copied after first use (hold it by pointer or
// embed it in a heap-allocated struct).
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	sumNs   atomic.Int64
	count   atomic.Uint64
}

// bucketIndex maps a nanosecond duration to its bucket.
func bucketIndex(ns int64) int {
	if ns < 1<<histMinPow {
		return 0
	}
	o := bits.Len64(uint64(ns)) - 1 // floor(log2 ns)
	if o >= histMaxPow {
		return numBuckets - 1
	}
	sub := int(ns>>(uint(o)-subBits)) & (numSub - 1)
	return (o-histMinPow)*numSub + sub
}

// bucketUpperNs is the exclusive upper bound of a bucket; every value
// the bucket holds is strictly below it, so rendering it as a
// Prometheus `le` keeps cumulative counts valid.
func bucketUpperNs(idx int) int64 {
	if idx >= numBuckets-1 {
		// Overflow: one octave past the tracked range, so quantiles
		// that land here report a finite (if saturated) value.
		return int64(1) << (histMaxPow + 1)
	}
	o := histMinPow + idx/numSub
	sub := idx % numSub
	return int64(numSub+sub+1) << (uint(o) - subBits)
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.sumNs.Add(ns)
	h.count.Add(1)
}

// Snapshot returns a point-in-time copy. Concurrent Observes may land
// between the bucket reads; the skew is at most the handful of
// in-flight observations, which quantile extraction tolerates.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.SumNs = h.sumNs.Load()
	s.Count = h.count.Load()
	return s
}

// Snapshot is an immutable copy of a Histogram, the unit of merging,
// quantile extraction, and Prometheus rendering.
type Snapshot struct {
	Buckets [numBuckets]uint64
	SumNs   int64
	Count   uint64
}

// Merge adds another snapshot into this one (for aggregating per-shard
// or per-replica histograms).
func (s *Snapshot) Merge(o Snapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.SumNs += o.SumNs
	s.Count += o.Count
}

// Mean returns the mean observed duration (0 when empty).
func (s Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / int64(s.Count))
}

// Quantile returns the q-quantile (q in [0,1]) by linear interpolation
// inside the holding bucket. Empty histograms return 0.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lower := int64(0)
			if i > 0 {
				lower = bucketUpperNs(i - 1)
			}
			upper := bucketUpperNs(i)
			frac := (rank - cum) / float64(c)
			return time.Duration(float64(lower) + frac*float64(upper-lower))
		}
		cum = next
	}
	return time.Duration(bucketUpperNs(numBuckets - 1))
}

// P50, P95 and P99 are the quantiles the reports table.
func (s Snapshot) P50() time.Duration { return s.Quantile(0.50) }
func (s Snapshot) P95() time.Duration { return s.Quantile(0.95) }
func (s Snapshot) P99() time.Duration { return s.Quantile(0.99) }

// WriteHistogramHead emits the HELP/TYPE header of a histogram family.
// Emit it once per family, then one WritePrometheus per labeled series.
func WriteHistogramHead(w io.Writer, family, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", family, help, family)
}

// WritePrometheus emits one series' _bucket/_sum/_count sample lines in
// Prometheus text exposition format. labels is the rendered label set
// without braces (e.g. `model="DSCNN-S"`), empty for an unlabeled
// series. Buckets are rendered cumulatively at octave resolution (every
// power-of-two bound plus +Inf) so a scrape stays compact while
// quantiles keep the full sub-bucket resolution in-process.
func (s Snapshot) WritePrometheus(w io.Writer, family, labels string) {
	prefix := ""
	if labels != "" {
		prefix = labels + ","
	}
	var cum uint64
	idx := 0
	for o := histMinPow + 1; o <= histMaxPow; o++ {
		// Sum every sub-bucket whose upper bound is ≤ 2^o ns.
		bound := int64(1) << uint(o)
		for idx < numBuckets-1 && bucketUpperNs(idx) <= bound {
			cum += s.Buckets[idx]
			idx++
		}
		fmt.Fprintf(w, "%s_bucket{%sle=\"%g\"} %d\n", family, prefix, float64(bound)/1e9, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", family, prefix, s.Count)
	lb := ""
	if labels != "" {
		lb = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %.6f\n", family, lb, float64(s.SumNs)/1e9)
	fmt.Fprintf(w, "%s_count%s %d\n", family, lb, s.Count)
}
