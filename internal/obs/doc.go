// Package obs is the stdlib-only observability substrate of the serving
// stack: lock-free log-bucketed latency histograms (mergeable, rendered
// as Prometheus _bucket/_sum/_count families, with p50/p95/p99
// extraction) and a lightweight span/trace model (trace ID, parent/child
// spans, start/duration, attributes) carried through request contexts.
//
// Histograms are fixed-size arrays of atomic counters — Observe is a
// few instructions and never allocates, so the data path can record
// every request. Traces are opt-in per request (the X-Micronets-Trace
// header) and bounded at maxSpans, so a pathological fan-out cannot
// balloon a response.
package obs
