package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// maxSpans bounds a single trace; spans past the cap are counted in
// Dropped instead of stored, so a pathological graph fan-out cannot
// balloon the span JSON returned to a client.
const maxSpans = 512

// Span is one timed region of a traced request, serialized into the
// X-Micronets-Trace response header / body JSON.
type Span struct {
	TraceID     string            `json:"trace_id"`
	ID          int               `json:"id"`
	Parent      int               `json:"parent"` // 0 = root has no parent
	Name        string            `json:"name"`
	StartUnixNs int64             `json:"start_unix_ns"`
	DurNs       int64             `json:"dur_ns"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// Trace collects the spans of one request. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops), so instrumented
// code paths never need to check whether tracing is enabled.
type Trace struct {
	id      string
	mu      sync.Mutex
	spans   []Span // guarded by Trace.mu
	nextID  int    // guarded by Trace.mu
	dropped int    // guarded by Trace.mu
}

// NewTrace creates a trace with a fresh random ID.
func NewTrace() *Trace { return &Trace{id: NewTraceID()} }

// NewTraceWithID creates a trace with a caller-supplied ID (e.g. one
// already stamped on the request by the logging middleware).
func NewTraceWithID(id string) *Trace { return &Trace{id: id} }

// NewTraceID returns a 16-hex-char random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; a fixed ID
		// keeps requests flowing and is obvious in logs.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ID returns the trace ID ("" for nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start opens a child span under parent (or a root span when parent is
// nil). Returns nil on a nil trace.
func (t *Trace) Start(name string, parent *SpanHandle) *SpanHandle {
	if t == nil {
		return nil
	}
	h := &SpanHandle{t: t, name: name, start: time.Now()}
	if parent != nil {
		h.parent = parent.id
	}
	t.mu.Lock()
	t.nextID++
	h.id = t.nextID
	t.mu.Unlock()
	return h
}

// Add records a span post hoc from an explicit start time and duration
// — for code (like the batcher) that learns timings after the fact.
//
//microvet:hotpath-stop opt-in request tracing; the steady-state serve path runs with a nil trace and never reaches this append
func (t *Trace) Add(name string, parent *SpanHandle, start time.Time, dur time.Duration, attrs map[string]string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	if len(t.spans) >= maxSpans {
		t.dropped++
		return
	}
	pid := 0
	if parent != nil {
		pid = parent.id
	}
	t.spans = append(t.spans, Span{
		TraceID:     t.id,
		ID:          t.nextID,
		Parent:      pid,
		Name:        name,
		StartUnixNs: start.UnixNano(),
		DurNs:       dur.Nanoseconds(),
		Attrs:       attrs,
	})
}

// Spans returns the finished spans recorded so far, oldest first.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Dropped reports how many spans were discarded at the maxSpans cap.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanHandle is an open span. End finishes it; SetAttr annotates it.
// All methods are nil-safe.
type SpanHandle struct {
	t      *Trace
	id     int
	parent int
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]string // guarded by SpanHandle.mu
	done  bool              // guarded by SpanHandle.mu
}

// ID returns the span's ID within its trace (0 for nil).
func (h *SpanHandle) ID() int {
	if h == nil {
		return 0
	}
	return h.id
}

// SetAttr attaches a key/value annotation. Calls after End are ignored.
func (h *SpanHandle) SetAttr(k, v string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done {
		return
	}
	if h.attrs == nil {
		h.attrs = make(map[string]string, 4)
	}
	h.attrs[k] = v
}

// End finishes the span and records it into the trace. Repeated Ends
// are ignored.
func (h *SpanHandle) End() {
	if h == nil {
		return
	}
	dur := time.Since(h.start)
	h.mu.Lock()
	if h.done {
		h.mu.Unlock()
		return
	}
	h.done = true
	attrs := h.attrs
	h.mu.Unlock()

	t := h.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		return
	}
	t.spans = append(t.spans, Span{
		TraceID:     t.id,
		ID:          h.id,
		Parent:      h.parent,
		Name:        h.name,
		StartUnixNs: h.start.UnixNano(),
		DurNs:       dur.Nanoseconds(),
		Attrs:       attrs,
	})
}

type traceKey struct{}
type spanKey struct{}
type traceIDKey struct{}

// ContextWithTrace attaches a trace to the context.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil — and nil flows safely
// into every Trace method.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// ContextWithSpan attaches the current span, so downstream layers can
// parent their children correctly.
func ContextWithSpan(ctx context.Context, h *SpanHandle) context.Context {
	return context.WithValue(ctx, spanKey{}, h)
}

// SpanFrom returns the context's current span, or nil.
func SpanFrom(ctx context.Context) *SpanHandle {
	h, _ := ctx.Value(spanKey{}).(*SpanHandle)
	return h
}

// ContextWithTraceID attaches a bare trace ID — every request gets one
// for log correlation even when full span tracing is off.
func ContextWithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom returns the request's trace ID: the full trace's ID if
// one is attached, else the bare ID, else "".
func TraceIDFrom(ctx context.Context) string {
	if t := TraceFrom(ctx); t != nil {
		return t.ID()
	}
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}
