// Package graph defines the deployable model IR — the reproduction's
// analogue of a .tflite flatbuffer. A Model is a flat list of int8 (or
// int4) quantized ops over statically shaped tensors, produced either
// structurally from an arch.Spec (for hardware characterization) or by
// exporting a trained nn model (folding BatchNorm and quantizing weights).
// The tflm package interprets it; the mcu package costs it.
package graph

import (
	"fmt"
)

// OpKind enumerates the runtime's operator set, mirroring the subset of
// TFLM kernels the paper's models use.
type OpKind int

const (
	// OpConv2D is a standard convolution with fused per-channel
	// requantization and optional fused ReLU clamp.
	OpConv2D OpKind = iota
	// OpDWConv2D is a depthwise convolution (multiplier 1).
	OpDWConv2D
	// OpDense is a fully connected layer.
	OpDense
	// OpAvgPool is average pooling.
	OpAvgPool
	// OpMaxPool is max pooling.
	OpMaxPool
	// OpAdd is an elementwise residual add with input rescaling.
	OpAdd
	// OpSoftmax produces the final class distribution.
	OpSoftmax
	// OpTransposedConv is recognized by the IR but NOT implemented by the
	// runtime, reproducing TFLM's lack of support (§6.4): models containing
	// it fail deployment.
	OpTransposedConv
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpConv2D:
		return "CONV_2D"
	case OpDWConv2D:
		return "DEPTHWISE_CONV_2D"
	case OpDense:
		return "FULLY_CONNECTED"
	case OpAvgPool:
		return "AVERAGE_POOL_2D"
	case OpMaxPool:
		return "MAX_POOL_2D"
	case OpAdd:
		return "ADD"
	case OpSoftmax:
		return "SOFTMAX"
	case OpTransposedConv:
		return "TRANSPOSE_CONV"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Tensor describes one activation tensor (batch dimension is implicitly 1
// at deployment). Quantization is affine: real = scale * (q - zeroPoint).
type Tensor struct {
	ID        int
	Name      string
	H, W, C   int
	Scale     float32
	ZeroPoint int32
	// Bits is 8 for standard models, 4 for the sub-byte activation study.
	// 4-bit activations are stored unpacked (one per byte) but constrained
	// to 16 levels, matching the paper's emulated kernels.
	Bits int
}

// Elems returns the number of elements.
func (t *Tensor) Elems() int { return t.H * t.W * t.C }

// Bytes returns the buffer size in bytes as allocated in the SRAM arena.
// Emulated 4-bit activations are packed two-per-byte in memory.
func (t *Tensor) Bytes() int {
	if t.Bits == 4 {
		return (t.Elems() + 1) / 2
	}
	return t.Elems()
}

// Op is one operator instance.
type Op struct {
	Kind OpKind
	Name string
	// Input and Output are tensor IDs. Add has two inputs.
	Inputs []int
	Output int

	// Convolution / pooling geometry.
	KH, KW, SH, SW                       int
	PadTop, PadLeft, PadBottom, PadRight int

	// Weights are stored per output channel groups; int4 weights are kept
	// packed two-per-byte in flash and unpacked by the kernel.
	Weights    []int8
	WeightBits int
	// WeightScales holds per-output-channel scales (symmetric, zp=0).
	WeightScales []float32
	Bias         []int32

	// Fused activation clamp in output quantized units.
	ClampMin, ClampMax int32
}

// MACs returns multiply-accumulates for the op given its tensors.
func (o *Op) MACs(m *Model) int64 {
	out := m.Tensors[o.Output]
	switch o.Kind {
	case OpConv2D, OpTransposedConv:
		in := m.Tensors[o.Inputs[0]]
		return int64(out.H) * int64(out.W) * int64(out.C) * int64(o.KH) * int64(o.KW) * int64(in.C)
	case OpDWConv2D:
		return int64(out.H) * int64(out.W) * int64(out.C) * int64(o.KH) * int64(o.KW)
	case OpDense:
		in := m.Tensors[o.Inputs[0]]
		return int64(in.Elems()) * int64(out.C)
	default:
		return 0
	}
}

// Ops returns the paper-convention op count (2 per MAC).
func (o *Op) Ops(m *Model) int64 { return 2 * o.MACs(m) }

// WeightBytes returns the flash bytes used by weights (int4 packed).
func (o *Op) WeightBytes() int {
	if o.WeightBits == 4 {
		return (len(o.Weights) + 1) / 2
	}
	return len(o.Weights)
}

// Model is a full deployable network.
type Model struct {
	Name    string
	Tensors []*Tensor
	Ops     []*Op
	Input   int
	Output  int
}

// TotalMACs sums all op MACs.
func (m *Model) TotalMACs() int64 {
	var s int64
	for _, o := range m.Ops {
		s += o.MACs(m)
	}
	return s
}

// TotalOps returns 2*TotalMACs.
func (m *Model) TotalOps() int64 { return 2 * m.TotalMACs() }

// WeightBytes returns total flash bytes of weights (packed).
func (m *Model) WeightBytes() int {
	s := 0
	for _, o := range m.Ops {
		s += o.WeightBytes()
	}
	return s
}

// BiasBytes returns total flash bytes of int32 biases.
func (m *Model) BiasBytes() int {
	s := 0
	for _, o := range m.Ops {
		s += 4 * len(o.Bias)
	}
	return s
}

// QuantParamBytes returns the flash bytes used by quantization metadata:
// TFLite stores per-channel scales (float32) and zero points (int64) as
// parallel flatbuffer vectors with framing, ~16 bytes per channel, plus
// per-tensor records. (The paper's Figure 2 shows this region plus the
// graph at 112 KB for a 500 KB KWS model.)
func (m *Model) QuantParamBytes() int {
	s := 0
	for _, o := range m.Ops {
		s += 16 * len(o.WeightScales)
	}
	s += 32 * len(m.Tensors)
	return s
}

// GraphDefBytes estimates the flash bytes of the graph definition itself
// (op records, tensor records, shape metadata) — the serializer's framing.
func (m *Model) GraphDefBytes() int {
	return 64 + 48*len(m.Ops) + 32*len(m.Tensors)
}

// FlashBytes returns the model's total flash footprint, the analogue of
// the .tflite file size reported as "Flash" in Table 4.
func (m *Model) FlashBytes() int {
	return m.WeightBytes() + m.BiasBytes() + m.QuantParamBytes() + m.GraphDefBytes()
}

// Validate checks structural invariants: tensor IDs in range, shapes
// consistent with op geometry, weight lengths correct.
func (m *Model) Validate() error {
	if len(m.Ops) == 0 {
		return fmt.Errorf("graph: %s: empty model", m.Name)
	}
	for i, t := range m.Tensors {
		if t.ID != i {
			return fmt.Errorf("graph: %s: tensor %d has ID %d", m.Name, i, t.ID)
		}
		if t.H <= 0 || t.W <= 0 || t.C <= 0 {
			return fmt.Errorf("graph: %s: tensor %q bad shape %dx%dx%d", m.Name, t.Name, t.H, t.W, t.C)
		}
		if t.Bits != 8 && t.Bits != 4 {
			return fmt.Errorf("graph: %s: tensor %q bad bits %d", m.Name, t.Name, t.Bits)
		}
	}
	for _, o := range m.Ops {
		for _, in := range o.Inputs {
			if in < 0 || in >= len(m.Tensors) {
				return fmt.Errorf("graph: %s: op %q input %d out of range", m.Name, o.Name, in)
			}
		}
		if o.Output < 0 || o.Output >= len(m.Tensors) {
			return fmt.Errorf("graph: %s: op %q output %d out of range", m.Name, o.Name, o.Output)
		}
		out := m.Tensors[o.Output]
		switch o.Kind {
		case OpConv2D:
			in := m.Tensors[o.Inputs[0]]
			want := o.KH * o.KW * in.C * out.C
			if len(o.Weights) != want {
				return fmt.Errorf("graph: %s: op %q has %d weights, want %d", m.Name, o.Name, len(o.Weights), want)
			}
			if len(o.WeightScales) != out.C || len(o.Bias) != out.C {
				return fmt.Errorf("graph: %s: op %q per-channel params mismatch", m.Name, o.Name)
			}
		case OpDWConv2D:
			if len(o.Weights) != o.KH*o.KW*out.C {
				return fmt.Errorf("graph: %s: op %q has %d dw weights, want %d", m.Name, o.Name, len(o.Weights), o.KH*o.KW*out.C)
			}
		case OpDense:
			in := m.Tensors[o.Inputs[0]]
			if len(o.Weights) != in.Elems()*out.C {
				return fmt.Errorf("graph: %s: op %q has %d fc weights, want %d", m.Name, o.Name, len(o.Weights), in.Elems()*out.C)
			}
		case OpAdd:
			if len(o.Inputs) != 2 {
				return fmt.Errorf("graph: %s: op %q add needs 2 inputs", m.Name, o.Name)
			}
		}
	}
	return nil
}
