package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"micronets/internal/arch"
)

func kwsSmallSpec() *arch.Spec {
	return &arch.Spec{
		Name: "test-kws", Task: "kws", Source: "repro",
		InputH: 49, InputW: 10, InputC: 1, NumClasses: 12,
		Blocks: []arch.Block{
			{Kind: arch.Conv, KH: 10, KW: 4, OutC: 16, Stride: 1},
			{Kind: arch.DSBlock, KH: 3, KW: 3, OutC: 24, Stride: 2},
			{Kind: arch.AvgPool, KH: 25, KW: 5, Stride: 1},
			{Kind: arch.Dense, OutC: 12},
		},
	}
}

func TestFromSpecShapesAndOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := FromSpec(kwsSmallSpec(), rng, LowerOptions{AppendSoftmax: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// conv -> dw -> pw -> pool -> fc -> softmax
	if len(m.Ops) != 6 {
		t.Fatalf("got %d ops", len(m.Ops))
	}
	a, err := kwsSmallSpec().Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalMACs() != a.TotalMACs {
		t.Fatalf("graph MACs %d != arch analyzer MACs %d", m.TotalMACs(), a.TotalMACs)
	}
	out := m.Tensors[m.Output]
	if out.Elems() != 12 {
		t.Fatalf("output elems %d, want 12", out.Elems())
	}
}

func TestFromSpecIBNResidual(t *testing.T) {
	spec := &arch.Spec{
		Name: "test-ibn", Task: "vww",
		InputH: 16, InputW: 16, InputC: 1, NumClasses: 2,
		Blocks: []arch.Block{
			{Kind: arch.Conv, KH: 3, KW: 3, OutC: 8, Stride: 2},
			{Kind: arch.IBN, KH: 3, KW: 3, Expand: 16, OutC: 8, Stride: 1},  // residual
			{Kind: arch.IBN, KH: 3, KW: 3, Expand: 16, OutC: 12, Stride: 2}, // no residual
			{Kind: arch.GlobalPool},
			{Kind: arch.Dense, OutC: 2},
		},
	}
	m, err := FromSpec(spec, rand.New(rand.NewSource(2)), LowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	adds := 0
	for _, op := range m.Ops {
		if op.Kind == OpAdd {
			adds++
		}
	}
	if adds != 1 {
		t.Fatalf("expected exactly 1 residual add, got %d", adds)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := FromSpec(kwsSmallSpec(), rng, LowerOptions{AppendSoftmax: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Name != m.Name || len(m2.Ops) != len(m.Ops) || len(m2.Tensors) != len(m.Tensors) {
		t.Fatal("round trip lost structure")
	}
	for i, op := range m.Ops {
		op2 := m2.Ops[i]
		if op.Kind != op2.Kind || len(op.Weights) != len(op2.Weights) {
			t.Fatalf("op %d mismatch", i)
		}
		for j := range op.Weights {
			if op.Weights[j] != op2.Weights[j] {
				t.Fatalf("op %d weight %d mismatch", i, j)
			}
		}
		if op.ClampMin != op2.ClampMin || op.ClampMax != op2.ClampMax {
			t.Fatalf("op %d clamps mismatch", i)
		}
	}
	for i, ts := range m.Tensors {
		ts2 := m2.Tensors[i]
		if ts.Scale != ts2.Scale || ts.ZeroPoint != ts2.ZeroPoint || ts.Bits != ts2.Bits {
			t.Fatalf("tensor %d quant mismatch", i)
		}
	}
}

func TestSerializeRoundTripInt4(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, err := FromSpec(kwsSmallSpec(), rng, LowerOptions{WeightBits: 4, ActBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Int4 weights in [-8,7]: clamp the synthetic ones.
	for _, op := range m.Ops {
		for i, w := range op.Weights {
			if w < -8 {
				op.Weights[i] = -8
			}
			if w > 7 {
				op.Weights[i] = 7
			}
		}
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	size8 := SerializedSize(m)
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range m.Ops {
		for j := range op.Weights {
			if op.Weights[j] != m2.Ops[i].Weights[j] {
				t.Fatalf("int4 weight mismatch op %d idx %d: %d vs %d", i, j, op.Weights[j], m2.Ops[i].Weights[j])
			}
		}
	}
	// Packed int4 serialization must be smaller than the int8 variant.
	m8, _ := FromSpec(kwsSmallSpec(), rand.New(rand.NewSource(4)), LowerOptions{})
	if size8 >= SerializedSize(m8) {
		t.Fatalf("int4 model (%d) not smaller than int8 (%d)", size8, SerializedSize(m8))
	}
}

func TestQuickPackUnpackInt4(t *testing.T) {
	f := func(raw []int8) bool {
		vals := make([]int8, len(raw))
		for i, v := range raw {
			vals[i] = (v % 8)
			if vals[i] < -8 {
				vals[i] = -8
			}
		}
		packed := PackInt4(vals)
		back := UnpackInt4(packed, len(vals))
		for i := range vals {
			if back[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInt4TensorBytesPacked(t *testing.T) {
	ts := &Tensor{H: 3, W: 3, C: 3, Bits: 4}
	if ts.Bytes() != 14 { // ceil(27/2)
		t.Fatalf("int4 tensor bytes = %d, want 14", ts.Bytes())
	}
	ts.Bits = 8
	if ts.Bytes() != 27 {
		t.Fatalf("int8 tensor bytes = %d, want 27", ts.Bytes())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := FromSpec(kwsSmallSpec(), rng, LowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m.Ops[0].Weights = m.Ops[0].Weights[:len(m.Ops[0].Weights)-1]
	if err := m.Validate(); err == nil {
		t.Fatal("validate must catch truncated weights")
	}
}

func TestFlashBytesComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, err := FromSpec(kwsSmallSpec(), rng, LowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	total := m.FlashBytes()
	parts := m.WeightBytes() + m.BiasBytes() + m.QuantParamBytes() + m.GraphDefBytes()
	if total != parts {
		t.Fatalf("FlashBytes %d != sum of parts %d", total, parts)
	}
	if m.WeightBytes() <= 0 || m.BiasBytes() <= 0 {
		t.Fatal("weights/biases must be non-empty")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("NOTAMODEL"))); err == nil {
		t.Fatal("Load must reject bad magic")
	}
}
