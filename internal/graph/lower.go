package graph

import (
	"fmt"
	"math/rand"

	"micronets/internal/arch"
	"micronets/internal/tensor"
)

// LowerOptions configures structural lowering.
type LowerOptions struct {
	// WeightBits / ActBits select the datatype study (8 default, 4 for the
	// sub-byte kernels of §5.1.3).
	WeightBits int
	ActBits    int
	// AppendSoftmax adds a softmax head for classifiers.
	AppendSoftmax bool
}

// FromSpec lowers an architecture to a deployable Model with synthetic
// (random) weights and plausible quantization parameters. This is the path
// used for hardware characterization (Figures 3-5), where only shapes and
// datatypes matter; trained exports go through Export.
func FromSpec(spec *arch.Spec, rng *rand.Rand, opts LowerOptions) (*Model, error) {
	if opts.WeightBits == 0 {
		opts.WeightBits = 8
	}
	if opts.ActBits == 0 {
		opts.ActBits = 8
	}
	b := newBuilder(spec.Name, opts)
	in := b.addTensor("input", spec.InputH, spec.InputW, spec.InputC, 0.05, -128)
	b.model.Input = in

	cur := in
	for i, blk := range spec.Blocks {
		stride := blk.Stride
		if stride == 0 {
			stride = 1
		}
		name := fmt.Sprintf("b%d", i)
		switch blk.Kind {
		case arch.Conv:
			cur = b.conv(name, cur, blk.KH, blk.KW, stride, blk.OutC, rng, false)
		case arch.DSBlock:
			cur = b.dwconv(name+"_dw", cur, blk.KH, blk.KW, stride, rng)
			cur = b.conv(name+"_pw", cur, 1, 1, 1, blk.OutC, rng, false)
		case arch.IBN:
			kh, kw := blk.KH, blk.KW
			if kh == 0 {
				kh, kw = 3, 3
			}
			inC := b.model.Tensors[cur].C
			save := cur
			cur = b.conv(name+"_exp", cur, 1, 1, 1, blk.Expand, rng, false)
			cur = b.dwconv(name+"_dw", cur, kh, kw, stride, rng)
			cur = b.conv(name+"_proj", cur, 1, 1, 1, blk.OutC, rng, true)
			if stride == 1 && blk.OutC == inC {
				cur = b.add(name+"_add", save, cur)
			}
		case arch.AvgPool, arch.MaxPool:
			kind := OpAvgPool
			if blk.Kind == arch.MaxPool {
				kind = OpMaxPool
			}
			cur = b.pool(name, kind, cur, blk.KH, blk.KW, stride)
		case arch.GlobalPool:
			t := b.model.Tensors[cur]
			cur = b.pool(name, OpAvgPool, cur, t.H, t.W, 1)
		case arch.Dense, arch.DenseReLU:
			cur = b.dense(name, cur, blk.OutC, rng, blk.Kind == arch.DenseReLU)
		case arch.Dropout:
			// deployment no-op
		case arch.TransposedConv:
			cur = b.tconv(name, cur, blk.KH, blk.KW, stride, blk.OutC, rng)
		default:
			return nil, fmt.Errorf("graph: unsupported block kind %v", blk.Kind)
		}
	}
	if opts.AppendSoftmax && spec.NumClasses > 1 {
		cur = b.softmax("softmax", cur)
	}
	b.model.Output = cur
	if err := b.model.Validate(); err != nil {
		return nil, err
	}
	return b.model, nil
}

type builder struct {
	model *Model
	opts  LowerOptions
}

func newBuilder(name string, opts LowerOptions) *builder {
	return &builder{model: &Model{Name: name}, opts: opts}
}

func (b *builder) addTensor(name string, h, w, c int, scale float32, zp int32) int {
	t := &Tensor{
		ID: len(b.model.Tensors), Name: name, H: h, W: w, C: c,
		Scale: scale, ZeroPoint: zp, Bits: b.opts.ActBits,
	}
	b.model.Tensors = append(b.model.Tensors, t)
	return t.ID
}

func randWeights(rng *rand.Rand, n int) []int8 {
	w := make([]int8, n)
	for i := range w {
		w[i] = int8(rng.Intn(255) - 127)
	}
	return w
}

func randScales(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = 0.002 + rng.Float32()*0.004
	}
	return s
}

func clampRange(bits int) (int32, int32) {
	if bits == 4 {
		return -8, 7
	}
	return -128, 127
}

// actZeroPoint is the zero point of post-ReLU activation tensors: the
// low end of the clamp range, so the whole quantized range encodes
// non-negative values.
func actZeroPoint(bits int) int32 {
	lo, _ := clampRange(bits)
	return lo
}

func (b *builder) outTensorFor(in int, oh, ow, oc int, name string) int {
	return b.addTensor(name, oh, ow, oc, 0.03, actZeroPoint(b.opts.ActBits))
}

func (b *builder) conv(name string, in int, kh, kw, stride, outC int, rng *rand.Rand, linear bool) int {
	it := b.model.Tensors[in]
	spec := tensor.Same(kh, kw, stride, stride, it.H, it.W)
	oh, ow := spec.OutSize(it.H, it.W)
	out := b.outTensorFor(in, oh, ow, outC, name+"_out")
	lo, hi := clampRange(b.opts.ActBits)
	op := &Op{
		Kind: OpConv2D, Name: name, Inputs: []int{in}, Output: out,
		KH: kh, KW: kw, SH: stride, SW: stride,
		PadTop: spec.PadTop, PadLeft: spec.PadLeft, PadBottom: spec.PadBottom, PadRight: spec.PadRight,
		Weights: randWeights(rng, kh*kw*it.C*outC), WeightBits: b.opts.WeightBits,
		WeightScales: randScales(rng, outC), Bias: make([]int32, outC),
		ClampMin: lo, ClampMax: hi,
	}
	if linear {
		// Linear bottleneck output: symmetric-ish range.
		b.model.Tensors[out].ZeroPoint = 0
	}
	b.model.Ops = append(b.model.Ops, op)
	return out
}

func (b *builder) dwconv(name string, in int, kh, kw, stride int, rng *rand.Rand) int {
	it := b.model.Tensors[in]
	spec := tensor.Same(kh, kw, stride, stride, it.H, it.W)
	oh, ow := spec.OutSize(it.H, it.W)
	out := b.outTensorFor(in, oh, ow, it.C, name+"_out")
	lo, hi := clampRange(b.opts.ActBits)
	op := &Op{
		Kind: OpDWConv2D, Name: name, Inputs: []int{in}, Output: out,
		KH: kh, KW: kw, SH: stride, SW: stride,
		PadTop: spec.PadTop, PadLeft: spec.PadLeft, PadBottom: spec.PadBottom, PadRight: spec.PadRight,
		Weights: randWeights(rng, kh*kw*it.C), WeightBits: b.opts.WeightBits,
		WeightScales: randScales(rng, it.C), Bias: make([]int32, it.C),
		ClampMin: lo, ClampMax: hi,
	}
	b.model.Ops = append(b.model.Ops, op)
	return out
}

func (b *builder) dense(name string, in int, outC int, rng *rand.Rand, relu bool) int {
	it := b.model.Tensors[in]
	out := b.addTensor(name+"_out", 1, 1, outC, 0.1, 0)
	lo, hi := clampRange(b.opts.ActBits)
	if relu {
		b.model.Tensors[out].ZeroPoint = lo
	}
	op := &Op{
		Kind: OpDense, Name: name, Inputs: []int{in}, Output: out,
		Weights: randWeights(rng, it.Elems()*outC), WeightBits: b.opts.WeightBits,
		WeightScales: randScales(rng, outC), Bias: make([]int32, outC),
		ClampMin: lo, ClampMax: hi,
	}
	if !relu {
		op.ClampMin, op.ClampMax = lo, hi
	}
	b.model.Ops = append(b.model.Ops, op)
	return out
}

func (b *builder) pool(name string, kind OpKind, in int, kh, kw, stride int) int {
	it := b.model.Tensors[in]
	oh := (it.H-kh)/stride + 1
	ow := (it.W-kw)/stride + 1
	if oh < 1 {
		oh = 1
	}
	if ow < 1 {
		ow = 1
	}
	out := b.addTensor(name+"_out", oh, ow, it.C, it.Scale, it.ZeroPoint)
	lo, hi := clampRange(b.opts.ActBits)
	op := &Op{
		Kind: kind, Name: name, Inputs: []int{in}, Output: out,
		KH: kh, KW: kw, SH: stride, SW: stride,
		ClampMin: lo, ClampMax: hi,
	}
	b.model.Ops = append(b.model.Ops, op)
	return out
}

func (b *builder) add(name string, a, c int) int {
	at := b.model.Tensors[a]
	out := b.addTensor(name+"_out", at.H, at.W, at.C, 0.05, 0)
	lo, hi := clampRange(b.opts.ActBits)
	op := &Op{
		Kind: OpAdd, Name: name, Inputs: []int{a, c}, Output: out,
		ClampMin: lo, ClampMax: hi,
	}
	b.model.Ops = append(b.model.Ops, op)
	return out
}

func (b *builder) softmax(name string, in int) int {
	it := b.model.Tensors[in]
	// TFLite softmax output: scale 1/256, zero point -128.
	out := b.addTensor(name+"_out", it.H, it.W, it.C, 1.0/256, -128)
	b.model.Tensors[out].Bits = 8
	op := &Op{Kind: OpSoftmax, Name: name, Inputs: []int{in}, Output: out,
		ClampMin: -128, ClampMax: 127}
	b.model.Ops = append(b.model.Ops, op)
	return out
}

func (b *builder) tconv(name string, in int, kh, kw, stride, outC int, rng *rand.Rand) int {
	it := b.model.Tensors[in]
	out := b.addTensor(name+"_out", it.H*stride, it.W*stride, outC, 0.03, 0)
	op := &Op{
		Kind: OpTransposedConv, Name: name, Inputs: []int{in}, Output: out,
		KH: kh, KW: kw, SH: stride, SW: stride,
		Weights: randWeights(rng, kh*kw*it.C*outC), WeightBits: b.opts.WeightBits,
		WeightScales: randScales(rng, outC), Bias: make([]int32, outC),
		ClampMin: -128, ClampMax: 127,
	}
	b.model.Ops = append(b.model.Ops, op)
	return out
}
