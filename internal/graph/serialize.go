package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Serialization implements the ".mnet" container — the reproduction's
// analogue of the .tflite flatbuffer. The on-disk size of this container is
// what the memory reports treat as the model's flash footprint.

const (
	magic   = "MNET"
	version = uint32(2)
)

// Save writes the model to w.
func Save(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := writeAll(bw,
		version,
		uint32(len(m.Name)),
	); err != nil {
		return err
	}
	if _, err := bw.WriteString(m.Name); err != nil {
		return err
	}
	if err := writeAll(bw, uint32(m.Input), uint32(m.Output), uint32(len(m.Tensors)), uint32(len(m.Ops))); err != nil {
		return err
	}
	for _, t := range m.Tensors {
		if err := writeString(bw, t.Name); err != nil {
			return err
		}
		if err := writeAll(bw, uint32(t.H), uint32(t.W), uint32(t.C), t.Scale, t.ZeroPoint, uint8(t.Bits)); err != nil {
			return err
		}
	}
	for _, o := range m.Ops {
		if err := writeAll(bw, uint8(o.Kind)); err != nil {
			return err
		}
		if err := writeString(bw, o.Name); err != nil {
			return err
		}
		if err := writeAll(bw, uint8(len(o.Inputs))); err != nil {
			return err
		}
		for _, in := range o.Inputs {
			if err := writeAll(bw, uint32(in)); err != nil {
				return err
			}
		}
		if err := writeAll(bw,
			uint32(o.Output),
			uint16(o.KH), uint16(o.KW), uint16(o.SH), uint16(o.SW),
			uint16(o.PadTop), uint16(o.PadLeft), uint16(o.PadBottom), uint16(o.PadRight),
			uint8(o.WeightBits),
		); err != nil {
			return err
		}
		// Weights are stored packed for int4.
		packed := o.Weights
		if o.WeightBits == 4 {
			packed = bytesToInt8(PackInt4(o.Weights))
		}
		if err := writeAll(bw, uint32(len(o.Weights)), uint32(len(packed))); err != nil {
			return err
		}
		if err := writeAll(bw, packed); err != nil {
			return err
		}
		if err := writeAll(bw, uint32(len(o.WeightScales)), o.WeightScales); err != nil {
			return err
		}
		if err := writeAll(bw, uint32(len(o.Bias)), o.Bias); err != nil {
			return err
		}
		if err := writeAll(bw, o.ClampMin, o.ClampMax); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("graph: bad magic %q", head)
	}
	var ver uint32
	if err := readAll(br, &ver); err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("graph: unsupported version %d", ver)
	}
	m := &Model{}
	var err error
	if m.Name, err = readString(br); err != nil {
		return nil, err
	}
	var in, out, nt, no uint32
	if err := readAll(br, &in, &out, &nt, &no); err != nil {
		return nil, err
	}
	m.Input, m.Output = int(in), int(out)
	for i := 0; i < int(nt); i++ {
		t := &Tensor{ID: i}
		if t.Name, err = readString(br); err != nil {
			return nil, err
		}
		var h, w, c uint32
		var bits uint8
		if err := readAll(br, &h, &w, &c, &t.Scale, &t.ZeroPoint, &bits); err != nil {
			return nil, err
		}
		t.H, t.W, t.C, t.Bits = int(h), int(w), int(c), int(bits)
		m.Tensors = append(m.Tensors, t)
	}
	for i := 0; i < int(no); i++ {
		o := &Op{}
		var kind uint8
		if err := readAll(br, &kind); err != nil {
			return nil, err
		}
		o.Kind = OpKind(kind)
		if o.Name, err = readString(br); err != nil {
			return nil, err
		}
		var nin uint8
		if err := readAll(br, &nin); err != nil {
			return nil, err
		}
		for j := 0; j < int(nin); j++ {
			var id uint32
			if err := readAll(br, &id); err != nil {
				return nil, err
			}
			o.Inputs = append(o.Inputs, int(id))
		}
		var outID uint32
		var kh, kw, sh, sw, pt, pl, pb, pr uint16
		var wbits uint8
		if err := readAll(br, &outID, &kh, &kw, &sh, &sw, &pt, &pl, &pb, &pr, &wbits); err != nil {
			return nil, err
		}
		o.Output = int(outID)
		o.KH, o.KW, o.SH, o.SW = int(kh), int(kw), int(sh), int(sw)
		o.PadTop, o.PadLeft, o.PadBottom, o.PadRight = int(pt), int(pl), int(pb), int(pr)
		o.WeightBits = int(wbits)
		var nw, npacked uint32
		if err := readAll(br, &nw, &npacked); err != nil {
			return nil, err
		}
		packed := make([]int8, npacked)
		if err := readAll(br, packed); err != nil {
			return nil, err
		}
		if o.WeightBits == 4 {
			o.Weights = UnpackInt4(int8ToBytes(packed), int(nw))
		} else {
			o.Weights = packed
		}
		var ns uint32
		if err := readAll(br, &ns); err != nil {
			return nil, err
		}
		o.WeightScales = make([]float32, ns)
		if err := readAll(br, o.WeightScales); err != nil {
			return nil, err
		}
		var nb uint32
		if err := readAll(br, &nb); err != nil {
			return nil, err
		}
		o.Bias = make([]int32, nb)
		if err := readAll(br, o.Bias); err != nil {
			return nil, err
		}
		if err := readAll(br, &o.ClampMin, &o.ClampMax); err != nil {
			return nil, err
		}
		m.Ops = append(m.Ops, o)
	}
	return m, m.Validate()
}

// SerializedSize returns the exact byte size Save would produce.
func SerializedSize(m *Model) int {
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		return -1
	}
	return buf.Len()
}

// PackInt4 packs int4 values (each in [-8,7]) two per byte, low nibble
// first — the layout the paper's optimized sub-byte kernels use.
func PackInt4(vals []int8) []byte {
	out := make([]byte, (len(vals)+1)/2)
	for i, v := range vals {
		nib := byte(v & 0x0f)
		if i%2 == 0 {
			out[i/2] = nib
		} else {
			out[i/2] |= nib << 4
		}
	}
	return out
}

// UnpackInt4 is the inverse of PackInt4, producing n sign-extended values.
func UnpackInt4(packed []byte, n int) []int8 {
	out := make([]int8, n)
	for i := 0; i < n; i++ {
		var nib byte
		if i%2 == 0 {
			nib = packed[i/2] & 0x0f
		} else {
			nib = packed[i/2] >> 4
		}
		v := int8(nib)
		if v >= 8 {
			v -= 16
		}
		out[i] = v
	}
	return out
}

func bytesToInt8(b []byte) []int8 {
	out := make([]int8, len(b))
	for i, v := range b {
		out[i] = int8(v)
	}
	return out
}

func int8ToBytes(b []int8) []byte {
	out := make([]byte, len(b))
	for i, v := range b {
		out[i] = byte(v)
	}
	return out
}

func writeString(w io.Writer, s string) error {
	if err := writeAll(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := readAll(r, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("graph: string length %d too large", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func writeAll(w io.Writer, vals ...any) error {
	for _, v := range vals {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func readAll(r io.Reader, vals ...any) error {
	for _, v := range vals {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}
