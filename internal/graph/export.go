package graph

import (
	"fmt"
	"math"

	"micronets/internal/arch"
	ag "micronets/internal/autograd"
	"micronets/internal/nn"
	"micronets/internal/tensor"
)

// Export converts a trained float model (built by arch.Build from the same
// spec) into a deployable int8/int4 Model: BatchNorm layers are folded into
// the preceding convolutions, weights are quantized per-output-channel
// symmetric, and activation ranges are calibrated by running the model on
// the provided calibration batch — the standard TFLite post-QAT export the
// paper relies on.
func Export(spec *arch.Spec, model *nn.Sequential, calib *tensor.Tensor, opts LowerOptions) (*Model, error) {
	if opts.WeightBits == 0 {
		opts.WeightBits = 8
	}
	if opts.ActBits == 0 {
		opts.ActBits = 8
	}
	e := &exporter{
		b:      newBuilder(spec.Name, opts),
		layers: model.Layers,
		opts:   opts,
	}
	lo, hi := rangeOfT(calib)
	scale, zp := quantParams(lo, hi, opts.ActBits)
	in := e.b.addTensor("input", spec.InputH, spec.InputW, spec.InputC, scale, zp)
	e.b.model.Input = in

	cur := ag.Constant(calib)
	curID := in
	var err error
	for i, blk := range spec.Blocks {
		name := fmt.Sprintf("b%d", i)
		cur, curID, err = e.exportBlock(name, blk, cur, curID)
		if err != nil {
			return nil, fmt.Errorf("graph: exporting %s block %d: %w", spec.Name, i, err)
		}
	}
	if e.pos != len(e.layers) {
		return nil, fmt.Errorf("graph: %s: %d trained layers left over after export", spec.Name, len(e.layers)-e.pos)
	}
	if opts.AppendSoftmax && spec.NumClasses > 1 {
		curID = e.b.softmax("softmax", curID)
	}
	e.b.model.Output = curID
	if err := e.b.model.Validate(); err != nil {
		return nil, err
	}
	return e.b.model, nil
}

type exporter struct {
	b      *builder
	layers []nn.Layer
	pos    int
	opts   LowerOptions
}

func (e *exporter) pop() (nn.Layer, error) {
	if e.pos >= len(e.layers) {
		return nil, fmt.Errorf("ran out of trained layers")
	}
	l := e.layers[e.pos]
	e.pos++
	return l, nil
}

func (e *exporter) exportBlock(name string, blk arch.Block, cur *ag.Var, curID int) (*ag.Var, int, error) {
	switch blk.Kind {
	case arch.Conv:
		return e.convBNAct(name, cur, curID)
	case arch.DSBlock:
		cur, curID, err := e.exportDWBNAct(name+"_dw", cur, curID)
		if err != nil {
			return nil, 0, err
		}
		return e.convBNAct(name+"_pw", cur, curID)
	case arch.IBN:
		return e.exportIBN(name, cur, curID)
	case arch.AvgPool, arch.MaxPool, arch.GlobalPool:
		return e.exportPool(name, blk, cur, curID)
	case arch.Dense, arch.DenseReLU:
		return e.exportDense(name, blk, cur, curID)
	case arch.Dropout:
		if _, err := e.pop(); err != nil { // dropout layer, identity at export
			return nil, 0, err
		}
		return cur, curID, nil
	default:
		return nil, 0, fmt.Errorf("unsupported block kind %v at export", blk.Kind)
	}
}

// convBNAct pops [Conv2D, BatchNorm, Activation] and emits one fused
// quantized conv op.
func (e *exporter) convBNAct(name string, cur *ag.Var, curID int) (*ag.Var, int, error) {
	cl, err := e.pop()
	if err != nil {
		return nil, 0, err
	}
	conv, ok := cl.(*nn.Conv2D)
	if !ok {
		return nil, 0, fmt.Errorf("expected Conv2D, got %T", cl)
	}
	bl, err := e.pop()
	if err != nil {
		return nil, 0, err
	}
	bn, ok := bl.(*nn.BatchNorm)
	if !ok {
		return nil, 0, fmt.Errorf("expected BatchNorm, got %T", bl)
	}
	al, err := e.pop()
	if err != nil {
		return nil, 0, err
	}
	act, ok := al.(*nn.Activation)
	if !ok {
		return nil, 0, fmt.Errorf("expected Activation, got %T", al)
	}
	// Float forward through the real layers.
	next := act.Forward(bn.Forward(conv.Forward(cur, false), false), false)
	id, err := e.emitConv(name, OpConv2D, conv.W.Value, nil, bn, act.Kind, conv.Stride, cur, next, curID)
	return next, id, err
}

func (e *exporter) exportDWBNAct(name string, cur *ag.Var, curID int) (*ag.Var, int, error) {
	dl, err := e.pop()
	if err != nil {
		return nil, 0, err
	}
	dw, ok := dl.(*nn.DepthwiseConv2D)
	if !ok {
		return nil, 0, fmt.Errorf("expected DepthwiseConv2D, got %T", dl)
	}
	bl, err := e.pop()
	if err != nil {
		return nil, 0, err
	}
	bn, ok := bl.(*nn.BatchNorm)
	if !ok {
		return nil, 0, fmt.Errorf("expected BatchNorm, got %T", bl)
	}
	al, err := e.pop()
	if err != nil {
		return nil, 0, err
	}
	act, ok := al.(*nn.Activation)
	if !ok {
		return nil, 0, fmt.Errorf("expected Activation, got %T", al)
	}
	next := act.Forward(bn.Forward(dw.Forward(cur, false), false), false)
	id, err := e.emitConv(name, OpDWConv2D, dw.W.Value, nil, bn, act.Kind, dw.Stride, cur, next, curID)
	return next, id, err
}

// exportIBN pops the single Residual/Sequential layer Build emitted and
// exports its 8 inner layers plus an OpAdd when residual.
func (e *exporter) exportIBN(name string, cur *ag.Var, curID int) (*ag.Var, int, error) {
	l, err := e.pop()
	if err != nil {
		return nil, 0, err
	}
	var body *nn.Sequential
	residual := false
	switch v := l.(type) {
	case *nn.Residual:
		body, _ = v.Body.(*nn.Sequential)
		residual = true
	case *nn.Sequential:
		body = v
	default:
		return nil, 0, fmt.Errorf("expected IBN Residual/Sequential, got %T", l)
	}
	if body == nil || len(body.Layers) != 8 {
		return nil, 0, fmt.Errorf("malformed IBN body")
	}
	// Temporarily walk the inner layers with a sub-exporter sharing the
	// same builder.
	sub := &exporter{b: e.b, layers: body.Layers, opts: e.opts}
	skip, skipID := cur, curID

	x, xID, err := sub.convBNAct(name+"_exp", cur, curID)
	if err != nil {
		return nil, 0, err
	}
	x, xID, err = sub.exportDWBNAct(name+"_dw", x, xID)
	if err != nil {
		return nil, 0, err
	}
	// Projection: conv + BN, linear (no activation layer).
	cl, err := sub.pop()
	if err != nil {
		return nil, 0, err
	}
	proj, ok := cl.(*nn.Conv2D)
	if !ok {
		return nil, 0, fmt.Errorf("expected projection Conv2D, got %T", cl)
	}
	bl, err := sub.pop()
	if err != nil {
		return nil, 0, err
	}
	bn, ok := bl.(*nn.BatchNorm)
	if !ok {
		return nil, 0, fmt.Errorf("expected projection BatchNorm, got %T", bl)
	}
	projIn, projInID := x, xID
	x = bn.Forward(proj.Forward(projIn, false), false)
	xID, err = e.emitConv(name+"_proj", OpConv2D, proj.W.Value, nil, bn, "linear", proj.Stride, projIn, x, projInID)
	if err != nil {
		return nil, 0, err
	}
	if !residual {
		return x, xID, nil
	}
	sum := ag.Add(x, skip)
	lo, hi := rangeOfT(sum.Value)
	scale, zp := quantParams(lo, hi, e.opts.ActBits)
	out := e.b.addTensor(name+"_add_out", sum.Value.Shape[1], sum.Value.Shape[2], sum.Value.Shape[3], scale, zp)
	cl2, ch2 := clampRange(e.opts.ActBits)
	e.b.model.Ops = append(e.b.model.Ops, &Op{
		Kind: OpAdd, Name: name + "_add", Inputs: []int{skipID, xID}, Output: out,
		ClampMin: cl2, ClampMax: ch2,
	})
	return sum, out, nil
}

func (e *exporter) exportPool(name string, blk arch.Block, cur *ag.Var, curID int) (*ag.Var, int, error) {
	l, err := e.pop()
	if err != nil {
		return nil, 0, err
	}
	var next *ag.Var
	kind := OpAvgPool
	kh, kw, stride := blk.KH, blk.KW, blk.Stride
	if stride == 0 {
		stride = 1
	}
	switch v := l.(type) {
	case *nn.AvgPool:
		next = v.Forward(cur, false)
	case *nn.MaxPoolLayer:
		next = v.Forward(cur, false)
		kind = OpMaxPool
	case *nn.GlobalAvgPool:
		next = v.Forward(cur, false)
		kh, kw = cur.Value.Shape[1], cur.Value.Shape[2]
	default:
		return nil, 0, fmt.Errorf("expected pool layer, got %T", l)
	}
	it := e.b.model.Tensors[curID]
	oh, ow := 1, 1
	if len(next.Value.Shape) == 4 {
		oh, ow = next.Value.Shape[1], next.Value.Shape[2]
	}
	out := e.b.addTensor(name+"_out", oh, ow, it.C, it.Scale, it.ZeroPoint)
	cl, ch := clampRange(e.opts.ActBits)
	e.b.model.Ops = append(e.b.model.Ops, &Op{
		Kind: kind, Name: name, Inputs: []int{curID}, Output: out,
		KH: kh, KW: kw, SH: stride, SW: stride,
		ClampMin: cl, ClampMax: ch,
	})
	return next, out, nil
}

func (e *exporter) exportDense(name string, blk arch.Block, cur *ag.Var, curID int) (*ag.Var, int, error) {
	l, err := e.pop()
	if err != nil {
		return nil, 0, err
	}
	d, ok := l.(*nn.Dense)
	if !ok {
		return nil, 0, fmt.Errorf("expected Dense, got %T", l)
	}
	actKind := "linear"
	next := d.Forward(cur, false)
	if blk.Kind == arch.DenseReLU {
		al, err := e.pop()
		if err != nil {
			return nil, 0, err
		}
		act, ok := al.(*nn.Activation)
		if !ok {
			return nil, 0, fmt.Errorf("expected Activation after DenseReLU, got %T", al)
		}
		next = act.Forward(next, false)
		actKind = act.Kind
	}
	in := e.b.model.Tensors[curID]
	outC := d.W.Value.Shape[1]
	qmax := float32(127)
	if e.opts.WeightBits == 4 {
		qmax = 7
	}
	// Per-tensor symmetric scale for FC (as CMSIS-NN uses).
	var wmax float32
	for _, v := range d.W.Value.Data {
		if a := absf(v); a > wmax {
			wmax = a
		}
	}
	if wmax == 0 {
		wmax = 1e-6
	}
	ws := wmax / qmax
	inN := d.W.Value.Shape[0]
	wq := make([]int8, inN*outC)
	for i, v := range d.W.Value.Data {
		wq[i] = quantClamp(v/ws, e.opts.WeightBits)
	}
	scales := make([]float32, outC)
	for i := range scales {
		scales[i] = ws
	}
	bias := make([]int32, outC)
	if d.B != nil {
		for i, v := range d.B.Value.Data {
			bias[i] = int32(math.Round(float64(v / (in.Scale * ws))))
		}
	}
	lo, hi := rangeOfT(next.Value)
	if actKind == "relu" && lo > 0 {
		lo = 0
	}
	scale, zp := quantParams(lo, hi, e.opts.ActBits)
	out := e.b.addTensor(name+"_out", 1, 1, outC, scale, zp)
	clMin, clMax := clampRange(e.opts.ActBits)
	if actKind == "relu" && zp > clMin {
		clMin = zp
	}
	e.b.model.Ops = append(e.b.model.Ops, &Op{
		Kind: OpDense, Name: name, Inputs: []int{curID}, Output: out,
		Weights: wq, WeightBits: e.opts.WeightBits, WeightScales: scales, Bias: bias,
		ClampMin: clMin, ClampMax: clMax,
	})
	return next, out, nil
}

// emitConv folds BN into the conv weights and emits the quantized op.
// wgt layout: [kh,kw,inC,outC] for conv, [kh,kw,c] for dwconv.
func (e *exporter) emitConv(name string, kind OpKind, wgt *tensor.Tensor, convBias *tensor.Tensor,
	bn *nn.BatchNorm, actKind string, stride int, in *ag.Var, out *ag.Var, inID int) (int, error) {

	it := e.b.model.Tensors[inID]
	var kh, kw, inC, outC int
	if kind == OpConv2D {
		kh, kw, inC, outC = wgt.Shape[0], wgt.Shape[1], wgt.Shape[2], wgt.Shape[3]
	} else {
		kh, kw = wgt.Shape[0], wgt.Shape[1]
		inC, outC = wgt.Shape[2], wgt.Shape[2]
	}
	bnScale, bnShift := bn.FoldedScaleShift()
	if len(bnScale) != outC {
		return 0, fmt.Errorf("BN channels %d != conv out %d", len(bnScale), outC)
	}
	qmax := float32(127)
	if e.opts.WeightBits == 4 {
		qmax = 7
	}
	// Fold and quantize per output channel.
	folded := make([]float32, wgt.Len())
	chMax := make([]float32, outC)
	for i, v := range wgt.Data {
		var oc int
		if kind == OpConv2D {
			oc = i % outC
		} else {
			oc = i % outC // dw: channel is the last dim too
		}
		f := v * bnScale[oc]
		folded[i] = f
		if a := absf(f); a > chMax[oc] {
			chMax[oc] = a
		}
	}
	scales := make([]float32, outC)
	for oc := range scales {
		if chMax[oc] == 0 {
			chMax[oc] = 1e-6
		}
		scales[oc] = chMax[oc] / qmax
	}
	wq := make([]int8, len(folded))
	for i, f := range folded {
		oc := i % outC
		wq[i] = quantClamp(f/scales[oc], e.opts.WeightBits)
	}
	bias := make([]int32, outC)
	for oc := 0; oc < outC; oc++ {
		b := bnShift[oc]
		if convBias != nil {
			b += convBias.Data[oc] * bnScale[oc]
		}
		bias[oc] = int32(math.Round(float64(b / (it.Scale * scales[oc]))))
	}
	// Output tensor geometry and quantization.
	oh, ow := out.Value.Shape[1], out.Value.Shape[2]
	lo, hi := rangeOfT(out.Value)
	switch actKind {
	case "relu":
		if lo > 0 {
			lo = 0
		}
	case "relu6":
		if lo > 0 {
			lo = 0
		}
		if hi > 6 {
			hi = 6
		}
	}
	scale, zp := quantParams(lo, hi, e.opts.ActBits)
	outID := e.b.addTensor(name+"_out", oh, ow, outC, scale, zp)
	clMin, clMax := clampRange(e.opts.ActBits)
	switch actKind {
	case "relu":
		if zp > clMin {
			clMin = zp
		}
	case "relu6":
		if zp > clMin {
			clMin = zp
		}
		q6 := zp + int32(math.Round(float64(6/scale)))
		if q6 < clMax {
			clMax = q6
		}
	}
	spec := tensor.Same(kh, kw, stride, stride, it.H, it.W)
	e.b.model.Ops = append(e.b.model.Ops, &Op{
		Kind: kind, Name: name, Inputs: []int{inID}, Output: outID,
		KH: kh, KW: kw, SH: stride, SW: stride,
		PadTop: spec.PadTop, PadLeft: spec.PadLeft, PadBottom: spec.PadBottom, PadRight: spec.PadRight,
		Weights: wq, WeightBits: e.opts.WeightBits, WeightScales: scales, Bias: bias,
		ClampMin: clMin, ClampMax: clMax,
	})
	_ = inC
	return outID, nil
}

func quantClamp(v float32, bits int) int8 {
	q := int32(math.Round(float64(v)))
	lo, hi := int32(-128), int32(127)
	if bits == 4 {
		lo, hi = -8, 7
	}
	if q < lo {
		q = lo
	}
	if q > hi {
		q = hi
	}
	return int8(q)
}

func rangeOfT(t *tensor.Tensor) (float32, float32) {
	lo, hi := tensor.Min(t), tensor.Max(t)
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if hi == lo {
		hi = lo + 1e-6
	}
	return lo, hi
}

// quantParams computes an affine (scale, zeroPoint) covering [lo, hi] with
// the quantized grid of the given bit width, zero exactly representable.
func quantParams(lo, hi float32, bits int) (float32, int32) {
	qmin, qmax := clampRange(bits)
	scale := (hi - lo) / float32(qmax-qmin)
	if scale <= 0 {
		scale = 1e-6
	}
	zp := int32(math.Round(float64(float32(qmin) - lo/scale)))
	if zp < qmin {
		zp = qmin
	}
	if zp > qmax {
		zp = qmax
	}
	return scale, zp
}

func absf(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
