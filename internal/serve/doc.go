// Package serve is the HTTP inference-serving subsystem: a KServe-v2-style
// JSON protocol (health, model listing, metadata, infer) layered over the
// repo's int8 TFLM-style runtime. The data path is
//
//	repository → interpreter pool → micro-batcher → kernels engine
//
// A Repository is the versioned control plane: it lowers each requested
// architecture once (cached by spec fingerprint + lowering options),
// pre-warms planned interpreter pools so concurrent requests never share
// an arena, blue/green-swaps new versions under a RAM budget, and drains
// retired versions without failing in-flight requests. A Batcher
// coalesces concurrent requests for the same model into single
// InvokeBatch calls under an adaptive gather window. The models served
// are the MicroNets/MCUNet-class tiny networks of the paper, whose
// per-request cost is small enough that aggressive micro-batching is
// essentially free latency-wise.
//
// On top of single models, the server mounts the /v2/graphs surface of
// internal/servegraph: declarative inference graphs (cascades, ensembles,
// weighted splits, switches) routed in-process over the same repository,
// with an unload guard so a model referenced by a registered graph cannot
// be dropped out from under it.
package serve
