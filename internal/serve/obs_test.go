package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"micronets/internal/obs"
	"micronets/internal/zoo"
)

func kwsTestRow(seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, 49*10*1)
	for i := range data {
		data[i] = rng.Float64()*2 - 1
	}
	return data
}

// TestMetricsExpositionValid is the exposition-format satellite: parse
// the whole /metrics payload and assert every family declares HELP/TYPE
// before its samples, no family is declared twice, histogram buckets are
// cumulative, and every histogram ends in le="+Inf" matching _count.
func TestMetricsExpositionValid(t *testing.T) {
	_, ts := newTestServer(t)
	inferOnce(t, ts.URL, "MicroNet-KWS-S", kwsTestRow(1))
	inferOnce(t, ts.URL, "DSCNN-S", kwsTestRow(2))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)

	type family struct {
		help, typ bool
		typeName  string
	}
	families := map[string]*family{}
	declared := func(name string) *family {
		f := families[name]
		if f == nil {
			f = &family{}
			families[name] = f
		}
		return f
	}
	// sampleFamily strips histogram/summary suffixes to the declaring
	// family name.
	sampleFamily := func(metric string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(metric, suf)
			if base != metric {
				if f, ok := families[base]; ok && f.typeName == "histogram" {
					return base
				}
			}
		}
		return metric
	}

	// histState tracks per-series cumulative bucket order.
	type histKey struct{ family, labels string }
	lastBucket := map[histKey]float64{}
	infSeen := map[histKey]float64{}
	countSeen := map[histKey]float64{}

	for lineNo, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			name := strings.Fields(line)[2]
			f := declared(name)
			if f.help {
				t.Errorf("line %d: duplicate HELP for family %s", lineNo+1, name)
			}
			if f.typ {
				t.Errorf("line %d: HELP for %s after its TYPE", lineNo+1, name)
			}
			f.help = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			name, typ := fields[2], fields[3]
			f := declared(name)
			if f.typ {
				t.Errorf("line %d: duplicate TYPE for family %s", lineNo+1, name)
			}
			if !f.help {
				t.Errorf("line %d: TYPE for %s without preceding HELP", lineNo+1, name)
			}
			f.typ = true
			f.typeName = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Sample line: metric{labels} value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: unparseable sample %q", lineNo+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", lineNo+1, line, err)
		}
		metric, labels := series, ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			metric, labels = series[:i], series[i:]
		}
		fam := sampleFamily(metric)
		f, ok := families[fam]
		if !ok || !f.help || !f.typ {
			t.Errorf("line %d: sample %s before HELP/TYPE of family %s", lineNo+1, metric, fam)
			continue
		}
		if f.typeName != "histogram" {
			continue
		}
		switch {
		case strings.HasSuffix(metric, "_bucket"):
			le := ""
			for _, part := range strings.Split(strings.Trim(labels, "{}"), ",") {
				if v, ok := strings.CutPrefix(part, `le="`); ok {
					le = strings.TrimSuffix(v, `"`)
				}
			}
			if le == "" {
				t.Errorf("line %d: histogram bucket without le label: %q", lineNo+1, line)
				continue
			}
			// Key by the series minus the le label so cumulativeness is
			// checked per labeled series.
			base := strings.ReplaceAll(labels, `le="`+le+`",`, "")
			base = strings.ReplaceAll(base, `,le="`+le+`"`, "")
			base = strings.ReplaceAll(base, `le="`+le+`"`, "")
			k := histKey{fam, base}
			if val < lastBucket[k] {
				t.Errorf("line %d: bucket counts not cumulative for %s%s: %v < %v", lineNo+1, fam, base, val, lastBucket[k])
			}
			lastBucket[k] = val
			if le == "+Inf" {
				infSeen[k] = val
			}
		case strings.HasSuffix(metric, "_count"):
			base := labels
			countSeen[histKey{fam, base}] = val
		}
	}
	if len(infSeen) == 0 {
		t.Fatal("no histogram series with le=\"+Inf\" found")
	}
	for k, inf := range infSeen {
		if c, ok := countSeen[k]; !ok || c != inf {
			t.Errorf("series %s%s: +Inf bucket %v != _count %v", k.family, k.labels, inf, c)
		}
	}
	// The acceptance-criterion families must be present with samples.
	for _, want := range []string{
		`micronets_serve_request_latency_seconds_bucket{model="MicroNet-KWS-S",le="+Inf"}`,
		`micronets_serve_queue_wait_seconds_bucket{model="MicroNet-KWS-S",le="+Inf"}`,
		`micronets_serve_invoke_seconds_bucket{model="MicroNet-KWS-S",le="+Inf"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

func TestProfileEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v2/models/MicroNet-KWS-S/profile?runs=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("profile: status %d: %s", resp.StatusCode, body)
	}
	var prof struct {
		Version    int     `json:"version"`
		Model      string  `json:"model"`
		Runs       int     `json:"runs"`
		NsPerCycle float64 `json:"ns_per_cycle"`
		R2         float64 `json:"r2"`
		Ops        []struct {
			Index           int     `json:"index"`
			Kind            string  `json:"kind"`
			Name            string  `json:"name"`
			MeasuredNs      float64 `json:"measured_ns"`
			MeasuredShare   float64 `json:"measured_share"`
			PredictedCycles float64 `json:"predicted_cycles"`
			PredictedShare  float64 `json:"predicted_share"`
			Ratio           float64 `json:"ratio"`
		} `json:"ops"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&prof); err != nil {
		t.Fatal(err)
	}
	if prof.Runs != 2 || prof.Version < 1 {
		t.Fatalf("profile header = %+v", prof)
	}
	e, err := zoo.Get("MicroNet-KWS-S")
	if err != nil {
		t.Fatal(err)
	}
	_ = e
	if len(prof.Ops) == 0 {
		t.Fatal("profile has no ops")
	}
	var mShare, pShare, totalNs float64
	for _, op := range prof.Ops {
		if op.MeasuredNs < 0 || op.PredictedCycles <= 0 {
			t.Fatalf("op %d: measured %v predicted %v", op.Index, op.MeasuredNs, op.PredictedCycles)
		}
		mShare += op.MeasuredShare
		pShare += op.PredictedShare
		totalNs += op.MeasuredNs
	}
	if mShare < 0.99 || mShare > 1.01 || pShare < 0.99 || pShare > 1.01 {
		t.Fatalf("shares must sum to ~1: measured %v predicted %v", mShare, pShare)
	}
	if totalNs <= 0 || prof.NsPerCycle <= 0 {
		t.Fatalf("profile measured nothing: total %v ns/cycle %v", totalNs, prof.NsPerCycle)
	}

	// Unknown model and bad runs are client errors.
	if r2, _ := http.Get(ts.URL + "/v2/models/NoSuchModel/profile"); r2.StatusCode != 404 {
		t.Fatalf("unknown model: status %d", r2.StatusCode)
	}
	if r3, _ := http.Get(ts.URL + "/v2/models/MicroNet-KWS-S/profile?runs=zero"); r3.StatusCode != 400 {
		t.Fatalf("bad runs: status %d", r3.StatusCode)
	}
}

func TestTraceIDOnEveryResponse(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v2/health/live")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Micronets-Trace-Id"); len(id) != 16 {
		t.Fatalf("trace ID header = %q, want 16 hex chars", id)
	}
	// An inbound ID is honored, not replaced.
	req, _ := http.NewRequest("GET", ts.URL+"/v2/health/live", nil)
	req.Header.Set("X-Micronets-Trace-Id", "deadbeefdeadbeef")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if id := resp2.Header.Get("X-Micronets-Trace-Id"); id != "deadbeefdeadbeef" {
		t.Fatalf("inbound trace ID not honored: got %q", id)
	}
}

func TestTraceSpansOnInfer(t *testing.T) {
	_, ts := newTestServer(t)
	body, _ := json.Marshal(v2InferRequest{Inputs: []v2Tensor{{
		Name: "input", Datatype: "FP32", Data: kwsTestRow(3),
	}}})
	req, _ := http.NewRequest("POST", ts.URL+"/v2/models/MicroNet-KWS-S/infer", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Micronets-Trace", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("infer: status %d", resp.StatusCode)
	}
	raw := resp.Header.Get("X-Micronets-Trace")
	if raw == "" {
		t.Fatal("no X-Micronets-Trace response header")
	}
	var spans []obs.Span
	if err := json.Unmarshal([]byte(raw), &spans); err != nil {
		t.Fatalf("span JSON: %v", err)
	}
	traceID := resp.Header.Get("X-Micronets-Trace-Id")
	byName := map[string]obs.Span{}
	var rootID int
	for _, s := range spans {
		byName[s.Name] = s
		if s.TraceID != traceID {
			t.Errorf("span %q trace ID %q != header %q", s.Name, s.TraceID, traceID)
		}
		if s.Name == "request" {
			rootID = s.ID
		}
	}
	for _, want := range []string{"request", "queue", "invoke"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("missing span %q in %v", want, spans)
		}
	}
	if byName["request"].Parent != 0 {
		t.Errorf("request span has parent %d", byName["request"].Parent)
	}
	for _, child := range []string{"queue", "invoke"} {
		if byName[child].Parent != rootID {
			t.Errorf("%s span parent = %d, want root %d", child, byName[child].Parent, rootID)
		}
		if byName[child].Attrs["model"] != "MicroNet-KWS-S" {
			t.Errorf("%s span attrs = %v", child, byName[child].Attrs)
		}
	}
	// Without the opt-in header, no span payload comes back.
	resp2, err := http.Post(ts.URL+"/v2/models/MicroNet-KWS-S/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-Micronets-Trace") != "" {
		t.Fatal("span payload returned without opt-in")
	}
}
