//go:build !race

package serve

// raceEnabled reports whether the race detector is compiled in; allocation
// accounting tests skip under it because instrumentation skews counts.
const raceEnabled = false
