package serve

import (
	"net/http"
	"strconv"

	"micronets/internal/mcu"
)

// profileResponse is the body of GET /v2/models/{name}/profile: the
// measured-vs-predicted per-op join for the serving version, averaged
// over `runs` profiled invokes on one pooled interpreter.
type profileResponse struct {
	Version int `json:"version"`
	*mcu.Profile
}

// handleProfile measures per-op wall time on a pooled interpreter of the
// serving version and joins it against the mcu cost model's predictions
// — the paper's latency-linearity claim (§3), checked live on the
// serving host. ?runs=N (default 8, max 64) controls averaging; the
// version stays pinned and the interpreter checked out for the whole
// measurement, so a concurrent swap or infer burst cannot corrupt it.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	v, release, err := s.repo.acquire(name)
	if err != nil {
		writeJSON(w, http.StatusNotFound, v2Error{Error: err.Error()})
		return
	}
	defer release()
	runs := 8
	if q := r.URL.Query().Get("runs"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest, v2Error{Error: "runs must be a positive integer"})
			return
		}
		if n > 64 {
			n = 64
		}
		runs = n
	}

	mod := v.entry.Model
	ip := v.entry.Pool.Get()
	defer v.entry.Pool.Put(ip)
	// Deterministic non-zero input so every run exercises the same data
	// path; content does not affect int8 kernel timing.
	in := ip.Input()
	for i := range in {
		in[i] = int8(i%251 - 125)
	}
	// One warm invoke so the measured runs never pay first-touch costs.
	if err := ip.Invoke(); err != nil {
		ip.Reset()
		writeJSON(w, http.StatusInternalServerError, v2Error{Error: err.Error()})
		return
	}
	sums := make([]float64, len(mod.Ops))
	for run := 0; run < runs; run++ {
		for i := range in {
			in[i] = int8(i%251 - 125)
		}
		timings, err := ip.ProfileInvoke()
		if err != nil {
			ip.Reset()
			writeJSON(w, http.StatusInternalServerError, v2Error{Error: err.Error()})
			return
		}
		for _, t := range timings {
			sums[t.Index] += float64(t.Ns)
		}
	}
	for i := range sums {
		sums[i] /= float64(runs)
	}
	prof, err := mcu.JoinProfile(mod, sums, runs)
	if err != nil {
		// An op the cost model cannot score makes the join impossible —
		// report it rather than a partial table.
		writeJSON(w, http.StatusUnprocessableEntity, v2Error{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, profileResponse{Version: v.num, Profile: prof})
}
