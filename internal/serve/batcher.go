package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"micronets/internal/obs"
)

// ErrDraining is returned by Submit once the batcher has been closed —
// the server is shutting down and no longer accepts work.
var ErrDraining = errors.New("serve: batcher draining")

// BatcherConfig bounds the micro-batching window.
type BatcherConfig struct {
	// MaxBatch is the most requests coalesced into one InvokeBatch call
	// (default 8).
	MaxBatch int
	// MaxDelay is the longest a lone request waits for company before the
	// window closes (default 2ms). Under sparse traffic the effective
	// window adaptively shrinks well below this, so idle-period requests
	// pay almost none of it.
	MaxDelay time.Duration
	// Logger receives batch-invoke error lines (with the trace IDs of
	// the failed requests). Nil discards them.
	Logger *slog.Logger
}

func (c *BatcherConfig) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
}

// Batcher coalesces concurrent requests for one model into single
// InvokeBatch calls. A single collector goroutine gathers requests until
// the batch is full or the adaptive window expires, then runs the whole
// batch on one pooled interpreter. The window adapts to traffic: a full
// batch resets it to MaxDelay (waiting is paying off), a singleton batch
// halves it (down to MaxDelay/8) so sparse traffic is served near-
// immediately instead of always eating the worst-case delay.
type Batcher struct {
	entry *Entry
	cfg   BatcherConfig

	mu     sync.RWMutex
	closed bool // guarded by Batcher.mu
	reqs   chan *batchReq
	// wg tracks the collector; flushWg tracks dispatched flushes.
	wg      sync.WaitGroup
	flushWg sync.WaitGroup

	// windowNs is the current adaptive gather window, exported to
	// /metrics as a gauge.
	windowNs atomic.Int64
}

type batchReq struct {
	in []int8
	// out is the response buffer, allocated once in Submit and filled in
	// place by InvokeBatchInto — the flush path allocates no per-row
	// output slices.
	out  []int8
	resp chan batchResp
	// enq marks when the request entered the queue; the flush worker
	// subtracts it from the invoke start to get per-request queue wait.
	enq time.Time
	// trace/parent carry the request's tracing state (both nil when the
	// caller did not opt in); the flush worker adds queue/invoke child
	// spans post hoc. traceID is the bare correlation ID every request
	// carries, for batch-error log lines.
	trace   *obs.Trace
	parent  *obs.SpanHandle
	traceID string
}

type batchResp struct {
	out []int8
	err error
}

// NewBatcher starts the collector goroutine for an entry.
func NewBatcher(entry *Entry, cfg BatcherConfig) *Batcher {
	cfg.fill()
	b := &Batcher{
		entry: entry,
		cfg:   cfg,
		reqs:  make(chan *batchReq, 4*cfg.MaxBatch),
	}
	b.windowNs.Store(int64(cfg.MaxDelay))
	b.wg.Add(1)
	go b.run()
	return b
}

// Window returns the current adaptive gather window.
func (b *Batcher) Window() time.Duration { return time.Duration(b.windowNs.Load()) }

// Close stops accepting work, flushes everything already queued, and
// waits for the collector and all in-flight flushes to finish. Safe to
// call more than once.
func (b *Batcher) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.reqs)
	}
	b.mu.Unlock()
	b.wg.Wait()
	b.flushWg.Wait()
}

// Submit queues one quantized input and blocks until its batch has run.
// Input length is validated here, before the request joins a batch, so a
// malformed request can never fail its co-batched neighbors. The returned
// buffer is owned by the caller.
func (b *Batcher) Submit(ctx context.Context, in []int8) ([]int8, error) {
	want := b.entry.Model.Tensors[b.entry.Model.Input].Elems()
	if len(in) != want {
		b.entry.stats.errors.Add(1)
		return nil, fmt.Errorf("serve: model %s: input has %d elements, want %d", b.entry.Name, len(in), want)
	}
	start := time.Now()
	r := &batchReq{
		in:      in,
		out:     make([]int8, b.entry.Model.Tensors[b.entry.Model.Output].Elems()),
		resp:    make(chan batchResp, 1),
		enq:     start,
		trace:   obs.TraceFrom(ctx),
		parent:  obs.SpanFrom(ctx),
		traceID: obs.TraceIDFrom(ctx),
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return nil, ErrDraining
	}
	select {
	case b.reqs <- r:
		b.mu.RUnlock()
	case <-ctx.Done():
		b.mu.RUnlock()
		b.entry.stats.canceled.Add(1)
		return nil, ctx.Err()
	}
	// The request is now owned by the collector and will always be
	// answered — even a context cancellation here just abandons the
	// buffered reply.
	select {
	case resp := <-r.resp:
		b.entry.stats.observeLatency(time.Since(start))
		if resp.err != nil {
			b.entry.stats.errors.Add(1)
		}
		return resp.out, resp.err
	case <-ctx.Done():
		// The batch may still succeed; the caller just stopped waiting.
		// Count it as a cancellation, not a model error, so the /metrics
		// error rate keeps meaning "inference failed".
		b.entry.stats.canceled.Add(1)
		return nil, ctx.Err()
	}
}

// run is the collector loop: wait for a first request, gather until full
// or the window closes, flush, adapt the window.
func (b *Batcher) run() {
	defer b.wg.Done()
	window := b.cfg.MaxDelay
	// One gather timer serves the whole collector lifetime. Since Go 1.23
	// timer channels are unbuffered, so Reset after Stop cannot deliver a
	// stale expiry — no drain dance needed between batches.
	timer := time.NewTimer(window)
	defer timer.Stop()
	timer.Stop()
	for {
		first, ok := <-b.reqs
		if !ok {
			return
		}
		batch := []*batchReq{first}
		timer.Reset(window)
	gather:
		for len(batch) < b.cfg.MaxBatch {
			select {
			case r, ok := <-b.reqs:
				if !ok {
					break gather
				}
				batch = append(batch, r)
			case <-timer.C:
				break gather
			}
		}
		timer.Stop()
		b.flush(batch)
		switch {
		case len(batch) >= b.cfg.MaxBatch:
			window = b.cfg.MaxDelay
		case len(batch) == 1:
			if window > b.cfg.MaxDelay/8 {
				window /= 2
			}
		}
		b.windowNs.Store(int64(window))
	}
}

// flush acquires an interpreter — blocking when every pooled arena is
// busy, which is the batcher's backpressure — and dispatches the batch to
// run concurrently. With a pool of N, up to N batches execute in parallel
// while the collector goes straight back to gathering the next one, so
// pre-warmed arenas beyond the first actually carry traffic.
func (b *Batcher) flush(batch []*batchReq) {
	ip := b.entry.Pool.Get()
	b.flushWg.Add(1)
	//microvet:ignore hotpathalloc one dispatch closure per batch lets up to pool-size batches run concurrently; amortized across the batch rows
	go func() {
		defer b.flushWg.Done()
		//microvet:ignore hotpathalloc per-batch row headers, amortized across the batch; the per-op invoke loop underneath stays zero-alloc
		inputs := make([][]int8, len(batch))
		//microvet:ignore hotpathalloc per-batch row headers, amortized across the batch; the per-op invoke loop underneath stays zero-alloc
		outs := make([][]int8, len(batch))
		for i, r := range batch {
			inputs[i] = r.in
			outs[i] = r.out
		}
		// Outputs land directly in each request's pre-allocated buffer.
		// An invoke error (impossible for length-validated inputs short
		// of a kernel bug) fails every request in the batch identically.
		invokeStart := time.Now()
		err := ip.InvokeBatchInto(inputs, outs)
		invokeDur := time.Since(invokeStart)
		if err != nil {
			ip.Reset()
		}
		b.entry.Pool.Put(ip)
		b.entry.stats.observeBatch(len(batch))
		b.entry.stats.invoke.Observe(invokeDur)
		for _, r := range batch {
			b.entry.stats.queueWait.Observe(invokeStart.Sub(r.enq))
			if r.trace != nil {
				//microvet:ignore hotpathalloc span attributes only built when the request opted into tracing
				r.trace.Add("queue", r.parent, r.enq, invokeStart.Sub(r.enq), map[string]string{
					"model": b.entry.Name, "batch": fmt.Sprint(len(batch)), //microvet:ignore hotpathalloc span attributes only built when the request opted into tracing
				})
				//microvet:ignore hotpathalloc span attributes only built when the request opted into tracing
				r.trace.Add("invoke", r.parent, invokeStart, invokeDur, map[string]string{
					"model": b.entry.Name, "batch": fmt.Sprint(len(batch)), //microvet:ignore hotpathalloc span attributes only built when the request opted into tracing
				})
			}
			if err != nil {
				r.resp <- batchResp{err: err}
				continue
			}
			r.resp <- batchResp{out: r.out}
		}
		if err != nil && b.cfg.Logger != nil {
			//microvet:ignore hotpathalloc error path: a failed batch is already off the fast path
			ids := make([]string, 0, len(batch))
			for _, r := range batch {
				if r.traceID != "" {
					ids = append(ids, r.traceID) //microvet:ignore hotpathalloc error path: a failed batch is already off the fast path
				}
			}
			//microvet:ignore hotpathalloc error path: a failed batch is already off the fast path
			b.cfg.Logger.Error("batch invoke failed",
				"model", b.entry.Name, "batch", len(batch),
				"traces", strings.Join(ids, ","), "err", err)
		}
	}()
}

// stats holds one entry's serving counters, updated with atomics from the
// handler, Submit, and collector goroutines.
type stats struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	// canceled counts requests whose caller's context expired before the
	// response was read — the model did nothing wrong, so these are kept
	// out of errors to preserve the error rate's meaning.
	canceled atomic.Uint64
	batches  atomic.Uint64
	batchSum atomic.Uint64
	batchMax atomic.Uint64
	latNsSum atomic.Uint64
	latCount atomic.Uint64
	// latency is end-to-end Submit latency (queue + invoke); queueWait
	// and invoke split it so a p99 regression is attributable to
	// batching pressure vs kernel time.
	latency   obs.Histogram
	queueWait obs.Histogram
	invoke    obs.Histogram
}

func (s *stats) observeBatch(n int) {
	s.batches.Add(1)
	s.batchSum.Add(uint64(n))
	s.requests.Add(uint64(n))
	for {
		cur := s.batchMax.Load()
		if uint64(n) <= cur || s.batchMax.CompareAndSwap(cur, uint64(n)) {
			return
		}
	}
}

func (s *stats) observeLatency(d time.Duration) {
	s.latNsSum.Add(uint64(d.Nanoseconds()))
	s.latCount.Add(1)
	s.latency.Observe(d)
}

// StatsSnapshot is a point-in-time copy of one model's counters.
type StatsSnapshot struct {
	Requests     uint64
	Errors       uint64
	Canceled     uint64
	Batches      uint64
	BatchSizeSum uint64
	BatchSizeMax uint64
	LatencyNsSum uint64
	LatencyCount uint64
	// Latency, QueueWait and Invoke are the full histograms behind the
	// /metrics histogram families and /v2 stats quantiles.
	Latency   obs.Snapshot `json:"-"`
	QueueWait obs.Snapshot `json:"-"`
	Invoke    obs.Snapshot `json:"-"`
}

func (s *stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Requests:     s.requests.Load(),
		Errors:       s.errors.Load(),
		Canceled:     s.canceled.Load(),
		Batches:      s.batches.Load(),
		BatchSizeSum: s.batchSum.Load(),
		BatchSizeMax: s.batchMax.Load(),
		LatencyNsSum: s.latNsSum.Load(),
		LatencyCount: s.latCount.Load(),
		Latency:      s.latency.Snapshot(),
		QueueWait:    s.queueWait.Snapshot(),
		Invoke:       s.invoke.Snapshot(),
	}
}
