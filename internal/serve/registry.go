package serve

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"micronets/internal/arch"
	"micronets/internal/graph"
	"micronets/internal/tensor"
	"micronets/internal/tflm"
	"micronets/internal/zoo"
)

// newWeightRNG seeds the synthetic-weight stream exactly as
// micronets.Deploy does, so a served model is bit-identical to a deployed
// one at the same seed.
func newWeightRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// sortEntries orders entries by name for stable listings.
func sortEntries(es []*Entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].Name < es[j].Name })
}

// ModelOptions selects how a spec is lowered to the runtime. It mirrors
// micronets.DeployOptions (which cannot be imported here without a cycle)
// and is comparable so it can key the registry cache.
type ModelOptions struct {
	// WeightBits and ActBits select the datatype (0 or 8 for standard
	// int8; 4 for the paper's emulated sub-byte kernels).
	WeightBits, ActBits int
	// Seed controls the synthetic weights used when no trained model is
	// supplied; equal seeds lower to bit-identical models.
	Seed int64
	// AppendSoftmax adds the classifier softmax op.
	AppendSoftmax bool
}

// normalize folds the zero-value datatypes onto their defaults, mirroring
// graph.FromSpec — {0,0} and {8,8} lower to bit-identical models and must
// share one cache entry (and one pre-warmed pool).
func (o ModelOptions) normalize() ModelOptions {
	if o.WeightBits == 0 {
		o.WeightBits = 8
	}
	if o.ActBits == 0 {
		o.ActBits = 8
	}
	return o
}

// RegistryConfig configures a Registry.
type RegistryConfig struct {
	// PoolSize is the number of pre-warmed interpreters per model
	// (default 2). Each costs one arena of the model's planned size.
	PoolSize int
	// PoolMax bounds lazy pool growth under concurrent load (default:
	// PoolSize, i.e. no growth beyond the pre-warmed set).
	PoolMax int
	// MaxEntries bounds the cache (0 = unbounded, for servers with a
	// fixed model set). When exceeded, the least-recently-used completed
	// entry is evicted; in-flight lowerings are never evicted. Callers
	// still holding an evicted Entry keep using it safely — eviction only
	// drops the cache reference.
	MaxEntries int
}

// Entry is one lowered, pooled model.
type Entry struct {
	Name  string
	Spec  *arch.Spec
	Model *graph.Model
	Pool  *Pool
	// ArenaBytes is the RAM cost of one pooled interpreter (activations
	// plus engine scratch), recorded at warm-up.
	ArenaBytes int
	// WeightBytes is the RAM cost of the prepared kernel state (packed
	// panels, folded biases, prefix sums) shared by every replica of the
	// pool — paid once per entry, not per interpreter.
	WeightBytes int
	stats       stats
}

// Stats returns a snapshot of the entry's serving counters.
func (e *Entry) Stats() StatsSnapshot { return e.stats.snapshot() }

// registryKey identifies one cached lowering: the spec fingerprint (not
// just the name — a caller may rebuild a same-named spec with different
// blocks) plus the lowering options.
type registryKey struct {
	fingerprint string
	opts        ModelOptions
}

// Registry lowers each requested spec once, plans its memory once (inside
// pool warm-up), and caches the result. All methods are safe for
// concurrent use; concurrent Get calls for the same key perform one
// lowering and share the Entry.
type Registry struct {
	cfg       RegistryConfig
	mu        sync.Mutex
	entries   map[registryKey]*entrySlot
	seq       int64
	lowerings atomic.Uint64
}

// entrySlot lets concurrent Get calls for the same key block on one
// in-flight lowering instead of duplicating it.
type entrySlot struct {
	once  sync.Once
	entry *Entry
	err   error
	// done flips after once completes; only done slots are evictable.
	done atomic.Bool
	// lastUsed is a registry sequence stamp for LRU eviction.
	lastUsed int64
}

// NewRegistry returns an empty registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 2
	}
	return &Registry{cfg: cfg, entries: make(map[registryKey]*entrySlot)}
}

// Lowerings returns how many graph lowerings the registry has performed —
// repeat Gets for the same spec and options must not increase it.
func (r *Registry) Lowerings() uint64 { return r.lowerings.Load() }

// Get returns the cached entry for a zoo model, lowering and pool-warming
// it on first use.
func (r *Registry) Get(name string, opts ModelOptions) (*Entry, error) {
	e, err := zoo.Get(name)
	if err != nil {
		return nil, err
	}
	if e.Spec == nil {
		return nil, fmt.Errorf("serve: %s is a stats-only comparison point (no public architecture)", name)
	}
	return r.GetSpec(e.Spec, opts)
}

// GetSpec is Get for an arbitrary (possibly non-zoo) spec.
func (r *Registry) GetSpec(spec *arch.Spec, opts ModelOptions) (*Entry, error) {
	opts = opts.normalize()
	key := registryKey{fingerprint: fingerprint(spec), opts: opts}
	r.mu.Lock()
	r.seq++
	slot, ok := r.entries[key]
	if !ok {
		slot = &entrySlot{}
		r.entries[key] = slot
		r.evictLocked(slot)
	}
	slot.lastUsed = r.seq
	r.mu.Unlock()
	slot.once.Do(func() {
		slot.entry, slot.err = r.lower(spec, opts)
		slot.done.Store(true)
	})
	if slot.err != nil {
		// Drop the failed slot so a transient failure is retryable.
		r.mu.Lock()
		if r.entries[key] == slot {
			delete(r.entries, key)
		}
		r.mu.Unlock()
	}
	return slot.entry, slot.err
}

// evictLocked drops least-recently-used completed entries until the cache
// is back within MaxEntries. keep is the slot being inserted, never
// evicted. Called with r.mu held; the scan is O(n) with n ≤ MaxEntries+1.
func (r *Registry) evictLocked(keep *entrySlot) {
	if r.cfg.MaxEntries <= 0 {
		return
	}
	for len(r.entries) > r.cfg.MaxEntries {
		var oldestKey registryKey
		var oldest *entrySlot
		for k, s := range r.entries {
			if s == keep || !s.done.Load() {
				continue
			}
			if oldest == nil || s.lastUsed < oldest.lastUsed {
				oldest, oldestKey = s, k
			}
		}
		if oldest == nil {
			return // everything else is in flight; nothing evictable
		}
		delete(r.entries, oldestKey)
	}
}

// lower performs the expensive path: spec → graph lowering → pool warm-up
// (which plans memory and prepares kernels once per pooled interpreter).
func (r *Registry) lower(spec *arch.Spec, opts ModelOptions) (*Entry, error) {
	r.lowerings.Add(1)
	m, err := graph.FromSpec(spec, newWeightRNG(opts.Seed), graph.LowerOptions{
		WeightBits:    opts.WeightBits,
		ActBits:       opts.ActBits,
		AppendSoftmax: opts.AppendSoftmax,
	})
	if err != nil {
		return nil, err
	}
	return newEntry(spec, m, r.cfg.PoolSize, r.cfg.PoolMax)
}

// newEntry warms a pool for an already-lowered model — the shared entry
// constructor of the Registry (fixed pool sizes) and the Repository
// (budget-planned pool sizes).
func newEntry(spec *arch.Spec, m *graph.Model, prewarm, max int) (*Entry, error) {
	prep, err := tflm.Prepare(m)
	if err != nil {
		return nil, err
	}
	return newEntryPrepared(spec, m, prep, prewarm, max)
}

// newEntryPrepared is newEntry over caller-supplied prepared state, so
// the repository charges the budget with the exact weight bytes the pool
// will share.
func newEntryPrepared(spec *arch.Spec, m *graph.Model, prep *tflm.Prepared, prewarm, max int) (*Entry, error) {
	pool, err := NewPoolPrepared(prep, prewarm, max)
	if err != nil {
		return nil, err
	}
	return &Entry{
		Name: spec.Name, Spec: spec, Model: m, Pool: pool,
		ArenaBytes:  pool.ArenaBytes(),
		WeightBytes: pool.WeightBytes(),
	}, nil
}

// Preload warms the cache for a list of zoo models, so the first real
// request pays no lowering or planning latency.
func (r *Registry) Preload(names []string, opts ModelOptions) error {
	for _, n := range names {
		if _, err := r.Get(n, opts); err != nil {
			return fmt.Errorf("serve: preload %s: %w", n, err)
		}
	}
	return nil
}

// Entries returns the currently loaded entries sorted by name. In-flight
// lowerings are skipped: the done.Load gate pairs with the done.Store
// after slot.entry is written, so the read is race-free even while
// another goroutine is mid-lowering.
func (r *Registry) Entries() []*Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*Entry
	for _, s := range r.entries {
		if s.done.Load() && s.entry != nil {
			out = append(out, s.entry)
		}
	}
	sortEntries(out)
	return out
}

// fingerprint renders a spec to a deterministic string covering every
// field that affects lowering. %+v over the value (Blocks included) is
// stable for these plain structs and far cheaper than the lowering it
// guards.
func fingerprint(s *arch.Spec) string {
	return fmt.Sprintf("%s|%dx%dx%d|%d|%+v", s.Name, s.InputH, s.InputW, s.InputC, s.NumClasses, s.Blocks)
}

// ClassifyBatch runs a float input batch through one pooled interpreter of
// the entry, amortizing lowering and planning across every call that hits
// the same registry entry. It is the serving-path backend of
// micronets.ClassifyBatch.
func (e *Entry) ClassifyBatch(xs []*tensor.Tensor) ([]int, []float32, error) {
	ip := e.Pool.Get()
	defer e.Pool.Put(ip)
	classes, scores, err := ip.ClassifyBatch(xs)
	if err != nil {
		// A failed invoke may leave partial activations; scrub before the
		// interpreter goes back into circulation.
		ip.Reset()
	}
	return classes, scores, err
}
