package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"micronets/internal/servegraph"
	"micronets/internal/zoo"
)

// kwsRow builds one random KWS input row (49x10x1).
func kwsRow(rng *rand.Rand) []float64 {
	data := make([]float64, 490)
	for i := range data {
		data[i] = rng.Float64()*2 - 1
	}
	return data
}

// putGraph registers a graph spec over HTTP and returns the status code
// and decoded body.
func putGraph(t *testing.T, url, name string, spec any) (int, map[string]any) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, url+"/v2/graphs/"+name, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Non-JSON bodies (e.g. the mux's own 405 text) decode to nil.
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func deleteGraph(t *testing.T, url, name string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url+"/v2/graphs/"+name, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// graphInfer POSTs one row (or a pre-marshalled batch) through a graph.
func graphInfer(t *testing.T, url, name string, data []float64, route string) (int, map[string]any) {
	t.Helper()
	req := map[string]any{
		"inputs": []map[string]any{{"name": "input", "datatype": "FP32", "data": data}},
	}
	if route != "" {
		req["parameters"] = map[string]string{"route": route}
	}
	body, _ := json.Marshal(req)
	return postJSON(t, url+"/v2/graphs/"+name+"/infer", string(body))
}

func cascadeSpec(name string, threshold float64, models ...string) *servegraph.Spec {
	root := &servegraph.NodeSpec{Kind: servegraph.KindCascade, Name: "cascade", Threshold: threshold}
	for _, m := range models {
		root.Children = append(root.Children, &servegraph.NodeSpec{Kind: servegraph.KindModel, Model: m})
	}
	return &servegraph.Spec{Name: name, Root: root}
}

func TestGraphRegisterInferDelete(t *testing.T) {
	_, ts := newTestServer(t)

	// Threshold 0: the gate always clears it, so DSCNN-S answers every row.
	code, out := putGraph(t, ts.URL, "kws-cascade", cascadeSpec("kws-cascade", 0, "DSCNN-S", "MicroNet-KWS-S"))
	if code != 200 {
		t.Fatalf("PUT graph: %d %v", code, out)
	}
	if fmt.Sprint(out["models"]) != "[DSCNN-S MicroNet-KWS-S]" {
		t.Fatalf("registered models = %v", out["models"])
	}
	if fmt.Sprint(out["input_shape"]) != "[49 10 1]" {
		t.Fatalf("input_shape = %v", out["input_shape"])
	}

	rng := rand.New(rand.NewSource(3))
	code, resp := graphInfer(t, ts.URL, "kws-cascade", kwsRow(rng), "")
	if code != 200 {
		t.Fatalf("graph infer: %d %v", code, resp)
	}
	served := resp["served_by"].([]any)
	if len(served) != 1 || served[0] != "DSCNN-S" {
		t.Fatalf("served_by = %v, want [DSCNN-S] (threshold 0 gate)", served)
	}
	if esc := resp["escalations"].([]any); esc[0].(float64) != 0 {
		t.Fatalf("escalations = %v, want 0", esc)
	}

	// GET returns the spec and live stats.
	got := getJSON(t, ts.URL+"/v2/graphs/kws-cascade", 200)
	stats := got["stats"].(map[string]any)
	if stats["requests"].(float64) != 1 {
		t.Fatalf("stats.requests = %v, want 1", stats["requests"])
	}
	list := getJSON(t, ts.URL+"/v2/graphs", 200)
	if graphs := list["graphs"].([]any); len(graphs) != 1 {
		t.Fatalf("graph list = %v, want 1 entry", graphs)
	}

	if code := deleteGraph(t, ts.URL, "kws-cascade"); code != 200 {
		t.Fatalf("DELETE graph: %d", code)
	}
	getJSON(t, ts.URL+"/v2/graphs/kws-cascade", 404)
	if code := deleteGraph(t, ts.URL, "kws-cascade"); code != 404 {
		t.Fatalf("second DELETE: %d, want 404", code)
	}
}

func TestGraphCascadeEscalatesAtImpossibleThreshold(t *testing.T) {
	_, ts := newTestServer(t)
	// Threshold 1.0 can never be reached by a quantized softmax (max
	// dequantized probability is 255/256), so every request escalates to
	// the final stage.
	code, out := putGraph(t, ts.URL, "cas-hi", cascadeSpec("cas-hi", 1.0, "DSCNN-S", "MicroNet-KWS-S"))
	if code != 200 {
		t.Fatalf("PUT graph: %d %v", code, out)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3; i++ {
		code, resp := graphInfer(t, ts.URL, "cas-hi", kwsRow(rng), "")
		if code != 200 {
			t.Fatalf("graph infer: %d %v", code, resp)
		}
		if served := resp["served_by"].([]any); served[0] != "MicroNet-KWS-S" {
			t.Fatalf("served_by = %v, want the final stage", served)
		}
		if esc := resp["escalations"].([]any); esc[0].(float64) != 1 {
			t.Fatalf("escalations = %v, want 1", esc)
		}
	}
	got := getJSON(t, ts.URL+"/v2/graphs/cas-hi", 200)
	for _, n := range got["stats"].(map[string]any)["nodes"].([]any) {
		node := n.(map[string]any)
		if node["kind"] == "cascade" {
			if node["escalations"].(float64) != 3 || node["gate_hits"] != nil {
				t.Fatalf("cascade node counters = %v, want 3 escalations, 0 gate hits", node)
			}
		}
	}
}

func TestGraphValidationOverHTTP(t *testing.T) {
	_, ts := newTestServer(t)

	// Dangling model reference → structured 404 with the model named.
	code, out := putGraph(t, ts.URL, "bad", cascadeSpec("bad", 0.5, "DSCNN-S", "NoSuchModel"))
	if code != 404 {
		t.Fatalf("dangling ref: %d %v, want 404", code, out)
	}
	if out["code"] != "unknown_model" || out["model"] != "NoSuchModel" {
		t.Fatalf("dangling ref body = %v", out)
	}

	// Invalid structure → 400.
	code, out = putGraph(t, ts.URL, "bad", map[string]any{
		"name": "bad", "root": map[string]any{"kind": "cascade"},
	})
	if code != 400 || out["code"] != "invalid_graph" {
		t.Fatalf("childless cascade: %d %v, want 400 invalid_graph", code, out)
	}

	// Name mismatch between URL and spec body → 400.
	code, out = putGraph(t, ts.URL, "bad", cascadeSpec("other-name", 0.5, "DSCNN-S", "MicroNet-KWS-S"))
	if code != 400 {
		t.Fatalf("name mismatch: %d %v, want 400", code, out)
	}

	// Version pin that doesn't match the serving version → 400.
	code, out = putGraph(t, ts.URL, "bad", &servegraph.Spec{Name: "bad", Root: &servegraph.NodeSpec{
		Kind: servegraph.KindModel, Model: "DSCNN-S", Version: 99,
	}})
	if code != 400 || out["code"] != "version_mismatch" {
		t.Fatalf("version pin: %d %v, want 400 version_mismatch", code, out)
	}

	// Infer through an unregistered graph → 404.
	code, out = graphInfer(t, ts.URL, "never-registered", make([]float64, 490), "")
	if code != 404 || out["code"] != "unknown_graph" {
		t.Fatalf("unknown graph infer: %d %v", code, out)
	}

	// Wrong input size → 400.
	if code, out := putGraph(t, ts.URL, "ok", cascadeSpec("ok", 0.5, "DSCNN-S", "MicroNet-KWS-S")); code != 200 {
		t.Fatalf("PUT ok graph: %d %v", code, out)
	}
	code, _ = graphInfer(t, ts.URL, "ok", make([]float64, 10), "")
	if code != 400 {
		t.Fatalf("short input: %d, want 400", code)
	}
}

func TestGraphGuardsUnloadOfReferencedModel(t *testing.T) {
	_, ts := newTestServer(t)
	if code, out := putGraph(t, ts.URL, "guard", cascadeSpec("guard", 0.7, "DSCNN-S", "MicroNet-KWS-S")); code != 200 {
		t.Fatalf("PUT graph: %d %v", code, out)
	}

	code, out := postJSON(t, ts.URL+"/v2/repository/models/DSCNN-S/unload", "")
	if code != 409 {
		t.Fatalf("unload referenced model: %d %v, want 409", code, out)
	}
	if out["code"] != "model_referenced" || fmt.Sprint(out["graphs"]) != "[guard]" {
		t.Fatalf("409 body = %v", out)
	}

	// The model still serves.
	rng := rand.New(rand.NewSource(5))
	inferOnce(t, ts.URL, "DSCNN-S", kwsRow(rng))

	// Delete the graph, then the unload goes through.
	if code := deleteGraph(t, ts.URL, "guard"); code != 200 {
		t.Fatalf("DELETE graph: %d", code)
	}
	code, out = postJSON(t, ts.URL+"/v2/repository/models/DSCNN-S/unload", "")
	if code != 200 {
		t.Fatalf("unload after delete: %d %v, want 200", code, out)
	}
}

func TestGraphSplitterAndSwitchOverHTTP(t *testing.T) {
	_, ts := newTestServer(t)
	spec := &servegraph.Spec{Name: "canary", Seed: 11, Root: &servegraph.NodeSpec{
		Kind: servegraph.KindSplitter,
		Children: []*servegraph.NodeSpec{
			{Kind: servegraph.KindModel, Model: "MicroNet-KWS-S", Name: "stable", Weight: 3},
			{Kind: servegraph.KindModel, Model: "DSCNN-S", Name: "canary", Weight: 1},
		},
	}}
	if code, out := putGraph(t, ts.URL, "canary", spec); code != 200 {
		t.Fatalf("PUT splitter: %d %v", code, out)
	}
	rng := rand.New(rand.NewSource(6))
	row := kwsRow(rng)
	for i := 0; i < 16; i++ {
		if code, resp := graphInfer(t, ts.URL, "canary", row, ""); code != 200 {
			t.Fatalf("splitter infer: %d %v", code, resp)
		}
	}
	got := getJSON(t, ts.URL+"/v2/graphs/canary", 200)
	var picks float64
	for _, n := range got["stats"].(map[string]any)["nodes"].([]any) {
		node := n.(map[string]any)
		if p, ok := node["picks"].(float64); ok {
			picks += p
		}
	}
	if picks != 16 {
		t.Fatalf("splitter picks sum %v, want 16", picks)
	}

	sw := &servegraph.Spec{Name: "ab", Root: &servegraph.NodeSpec{
		Kind: servegraph.KindSwitch,
		Children: []*servegraph.NodeSpec{
			{Kind: servegraph.KindModel, Model: "DSCNN-S", When: "fast"},
			{Kind: servegraph.KindModel, Model: "MicroNet-KWS-S"},
		},
	}}
	if code, out := putGraph(t, ts.URL, "ab", sw); code != 200 {
		t.Fatalf("PUT switch: %d %v", code, out)
	}
	code, resp := graphInfer(t, ts.URL, "ab", row, "fast")
	if code != 200 || resp["served_by"].([]any)[0] != "DSCNN-S" {
		t.Fatalf("route=fast: %d %v", code, resp)
	}
	code, resp = graphInfer(t, ts.URL, "ab", row, "")
	if code != 200 || resp["served_by"].([]any)[0] != "MicroNet-KWS-S" {
		t.Fatalf("default route: %d %v", code, resp)
	}
}

func TestGraphMetricsExposed(t *testing.T) {
	_, ts := newTestServer(t)
	if code, out := putGraph(t, ts.URL, "m", cascadeSpec("m", 0, "DSCNN-S", "MicroNet-KWS-S")); code != 200 {
		t.Fatalf("PUT graph: %d %v", code, out)
	}
	rng := rand.New(rand.NewSource(8))
	if code, resp := graphInfer(t, ts.URL, "m", kwsRow(rng), ""); code != 200 {
		t.Fatalf("infer: %d %v", code, resp)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"micronets_graphs_registered 1",
		`micronets_graph_requests_total{graph="m"} 1`,
		`micronets_graph_gate_hits_total{graph="m",node="cascade"} 1`,
		`micronets_graph_escalations_total{graph="m",node="cascade"} 0`,
		`micronets_graph_node_requests_total{graph="m",node="root.0"} 1`,
		`micronets_graph_request_latency_seconds_count{graph="m"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestGraphAdminDisabled(t *testing.T) {
	s, err := New(Config{
		Models:       []string{"DSCNN-S"},
		Options:      ModelOptions{Seed: 42, AppendSoftmax: true},
		Batch:        BatcherConfig{MaxBatch: 4, MaxDelay: time.Millisecond},
		DisableAdmin: true,
		Logger:       discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	code, _ := putGraph(t, ts.URL, "x", cascadeSpec("x", 0.5, "DSCNN-S"))
	if code != http.StatusMethodNotAllowed && code != http.StatusNotFound {
		t.Fatalf("PUT with admin disabled: %d, want 404/405", code)
	}
	// The read-only surface stays up.
	getJSON(t, ts.URL+"/v2/graphs", 200)
}

// TestGraphInferSurvivesConcurrentLifecycle is the -race storm: graph
// infers run while the referenced model is swapped (blue/green) and an
// unrelated model is unloaded. Every infer must either succeed or fail
// with a structured error — no panics, no races, no torn state.
func TestGraphInferSurvivesConcurrentLifecycle(t *testing.T) {
	s, ts := newTestServer(t)
	if code, out := putGraph(t, ts.URL, "storm", cascadeSpec("storm", 0.7, "DSCNN-S", "MicroNet-KWS-S")); code != 200 {
		t.Fatalf("PUT graph: %d %v", code, out)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Infer workers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, resp := graphInfer(t, ts.URL, "storm", kwsRow(rng), "")
				if code != 200 && code != 409 && code != 503 {
					t.Errorf("storm infer: unexpected status %d: %v", code, resp)
					return
				}
			}
		}(int64(w + 100))
	}

	// Swapper: blue/green re-loads of the gate model with a different
	// seed so each load is a genuinely new version.
	wg.Add(1)
	go func() {
		defer wg.Done()
		e, err := zoo.Get("DSCNN-S")
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			opts := ModelOptions{Seed: int64(1000 + i), AppendSoftmax: true}
			if _, err := s.Repository().Load(e.Spec, opts); err != nil {
				t.Errorf("storm swap: %v", err)
				return
			}
		}
	}()

	// Re-register the graph concurrently too: revision bumps must never
	// fail in-flight requests routed through the old compiled tree.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if code, out := putGraph(t, ts.URL, "storm", cascadeSpec("storm", 0.7, "DSCNN-S", "MicroNet-KWS-S")); code != 200 {
				t.Errorf("storm re-register: %d %v", code, out)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The unload guard still holds after the storm.
	if code, out := postJSON(t, ts.URL+"/v2/repository/models/MicroNet-KWS-S/unload", ""); code != 409 {
		t.Fatalf("post-storm unload: %d %v, want 409", code, out)
	}
}
