package serve

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestEntry(t *testing.T, poolSize int) *Entry {
	t.Helper()
	reg := NewRegistry(RegistryConfig{PoolSize: poolSize})
	entry, err := reg.Get("MicroNet-KWS-S", ModelOptions{Seed: 42, AppendSoftmax: true})
	if err != nil {
		t.Fatal(err)
	}
	return entry
}

func validInput(e *Entry) []int8 {
	return make([]int8, e.Model.Tensors[e.Model.Input].Elems())
}

// TestBatcherCoalescesConcurrentRequests is the acceptance-criterion load
// test: N concurrent submits must land in strictly fewer InvokeBatch
// calls, with at least one batch of ≥ 2.
func TestBatcherCoalescesConcurrentRequests(t *testing.T) {
	entry := newTestEntry(t, 1)
	b := NewBatcher(entry, BatcherConfig{MaxBatch: 8, MaxDelay: 25 * time.Millisecond})
	defer b.Close()

	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Submit(context.Background(), validInput(entry))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	st := entry.Stats()
	if st.Requests != n {
		t.Fatalf("requests = %d, want %d", st.Requests, n)
	}
	if st.BatchSizeMax < 2 {
		t.Fatalf("micro-batcher never coalesced: max batch %d, want >= 2", st.BatchSizeMax)
	}
	if st.Batches >= n {
		t.Fatalf("batches = %d for %d requests: no coalescing", st.Batches, n)
	}
	t.Logf("coalesced %d requests into %d batches (max %d)", st.Requests, st.Batches, st.BatchSizeMax)
}

// TestBatcherAdaptiveWindow: singleton traffic shrinks the gather window;
// a full batch restores it to MaxDelay.
func TestBatcherAdaptiveWindow(t *testing.T) {
	entry := newTestEntry(t, 2)
	const maxDelay = 8 * time.Millisecond
	b := NewBatcher(entry, BatcherConfig{MaxBatch: 4, MaxDelay: maxDelay})
	defer b.Close()

	for i := 0; i < 4; i++ {
		if _, err := b.Submit(context.Background(), validInput(entry)); err != nil {
			t.Fatal(err)
		}
	}
	if w := b.Window(); w >= maxDelay {
		t.Fatalf("window after sparse traffic = %v, want < %v", w, maxDelay)
	}
	if w := b.Window(); w < maxDelay/8 {
		t.Fatalf("window shrank below floor: %v < %v", w, maxDelay/8)
	}

	// Saturate: a full batch must reset the window to MaxDelay.
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = b.Submit(context.Background(), validInput(entry))
		}()
	}
	wg.Wait()
	if entry.Stats().BatchSizeMax >= 4 {
		if w := b.Window(); w != maxDelay {
			t.Fatalf("window after full batch = %v, want %v", w, maxDelay)
		}
	}
}

// TestBatcherRejectsWrongLengthWithoutPoisoningBatch: a malformed request
// fails fast and a concurrent valid one still succeeds.
func TestBatcherRejectsWrongLengthWithoutPoisoningBatch(t *testing.T) {
	entry := newTestEntry(t, 1)
	b := NewBatcher(entry, BatcherConfig{MaxBatch: 8, MaxDelay: 10 * time.Millisecond})
	defer b.Close()

	var wg sync.WaitGroup
	var goodErr, badErr error
	wg.Add(2)
	go func() { defer wg.Done(); _, goodErr = b.Submit(context.Background(), validInput(entry)) }()
	go func() { defer wg.Done(); _, badErr = b.Submit(context.Background(), make([]int8, 3)) }()
	wg.Wait()
	if goodErr != nil {
		t.Fatalf("valid request failed alongside malformed one: %v", goodErr)
	}
	if badErr == nil || !strings.Contains(badErr.Error(), "3 elements") {
		t.Fatalf("malformed request: err = %v", badErr)
	}
}

// TestBatcherParallelFlushes: with a pool of 2 the collector dispatches
// batches concurrently instead of serializing on one interpreter; every
// request still completes exactly once (Close waits for in-flight
// flushes, so lost replies would hang or fail this test).
func TestBatcherParallelFlushes(t *testing.T) {
	entry := newTestEntry(t, 2)
	b := NewBatcher(entry, BatcherConfig{MaxBatch: 2, MaxDelay: time.Millisecond})

	const n = 12
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Submit(context.Background(), validInput(entry))
		}(i)
	}
	wg.Wait()
	b.Close()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if st := entry.Stats(); st.Requests != n {
		t.Fatalf("requests = %d, want %d", st.Requests, n)
	}
}

func TestBatcherSubmitAfterClose(t *testing.T) {
	entry := newTestEntry(t, 1)
	b := NewBatcher(entry, BatcherConfig{})
	b.Close()
	b.Close() // idempotent
	if _, err := b.Submit(context.Background(), validInput(entry)); err != ErrDraining {
		t.Fatalf("submit after close: err = %v, want ErrDraining", err)
	}
}

// TestBatcherCanceledCountedSeparately: a caller abandoning its request
// mid-gather is a cancellation, not a model error — the errors counter
// must stay untouched so the /metrics error rate keeps meaning "inference
// failed".
func TestBatcherCanceledCountedSeparately(t *testing.T) {
	entry := newTestEntry(t, 1)
	// MaxBatch 8 with a long window: a lone request sits in the gather
	// phase long enough for the caller to walk away.
	b := NewBatcher(entry, BatcherConfig{MaxBatch: 8, MaxDelay: time.Second})
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := b.Submit(ctx, validInput(entry))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request enter the gather window
	cancel()
	select {
	case err := <-errCh:
		if err != context.Canceled {
			t.Fatalf("abandoned Submit returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Submit did not observe cancellation")
	}
	st := entry.Stats()
	if st.Canceled != 1 {
		t.Fatalf("canceled = %d, want 1", st.Canceled)
	}
	if st.Errors != 0 {
		t.Fatalf("errors = %d after a pure cancellation, want 0", st.Errors)
	}
}

// TestBatcherSubmitAllocBound pins the steady-state allocation cost of the
// whole Submit→response round trip to a fixed object count — independent
// of tensor sizes, because the flush path writes into each request's
// pre-allocated buffer instead of allocating outputs per row.
func TestBatcherSubmitAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	entry := newTestEntry(t, 1)
	b := NewBatcher(entry, BatcherConfig{MaxBatch: 1, MaxDelay: time.Millisecond})
	defer b.Close()

	in := validInput(entry)
	ctx := context.Background()
	if _, err := b.Submit(ctx, in); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := b.Submit(ctx, in); err != nil {
			t.Error(err)
		}
	})
	// The budget covers the request struct, its response buffer and
	// channel, plus the collector's batch slice, the flush goroutine and
	// its two batch-wide slices. Anything scaling with tensor elements
	// or allocating per row would blow well past it.
	const maxAllocs = 16
	if avg > maxAllocs {
		t.Fatalf("Submit round trip allocates %.1f objects/op, want <= %d", avg, maxAllocs)
	}
}

func TestBatcherSubmitCancelledContext(t *testing.T) {
	entry := newTestEntry(t, 1)
	b := NewBatcher(entry, BatcherConfig{MaxBatch: 2, MaxDelay: time.Millisecond})
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Either the send or the wait observes cancellation; both are valid,
	// but a non-nil result with a cancelled context must never hang.
	done := make(chan struct{})
	go func() {
		_, _ = b.Submit(ctx, validInput(entry))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Submit hung on cancelled context")
	}
}
