package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"micronets/internal/arch"
	"micronets/internal/graph"
	"micronets/internal/tflm"
	"micronets/internal/zoo"
)

// Repository is the serving control plane: it owns the lifecycle of every
// served model as a sequence of versions, each one a fully warmed
// entry (lowered graph + interpreter pool) plus its micro-batcher.
//
// Lifecycle semantics, in the KServe/Triton model-repository style:
//
//   - Load lowers a spec, plans its capacity against the RAM budget, warms
//     a pool, and publishes the result as a new version of the name. If an
//     older version was serving, the swap is blue/green: the new version
//     must be READY before it becomes visible, and the old one keeps
//     serving its in-flight requests while DRAINING, releasing its budget
//     reservation only once they finish.
//   - Loading the exact same spec fingerprint + options again is an
//     idempotent no-op: the active version is returned unchanged.
//   - Unload drains the active version and drops the name.
//
// Capacity is budget-driven rather than fixed: each load picks the
// largest micro-batch whose tflm.PlanMemoryBatch arena fits the remaining
// budget, then as many pooled replicas as still fit (both capped at the
// configured desires). A load that cannot fit even one batch-1 replica is
// rejected with a structured *BudgetError instead of OOMing at serve time
// — the host-side emulation of deploying onto a device class with that
// much SRAM.
//
// Because a swap is make-before-break, BOTH versions hold their arena
// reservations during the drain window: hot-swapping a model therefore
// needs its new arena to fit next to the old one (transient 2× for a
// same-size respin). A model too large for that can still be redeployed
// break-before-make — Unload, wait for the index row to disappear, then
// Load — at the cost of 404s in between; the budget never lies about
// what the emulated device could actually hold.
type Repository struct {
	cfg RepositoryConfig

	mu      sync.Mutex
	models  map[string]*repoModel // guarded by Repository.mu
	planned int                   // bytes reserved by live (loading+active+draining) versions; guarded by Repository.mu
	closed  bool                  // guarded by Repository.mu

	// unloadGuard, when set, can veto an Unload (e.g. the graph registry
	// vetoes unloading a model a registered graph references).
	guardMu     sync.RWMutex
	unloadGuard func(model string) error // guarded by Repository.guardMu

	closeOnce sync.Once
	lowerings atomic.Uint64
}

// SetUnloadGuard installs (or clears, with nil) a hook consulted at the
// top of every Unload: a non-nil error vetoes the unload and is returned
// to the caller verbatim. The server wires the inference-graph registry
// through this so a model referenced by a registered graph answers 409
// instead of being dropped out from under the graph. Swaps (re-Load of
// the same name) are intentionally not guarded — graphs bind names, not
// versions.
func (r *Repository) SetUnloadGuard(guard func(model string) error) {
	r.guardMu.Lock()
	r.unloadGuard = guard
	r.guardMu.Unlock()
}

// RepositoryConfig configures a Repository.
type RepositoryConfig struct {
	// RAMBudgetBytes bounds the summed planned arena bytes of every live
	// version (0 = unbudgeted). Set it to a device-class SRAM size (e.g.
	// 320 KB for the paper's medium MCU) to emulate that deployment target.
	RAMBudgetBytes int
	// PoolSize is the desired interpreter replicas per model (default 2).
	// Under a budget the actual pool may be smaller — never larger.
	PoolSize int
	// Batch is the desired micro-batching window; under a budget a
	// version's MaxBatch may be scaled down — never up.
	Batch BatcherConfig
	// Options is the default lowering for LoadZoo/LoadSpecFile/WatchSpecs.
	Options ModelOptions
	// Logger receives lifecycle events (default slog.Default).
	Logger *slog.Logger
}

// ModelState is the lifecycle state of one model version.
type ModelState string

const (
	// StateLoading marks a version whose budget is reserved but whose pool
	// is still warming. It is never served.
	StateLoading ModelState = "LOADING"
	// StateReady marks the version currently serving the name.
	StateReady ModelState = "READY"
	// StateDraining marks a replaced or unloaded version finishing its
	// in-flight requests; its budget reservation is still held.
	StateDraining ModelState = "DRAINING"
	// StateUnloaded marks a fully retired version (terminal).
	StateUnloaded ModelState = "UNLOADED"
)

// ModelStatus is a point-in-time snapshot of one version, the row format
// of the /v2/repository/index admin endpoint.
type ModelStatus struct {
	Name    string     `json:"name"`
	Version int        `json:"version"`
	State   ModelState `json:"state"`
	Task    string     `json:"task,omitempty"`
	// PoolSize and MaxBatch are the budget-planned serving capacity.
	PoolSize int `json:"pool_size"`
	MaxBatch int `json:"max_batch"`
	// ArenaBytesPerReplica is tflm.PlanMemoryBatch(model, MaxBatch) arena
	// bytes — what one pooled replica adds in device RAM on top of the
	// shared weights.
	ArenaBytesPerReplica int `json:"arena_bytes_per_replica"`
	// SharedWeightBytes is the prepared kernel state (packed weight
	// panels, folded biases, prefix sums) shared read-only by every
	// replica — counted once per version, independent of PoolSize.
	SharedWeightBytes int `json:"shared_weight_bytes"`
	// PlannedRAMBytes = SharedWeightBytes + PoolSize × ArenaBytesPerReplica,
	// the version's reservation against the repository budget.
	PlannedRAMBytes int `json:"planned_ram_bytes"`
	// FlashBytes is the model's weights+graph flash footprint.
	FlashBytes int       `json:"flash_bytes"`
	LoadedAt   time.Time `json:"loaded_at,omitzero"`
}

// BudgetError rejects a load whose smallest configuration (one replica at
// batch 1) does not fit the remaining RAM budget. The admin API renders
// it as a structured 409.
type BudgetError struct {
	Model string
	// NeededBytes is the shared prepared weights plus the batch-1
	// single-replica arena — the minimum the load would reserve.
	NeededBytes int
	// BudgetBytes and PlannedBytes are the repository budget and what live
	// versions have already reserved against it.
	BudgetBytes  int
	PlannedBytes int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("serve: loading %s needs %d arena bytes but only %d of the %d-byte RAM budget is free",
		e.Model, e.NeededBytes, e.BudgetBytes-e.PlannedBytes, e.BudgetBytes)
}

// NotLoadedError reports an operation on a name with no serving version;
// the HTTP layer renders it as 404.
type NotLoadedError struct{ Model string }

func (e *NotLoadedError) Error() string {
	return fmt.Sprintf("serve: model %q not loaded", e.Model)
}

// ErrRepositoryClosed rejects loads after Close.
var ErrRepositoryClosed = errors.New("serve: repository closed")

// errStaleModel restarts a load whose per-name slot was deleted (by a
// concurrent unload completing) between lookup and reservation.
var errStaleModel = errors.New("serve: stale model slot")

// version is one lifecycle of a name. Immutable after publication except
// for state, which Repository.mu guards.
type version struct {
	name string
	num  int
	key  registryKey // fingerprint + options identity (drives idempotence)
	task string

	entry   *Entry
	batcher *Batcher

	poolSize        int
	maxBatch        int
	perReplicaArena int
	weightBytes     int
	plannedBytes    int
	flashBytes      int
	loadedAt        time.Time

	state ModelState // guarded by Repository.mu
	// inflight counts requests that acquired this version; retirement
	// waits for it so a draining version finishes everything it was
	// handed before its batcher closes.
	inflight sync.WaitGroup
	// drained closes when the version is fully retired.
	drained chan struct{}
}

// repoModel is the per-name slot: one active version plus transients.
type repoModel struct {
	// loadMu serializes Load/Unload for the name; the data path never
	// takes it.
	loadMu   sync.Mutex
	active   *version   // guarded by Repository.mu
	loading  *version   // guarded by Repository.mu
	draining []*version // guarded by Repository.mu
	nextNum  int        // guarded by Repository.mu
}

// NewRepository returns an empty repository.
func NewRepository(cfg RepositoryConfig) *Repository {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 2
	}
	cfg.Batch.fill()
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	return &Repository{cfg: cfg, models: make(map[string]*repoModel)}
}

// Lowerings returns how many graph lowerings the repository has performed;
// idempotent re-loads must not increase it.
func (r *Repository) Lowerings() uint64 { return r.lowerings.Load() }

// RAMBudgetBytes returns the configured budget (0 = unbudgeted).
func (r *Repository) RAMBudgetBytes() int { return r.cfg.RAMBudgetBytes }

// PlannedRAMBytes returns the bytes currently reserved by live versions.
func (r *Repository) PlannedRAMBytes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.planned
}

// FreeRAMBytes returns budget − planned: the bytes a new load could still
// reserve. Unbudgeted repositories return -1 (unbounded), never a
// negative difference — the fleet placer treats any negative value as
// "no budget pressure here".
func (r *Repository) FreeRAMBytes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cfg.RAMBudgetBytes <= 0 {
		return -1
	}
	return r.cfg.RAMBudgetBytes - r.planned
}

// Load publishes spec as the serving version of spec.Name: lower, plan
// capacity against the budget, warm the pool, then blue/green swap. It
// returns the new (or, for an identical re-load, the existing) version's
// status. Loads for distinct names proceed in parallel; loads for one
// name serialize (single-flight: a concurrent identical load waits and
// returns the winner's version without re-lowering).
func (r *Repository) Load(spec *arch.Spec, opts ModelOptions) (ModelStatus, error) {
	return r.load(spec, opts, false)
}

func (r *Repository) load(spec *arch.Spec, opts ModelOptions, requireExisting bool) (ModelStatus, error) {
	if spec == nil || spec.Name == "" {
		return ModelStatus{}, errors.New("serve: load needs a named spec")
	}
	opts = opts.normalize()
	key := registryKey{fingerprint: fingerprint(spec), opts: opts}
	name := spec.Name

	// The lowering, prepared weights, and capacity candidates depend only
	// on spec+opts, so a stale-slot retry (the per-name slot deleted by a
	// completing unload mid-load) reuses them instead of re-lowering.
	var gm *graph.Model
	var prep *tflm.Prepared
	var costs []batchCost
	for {
		m := r.modelFor(name)
		m.loadMu.Lock()
		// Idempotent fast path, under the per-name lock so concurrent
		// identical loads single-flight: the loser blocks on loadMu and
		// finds the winner's version here instead of re-lowering.
		r.mu.Lock()
		switch {
		case r.closed:
			r.mu.Unlock()
			m.loadMu.Unlock()
			return ModelStatus{}, ErrRepositoryClosed
		case r.models[name] != m:
			r.mu.Unlock()
			m.loadMu.Unlock()
			continue // the slot was deleted under us; re-resolve it
		case m.active != nil && m.active.key == key:
			st := statusLocked(m.active)
			r.mu.Unlock()
			m.loadMu.Unlock()
			return st, nil
		case requireExisting && m.active == nil:
			r.mu.Unlock()
			m.loadMu.Unlock()
			return ModelStatus{}, &NotLoadedError{Model: name}
		}
		r.mu.Unlock()

		// The expensive part runs under loadMu only: the data path and
		// other names stay unblocked while this name lowers and plans.
		if gm == nil {
			r.lowerings.Add(1)
			var err error
			gm, err = graph.FromSpec(spec, newWeightRNG(opts.Seed), graph.LowerOptions{
				WeightBits:    opts.WeightBits,
				ActBits:       opts.ActBits,
				AppendSoftmax: opts.AppendSoftmax,
			})
			if err != nil {
				m.loadMu.Unlock()
				return ModelStatus{}, fmt.Errorf("serve: load %s: %w", name, err)
			}
			// Prepare once: the packed weights are shared by every replica
			// of the version, and their size feeds the budget reservation.
			prep, err = tflm.Prepare(gm)
			if err != nil {
				m.loadMu.Unlock()
				return ModelStatus{}, fmt.Errorf("serve: load %s: %w", name, err)
			}
			costs, err = batchCosts(gm, r.cfg.Batch.MaxBatch)
			if err != nil {
				m.loadMu.Unlock()
				return ModelStatus{}, fmt.Errorf("serve: load %s: %w", name, err)
			}
		}

		v, st, err := r.reserve(name, m, key, spec.Task, gm, prep.WeightBytes(), costs)
		if errors.Is(err, errStaleModel) {
			m.loadMu.Unlock()
			continue // the slot was deleted under us; re-resolve it
		}
		if err != nil {
			m.loadMu.Unlock()
			return ModelStatus{}, err
		}
		if v == nil {
			m.loadMu.Unlock()
			return st, nil // idempotent hit inside the reservation
		}

		entry, err := newEntryPrepared(spec, gm, prep, v.poolSize, v.poolSize)
		if err != nil {
			r.release(name, m, v)
			m.loadMu.Unlock()
			return ModelStatus{}, fmt.Errorf("serve: load %s: %w", name, err)
		}
		v.entry = entry
		v.batcher = NewBatcher(entry, BatcherConfig{MaxBatch: v.maxBatch, MaxDelay: r.cfg.Batch.MaxDelay, Logger: r.cfg.Logger})

		// Blue/green swap: publish only the fully warmed version, retire
		// the one it replaces.
		r.mu.Lock()
		v.loadedAt = time.Now()
		if r.closed {
			r.mu.Unlock()
			v.batcher.Close()
			r.release(name, m, v)
			m.loadMu.Unlock()
			return ModelStatus{}, ErrRepositoryClosed
		}
		old := m.active
		m.active = v
		m.loading = nil
		v.state = StateReady
		if old != nil {
			old.state = StateDraining
			m.draining = append(m.draining, old)
		}
		st = statusLocked(v)
		r.mu.Unlock()
		if old != nil {
			go r.retire(name, m, old)
		}
		m.loadMu.Unlock()
		r.cfg.Logger.Info("model loaded", "model", name, "version", v.num,
			"pool_size", v.poolSize, "max_batch", v.maxBatch,
			"planned_ram_bytes", v.plannedBytes, "swapped", old != nil)
		return st, nil
	}
}

// Swap is Load restricted to names that are already serving — the
// explicit redeploy verb of the public API. The existence check is
// atomic with the load (both under the per-name lock), so a concurrent
// Unload cannot turn a Swap into a fresh load.
func (r *Repository) Swap(spec *arch.Spec, opts ModelOptions) (ModelStatus, error) {
	return r.load(spec, opts, true)
}

// LoadZoo loads a catalogue (or runtime-registered) model by name with
// the repository's default options overridden by opts.
func (r *Repository) LoadZoo(name string, opts ModelOptions) (ModelStatus, error) {
	e, err := zoo.Get(name)
	if err != nil {
		return ModelStatus{}, err
	}
	if e.Spec == nil {
		return ModelStatus{}, fmt.Errorf("serve: %s is a stats-only comparison point (no public architecture)", name)
	}
	return r.Load(e.Spec, opts)
}

// LoadSpecFile registers every spec of a cmd/search export into the zoo
// and loads each one — the restartless version of `cmd/serve -specs`.
// One spec failing (a built-in name collision, an over-budget rejection)
// does not stop the rest of the file: every spec is attempted, the
// loaded statuses are returned, and the per-spec failures come back
// joined into one error. Only an unreadable or unparseable file fails as
// a whole.
func (r *Repository) LoadSpecFile(path string, opts ModelOptions) ([]ModelStatus, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	f, err := zoo.ReadSpecFile(fh)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	statuses := make([]ModelStatus, 0, len(f.Specs))
	var errs []error
	for _, sp := range f.Specs {
		e := &zoo.Entry{Name: sp.Name, Task: sp.Task, Spec: sp, Notes: f.Notes[sp.Name]}
		if err := zoo.Register(e); err != nil {
			errs = append(errs, fmt.Errorf("serve: %s (from %s): %w", sp.Name, path, err))
			continue
		}
		st, err := r.Load(sp, opts)
		if err != nil {
			errs = append(errs, fmt.Errorf("serve: %s (from %s): %w", sp.Name, path, err))
			continue
		}
		statuses = append(statuses, st)
	}
	return statuses, errors.Join(errs...)
}

// Unload drains the active version of a name and retires it. The call
// returns as soon as the version is DRAINING; in-flight requests finish
// before its arenas are released.
func (r *Repository) Unload(name string) error {
	r.mu.Lock()
	m := r.models[name]
	r.mu.Unlock()
	if m == nil {
		return &NotLoadedError{Model: name}
	}
	r.guardMu.RLock()
	guard := r.unloadGuard
	r.guardMu.RUnlock()
	if guard != nil {
		if err := guard(name); err != nil {
			return err
		}
	}
	m.loadMu.Lock()
	defer m.loadMu.Unlock()
	r.mu.Lock()
	v := m.active
	if v == nil {
		r.mu.Unlock()
		return &NotLoadedError{Model: name}
	}
	m.active = nil
	v.state = StateDraining
	m.draining = append(m.draining, v)
	r.mu.Unlock()
	go r.retire(name, m, v)
	r.cfg.Logger.Info("model unloading", "model", name, "version", v.num)
	return nil
}

// Index returns a status row for every live version — active, still
// warming, and draining — sorted by name then newest version first. This
// is the payload of GET /v2/repository/index.
func (r *Repository) Index() []ModelStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []ModelStatus
	for _, m := range r.models {
		if m.loading != nil {
			out = append(out, statusLocked(m.loading))
		}
		if m.active != nil {
			out = append(out, statusLocked(m.active))
		}
		for _, d := range m.draining {
			out = append(out, statusLocked(d))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version > out[j].Version
	})
	return out
}

// Infer runs one quantized input row through the serving version of a
// name. The version is pinned for the duration of the call, so a
// concurrent swap or unload drains only after the row is answered.
func (r *Repository) Infer(ctx context.Context, name string, row []int8) ([]int8, error) {
	v, release, err := r.acquire(name)
	if err != nil {
		return nil, err
	}
	defer release()
	return v.batcher.Submit(ctx, row)
}

// Close drains every version and rejects further loads. It blocks until
// all in-flight work has finished.
func (r *Repository) Close() {
	r.closeOnce.Do(func() {
		r.mu.Lock()
		r.closed = true
		var draining []*version
		for name, m := range r.models {
			if v := m.active; v != nil {
				m.active = nil
				v.state = StateDraining
				m.draining = append(m.draining, v)
				go r.retire(name, m, v)
			}
			draining = append(draining, m.draining...)
		}
		r.mu.Unlock()
		for _, v := range draining {
			<-v.drained
		}
	})
}

// WatchSpecs polls spec files — or directories of *.json spec files — and
// hot-loads every spec whose file appears or changes, making `cmd/search
// -export` output servable with zero restarts. Blocks until ctx is done;
// run it in a goroutine. Load failures (including budget rejections) are
// never fatal: the file is retried on every tick until it loads fully —
// so a load that 409'd while a draining version still held budget
// succeeds once the drain frees it — with the failure logged once per
// file change rather than once per poll.
func (r *Repository) WatchSpecs(ctx context.Context, paths []string, interval time.Duration, opts ModelOptions) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	loaded := make(map[string]string) // signature that fully loaded
	failed := make(map[string]string) // signature already logged as failing
	tick := func() {
		for _, p := range expandSpecPaths(r.cfg.Logger, paths) {
			fi, err := os.Stat(p)
			if err != nil {
				continue
			}
			sig := fmt.Sprintf("%d|%d", fi.Size(), fi.ModTime().UnixNano())
			if loaded[p] == sig {
				continue
			}
			statuses, err := r.LoadSpecFile(p, opts)
			if err != nil {
				// Partial loads still count (LoadSpecFile attempts every
				// spec); keep retrying this signature, but log it once.
				if failed[p] != sig {
					failed[p] = sig
					r.cfg.Logger.Error("spec watch: load failed (will retry)", "path", p,
						"loaded", len(statuses), "err", err)
				}
				continue
			}
			loaded[p] = sig
			delete(failed, p)
			r.cfg.Logger.Info("spec watch: hot-loaded", "path", p, "models", len(statuses))
		}
	}
	tick()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			tick()
		}
	}
}

// expandSpecPaths resolves directories to their *.json entries.
func expandSpecPaths(logger *slog.Logger, paths []string) []string {
	var out []string
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err == nil && fi.IsDir() {
			matches, err := filepath.Glob(filepath.Join(p, "*.json"))
			if err != nil {
				// Only reachable when p itself contains pattern
				// metacharacters; surface it instead of silently watching
				// an empty directory.
				logger.Error("spec watch: cannot glob spec directory", "dir", p, "err", err)
				continue
			}
			sort.Strings(matches)
			out = append(out, matches...)
			continue
		}
		out = append(out, p)
	}
	return out
}

// ---- internals ----

// modelFor returns (creating if needed) the per-name slot.
func (r *Repository) modelFor(name string) *repoModel {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.models[name]
	if m == nil {
		m = &repoModel{}
		r.models[name] = m
	}
	return m
}

// reserve plans capacity for a load and reserves its budget, publishing a
// LOADING version. Returns (nil, status, nil) when the active version
// already matches key. Caller holds m.loadMu.
func (r *Repository) reserve(name string, m *repoModel, key registryKey, task string, gm *graph.Model, weightBytes int, costs []batchCost) (*version, ModelStatus, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ModelStatus{}, ErrRepositoryClosed
	}
	if r.models[name] != m {
		return nil, ModelStatus{}, errStaleModel
	}
	if m.active != nil && m.active.key == key {
		return nil, statusLocked(m.active), nil
	}
	pool, batch, perReplica, err := r.pickCapacityLocked(name, weightBytes, costs)
	if err != nil {
		return nil, ModelStatus{}, err
	}
	m.nextNum++
	v := &version{
		name:            name,
		num:             m.nextNum,
		key:             key,
		task:            task,
		poolSize:        pool,
		maxBatch:        batch,
		perReplicaArena: perReplica,
		weightBytes:     weightBytes,
		plannedBytes:    weightBytes + pool*perReplica,
		flashBytes:      gm.FlashBytes(),
		state:           StateLoading,
		drained:         make(chan struct{}),
	}
	r.planned += v.plannedBytes
	m.loading = v
	return v, ModelStatus{}, nil
}

// batchCost is one candidate micro-batch and what a single replica at
// that batch costs in planned arena bytes.
type batchCost struct{ batch, arenaBytes int }

// batchCosts plans a model at every halving of the desired micro-batch,
// largest first, ending at batch 1 — the candidate set capacity picking
// chooses from. Runs outside the repository lock: planning is pure.
func batchCosts(gm *graph.Model, maxBatch int) ([]batchCost, error) {
	if maxBatch < 1 {
		maxBatch = 1
	}
	var out []batchCost
	for b := maxBatch; ; b /= 2 {
		plan, err := tflm.PlanMemoryBatch(gm, b)
		if err != nil {
			return nil, err
		}
		out = append(out, batchCost{batch: b, arenaBytes: plan.ArenaBytes})
		if b == 1 {
			break
		}
	}
	return out, nil
}

// pickCapacityLocked sizes a load against the remaining budget: the
// shared prepared weights are charged once off the top, then the largest
// candidate micro-batch whose single-replica arena fits, then as many
// replicas as still fit (capped at the desired PoolSize) — replicas cost
// only their arenas, since the weights are shared. Unbudgeted
// repositories grant the desires as-is. Called with r.mu held.
func (r *Repository) pickCapacityLocked(name string, weightBytes int, costs []batchCost) (pool, batch, perReplica int, err error) {
	pool = r.cfg.PoolSize
	if r.cfg.RAMBudgetBytes <= 0 {
		return pool, costs[0].batch, costs[0].arenaBytes, nil
	}
	remaining := r.cfg.RAMBudgetBytes - r.planned - weightBytes
	chosen := costs[len(costs)-1] // batch 1, the smallest configuration
	for _, c := range costs {
		if c.arenaBytes <= remaining {
			chosen = c
			break
		}
	}
	if chosen.arenaBytes > remaining {
		return 0, 0, 0, &BudgetError{
			Model:        name,
			NeededBytes:  weightBytes + chosen.arenaBytes,
			BudgetBytes:  r.cfg.RAMBudgetBytes,
			PlannedBytes: r.planned,
		}
	}
	if fit := remaining / chosen.arenaBytes; fit < pool {
		pool = fit
	}
	return pool, chosen.batch, chosen.arenaBytes, nil
}

// release undoes a reservation whose build failed, dropping the slot if
// nothing else lives under the name.
func (r *Repository) release(name string, m *repoModel, v *version) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.planned -= v.plannedBytes
	if m.loading == v {
		m.loading = nil
	}
	r.dropIfEmptyLocked(name, m)
}

// retire finishes a draining version: wait out the requests that hold it,
// flush its batcher, release its budget.
func (r *Repository) retire(name string, m *repoModel, v *version) {
	v.inflight.Wait()
	v.batcher.Close()
	r.mu.Lock()
	r.planned -= v.plannedBytes
	v.state = StateUnloaded
	for i, d := range m.draining {
		if d == v {
			m.draining = append(m.draining[:i], m.draining[i+1:]...)
			break
		}
	}
	r.dropIfEmptyLocked(name, m)
	r.mu.Unlock()
	close(v.drained)
}

// dropIfEmptyLocked removes the per-name slot once no version lives under
// it, so Index reflects unloads. Called with r.mu held.
func (r *Repository) dropIfEmptyLocked(name string, m *repoModel) {
	if m.active == nil && m.loading == nil && len(m.draining) == 0 && r.models[name] == m {
		delete(r.models, name)
	}
}

// acquire pins the serving version of a name: the returned release must
// be called once the request is finished, and retirement of the version
// waits for it. Only READY versions are ever returned, so no caller can
// observe a half-loaded entry.
func (r *Repository) acquire(name string) (*version, func(), error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.models[name]
	if m == nil || m.active == nil {
		return nil, nil, &NotLoadedError{Model: name}
	}
	v := m.active
	v.inflight.Add(1)
	var once sync.Once
	return v, func() { once.Do(v.inflight.Done) }, nil
}

// actives returns the serving versions sorted by name (for /metrics).
func (r *Repository) actives() []*version {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*version
	for _, m := range r.models {
		if m.active != nil {
			out = append(out, m.active)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// statusLocked snapshots a version. Callers hold Repository.mu.
func statusLocked(v *version) ModelStatus {
	return ModelStatus{
		Name:                 v.name,
		Version:              v.num,
		State:                v.state,
		Task:                 v.task,
		PoolSize:             v.poolSize,
		MaxBatch:             v.maxBatch,
		ArenaBytesPerReplica: v.perReplicaArena,
		SharedWeightBytes:    v.weightBytes,
		PlannedRAMBytes:      v.plannedBytes,
		FlashBytes:           v.flashBytes,
		LoadedAt:             v.loadedAt,
	}
}

// ParseRAMBudget parses a human-readable RAM budget — "320KB", "1MB",
// "512kb", or a plain byte count — into bytes. Empty and "0" mean
// unbudgeted. This is the parser behind `cmd/serve -ram-budget`.
func ParseRAMBudget(s string) (int, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "0" {
		return 0, nil
	}
	upper := strings.ToUpper(s)
	mult := 1
	switch {
	case strings.HasSuffix(upper, "MB"):
		mult, upper = 1<<20, strings.TrimSuffix(upper, "MB")
	case strings.HasSuffix(upper, "KB"):
		mult, upper = 1<<10, strings.TrimSuffix(upper, "KB")
	case strings.HasSuffix(upper, "B"):
		upper = strings.TrimSuffix(upper, "B")
	}
	n, err := strconv.Atoi(strings.TrimSpace(upper))
	if err != nil || n < 0 {
		return 0, fmt.Errorf("serve: bad RAM budget %q (want e.g. 320KB, 1MB, or bytes)", s)
	}
	return n * mult, nil
}
