package serve

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"micronets/internal/obs"
	"micronets/internal/servegraph"
)

// handleMetrics renders the serving counters in Prometheus text
// exposition format, hand-rolled so the repo stays dependency-free. Gauge
// vs counter and the _sum/_count latency pair follow the conventions a
// real scraper expects. Repository state — versions, budget-planned pool
// sizes, and arena reservations — is exported next to the request
// counters so a scrape shows both the control plane and the data plane.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	actives := s.repo.actives()
	fmt.Fprintf(&b, "# HELP micronets_serve_uptime_seconds Seconds since the server finished warm-up.\n")
	fmt.Fprintf(&b, "# TYPE micronets_serve_uptime_seconds gauge\n")
	fmt.Fprintf(&b, "micronets_serve_uptime_seconds %.3f\n", time.Since(s.start).Seconds())
	fmt.Fprintf(&b, "# HELP micronets_serve_models_loaded Models with a serving (READY) version.\n")
	fmt.Fprintf(&b, "# TYPE micronets_serve_models_loaded gauge\n")
	fmt.Fprintf(&b, "micronets_serve_models_loaded %d\n", len(actives))
	fmt.Fprintf(&b, "# HELP micronets_serve_lowerings_total Graph lowerings performed (cache misses).\n")
	fmt.Fprintf(&b, "# TYPE micronets_serve_lowerings_total counter\n")
	fmt.Fprintf(&b, "micronets_serve_lowerings_total %d\n", s.repo.Lowerings())
	fmt.Fprintf(&b, "# HELP micronets_serve_ram_budget_bytes Configured repository RAM budget (0 = unbudgeted).\n")
	fmt.Fprintf(&b, "# TYPE micronets_serve_ram_budget_bytes gauge\n")
	fmt.Fprintf(&b, "micronets_serve_ram_budget_bytes %d\n", s.repo.RAMBudgetBytes())
	fmt.Fprintf(&b, "# HELP micronets_serve_ram_planned_bytes Bytes reserved by live model versions (shared weights + pooled arenas).\n")
	fmt.Fprintf(&b, "# TYPE micronets_serve_ram_planned_bytes gauge\n")
	fmt.Fprintf(&b, "micronets_serve_ram_planned_bytes %d\n", s.repo.PlannedRAMBytes())

	counter := func(name, help string, val func(*version) uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, v := range actives {
			fmt.Fprintf(&b, "%s{model=%q} %d\n", name, v.name, val(v))
		}
	}
	counter("micronets_serve_requests_total", "Inference requests completed (batched rows).",
		func(v *version) uint64 { return v.entry.Stats().Requests })
	counter("micronets_serve_request_errors_total", "Requests that failed (bad input, drained, invoke error).",
		func(v *version) uint64 { return v.entry.Stats().Errors })
	counter("micronets_serve_request_canceled_total", "Requests abandoned by caller context cancellation (not model failures).",
		func(v *version) uint64 { return v.entry.Stats().Canceled })
	counter("micronets_serve_batches_total", "InvokeBatch calls issued by the micro-batcher.",
		func(v *version) uint64 { return v.entry.Stats().Batches })
	counter("micronets_serve_batch_size_sum", "Sum of coalesced batch sizes (divide by batches for the mean).",
		func(v *version) uint64 { return v.entry.Stats().BatchSizeSum })
	counter("micronets_serve_batch_size_max", "Largest batch coalesced so far.",
		func(v *version) uint64 { return v.entry.Stats().BatchSizeMax })

	histogram := func(name, help string, val func(StatsSnapshot) obs.Snapshot) {
		obs.WriteHistogramHead(&b, name, help)
		for _, v := range actives {
			val(v.entry.Stats()).WritePrometheus(&b, name, fmt.Sprintf("model=%q", v.name))
		}
	}
	histogram("micronets_serve_request_latency_seconds", "End-to-end request latency (queue wait + invoke).",
		func(s StatsSnapshot) obs.Snapshot { return s.Latency })
	histogram("micronets_serve_queue_wait_seconds", "Time requests spent queued before their batch ran.",
		func(s StatsSnapshot) obs.Snapshot { return s.QueueWait })
	histogram("micronets_serve_invoke_seconds", "InvokeBatch wall time per batch.",
		func(s StatsSnapshot) obs.Snapshot { return s.Invoke })

	gauge := func(name, help string, val func(*version) int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, v := range actives {
			fmt.Fprintf(&b, "%s{model=%q} %d\n", name, v.name, val(v))
		}
	}
	gauge("micronets_serve_model_version", "Serving version number of the model.",
		func(v *version) int64 { return int64(v.num) })
	gauge("micronets_serve_pool_size", "Budget-planned interpreter replicas of the serving version.",
		func(v *version) int64 { return int64(v.poolSize) })
	gauge("micronets_serve_max_batch", "Budget-planned micro-batch bound of the serving version.",
		func(v *version) int64 { return int64(v.maxBatch) })
	gauge("micronets_serve_planned_arena_bytes", "Bytes the serving version reserves against the RAM budget (shared weights + pool arenas).",
		func(v *version) int64 { return int64(v.plannedBytes) })
	gauge("micronets_serve_arena_bytes", "Arena bytes per pooled interpreter (host allocation).",
		func(v *version) int64 { return int64(v.entry.ArenaBytes) })
	gauge("micronets_serve_shared_weight_bytes", "Prepared weight bytes (packed panels, folded biases) shared by every pool replica — paid once per version.",
		func(v *version) int64 { return int64(v.entry.WeightBytes) })

	// model_versions counts live versions per name (READY + DRAINING +
	// LOADING) — >1 flags an in-progress blue/green swap.
	fmt.Fprintf(&b, "# HELP micronets_serve_model_versions Live versions of the model (>1 during a swap).\n")
	fmt.Fprintf(&b, "# TYPE micronets_serve_model_versions gauge\n")
	perName := map[string]int{}
	var nameOrder []string
	for _, st := range s.repo.Index() {
		if perName[st.Name] == 0 {
			nameOrder = append(nameOrder, st.Name)
		}
		perName[st.Name]++
	}
	for _, n := range nameOrder {
		fmt.Fprintf(&b, "micronets_serve_model_versions{model=%q} %d\n", n, perName[n])
	}

	fmt.Fprintf(&b, "# HELP micronets_serve_batch_window_seconds Current adaptive micro-batch gather window.\n")
	fmt.Fprintf(&b, "# TYPE micronets_serve_batch_window_seconds gauge\n")
	for _, v := range actives {
		fmt.Fprintf(&b, "micronets_serve_batch_window_seconds{model=%q} %.6f\n",
			v.name, v.batcher.Window().Seconds())
	}
	s.writeGraphMetrics(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	// A failed scrape write means the scraper hung up; nothing useful to do.
	_, _ = w.Write([]byte(b.String())) //microvet:ignore droppederr client disconnects during a scrape are not actionable
}

// writeGraphMetrics renders the inference-graph router counters: per-graph
// request/error/latency families plus per-node requests and the cascade
// (gate hits, escalations) and splitter (picks) counters — the
// observability half of the router's contract. Labels are {graph} and
// {graph,node}; node names come from NodeSpec.Name or the node path.
func (s *Server) writeGraphMetrics(b *strings.Builder) {
	snaps := s.graphs.Snapshot()
	fmt.Fprintf(b, "# HELP micronets_graphs_registered Registered inference graphs.\n")
	fmt.Fprintf(b, "# TYPE micronets_graphs_registered gauge\n")
	fmt.Fprintf(b, "micronets_graphs_registered %d\n", len(snaps))
	if len(snaps) == 0 {
		return
	}
	graphCounter := func(name, help string, val func(servegraph.GraphStats) uint64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, g := range snaps {
			fmt.Fprintf(b, "%s{graph=%q} %d\n", name, g.Name, val(g))
		}
	}
	graphCounter("micronets_graph_requests_total", "Requests routed through the graph.",
		func(g servegraph.GraphStats) uint64 { return g.Requests })
	graphCounter("micronets_graph_request_errors_total", "Graph requests that failed.",
		func(g servegraph.GraphStats) uint64 { return g.Errors })
	obs.WriteHistogramHead(b, "micronets_graph_request_latency_seconds", "End-to-end graph routing latency.")
	for _, g := range snaps {
		g.Latency.WritePrometheus(b, "micronets_graph_request_latency_seconds", fmt.Sprintf("graph=%q", g.Name))
	}
	fmt.Fprintf(b, "# HELP micronets_graph_revision Times the graph name has been (re)registered.\n")
	fmt.Fprintf(b, "# TYPE micronets_graph_revision gauge\n")
	for _, g := range snaps {
		fmt.Fprintf(b, "micronets_graph_revision{graph=%q} %d\n", g.Name, g.Revision)
	}
	nodeCounter := func(name, help string, val func(servegraph.NodeStats) uint64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, g := range snaps {
			for _, n := range g.Nodes {
				fmt.Fprintf(b, "%s{graph=%q,node=%q} %d\n", name, g.Name, n.Node, val(n))
			}
		}
	}
	nodeCounter("micronets_graph_node_requests_total", "Requests the node evaluated.",
		func(n servegraph.NodeStats) uint64 { return n.Requests })
	nodeCounter("micronets_graph_node_errors_total", "Node evaluations that failed.",
		func(n servegraph.NodeStats) uint64 { return n.Errors })
	// Cascade and splitter counters only exist on their node kinds; emit
	// them only where meaningful so the scrape stays compact.
	emitIf := func(name, help, kind string, val func(servegraph.NodeStats) uint64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, g := range snaps {
			for _, n := range g.Nodes {
				if n.Kind == kind {
					fmt.Fprintf(b, "%s{graph=%q,node=%q} %d\n", name, g.Name, n.Node, val(n))
				}
			}
		}
	}
	emitIf("micronets_graph_gate_hits_total", "Cascade answers produced by a non-final stage.",
		servegraph.KindCascade, func(n servegraph.NodeStats) uint64 { return n.GateHits })
	emitIf("micronets_graph_escalations_total", "Cascade requests escalated to a later stage.",
		servegraph.KindCascade, func(n servegraph.NodeStats) uint64 { return n.Escalations })
	fmt.Fprintf(b, "# HELP micronets_graph_splitter_picks_total Times the splitter arm was chosen.\n")
	fmt.Fprintf(b, "# TYPE micronets_graph_splitter_picks_total counter\n")
	for _, g := range snaps {
		for _, n := range g.Nodes {
			if n.Weight > 0 {
				fmt.Fprintf(b, "micronets_graph_splitter_picks_total{graph=%q,node=%q} %d\n", g.Name, n.Node, n.Picks)
			}
		}
	}
}
