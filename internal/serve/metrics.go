package serve

import (
	"fmt"
	"net/http"
	"strings"
	"time"
)

// handleMetrics renders the serving counters in Prometheus text
// exposition format, hand-rolled so the repo stays dependency-free. Gauge
// vs counter and the _sum/_count latency pair follow the conventions a
// real scraper expects.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP micronets_serve_uptime_seconds Seconds since the server finished warm-up.\n")
	fmt.Fprintf(&b, "# TYPE micronets_serve_uptime_seconds gauge\n")
	fmt.Fprintf(&b, "micronets_serve_uptime_seconds %.3f\n", time.Since(s.start).Seconds())
	fmt.Fprintf(&b, "# HELP micronets_serve_models_loaded Models preloaded into the registry.\n")
	fmt.Fprintf(&b, "# TYPE micronets_serve_models_loaded gauge\n")
	fmt.Fprintf(&b, "micronets_serve_models_loaded %d\n", len(s.models))
	fmt.Fprintf(&b, "# HELP micronets_serve_lowerings_total Graph lowerings performed (cache misses).\n")
	fmt.Fprintf(&b, "# TYPE micronets_serve_lowerings_total counter\n")
	fmt.Fprintf(&b, "micronets_serve_lowerings_total %d\n", s.reg.Lowerings())

	counter := func(name, help string, val func(*servedModel) uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, e := range s.reg.Entries() {
			m, ok := s.models[e.Name]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%s{model=%q} %d\n", name, e.Name, val(m))
		}
	}
	counter("micronets_serve_requests_total", "Inference requests completed (batched rows).",
		func(m *servedModel) uint64 { return m.entry.Stats().Requests })
	counter("micronets_serve_request_errors_total", "Requests that failed (bad input, cancelled, drained, invoke error).",
		func(m *servedModel) uint64 { return m.entry.Stats().Errors })
	counter("micronets_serve_batches_total", "InvokeBatch calls issued by the micro-batcher.",
		func(m *servedModel) uint64 { return m.entry.Stats().Batches })
	counter("micronets_serve_batch_size_sum", "Sum of coalesced batch sizes (divide by batches for the mean).",
		func(m *servedModel) uint64 { return m.entry.Stats().BatchSizeSum })
	counter("micronets_serve_batch_size_max", "Largest batch coalesced so far.",
		func(m *servedModel) uint64 { return m.entry.Stats().BatchSizeMax })
	counter("micronets_serve_request_latency_seconds_count", "Requests with measured queue+invoke latency.",
		func(m *servedModel) uint64 { return m.entry.Stats().LatencyCount })

	fmt.Fprintf(&b, "# HELP micronets_serve_request_latency_seconds_sum Total queue+invoke latency.\n")
	fmt.Fprintf(&b, "# TYPE micronets_serve_request_latency_seconds_sum counter\n")
	for _, e := range s.reg.Entries() {
		if m, ok := s.models[e.Name]; ok {
			fmt.Fprintf(&b, "micronets_serve_request_latency_seconds_sum{model=%q} %.6f\n",
				e.Name, float64(m.entry.Stats().LatencyNsSum)/1e9)
		}
	}
	fmt.Fprintf(&b, "# HELP micronets_serve_batch_window_seconds Current adaptive micro-batch gather window.\n")
	fmt.Fprintf(&b, "# TYPE micronets_serve_batch_window_seconds gauge\n")
	for _, e := range s.reg.Entries() {
		if m, ok := s.models[e.Name]; ok {
			fmt.Fprintf(&b, "micronets_serve_batch_window_seconds{model=%q} %.6f\n",
				e.Name, m.batcher.Window().Seconds())
		}
	}
	fmt.Fprintf(&b, "# HELP micronets_serve_arena_bytes Arena bytes per pooled interpreter.\n")
	fmt.Fprintf(&b, "# TYPE micronets_serve_arena_bytes gauge\n")
	for _, e := range s.reg.Entries() {
		if m, ok := s.models[e.Name]; ok {
			fmt.Fprintf(&b, "micronets_serve_arena_bytes{model=%q} %d\n", e.Name, m.entry.ArenaBytes)
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(b.String()))
}
