package serve

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"micronets/internal/arch"
	"micronets/internal/graph"
	"micronets/internal/tflm"
	"micronets/internal/zoo"
)

// testSpec returns a private copy of a zoo spec (so tests can rename it
// without mutating the shared catalogue).
func testSpec(t *testing.T, name string) *arch.Spec {
	t.Helper()
	e, err := zoo.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	cp := *e.Spec
	cp.Blocks = append([]arch.Block(nil), e.Spec.Blocks...)
	return &cp
}

// arenaBytesAt plans a spec at a batch size the way the repository does.
func arenaBytesAt(t *testing.T, spec *arch.Spec, opts ModelOptions, batch int) int {
	t.Helper()
	opts = opts.normalize()
	m, err := graph.FromSpec(spec, newWeightRNG(opts.Seed), graph.LowerOptions{
		WeightBits: opts.WeightBits, ActBits: opts.ActBits, AppendSoftmax: opts.AppendSoftmax,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := tflm.PlanMemoryBatch(m, batch)
	if err != nil {
		t.Fatal(err)
	}
	return plan.ArenaBytes
}

// weightBytesOf is the shared prepared-weight cost (packed panels, folded
// biases, prefix sums) the repository charges once per version, regardless
// of pool size.
func weightBytesOf(t *testing.T, spec *arch.Spec, opts ModelOptions) int {
	t.Helper()
	opts = opts.normalize()
	m, err := graph.FromSpec(spec, newWeightRNG(opts.Seed), graph.LowerOptions{
		WeightBits: opts.WeightBits, ActBits: opts.ActBits, AppendSoftmax: opts.AppendSoftmax,
	})
	if err != nil {
		t.Fatal(err)
	}
	prep, err := tflm.Prepare(m)
	if err != nil {
		t.Fatal(err)
	}
	return prep.WeightBytes()
}

// TestBudgetOfOneArenaYieldsPoolSizeOne is the ROADMAP item made a test:
// pool size and max batch derive from the RAM budget via
// tflm.PlanMemoryBatch, so a budget of the shared weights plus exactly one
// batch-1 arena must collapse to one replica serving batch 1 — never a
// fixed default count.
func TestBudgetOfOneArenaYieldsPoolSizeOne(t *testing.T) {
	spec := testSpec(t, "MicroNet-KWS-S")
	opts := ModelOptions{Seed: 42, AppendSoftmax: true}
	oneArena := arenaBytesAt(t, spec, opts, 1)
	weights := weightBytesOf(t, spec, opts)

	r := NewRepository(RepositoryConfig{
		Logger:         discardLogger(),
		RAMBudgetBytes: weights + oneArena,
		PoolSize:       8,
		Batch:          BatcherConfig{MaxBatch: 8},
	})
	defer r.Close()
	st, err := r.Load(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.PoolSize != 1 || st.MaxBatch != 1 {
		t.Fatalf("one-arena budget planned pool %d batch %d, want 1 and 1", st.PoolSize, st.MaxBatch)
	}
	if st.PlannedRAMBytes != weights+oneArena || st.ArenaBytesPerReplica != oneArena || st.SharedWeightBytes != weights {
		t.Fatalf("planned %d bytes (per replica %d, weights %d), want weights %d + the one arena %d",
			st.PlannedRAMBytes, st.ArenaBytesPerReplica, st.SharedWeightBytes, weights, oneArena)
	}
	if got := r.PlannedRAMBytes(); got != weights+oneArena {
		t.Fatalf("repository reservation %d, want %d", got, weights+oneArena)
	}
}

// TestPlannedRAMSharesWeightsAcrossReplicas pins the shared-weights
// accounting directly: growing the pool from one replica to four must add
// exactly three arenas to the planned RAM — the prepared weight panels are
// charged once per version, never per replica.
func TestPlannedRAMSharesWeightsAcrossReplicas(t *testing.T) {
	opts := ModelOptions{Seed: 42, AppendSoftmax: true}
	planned := func(pool int) (ModelStatus, int) {
		spec := testSpec(t, "MicroNet-KWS-S")
		r := NewRepository(RepositoryConfig{
			Logger:   discardLogger(),
			PoolSize: pool,
			Batch:    BatcherConfig{MaxBatch: 1},
		})
		defer r.Close()
		st, err := r.Load(spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		return st, r.PlannedRAMBytes()
	}
	st1, repo1 := planned(1)
	st4, repo4 := planned(4)
	if st1.PoolSize != 1 || st4.PoolSize != 4 {
		t.Fatalf("pool sizes %d and %d, want 1 and 4", st1.PoolSize, st4.PoolSize)
	}
	if st1.SharedWeightBytes == 0 || st1.SharedWeightBytes != st4.SharedWeightBytes {
		t.Fatalf("shared weight bytes %d vs %d, want equal and non-zero",
			st1.SharedWeightBytes, st4.SharedWeightBytes)
	}
	wantDelta := 3 * st1.ArenaBytesPerReplica
	if got := st4.PlannedRAMBytes - st1.PlannedRAMBytes; got != wantDelta {
		t.Fatalf("4 replicas plan %d more bytes than 1, want exactly 3 arenas = %d (weights double-charged?)",
			got, wantDelta)
	}
	if got := repo4 - repo1; got != wantDelta {
		t.Fatalf("repository reservations differ by %d, want %d", got, wantDelta)
	}
}

// TestBudgetScalesBatchAndPool: a budget of one batch-4 arena serves
// batch 4 on one replica; doubling it doubles the replicas, not the
// batch beyond the configured desire.
func TestBudgetScalesBatchAndPool(t *testing.T) {
	spec := testSpec(t, "DSCNN-S")
	opts := ModelOptions{Seed: 42, AppendSoftmax: true}
	arena4 := arenaBytesAt(t, spec, opts, 4)
	weights := weightBytesOf(t, spec, opts)

	r := NewRepository(RepositoryConfig{
		Logger:         discardLogger(),
		RAMBudgetBytes: weights + arena4,
		PoolSize:       4,
		Batch:          BatcherConfig{MaxBatch: 4},
	})
	st, err := r.Load(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if st.MaxBatch != 4 || st.PoolSize != 1 {
		t.Fatalf("one batch-4 arena planned pool %d batch %d, want 1 and 4", st.PoolSize, st.MaxBatch)
	}

	// Weights are charged once per version, so one more arena of budget —
	// not weights+arena — buys the second replica.
	r2 := NewRepository(RepositoryConfig{
		Logger:         discardLogger(),
		RAMBudgetBytes: weights + 2*arena4,
		PoolSize:       4,
		Batch:          BatcherConfig{MaxBatch: 4},
	})
	defer r2.Close()
	st2, err := r2.Load(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st2.MaxBatch != 4 || st2.PoolSize != 2 {
		t.Fatalf("two batch-4 arenas planned pool %d batch %d, want 2 and 4", st2.PoolSize, st2.MaxBatch)
	}
}

// TestBudgetRejectionIsStructured: a load that cannot fit even one
// batch-1 replica fails with a *BudgetError carrying the exact byte
// accounting, and reserves nothing.
func TestBudgetRejectionIsStructured(t *testing.T) {
	small := testSpec(t, "DSCNN-S")
	big := testSpec(t, "MicroNet-KWS-S")
	opts := ModelOptions{Seed: 42, AppendSoftmax: true}
	smallArena := arenaBytesAt(t, small, opts, 1)
	bigArena := arenaBytesAt(t, big, opts, 1)
	if bigArena <= smallArena {
		t.Fatalf("test premise broken: %d <= %d", bigArena, smallArena)
	}
	smallWeights := weightBytesOf(t, small, opts)
	bigWeights := weightBytesOf(t, big, opts)
	smallCost := smallWeights + smallArena

	r := NewRepository(RepositoryConfig{
		Logger:         discardLogger(),
		RAMBudgetBytes: smallCost,
		PoolSize:       1,
		Batch:          BatcherConfig{MaxBatch: 1},
	})
	defer r.Close()
	if _, err := r.Load(small, opts); err != nil {
		t.Fatal(err)
	}
	_, err := r.Load(big, opts)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("over-budget load returned %v, want *BudgetError", err)
	}
	if be.Model != big.Name || be.NeededBytes != bigWeights+bigArena ||
		be.BudgetBytes != smallCost || be.PlannedBytes != smallCost {
		t.Fatalf("BudgetError fields %+v; want model %s needed %d budget %d planned %d",
			be, big.Name, bigWeights+bigArena, smallCost, smallCost)
	}
	// The failed load must not leak a reservation or an index row.
	if got := r.PlannedRAMBytes(); got != smallCost {
		t.Fatalf("failed load leaked reservation: planned %d, want %d", got, smallCost)
	}
	if idx := r.Index(); len(idx) != 1 || idx[0].Name != small.Name {
		t.Fatalf("failed load leaked an index row: %+v", idx)
	}
}

// TestLoadIdempotentAndSwapVersions: re-loading the identical spec+options
// is a no-op (same version, no new lowering); loading the same name with
// different options is a blue/green swap to version 2, and the replaced
// version drains away from the index.
func TestLoadIdempotentAndSwapVersions(t *testing.T) {
	spec := testSpec(t, "DSCNN-S")
	r := NewRepository(RepositoryConfig{PoolSize: 1, Batch: BatcherConfig{MaxBatch: 2}, Logger: discardLogger()})
	defer r.Close()

	st1, err := r.Load(spec, ModelOptions{Seed: 1, AppendSoftmax: true})
	if err != nil {
		t.Fatal(err)
	}
	low1 := r.Lowerings()
	again, err := r.Load(spec, ModelOptions{Seed: 1, AppendSoftmax: true})
	if err != nil {
		t.Fatal(err)
	}
	if again.Version != st1.Version || r.Lowerings() != low1 {
		t.Fatalf("idempotent re-load went to version %d (lowerings %d -> %d)",
			again.Version, low1, r.Lowerings())
	}

	st2, err := r.Swap(spec, ModelOptions{Seed: 2, AppendSoftmax: true})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Version != st1.Version+1 || st2.State != StateReady {
		t.Fatalf("swap produced %+v, want READY version %d", st2, st1.Version+1)
	}
	// The old version drains (asynchronously) out of the index.
	waitFor(t, func() bool {
		idx := r.Index()
		return len(idx) == 1 && idx[0].Version == st2.Version
	}, "old version to finish draining")

	// Unload retires the name entirely.
	if err := r.Unload(spec.Name); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(r.Index()) == 0 }, "unload to empty the index")
	if _, err := r.Infer(context.Background(), spec.Name, make([]int8, 16000)); err == nil {
		t.Fatal("infer after unload must fail")
	}
	var nl *NotLoadedError
	if err := r.Unload(spec.Name); !errors.As(err, &nl) {
		t.Fatalf("double unload returned %v, want *NotLoadedError", err)
	}
	if got := r.PlannedRAMBytes(); got != 0 {
		t.Fatalf("retired repository still reserves %d bytes", got)
	}
}

// TestSwapRequiresLoaded: Swap on a never-loaded name is a NotLoadedError
// (Load is the verb that creates).
func TestSwapRequiresLoaded(t *testing.T) {
	spec := testSpec(t, "DSCNN-S")
	r := NewRepository(RepositoryConfig{PoolSize: 1, Logger: discardLogger()})
	defer r.Close()
	var nl *NotLoadedError
	if _, err := r.Swap(spec, ModelOptions{}); !errors.As(err, &nl) {
		t.Fatalf("swap of unloaded model returned %v, want *NotLoadedError", err)
	}
}

// TestRepositoryConcurrentLifecycle hammers load/unload/infer/index on
// one model name under -race. The invariants: an inference either
// completes with a full-length output (in-flight work on a draining
// version is never cut off — no ErrDraining can surface) or fails with
// NotLoadedError because the name was unloaded at acquire time; the index
// only ever shows lifecycle states; and after the storm the repository is
// still fully serviceable.
func TestRepositoryConcurrentLifecycle(t *testing.T) {
	spec := testSpec(t, "DSCNN-S")
	e, err := zoo.Get("DSCNN-S")
	if err != nil {
		t.Fatal(err)
	}
	elems := e.Spec.InputH * e.Spec.InputW * e.Spec.InputC
	outElems := e.Spec.NumClasses

	r := NewRepository(RepositoryConfig{
		Logger:   discardLogger(),
		PoolSize: 2,
		Batch:    BatcherConfig{MaxBatch: 4, MaxDelay: 100 * time.Microsecond},
	})
	defer r.Close()
	if _, err := r.Load(spec, ModelOptions{Seed: 0, AppendSoftmax: true}); err != nil {
		t.Fatal(err)
	}

	const loaders, inferers = 2, 4
	const iters = 15
	var served, rejected atomic.Uint64
	var loaderWg, inferWg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < loaders; w++ {
		loaderWg.Add(1)
		go func(w int) {
			defer loaderWg.Done()
			for i := 0; i < iters; i++ {
				// Alternate seeds so every other load is a real swap, and
				// sometimes unload so inferers see the name vanish.
				if _, err := r.Load(spec, ModelOptions{Seed: int64(i % 2), AppendSoftmax: true}); err != nil {
					t.Errorf("loader %d: %v", w, err)
					return
				}
				if i%10 == 9 {
					var nl *NotLoadedError
					if err := r.Unload(spec.Name); err != nil && !errors.As(err, &nl) {
						t.Errorf("unloader: %v", err)
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < inferers; w++ {
		inferWg.Add(1)
		go func(w int) {
			defer inferWg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			row := make([]int8, elems)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range row {
					row[i] = int8(rng.Intn(17) - 8)
				}
				out, err := r.Infer(context.Background(), spec.Name, row)
				if err != nil {
					var nl *NotLoadedError
					if !errors.As(err, &nl) {
						t.Errorf("inferer %d: unexpected error %v", w, err)
						return
					}
					rejected.Add(1)
					continue
				}
				if len(out) != outElems {
					t.Errorf("inferer %d: got %d output elems, want %d (half-loaded entry?)", w, len(out), outElems)
					return
				}
				served.Add(1)
				time.Sleep(200 * time.Microsecond) // don't starve the loaders' lock
			}
		}(w)
	}
	indexDone := make(chan struct{})
	go func() {
		defer close(indexDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, st := range r.Index() {
				switch st.State {
				case StateLoading, StateReady, StateDraining:
				default:
					t.Errorf("index shows state %q", st.State)
					return
				}
				if st.PlannedRAMBytes <= 0 || st.PoolSize < 1 {
					t.Errorf("index shows unplanned row %+v", st)
					return
				}
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	// Wait for the loaders, then stop the data-path hammering.
	loaderDone := make(chan struct{})
	go func() { loaderWg.Wait(); close(loaderDone) }()
	select {
	case <-loaderDone:
	case <-time.After(60 * time.Second):
		t.Fatal("lifecycle storm wedged")
	}
	close(stop)
	inferWg.Wait()
	<-indexDone

	// The storm ends in a loaded state; the data path must still work.
	st, err := r.Load(spec, ModelOptions{Seed: 7, AppendSoftmax: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateReady {
		t.Fatalf("final load state %s", st.State)
	}
	if _, err := r.Infer(context.Background(), spec.Name, make([]int8, elems)); err != nil {
		t.Fatalf("infer after storm: %v", err)
	}
	t.Logf("storm: %d served, %d rejected (name unloaded), final version %d",
		served.Load(), rejected.Load(), st.Version)
}

// TestWatchSpecsHotLoads: a spec file appearing in a watched directory is
// registered and loaded without any restart; rewriting it with new
// content swaps to a new version.
func TestWatchSpecsHotLoads(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t, "DSCNN-S")
	spec.Name = "Watched-DSCNN-Test"
	t.Cleanup(func() { zoo.Unregister(spec.Name) })

	r := NewRepository(RepositoryConfig{
		Logger:   discardLogger(),
		PoolSize: 1,
		Options:  ModelOptions{Seed: 42, AppendSoftmax: true},
	})
	defer r.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		r.WatchSpecs(ctx, []string{dir}, 10*time.Millisecond, r.cfg.Options)
	}()

	writeTestSpecFile(t, dir+"/frontier.json", spec)
	waitFor(t, func() bool {
		idx := r.Index()
		return len(idx) == 1 && idx[0].Name == spec.Name && idx[0].State == StateReady
	}, "watched spec file to load")
	v1 := r.Index()[0].Version

	// A changed file hot-swaps. Mutate the architecture so the
	// fingerprint changes (same name).
	spec.Blocks[len(spec.Blocks)-1].OutC++
	// Ensure a distinct mtime even on coarse filesystem clocks.
	time.Sleep(20 * time.Millisecond)
	writeTestSpecFile(t, dir+"/frontier.json", spec)
	waitFor(t, func() bool {
		for _, st := range r.Index() {
			if st.Name == spec.Name && st.State == StateReady && st.Version > v1 {
				return true
			}
		}
		return false
	}, "rewritten spec file to swap versions")

	cancel()
	<-watchDone
}

// TestWatchSpecsRetriesAfterBudgetFrees: a watched file whose load 409s
// against a full budget must be retried on later ticks — once an unload
// frees the budget, the file loads without being touched again.
func TestWatchSpecsRetriesAfterBudgetFrees(t *testing.T) {
	blocker := testSpec(t, "DSCNN-S")
	watched := testSpec(t, "DSCNN-S")
	watched.Name = "Watched-Retry-Test"
	t.Cleanup(func() { zoo.Unregister(watched.Name) })
	opts := ModelOptions{Seed: 42, AppendSoftmax: true}

	r := NewRepository(RepositoryConfig{
		Logger:         discardLogger(),
		RAMBudgetBytes: weightBytesOf(t, blocker, opts) + arenaBytesAt(t, blocker, opts, 1),
		PoolSize:       1,
		Batch:          BatcherConfig{MaxBatch: 1},
		Options:        opts,
	})
	defer r.Close()
	if _, err := r.Load(blocker, opts); err != nil {
		t.Fatal(err) // the blocker consumes the whole budget
	}

	dir := t.TempDir()
	writeTestSpecFile(t, dir+"/retry.json", watched)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		r.WatchSpecs(ctx, []string{dir}, 5*time.Millisecond, opts)
	}()

	// The watcher must keep failing (budget full) without loading it...
	time.Sleep(50 * time.Millisecond)
	for _, st := range r.Index() {
		if st.Name == watched.Name {
			t.Fatalf("over-budget watched spec loaded anyway: %+v", st)
		}
	}
	// ...and succeed on a later tick once the budget frees, with the
	// file untouched.
	if err := r.Unload(blocker.Name); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		for _, st := range r.Index() {
			if st.Name == watched.Name && st.State == StateReady {
				return true
			}
		}
		return false
	}, "watched spec to load after the budget freed")
	cancel()
	<-watchDone
}

func writeTestSpecFile(t *testing.T, path string, specs ...*arch.Spec) {
	t.Helper()
	// Write-then-rename so the watcher never reads a torn file.
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if err := zoo.WriteSpecFile(f, &zoo.SpecFile{GeneratedBy: "repository_test", Specs: specs}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls a condition with a deadline, for the asynchronous drain
// and watch paths.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// discardLogger silences repository lifecycle logs in tests.
func discardLogger() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }
