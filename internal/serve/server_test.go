package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"micronets/internal/tensor"
	"micronets/internal/tflm"
	"micronets/internal/zoo"
)

// testModels are small KWS models so the suite stays fast.
var testModels = []string{"MicroNet-KWS-S", "DSCNN-S"}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Models:  testModels,
		Options: ModelOptions{Seed: 42, AppendSoftmax: true},
		Batch:   BatcherConfig{MaxBatch: 8, MaxDelay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func getJSON(t *testing.T, url string, wantCode int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return out
}

func TestHealthAndModelListing(t *testing.T) {
	_, ts := newTestServer(t)
	if out := getJSON(t, ts.URL+"/v2/health/live", 200); out["live"] != true {
		t.Fatalf("live = %v", out)
	}
	if out := getJSON(t, ts.URL+"/v2/health/ready", 200); out["ready"] != true {
		t.Fatalf("ready = %v", out)
	}
	out := getJSON(t, ts.URL+"/v2/models", 200)
	models, _ := out["models"].([]any)
	if len(models) != len(testModels) {
		t.Fatalf("models = %v, want %d entries", out, len(testModels))
	}

	meta := getJSON(t, ts.URL+"/v2/models/MicroNet-KWS-S", 200)
	if meta["name"] != "MicroNet-KWS-S" || meta["platform"] != "micronets-go-tflm" {
		t.Fatalf("metadata = %v", meta)
	}
	inputs := meta["inputs"].([]any)
	shape := inputs[0].(map[string]any)["shape"].([]any)
	if fmt.Sprint(shape) != "[49 10 1]" {
		t.Fatalf("KWS input shape = %v", shape)
	}
	getJSON(t, ts.URL+"/v2/models/NoSuchModel", 404)
}

// inferOnce POSTs one FP32 row and returns the decoded response.
func inferOnce(t *testing.T, url, model string, data []float64) v2InferResponse {
	t.Helper()
	// Shape is optional in the protocol; shape handling has its own test.
	body, _ := json.Marshal(v2InferRequest{ID: "t1", Inputs: []v2Tensor{{
		Name: "input", Datatype: "FP32", Data: data,
	}}})
	resp, err := http.Post(url+"/v2/models/"+model+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		var e v2Error
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("infer %s: status %d: %s", model, resp.StatusCode, e.Error)
	}
	var out v2InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func output(resp v2InferResponse, name string) *v2Tensor {
	for i := range resp.Outputs {
		if resp.Outputs[i].Name == name {
			return &resp.Outputs[i]
		}
	}
	return nil
}

// TestInferMatchesDirectInterpreter answers the acceptance criterion: a
// real /infer POST returns the argmax class + score for two zoo models,
// and they are bit-identical to a directly constructed interpreter at the
// same seed.
func TestInferMatchesDirectInterpreter(t *testing.T) {
	_, ts := newTestServer(t)
	for _, name := range testModels {
		rng := rand.New(rand.NewSource(7))
		e, err := zoo.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		elems := e.Spec.InputH * e.Spec.InputW * e.Spec.InputC
		data := make([]float64, elems)
		x := tensor.New(elems)
		for i := range data {
			v := rng.Float64()*2 - 1
			data[i] = v
			x.Data[i] = float32(v)
		}

		resp := inferOnce(t, ts.URL, name, data)
		class := output(resp, "class")
		score := output(resp, "score")
		scores := output(resp, "scores")
		if class == nil || score == nil || scores == nil {
			t.Fatalf("%s: response missing outputs: %+v", name, resp)
		}
		if len(scores.Data) != e.Spec.NumClasses {
			t.Fatalf("%s: got %d scores, want %d", name, len(scores.Data), e.Spec.NumClasses)
		}

		// Same lowering as the registry performs (seed 42, softmax).
		reg := NewRegistry(RegistryConfig{PoolSize: 1})
		entry, err := reg.Get(name, ModelOptions{Seed: 42, AppendSoftmax: true})
		if err != nil {
			t.Fatal(err)
		}
		ip, err := tflm.NewInterpreter(entry.Model, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantClass, wantScore, err := ip.Classify(x)
		if err != nil {
			t.Fatal(err)
		}
		if int(class.Data[0]) != wantClass {
			t.Fatalf("%s: served class %v, direct %d", name, class.Data[0], wantClass)
		}
		if got := float32(score.Data[0]); got != wantScore {
			t.Fatalf("%s: served score %v, direct %v", name, got, wantScore)
		}
	}
}

// TestInferClientBatch sends one request with a leading batch dimension
// and checks per-row outputs line up with single-row requests.
func TestInferClientBatch(t *testing.T) {
	_, ts := newTestServer(t)
	e, _ := zoo.Get("MicroNet-KWS-S")
	elems := e.Spec.InputH * e.Spec.InputW * e.Spec.InputC
	rng := rand.New(rand.NewSource(11))
	const n = 3
	data := make([]float64, n*elems)
	for i := range data {
		data[i] = rng.Float64()*2 - 1
	}
	resp := inferOnce(t, ts.URL, "MicroNet-KWS-S", data)
	class := output(resp, "class")
	if len(class.Data) != n {
		t.Fatalf("client batch: got %d classes, want %d", len(class.Data), n)
	}
	for b := 0; b < n; b++ {
		single := inferOnce(t, ts.URL, "MicroNet-KWS-S", data[b*elems:(b+1)*elems])
		if output(single, "class").Data[0] != class.Data[b] {
			t.Fatalf("row %d: batched class %v != single class %v", b, class.Data[b], output(single, "class").Data[0])
		}
	}
}

func TestInferBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v2/models/MicroNet-KWS-S/infer", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != 400 {
		t.Fatalf("bad JSON: status %d", code)
	}
	if code := post(`{"inputs":[]}`); code != 400 {
		t.Fatalf("no inputs: status %d", code)
	}
	if code := post(`{"inputs":[{"name":"input","datatype":"FP32","shape":[3],"data":[1,2,3]}]}`); code != 400 {
		t.Fatalf("wrong length: status %d", code)
	}
	if code := post(`{"inputs":[{"name":"input","datatype":"FP64","shape":[490],"data":[` + strings.Repeat("0,", 489) + `0]}]}`); code != 400 {
		t.Fatalf("bad datatype: status %d", code)
	}
	// INT8 out-of-range value.
	if code := post(`{"inputs":[{"name":"input","datatype":"INT8","shape":[490],"data":[999` + strings.Repeat(",0", 489) + `]}]}`); code != 400 {
		t.Fatalf("INT8 range: status %d", code)
	}
	resp, err := http.Post(ts.URL+"/v2/models/NoSuchModel/infer", "application/json", strings.NewReader(`{"inputs":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown model: status %d", resp.StatusCode)
	}
}

// TestInferShapeValidation: the declared shape must agree with the
// model's input layout — a transposed or wrong-count shape is a 400, the
// documented layouts (flat, [h,w,c], batched variants, absent) are 200.
func TestInferShapeValidation(t *testing.T) {
	_, ts := newTestServer(t)
	post := func(shape []int, n int) int {
		t.Helper()
		data := make([]float64, n*490)
		body, _ := json.Marshal(v2InferRequest{Inputs: []v2Tensor{{
			Name: "input", Datatype: "FP32", Shape: shape, Data: data,
		}}})
		resp, err := http.Post(ts.URL+"/v2/models/MicroNet-KWS-S/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, ok := range [][]int{nil, {490}, {49, 10, 1}, {2, 490}, {2, 49, 10, 1}} {
		n := 1
		if len(ok) > 0 && (len(ok) == 2 || len(ok) == 4) {
			n = ok[0]
		}
		if code := post(ok, n); code != 200 {
			t.Fatalf("shape %v: status %d, want 200", ok, code)
		}
	}
	for _, bad := range [][]int{{10, 49, 1}, {490, 1, 1}, {980}, {49, 10}} {
		if code := post(bad, 1); code != 400 {
			t.Fatalf("shape %v: status %d, want 400", bad, code)
		}
	}
	// Shape/data element-count mismatch.
	if code := post([]int{49, 10, 1}, 2); code != 400 {
		t.Fatalf("shape [49 10 1] with 2 rows of data: status %d, want 400", code)
	}
}

// TestInferBodyLimit: a client batch beyond maxInferRows is rejected, and
// a body larger than the derived limit gets 413 instead of exhausting
// memory.
func TestInferBodyLimit(t *testing.T) {
	_, ts := newTestServer(t)
	data := make([]float64, (maxInferRows+1)*490)
	body, _ := json.Marshal(v2InferRequest{Inputs: []v2Tensor{{Name: "input", Datatype: "FP32", Data: data}}})
	resp, err := http.Post(ts.URL+"/v2/models/MicroNet-KWS-S/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 && resp.StatusCode != 413 {
		t.Fatalf("oversized batch: status %d, want 400 or 413", resp.StatusCode)
	}

	// A body past the MaxBytesReader limit either gets a 413 or the
	// server cuts the connection mid-upload (also acceptable); what it
	// must never do is 200.
	huge := strings.NewReader(`{"inputs":[{"name":"input","data":[` + strings.Repeat("0.123456789,", 500_000) + `0]}]}`)
	resp2, err := http.Post(ts.URL+"/v2/models/MicroNet-KWS-S/infer", "application/json", huge)
	if err != nil {
		return // connection cut by the server: limit enforced
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp2.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	e, _ := zoo.Get("MicroNet-KWS-S")
	elems := e.Spec.InputH * e.Spec.InputW * e.Spec.InputC
	inferOnce(t, ts.URL, "MicroNet-KWS-S", make([]float64, elems))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"micronets_serve_models_loaded 2",
		"micronets_serve_lowerings_total 2",
		`micronets_serve_requests_total{model="MicroNet-KWS-S"} 1`,
		`micronets_serve_batches_total{model="MicroNet-KWS-S"} 1`,
		`micronets_serve_arena_bytes{model="MicroNet-KWS-S"}`,
		`micronets_serve_batch_window_seconds{model="DSCNN-S"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestDuplicateModelNames: a repeated name in Config.Models must not
// start (and leak) a second batcher for the same model.
func TestDuplicateModelNames(t *testing.T) {
	s, err := New(Config{
		Models:  []string{"MicroNet-KWS-S", "MicroNet-KWS-S"},
		Options: ModelOptions{Seed: 42},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if len(s.models) != 1 {
		t.Fatalf("loaded %d models for a duplicated name, want 1", len(s.models))
	}
}

// TestDrain checks the lifecycle: after Close, readiness fails and infer
// returns 503.
func TestDrain(t *testing.T) {
	s, ts := newTestServer(t)
	s.Close()
	getJSON(t, ts.URL+"/v2/health/ready", 503)
	e, _ := zoo.Get("MicroNet-KWS-S")
	elems := e.Spec.InputH * e.Spec.InputW * e.Spec.InputC
	body, _ := json.Marshal(v2InferRequest{Inputs: []v2Tensor{{Name: "input", Datatype: "FP32", Data: make([]float64, elems)}}})
	resp, err := http.Post(ts.URL+"/v2/models/MicroNet-KWS-S/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("infer after drain: status %d, want 503", resp.StatusCode)
	}
}
