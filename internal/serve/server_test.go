package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"micronets/internal/tensor"
	"micronets/internal/tflm"
	"micronets/internal/zoo"
)

// testModels are small KWS models so the suite stays fast.
var testModels = []string{"MicroNet-KWS-S", "DSCNN-S"}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Models:  testModels,
		Options: ModelOptions{Seed: 42, AppendSoftmax: true},
		Batch:   BatcherConfig{MaxBatch: 8, MaxDelay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func getJSON(t *testing.T, url string, wantCode int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return out
}

func TestHealthAndModelListing(t *testing.T) {
	_, ts := newTestServer(t)
	if out := getJSON(t, ts.URL+"/v2/health/live", 200); out["live"] != true {
		t.Fatalf("live = %v", out)
	}
	if out := getJSON(t, ts.URL+"/v2/health/ready", 200); out["ready"] != true {
		t.Fatalf("ready = %v", out)
	}
	out := getJSON(t, ts.URL+"/v2/models", 200)
	models, _ := out["models"].([]any)
	if len(models) != len(testModels) {
		t.Fatalf("models = %v, want %d entries", out, len(testModels))
	}

	meta := getJSON(t, ts.URL+"/v2/models/MicroNet-KWS-S", 200)
	if meta["name"] != "MicroNet-KWS-S" || meta["platform"] != "micronets-go-tflm" {
		t.Fatalf("metadata = %v", meta)
	}
	inputs := meta["inputs"].([]any)
	shape := inputs[0].(map[string]any)["shape"].([]any)
	if fmt.Sprint(shape) != "[49 10 1]" {
		t.Fatalf("KWS input shape = %v", shape)
	}
	getJSON(t, ts.URL+"/v2/models/NoSuchModel", 404)
}

// inferOnce POSTs one FP32 row and returns the decoded response.
func inferOnce(t *testing.T, url, model string, data []float64) v2InferResponse {
	t.Helper()
	// Shape is optional in the protocol; shape handling has its own test.
	body, _ := json.Marshal(v2InferRequest{ID: "t1", Inputs: []v2Tensor{{
		Name: "input", Datatype: "FP32", Data: data,
	}}})
	resp, err := http.Post(url+"/v2/models/"+model+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		var e v2Error
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("infer %s: status %d: %s", model, resp.StatusCode, e.Error)
	}
	var out v2InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func output(resp v2InferResponse, name string) *v2Tensor {
	for i := range resp.Outputs {
		if resp.Outputs[i].Name == name {
			return &resp.Outputs[i]
		}
	}
	return nil
}

// TestInferMatchesDirectInterpreter answers the acceptance criterion: a
// real /infer POST returns the argmax class + score for two zoo models,
// and they are bit-identical to a directly constructed interpreter at the
// same seed.
func TestInferMatchesDirectInterpreter(t *testing.T) {
	_, ts := newTestServer(t)
	for _, name := range testModels {
		rng := rand.New(rand.NewSource(7))
		e, err := zoo.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		elems := e.Spec.InputH * e.Spec.InputW * e.Spec.InputC
		data := make([]float64, elems)
		x := tensor.New(elems)
		for i := range data {
			v := rng.Float64()*2 - 1
			data[i] = v
			x.Data[i] = float32(v)
		}

		resp := inferOnce(t, ts.URL, name, data)
		class := output(resp, "class")
		score := output(resp, "score")
		scores := output(resp, "scores")
		if class == nil || score == nil || scores == nil {
			t.Fatalf("%s: response missing outputs: %+v", name, resp)
		}
		if len(scores.Data) != e.Spec.NumClasses {
			t.Fatalf("%s: got %d scores, want %d", name, len(scores.Data), e.Spec.NumClasses)
		}

		// Same lowering as the registry performs (seed 42, softmax).
		reg := NewRegistry(RegistryConfig{PoolSize: 1})
		entry, err := reg.Get(name, ModelOptions{Seed: 42, AppendSoftmax: true})
		if err != nil {
			t.Fatal(err)
		}
		ip, err := tflm.NewInterpreter(entry.Model, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantClass, wantScore, err := ip.Classify(x)
		if err != nil {
			t.Fatal(err)
		}
		if int(class.Data[0]) != wantClass {
			t.Fatalf("%s: served class %v, direct %d", name, class.Data[0], wantClass)
		}
		if got := float32(score.Data[0]); got != wantScore {
			t.Fatalf("%s: served score %v, direct %v", name, got, wantScore)
		}
	}
}

// TestInferClientBatch sends one request with a leading batch dimension
// and checks per-row outputs line up with single-row requests.
func TestInferClientBatch(t *testing.T) {
	_, ts := newTestServer(t)
	e, _ := zoo.Get("MicroNet-KWS-S")
	elems := e.Spec.InputH * e.Spec.InputW * e.Spec.InputC
	rng := rand.New(rand.NewSource(11))
	const n = 3
	data := make([]float64, n*elems)
	for i := range data {
		data[i] = rng.Float64()*2 - 1
	}
	resp := inferOnce(t, ts.URL, "MicroNet-KWS-S", data)
	class := output(resp, "class")
	if len(class.Data) != n {
		t.Fatalf("client batch: got %d classes, want %d", len(class.Data), n)
	}
	for b := 0; b < n; b++ {
		single := inferOnce(t, ts.URL, "MicroNet-KWS-S", data[b*elems:(b+1)*elems])
		if output(single, "class").Data[0] != class.Data[b] {
			t.Fatalf("row %d: batched class %v != single class %v", b, class.Data[b], output(single, "class").Data[0])
		}
	}
}

func TestInferBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v2/models/MicroNet-KWS-S/infer", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != 400 {
		t.Fatalf("bad JSON: status %d", code)
	}
	if code := post(`{"inputs":[]}`); code != 400 {
		t.Fatalf("no inputs: status %d", code)
	}
	if code := post(`{"inputs":[{"name":"input","datatype":"FP32","shape":[3],"data":[1,2,3]}]}`); code != 400 {
		t.Fatalf("wrong length: status %d", code)
	}
	if code := post(`{"inputs":[{"name":"input","datatype":"FP64","shape":[490],"data":[` + strings.Repeat("0,", 489) + `0]}]}`); code != 400 {
		t.Fatalf("bad datatype: status %d", code)
	}
	// INT8 out-of-range value.
	if code := post(`{"inputs":[{"name":"input","datatype":"INT8","shape":[490],"data":[999` + strings.Repeat(",0", 489) + `]}]}`); code != 400 {
		t.Fatalf("INT8 range: status %d", code)
	}
	resp, err := http.Post(ts.URL+"/v2/models/NoSuchModel/infer", "application/json", strings.NewReader(`{"inputs":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown model: status %d", resp.StatusCode)
	}
}

// TestInferShapeValidation: the declared shape must agree with the
// model's input layout — a transposed or wrong-count shape is a 400, the
// documented layouts (flat, [h,w,c], batched variants, absent) are 200.
func TestInferShapeValidation(t *testing.T) {
	_, ts := newTestServer(t)
	post := func(shape []int, n int) int {
		t.Helper()
		data := make([]float64, n*490)
		body, _ := json.Marshal(v2InferRequest{Inputs: []v2Tensor{{
			Name: "input", Datatype: "FP32", Shape: shape, Data: data,
		}}})
		resp, err := http.Post(ts.URL+"/v2/models/MicroNet-KWS-S/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, ok := range [][]int{nil, {490}, {49, 10, 1}, {2, 490}, {2, 49, 10, 1}} {
		n := 1
		if len(ok) > 0 && (len(ok) == 2 || len(ok) == 4) {
			n = ok[0]
		}
		if code := post(ok, n); code != 200 {
			t.Fatalf("shape %v: status %d, want 200", ok, code)
		}
	}
	for _, bad := range [][]int{{10, 49, 1}, {490, 1, 1}, {980}, {49, 10}} {
		if code := post(bad, 1); code != 400 {
			t.Fatalf("shape %v: status %d, want 400", bad, code)
		}
	}
	// Shape/data element-count mismatch.
	if code := post([]int{49, 10, 1}, 2); code != 400 {
		t.Fatalf("shape [49 10 1] with 2 rows of data: status %d, want 400", code)
	}
}

// TestInferBodyLimit: a client batch beyond maxInferRows is rejected, and
// a body larger than the derived limit gets 413 instead of exhausting
// memory.
func TestInferBodyLimit(t *testing.T) {
	_, ts := newTestServer(t)
	data := make([]float64, (maxInferRows+1)*490)
	body, _ := json.Marshal(v2InferRequest{Inputs: []v2Tensor{{Name: "input", Datatype: "FP32", Data: data}}})
	resp, err := http.Post(ts.URL+"/v2/models/MicroNet-KWS-S/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 && resp.StatusCode != 413 {
		t.Fatalf("oversized batch: status %d, want 400 or 413", resp.StatusCode)
	}

	// A body past the MaxBytesReader limit either gets a 413 or the
	// server cuts the connection mid-upload (also acceptable); what it
	// must never do is 200.
	huge := strings.NewReader(`{"inputs":[{"name":"input","data":[` + strings.Repeat("0.123456789,", 500_000) + `0]}]}`)
	resp2, err := http.Post(ts.URL+"/v2/models/MicroNet-KWS-S/infer", "application/json", huge)
	if err != nil {
		return // connection cut by the server: limit enforced
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp2.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	e, _ := zoo.Get("MicroNet-KWS-S")
	elems := e.Spec.InputH * e.Spec.InputW * e.Spec.InputC
	inferOnce(t, ts.URL, "MicroNet-KWS-S", make([]float64, elems))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"micronets_serve_models_loaded 2",
		"micronets_serve_lowerings_total 2",
		"micronets_serve_ram_budget_bytes 0",
		"micronets_serve_ram_planned_bytes ",
		`micronets_serve_requests_total{model="MicroNet-KWS-S"} 1`,
		`micronets_serve_batches_total{model="MicroNet-KWS-S"} 1`,
		`micronets_serve_arena_bytes{model="MicroNet-KWS-S"}`,
		`micronets_serve_model_version{model="MicroNet-KWS-S"} 1`,
		`micronets_serve_model_versions{model="MicroNet-KWS-S"} 1`,
		`micronets_serve_pool_size{model="MicroNet-KWS-S"} 2`,
		`micronets_serve_max_batch{model="MicroNet-KWS-S"} 8`,
		`micronets_serve_planned_arena_bytes{model="MicroNet-KWS-S"}`,
		`micronets_serve_batch_window_seconds{model="DSCNN-S"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// postJSON POSTs a body (possibly empty) and decodes the JSON response.
func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
	return resp.StatusCode, out
}

// repoIndex fetches /v2/repository/index rows keyed by model name (the
// newest version wins, matching the sort order).
func repoIndex(t *testing.T, url string) map[string]map[string]any {
	t.Helper()
	out := getJSON(t, url+"/v2/repository/index", 200)
	rows, _ := out["models"].([]any)
	byName := map[string]map[string]any{}
	for _, r := range rows {
		row := r.(map[string]any)
		name := row["name"].(string)
		if _, dup := byName[name]; !dup {
			byName[name] = row
		}
	}
	return byName
}

// TestAdminLoadUnloadIndex drives the control plane over HTTP: a model
// not in the boot set is hot-loaded by name, appears READY in the index
// with its planned capacity columns, serves an infer, and 404s again
// after unload — all without any restart.
func TestAdminLoadUnloadIndex(t *testing.T) {
	s, ts := newTestServer(t)

	// Boot state: both test models READY with capacity columns.
	idx := repoIndex(t, ts.URL)
	if len(idx) != 2 {
		t.Fatalf("boot index has %d models, want 2: %v", len(idx), idx)
	}
	for name, row := range idx {
		if row["state"] != "READY" || row["planned_ram_bytes"].(float64) <= 0 || row["flash_bytes"].(float64) <= 0 {
			t.Fatalf("boot index row %s = %v", name, row)
		}
	}

	// MBNETV2-S is not in the boot set: infer 404s, then an empty-body
	// admin load makes it servable.
	e, _ := zoo.Get("MBNETV2-S")
	elems := e.Spec.InputH * e.Spec.InputW * e.Spec.InputC
	data := make([]float64, elems)
	body, _ := json.Marshal(v2InferRequest{Inputs: []v2Tensor{{Name: "input", Datatype: "FP32", Data: data}}})
	resp, err := http.Post(ts.URL+"/v2/models/MBNETV2-S/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("infer before load: status %d, want 404", resp.StatusCode)
	}

	code, st := postJSON(t, ts.URL+"/v2/repository/models/MBNETV2-S/load", "")
	if code != 200 || st["state"] != "READY" || st["version"].(float64) != 1 {
		t.Fatalf("admin load: code %d, status %v", code, st)
	}
	if row := repoIndex(t, ts.URL)["MBNETV2-S"]; row == nil || row["state"] != "READY" {
		t.Fatalf("loaded model missing from index: %v", row)
	}
	inferOnce(t, ts.URL, "MBNETV2-S", data)

	// Loading again is idempotent — still version 1, no second lowering.
	low := s.repo.Lowerings()
	code, st = postJSON(t, ts.URL+"/v2/repository/models/MBNETV2-S/load", "")
	if code != 200 || st["version"].(float64) != 1 || s.repo.Lowerings() != low {
		t.Fatalf("re-load: code %d status %v lowerings %d->%d", code, st, low, s.repo.Lowerings())
	}

	// Unload drains it out of the index and the data path.
	code, _ = postJSON(t, ts.URL+"/v2/repository/models/MBNETV2-S/unload", "")
	if code != 200 {
		t.Fatalf("unload: code %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for repoIndex(t, ts.URL)["MBNETV2-S"] != nil {
		if time.Now().After(deadline) {
			t.Fatal("unloaded model never left the index")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp2, err := http.Post(ts.URL+"/v2/models/MBNETV2-S/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Fatalf("infer after unload: status %d, want 404", resp2.StatusCode)
	}

	// Unknown names 404 on both verbs.
	if code, _ := postJSON(t, ts.URL+"/v2/repository/models/NoSuchModel/load", ""); code != 404 {
		t.Fatalf("load unknown: code %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v2/repository/models/NoSuchModel/unload", ""); code != 404 {
		t.Fatalf("unload unknown: code %d", code)
	}
}

// TestAdminLoadInlineSpec publishes a complete architecture in the load
// body — the cmd/search -publish path — and proves it serves; a name
// mismatch between URL and spec is a 400.
func TestAdminLoadInlineSpec(t *testing.T) {
	_, ts := newTestServer(t)
	e, _ := zoo.Get("DSCNN-S")
	spec := *e.Spec
	spec.Name = "Inline-Test-DSCNN"
	t.Cleanup(func() { zoo.Unregister(spec.Name) })

	body, _ := json.Marshal(map[string]any{"spec": &spec, "options": map[string]any{"seed": 7}})
	code, st := postJSON(t, ts.URL+"/v2/repository/models/Inline-Test-DSCNN/load", string(body))
	if code != 200 || st["state"] != "READY" {
		t.Fatalf("inline load: code %d status %v", code, st)
	}
	elems := spec.InputH * spec.InputW * spec.InputC
	resp := inferOnce(t, ts.URL, spec.Name, make([]float64, elems))
	if resp.ModelName != spec.Name {
		t.Fatalf("inline model served as %q", resp.ModelName)
	}

	code, _ = postJSON(t, ts.URL+"/v2/repository/models/WrongName/load", string(body))
	if code != 400 {
		t.Fatalf("name-mismatched inline load: code %d, want 400", code)
	}
}

// TestAdminBudgetConflict: a hot-load that cannot fit the server's RAM
// budget is rejected with a structured 409, and the index is untouched.
func TestAdminBudgetConflict(t *testing.T) {
	// Budget sized to the boot model's weights + one batch-1 arena:
	// nothing else fits.
	reg := NewRegistry(RegistryConfig{PoolSize: 1})
	entry, err := reg.Get("DSCNN-S", ModelOptions{Seed: 42, AppendSoftmax: true})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := tflm.PlanMemory(entry.Model)
	if err != nil {
		t.Fatal(err)
	}
	budget := entry.WeightBytes + plan.ArenaBytes
	s, err := New(Config{
		Models:         []string{"DSCNN-S"},
		Options:        ModelOptions{Seed: 42, AppendSoftmax: true},
		PoolSize:       1,
		Batch:          BatcherConfig{MaxBatch: 1},
		RAMBudgetBytes: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	code, body := postJSON(t, ts.URL+"/v2/repository/models/MicroNet-KWS-S/load", "")
	if code != http.StatusConflict {
		t.Fatalf("over-budget load: code %d, want 409 (%v)", code, body)
	}
	if body["code"] != "ram_budget_exceeded" || body["model"] != "MicroNet-KWS-S" {
		t.Fatalf("409 body missing structured fields: %v", body)
	}
	if body["needed_bytes"].(float64) <= 0 || body["budget_bytes"].(float64) != float64(budget) {
		t.Fatalf("409 byte accounting wrong: %v", body)
	}
	// free_bytes is the precomputed budget − planned difference the fleet
	// placer bin-packs against; it must agree with the other two fields.
	if body["free_bytes"].(float64) != body["budget_bytes"].(float64)-body["planned_bytes"].(float64) {
		t.Fatalf("409 free_bytes != budget - planned: %v", body)
	}
	if idx := repoIndex(t, ts.URL); len(idx) != 1 || idx["MicroNet-KWS-S"] != nil {
		t.Fatalf("rejected load leaked into the index: %v", idx)
	}
}

// TestAdminLoadPartialOptions: an options object that only sets some
// fields must inherit the server's lowering for the rest. The detector:
// on a softmax-less server, a seed-only options body must hash to the
// SAME registry key as the boot load (idempotent, still version 1) — an
// options object that resets unspecified fields would flip softmax back
// on and trigger a spurious blue/green swap to version 2.
func TestAdminLoadPartialOptions(t *testing.T) {
	s, err := New(Config{
		Models:  []string{"DSCNN-S"},
		Options: ModelOptions{Seed: 42, AppendSoftmax: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	code, st := postJSON(t, ts.URL+"/v2/repository/models/DSCNN-S/load", `{"options":{"seed":42}}`)
	if code != 200 {
		t.Fatalf("partial-options load: code %d (%v)", code, st)
	}
	if st["version"].(float64) != 1 {
		t.Fatalf("seed-only options did not inherit the server lowering: swapped to version %v", st["version"])
	}
	// And an explicit override still works: a different seed IS a swap.
	code, st = postJSON(t, ts.URL+"/v2/repository/models/DSCNN-S/load", `{"options":{"seed":7}}`)
	if code != 200 || st["version"].(float64) != 2 {
		t.Fatalf("explicit seed override: code %d status %v, want version 2", code, st)
	}
}

// TestAdminInlinePublishRollsBackOnBudgetReject: a 409'd inline publish
// must leave the zoo catalogue untouched — no name registered, so a
// later by-name load cannot resolve the rejected spec.
func TestAdminInlinePublishRollsBackOnBudgetReject(t *testing.T) {
	reg := NewRegistry(RegistryConfig{PoolSize: 1})
	entry, err := reg.Get("DSCNN-S", ModelOptions{Seed: 42, AppendSoftmax: true})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := tflm.PlanMemory(entry.Model)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Models:         []string{"DSCNN-S"},
		Options:        ModelOptions{Seed: 42, AppendSoftmax: true},
		PoolSize:       1,
		Batch:          BatcherConfig{MaxBatch: 1},
		RAMBudgetBytes: entry.WeightBytes + plan.ArenaBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	big, _ := zoo.Get("MicroNet-KWS-S")
	spec := *big.Spec
	spec.Name = "Inline-Rollback-Test"
	t.Cleanup(func() { zoo.Unregister(spec.Name) })
	body, _ := json.Marshal(map[string]any{"spec": &spec})
	code, resp := postJSON(t, ts.URL+"/v2/repository/models/Inline-Rollback-Test/load", string(body))
	if code != http.StatusConflict {
		t.Fatalf("over-budget inline publish: code %d (%v)", code, resp)
	}
	if _, err := zoo.Get(spec.Name); err == nil {
		t.Fatal("rejected inline publish left the spec registered in the zoo")
	}
}

// TestLoadSpecFilePartialFailure: one over-budget spec in a multi-spec
// export must not stop the rest of the file from loading.
func TestLoadSpecFilePartialFailure(t *testing.T) {
	small, _ := zoo.Get("DSCNN-S")
	big, _ := zoo.Get("MicroNet-KWS-S")
	opts := ModelOptions{Seed: 42, AppendSoftmax: true}
	smallSpec := *small.Spec
	smallSpec.Name = "SpecFile-Partial-Small"
	bigSpec := *big.Spec
	bigSpec.Name = "SpecFile-Partial-Big"
	t.Cleanup(func() {
		zoo.Unregister(smallSpec.Name)
		zoo.Unregister(bigSpec.Name)
	})
	path := t.TempDir() + "/frontier.json"
	writeTestSpecFile(t, path, &bigSpec, &smallSpec) // over-budget spec FIRST

	small2 := testSpec(t, "DSCNN-S")
	r := NewRepository(RepositoryConfig{
		Logger:         discardLogger(),
		RAMBudgetBytes: weightBytesOf(t, small2, opts) + arenaBytesAt(t, small2, opts, 1),
		PoolSize:       1,
		Batch:          BatcherConfig{MaxBatch: 1},
	})
	defer r.Close()
	statuses, err := r.LoadSpecFile(path, opts)
	var be *BudgetError
	if !errors.As(err, &be) || be.Model != bigSpec.Name {
		t.Fatalf("want a joined BudgetError for %s, got %v", bigSpec.Name, err)
	}
	if len(statuses) != 1 || statuses[0].Name != smallSpec.Name || statuses[0].State != StateReady {
		t.Fatalf("the fitting spec after the failing one did not load: %+v", statuses)
	}
}

// TestAdminDisabled: DisableAdmin removes the control plane but not the
// data plane.
func TestAdminDisabled(t *testing.T) {
	s, err := New(Config{
		Models:       []string{"DSCNN-S"},
		Options:      ModelOptions{Seed: 42, AppendSoftmax: true},
		DisableAdmin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	resp, err := http.Get(ts.URL + "/v2/repository/index")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("admin index with DisableAdmin: status %d, want 404", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/v2/models/DSCNN-S", 200)
}

// TestDuplicateModelNames: a repeated name in Config.Models must not
// load (and leak) a second version of the same model — the repository's
// idempotent load collapses it, without even re-lowering the graph.
func TestDuplicateModelNames(t *testing.T) {
	s, err := New(Config{
		Models:  []string{"MicroNet-KWS-S", "MicroNet-KWS-S"},
		Options: ModelOptions{Seed: 42},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if idx := s.repo.Index(); len(idx) != 1 || idx[0].Version != 1 {
		t.Fatalf("duplicated name yielded index %+v, want one version-1 entry", idx)
	}
	if n := s.repo.Lowerings(); n != 1 {
		t.Fatalf("duplicated name lowered %d times, want 1", n)
	}
}

// TestReadyReportsModelsReady: the readiness body carries the count of
// models with a serving version, so a fleet router can tell "up but
// empty" from "serving" during warm-up — and the count survives the
// not-ready (503) branch too.
func TestReadyReportsModelsReady(t *testing.T) {
	s, ts := newTestServer(t)
	out := getJSON(t, ts.URL+"/v2/health/ready", 200)
	if out["ready"] != true || out["models_ready"].(float64) != float64(len(testModels)) {
		t.Fatalf("ready body = %v, want ready:true models_ready:%d", out, len(testModels))
	}
	s.ready.Store(false)
	out = getJSON(t, ts.URL+"/v2/health/ready", 503)
	if out["ready"] != false {
		t.Fatalf("not-ready body = %v", out)
	}
	if _, ok := out["models_ready"]; !ok {
		t.Fatalf("not-ready body dropped models_ready: %v", out)
	}
	s.ready.Store(true)
}

// TestRepoIndexReportsFreeBytes: the index top level precomputes
// free_bytes = budget − planned for budgeted repositories and -1 for
// unbudgeted ones, so the placer never has to diff two gauges.
func TestRepoIndexReportsFreeBytes(t *testing.T) {
	_, ts := newTestServer(t) // unbudgeted
	out := getJSON(t, ts.URL+"/v2/repository/index", 200)
	if out["free_bytes"].(float64) != -1 {
		t.Fatalf("unbudgeted index free_bytes = %v, want -1", out["free_bytes"])
	}

	budget := 4 << 20
	s, err := New(Config{
		Models:         []string{"DSCNN-S"},
		Options:        ModelOptions{Seed: 42, AppendSoftmax: true},
		PoolSize:       1,
		Batch:          BatcherConfig{MaxBatch: 1},
		RAMBudgetBytes: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts2.Close(); s.Close() })
	out = getJSON(t, ts2.URL+"/v2/repository/index", 200)
	free := out["free_bytes"].(float64)
	planned := out["ram_planned_bytes"].(float64)
	if planned <= 0 || free != float64(budget)-planned {
		t.Fatalf("budgeted index free_bytes = %v, want %d - %v", free, budget, planned)
	}
}

// TestDrain checks the lifecycle: after Close, readiness fails and infer
// returns 503.
func TestDrain(t *testing.T) {
	s, ts := newTestServer(t)
	s.Close()
	getJSON(t, ts.URL+"/v2/health/ready", 503)
	e, _ := zoo.Get("MicroNet-KWS-S")
	elems := e.Spec.InputH * e.Spec.InputW * e.Spec.InputC
	body, _ := json.Marshal(v2InferRequest{Inputs: []v2Tensor{{Name: "input", Datatype: "FP32", Data: make([]float64, elems)}}})
	resp, err := http.Post(ts.URL+"/v2/models/MicroNet-KWS-S/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("infer after drain: status %d, want 503", resp.StatusCode)
	}
}
