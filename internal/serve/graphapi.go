package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"micronets/internal/graph"
	"micronets/internal/servegraph"
)

// ModelInUseError rejects an Unload of a model that something — an
// inference graph — still references. The admin API renders it as a
// structured 409: delete or re-point the holders first.
type ModelInUseError struct {
	Model string
	// Holders names the graphs referencing the model.
	Holders []string
}

func (e *ModelInUseError) Error() string {
	return fmt.Sprintf("serve: model %q is referenced by graph(s) %s; delete them before unloading",
		e.Model, strings.Join(e.Holders, ", "))
}

// graphBackend adapts Repository to servegraph.Backend: resolve a serving
// version's metadata, and run one float row through its micro-batcher
// with the model's own input quantization.
type graphBackend struct{ repo *Repository }

// GraphBackend returns the servegraph routing surface of a repository —
// the backend a servegraph.Registry routes over.
func GraphBackend(r *Repository) servegraph.Backend { return graphBackend{repo: r} }

func (b graphBackend) ModelInfo(name string) (servegraph.ModelInfo, error) {
	v, release, err := b.repo.acquire(name)
	if err != nil {
		return servegraph.ModelInfo{}, err
	}
	defer release()
	mod := v.entry.Model
	in, out := mod.Tensors[mod.Input], mod.Tensors[mod.Output]
	return servegraph.ModelInfo{
		Name:        v.name,
		Version:     v.num,
		Task:        v.task,
		InputH:      in.H,
		InputW:      in.W,
		InputC:      in.C,
		OutputElems: out.Elems(),
		Softmax:     v.key.opts.AppendSoftmax,
	}, nil
}

func (b graphBackend) Infer(ctx context.Context, name string, x []float64) (servegraph.Scored, error) {
	v, release, err := b.repo.acquire(name)
	if err != nil {
		return servegraph.Scored{}, err
	}
	defer release()
	mod := v.entry.Model
	if want := mod.Tensors[mod.Input].Elems(); len(x) != want {
		return servegraph.Scored{}, fmt.Errorf("serve: model %s: graph input has %d elements, want %d", v.name, len(x), want)
	}
	row, err := quantizeRow(mod, "FP32", x)
	if err != nil {
		return servegraph.Scored{}, err
	}
	out, err := v.batcher.Submit(ctx, row)
	if err != nil {
		return servegraph.Scored{}, err
	}
	outT := mod.Tensors[mod.Output]
	scores := make([]float64, len(out))
	for i, q := range out {
		scores[i] = float64(outT.Scale) * float64(int32(q)-outT.ZeroPoint)
	}
	probs := scores
	if !v.key.opts.AppendSoftmax {
		probs = servegraph.Softmax(scores)
	}
	return servegraph.Scored{Model: v.name, Version: v.num, Scores: scores, Probs: probs}, nil
}

// graphUnloadGuard builds the Repository hook a server installs so Unload
// of a model referenced by a registered graph 409s instead of silently
// breaking the graph.
func graphUnloadGuard(graphs *servegraph.Registry) func(model string) error {
	return func(model string) error {
		if holders := graphs.Referenced(model); len(holders) > 0 {
			return &ModelInUseError{Model: model, Holders: holders}
		}
		return nil
	}
}

// ---- /v2/graphs HTTP surface ----

// graphInferRequest extends the v2 infer body with the routing parameter
// switch nodes match on.
type graphInferRequest struct {
	ID         string            `json:"id,omitempty"`
	Inputs     []v2Tensor        `json:"inputs"`
	Parameters map[string]string `json:"parameters,omitempty"`
}

// graphError is the structured 4xx body for graph registration and infer
// failures.
type graphError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
	Graph string `json:"graph,omitempty"`
	Node  string `json:"node,omitempty"`
	Model string `json:"model,omitempty"`
}

// writeGraphError maps router errors onto HTTP statuses: invalid or
// dangling specs → structured 400/404, stale version pins and in-use
// conflicts → 409, unknown graphs → 404.
func writeGraphError(w http.ResponseWriter, err error) {
	var ve *servegraph.ValidationError
	if errors.As(err, &ve) {
		code := http.StatusBadRequest
		if ve.Code == "unknown_model" {
			code = http.StatusNotFound
		}
		writeJSON(w, code, graphError{Error: err.Error(), Code: ve.Code, Graph: ve.Graph, Node: ve.Node, Model: ve.Model})
		return
	}
	var nf *servegraph.NotFoundError
	if errors.As(err, &nf) {
		writeJSON(w, http.StatusNotFound, graphError{Error: err.Error(), Code: "unknown_graph", Graph: nf.Graph})
		return
	}
	var sv *servegraph.StaleVersionError
	if errors.As(err, &sv) {
		writeJSON(w, http.StatusConflict, graphError{Error: err.Error(), Code: "stale_version", Graph: sv.Graph, Model: sv.Model})
		return
	}
	var re *servegraph.RouteError
	if errors.As(err, &re) {
		writeJSON(w, http.StatusBadRequest, graphError{Error: err.Error(), Code: "unknown_route", Graph: re.Graph, Node: re.Node})
		return
	}
	var nl *NotLoadedError
	if errors.As(err, &nl) {
		// A referenced model was unloaded out-of-band (guard disabled or
		// programmatic bypass): surface it as a conflict, not a 500.
		writeJSON(w, http.StatusConflict, graphError{Error: err.Error(), Code: "model_not_loaded", Model: nl.Model})
		return
	}
	if errors.Is(err, ErrDraining) {
		writeJSON(w, http.StatusServiceUnavailable, v2Error{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusInternalServerError, v2Error{Error: err.Error()})
}

// handleGraphList answers GET /v2/graphs with every graph's stats.
func (s *Server) handleGraphList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.graphs.Snapshot()})
}

// handleGraphGet answers GET /v2/graphs/{name} with the spec + stats.
func (s *Server) handleGraphGet(w http.ResponseWriter, r *http.Request) {
	g, err := s.graphs.Get(r.PathValue("name"))
	if err != nil {
		writeGraphError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"spec": g.Spec(), "stats": g.Stats()})
}

// handleGraphPut registers (or replaces) a graph after validating it
// against the live repository index.
func (s *Server) handleGraphPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var spec servegraph.Spec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, v2Error{Error: "bad JSON: " + err.Error()})
		return
	}
	if spec.Name == "" {
		spec.Name = name
	}
	if spec.Name != name {
		writeJSON(w, http.StatusBadRequest, graphError{Error: fmt.Sprintf(
			"spec is named %q, URL says %q", spec.Name, name), Code: "invalid_graph", Graph: spec.Name})
		return
	}
	g, err := s.graphs.Put(&spec)
	if err != nil {
		writeGraphError(w, err)
		return
	}
	s.log.Info("graph registered", "graph", name, "revision", g.Revision(), "models", g.Models())
	writeJSON(w, http.StatusOK, map[string]any{
		"name": name, "revision": g.Revision(), "models": g.Models(),
		"input_shape": []int{g.InputH, g.InputW, g.InputC},
	})
}

// handleGraphDelete removes a graph, releasing its model references.
func (s *Server) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.graphs.Delete(name); err != nil {
		writeGraphError(w, err)
		return
	}
	s.log.Info("graph deleted", "graph", name)
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "deleted": true})
}

// handleGraphInfer routes a v2-style infer request through a graph. The
// body matches POST /v2/models/{name}/infer plus an optional
// parameters.route string that switch nodes match on; a leading batch
// dimension fans out to concurrent row evaluations. The response reports
// the same scores/class/score outputs plus which leaf answered each row
// and how many cascade stages it escalated through.
func (s *Server) handleGraphInfer(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, v2Error{Error: "server draining"})
		return
	}
	name := r.PathValue("name")
	g, err := s.graphs.Get(name)
	if err != nil {
		writeGraphError(w, err)
		return
	}
	layout := &graph.Tensor{H: g.InputH, W: g.InputW, C: g.InputC}
	elems := layout.Elems()
	r.Body = http.MaxBytesReader(w, r.Body, int64(1<<16)+24*int64(elems)*maxInferRows)
	var req graphInferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, v2Error{Error: fmt.Sprintf(
				"request body exceeds %d bytes (max client batch is %d rows)", tooBig.Limit, maxInferRows)})
			return
		}
		writeJSON(w, http.StatusBadRequest, v2Error{Error: "bad JSON: " + err.Error()})
		return
	}
	if len(req.Inputs) != 1 {
		writeJSON(w, http.StatusBadRequest, v2Error{Error: fmt.Sprintf("want exactly 1 input tensor, got %d", len(req.Inputs))})
		return
	}
	in := req.Inputs[0]
	if in.Datatype != "" && in.Datatype != "FP32" {
		writeJSON(w, http.StatusBadRequest, v2Error{Error: fmt.Sprintf(
			"unsupported datatype %q (graphs re-quantize per node; send FP32)", in.Datatype)})
		return
	}
	n, err := batchRows(in, layout)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, v2Error{Error: fmt.Sprintf("input %q: %v (graph %s)", in.Name, err, name)})
		return
	}
	route := req.Parameters["route"]

	results := make([]*servegraph.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for b := 0; b < n; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			results[b], errs[b] = g.Infer(r.Context(), in.Data[b*elems:(b+1)*elems], route)
		}(b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			writeGraphError(w, err)
			return
		}
	}

	outElems := g.OutputElems
	scores := make([]float64, 0, n*outElems)
	classes := make([]float64, n)
	top := make([]float64, n)
	servedBy := make([]string, n)
	escalations := make([]int, n)
	for b, res := range results {
		scores = append(scores, res.Scores...)
		classes[b] = float64(res.Class)
		top[b] = res.Scores[res.Class]
		servedBy[b] = res.ServedBy
		escalations[b] = res.Escalations
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"model_name": name,
		"id":         req.ID,
		"outputs": []v2Tensor{
			{Name: "scores", Datatype: "FP32", Shape: []int{n, outElems}, Data: scores},
			{Name: "class", Datatype: "INT32", Shape: []int{n}, Data: classes},
			{Name: "score", Datatype: "FP32", Shape: []int{n}, Data: top},
		},
		"served_by":   servedBy,
		"escalations": escalations,
	})
}
