package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"micronets/internal/graph"
	"micronets/internal/zoo"
)

// Config configures a Server.
type Config struct {
	// Models are the zoo names to preload; empty defaults to the full
	// servable catalogue (zoo.ServableNames).
	Models []string
	// Options selects the lowering (bits, seed, softmax) shared by every
	// served model.
	Options ModelOptions
	// PoolSize is interpreters pre-warmed per model (default 2).
	PoolSize int
	// Batch bounds the micro-batching window.
	Batch BatcherConfig
	// Logger receives one structured line per request (default
	// slog.Default).
	Logger *slog.Logger
	// DrainTimeout bounds graceful shutdown (default 10s).
	DrainTimeout time.Duration
	// DrainGrace is how long the readiness probe fails before the
	// listener closes (default 500ms), giving load balancers a window to
	// stop routing here instead of seeing connection-refused mid-deploy.
	// Set negative to skip the wait (tests, examples).
	DrainGrace time.Duration
}

// servedModel is one model's full serving chain.
type servedModel struct {
	entry   *Entry
	batcher *Batcher
}

// Server is the HTTP inference server. Construct with New (which preloads
// and pool-warms every model, so readiness implies zero cold-start on the
// request path), mount Handler on any listener, and Close to drain.
type Server struct {
	cfg    Config
	reg    *Registry
	models map[string]*servedModel
	mux    *http.ServeMux
	log    *slog.Logger
	ready  atomic.Bool
	start  time.Time

	closeOnce sync.Once
}

// New preloads cfg.Models into a fresh registry and starts one batcher
// per model. It returns an error if any model cannot be lowered or
// planned — a server that constructs is fully warm.
func New(cfg Config) (*Server, error) {
	if len(cfg.Models) == 0 {
		cfg.Models = zoo.ServableNames()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.DrainGrace == 0 {
		cfg.DrainGrace = 500 * time.Millisecond
	}
	s := &Server{
		cfg:    cfg,
		reg:    NewRegistry(RegistryConfig{PoolSize: cfg.PoolSize}),
		models: make(map[string]*servedModel, len(cfg.Models)),
		log:    cfg.Logger,
		start:  time.Now(),
	}
	for _, name := range cfg.Models {
		if _, dup := s.models[name]; dup {
			continue // a repeated name must not leak the first batcher
		}
		entry, err := s.reg.Get(name, cfg.Options)
		if err != nil {
			return nil, err
		}
		s.models[name] = &servedModel{entry: entry, batcher: NewBatcher(entry, cfg.Batch)}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /v2/health/live", s.handleLive)
	s.mux.HandleFunc("GET /v2/health/ready", s.handleReady)
	s.mux.HandleFunc("GET /v2/models", s.handleModels)
	s.mux.HandleFunc("GET /v2/models/{name}", s.handleModelMeta)
	s.mux.HandleFunc("POST /v2/models/{name}/infer", s.handleInfer)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.ready.Store(true)
	return s, nil
}

// Handler returns the fully routed handler wrapped in request logging.
func (s *Server) Handler() http.Handler { return s.logMiddleware(s.mux) }

// Close marks the server not-ready and drains every batcher: queued
// requests finish, new Submits fail with ErrDraining. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.ready.Store(false)
		for _, m := range s.models {
			m.batcher.Close()
		}
	})
}

// ListenAndServe serves on addr until ctx is cancelled, then drains: the
// readiness probe starts failing (so load balancers stop routing here),
// in-flight requests get DrainTimeout to finish, and the batchers are
// flushed. This is the SIGTERM path of cmd/serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.serve(ctx, ln)
}

func (s *Server) serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	s.log.Info("serving", "addr", ln.Addr().String(), "models", len(s.models),
		"pool_size", s.reg.cfg.PoolSize, "max_batch", s.cfg.Batch.MaxBatch)
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	s.ready.Store(false)
	s.log.Info("draining", "grace", s.cfg.DrainGrace.String(), "timeout", s.cfg.DrainTimeout.String())
	// Fail readiness for a grace window BEFORE closing the listener, so
	// probing load balancers route traffic away instead of hitting
	// connection-refused.
	if s.cfg.DrainGrace > 0 {
		time.Sleep(s.cfg.DrainGrace)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(shutCtx)
	s.Close()
	if err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	return nil
}

// ---- KServe open-inference-protocol (v2) JSON types ----

// v2Tensor is one named tensor in an infer request or response.
type v2Tensor struct {
	Name     string    `json:"name"`
	Shape    []int     `json:"shape"`
	Datatype string    `json:"datatype"`
	Data     []float64 `json:"data"`
}

type v2InferRequest struct {
	ID     string     `json:"id,omitempty"`
	Inputs []v2Tensor `json:"inputs"`
}

type v2InferResponse struct {
	ModelName string     `json:"model_name"`
	ID        string     `json:"id,omitempty"`
	Outputs   []v2Tensor `json:"outputs"`
}

type v2Error struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"live": true})
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ready": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	type modelState struct {
		Name  string `json:"name"`
		Task  string `json:"task"`
		State string `json:"state"`
	}
	entries := s.reg.Entries()
	out := make([]modelState, 0, len(entries))
	for _, e := range entries {
		out = append(out, modelState{Name: e.Name, Task: e.Spec.Task, State: "READY"})
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": out})
}

func (s *Server) handleModelMeta(w http.ResponseWriter, r *http.Request) {
	m, ok := s.models[r.PathValue("name")]
	if !ok {
		writeJSON(w, http.StatusNotFound, v2Error{Error: fmt.Sprintf("model %q not loaded", r.PathValue("name"))})
		return
	}
	mod := m.entry.Model
	in := mod.Tensors[mod.Input]
	out := mod.Tensors[mod.Output]
	writeJSON(w, http.StatusOK, map[string]any{
		"name":     m.entry.Name,
		"versions": []string{"1"},
		"platform": "micronets-go-tflm",
		"inputs": []map[string]any{{
			"name": "input", "datatype": "FP32",
			"shape": []int{in.H, in.W, in.C},
			"quantization": map[string]any{
				"scale": in.Scale, "zero_point": in.ZeroPoint, "bits": in.Bits,
			},
		}},
		"outputs": []map[string]any{{
			"name": "scores", "datatype": "FP32",
			"shape": []int{out.Elems()},
		}},
		"details": map[string]any{
			"task":        m.entry.Spec.Task,
			"macs":        mod.TotalMACs(),
			"flash_bytes": mod.FlashBytes(),
			"arena_bytes": m.entry.ArenaBytes,
			"pool_size":   m.entry.Pool.Size(),
		},
	})
}

// handleInfer decodes a v2 infer request, quantizes (or passes through)
// the input rows, pushes each row through the model's micro-batcher, and
// answers with the dequantized score vector plus argmax class and top
// score per row. A leading batch dimension is allowed: shape [n, h, w, c]
// (or data of n×elems values) fans out to n concurrent batcher submits,
// which the batcher then coalesces back into few InvokeBatch calls.
func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	m, ok := s.models[r.PathValue("name")]
	if !ok {
		writeJSON(w, http.StatusNotFound, v2Error{Error: fmt.Sprintf("model %q not loaded", r.PathValue("name"))})
		return
	}
	mod := m.entry.Model
	elems := mod.Tensors[mod.Input].Elems()
	// Bound the body before decoding: ~24 bytes per JSON float for a full
	// client batch plus envelope headroom. One oversized POST must not be
	// able to exhaust server memory.
	r.Body = http.MaxBytesReader(w, r.Body, int64(1<<16)+24*int64(elems)*maxInferRows)
	var req v2InferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, v2Error{Error: fmt.Sprintf(
				"request body exceeds %d bytes (max client batch is %d rows)", tooBig.Limit, maxInferRows)})
			return
		}
		writeJSON(w, http.StatusBadRequest, v2Error{Error: "bad JSON: " + err.Error()})
		return
	}
	if len(req.Inputs) != 1 {
		writeJSON(w, http.StatusBadRequest, v2Error{Error: fmt.Sprintf("want exactly 1 input tensor, got %d", len(req.Inputs))})
		return
	}
	in := req.Inputs[0]
	n, err := batchRows(in, mod.Tensors[mod.Input])
	if err != nil {
		writeJSON(w, http.StatusBadRequest, v2Error{Error: fmt.Sprintf("input %q: %v (model %s)", in.Name, err, m.entry.Name)})
		return
	}
	rows := make([][]int8, n)
	for b := 0; b < n; b++ {
		row, err := quantizeRow(mod, in.Datatype, in.Data[b*elems:(b+1)*elems])
		if err != nil {
			writeJSON(w, http.StatusBadRequest, v2Error{Error: err.Error()})
			return
		}
		rows[b] = row
	}

	outs := make([][]int8, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for b := range rows {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			outs[b], errs[b] = m.batcher.Submit(r.Context(), rows[b])
		}(b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			code := http.StatusInternalServerError
			if errors.Is(err, ErrDraining) {
				code = http.StatusServiceUnavailable
			}
			writeJSON(w, code, v2Error{Error: err.Error()})
			return
		}
	}

	outT := mod.Tensors[mod.Output]
	scores := make([]float64, 0, n*outT.Elems())
	classes := make([]float64, n)
	top := make([]float64, n)
	for b, out := range outs {
		best := 0
		for i, q := range out {
			v := float64(outT.Scale) * float64(int32(q)-outT.ZeroPoint)
			scores = append(scores, v)
			if q > out[best] {
				best = i
			}
		}
		classes[b] = float64(best)
		top[b] = float64(outT.Scale) * float64(int32(out[best])-outT.ZeroPoint)
	}
	writeJSON(w, http.StatusOK, v2InferResponse{
		ModelName: m.entry.Name,
		ID:        req.ID,
		Outputs: []v2Tensor{
			{Name: "scores", Datatype: "FP32", Shape: []int{n, outT.Elems()}, Data: scores},
			{Name: "class", Datatype: "INT32", Shape: []int{n}, Data: classes},
			{Name: "score", Datatype: "FP32", Shape: []int{n}, Data: top},
		},
	})
}

// maxInferRows caps the leading client-side batch dimension of one infer
// request; the request-body limit is derived from it.
const maxInferRows = 64

// batchRows validates an input tensor's shape and data length against the
// model's input and returns the client batch size. Accepted shapes:
// absent (batch inferred from data length), [elems], [h,w,c], and their
// batched forms [n,elems] / [n,h,w,c]. A shape whose element count or
// layout disagrees with the model is rejected rather than silently
// reinterpreted — the metadata endpoint advertises the layout, so a
// transposed shape is a client bug worth a 400.
func batchRows(in v2Tensor, t *graph.Tensor) (int, error) {
	elems := t.Elems()
	if len(in.Data) == 0 || len(in.Data)%elems != 0 {
		return 0, fmt.Errorf("has %d values, want a multiple of %d", len(in.Data), elems)
	}
	n := len(in.Data) / elems
	if n > maxInferRows {
		return 0, fmt.Errorf("client batch of %d rows exceeds the per-request max of %d", n, maxInferRows)
	}
	if len(in.Shape) == 0 {
		return n, nil
	}
	prod := 1
	for _, d := range in.Shape {
		prod *= d
	}
	if prod != len(in.Data) {
		return 0, fmt.Errorf("shape %v describes %d elements, data has %d", in.Shape, prod, len(in.Data))
	}
	ok := false
	switch s := in.Shape; len(s) {
	case 1:
		ok = s[0] == elems && n == 1
	case 2:
		ok = s[0] == n && s[1] == elems
	case 3:
		ok = s[0] == t.H && s[1] == t.W && s[2] == t.C && n == 1
	case 4:
		ok = s[0] == n && s[1] == t.H && s[2] == t.W && s[3] == t.C
	}
	if !ok {
		return 0, fmt.Errorf("shape %v incompatible with model input [%d %d %d]", in.Shape, t.H, t.W, t.C)
	}
	return n, nil
}

// quantizeRow converts one input row to the model's quantized domain:
// FP32 rows go through the affine input quantization (the server-side
// analogue of Interpreter.SetInputFloat), INT8 rows are range-checked and
// passed through raw.
func quantizeRow(mod *graph.Model, datatype string, data []float64) ([]int8, error) {
	in := mod.Tensors[mod.Input]
	row := make([]int8, len(data))
	lo, hi := int32(-128), int32(127)
	if in.Bits == 4 {
		lo, hi = -8, 7
	}
	switch datatype {
	case "", "FP32":
		for i, v := range data {
			q := int32(math.Round(v/float64(in.Scale))) + in.ZeroPoint
			if q < lo {
				q = lo
			}
			if q > hi {
				q = hi
			}
			row[i] = int8(q)
		}
	case "INT8":
		for i, v := range data {
			q := int32(v)
			if float64(q) != v || q < lo || q > hi {
				return nil, fmt.Errorf("INT8 input value %v out of range [%d,%d]", v, lo, hi)
			}
			row[i] = int8(q)
		}
	default:
		return nil, fmt.Errorf("unsupported datatype %q (want FP32 or INT8)", datatype)
	}
	return row, nil
}

// statusWriter captures the response code for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += n
	return n, err
}

// logMiddleware emits one structured line per request.
func (s *Server) logMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"dur_ms", float64(time.Since(start).Microseconds())/1000,
			"remote", r.RemoteAddr,
		)
	})
}
