package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"micronets/internal/arch"
	"micronets/internal/graph"
	"micronets/internal/obs"
	"micronets/internal/servegraph"
	"micronets/internal/zoo"
)

// Config configures a Server.
type Config struct {
	// Repository, when set, is the externally owned control plane the
	// server serves from (the caller keeps its lifecycle). When nil the
	// server builds and owns one from the fields below.
	Repository *Repository
	// Models are the zoo names to load at boot. Empty defaults to the
	// full servable catalogue when the repository starts empty; models
	// that do not fit the RAM budget are then skipped with a warning
	// instead of failing the boot.
	Models []string
	// Options selects the default lowering (bits, seed, softmax).
	Options ModelOptions
	// PoolSize is the desired interpreters per model (default 2); a RAM
	// budget may scale it down per model.
	PoolSize int
	// Batch bounds the micro-batching window; a RAM budget may scale
	// MaxBatch down per model.
	Batch BatcherConfig
	// RAMBudgetBytes bounds the summed planned arena bytes across all
	// loaded models (0 = unbudgeted). See RepositoryConfig.
	RAMBudgetBytes int
	// SkipOverBudget makes boot loads best-effort: a model in Models that
	// cannot fit the RAM budget is skipped with a warning instead of
	// failing New. Catalogue-wide boots ("serve everything that fits")
	// set it; explicit curated lists should not.
	SkipOverBudget bool
	// DisableAdmin turns off the /v2/repository control-plane endpoints,
	// freezing the model set like the pre-repository server.
	DisableAdmin bool
	// WatchSpecs lists spec files (or directories of *.json spec files)
	// the server polls and hot-loads on change. The watcher starts only
	// after the boot loads finish, so it can never race them for the RAM
	// budget, and stops when serving stops.
	WatchSpecs []string
	// WatchInterval is the WatchSpecs poll interval (default 2s).
	WatchInterval time.Duration
	// Logger receives one structured line per request (default
	// slog.Default).
	Logger *slog.Logger
	// DrainTimeout bounds graceful shutdown (default 10s).
	DrainTimeout time.Duration
	// DrainGrace is how long the readiness probe fails before the
	// listener closes (default 500ms), giving load balancers a window to
	// stop routing here instead of seeing connection-refused mid-deploy.
	// Set negative to skip the wait (tests, examples).
	DrainGrace time.Duration
}

// Server is the HTTP inference server: the KServe-v2-style data plane
// (health, models, infer, metrics) plus the repository admin control
// plane, all backed by one Repository. Construct with New (which loads
// and pool-warms the boot models, so readiness implies zero cold-start on
// the request path), mount Handler on any listener, and Close to drain.
type Server struct {
	cfg      Config
	repo     *Repository
	ownsRepo bool
	graphs   *servegraph.Registry
	mux      *http.ServeMux
	log      *slog.Logger
	ready    atomic.Bool
	start    time.Time

	// publishMu serializes inline-spec publishes (a rare admin
	// operation), so a failed publish's zoo rollback can never undo a
	// concurrent successful publish of the same name.
	publishMu sync.Mutex
	closeOnce sync.Once
}

// New builds the server and loads cfg.Models through the repository. It
// returns an error if any explicitly requested model cannot be lowered,
// planned, or fit into the budget — a server that constructs is fully
// warm for everything it reports serving.
func New(cfg Config) (*Server, error) {
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.DrainGrace == 0 {
		cfg.DrainGrace = 500 * time.Millisecond
	}
	repo := cfg.Repository
	ownsRepo := false
	if repo == nil {
		ownsRepo = true
		repo = NewRepository(RepositoryConfig{
			RAMBudgetBytes: cfg.RAMBudgetBytes,
			PoolSize:       cfg.PoolSize,
			Batch:          cfg.Batch,
			Options:        cfg.Options,
			Logger:         cfg.Logger,
		})
	}
	// "Serve everything" is the default only when nothing else decides
	// the model set — no explicit list, and no repository preloaded by
	// the caller. An implicit catalogue is best-effort under a RAM
	// budget: models that cannot fit are skipped, not fatal.
	if len(cfg.Models) == 0 && len(repo.Index()) == 0 {
		cfg.Models = zoo.ServableNames()
		cfg.SkipOverBudget = true
	}
	s := &Server{
		cfg:      cfg,
		repo:     repo,
		ownsRepo: ownsRepo,
		log:      cfg.Logger,
		start:    time.Now(),
	}
	for _, name := range cfg.Models {
		if _, err := repo.LoadZoo(name, cfg.Options); err != nil {
			var be *BudgetError
			if cfg.SkipOverBudget && errors.As(err, &be) {
				cfg.Logger.Warn("skipping model over RAM budget", "model", name,
					"needed_bytes", be.NeededBytes, "budget_bytes", be.BudgetBytes,
					"planned_bytes", be.PlannedBytes)
				continue
			}
			if ownsRepo {
				repo.Close()
			}
			return nil, err
		}
	}
	s.graphs = servegraph.NewRegistry(GraphBackend(repo))
	repo.SetUnloadGuard(graphUnloadGuard(s.graphs))
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /v2/health/live", s.handleLive)
	s.mux.HandleFunc("GET /v2/health/ready", s.handleReady)
	s.mux.HandleFunc("GET /v2/models", s.handleModels)
	s.mux.HandleFunc("GET /v2/models/{name}", s.handleModelMeta)
	s.mux.HandleFunc("GET /v2/models/{name}/profile", s.handleProfile)
	s.mux.HandleFunc("POST /v2/models/{name}/infer", s.handleInfer)
	s.mux.HandleFunc("GET /v2/graphs", s.handleGraphList)
	s.mux.HandleFunc("GET /v2/graphs/{name}", s.handleGraphGet)
	s.mux.HandleFunc("POST /v2/graphs/{name}/infer", s.handleGraphInfer)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if !cfg.DisableAdmin {
		s.mux.HandleFunc("GET /v2/repository/index", s.handleRepoIndex)
		s.mux.HandleFunc("POST /v2/repository/models/{name}/load", s.handleRepoLoad)
		s.mux.HandleFunc("POST /v2/repository/models/{name}/unload", s.handleRepoUnload)
		s.mux.HandleFunc("PUT /v2/graphs/{name}", s.handleGraphPut)
		s.mux.HandleFunc("DELETE /v2/graphs/{name}", s.handleGraphDelete)
	}
	s.ready.Store(true)
	return s, nil
}

// Repository returns the server's control plane, for callers that want to
// drive lifecycles programmatically next to the HTTP admin surface.
func (s *Server) Repository() *Repository { return s.repo }

// Graphs returns the server's inference-graph registry, for callers that
// want to register graphs programmatically next to the HTTP surface.
func (s *Server) Graphs() *servegraph.Registry { return s.graphs }

// Handler returns the fully routed handler wrapped in request logging.
func (s *Server) Handler() http.Handler { return s.logMiddleware(s.mux) }

// Close marks the server not-ready and, when the server owns its
// repository, drains every model: queued requests finish, new infers fail
// with 503. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.ready.Store(false)
		if s.ownsRepo {
			s.repo.Close()
		}
	})
}

// ListenAndServe serves on addr until ctx is cancelled, then drains: the
// readiness probe starts failing (so load balancers stop routing here),
// in-flight requests get DrainTimeout to finish, and the batchers are
// flushed. This is the SIGTERM path of cmd/serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.serve(ctx, ln)
}

func (s *Server) serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	// The spec watcher starts strictly after New's boot loads, so the
	// boot model set and its budget reservations are deterministic.
	if len(s.cfg.WatchSpecs) > 0 {
		watchCtx, stopWatch := context.WithCancel(ctx)
		defer stopWatch()
		go s.repo.WatchSpecs(watchCtx, s.cfg.WatchSpecs, s.cfg.WatchInterval, s.cfg.Options)
	}
	s.log.Info("serving", "addr", ln.Addr().String(), "models", len(s.repo.actives()),
		"ram_budget_bytes", s.repo.RAMBudgetBytes(), "admin", !s.cfg.DisableAdmin,
		"watch_specs", len(s.cfg.WatchSpecs))
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	s.ready.Store(false)
	s.log.Info("draining", "grace", s.cfg.DrainGrace.String(), "timeout", s.cfg.DrainTimeout.String())
	// Fail readiness for a grace window BEFORE closing the listener, so
	// probing load balancers route traffic away instead of hitting
	// connection-refused.
	if s.cfg.DrainGrace > 0 {
		time.Sleep(s.cfg.DrainGrace)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(shutCtx)
	s.Close()
	if err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	return nil
}

// ---- KServe open-inference-protocol (v2) JSON types ----

// v2Tensor is one named tensor in an infer request or response.
type v2Tensor struct {
	Name     string    `json:"name"`
	Shape    []int     `json:"shape"`
	Datatype string    `json:"datatype"`
	Data     []float64 `json:"data"`
}

type v2InferRequest struct {
	ID     string     `json:"id,omitempty"`
	Inputs []v2Tensor `json:"inputs"`
}

type v2InferResponse struct {
	ModelName string     `json:"model_name"`
	ID        string     `json:"id,omitempty"`
	Outputs   []v2Tensor `json:"outputs"`
}

type v2Error struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v) //microvet:ignore droppederr headers are already written; an encode failure means the client hung up
}

func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"live": true})
}

// handleReady reports readiness plus how many models have a serving
// (READY) version, so a fleet router can tell "up but still empty"
// (ready, models_ready 0) from "serving" during replica warm-up.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	modelsReady := len(s.repo.actives())
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ready": false, "models_ready": modelsReady})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ready": true, "models_ready": modelsReady})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	type modelState struct {
		Name    string `json:"name"`
		Task    string `json:"task"`
		State   string `json:"state"`
		Version int    `json:"version"`
	}
	out := make([]modelState, 0)
	for _, st := range s.repo.Index() {
		if st.State == StateReady {
			out = append(out, modelState{Name: st.Name, Task: st.Task, State: string(st.State), Version: st.Version})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": out})
}

func (s *Server) handleModelMeta(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	v, release, err := s.repo.acquire(name)
	if err != nil {
		writeJSON(w, http.StatusNotFound, v2Error{Error: err.Error()})
		return
	}
	defer release()
	mod := v.entry.Model
	in := mod.Tensors[mod.Input]
	out := mod.Tensors[mod.Output]
	writeJSON(w, http.StatusOK, map[string]any{
		"name":     v.name,
		"versions": []string{fmt.Sprint(v.num)},
		"platform": "micronets-go-tflm",
		"inputs": []map[string]any{{
			"name": "input", "datatype": "FP32",
			"shape": []int{in.H, in.W, in.C},
			"quantization": map[string]any{
				"scale": in.Scale, "zero_point": in.ZeroPoint, "bits": in.Bits,
			},
		}},
		"outputs": []map[string]any{{
			"name": "scores", "datatype": "FP32",
			"shape": []int{out.Elems()},
		}},
		"details": map[string]any{
			"task":                v.task,
			"macs":                mod.TotalMACs(),
			"flash_bytes":         mod.FlashBytes(),
			"arena_bytes":         v.entry.ArenaBytes,
			"shared_weight_bytes": v.entry.WeightBytes,
			"pool_size":           v.poolSize,
			"max_batch":           v.maxBatch,
			"planned_ram_bytes":   v.plannedBytes,
		},
	})
}

// handleInfer decodes a v2 infer request, quantizes (or passes through)
// the input rows, pushes each row through the serving version's
// micro-batcher, and answers with the dequantized score vector plus
// argmax class and top score per row. A leading batch dimension is
// allowed: shape [n, h, w, c] (or data of n×elems values) fans out to n
// concurrent batcher submits, which the batcher then coalesces back into
// few InvokeBatch calls. The version is pinned for the whole request, so
// a concurrent swap or unload cannot fail rows already being served.
func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, v2Error{Error: "server draining"})
		return
	}
	name := r.PathValue("name")
	v, release, err := s.repo.acquire(name)
	if err != nil {
		writeJSON(w, http.StatusNotFound, v2Error{Error: err.Error()})
		return
	}
	defer release()
	mod := v.entry.Model
	elems := mod.Tensors[mod.Input].Elems()
	// Bound the body before decoding: ~24 bytes per JSON float for a full
	// client batch plus envelope headroom. One oversized POST must not be
	// able to exhaust server memory.
	r.Body = http.MaxBytesReader(w, r.Body, int64(1<<16)+24*int64(elems)*maxInferRows)
	var req v2InferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, v2Error{Error: fmt.Sprintf(
				"request body exceeds %d bytes (max client batch is %d rows)", tooBig.Limit, maxInferRows)})
			return
		}
		writeJSON(w, http.StatusBadRequest, v2Error{Error: "bad JSON: " + err.Error()})
		return
	}
	if len(req.Inputs) != 1 {
		writeJSON(w, http.StatusBadRequest, v2Error{Error: fmt.Sprintf("want exactly 1 input tensor, got %d", len(req.Inputs))})
		return
	}
	in := req.Inputs[0]
	n, err := batchRows(in, mod.Tensors[mod.Input])
	if err != nil {
		writeJSON(w, http.StatusBadRequest, v2Error{Error: fmt.Sprintf("input %q: %v (model %s)", in.Name, err, v.name)})
		return
	}
	rows := make([][]int8, n)
	for b := 0; b < n; b++ {
		row, err := quantizeRow(mod, in.Datatype, in.Data[b*elems:(b+1)*elems])
		if err != nil {
			writeJSON(w, http.StatusBadRequest, v2Error{Error: err.Error()})
			return
		}
		rows[b] = row
	}

	outs := make([][]int8, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for b := range rows {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			outs[b], errs[b] = v.batcher.Submit(r.Context(), rows[b])
		}(b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			code := http.StatusInternalServerError
			if errors.Is(err, ErrDraining) {
				code = http.StatusServiceUnavailable
			}
			writeJSON(w, code, v2Error{Error: err.Error()})
			return
		}
	}

	outT := mod.Tensors[mod.Output]
	scores := make([]float64, 0, n*outT.Elems())
	classes := make([]float64, n)
	top := make([]float64, n)
	for b, out := range outs {
		best := 0
		for i, q := range out {
			val := float64(outT.Scale) * float64(int32(q)-outT.ZeroPoint)
			scores = append(scores, val)
			if q > out[best] {
				best = i
			}
		}
		classes[b] = float64(best)
		top[b] = float64(outT.Scale) * float64(int32(out[best])-outT.ZeroPoint)
	}
	writeJSON(w, http.StatusOK, v2InferResponse{
		ModelName: v.name,
		ID:        req.ID,
		Outputs: []v2Tensor{
			{Name: "scores", Datatype: "FP32", Shape: []int{n, outT.Elems()}, Data: scores},
			{Name: "class", Datatype: "INT32", Shape: []int{n}, Data: classes},
			{Name: "score", Datatype: "FP32", Shape: []int{n}, Data: top},
		},
	})
}

// ---- repository admin control plane ----

// repoLoadRequest is the body of POST /v2/repository/models/{name}/load.
// All fields are optional: an empty body loads {name} from the zoo
// catalogue (including previously registered search exports).
type repoLoadRequest struct {
	// SpecFile is a server-local spec file (cmd/search -export output) to
	// register before loading {name} from it.
	SpecFile string `json:"spec_file,omitempty"`
	// Spec is a complete inline architecture, the no-shared-filesystem
	// publish path (cmd/search -publish). Its name must match the URL.
	Spec *arch.Spec `json:"spec,omitempty"`
	// Options overrides the server's default lowering for this load.
	Options *repoLoadOptions `json:"options,omitempty"`
}

// repoLoadOptions overrides individual fields of the server's default
// lowering; absent fields keep the default (so `{"seed":7}` on a 4-bit
// server still loads a 4-bit model).
type repoLoadOptions struct {
	WeightBits *int   `json:"weight_bits,omitempty"`
	ActBits    *int   `json:"act_bits,omitempty"`
	Seed       *int64 `json:"seed,omitempty"`
	Softmax    *bool  `json:"softmax,omitempty"`
}

// repoBudgetError is the structured 409 body for over-budget loads.
type repoBudgetError struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	Model        string `json:"model"`
	NeededBytes  int    `json:"needed_bytes"`
	BudgetBytes  int    `json:"budget_bytes"`
	PlannedBytes int    `json:"planned_bytes"`
	// FreeBytes = BudgetBytes − PlannedBytes, precomputed so a fleet
	// placer can compare it against NeededBytes without diffing gauges.
	FreeBytes int `json:"free_bytes"`
}

// writeRepoError maps control-plane errors onto admin API statuses: 409
// for budget rejections (with the structured body), 404 for unknown
// models, 503 when closed, 400 otherwise.
func writeRepoError(w http.ResponseWriter, err error) {
	var be *BudgetError
	if errors.As(err, &be) {
		writeJSON(w, http.StatusConflict, repoBudgetError{
			Error:        be.Error(),
			Code:         "ram_budget_exceeded",
			Model:        be.Model,
			NeededBytes:  be.NeededBytes,
			BudgetBytes:  be.BudgetBytes,
			PlannedBytes: be.PlannedBytes,
			FreeBytes:    be.BudgetBytes - be.PlannedBytes,
		})
		return
	}
	var iu *ModelInUseError
	if errors.As(err, &iu) {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":  iu.Error(),
			"code":   "model_referenced",
			"model":  iu.Model,
			"graphs": iu.Holders,
		})
		return
	}
	var nl *NotLoadedError
	switch {
	case errors.As(err, &nl):
		writeJSON(w, http.StatusNotFound, v2Error{Error: err.Error()})
	case errors.Is(err, ErrRepositoryClosed):
		writeJSON(w, http.StatusServiceUnavailable, v2Error{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, v2Error{Error: err.Error()})
	}
}

func (s *Server) handleRepoIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"models":            s.repo.Index(),
		"ram_budget_bytes":  s.repo.RAMBudgetBytes(),
		"ram_planned_bytes": s.repo.PlannedRAMBytes(),
		"free_bytes":        s.repo.FreeRAMBytes(),
	})
}

func (s *Server) handleRepoLoad(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req repoLoadRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, v2Error{Error: "load body exceeds 1MB"})
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, v2Error{Error: "bad JSON: " + err.Error()})
			return
		}
	}
	opts := s.cfg.Options
	if o := req.Options; o != nil {
		if o.WeightBits != nil {
			opts.WeightBits = *o.WeightBits
		}
		if o.ActBits != nil {
			opts.ActBits = *o.ActBits
		}
		if o.Seed != nil {
			opts.Seed = *o.Seed
		}
		if o.Softmax != nil {
			opts.AppendSoftmax = *o.Softmax
		}
	}

	if req.Spec != nil {
		if req.Spec.Name != name {
			writeJSON(w, http.StatusBadRequest, v2Error{Error: fmt.Sprintf(
				"inline spec is named %q, URL says %q", req.Spec.Name, name)})
			return
		}
		// Register the publication, load, and — on failure — roll the
		// catalogue back to its snapshot, under the publish lock: a load
		// rejected by the budget must leave the zoo exactly as it was,
		// and a concurrent successful publish of the same name must never
		// be undone by a failing one.
		s.publishMu.Lock()
		defer s.publishMu.Unlock()
		entry := &zoo.Entry{Name: name, Task: req.Spec.Task, Spec: req.Spec,
			Notes: "published via /v2/repository"}
		prev := zooEntryFor(name)
		if err := zoo.Register(entry); err != nil {
			writeJSON(w, http.StatusBadRequest, v2Error{Error: err.Error()})
			return
		}
		st, err := s.repo.Load(req.Spec, opts)
		if err != nil {
			// Roll back only if the entry is still ours — a concurrent
			// watcher or spec-file load may have re-registered the name
			// meanwhile, and its registration must survive our failure.
			if cur := zooEntryFor(name); cur != nil && cur.Spec == req.Spec {
				if prev != nil {
					_ = zoo.Register(prev) //microvet:ignore droppederr rollback restores a spec that registered before; failure would just repeat the error already being returned
				} else {
					zoo.Unregister(name)
				}
			}
			writeRepoError(w, err)
			return
		}
		s.log.Info("model load", "model", name, "version", st.Version,
			"source", "inline-spec", "trace", obs.TraceIDFrom(r.Context()))
		writeJSON(w, http.StatusOK, st)
		return
	}

	if req.SpecFile != "" {
		if _, err := zoo.RegisterSpecFile(req.SpecFile); err != nil {
			writeJSON(w, http.StatusBadRequest, v2Error{Error: err.Error()})
			return
		}
	}
	e, err := zoo.Get(name)
	if err != nil {
		writeJSON(w, http.StatusNotFound, v2Error{Error: err.Error()})
		return
	}
	if e.Spec == nil {
		writeJSON(w, http.StatusBadRequest, v2Error{Error: fmt.Sprintf(
			"%s is a stats-only comparison point (no public architecture)", name)})
		return
	}
	st, err := s.repo.Load(e.Spec, opts)
	if err != nil {
		writeRepoError(w, err)
		return
	}
	s.log.Info("model load", "model", name, "version", st.Version,
		"source", "catalogue", "trace", obs.TraceIDFrom(r.Context()))
	writeJSON(w, http.StatusOK, st)
}

// zooEntryFor snapshots the current catalogue entry for a name (nil when
// absent or stats-only), for rolling back a failed inline publish. A
// built-in entry never reaches the rollback: registering over it fails
// before any load is attempted.
func zooEntryFor(name string) *zoo.Entry {
	e, err := zoo.Get(name)
	if err != nil || e.Spec == nil {
		return nil
	}
	return e
}

func (s *Server) handleRepoUnload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.repo.Unload(name); err != nil {
		writeRepoError(w, err)
		return
	}
	s.log.Info("model unload", "model", name, "trace", obs.TraceIDFrom(r.Context()))
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "state": StateDraining})
}

// maxInferRows caps the leading client-side batch dimension of one infer
// request; the request-body limit is derived from it.
const maxInferRows = 64

// batchRows validates an input tensor's shape and data length against the
// model's input and returns the client batch size. Accepted shapes:
// absent (batch inferred from data length), [elems], [h,w,c], and their
// batched forms [n,elems] / [n,h,w,c]. A shape whose element count or
// layout disagrees with the model is rejected rather than silently
// reinterpreted — the metadata endpoint advertises the layout, so a
// transposed shape is a client bug worth a 400.
func batchRows(in v2Tensor, t *graph.Tensor) (int, error) {
	elems := t.Elems()
	if len(in.Data) == 0 || len(in.Data)%elems != 0 {
		return 0, fmt.Errorf("has %d values, want a multiple of %d", len(in.Data), elems)
	}
	n := len(in.Data) / elems
	if n > maxInferRows {
		return 0, fmt.Errorf("client batch of %d rows exceeds the per-request max of %d", n, maxInferRows)
	}
	if len(in.Shape) == 0 {
		return n, nil
	}
	prod := 1
	for _, d := range in.Shape {
		prod *= d
	}
	if prod != len(in.Data) {
		return 0, fmt.Errorf("shape %v describes %d elements, data has %d", in.Shape, prod, len(in.Data))
	}
	ok := false
	switch s := in.Shape; len(s) {
	case 1:
		ok = s[0] == elems && n == 1
	case 2:
		ok = s[0] == n && s[1] == elems
	case 3:
		ok = s[0] == t.H && s[1] == t.W && s[2] == t.C && n == 1
	case 4:
		ok = s[0] == n && s[1] == t.H && s[2] == t.W && s[3] == t.C
	}
	if !ok {
		return 0, fmt.Errorf("shape %v incompatible with model input [%d %d %d]", in.Shape, t.H, t.W, t.C)
	}
	return n, nil
}

// quantizeRow converts one input row to the model's quantized domain:
// FP32 rows go through the affine input quantization (the server-side
// analogue of Interpreter.SetInputFloat), INT8 rows are range-checked and
// passed through raw.
func quantizeRow(mod *graph.Model, datatype string, data []float64) ([]int8, error) {
	in := mod.Tensors[mod.Input]
	row := make([]int8, len(data))
	lo, hi := int32(-128), int32(127)
	if in.Bits == 4 {
		lo, hi = -8, 7
	}
	switch datatype {
	case "", "FP32":
		for i, v := range data {
			q := int32(math.Round(v/float64(in.Scale))) + in.ZeroPoint
			if q < lo {
				q = lo
			}
			if q > hi {
				q = hi
			}
			row[i] = int8(q)
		}
	case "INT8":
		for i, v := range data {
			q := int32(v)
			if float64(q) != v || q < lo || q > hi {
				return nil, fmt.Errorf("INT8 input value %v out of range [%d,%d]", v, lo, hi)
			}
			row[i] = int8(q)
		}
	default:
		return nil, fmt.Errorf("unsupported datatype %q (want FP32 or INT8)", datatype)
	}
	return row, nil
}

// statusWriter captures the response code for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
	// beforeHeader runs once, immediately before the first WriteHeader
	// or Write, while response headers are still mutable — the trace
	// middleware uses it to finish the root span and attach the span
	// JSON header.
	beforeHeader func()
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.beforeHeader != nil {
		sw.beforeHeader()
		sw.beforeHeader = nil
	}
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		if sw.beforeHeader != nil {
			sw.beforeHeader()
			sw.beforeHeader = nil
		}
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += n
	return n, err
}

// logMiddleware stamps every request with a trace ID (honoring an
// inbound X-Micronets-Trace-Id so multi-hop setups correlate), emits one
// structured line per request, and — when the client opts in by sending
// an X-Micronets-Trace header — collects a full span tree and returns it
// as JSON in the X-Micronets-Trace response header.
func (s *Server) logMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traceID := r.Header.Get("X-Micronets-Trace-Id")
		if traceID == "" {
			traceID = obs.NewTraceID()
		}
		ctx := obs.ContextWithTraceID(r.Context(), traceID)
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set("X-Micronets-Trace-Id", traceID)
		if r.Header.Get("X-Micronets-Trace") != "" {
			tr := obs.NewTraceWithID(traceID)
			root := tr.Start("request", nil)
			root.SetAttr("method", r.Method)
			root.SetAttr("path", r.URL.Path)
			ctx = obs.ContextWithTrace(ctx, tr)
			ctx = obs.ContextWithSpan(ctx, root)
			sw.beforeHeader = func() {
				root.End()
				if js, err := json.Marshal(tr.Spans()); err == nil {
					sw.Header().Set("X-Micronets-Trace", string(js))
				}
			}
		}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"dur_ms", float64(time.Since(start).Microseconds())/1000,
			"remote", r.RemoteAddr,
			"trace", traceID,
		)
	})
}
