package serve

import (
	"sync"
	"testing"

	"micronets/internal/tensor"
	"micronets/internal/zoo"
)

func TestRegistryCachesLowering(t *testing.T) {
	reg := NewRegistry(RegistryConfig{PoolSize: 1})
	opts := ModelOptions{Seed: 42, AppendSoftmax: true}
	e1, err := reg.Get("MicroNet-KWS-S", opts)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := reg.Get("MicroNet-KWS-S", opts)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("same name+options must return the same cached entry")
	}
	if n := reg.Lowerings(); n != 1 {
		t.Fatalf("lowerings = %d, want 1", n)
	}
	// Different options are a different lowering.
	if _, err := reg.Get("MicroNet-KWS-S", ModelOptions{Seed: 43, AppendSoftmax: true}); err != nil {
		t.Fatal(err)
	}
	if n := reg.Lowerings(); n != 2 {
		t.Fatalf("lowerings after seed change = %d, want 2", n)
	}
}

// TestRegistrySpecFingerprint: a rebuilt spec with the same name but
// different blocks must not collide in the cache.
func TestRegistrySpecFingerprint(t *testing.T) {
	reg := NewRegistry(RegistryConfig{PoolSize: 1})
	opts := ModelOptions{Seed: 42}
	a := zoo.MicroNetKWSS()
	b := zoo.MicroNetKWSS()
	b.Blocks[1].OutC = 64 // same name, different architecture
	ea, err := reg.GetSpec(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := reg.GetSpec(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ea == eb {
		t.Fatal("distinct architectures with equal names collided in the cache")
	}
	if n := reg.Lowerings(); n != 2 {
		t.Fatalf("lowerings = %d, want 2", n)
	}
}

// TestRegistryConcurrentGetSharesOneLowering: concurrent first requests
// for a model must block on a single lowering, not duplicate it.
func TestRegistryConcurrentGetSharesOneLowering(t *testing.T) {
	reg := NewRegistry(RegistryConfig{PoolSize: 1})
	opts := ModelOptions{Seed: 42}
	var wg sync.WaitGroup
	entries := make([]*Entry, 8)
	for i := range entries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := reg.Get("DSCNN-S", opts)
			if err != nil {
				t.Error(err)
				return
			}
			entries[i] = e
		}(i)
	}
	wg.Wait()
	for _, e := range entries {
		if e != entries[0] {
			t.Fatal("concurrent gets returned different entries")
		}
	}
	if n := reg.Lowerings(); n != 1 {
		t.Fatalf("lowerings = %d, want 1", n)
	}
}

// TestRegistryEvictsLRU: a bounded registry drops the least-recently-used
// entry instead of growing forever — the guard that keeps DNAS-style
// sweeps over thousands of candidate specs from leaking lowered models.
func TestRegistryEvictsLRU(t *testing.T) {
	reg := NewRegistry(RegistryConfig{PoolSize: 1, MaxEntries: 2})
	opts := ModelOptions{Seed: 42}
	mkSpec := func(c int) *Entry {
		s := zoo.MicroNetKWSS()
		s.Blocks[1].OutC = c
		e, err := reg.GetSpec(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a := mkSpec(16)
	mkSpec(24)
	mkSpec(16) // refresh a
	mkSpec(32) // evicts the 24-channel spec, not a
	if got := len(reg.Entries()); got != 2 {
		t.Fatalf("registry holds %d entries, want 2", got)
	}
	lowerings := reg.Lowerings()
	if e := mkSpec(16); e != a {
		t.Fatal("recently used entry was evicted")
	}
	if reg.Lowerings() != lowerings {
		t.Fatal("hitting a retained entry must not re-lower")
	}
	mkSpec(24) // was evicted: must lower again, not serve stale
	if reg.Lowerings() != lowerings+1 {
		t.Fatalf("evicted entry not re-lowered (lowerings %d)", reg.Lowerings())
	}
}

// TestPoolLazyGrowth: with PoolMax above PoolSize the pool grows under
// demand instead of serializing callers, and never beyond the bound.
func TestPoolLazyGrowth(t *testing.T) {
	reg := NewRegistry(RegistryConfig{PoolSize: 1, PoolMax: 3})
	entry, err := reg.Get("MicroNet-KWS-S", ModelOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	p := entry.Pool
	if p.Created() != 1 || p.Size() != 3 {
		t.Fatalf("prewarmed=%d max=%d, want 1 and 3", p.Created(), p.Size())
	}
	a, b, c := p.Get(), p.Get(), p.Get()
	if a == b || b == c || a == c {
		t.Fatal("pool handed out a shared interpreter")
	}
	if p.Created() != 3 {
		t.Fatalf("created = %d after 3 concurrent Gets, want 3", p.Created())
	}
	p.Put(a)
	p.Put(b)
	p.Put(c)
	// At the bound, Get must reuse rather than grow.
	d := p.Get()
	defer p.Put(d)
	if p.Created() != 3 {
		t.Fatalf("pool grew past its bound: created = %d", p.Created())
	}
}

// TestRegistryNormalizesDefaultBits: zero-value and explicit int8
// datatypes lower identically, so they must share one cache entry.
func TestRegistryNormalizesDefaultBits(t *testing.T) {
	reg := NewRegistry(RegistryConfig{PoolSize: 1})
	a, err := reg.Get("MicroNet-KWS-S", ModelOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.Get("MicroNet-KWS-S", ModelOptions{WeightBits: 8, ActBits: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("bits {0,0} and {8,8} must share one cache entry")
	}
	if n := reg.Lowerings(); n != 1 {
		t.Fatalf("lowerings = %d, want 1", n)
	}
}

// TestRegistryEntriesDuringLowering: listing entries concurrently with
// first-time lowerings must be race-free (run under -race) and only
// return completed entries.
func TestRegistryEntriesDuringLowering(t *testing.T) {
	reg := NewRegistry(RegistryConfig{PoolSize: 1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, e := range reg.Entries() {
				if e.Model == nil {
					t.Error("Entries returned a partially published entry")
					return
				}
			}
		}
	}()
	for _, name := range []string{"MicroNet-KWS-S", "DSCNN-S", "MBNETV2-S"} {
		if _, err := reg.Get(name, ModelOptions{Seed: 42}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}

func TestRegistryRejectsStatsOnlyAndUnknown(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	if _, err := reg.Get("ProxylessNas", ModelOptions{}); err == nil {
		t.Fatal("stats-only model must not be servable")
	}
	if _, err := reg.Get("nope", ModelOptions{}); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestEntryClassifyBatch(t *testing.T) {
	reg := NewRegistry(RegistryConfig{PoolSize: 2})
	entry, err := reg.Get("MicroNet-KWS-S", ModelOptions{Seed: 42, AppendSoftmax: true})
	if err != nil {
		t.Fatal(err)
	}
	elems := entry.Model.Tensors[entry.Model.Input].Elems()
	xs := []*tensor.Tensor{tensor.New(elems), tensor.New(elems)}
	classes, scores, err := entry.ClassifyBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 || len(scores) != 2 {
		t.Fatalf("got %d classes / %d scores, want 2/2", len(classes), len(scores))
	}
	// A wrong-sized input errors and the pooled interpreter remains
	// usable afterwards.
	if _, _, err := entry.ClassifyBatch([]*tensor.Tensor{tensor.New(3)}); err == nil {
		t.Fatal("wrong-sized input must error")
	}
	if _, _, err := entry.ClassifyBatch(xs); err != nil {
		t.Fatalf("pool poisoned after error: %v", err)
	}
}
