package serve

import (
	"sync"

	"micronets/internal/graph"
	"micronets/internal/tflm"
)

// Pool is a bounded set of interpreters for one model. Every interpreter
// owns its own arena, so any two requests holding distinct pooled
// interpreters may Invoke concurrently; the pool exists to make
// "distinct" cheap by paying memory planning and kernel preparation once
// per slot instead of once per request. `prewarm` interpreters are built
// up front; under concurrent demand the pool lazily grows up to `max`, so
// callers are never serialized below the configured parallelism while an
// idle model still costs only the pre-warmed arenas.
type Pool struct {
	model *graph.Model
	// ch's capacity is the pool bound; idle interpreters sit in it.
	ch      chan *tflm.Interpreter
	mu      sync.Mutex
	created int
}

// NewPool plans and prepares prewarm interpreters up front, allowing lazy
// growth to max (max < prewarm is raised to prewarm). It fails like
// NewInterpreter does (unsupported ops, invalid graph), so a Pool that
// constructs successfully can always serve — later lazy constructions of
// the same model cannot fail except under memory exhaustion, in which
// case Get falls back to waiting for an existing interpreter.
func NewPool(m *graph.Model, prewarm, max int) (*Pool, error) {
	if prewarm <= 0 {
		prewarm = 1
	}
	if max < prewarm {
		max = prewarm
	}
	p := &Pool{model: m, ch: make(chan *tflm.Interpreter, max)}
	for i := 0; i < prewarm; i++ {
		ip, err := tflm.NewInterpreter(m, 0)
		if err != nil {
			return nil, err
		}
		p.created++
		p.ch <- ip
	}
	return p, nil
}

// Size returns the pool bound (max concurrent interpreters).
func (p *Pool) Size() int { return cap(p.ch) }

// Created returns how many interpreters exist (pre-warmed + lazily grown).
func (p *Pool) Created() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created
}

// ArenaBytes returns the arena cost of one pooled interpreter.
func (p *Pool) ArenaBytes() int {
	ip := p.Get()
	defer p.Put(ip)
	return ip.ArenaBytes()
}

// grow tries to construct one more interpreter within the bound. It
// returns nil when the pool is already at max (or construction failed, a
// can't-happen-short-of-OOM case given warm-up succeeded).
func (p *Pool) grow() *tflm.Interpreter {
	p.mu.Lock()
	if p.created >= cap(p.ch) {
		p.mu.Unlock()
		return nil
	}
	p.created++
	p.mu.Unlock()
	ip, err := tflm.NewInterpreter(p.model, 0)
	if err != nil {
		p.mu.Lock()
		p.created--
		p.mu.Unlock()
		return nil
	}
	return ip
}

// Get returns an idle interpreter, growing the pool if none is free and
// the bound allows; otherwise it blocks until one is released. Callers
// must Put it back.
func (p *Pool) Get() *tflm.Interpreter {
	select {
	case ip := <-p.ch:
		return ip
	default:
	}
	if ip := p.grow(); ip != nil {
		return ip
	}
	return <-p.ch
}

// Put returns an interpreter to the pool. Callers that observed an Invoke
// error must Reset the interpreter first (see Interpreter.Reset); on the
// success path the arena contents are overwritten by the next request's
// input, so no scrub is needed.
func (p *Pool) Put(ip *tflm.Interpreter) { p.ch <- ip }
