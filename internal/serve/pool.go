package serve

import (
	"sync"

	"micronets/internal/graph"
	"micronets/internal/tflm"
)

// Pool is a bounded set of interpreters for one model. Every interpreter
// owns its own arena, so any two requests holding distinct pooled
// interpreters may Invoke concurrently; the pool exists to make
// "distinct" cheap by paying memory planning and kernel preparation once
// per model instead of once per request. All replicas execute over one
// shared, immutable tflm.Prepared — packed weight panels, folded biases
// and prefix sums are paid for once per model version, not once per
// replica; a replica adds only its private arena. `prewarm` interpreters
// are built up front; under concurrent demand the pool lazily grows up
// to `max`, so callers are never serialized below the configured
// parallelism while an idle model still costs only the pre-warmed
// arenas.
type Pool struct {
	prep *tflm.Prepared
	// ch's capacity is the pool bound; idle interpreters sit in it.
	ch      chan *tflm.Interpreter
	mu      sync.Mutex
	created int
}

// NewPool prepares the model once (validation, memory plan, packed
// weights) and warms prewarm interpreters over that shared state,
// allowing lazy growth to max (max < prewarm is raised to prewarm). It
// fails like NewInterpreter does (unsupported ops, invalid graph), so a
// Pool that constructs successfully can always serve — later lazy
// constructions of the same model cannot fail except under memory
// exhaustion, in which case Get falls back to waiting for an existing
// interpreter.
func NewPool(m *graph.Model, prewarm, max int) (*Pool, error) {
	prep, err := tflm.Prepare(m)
	if err != nil {
		return nil, err
	}
	return NewPoolPrepared(prep, prewarm, max)
}

// NewPoolPrepared warms a pool over already-prepared model state,
// for callers that build (or share) the tflm.Prepared themselves.
func NewPoolPrepared(prep *tflm.Prepared, prewarm, max int) (*Pool, error) {
	if prewarm <= 0 {
		prewarm = 1
	}
	if max < prewarm {
		max = prewarm
	}
	p := &Pool{prep: prep, ch: make(chan *tflm.Interpreter, max)}
	for i := 0; i < prewarm; i++ {
		ip, err := prep.NewInterpreter(0)
		if err != nil {
			return nil, err
		}
		p.created++
		p.ch <- ip
	}
	return p, nil
}

// Size returns the pool bound (max concurrent interpreters).
func (p *Pool) Size() int { return cap(p.ch) }

// Created returns how many interpreters exist (pre-warmed + lazily grown).
func (p *Pool) Created() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created
}

// ArenaBytes returns the arena cost of one pooled interpreter — the
// per-replica RAM increment on top of the shared prepared weights.
func (p *Pool) ArenaBytes() int {
	ip := p.Get()
	defer p.Put(ip)
	return ip.ArenaBytes()
}

// WeightBytes returns the RAM footprint of the shared prepared kernel
// state (packed panels, folded biases, prefix sums, multipliers) — paid
// once for the whole pool regardless of replica count.
func (p *Pool) WeightBytes() int { return p.prep.WeightBytes() }

// grow tries to construct one more interpreter within the bound. It
// returns nil when the pool is already at max (or construction failed, a
// can't-happen-short-of-OOM case given warm-up succeeded).
//
//microvet:hotpath-stop lazy pool growth is construction, not serving: a replica allocates once here and then recycles through Get/Put
func (p *Pool) grow() *tflm.Interpreter {
	p.mu.Lock()
	if p.created >= cap(p.ch) {
		p.mu.Unlock()
		return nil
	}
	p.created++
	p.mu.Unlock()
	ip, err := p.prep.NewInterpreter(0)
	if err != nil {
		p.mu.Lock()
		p.created--
		p.mu.Unlock()
		return nil
	}
	return ip
}

// Get returns an idle interpreter, growing the pool if none is free and
// the bound allows; otherwise it blocks until one is released. Callers
// must Put it back.
func (p *Pool) Get() *tflm.Interpreter {
	select {
	case ip := <-p.ch:
		return ip
	default:
	}
	if ip := p.grow(); ip != nil {
		return ip
	}
	return <-p.ch
}

// Put returns an interpreter to the pool. Callers that observed an Invoke
// error must Reset the interpreter first (see Interpreter.Reset); on the
// success path the arena contents are overwritten by the next request's
// input, so no scrub is needed.
func (p *Pool) Put(ip *tflm.Interpreter) { p.ch <- ip }
