package nn

import (
	ag "micronets/internal/autograd"
	"micronets/internal/tensor"
)

// LayerQuant configures quantization-aware training for one layer. Weights
// are fake-quantized per-tensor from their current min/max each step;
// activations use an EMA-observed range, as in TensorFlow's QAT (the
// scheme the paper uses for its 8-bit models, §5.2).
//
// A nil *LayerQuant disables QAT, so layers can hold it by pointer without
// nil checks at every call site.
type LayerQuant struct {
	WeightBits int
	ActBits    int

	// EMA-observed activation range.
	actLo, actHi float32
	seen         bool
	// Momentum of the range EMA.
	Momentum float32
}

// NewLayerQuant returns a QAT config with the given bit widths.
func NewLayerQuant(weightBits, actBits int) *LayerQuant {
	return &LayerQuant{WeightBits: weightBits, ActBits: actBits, Momentum: 0.95}
}

// maybeQuantWeights fake-quantizes weights symmetrically around zero.
func (q *LayerQuant) maybeQuantWeights(w *ag.Var) *ag.Var {
	if q == nil || q.WeightBits == 0 {
		return w
	}
	// Symmetric range, zero-point 0: what CMSIS-NN expects for weights.
	lo, hi := tensor.Min(w.Value), tensor.Max(w.Value)
	a := absf(lo)
	if absf(hi) > a {
		a = absf(hi)
	}
	if a == 0 {
		a = 1e-6
	}
	return ag.FakeQuant(w, -a, a, q.WeightBits)
}

// maybeQuantActs fake-quantizes an activation tensor, updating the EMA
// range during training.
func (q *LayerQuant) maybeQuantActs(y *ag.Var, training bool) *ag.Var {
	if q == nil || q.ActBits == 0 {
		return y
	}
	if training {
		lo, hi := tensor.Min(y.Value), tensor.Max(y.Value)
		if !q.seen {
			q.actLo, q.actHi = lo, hi
			q.seen = true
		} else {
			q.actLo = q.Momentum*q.actLo + (1-q.Momentum)*lo
			q.actHi = q.Momentum*q.actHi + (1-q.Momentum)*hi
		}
	}
	if !q.seen {
		return y
	}
	lo, hi := q.actLo, q.actHi
	if lo > 0 {
		lo = 0 // keep zero representable
	}
	if hi < 0 {
		hi = 0
	}
	return ag.FakeQuant(y, lo, hi, q.ActBits)
}

// ActRange returns the observed activation range (after zero-inclusion),
// used when exporting the trained model to the int8 runtime.
func (q *LayerQuant) ActRange() (lo, hi float32, ok bool) {
	if q == nil || !q.seen {
		return 0, 0, false
	}
	lo, hi = q.actLo, q.actHi
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	return lo, hi, true
}

func absf(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
