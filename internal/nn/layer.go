// Package nn provides trainable neural-network layers, parameter
// initialization, optimizers and learning-rate schedules on top of the
// autograd package. It is the training-side counterpart of the deployment
// stack (graph/tflm/kernels): models are trained here in float32 with
// optional quantization-aware training, then exported to the int8 runtime.
package nn

import (
	"math/rand"

	ag "micronets/internal/autograd"
	"micronets/internal/tensor"
)

// Param is a named trainable tensor. Decay controls whether weight decay is
// applied (the paper's recipes exempt BatchNorm scale/shift and biases).
type Param struct {
	Name  string
	V     *ag.Var
	Decay bool
}

// Layer is a trainable module.
type Layer interface {
	// Forward runs the layer. training toggles batch statistics, dropout
	// and quantization-range observation.
	Forward(x *ag.Var, training bool) *ag.Var
	// Params returns the trainable parameters, in a stable order.
	Params() []*Param
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a sequential container.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward implements Layer.
func (s *Sequential) Forward(x *ag.Var, training bool) *ag.Var {
	for _, l := range s.Layers {
		x = l.Forward(x, training)
	}
	return x
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Add appends a layer and returns the container for chaining.
func (s *Sequential) Add(l Layer) *Sequential {
	s.Layers = append(s.Layers, l)
	return s
}

// HeInit fills a weight tensor with He-normal initialization given its
// fan-in, appropriate for ReLU networks.
func HeInit(rng *rand.Rand, fanIn int, shape ...int) *tensor.Tensor {
	if fanIn <= 0 {
		fanIn = 1
	}
	std := 1.4142135 / float32(sqrtf(float32(fanIn)))
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64()) * std
	}
	return t
}

// GlorotInit fills a weight tensor with Glorot-uniform initialization.
func GlorotInit(rng *rand.Rand, fanIn, fanOut int, shape ...int) *tensor.Tensor {
	limit := sqrtf(6 / float32(fanIn+fanOut))
	return tensor.RandUniform(rng, -float64(limit), float64(limit), shape...)
}

func sqrtf(x float32) float32 {
	// Newton iterations are plenty for init purposes.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}
