package nn

import (
	"math"

	"micronets/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update at the given learning rate and clears
	// gradients.
	Step(params []*Param, lr float32)
}

// SGD implements stochastic gradient descent with classical momentum and
// decoupled weight decay (applied only to params with Decay=true, matching
// the paper's recipes which exempt BN and biases).
type SGD struct {
	Momentum    float32
	WeightDecay float32

	velocity map[*Param]*tensor.Tensor
}

// NewSGD constructs an SGD optimizer.
func NewSGD(momentum, weightDecay float32) *SGD {
	return &SGD{Momentum: momentum, WeightDecay: weightDecay, velocity: map[*Param]*tensor.Tensor{}}
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param, lr float32) {
	for _, p := range params {
		if p.V.Grad == nil {
			continue
		}
		g := p.V.Grad
		if o.WeightDecay != 0 && p.Decay {
			tensor.AxpyInPlace(g, o.WeightDecay, p.V.Value)
		}
		if o.Momentum != 0 {
			v := o.velocity[p]
			if v == nil {
				v = tensor.New(p.V.Value.Shape...)
				o.velocity[p] = v
			}
			for i := range v.Data {
				v.Data[i] = o.Momentum*v.Data[i] + g.Data[i]
			}
			g = v
		}
		tensor.AxpyInPlace(p.V.Value, -lr, g)
		p.V.ZeroGrad()
	}
}

// Adam implements the Adam optimizer with decoupled weight decay (AdamW).
type Adam struct {
	Beta1, Beta2 float32
	Eps          float32
	WeightDecay  float32

	step int
	m, v map[*Param]*tensor.Tensor
}

// NewAdam constructs an Adam optimizer with standard hyperparameters.
func NewAdam(weightDecay float32) *Adam {
	return &Adam{
		Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay,
		m: map[*Param]*tensor.Tensor{}, v: map[*Param]*tensor.Tensor{},
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param, lr float32) {
	o.step++
	bc1 := 1 - float32(math.Pow(float64(o.Beta1), float64(o.step)))
	bc2 := 1 - float32(math.Pow(float64(o.Beta2), float64(o.step)))
	for _, p := range params {
		if p.V.Grad == nil {
			continue
		}
		g := p.V.Grad
		m := o.m[p]
		v := o.v[p]
		if m == nil {
			m = tensor.New(p.V.Value.Shape...)
			v = tensor.New(p.V.Value.Shape...)
			o.m[p] = m
			o.v[p] = v
		}
		for i := range g.Data {
			m.Data[i] = o.Beta1*m.Data[i] + (1-o.Beta1)*g.Data[i]
			v.Data[i] = o.Beta2*v.Data[i] + (1-o.Beta2)*g.Data[i]*g.Data[i]
			mhat := m.Data[i] / bc1
			vhat := v.Data[i] / bc2
			upd := mhat / (float32(math.Sqrt(float64(vhat))) + o.Eps)
			if o.WeightDecay != 0 && p.Decay {
				upd += o.WeightDecay * p.V.Value.Data[i]
			}
			p.V.Value.Data[i] -= lr * upd
		}
		p.V.ZeroGrad()
	}
}

// CosineSchedule decays the learning rate from Start to End over Steps
// using a half-cosine, the schedule used in all the paper's training
// recipes (§5.2).
type CosineSchedule struct {
	Start, End float32
	Steps      int
}

// LR returns the learning rate at the given step (clamped to the schedule).
func (s CosineSchedule) LR(step int) float32 {
	if s.Steps <= 1 {
		return s.End
	}
	if step >= s.Steps {
		return s.End
	}
	if step < 0 {
		step = 0
	}
	frac := float64(step) / float64(s.Steps-1)
	cos := 0.5 * (1 + math.Cos(math.Pi*frac))
	return s.End + (s.Start-s.End)*float32(cos)
}

// GradNorm returns the global L2 norm of all parameter gradients, a
// convenient training-health diagnostic.
func GradNorm(params []*Param) float32 {
	var sum float64
	for _, p := range params {
		if p.V.Grad == nil {
			continue
		}
		n := tensor.Norm2(p.V.Grad)
		sum += float64(n) * float64(n)
	}
	return float32(math.Sqrt(sum))
}

// ClipGradNorm rescales all gradients so their global norm is at most max.
func ClipGradNorm(params []*Param, max float32) {
	n := GradNorm(params)
	if n <= max || n == 0 {
		return
	}
	scale := max / n
	for _, p := range params {
		if p.V.Grad == nil {
			continue
		}
		for i := range p.V.Grad.Data {
			p.V.Grad.Data[i] *= scale
		}
	}
}
