package nn

import (
	"math"
	"math/rand"
	"testing"

	ag "micronets/internal/autograd"
	"micronets/internal/tensor"
)

func TestConv2DForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewConv2D(rng, "c", 3, 3, 2, 8, 2, PadSame, true)
	x := ag.Constant(tensor.Randn(rng, 1, 2, 9, 9, 2))
	y := l.Forward(x, false)
	want := []int{2, 5, 5, 8}
	for i, d := range want {
		if y.Value.Shape[i] != d {
			t.Fatalf("shape %v, want %v", y.Value.Shape, want)
		}
	}
	if len(l.Params()) != 2 {
		t.Fatalf("conv params = %d, want 2", len(l.Params()))
	}
}

func TestDenseAutoFlattens(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewDense(rng, "d", 6, 4, true)
	x := ag.Constant(tensor.Randn(rng, 1, 2, 2, 3, 1))
	y := l.Forward(x, false)
	if y.Value.Shape[0] != 2 || y.Value.Shape[1] != 4 {
		t.Fatalf("dense shape %v", y.Value.Shape)
	}
}

func TestBatchNormNormalizesTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewBatchNorm("bn", 4)
	x := ag.Constant(tensor.RandUniform(rng, 5, 10, 16, 4))
	y := l.Forward(x, true)
	// Per-channel output mean should be ~0 (beta=0) and var ~1 (gamma=1).
	for c := 0; c < 4; c++ {
		var mean float64
		for i := 0; i < 16; i++ {
			mean += float64(y.Value.Data[i*4+c])
		}
		mean /= 16
		if math.Abs(mean) > 1e-4 {
			t.Fatalf("bn channel %d mean %v", c, mean)
		}
	}
	// Running stats moved toward the batch mean (~7.5).
	if l.RunningMean.Data[0] < 0.1 {
		t.Fatal("running mean not updated")
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	l := NewBatchNorm("bn", 1)
	l.RunningMean.Data[0] = 2
	l.RunningVar.Data[0] = 4
	x := ag.Constant(tensor.FromSlice([]float32{4}, 1, 1))
	y := l.Forward(x, false)
	want := float32((4.0 - 2.0) / math.Sqrt(4.0+1e-3))
	if absf(y.Value.Data[0]-want) > 1e-4 {
		t.Fatalf("bn inference %v, want %v", y.Value.Data[0], want)
	}
}

func TestFoldedScaleShiftEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewBatchNorm("bn", 3)
	l.RunningMean = tensor.Randn(rng, 1, 3)
	l.RunningVar = tensor.RandUniform(rng, 0.5, 2, 3)
	l.Gamma.Value = tensor.RandUniform(rng, 0.5, 1.5, 3)
	l.Beta.Value = tensor.Randn(rng, 1, 3)
	scale, shift := l.FoldedScaleShift()
	x := tensor.Randn(rng, 1, 2, 3)
	y := l.Forward(ag.Constant(x), false)
	for i := 0; i < 2; i++ {
		for c := 0; c < 3; c++ {
			want := x.Data[i*3+c]*scale[c] + shift[c]
			if absf(y.Value.Data[i*3+c]-want) > 1e-3 {
				t.Fatalf("folded mismatch at (%d,%d): %v vs %v", i, c, y.Value.Data[i*3+c], want)
			}
		}
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := &Dropout{Rate: 0.5, Rng: rng}
	x := ag.Constant(tensor.New(1, 1000).Fill(1))
	yTrain := l.Forward(x, true)
	zeros := 0
	for _, v := range yTrain.Value.Data {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 300 || zeros > 700 {
		t.Fatalf("dropout zeroed %d/1000", zeros)
	}
	yEval := l.Forward(x, false)
	if yEval != x {
		t.Fatal("eval dropout must be identity")
	}
}

func TestResidualIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	body := NewSequential(&Activation{Kind: "relu"})
	r := &Residual{Body: body}
	x := ag.Constant(tensor.RandUniform(rng, 1, 2, 1, 4))
	y := r.Forward(x, false)
	for i := range y.Value.Data {
		if absf(y.Value.Data[i]-2*x.Value.Data[i]) > 1e-6 {
			t.Fatal("residual with positive input must double")
		}
	}
}

func TestSequentialParamsCollects(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewSequential(
		NewConv2D(rng, "c1", 3, 3, 1, 4, 1, PadSame, false),
		NewBatchNorm("bn1", 4),
		&Activation{Kind: "relu6"},
		NewDense(rng, "fc", 4, 2, true),
	)
	if got := len(m.Params()); got != 5 {
		t.Fatalf("params = %d, want 5", got)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	// Minimize (w-3)^2 with SGD+momentum.
	p := &Param{Name: "w", V: ag.Param(tensor.Scalar(0)), Decay: false}
	opt := NewSGD(0.9, 0)
	for i := 0; i < 100; i++ {
		diff := ag.AddScalar(p.V, -3)
		loss := ag.Mean(ag.Square(diff))
		ag.Backward(loss)
		opt.Step([]*Param{p}, 0.05)
	}
	if absf(p.V.Value.Data[0]-3) > 0.05 {
		t.Fatalf("SGD converged to %v, want 3", p.V.Value.Data[0])
	}
}

func TestAdamConverges(t *testing.T) {
	p := &Param{Name: "w", V: ag.Param(tensor.Scalar(-2)), Decay: false}
	opt := NewAdam(0)
	for i := 0; i < 400; i++ {
		diff := ag.AddScalar(p.V, -1)
		loss := ag.Mean(ag.Square(diff))
		ag.Backward(loss)
		opt.Step([]*Param{p}, 0.05)
	}
	if absf(p.V.Value.Data[0]-1) > 0.05 {
		t.Fatalf("Adam converged to %v, want 1", p.V.Value.Data[0])
	}
}

func TestWeightDecayShrinksOnlyDecayParams(t *testing.T) {
	pd := &Param{Name: "w", V: ag.Param(tensor.Scalar(10)), Decay: true}
	pn := &Param{Name: "b", V: ag.Param(tensor.Scalar(10)), Decay: false}
	opt := NewSGD(0, 0.1)
	// Zero loss: gradients must exist for Step to act, so use a loss with
	// zero gradient contribution.
	for i := 0; i < 10; i++ {
		l := ag.Add(ag.Scale(pd.V, 0), ag.Scale(pn.V, 0))
		ag.Backward(ag.Sum(l))
		opt.Step([]*Param{pd, pn}, 0.5)
	}
	if pd.V.Value.Data[0] >= 10 {
		t.Fatal("decay param must shrink")
	}
	if pn.V.Value.Data[0] != 10 {
		t.Fatal("non-decay param must not shrink")
	}
}

func TestCosineScheduleEndpoints(t *testing.T) {
	s := CosineSchedule{Start: 0.36, End: 0.0008, Steps: 100}
	if absf(s.LR(0)-0.36) > 1e-6 {
		t.Fatalf("LR(0) = %v", s.LR(0))
	}
	if absf(s.LR(99)-0.0008) > 1e-6 {
		t.Fatalf("LR(end) = %v", s.LR(99))
	}
	if s.LR(200) != 0.0008 {
		t.Fatal("LR past end must clamp")
	}
	mid := s.LR(49)
	if mid <= 0.0008 || mid >= 0.36 {
		t.Fatalf("LR(mid) = %v out of range", mid)
	}
	// Monotone decreasing.
	for i := 1; i < 100; i++ {
		if s.LR(i) > s.LR(i-1)+1e-7 {
			t.Fatalf("schedule not monotone at %d", i)
		}
	}
}

func TestClipGradNorm(t *testing.T) {
	p := &Param{V: ag.Param(tensor.Scalar(0))}
	p.V.Grad = tensor.Scalar(30)
	ClipGradNorm([]*Param{p}, 3)
	if absf(p.V.Grad.Data[0]-3) > 1e-4 {
		t.Fatalf("clipped grad = %v", p.V.Grad.Data[0])
	}
}

func TestQATProducesGridWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewConv2D(rng, "c", 3, 3, 1, 2, 1, PadSame, false)
	l.Quant = NewLayerQuant(8, 8)
	x := ag.Constant(tensor.Randn(rng, 1, 1, 4, 4, 1))
	// Two training passes to seed the activation observer.
	l.Forward(x, true)
	y := l.Forward(x, true)
	if y.Value.Len() == 0 {
		t.Fatal("empty output")
	}
	lo, hi, ok := l.Quant.ActRange()
	if !ok || lo > 0 || hi < 0 {
		t.Fatalf("act range must straddle zero: %v %v ok=%v", lo, hi, ok)
	}
}

func TestTinyModelLearnsXOR(t *testing.T) {
	// End-to-end sanity: a 2-layer MLP learns XOR, proving layers,
	// losses and optimizer compose correctly.
	rng := rand.New(rand.NewSource(9))
	m := NewSequential(
		NewDense(rng, "d1", 2, 16, true),
		&Activation{Kind: "relu"},
		NewDense(rng, "d2", 16, 2, true),
	)
	xs := tensor.FromSlice([]float32{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
	labels := []int{0, 1, 1, 0}
	opt := NewAdam(0)
	for i := 0; i < 1500; i++ {
		logits := m.Forward(ag.Constant(xs), true)
		loss := ag.CrossEntropy(logits, labels)
		ag.Backward(loss)
		opt.Step(m.Params(), 0.02)
	}
	logits := m.Forward(ag.Constant(xs), false)
	correct := 0
	for i := 0; i < 4; i++ {
		row := logits.Value.Data[i*2 : (i+1)*2]
		pred := 0
		if row[1] > row[0] {
			pred = 1
		}
		if pred == labels[i] {
			correct++
		}
	}
	if correct != 4 {
		t.Fatalf("XOR accuracy %d/4", correct)
	}
}
