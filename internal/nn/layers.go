package nn

import (
	"fmt"
	"math/rand"

	ag "micronets/internal/autograd"
	"micronets/internal/tensor"
)

// Padding selects between TensorFlow SAME and VALID convolution padding.
type Padding int

const (
	// PadSame pads so that out = ceil(in/stride).
	PadSame Padding = iota
	// PadValid applies no padding.
	PadValid
)

func (p Padding) spec(kh, kw, sh, sw, inH, inW int) tensor.ConvSpec {
	if p == PadSame {
		return tensor.Same(kh, kw, sh, sw, inH, inW)
	}
	return tensor.ConvSpec{KH: kh, KW: kw, SH: sh, SW: sw}
}

// Conv2D is a standard convolution layer with optional bias and optional
// quantization-aware training.
type Conv2D struct {
	W      *ag.Var // [kh,kw,inC,outC]
	B      *ag.Var // [outC] or nil
	Stride int
	Pad    Padding
	Quant  *LayerQuant
	name   string
}

// NewConv2D constructs a He-initialized convolution.
func NewConv2D(rng *rand.Rand, name string, kh, kw, inC, outC, stride int, pad Padding, bias bool) *Conv2D {
	l := &Conv2D{
		W:      ag.Param(HeInit(rng, kh*kw*inC, kh, kw, inC, outC)),
		Stride: stride,
		Pad:    pad,
		name:   name,
	}
	if bias {
		l.B = ag.Param(tensor.New(outC))
	}
	return l
}

// Forward implements Layer.
func (l *Conv2D) Forward(x *ag.Var, training bool) *ag.Var {
	spec := l.Pad.spec(l.W.Value.Shape[0], l.W.Value.Shape[1], l.Stride, l.Stride,
		x.Value.Shape[1], x.Value.Shape[2])
	w := l.Quant.maybeQuantWeights(l.W)
	y := ag.Conv2D(x, w, spec)
	if l.B != nil {
		y = ag.BiasAdd(y, l.B)
	}
	return l.Quant.maybeQuantActs(y, training)
}

// Params implements Layer.
func (l *Conv2D) Params() []*Param {
	ps := []*Param{{Name: l.name + ".w", V: l.W, Decay: true}}
	if l.B != nil {
		ps = append(ps, &Param{Name: l.name + ".b", V: l.B})
	}
	return ps
}

// DepthwiseConv2D is a depthwise convolution layer (channel multiplier 1).
type DepthwiseConv2D struct {
	W      *ag.Var // [kh,kw,c]
	B      *ag.Var
	Stride int
	Pad    Padding
	Quant  *LayerQuant
	name   string
}

// NewDepthwiseConv2D constructs a He-initialized depthwise convolution.
func NewDepthwiseConv2D(rng *rand.Rand, name string, kh, kw, c, stride int, pad Padding, bias bool) *DepthwiseConv2D {
	l := &DepthwiseConv2D{
		W:      ag.Param(HeInit(rng, kh*kw, kh, kw, c)),
		Stride: stride,
		Pad:    pad,
		name:   name,
	}
	if bias {
		l.B = ag.Param(tensor.New(c))
	}
	return l
}

// Forward implements Layer.
func (l *DepthwiseConv2D) Forward(x *ag.Var, training bool) *ag.Var {
	spec := l.Pad.spec(l.W.Value.Shape[0], l.W.Value.Shape[1], l.Stride, l.Stride,
		x.Value.Shape[1], x.Value.Shape[2])
	w := l.Quant.maybeQuantWeights(l.W)
	y := ag.DepthwiseConv2D(x, w, spec)
	if l.B != nil {
		y = ag.BiasAdd(y, l.B)
	}
	return l.Quant.maybeQuantActs(y, training)
}

// Params implements Layer.
func (l *DepthwiseConv2D) Params() []*Param {
	ps := []*Param{{Name: l.name + ".w", V: l.W, Decay: true}}
	if l.B != nil {
		ps = append(ps, &Param{Name: l.name + ".b", V: l.B})
	}
	return ps
}

// Dense is a fully connected layer over [n, features] inputs.
type Dense struct {
	W     *ag.Var // [in,out]
	B     *ag.Var
	Quant *LayerQuant
	name  string
}

// NewDense constructs a Glorot-initialized fully connected layer.
func NewDense(rng *rand.Rand, name string, in, out int, bias bool) *Dense {
	l := &Dense{W: ag.Param(GlorotInit(rng, in, out, in, out)), name: name}
	if bias {
		l.B = ag.Param(tensor.New(out))
	}
	return l
}

// Forward implements Layer. 4-D inputs are flattened automatically.
func (l *Dense) Forward(x *ag.Var, training bool) *ag.Var {
	if len(x.Value.Shape) != 2 {
		x = ag.Reshape(x, x.Value.Shape[0], -1)
	}
	w := l.Quant.maybeQuantWeights(l.W)
	y := ag.MatMul(x, w)
	if l.B != nil {
		y = ag.BiasAdd(y, l.B)
	}
	return l.Quant.maybeQuantActs(y, training)
}

// Params implements Layer.
func (l *Dense) Params() []*Param {
	ps := []*Param{{Name: l.name + ".w", V: l.W, Decay: true}}
	if l.B != nil {
		ps = append(ps, &Param{Name: l.name + ".b", V: l.B})
	}
	return ps
}

// BatchNorm keeps running statistics with the given momentum and normalizes
// over all but the channel dimension.
type BatchNorm struct {
	Gamma, Beta *ag.Var
	RunningMean *tensor.Tensor
	RunningVar  *tensor.Tensor
	Momentum    float32
	Eps         float32
	name        string
}

// NewBatchNorm constructs a BatchNorm layer for c channels.
func NewBatchNorm(name string, c int) *BatchNorm {
	return &BatchNorm{
		Gamma:       ag.Param(tensor.New(c).Fill(1)),
		Beta:        ag.Param(tensor.New(c)),
		RunningMean: tensor.New(c),
		RunningVar:  tensor.New(c).Fill(1),
		Momentum:    0.9,
		Eps:         1e-3,
		name:        name,
	}
}

// Forward implements Layer.
func (l *BatchNorm) Forward(x *ag.Var, training bool) *ag.Var {
	if training {
		y, stats := ag.BatchNorm(x, l.Gamma, l.Beta, l.Eps, nil)
		for j := range l.RunningMean.Data {
			l.RunningMean.Data[j] = l.Momentum*l.RunningMean.Data[j] + (1-l.Momentum)*stats.Mean.Data[j]
			l.RunningVar.Data[j] = l.Momentum*l.RunningVar.Data[j] + (1-l.Momentum)*stats.Var.Data[j]
		}
		return y
	}
	y, _ := ag.BatchNorm(x, l.Gamma, l.Beta, l.Eps,
		&ag.BatchNormStats{Mean: l.RunningMean, Var: l.RunningVar})
	return y
}

// Params implements Layer.
func (l *BatchNorm) Params() []*Param {
	return []*Param{
		{Name: l.name + ".gamma", V: l.Gamma},
		{Name: l.name + ".beta", V: l.Beta},
	}
}

// FoldedScaleShift returns the inference-time affine (scale, shift) per
// channel that this BatchNorm applies, used when folding BN into preceding
// convolutions for deployment.
func (l *BatchNorm) FoldedScaleShift() (scale, shift []float32) {
	c := l.Gamma.Value.Len()
	scale = make([]float32, c)
	shift = make([]float32, c)
	for j := 0; j < c; j++ {
		inv := 1 / sqrtf(l.RunningVar.Data[j]+l.Eps)
		scale[j] = l.Gamma.Value.Data[j] * inv
		shift[j] = l.Beta.Value.Data[j] - l.RunningMean.Data[j]*scale[j]
	}
	return scale, shift
}

// Activation applies a fixed nonlinearity.
type Activation struct {
	Kind string // "relu", "relu6", "sigmoid"
}

// Forward implements Layer.
func (l *Activation) Forward(x *ag.Var, training bool) *ag.Var {
	switch l.Kind {
	case "relu":
		return ag.ReLU(x)
	case "relu6":
		return ag.ReLU6(x)
	case "sigmoid":
		return ag.Sigmoid(x)
	default:
		panic(fmt.Sprintf("nn: unknown activation %q", l.Kind))
	}
}

// Params implements Layer.
func (l *Activation) Params() []*Param { return nil }

// AvgPool averages over windows.
type AvgPool struct {
	KH, KW, Stride int
	Pad            Padding
}

// Forward implements Layer.
func (l *AvgPool) Forward(x *ag.Var, training bool) *ag.Var {
	spec := l.Pad.spec(l.KH, l.KW, l.Stride, l.Stride, x.Value.Shape[1], x.Value.Shape[2])
	return ag.AvgPool2D(x, spec)
}

// Params implements Layer.
func (l *AvgPool) Params() []*Param { return nil }

// MaxPoolLayer takes the maximum over windows.
type MaxPoolLayer struct {
	KH, KW, Stride int
	Pad            Padding
}

// Forward implements Layer.
func (l *MaxPoolLayer) Forward(x *ag.Var, training bool) *ag.Var {
	spec := l.Pad.spec(l.KH, l.KW, l.Stride, l.Stride, x.Value.Shape[1], x.Value.Shape[2])
	return ag.MaxPool2D(x, spec)
}

// Params implements Layer.
func (l *MaxPoolLayer) Params() []*Param { return nil }

// GlobalAvgPool reduces [n,h,w,c] to [n,c].
type GlobalAvgPool struct{}

// Forward implements Layer.
func (l *GlobalAvgPool) Forward(x *ag.Var, training bool) *ag.Var {
	return ag.GlobalAvgPool(x)
}

// Params implements Layer.
func (l *GlobalAvgPool) Params() []*Param { return nil }

// Flatten reshapes to [n, features].
type Flatten struct{}

// Forward implements Layer.
func (l *Flatten) Forward(x *ag.Var, training bool) *ag.Var {
	return ag.Reshape(x, x.Value.Shape[0], -1)
}

// Params implements Layer.
func (l *Flatten) Params() []*Param { return nil }

// Dropout zeroes a fraction of activations during training, scaling the
// survivors (inverted dropout).
type Dropout struct {
	Rate float32
	Rng  *rand.Rand
}

// Forward implements Layer.
func (l *Dropout) Forward(x *ag.Var, training bool) *ag.Var {
	if !training || l.Rate <= 0 {
		return x
	}
	mask := tensor.New(x.Value.Shape...)
	keep := 1 - l.Rate
	inv := 1 / keep
	for i := range mask.Data {
		if l.Rng.Float32() < keep {
			mask.Data[i] = inv
		}
	}
	return ag.Mul(x, ag.Constant(mask))
}

// Params implements Layer.
func (l *Dropout) Params() []*Param { return nil }

// Residual wraps a body with an identity (or pooled) shortcut: the parallel
// skip-connection structure the paper adds to each depthwise-separable
// block so DNAS can choose network depth.
type Residual struct {
	Body Layer
	// Shortcut transforms the input to match the body output shape; nil
	// means identity.
	Shortcut Layer
}

// Forward implements Layer.
func (l *Residual) Forward(x *ag.Var, training bool) *ag.Var {
	y := l.Body.Forward(x, training)
	s := x
	if l.Shortcut != nil {
		s = l.Shortcut.Forward(x, training)
	}
	return ag.Add(y, s)
}

// Params implements Layer.
func (l *Residual) Params() []*Param {
	ps := l.Body.Params()
	if l.Shortcut != nil {
		ps = append(ps, l.Shortcut.Params()...)
	}
	return ps
}
