package search

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"micronets/internal/mcu"
	"micronets/internal/serve"
	"micronets/internal/zoo"
)

// TestExportedFrontierModelServes proves the search → zoo → serving loop
// end to end in-process: a frontier winner exported by the harness is
// loaded by the serving registry under its exported name and answers a
// live /v2/models/{name}/infer request.
func TestExportedFrontierModelServes(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Task: "kws", Device: mcu.F446RE, Trials: 8, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Frontier.Points()
	if len(pts) == 0 {
		t.Fatal("empty frontier")
	}
	_, names, err := ExportFrontier(pts, "NAS-serve-kws-S", "search_test")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, n := range names {
			zoo.Unregister(n)
		}
	})

	srv, err := serve.New(serve.Config{
		Models:   names[:1],
		Options:  serve.ModelOptions{AppendSoftmax: true},
		PoolSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	e, err := zoo.Get(names[0])
	if err != nil {
		t.Fatal(err)
	}
	elems := e.Spec.InputH * e.Spec.InputW * e.Spec.InputC
	data := make([]string, elems)
	for i := range data {
		data[i] = "0.25"
	}
	body := fmt.Sprintf(`{"inputs":[{"name":"input","shape":[%d,%d,%d],"datatype":"FP32","data":[%s]}]}`,
		e.Spec.InputH, e.Spec.InputW, e.Spec.InputC, strings.Join(data, ","))
	resp, err := ts.Client().Post(ts.URL+"/v2/models/"+names[0]+"/infer", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("infer on exported model returned %d", resp.StatusCode)
	}
	var out struct {
		ModelName string `json:"model_name"`
		Outputs   []struct {
			Name string    `json:"name"`
			Data []float64 `json:"data"`
		} `json:"outputs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ModelName != names[0] {
		t.Fatalf("served model %q, want %q", out.ModelName, names[0])
	}
	gotScores := false
	for _, o := range out.Outputs {
		if o.Name == "scores" && len(o.Data) == e.Spec.NumClasses {
			gotScores = true
		}
	}
	if !gotScores {
		t.Fatalf("no %d-way scores tensor in response: %+v", e.Spec.NumClasses, out.Outputs)
	}
}

// TestPublishFrontierHotLoads closes the continuous search→serve loop: a
// server boots with NO searched models, a finished search publishes its
// frontier through the /v2/repository admin API (inline specs, no shared
// filesystem), and the models serve infers — zero restarts.
func TestPublishFrontierHotLoads(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Task: "kws", Device: mcu.F446RE, Trials: 8, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Frontier.Points()
	if len(pts) == 0 {
		t.Fatal("empty frontier")
	}
	file, names, err := ExportFrontier(SpreadPoints(pts, 2), "NAS-publish-kws-S", "publish_test")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, n := range names {
			zoo.Unregister(n)
		}
	})
	// ExportFrontier registers the names into this process's zoo; drop
	// them first so the server genuinely learns them from the publish.
	for _, n := range names {
		zoo.Unregister(n)
	}

	srv, err := serve.New(serve.Config{
		Models:   []string{"MicroNet-KWS-S"},
		Options:  serve.ModelOptions{AppendSoftmax: true},
		PoolSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	loaded, err := PublishFrontier(context.Background(), ts.URL, file)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(file.Specs) {
		t.Fatalf("published %d of %d models", len(loaded), len(file.Specs))
	}

	for _, name := range loaded {
		e, err := zoo.Get(name)
		if err != nil {
			t.Fatalf("published model %s not registered server-side: %v", name, err)
		}
		elems := e.Spec.InputH * e.Spec.InputW * e.Spec.InputC
		data := make([]string, elems)
		for i := range data {
			data[i] = "0.1"
		}
		body := fmt.Sprintf(`{"inputs":[{"name":"input","datatype":"FP32","data":[%s]}]}`, strings.Join(data, ","))
		resp, err := ts.Client().Post(ts.URL+"/v2/models/"+name+"/infer", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("published model %s: infer status %d", name, resp.StatusCode)
		}
	}
}
