package search

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"micronets/internal/mcu"
	"micronets/internal/serve"
	"micronets/internal/zoo"
)

// TestExportedFrontierModelServes proves the search → zoo → serving loop
// end to end in-process: a frontier winner exported by the harness is
// loaded by the serving registry under its exported name and answers a
// live /v2/models/{name}/infer request.
func TestExportedFrontierModelServes(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Task: "kws", Device: mcu.F446RE, Trials: 8, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Frontier.Points()
	if len(pts) == 0 {
		t.Fatal("empty frontier")
	}
	_, names, err := ExportFrontier(pts, "NAS-serve-kws-S", "search_test")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, n := range names {
			zoo.Unregister(n)
		}
	})

	srv, err := serve.New(serve.Config{
		Models:   names[:1],
		Options:  serve.ModelOptions{AppendSoftmax: true},
		PoolSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	e, err := zoo.Get(names[0])
	if err != nil {
		t.Fatal(err)
	}
	elems := e.Spec.InputH * e.Spec.InputW * e.Spec.InputC
	data := make([]string, elems)
	for i := range data {
		data[i] = "0.25"
	}
	body := fmt.Sprintf(`{"inputs":[{"name":"input","shape":[%d,%d,%d],"datatype":"FP32","data":[%s]}]}`,
		e.Spec.InputH, e.Spec.InputW, e.Spec.InputC, strings.Join(data, ","))
	resp, err := ts.Client().Post(ts.URL+"/v2/models/"+names[0]+"/infer", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("infer on exported model returned %d", resp.StatusCode)
	}
	var out struct {
		ModelName string `json:"model_name"`
		Outputs   []struct {
			Name string    `json:"name"`
			Data []float64 `json:"data"`
		} `json:"outputs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ModelName != names[0] {
		t.Fatalf("served model %q, want %q", out.ModelName, names[0])
	}
	gotScores := false
	for _, o := range out.Outputs {
		if o.Name == "scores" && len(o.Data) == e.Spec.NumClasses {
			gotScores = true
		}
	}
	if !gotScores {
		t.Fatalf("no %d-way scores tensor in response: %+v", e.Spec.NumClasses, out.Outputs)
	}
}
