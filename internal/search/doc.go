// Package search is the hardware-in-the-loop NAS harness: it fans
// candidate architectures across a worker pool, evaluates each one by
// actually lowering it through graph → tflm (real greedy-planner arena
// bytes, not the element-count proxy) and costing it with the mcu
// latency/energy models, and maintains a live Pareto frontier over
// (accuracy-proxy, latency, SRAM, flash). Candidates come from three
// generators — uniform random sampling of the task's search space,
// evolutionary mutation of current frontier members, and a
// DNAS-warm-started seed from the differentiable search in internal/core.
// Every evaluated trial is checkpointed as one JSONL line, so a killed
// run resumes where it stopped, and frontier winners export as named zoo
// specs that cmd/serve can serve immediately.
//
// The search is two-stage: the capacity proxy ranks the broad sweep, and
// then Config.Finalists frontier points are re-ranked by accuracy in the
// loop — real short training runs (arch.Build → train.Fit on the task's
// quick synthetic dataset, per-trial seeds, parallel workers) whose
// measured TrainedAccuracy is recorded alongside the proxy, checkpointed
// as StageFinalist JSONL lines, and used as the accuracy axis of the
// frontier dominance ordering among finalists. This closes the paper's
// loop (§5): search under deployment constraints, measured on the
// target, trained for real, feeding the model zoo.
//
// Beyond single models, ExportCascade turns a searched frontier into a
// servable early-exit cascade graph (see internal/servegraph): the
// fastest point gates traffic for the most accurate one.
package search
