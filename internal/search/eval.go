package search

import (
	"fmt"
	"math"
	"math/rand"

	"micronets/internal/arch"
	"micronets/internal/graph"
	"micronets/internal/mcu"
	"micronets/internal/tflm"
)

// evalSeed fixes the synthetic-weight stream for every trial lowering.
// Weights do not affect any scored metric (latency, energy and memory are
// functions of shapes and datatypes only), so a shared seed keeps trial
// evaluation deterministic and resume-safe.
const evalSeed = 1

// Metrics is one candidate's hardware-in-the-loop measurement: the real
// tflm planner's byte accounting (not the element-count proxy the relaxed
// DNAS uses) plus the mcu latency/energy models on the target device.
type Metrics struct {
	// AccuracyProxy is the capacity-based stand-in for trained accuracy
	// (see accuracyProxy); higher is better.
	AccuracyProxy float64 `json:"accuracy_proxy"`
	// TrainedAccuracy is the task metric measured by a real short training
	// run during the finalist re-rank (percent: top-1 accuracy for
	// KWS/VWW, AUC for AD). Zero until stage two trains the candidate —
	// the proxy-only JSONL schema from before two-stage search omits the
	// field entirely.
	TrainedAccuracy float64 `json:"trained_accuracy,omitempty"`
	// LatencyS is modeled end-to-end inference latency on the device.
	LatencyS float64 `json:"latency_s"`
	// EnergyMJ is energy per inference in millijoules.
	EnergyMJ float64 `json:"energy_mj"`
	// ArenaBytes is the planner-reported activation arena.
	ArenaBytes int `json:"arena_bytes"`
	// TotalSRAMBytes adds persistent buffers and runtime overheads — the
	// number checked against the device SRAM budget.
	TotalSRAMBytes int `json:"total_sram_bytes"`
	// WeightBytes is the flash cost of weights alone.
	WeightBytes int `json:"weight_bytes"`
	// TotalFlashBytes is the full application flash footprint checked
	// against the device flash budget.
	TotalFlashBytes int `json:"total_flash_bytes"`
	// Ops is the paper-convention op count (2*MACs).
	Ops int64 `json:"ops"`
}

// Budgets are the deployment constraints a feasible candidate must meet,
// denominated in bytes (and seconds) like the post-refactor
// core.Constraints. Zero disables a bound.
type Budgets struct {
	SRAMBytes   int     `json:"sram_bytes"`
	FlashBytes  int     `json:"flash_bytes"`
	MaxLatencyS float64 `json:"max_latency_s,omitempty"`
}

// DeviceBudgets returns the budgets of a device: its full SRAM and flash
// (the runtime overheads are already part of Metrics' totals).
func DeviceBudgets(dev *mcu.Device) Budgets {
	return Budgets{SRAMBytes: dev.SRAMBytes(), FlashBytes: dev.FlashBytes()}
}

// Check reports every budget the metrics exceed (empty = feasible).
func (b Budgets) Check(m Metrics) []string {
	var v []string
	if b.SRAMBytes > 0 && m.TotalSRAMBytes > b.SRAMBytes {
		v = append(v, fmt.Sprintf("SRAM %d > %d", m.TotalSRAMBytes, b.SRAMBytes))
	}
	if b.FlashBytes > 0 && m.TotalFlashBytes > b.FlashBytes {
		v = append(v, fmt.Sprintf("flash %d > %d", m.TotalFlashBytes, b.FlashBytes))
	}
	if b.MaxLatencyS > 0 && m.LatencyS > b.MaxLatencyS {
		v = append(v, fmt.Sprintf("latency %.3fs > %.3fs", m.LatencyS, b.MaxLatencyS))
	}
	return v
}

// Evaluate lowers a candidate through the full deployment path — spec →
// graph → tflm memory plan → mcu cost models — and returns its metrics.
// This is the "hardware in the loop" step: the SRAM number is the actual
// greedy-planner arena (plus persistent buffers and runtime overheads),
// not the max-working-set element proxy.
func Evaluate(spec *arch.Spec, dev *mcu.Device) (Metrics, error) {
	// The proxy runs first: a spec that fails Analyze must fail the trial
	// (and be recorded as failed in the JSONL log), never score 0 and get
	// logged as a legitimate — terrible — candidate.
	proxy, err := accuracyProxy(spec)
	if err != nil {
		return Metrics{}, err
	}
	m, err := graph.FromSpec(spec, rand.New(rand.NewSource(evalSeed)), graph.LowerOptions{})
	if err != nil {
		return Metrics{}, err
	}
	report, err := tflm.Report(m, nil)
	if err != nil {
		return Metrics{}, err
	}
	// A latency-model failure fails the trial: the old `lat, _ :=` scored
	// the candidate 0 s, which Pareto-dominated every real candidate.
	lat, _, err := mcu.ModelLatency(m, dev)
	if err != nil {
		return Metrics{}, err
	}
	return Metrics{
		AccuracyProxy:   proxy,
		LatencyS:        lat,
		EnergyMJ:        mcu.EnergyPerInferenceMJ(m, dev),
		ArenaBytes:      report.ArenaBytes,
		TotalSRAMBytes:  report.TotalSRAM(),
		WeightBytes:     m.WeightBytes(),
		TotalFlashBytes: report.TotalFlash(),
		Ops:             m.TotalOps(),
	}, nil
}

// Task accuracy ceilings for the proxy, anchored to the best published
// numbers per task (Table 4): no capacity buys more than the ceiling.
var taskCeiling = map[string]float64{"kws": 97.0, "ad": 98.0, "vww": 90.0}

// accuracyProxy estimates reachable accuracy from model capacity: a
// saturating function of log-ops and log-params, matching the paper's
// observation that accuracy grows roughly logarithmically with ops before
// flattening (Figures 7/8). It is deterministic, cheap, and monotone in
// capacity — so the Pareto frontier it induces rewards architectures that
// buy capacity with the least latency/SRAM/flash, which is the shape of
// the real trade-off even though absolute values await
// accuracy-in-the-loop training (the finalist re-rank, see Trainer). A
// broken spec is an error, not a 0 score: Evaluate surfaces it so the
// trial is recorded as failed in the JSONL log instead of silently
// scored.
func accuracyProxy(spec *arch.Spec) (float64, error) {
	a, err := spec.Analyze()
	if err != nil {
		return 0, fmt.Errorf("accuracy proxy: %w", err)
	}
	ceiling, ok := taskCeiling[spec.Task]
	if !ok {
		ceiling = 95
	}
	capacity := 0.7*math.Log1p(float64(a.TotalMACs)) + 0.3*math.Log1p(float64(a.TotalParams))
	return ceiling * (1 - math.Exp(-capacity/3.9)), nil
}
