package search

import (
	"encoding/json"
	"fmt"
	"os"

	"micronets/internal/arch"
	"micronets/internal/servegraph"
	"micronets/internal/zoo"
)

// ExportName is the zoo name a frontier point exports under: the prefix
// (typically "NAS-<task>-<deviceclass>") plus the trial index.
func ExportName(prefix string, p Point) string {
	return fmt.Sprintf("%s-%03d", prefix, p.Trial)
}

// ExportFrontier publishes every frontier point into the zoo under
// ExportName and returns the spec file that makes the export durable.
// Each exported spec is a copy — the trial log keeps the original names —
// and carries a note summarizing the metrics it was selected on, so
// `cmd/serve -specs` and a human reading the file see the same story.
func ExportFrontier(points []Point, prefix, generatedBy string) (*zoo.SpecFile, []string, error) {
	file := &zoo.SpecFile{GeneratedBy: generatedBy, Notes: map[string]string{}}
	var names []string
	for _, p := range points {
		if p.Record == nil || p.Record.Spec == nil {
			return nil, nil, fmt.Errorf("search: frontier point (trial %d) has no spec", p.Trial)
		}
		spec := *p.Record.Spec
		spec.Blocks = append([]arch.Block(nil), p.Record.Spec.Blocks...)
		spec.Name = ExportName(prefix, p)
		spec.Source = "search"
		trained := ""
		if p.Metrics.TrainedAccuracy > 0 {
			trained = fmt.Sprintf(", trained %.2f%%", p.Metrics.TrainedAccuracy)
		}
		note := fmt.Sprintf(
			"Pareto frontier point (source %s): acc-proxy %.2f%%%s, latency %.1f ms, SRAM %.1f KB, flash %.1f KB, %.1f MOps",
			p.Source, p.Metrics.AccuracyProxy, trained, p.Metrics.LatencyS*1e3,
			float64(p.Metrics.TotalSRAMBytes)/1024, float64(p.Metrics.TotalFlashBytes)/1024,
			float64(p.Metrics.Ops)/1e6)
		if err := zoo.Register(&zoo.Entry{Name: spec.Name, Task: spec.Task, Spec: &spec, Notes: note}); err != nil {
			return nil, nil, err
		}
		file.Specs = append(file.Specs, &spec)
		file.Notes[spec.Name] = note
		names = append(names, spec.Name)
	}
	return file, names, nil
}

// WriteSpecFile saves an exported frontier to disk.
func WriteSpecFile(path string, file *zoo.SpecFile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := zoo.WriteSpecFile(f, file); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ExportCascade turns a searched Pareto frontier into a servable cascade
// graph spec: up to stages points spread across the frontier (always
// including the fastest and the most accurate), ordered fast→slow so
// cheap models gate the expensive ones. Each stage name is the point's
// ExportName — the cascade is meant to be registered on a server that
// loaded the matching frontier export. threshold is the early-exit
// confidence applied to every non-final stage.
func ExportCascade(points []Point, prefix string, threshold float64, stages int) (*servegraph.Spec, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("search: cannot export a cascade from an empty frontier")
	}
	if stages < 2 {
		stages = 2
	}
	picked := SpreadPoints(points, stages)
	if len(picked) < 2 {
		return nil, fmt.Errorf("search: a cascade needs at least 2 distinct frontier points, have %d", len(picked))
	}
	root := &servegraph.NodeSpec{Kind: servegraph.KindCascade, Name: "cascade", Threshold: threshold}
	for i, p := range picked {
		root.Children = append(root.Children, &servegraph.NodeSpec{
			Kind:  servegraph.KindModel,
			Name:  fmt.Sprintf("stage-%d", i),
			Model: ExportName(prefix, p),
		})
	}
	first, last := picked[0].Metrics, picked[len(picked)-1].Metrics
	return &servegraph.Spec{
		Name: prefix + "-cascade",
		Description: fmt.Sprintf(
			"Searched-frontier cascade: %d stages, gate %.1f ms → final %.1f ms, early-exit confidence %.2f",
			len(picked), first.LatencyS*1e3, last.LatencyS*1e3, threshold),
		Root: root,
	}, nil
}

// WriteCascadeFile saves an exported cascade spec as the JSON body of
// PUT /v2/graphs/{name}.
func WriteCascadeFile(path string, spec *servegraph.Spec) error {
	out, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
