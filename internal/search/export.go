package search

import (
	"fmt"
	"os"

	"micronets/internal/arch"
	"micronets/internal/zoo"
)

// ExportName is the zoo name a frontier point exports under: the prefix
// (typically "NAS-<task>-<deviceclass>") plus the trial index.
func ExportName(prefix string, p Point) string {
	return fmt.Sprintf("%s-%03d", prefix, p.Trial)
}

// ExportFrontier publishes every frontier point into the zoo under
// ExportName and returns the spec file that makes the export durable.
// Each exported spec is a copy — the trial log keeps the original names —
// and carries a note summarizing the metrics it was selected on, so
// `cmd/serve -specs` and a human reading the file see the same story.
func ExportFrontier(points []Point, prefix, generatedBy string) (*zoo.SpecFile, []string, error) {
	file := &zoo.SpecFile{GeneratedBy: generatedBy, Notes: map[string]string{}}
	var names []string
	for _, p := range points {
		if p.Record == nil || p.Record.Spec == nil {
			return nil, nil, fmt.Errorf("search: frontier point (trial %d) has no spec", p.Trial)
		}
		spec := *p.Record.Spec
		spec.Blocks = append([]arch.Block(nil), p.Record.Spec.Blocks...)
		spec.Name = ExportName(prefix, p)
		spec.Source = "search"
		trained := ""
		if p.Metrics.TrainedAccuracy > 0 {
			trained = fmt.Sprintf(", trained %.2f%%", p.Metrics.TrainedAccuracy)
		}
		note := fmt.Sprintf(
			"Pareto frontier point (source %s): acc-proxy %.2f%%%s, latency %.1f ms, SRAM %.1f KB, flash %.1f KB, %.1f MOps",
			p.Source, p.Metrics.AccuracyProxy, trained, p.Metrics.LatencyS*1e3,
			float64(p.Metrics.TotalSRAMBytes)/1024, float64(p.Metrics.TotalFlashBytes)/1024,
			float64(p.Metrics.Ops)/1e6)
		if err := zoo.Register(&zoo.Entry{Name: spec.Name, Task: spec.Task, Spec: &spec, Notes: note}); err != nil {
			return nil, nil, err
		}
		file.Specs = append(file.Specs, &spec)
		file.Notes[spec.Name] = note
		names = append(names, spec.Name)
	}
	return file, names, nil
}

// WriteSpecFile saves an exported frontier to disk.
func WriteSpecFile(path string, file *zoo.SpecFile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := zoo.WriteSpecFile(f, file); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
