package search

import (
	"fmt"
	"math/rand"

	"micronets/internal/arch"
	"micronets/internal/datasets"
	"micronets/internal/train"
)

// Trainer is the accuracy-in-the-loop half of the two-stage search: it
// holds the task's deterministic small-budget datasets, built once per
// run, and trains finalist specs for real — arch.Build into an
// nn.Sequential, train.Fit under the task's quick recipe — so the
// frontier's top candidates are re-ranked by measured task accuracy
// instead of the capacity proxy. Every finalist of one run competes on
// identical data (datasets are keyed by the run seed); only model
// initialization and batch order vary with the per-trial seed.
type Trainer struct {
	task    string
	trainDS *datasets.Dataset
	// evalDS is the held-out split scored by train.Accuracy (KWS/VWW).
	evalDS *datasets.Dataset
	// adTest is the mixed normal/anomalous test set scored by the §4.3
	// EvalAUC protocol (AD).
	adTest []datasets.ADSample
}

// NewTrainer builds the quick datasets for a task. The split rng is
// seeded by the run seed, so a resumed run evaluates finalists on exactly
// the data the interrupted run used.
func NewTrainer(task string, seed int64) (*Trainer, error) {
	t := &Trainer{task: task}
	switch task {
	case "kws":
		t.trainDS, t.evalDS = datasets.QuickKWS(seed).Split(rand.New(rand.NewSource(seed)), 0.25)
	case "vww":
		t.trainDS, t.evalDS = datasets.QuickVWW(seed).Split(rand.New(rand.NewSource(seed)), 0.25)
	case "ad":
		ad := datasets.QuickAD(seed)
		t.trainDS = ad.ClassifierDataset()
		t.adTest = ad.Test
	default:
		return nil, fmt.Errorf("search: no finalist trainer for task %q (have kws, vww, ad)", task)
	}
	return t, nil
}

// Train builds the spec into a trainable model, runs the task's quick
// recipe for steps, and returns the task metric in percent — top-1
// accuracy on the held-out split for KWS/VWW, AUC on the anomaly test
// set for AD. This is the TrainedAccuracy recorded alongside the proxy.
// Safe for concurrent use: the shared datasets are only read, and all
// randomness flows from the caller's seed.
func (t *Trainer) Train(spec *arch.Spec, steps int, seed int64) (float64, error) {
	cfg, err := train.QuickConfig(t.task, steps, seed)
	if err != nil {
		return 0, err
	}
	model, err := arch.Build(rand.New(rand.NewSource(seed)), spec, arch.BuildOptions{})
	if err != nil {
		return 0, fmt.Errorf("search: build finalist %s: %w", spec.Name, err)
	}
	if _, err := train.Fit(model, t.trainDS, cfg); err != nil {
		return 0, fmt.Errorf("search: train finalist %s: %w", spec.Name, err)
	}
	if t.task == "ad" {
		return 100 * train.EvalAUC(model, t.adTest), nil
	}
	return 100 * train.Accuracy(model, t.evalDS), nil
}
