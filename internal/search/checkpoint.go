package search

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"micronets/internal/arch"
)

// TrialRecord is one evaluated candidate, as checkpointed to the JSONL
// trial log. The log is the unit of resumability: every completed trial
// is one line, a restarted run replays the lines to rebuild the frontier
// and skips the recorded trial indices, and the frontier export reads
// specs straight out of it.
type TrialRecord struct {
	Trial  int    `json:"trial"`
	Source string `json:"source"`
	// Task, Device and Seed record what the trial was generated and
	// measured against; a resume only reuses records matching its own
	// config (metrics are device-specific, candidate generation is
	// seed-specific), and re-derives feasibility from the metrics against
	// its own — possibly different — budgets.
	Task       string     `json:"task"`
	Device     string     `json:"device"`
	Seed       int64      `json:"seed"`
	Spec       *arch.Spec `json:"spec"`
	Metrics    Metrics    `json:"metrics"`
	Feasible   bool       `json:"feasible"`
	Violations []string   `json:"violations,omitempty"`
	// Stage is "" for proxy evaluations (the schema before two-stage
	// search, so proxy-only logs resume unchanged) and StageFinalist for
	// re-appended records carrying a stage-two trained accuracy in
	// Metrics.TrainedAccuracy. A finalist line always follows its trial's
	// proxy line in a well-formed log; loaders that predate the field
	// simply skip it as a duplicate trial index.
	Stage string `json:"stage,omitempty"`
	// TrainSteps is the stage-two training budget behind
	// Metrics.TrainedAccuracy (finalist records only): a resume reuses a
	// trained result only when produced under its own -train-steps.
	TrainSteps int `json:"train_steps,omitempty"`
	// Err records candidates that failed to lower/plan/train (kept in the
	// log so a resume does not retry them forever).
	Err string `json:"err,omitempty"`
}

// StageFinalist marks a JSONL record re-appended by the accuracy-in-the-
// loop second stage.
const StageFinalist = "finalist"

// trialLog serializes JSONL appends from concurrent workers and flushes
// per line, so a killed run loses at most the line being written.
type trialLog struct {
	mu sync.Mutex
	w  *bufio.Writer
	f  *os.File
}

func openTrialLog(path string) (*trialLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	// A crash mid-append can leave a torn final line. ReadTrialLog
	// tolerates it, but appending after the fragment would weld the next
	// record onto it, turning a recoverable tail into permanent mid-file
	// corruption — truncate back to the last complete line first.
	if err := truncateTornTail(f); err != nil {
		f.Close()
		return nil, err
	}
	return &trialLog{w: bufio.NewWriter(f), f: f}, nil
}

// truncateTornTail trims the file back to its last newline (or empty) and
// leaves the offset at the new end.
func truncateTornTail(f *os.File) error {
	info, err := f.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	if size == 0 {
		return nil
	}
	buf := make([]byte, 1)
	end := size
	for end > 0 {
		if _, err := f.ReadAt(buf, end-1); err != nil {
			return err
		}
		if buf[0] == '\n' {
			break
		}
		end--
	}
	if end != size {
		if err := f.Truncate(end); err != nil {
			return err
		}
	}
	_, err = f.Seek(end, io.SeekStart)
	return err
}

func (l *trialLog) append(rec *TrialRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(append(b, '\n')); err != nil {
		return err
	}
	return l.w.Flush()
}

func (l *trialLog) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// ReadTrialLog parses a JSONL trial log. A torn final line (crash during
// append) is tolerated and dropped; corruption anywhere else is an error.
func ReadTrialLog(r io.Reader) ([]TrialRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var out []TrialRecord
	var pendingErr error
	for sc.Scan() {
		if pendingErr != nil {
			return nil, pendingErr
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec TrialRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Only acceptable as the torn last line; remember and fail if
			// more lines follow.
			pendingErr = fmt.Errorf("search: corrupt trial log line %d: %w", len(out)+1, err)
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// LoadTrialLog reads a trial log from disk; a missing file is an empty
// log (fresh start).
func LoadTrialLog(path string) ([]TrialRecord, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := ReadTrialLog(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}
