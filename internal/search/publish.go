package search

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"micronets/internal/zoo"
)

// PublishFrontier hot-loads every spec of an exported frontier into a
// running cmd/serve instance through its /v2/repository control plane —
// the "search publishes straight to production" half of the continuous
// search→serve loop. Each spec is sent inline in the load body, so the
// server needs no shared filesystem; the server registers it into its
// zoo and blue/green swaps it live. Returns the names loaded so far; on
// error, the returned slice tells the caller which models DID make it.
func PublishFrontier(ctx context.Context, baseURL string, file *zoo.SpecFile) ([]string, error) {
	if file == nil || len(file.Specs) == 0 {
		return nil, fmt.Errorf("search: nothing to publish")
	}
	base := strings.TrimRight(baseURL, "/")
	client := &http.Client{Timeout: 60 * time.Second}
	var names []string
	for _, s := range file.Specs {
		body, err := json.Marshal(map[string]any{"spec": s})
		if err != nil {
			return names, fmt.Errorf("search: publish %s: %w", s.Name, err)
		}
		u := base + "/v2/repository/models/" + url.PathEscape(s.Name) + "/load"
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
		if err != nil {
			return names, fmt.Errorf("search: publish %s: %w", s.Name, err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return names, fmt.Errorf("search: publish %s: %w", s.Name, err)
		}
		reply, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16)) //microvet:ignore droppederr best-effort error-body capture; the status code drives the real error below
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			// The server's structured error (e.g. the 409 RAM-budget
			// rejection) is the useful part; surface it verbatim.
			return names, fmt.Errorf("search: publish %s: server returned %d: %s",
				s.Name, resp.StatusCode, strings.TrimSpace(string(reply)))
		}
		names = append(names, s.Name)
	}
	return names, nil
}
