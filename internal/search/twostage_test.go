package search

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"micronets/internal/arch"
	"micronets/internal/mcu"
	"micronets/internal/zoo"
)

// brokenDevice returns a device the latency model cannot score (no clock
// calibration) but whose memory budgets are normal — the shape of a
// miscalibrated board entry.
func brokenDevice() *mcu.Device {
	return &mcu.Device{
		Name: "broken-board", CPU: "Cortex-M?", ClockMHz: 0, CycleFactor: 1,
		SRAMKB: 320, FlashKB: 1024, ActiveMW: 100, SleepMW: 1,
		SupplyVoltage: 3.3, Class: "M",
	}
}

// TestLatencyModelErrorFailsTrial is the regression test for the
// `lat, _ := mcu.ModelLatency(...)` bug: a candidate whose latency model
// fails must fail the whole trial and be recorded as a failed trial in
// the JSONL log — never score 0 s and Pareto-dominate real candidates.
func TestLatencyModelErrorFailsTrial(t *testing.T) {
	dev := brokenDevice()
	space, err := SpaceForTask("kws")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(space.Build("t", []int{16, 16, 16}), dev); err == nil {
		t.Fatal("Evaluate on an unscoreable device must error")
	}

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "trials.jsonl")
	res, err := Run(context.Background(), Config{
		Task: "kws", Device: dev, Trials: 4, Seed: 11, CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frontier.Size() != 0 {
		t.Fatalf("frontier has %d members from a device no trial can be measured on", res.Frontier.Size())
	}
	for _, rec := range res.Trials {
		if rec.Err == "" {
			t.Fatalf("trial %d succeeded against the broken latency model", rec.Trial)
		}
		if rec.Feasible {
			t.Fatalf("trial %d marked feasible despite failing", rec.Trial)
		}
		if rec.Metrics.LatencyS != 0 || rec.Metrics.AccuracyProxy != 0 {
			t.Fatalf("trial %d carries metrics (%+v) despite failing", rec.Trial, rec.Metrics)
		}
	}
	// The failures must be durable: the log records them as failed trials.
	recs, err := LoadTrialLog(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("log has %d records, want 4", len(recs))
	}
	for _, rec := range recs {
		if rec.Err == "" {
			t.Fatalf("logged trial %d lacks the failure", rec.Trial)
		}
	}
}

// TestBrokenSpecFailsEvaluate is the regression test for accuracyProxy
// swallowing spec.Analyze errors: a malformed spec must surface an error
// from Evaluate (and a 0 score must never be logged as legitimate).
func TestBrokenSpecFailsEvaluate(t *testing.T) {
	broken := &arch.Spec{
		Name: "broken", Task: "kws", InputH: 0, InputW: 10, InputC: 1, NumClasses: 12,
		Blocks: []arch.Block{{Kind: arch.Dense, OutC: 12}},
	}
	if _, err := accuracyProxy(broken); err == nil {
		t.Fatal("accuracyProxy must propagate Analyze errors, not return 0")
	}
	if _, err := Evaluate(broken, mcu.F446RE); err == nil {
		t.Fatal("Evaluate must fail on a spec that does not analyze")
	}
	// A structurally-impossible block sequence (conv after flatten) fails
	// Analyze too, and must also surface.
	after := &arch.Spec{
		Name: "conv-after-flatten", Task: "kws", InputH: 8, InputW: 8, InputC: 1, NumClasses: 4,
		Blocks: []arch.Block{
			{Kind: arch.Dense, OutC: 4},
			{Kind: arch.Conv, KH: 3, KW: 3, OutC: 8, Stride: 1},
		},
	}
	if _, err := Evaluate(after, mcu.F446RE); err == nil {
		t.Fatal("Evaluate must fail on conv-after-flatten")
	}
}

// twoStageConfig is the shared small-budget config the two-stage tests
// run: big enough for a meaningful frontier, small enough to stay fast.
func twoStageConfig(ckpt string) Config {
	return Config{
		Task: "kws", Device: mcu.F446RE, Trials: 12, Seed: 33,
		Finalists: 2, TrainSteps: 5, CheckpointPath: ckpt,
	}
}

func TestTwoStageFinalistsTrained(t *testing.T) {
	res, err := Run(context.Background(), twoStageConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Finalists) == 0 {
		t.Fatal("two-stage run produced no trained finalists")
	}
	if res.Trained != len(res.Finalists) {
		t.Fatalf("Trained %d != finalists %d on a fresh run", res.Trained, len(res.Finalists))
	}
	for _, p := range res.Finalists {
		if p.Metrics.TrainedAccuracy <= 0 {
			t.Fatalf("finalist trial %d has no trained accuracy", p.Trial)
		}
		if p.Metrics.TrainedAccuracy == p.Metrics.AccuracyProxy {
			t.Fatalf("finalist trial %d trained accuracy equals the proxy (%.4f) — suspicious copy",
				p.Trial, p.Metrics.AccuracyProxy)
		}
	}
	// The re-rank is ordered best-first by trained accuracy.
	for i := 1; i < len(res.Finalists); i++ {
		if res.Finalists[i].Metrics.TrainedAccuracy > res.Finalists[i-1].Metrics.TrainedAccuracy {
			t.Fatal("finalists not sorted by trained accuracy")
		}
	}
	// Trained accuracy propagates into the trial records and the exported
	// spec notes.
	trained := map[int]float64{}
	for _, rec := range res.Trials {
		if rec.Metrics.TrainedAccuracy > 0 {
			trained[rec.Trial] = rec.Metrics.TrainedAccuracy
		}
	}
	if len(trained) != len(res.Finalists) {
		t.Fatalf("%d trial records carry trained accuracy, want %d", len(trained), len(res.Finalists))
	}
	file, _, err := ExportFrontier(res.Finalists, "NAS-twostage-test", "twostage_test")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for name := range file.Notes {
			zoo.Unregister(name)
		}
	})
	for name, note := range file.Notes {
		if !strings.Contains(note, "trained") {
			t.Fatalf("exported finalist %s note lacks trained accuracy: %q", name, note)
		}
	}
}

func TestTwoStageDeterministicUnderSeed(t *testing.T) {
	a, err := Run(context.Background(), twoStageConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), twoStageConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Finalists) != len(b.Finalists) || len(a.Finalists) == 0 {
		t.Fatalf("finalist counts differ: %d vs %d", len(a.Finalists), len(b.Finalists))
	}
	for i := range a.Finalists {
		pa, pb := a.Finalists[i], b.Finalists[i]
		if pa.Trial != pb.Trial {
			t.Fatalf("finalist %d differs: trial %d vs %d", i, pa.Trial, pb.Trial)
		}
		if pa.Metrics.TrainedAccuracy != pb.Metrics.TrainedAccuracy {
			t.Fatalf("finalist trial %d trained accuracy not deterministic: %v vs %v",
				pa.Trial, pa.Metrics.TrainedAccuracy, pb.Metrics.TrainedAccuracy)
		}
	}
}

func TestTwoStageResumeSkipsTrainedFinalists(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "trials.jsonl")
	first, err := Run(context.Background(), twoStageConfig(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if first.Trained == 0 {
		t.Fatal("first run trained no finalists")
	}
	// A clean resume replays everything: no re-evaluation, no re-training.
	second, err := Run(context.Background(), twoStageConfig(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if second.Evaluated != 0 || second.Trained != 0 {
		t.Fatalf("clean resume re-did work: evaluated %d trained %d", second.Evaluated, second.Trained)
	}
	assertSameFinalists(t, first, second)

	// Simulate a crash mid-finalist-training: drop one finalist line from
	// the log. The resumed run must retrain exactly that finalist and
	// reproduce the interrupted run's results (per-trial seeds).
	dropTrial := first.Finalists[0].Trial
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	dropped := 0
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.Contains(line, `"stage":"finalist"`) && strings.Contains(line, fmt.Sprintf(`"trial":%d,`, dropTrial)) {
			dropped++
			continue
		}
		kept = append(kept, line)
	}
	if dropped != 1 {
		t.Fatalf("dropped %d finalist lines for trial %d, want 1", dropped, dropTrial)
	}
	if err := os.WriteFile(ckpt, []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	third, err := Run(context.Background(), twoStageConfig(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if third.Evaluated != 0 || third.Trained != 1 {
		t.Fatalf("mid-training resume: evaluated %d trained %d, want 0/1", third.Evaluated, third.Trained)
	}
	assertSameFinalists(t, first, third)
}

// TestProxyOnlyLogResumesIntoTwoStage pins forward compatibility: a
// JSONL log written by a proxy-only run (the schema before two-stage
// search) must resume into a two-stage run without error — trials are
// replayed, finalists are trained fresh.
func TestProxyOnlyLogResumesIntoTwoStage(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "trials.jsonl")
	proxyCfg := twoStageConfig(ckpt)
	proxyCfg.Finalists, proxyCfg.TrainSteps = 0, 0
	first, err := Run(context.Background(), proxyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Finalists) != 0 || first.Trained != 0 {
		t.Fatal("proxy-only run must not train finalists")
	}
	for _, rec := range first.Trials {
		if rec.Metrics.TrainedAccuracy != 0 {
			t.Fatalf("proxy-only trial %d carries trained accuracy", rec.Trial)
		}
	}
	second, err := Run(context.Background(), twoStageConfig(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if second.Resumed != len(first.Trials) || second.Evaluated != 0 {
		t.Fatalf("proxy-only log not replayed: resumed %d evaluated %d", second.Resumed, second.Evaluated)
	}
	if second.Trained == 0 || len(second.Finalists) == 0 {
		t.Fatal("two-stage resume from a proxy-only log trained no finalists")
	}
	// And the other direction: a proxy-only run over a two-stage log must
	// ignore the finalist lines without error.
	third, err := Run(context.Background(), proxyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if third.Resumed != len(first.Trials) || third.Evaluated != 0 || third.Trained != 0 {
		t.Fatalf("two-stage log broke a proxy-only resume: resumed %d evaluated %d trained %d",
			third.Resumed, third.Evaluated, third.Trained)
	}
}

func TestFinalistDominanceUsesTrainedAccuracy(t *testing.T) {
	// a and b are proxy-incomparable (b buys its higher proxy with
	// latency) so both join the frontier — but training revealed a to be
	// strictly better: higher measured accuracy at lower cost.
	a := Metrics{AccuracyProxy: 90, TrainedAccuracy: 70, LatencyS: 0.1, TotalSRAMBytes: 100, TotalFlashBytes: 100}
	b := Metrics{AccuracyProxy: 95, TrainedAccuracy: 50, LatencyS: 0.2, TotalSRAMBytes: 100, TotalFlashBytes: 100}
	if !trainedDominates(a, b) {
		t.Fatal("higher trained accuracy at lower cost must dominate")
	}
	if trainedDominates(b, a) {
		t.Fatal("higher proxy must not dominate when both carry trained accuracy")
	}
	// Frontier.Add stays proxy-only (transitive, insertion-order free):
	// a trained finalist is never evicted mid-run just for scoring
	// honestly low against an untrained point's optimistic proxy.
	c := Metrics{AccuracyProxy: 90, TrainedAccuracy: 20, LatencyS: 0.1, TotalSRAMBytes: 100, TotalFlashBytes: 100}
	d := Metrics{AccuracyProxy: 85, LatencyS: 0.1, TotalSRAMBytes: 100, TotalFlashBytes: 100}
	if !dominates(c, d) || dominates(d, c) {
		t.Fatal("proxy axis must decide Frontier.Add comparisons")
	}

	// The prune applies the trained ordering among trained members only,
	// and leaves untrained members alone.
	f := &Frontier{}
	f.Add(Point{Trial: 0, Metrics: a})
	f.Add(Point{Trial: 1, Metrics: b})
	unrelated := Metrics{AccuracyProxy: 96, LatencyS: 0.3, TotalSRAMBytes: 100, TotalFlashBytes: 100}
	f.Add(Point{Trial: 2, Metrics: unrelated})
	if f.Size() != 3 {
		t.Fatalf("setup frontier size %d, want 3", f.Size())
	}
	f.PruneTrainedDominated()
	if f.Size() != 2 {
		t.Fatalf("pruned frontier size %d, want 2 (b evicted under trained ordering)", f.Size())
	}
	for _, p := range f.Points() {
		if p.Trial == 1 {
			t.Fatal("trained-dominated finalist survived the prune")
		}
	}
}

func TestSpreadPoints(t *testing.T) {
	pts := make([]Point, 7)
	for i := range pts {
		pts[i] = Point{Trial: i, Metrics: Metrics{LatencyS: float64(i)}}
	}
	got := SpreadPoints(pts, 3)
	if len(got) != 3 || got[0].Trial != 0 || got[2].Trial != 6 {
		t.Fatalf("spread must keep both endpoints: %+v", got)
	}
	if len(SpreadPoints(pts, 0)) != 7 || len(SpreadPoints(pts, 10)) != 7 {
		t.Fatal("k<=0 or k>=len must return every point")
	}
	if one := SpreadPoints(pts, 1); len(one) != 1 || one[0].Trial != 0 {
		t.Fatalf("k=1 must return the fastest point: %+v", one)
	}
	seen := map[int]bool{}
	for _, p := range SpreadPoints(pts, 6) {
		if seen[p.Trial] {
			t.Fatalf("duplicate trial %d in spread", p.Trial)
		}
		seen[p.Trial] = true
	}
}

// TestTrainerADPath exercises the anomaly-detection finalist metric: the
// §4.3 EvalAUC protocol over the quick AD test set.
func TestTrainerADPath(t *testing.T) {
	tr, err := NewTrainer("ad", 7)
	if err != nil {
		t.Fatal(err)
	}
	space, err := SpaceForTask("ad")
	if err != nil {
		t.Fatal(err)
	}
	spec := space.Build("ad-finalist", []int{16, 16, 16, 16})
	auc, err := tr.Train(spec, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if auc <= 0 || auc > 100 {
		t.Fatalf("AD trained metric %v outside (0, 100]", auc)
	}
	if _, err := NewTrainer("nope", 1); err == nil {
		t.Fatal("unknown task must error")
	}
}

func assertSameFinalists(t *testing.T, want, got *Result) {
	t.Helper()
	if len(want.Finalists) != len(got.Finalists) {
		t.Fatalf("finalist counts differ: %d vs %d", len(want.Finalists), len(got.Finalists))
	}
	for i := range want.Finalists {
		pw, pg := want.Finalists[i], got.Finalists[i]
		if pw.Trial != pg.Trial || pw.Metrics.TrainedAccuracy != pg.Metrics.TrainedAccuracy {
			t.Fatalf("finalist %d differs: trial %d (%.4f) vs trial %d (%.4f)",
				i, pw.Trial, pw.Metrics.TrainedAccuracy, pg.Trial, pg.Metrics.TrainedAccuracy)
		}
	}
}
