package search

import (
	"fmt"
	"math"
	"math/rand"

	"micronets/internal/arch"
)

// Space is a DS-CNN-style architecture search space for one task,
// parameterized the way the paper's KWS/AD spaces are (§5.2.2, §5.2.3): a
// first standard convolution followed by a variable-depth stack of
// depthwise-separable blocks with per-block searchable widths (multiples
// of 4, the CMSIS-NN fast-path granularity), then the task's fixed
// pool+classifier tail. A candidate is fully described by its width
// vector [firstConvC, dsC0, dsC1, ...]; strides are a deterministic
// function of position (stridePattern), which keeps every sampled and
// mutated candidate geometrically valid by construction.
type Space struct {
	Task                   string
	InputH, InputW, InputC int
	NumClasses             int
	FirstKH, FirstKW       int
	FirstStride            int
	// PoolKH/PoolKW is the fixed average-pool tail; 0 means global pool.
	PoolKH, PoolKW int
	// MinBlocks/MaxBlocks bound the DS-block count.
	MinBlocks, MaxBlocks int
	// MinC/MaxC bound every width; both multiples of 4.
	MinC, MaxC int
	// strideFor returns the stride of DS block i out of n.
	strideFor func(i, n int) int
}

// SpaceForTask returns the search space for a task ("kws" or "ad").
func SpaceForTask(task string) (*Space, error) {
	switch task {
	case "kws":
		// 49x10 MFCC input; the first DS block downsamples to 25x5, which
		// the 25x5 average pool collapses — the Table 5 KWS geometry.
		return &Space{
			Task: "kws", InputH: 49, InputW: 10, InputC: 1, NumClasses: 12,
			FirstKH: 10, FirstKW: 4, FirstStride: 1,
			PoolKH: 25, PoolKW: 5,
			MinBlocks: 2, MaxBlocks: 8, MinC: 8, MaxC: 256,
			strideFor: func(i, n int) int {
				if i == 0 {
					return 2
				}
				return 1
			},
		}, nil
	case "ad":
		// 32x32 spectrogram patches; stride 2 on the first and last two DS
		// blocks takes 32 -> 4 for the 4x4 pool — the MicroNet-AD geometry.
		return &Space{
			Task: "ad", InputH: 32, InputW: 32, InputC: 1, NumClasses: 4,
			FirstKH: 3, FirstKW: 3, FirstStride: 1,
			PoolKH: 4, PoolKW: 4,
			MinBlocks: 3, MaxBlocks: 7, MinC: 8, MaxC: 256,
			strideFor: func(i, n int) int {
				if i == 0 || i >= n-2 {
					return 2
				}
				return 1
			},
		}, nil
	default:
		return nil, fmt.Errorf("search: no search space for task %q (have kws, ad)", task)
	}
}

// clampWidth snaps a width into [MinC, MaxC] on the multiple-of-4 grid.
func (s *Space) clampWidth(c int) int {
	c = (c + 3) / 4 * 4
	if c < s.MinC {
		c = s.MinC
	}
	if c > s.MaxC {
		c = s.MaxC
	}
	return c
}

// randWidth samples a width log-uniformly (so small and large widths are
// both explored rather than the grid being dominated by wide blocks).
func (s *Space) randWidth(rng *rand.Rand) int {
	lo, hi := float64(s.MinC), float64(s.MaxC)
	c := lo * math.Pow(hi/lo, rng.Float64())
	return s.clampWidth(int(c))
}

// Build constructs the Spec for a width vector (first conv width followed
// by one width per DS block).
func (s *Space) Build(name string, widths []int) *arch.Spec {
	n := len(widths) - 1
	spec := &arch.Spec{
		Name: name, Task: s.Task, Source: "search",
		InputH: s.InputH, InputW: s.InputW, InputC: s.InputC,
		NumClasses: s.NumClasses,
	}
	spec.Blocks = append(spec.Blocks, arch.Block{
		Kind: arch.Conv, KH: s.FirstKH, KW: s.FirstKW,
		OutC: s.clampWidth(widths[0]), Stride: s.FirstStride,
	})
	for i := 0; i < n; i++ {
		spec.Blocks = append(spec.Blocks, arch.Block{
			Kind: arch.DSBlock, KH: 3, KW: 3,
			OutC: s.clampWidth(widths[i+1]), Stride: s.strideFor(i, n),
		})
	}
	if s.PoolKH > 0 {
		spec.Blocks = append(spec.Blocks, arch.Block{Kind: arch.AvgPool, KH: s.PoolKH, KW: s.PoolKW, Stride: 1})
	} else {
		spec.Blocks = append(spec.Blocks, arch.Block{Kind: arch.GlobalPool})
	}
	spec.Blocks = append(spec.Blocks, arch.Block{Kind: arch.Dense, OutC: s.NumClasses})
	return spec
}

// Random samples a candidate uniformly in depth and log-uniformly in
// width.
func (s *Space) Random(name string, rng *rand.Rand) *arch.Spec {
	n := s.MinBlocks + rng.Intn(s.MaxBlocks-s.MinBlocks+1)
	widths := make([]int, n+1)
	for i := range widths {
		widths[i] = s.randWidth(rng)
	}
	return s.Build(name, widths)
}

// Widths extracts the width vector from a spec (first conv plus DS
// blocks), tolerating specs that did not originate from this space (e.g.
// a DNAS-discretized architecture): unknown block kinds are skipped and
// the result is clamped to the space's depth bounds.
func (s *Space) Widths(spec *arch.Spec) []int {
	var widths []int
	for _, b := range spec.Blocks {
		switch b.Kind {
		case arch.Conv:
			if len(widths) == 0 {
				widths = append(widths, b.OutC)
			}
		case arch.DSBlock:
			if len(widths) > 0 {
				widths = append(widths, b.OutC)
			}
		}
	}
	if len(widths) == 0 {
		widths = []int{s.MinC}
	}
	for len(widths)-1 < s.MinBlocks {
		widths = append(widths, widths[len(widths)-1])
	}
	if len(widths)-1 > s.MaxBlocks {
		widths = widths[:s.MaxBlocks+1]
	}
	return widths
}

// Mutate derives a new candidate from a parent via one of three
// evolutionary moves — jitter one width, insert a block (duplicating a
// neighbor's width), or remove a block — always staying inside the space.
func (s *Space) Mutate(name string, parent *arch.Spec, rng *rand.Rand) *arch.Spec {
	widths := s.Widths(parent)
	n := len(widths) - 1
	switch op := rng.Intn(3); {
	case op == 1 && n < s.MaxBlocks:
		// Insert a DS block, copying the width at the insertion point.
		at := 1 + rng.Intn(n+1)
		widths = append(widths[:at], append([]int{widths[min(at, len(widths)-1)]}, widths[at:]...)...)
	case op == 2 && n > s.MinBlocks:
		at := 1 + rng.Intn(n)
		widths = append(widths[:at], widths[at+1:]...)
	default:
		// Width jitter: one position, one to three grid steps either way.
		at := rng.Intn(len(widths))
		delta := 4 * (1 + rng.Intn(3))
		if rng.Intn(2) == 0 {
			delta = -delta
		}
		widths[at] = s.clampWidth(widths[at] + delta)
	}
	return s.Build(name, widths)
}
