package search

import (
	"sort"
	"sync"
)

// Point is one feasible candidate on (or competing for) the frontier.
type Point struct {
	Trial   int     `json:"trial"`
	Source  string  `json:"source"` // "random", "mutate", "dnas"
	Metrics Metrics `json:"metrics"`
	// Record links back to the trial log entry carrying the full spec.
	Record *TrialRecord `json:"-"`
}

// dominates reports whether a is at least as good as b on every objective
// — accuracy proxy up; latency, SRAM and flash down — and strictly better
// on at least one. Energy is deliberately not a fourth independent axis:
// power is model-independent (§3.4), so energy ranks identically to
// latency on a fixed device.
func dominates(a, b Metrics) bool {
	if a.AccuracyProxy < b.AccuracyProxy || a.LatencyS > b.LatencyS ||
		a.TotalSRAMBytes > b.TotalSRAMBytes || a.TotalFlashBytes > b.TotalFlashBytes {
		return false
	}
	return a.AccuracyProxy > b.AccuracyProxy || a.LatencyS < b.LatencyS ||
		a.TotalSRAMBytes < b.TotalSRAMBytes || a.TotalFlashBytes < b.TotalFlashBytes
}

// Frontier is a live, thread-safe Pareto frontier over
// (accuracy-proxy, latency, SRAM, flash). Workers insert concurrently;
// the evolutionary sampler draws parents from it concurrently.
type Frontier struct {
	mu  sync.RWMutex
	pts []Point
}

// Add inserts a point unless an existing member dominates it — or ties
// it exactly on every objective, so re-discovered duplicates of a
// frontier architecture don't pile up — evicting any members the new
// point dominates. It reports whether the point joined the frontier.
func (f *Frontier) Add(p Point) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, q := range f.pts {
		if dominates(q.Metrics, p.Metrics) || q.Metrics == p.Metrics {
			return false
		}
	}
	kept := f.pts[:0]
	for _, q := range f.pts {
		if !dominates(p.Metrics, q.Metrics) {
			kept = append(kept, q)
		}
	}
	f.pts = append(kept, p)
	return true
}

// Points returns a snapshot sorted by latency (fastest first).
func (f *Frontier) Points() []Point {
	f.mu.RLock()
	out := append([]Point(nil), f.pts...)
	f.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Metrics.LatencyS != out[j].Metrics.LatencyS {
			return out[i].Metrics.LatencyS < out[j].Metrics.LatencyS
		}
		return out[i].Trial < out[j].Trial
	})
	return out
}

// Size returns the current frontier cardinality.
func (f *Frontier) Size() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.pts)
}

// Pick selects the member at pick mod size — the caller pre-draws pick
// from its own deterministic stream, so consulting the frontier consumes
// no RNG state (see Config.runTrial).
func (f *Frontier) Pick(pick int64) (Point, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if len(f.pts) == 0 {
		return Point{}, false
	}
	return f.pts[int(pick%int64(len(f.pts)))], true
}
