package search

import (
	"sort"
	"sync"
)

// Point is one feasible candidate on (or competing for) the frontier.
type Point struct {
	Trial   int     `json:"trial"`
	Source  string  `json:"source"` // "random", "mutate", "dnas"
	Metrics Metrics `json:"metrics"`
	// Record links back to the trial log entry carrying the full spec.
	Record *TrialRecord `json:"-"`
}

// dominates reports whether a is at least as good as b on every objective
// — accuracy proxy up; latency, SRAM and flash down — and strictly better
// on at least one. The proxy is always the accuracy axis here, even for
// trained finalists: using the trained value only when both points carry
// one would make the relation non-transitive (proxy beats trained beats
// proxy), so frontier membership would depend on insertion order. The
// trained ordering is instead applied as a separate, transitive prune
// among finalists (PruneTrainedDominated). Energy is deliberately not a
// fourth independent axis: power is model-independent (§3.4), so energy
// ranks identically to latency on a fixed device.
func dominates(a, b Metrics) bool {
	if a.AccuracyProxy < b.AccuracyProxy || a.LatencyS > b.LatencyS ||
		a.TotalSRAMBytes > b.TotalSRAMBytes || a.TotalFlashBytes > b.TotalFlashBytes {
		return false
	}
	return a.AccuracyProxy > b.AccuracyProxy || a.LatencyS < b.LatencyS ||
		a.TotalSRAMBytes < b.TotalSRAMBytes || a.TotalFlashBytes < b.TotalFlashBytes
}

// trainedDominates is the finalist dominance ordering: like dominates but
// with the measured trained accuracy as the accuracy axis. Only defined
// between two points that both carry a trained accuracy — trained and
// proxy values live on different scales (a short real training run lands
// well below the proxy's Table-4-anchored ceiling), so they are never
// compared against each other.
func trainedDominates(a, b Metrics) bool {
	if a.TrainedAccuracy < b.TrainedAccuracy || a.LatencyS > b.LatencyS ||
		a.TotalSRAMBytes > b.TotalSRAMBytes || a.TotalFlashBytes > b.TotalFlashBytes {
		return false
	}
	return a.TrainedAccuracy > b.TrainedAccuracy || a.LatencyS < b.LatencyS ||
		a.TotalSRAMBytes < b.TotalSRAMBytes || a.TotalFlashBytes < b.TotalFlashBytes
}

// Frontier is a live, thread-safe Pareto frontier over
// (accuracy-proxy, latency, SRAM, flash). Workers insert concurrently;
// the evolutionary sampler draws parents from it concurrently.
type Frontier struct {
	mu  sync.RWMutex
	pts []Point
}

// Add inserts a point unless an existing member dominates it — or ties
// it exactly on every objective, so re-discovered duplicates of a
// frontier architecture don't pile up — evicting any members the new
// point dominates. It reports whether the point joined the frontier.
func (f *Frontier) Add(p Point) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, q := range f.pts {
		if dominates(q.Metrics, p.Metrics) || q.Metrics == p.Metrics {
			return false
		}
	}
	kept := f.pts[:0]
	for _, q := range f.pts {
		if !dominates(p.Metrics, q.Metrics) {
			kept = append(kept, q)
		}
	}
	f.pts = append(kept, p)
	return true
}

// Points returns a snapshot sorted by latency (fastest first).
func (f *Frontier) Points() []Point {
	f.mu.RLock()
	out := append([]Point(nil), f.pts...)
	f.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Metrics.LatencyS != out[j].Metrics.LatencyS {
			return out[i].Metrics.LatencyS < out[j].Metrics.LatencyS
		}
		return out[i].Trial < out[j].Trial
	})
	return out
}

// Size returns the current frontier cardinality.
func (f *Frontier) Size() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.pts)
}

// PruneTrainedDominated applies the finalist dominance ordering on top of
// the proxy frontier: a member whose trained accuracy is dominated by
// another trained member (trainedDominates) is evicted. Run after stage
// two has written trained accuracies. Because it only ever removes
// points, and trainedDominates restricted to trained pairs is a strict
// partial order, the result is independent of insertion order — unlike
// folding the trained axis into Add's dominance test.
func (f *Frontier) PruneTrainedDominated() {
	f.mu.Lock()
	defer f.mu.Unlock()
	pts := append([]Point(nil), f.pts...)
	kept := f.pts[:0]
	for _, p := range pts {
		dominated := false
		if p.Metrics.TrainedAccuracy > 0 {
			for _, q := range pts {
				if q.Metrics.TrainedAccuracy > 0 && trainedDominates(q.Metrics, p.Metrics) {
					dominated = true
					break
				}
			}
		}
		if !dominated {
			kept = append(kept, p)
		}
	}
	f.pts = kept
}

// SpreadPoints picks at most k points spread evenly across a
// latency-sorted point slice (as returned by Frontier.Points), always
// including both endpoints, so a bounded selection covers the whole
// latency range of the frontier instead of clustering at the fast end.
// It is the shared selector behind finalist choice and -export-top.
func SpreadPoints(pts []Point, k int) []Point {
	if k <= 0 || k >= len(pts) {
		return append([]Point(nil), pts...)
	}
	picked := make([]Point, 0, k)
	if k == 1 {
		return append(picked, pts[0])
	}
	for i := 0; i < k; i++ {
		picked = append(picked, pts[i*(len(pts)-1)/(k-1)])
	}
	return picked
}

// Pick selects the member at pick mod size — the caller pre-draws pick
// from its own deterministic stream, so consulting the frontier consumes
// no RNG state (see Config.runTrial).
func (f *Frontier) Pick(pick int64) (Point, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if len(f.pts) == 0 {
		return Point{}, false
	}
	return f.pts[int(pick%int64(len(f.pts)))], true
}
