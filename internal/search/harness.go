package search

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"micronets/internal/arch"
	"micronets/internal/core"
	"micronets/internal/datasets"
	"micronets/internal/mcu"
	"micronets/internal/nn"
	"micronets/internal/tflm"
)

// Config drives Run.
type Config struct {
	// Task selects the search space: "kws" or "ad".
	Task string
	// Device is the deployment target whose latency/energy models score
	// every trial.
	Device *mcu.Device
	// Budgets gate frontier membership; zero-valued budgets default to
	// DeviceBudgets(Device).
	Budgets Budgets
	// Trials is the total number of candidate evaluations (including any
	// resumed from the checkpoint).
	Trials int
	// Workers bounds the evaluation pool (default min(NumCPU, 8)).
	Workers int
	// Seed makes candidate generation deterministic per trial index.
	Seed int64
	// MutateFrac is the fraction of trials drawn by mutating a frontier
	// member once one exists. Zero means the default (0.5); pass a
	// negative value to disable mutation entirely.
	MutateFrac float64
	// DNASSteps > 0 runs the differentiable search for that many steps to
	// warm-start trial 0 (instead of a random sample).
	DNASSteps int
	// Finalists > 0 enables the accuracy-in-the-loop second stage: after
	// the proxy-ranked sweep, that many frontier points — spread across
	// the latency range so the whole frontier is represented — are
	// re-ranked by real short training runs (arch.Build → train.Fit on
	// the task's quick synthetic dataset) and their TrainedAccuracy is
	// recorded alongside the proxy.
	Finalists int
	// TrainSteps is the per-finalist training budget (required when
	// Finalists > 0). A resumed run only reuses logged trained results
	// produced under the same budget.
	TrainSteps int
	// CheckpointPath is the JSONL trial log; if it exists, recorded
	// trials are resumed instead of re-evaluated. Empty disables
	// checkpointing (and resume).
	CheckpointPath string
	// Log receives progress lines (optional).
	Log func(string)
}

// Result is a finished (or budget-exhausted) search run.
type Result struct {
	Frontier *Frontier
	// Task and Device echo what the run searched for, so renderers don't
	// have to re-guess them.
	Task   string
	Device *mcu.Device
	// Trials holds every evaluated record, resumed and new, by trial.
	Trials []TrialRecord
	// Evaluated counts trials newly evaluated by this run; Resumed counts
	// records replayed from the checkpoint.
	Evaluated, Resumed int
	// Finalists is the stage-two re-rank: the finalist points that carry
	// a trained accuracy, best trained accuracy first. Empty when the run
	// was proxy-only (Config.Finalists == 0).
	Finalists []Point
	// Trained counts finalists newly trained by this run; finalists whose
	// trained result was resumed from the checkpoint are not re-trained
	// and not counted.
	Trained int
}

func (c *Config) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(fmt.Sprintf(format, args...))
	}
}

// Run executes the search. It is safe to cancel via ctx: completed trials
// are already checkpointed and the partial frontier is returned.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("search: Trials must be > 0")
	}
	if cfg.Device == nil {
		return nil, fmt.Errorf("search: Device is required")
	}
	if cfg.Finalists > 0 && cfg.TrainSteps <= 0 {
		return nil, fmt.Errorf("search: Finalists %d needs TrainSteps > 0", cfg.Finalists)
	}
	space, err := SpaceForTask(cfg.Task)
	if err != nil {
		return nil, err
	}
	// Default unset memory budgets per field (a caller may set only a
	// latency budget and still expect the device's physical memory to
	// bound the rest); MaxLatencyS zero legitimately means unconstrained.
	devBudgets := DeviceBudgets(cfg.Device)
	if cfg.Budgets.SRAMBytes == 0 {
		cfg.Budgets.SRAMBytes = devBudgets.SRAMBytes
	}
	if cfg.Budgets.FlashBytes == 0 {
		cfg.Budgets.FlashBytes = devBudgets.FlashBytes
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
		if cfg.Workers > 8 {
			cfg.Workers = 8
		}
	}
	if cfg.MutateFrac == 0 {
		cfg.MutateFrac = 0.5
	}

	frontier := &Frontier{}
	done := make(map[int]bool)
	var resumed []TrialRecord
	// trainedResume maps trial index to a resumed stage-two record (which
	// may carry Err: a finalist whose training failed is not retried
	// forever, mirroring how failed proxy trials resume).
	trainedResume := map[int]TrialRecord{}
	if cfg.CheckpointPath != "" {
		recs, err := LoadTrialLog(cfg.CheckpointPath)
		if err != nil {
			return nil, err
		}
		for i := range recs {
			rec := recs[i]
			if rec.Trial < 0 || rec.Trial >= cfg.Trials {
				continue // stale log from a different -trials run; re-evaluate
			}
			if rec.Task != cfg.Task || rec.Device != cfg.Device.Name || rec.Seed != cfg.Seed {
				// Logged for another task/device (metrics don't transfer) or
				// another seed (a different -seed asks for a fresh search,
				// not a replay of the old one).
				continue
			}
			if rec.Stage == StageFinalist {
				// Stage-two records never replace the proxy trial line; they
				// are only reused when this run trains with the same budget.
				if _, have := trainedResume[rec.Trial]; !have &&
					cfg.Finalists > 0 && rec.TrainSteps == cfg.TrainSteps {
					trainedResume[rec.Trial] = rec
				}
				continue
			}
			if done[rec.Trial] {
				continue
			}
			// Budgets may be tighter (or looser) than the run that wrote
			// the log: feasibility is re-derived from the logged metrics,
			// never trusted, so a resumed frontier still honours THIS
			// run's command-line budgets.
			if rec.Err == "" {
				rec.Violations = cfg.Budgets.Check(rec.Metrics)
				rec.Feasible = len(rec.Violations) == 0
			}
			done[rec.Trial] = true
			resumed = append(resumed, rec)
			if rec.Feasible && rec.Spec != nil {
				frontier.Add(Point{Trial: rec.Trial, Source: rec.Source, Metrics: rec.Metrics, Record: &resumed[len(resumed)-1]})
			}
		}
		if len(resumed) > 0 {
			cfg.logf("resumed %d/%d trials from %s (frontier %d)",
				len(resumed), cfg.Trials, cfg.CheckpointPath, frontier.Size())
		}
	}

	var log *trialLog
	if cfg.CheckpointPath != "" {
		if log, err = openTrialLog(cfg.CheckpointPath); err != nil {
			return nil, err
		}
		defer log.close()
	}

	// DNAS warm start for trial 0: run the differentiable search briefly
	// and let its discretized architecture seed the frontier (and, via
	// mutation, the evolutionary stream).
	warmSpec := map[int]*arch.Spec{}
	if cfg.DNASSteps > 0 && !done[0] {
		if spec, err := dnasWarmStart(cfg, space); err != nil {
			cfg.logf("dnas warm start failed (%v); trial 0 falls back to random", err)
		} else {
			warmSpec[0] = spec
			cfg.logf("dnas warm start: %s", spec)
		}
	}

	var (
		mu        sync.Mutex
		newRecs   []TrialRecord
		logErr    error
		wg        sync.WaitGroup
		trialCh   = make(chan int)
		evaluated int
	)
	worker := func() {
		defer wg.Done()
		for trial := range trialCh {
			rec := cfg.runTrial(trial, space, frontier, warmSpec[trial])
			if log != nil {
				if err := log.append(&rec); err != nil {
					mu.Lock()
					if logErr == nil {
						logErr = err
					}
					mu.Unlock()
				}
			}
			mu.Lock()
			newRecs = append(newRecs, rec)
			evaluated++
			if rec.Feasible && rec.Spec != nil {
				frontier.Add(Point{Trial: rec.Trial, Source: rec.Source, Metrics: rec.Metrics, Record: &newRecs[len(newRecs)-1]})
			}
			n := evaluated
			mu.Unlock()
			if n%16 == 0 {
				cfg.logf("%d/%d trials evaluated, frontier %d", n+len(resumed), cfg.Trials, frontier.Size())
			}
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go worker()
	}
dispatch:
	for trial := 0; trial < cfg.Trials; trial++ {
		if done[trial] {
			continue
		}
		select {
		case trialCh <- trial:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(trialCh)
	wg.Wait()
	if logErr != nil {
		return nil, fmt.Errorf("search: checkpoint write: %w", logErr)
	}

	// Frontier points added from newRecs hold pointers into a slice that
	// may have been reallocated by later appends; rebuild from the final
	// slices so Record pointers are stable.
	all := append(append([]TrialRecord(nil), resumed...), newRecs...)
	sortRecords(all)
	rebuild := func() *Frontier {
		f := &Frontier{}
		for i := range all {
			if all[i].Feasible && all[i].Spec != nil {
				f.Add(Point{Trial: all[i].Trial, Source: all[i].Source, Metrics: all[i].Metrics, Record: &all[i]})
			}
		}
		return f
	}
	final := rebuild()
	res := &Result{
		Frontier: final, Task: cfg.Task, Device: cfg.Device,
		Trials: all, Evaluated: evaluated, Resumed: len(resumed),
	}

	// Stage two: accuracy-in-the-loop re-rank of the frontier finalists.
	// Selection uses the proxy-only frontier (identical whether or not a
	// previous run already trained some finalists), so an interrupted run
	// resumes onto the same finalist set; trained metrics are applied
	// afterwards and the frontier is rebuilt under the finalist dominance
	// ordering.
	if cfg.Finalists > 0 && final.Size() > 0 && ctx.Err() == nil {
		if err := cfg.runFinalists(ctx, res, log, trainedResume); err != nil {
			return nil, err
		}
		final = rebuild()
		final.PruneTrainedDominated()
		res.Frontier = final
	}
	cfg.logf("search done: %d trials (%d resumed), frontier %d, %d finalists trained",
		len(all), len(resumed), final.Size(), len(res.Finalists))
	return res, ctx.Err()
}

// finalistSeed derives the stage-two training seed for a trial: a pure
// function of (Seed, trial) — so re-ranks reproduce exactly — but offset
// from runTrial's candidate-generation stream so training randomness never
// correlates with the candidate the trial generated.
func finalistSeed(seed int64, trial int) int64 {
	return seed*1_000_003 + int64(trial) + 977_953_111
}

// runFinalists trains the selected finalists in parallel (per-trial
// seeds), appends one StageFinalist JSONL record per newly-trained
// finalist, and writes trained accuracies into res.Trials' metrics.
func (c *Config) runFinalists(ctx context.Context, res *Result, log *trialLog, trainedResume map[int]TrialRecord) error {
	finalists := SpreadPoints(res.Frontier.Points(), c.Finalists)
	trainer, err := NewTrainer(c.Task, c.Seed)
	if err != nil {
		return err
	}
	byTrial := map[int]*TrialRecord{}
	for i := range res.Trials {
		byTrial[res.Trials[i].Trial] = &res.Trials[i]
	}
	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		logErr  error
		trialCh = make(chan int)
		// trainedOK marks finalists whose training completed (this run or
		// resumed) — the finalist-record line with an empty Err is the
		// marker, not the accuracy value, so an honest 0% score still
		// counts as trained and is never silently dropped or retrained.
		trainedOK = map[int]bool{}
	)
	workers := c.Workers
	if workers > len(finalists) {
		workers = len(finalists)
	}
	c.logf("stage two: training %d finalists for %d steps each (%d workers)",
		len(finalists), c.TrainSteps, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := range trialCh {
				rec := byTrial[trial]
				acc, terr := trainer.Train(rec.Spec, c.TrainSteps, finalistSeed(c.Seed, trial))
				frec := *rec
				frec.Stage = StageFinalist
				frec.TrainSteps = c.TrainSteps
				if terr != nil {
					frec.Err = terr.Error()
					c.logf("finalist trial-%03d failed to train: %v", trial, terr)
				} else {
					frec.Metrics.TrainedAccuracy = acc
					c.logf("finalist trial-%03d: trained %.1f%% (proxy %.1f%%)",
						trial, acc, rec.Metrics.AccuracyProxy)
				}
				if log != nil {
					if err := log.append(&frec); err != nil {
						mu.Lock()
						if logErr == nil {
							logErr = err
						}
						mu.Unlock()
					}
				}
				if terr == nil {
					mu.Lock()
					rec.Metrics.TrainedAccuracy = acc
					trainedOK[trial] = true
					res.Trained++
					mu.Unlock()
				}
			}
		}()
	}
dispatch:
	for _, p := range finalists {
		rec := byTrial[p.Trial]
		if rec == nil || rec.Spec == nil {
			continue
		}
		if cached, ok := trainedResume[p.Trial]; ok {
			// Already trained (or failed) under this budget in a previous
			// run; reuse instead of paying for the training again. An empty
			// Err marks a completed training whatever the score was. (The
			// lock: workers for already-dispatched trials are concurrently
			// writing trainedOK.)
			if cached.Err == "" {
				mu.Lock()
				rec.Metrics.TrainedAccuracy = cached.Metrics.TrainedAccuracy
				trainedOK[p.Trial] = true
				mu.Unlock()
			}
			continue
		}
		select {
		case trialCh <- p.Trial:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(trialCh)
	wg.Wait()
	if logErr != nil {
		return fmt.Errorf("search: checkpoint write: %w", logErr)
	}
	for _, p := range finalists {
		rec := byTrial[p.Trial]
		if rec != nil && trainedOK[p.Trial] {
			res.Finalists = append(res.Finalists, Point{
				Trial: rec.Trial, Source: rec.Source, Metrics: rec.Metrics, Record: rec,
			})
		}
	}
	sortFinalists(res.Finalists)
	return nil
}

// sortFinalists orders the stage-two result best-first: trained accuracy
// down, then latency up, then trial index for stability.
func sortFinalists(pts []Point) {
	sort.Slice(pts, func(i, j int) bool {
		a, b := pts[i].Metrics, pts[j].Metrics
		if a.TrainedAccuracy != b.TrainedAccuracy {
			return a.TrainedAccuracy > b.TrainedAccuracy
		}
		if a.LatencyS != b.LatencyS {
			return a.LatencyS < b.LatencyS
		}
		return pts[i].Trial < pts[j].Trial
	})
}

// runTrial generates and evaluates one candidate. Generation is seeded by
// (Seed, trial) so a resumed run regenerates the same random candidates
// for the same indices. The generator decisions are drawn from the rng in
// a fixed order BEFORE the shared frontier is consulted: the random
// candidate stream must be a pure function of (Seed, trial), not of how
// full the frontier happened to be when the scheduler got to this trial.
func (c *Config) runTrial(trial int, space *Space, frontier *Frontier, warm *arch.Spec) TrialRecord {
	rng := rand.New(rand.NewSource(c.Seed*1_000_003 + int64(trial)))
	mutateRoll := rng.Float64()
	parentPick := rng.Int63()
	name := fmt.Sprintf("trial-%03d", trial)
	rec := TrialRecord{Trial: trial, Source: "random", Task: c.Task, Device: c.Device.Name, Seed: c.Seed}
	parent, hasParent := frontier.Pick(parentPick)
	if warm != nil {
		rec.Source = "dnas"
		rec.Spec = warm
	} else if hasParent && c.MutateFrac > 0 && mutateRoll < c.MutateFrac {
		rec.Source = "mutate"
		rec.Spec = space.Mutate(name, parent.Record.Spec, rng)
	} else {
		rec.Spec = space.Random(name, rng)
	}
	met, err := Evaluate(rec.Spec, c.Device)
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	rec.Metrics = met
	rec.Violations = c.Budgets.Check(met)
	rec.Feasible = len(rec.Violations) == 0
	return rec
}

// dnasWarmStart runs the differentiable search (internal/core) on the
// task's synthetic dataset under byte-denominated constraints derived
// from the budgets, returning the discretized architecture.
func dnasWarmStart(cfg Config, space *Space) (*arch.Spec, error) {
	var (
		snCfg core.SupernetConfig
		ds    *datasets.Dataset
	)
	const maxC, blocks = 64, 4
	switch cfg.Task {
	case "kws":
		snCfg = core.KWSSupernetConfig(space.InputH, space.InputW, space.NumClasses, maxC, blocks)
		ds = datasets.SynthKWS(datasets.KWSOptions{PerClass: 8, Seed: cfg.Seed})
	case "ad":
		snCfg = core.ADSupernetConfig(maxC, blocks)
		ad := datasets.SynthAD(datasets.ADOptions{ClipsPerMachine: 8, Seed: cfg.Seed})
		ds = ad.ClassifierDataset()
	default:
		return nil, fmt.Errorf("search: no DNAS config for task %q", cfg.Task)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	trainDS, valDS := ds.Split(rng, 0.3)
	// Byte-denominated constraints from the deployment budgets, minus the
	// runtime overheads the paper subtracts (§5.1); the headroom factors
	// leave room for persistent buffers and quant metadata, which the
	// relaxed model cannot see but the planner will charge. If a budget
	// sits below the fixed runtime overhead, no model can ever fit — fail
	// loudly instead of letting the zero-budget guard in
	// core.Constraints.Penalty run the warm start unconstrained.
	cons := core.Constraints{
		MaxWeightBytes: float64(cfg.Budgets.FlashBytes-tflm.RuntimeCodeFlashBytes-tflm.OtherFlashBytes) * 0.8,
		MaxArenaBytes:  float64(cfg.Budgets.SRAMBytes-tflm.InterpreterSRAMBytes-tflm.OtherSRAMBytes) * 0.8,
		MaxOps:         40e6,
	}
	if cons.MaxWeightBytes <= 0 || cons.MaxArenaBytes <= 0 {
		return nil, fmt.Errorf("budgets (%d KB SRAM, %d KB flash) are below the TFLM runtime overheads",
			cfg.Budgets.SRAMBytes/1024, cfg.Budgets.FlashBytes/1024)
	}
	sn, err := core.NewSupernet(rng, snCfg)
	if err != nil {
		return nil, err
	}
	trainRng := rand.New(rand.NewSource(cfg.Seed + 1))
	valRng := rand.New(rand.NewSource(cfg.Seed + 2))
	res, err := core.RunSearch(sn,
		func(int) core.Batch {
			x, labels := trainDS.RandomBatch(trainRng, 8)
			return core.Batch{X: x, Labels: labels}
		},
		func(int) core.Batch {
			x, labels := valDS.RandomBatch(valRng, 8)
			return core.Batch{X: x, Labels: labels}
		},
		cons,
		core.SearchConfig{
			Steps: cfg.DNASSteps, ArchStartStep: cfg.DNASSteps / 5,
			WeightLR: nn.CosineSchedule{Start: 0.05, End: 0.002, Steps: cfg.DNASSteps},
			Seed:     cfg.Seed,
		})
	if err != nil {
		return nil, err
	}
	spec := res.Spec
	spec.Name = "trial-000"
	return spec, nil
}

func sortRecords(recs []TrialRecord) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Trial < recs[j].Trial })
}
