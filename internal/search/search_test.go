package search

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"micronets/internal/graph"
	"micronets/internal/mcu"
	"micronets/internal/tflm"
	"micronets/internal/zoo"
)

func TestSpaceRandomAndMutateValid(t *testing.T) {
	for _, task := range []string{"kws", "ad"} {
		t.Run(task, func(t *testing.T) {
			space, err := SpaceForTask(task)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			spec := space.Random("t", rng)
			for trial := 0; trial < 200; trial++ {
				if _, err := spec.Analyze(); err != nil {
					t.Fatalf("trial %d: invalid spec %s: %v", trial, spec, err)
				}
				nDS := 0
				for _, b := range spec.Blocks {
					if b.OutC != 0 && b.OutC != space.NumClasses && b.OutC%4 != 0 {
						t.Fatalf("trial %d: width %d not a multiple of 4 (%s)", trial, b.OutC, spec)
					}
					if b.Kind == spec.Blocks[1].Kind && b.OutC > space.MaxC {
						t.Fatalf("trial %d: width %d above MaxC", trial, b.OutC)
					}
					if b.Kind.String() == "DSBlock" {
						nDS++
					}
				}
				if nDS < space.MinBlocks || nDS > space.MaxBlocks {
					t.Fatalf("trial %d: %d DS blocks outside [%d,%d]", trial, nDS, space.MinBlocks, space.MaxBlocks)
				}
				// Alternate random sampling and mutation chains.
				if trial%2 == 0 {
					spec = space.Mutate("t", spec, rng)
				} else {
					spec = space.Random("t", rng)
				}
			}
		})
	}
	if _, err := SpaceForTask("nope"); err == nil {
		t.Fatal("unknown task must error")
	}
}

func TestSpaceDeterministicPerSeed(t *testing.T) {
	space, _ := SpaceForTask("kws")
	a := space.Random("t", rand.New(rand.NewSource(7)))
	b := space.Random("t", rand.New(rand.NewSource(7)))
	if a.String() != b.String() {
		t.Fatalf("same seed, different candidates:\n%s\n%s", a, b)
	}
}

func TestFrontierDominance(t *testing.T) {
	f := &Frontier{}
	base := Metrics{AccuracyProxy: 90, LatencyS: 0.1, TotalSRAMBytes: 1000, TotalFlashBytes: 1000}
	if !f.Add(Point{Trial: 0, Metrics: base}) {
		t.Fatal("first point must join")
	}
	// Dominated on every axis: rejected.
	worse := base
	worse.AccuracyProxy, worse.LatencyS = 80, 0.2
	if f.Add(Point{Trial: 1, Metrics: worse}) {
		t.Fatal("dominated point must not join")
	}
	// Trades accuracy for latency: joins, evicts nothing.
	trade := Metrics{AccuracyProxy: 85, LatencyS: 0.05, TotalSRAMBytes: 1000, TotalFlashBytes: 1000}
	if !f.Add(Point{Trial: 2, Metrics: trade}) {
		t.Fatal("trade-off point must join")
	}
	if f.Size() != 2 {
		t.Fatalf("frontier size %d, want 2", f.Size())
	}
	// An exact metrics tie (a re-discovered duplicate architecture) must
	// not accumulate.
	if f.Add(Point{Trial: 5, Metrics: trade}) {
		t.Fatal("exact-duplicate metrics must not join the frontier")
	}
	// Dominates both: joins and evicts both.
	best := Metrics{AccuracyProxy: 95, LatencyS: 0.01, TotalSRAMBytes: 500, TotalFlashBytes: 500}
	if !f.Add(Point{Trial: 3, Metrics: best}) {
		t.Fatal("dominating point must join")
	}
	if f.Size() != 1 || f.Points()[0].Trial != 3 {
		t.Fatalf("dominated members not evicted: %+v", f.Points())
	}
}

// TestHarnessBudgetsEnforced is the acceptance gate: a 64-trial run on
// the small device must produce a non-empty frontier whose every member,
// re-lowered and re-planned from its logged spec, fits the device budgets
// by the planner's own byte accounting — arena and weight bytes included.
func TestHarnessBudgetsEnforced(t *testing.T) {
	dev := mcu.F446RE
	budgets := DeviceBudgets(dev)
	res, err := Run(context.Background(), Config{
		Task: "kws", Device: dev, Budgets: budgets,
		Trials: 64, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 64 {
		t.Fatalf("evaluated %d trials, want 64", len(res.Trials))
	}
	pts := res.Frontier.Points()
	if len(pts) == 0 {
		t.Fatal("empty Pareto frontier")
	}
	for _, p := range pts {
		spec := p.Record.Spec
		m, err := graph.FromSpec(spec, rand.New(rand.NewSource(evalSeed)), graph.LowerOptions{})
		if err != nil {
			t.Fatalf("trial %d: re-lower: %v", p.Trial, err)
		}
		plan, err := tflm.PlanMemory(m)
		if err != nil {
			t.Fatalf("trial %d: re-plan: %v", p.Trial, err)
		}
		report, err := tflm.Report(m, plan)
		if err != nil {
			t.Fatal(err)
		}
		// Planner-reported arena and weight bytes must themselves be within
		// the device budgets, not just the aggregate totals.
		if plan.ArenaBytes > budgets.SRAMBytes {
			t.Errorf("trial %d: arena %d exceeds SRAM budget %d", p.Trial, plan.ArenaBytes, budgets.SRAMBytes)
		}
		if m.WeightBytes() > budgets.FlashBytes {
			t.Errorf("trial %d: weight bytes %d exceed flash budget %d", p.Trial, m.WeightBytes(), budgets.FlashBytes)
		}
		if report.TotalSRAM() > budgets.SRAMBytes {
			t.Errorf("trial %d: total SRAM %d exceeds budget %d", p.Trial, report.TotalSRAM(), budgets.SRAMBytes)
		}
		if report.TotalFlash() > budgets.FlashBytes {
			t.Errorf("trial %d: total flash %d exceeds budget %d", p.Trial, report.TotalFlash(), budgets.FlashBytes)
		}
		// The logged metrics must be the re-derived planner numbers, not a
		// drifted copy.
		if p.Metrics.ArenaBytes != plan.ArenaBytes || p.Metrics.WeightBytes != m.WeightBytes() {
			t.Errorf("trial %d: logged metrics (arena %d, weights %d) disagree with planner (%d, %d)",
				p.Trial, p.Metrics.ArenaBytes, p.Metrics.WeightBytes, plan.ArenaBytes, m.WeightBytes())
		}
	}
}

func TestHarnessResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "trials.jsonl")
	dev := mcu.F446RE
	first, err := Run(context.Background(), Config{
		Task: "kws", Device: dev, Trials: 12, Seed: 5, CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.Evaluated != 12 || first.Resumed != 0 {
		t.Fatalf("first run: evaluated %d resumed %d", first.Evaluated, first.Resumed)
	}
	second, err := Run(context.Background(), Config{
		Task: "kws", Device: dev, Trials: 24, Seed: 5, CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.Resumed != 12 || second.Evaluated != 12 {
		t.Fatalf("resume run: evaluated %d resumed %d, want 12/12", second.Evaluated, second.Resumed)
	}
	seen := map[int]bool{}
	for _, rec := range second.Trials {
		if seen[rec.Trial] {
			t.Fatalf("trial %d evaluated twice", rec.Trial)
		}
		seen[rec.Trial] = true
	}
	for i := 0; i < 24; i++ {
		if !seen[i] {
			t.Fatalf("trial %d missing after resume", i)
		}
	}
	// The resumed run must regenerate identical random candidates for the
	// indices the first run covered (same per-trial seeds): the candidate
	// stream is a pure function of (Seed, trial), independent of frontier
	// fill timing — check via a third, checkpoint-free run.
	third, err := Run(context.Background(), Config{Task: "kws", Device: dev, Trials: 12, Seed: 5, MutateFrac: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range third.Trials {
		if rec.Source != "random" {
			continue
		}
		if first.Trials[i].Source == "random" && first.Trials[i].Spec.String() != rec.Spec.String() {
			t.Fatalf("trial %d random candidate not deterministic", i)
		}
	}
}

// TestResumeRevalidatesBudgets pins the resume contract: logged
// feasibility is never trusted — it is re-derived against the resuming
// run's budgets, and records measured on a different device or task are
// discarded (their metrics don't transfer).
func TestResumeRevalidatesBudgets(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "trials.jsonl")
	dev := mcu.F446RE
	first, err := Run(context.Background(), Config{
		Task: "kws", Device: dev, Trials: 16, Seed: 8, CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.Frontier.Size() == 0 {
		t.Fatal("need a non-empty frontier to make the test meaningful")
	}
	// Resume under a far tighter SRAM budget: every frontier member must
	// satisfy the NEW budget even though the log recorded it as feasible
	// under the old one.
	tight := Budgets{SRAMBytes: 24 * 1024, FlashBytes: dev.FlashBytes()}
	second, err := Run(context.Background(), Config{
		Task: "kws", Device: dev, Budgets: tight, Trials: 16, Seed: 8, CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.Resumed != 16 || second.Evaluated != 0 {
		t.Fatalf("resumed %d evaluated %d, want 16/0", second.Resumed, second.Evaluated)
	}
	for _, p := range second.Frontier.Points() {
		if p.Metrics.TotalSRAMBytes > tight.SRAMBytes {
			t.Fatalf("trial %d on frontier with SRAM %d over the resumed budget %d",
				p.Trial, p.Metrics.TotalSRAMBytes, tight.SRAMBytes)
		}
	}
	// Resume against a different device: the logged metrics were measured
	// elsewhere, so nothing may be reused.
	other, err := Run(context.Background(), Config{
		Task: "kws", Device: mcu.F767ZI, Trials: 16, Seed: 8, CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if other.Resumed != 0 || other.Evaluated != 16 {
		t.Fatalf("device-mismatched log reused: resumed %d evaluated %d", other.Resumed, other.Evaluated)
	}
}

func TestHarnessDNASWarmStart(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Task: "kws", Device: mcu.F746ZG, Trials: 4, Seed: 3, DNASSteps: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials[0].Source != "dnas" {
		t.Fatalf("trial 0 source %q, want dnas", res.Trials[0].Source)
	}
	if res.Trials[0].Err != "" {
		t.Fatalf("dnas candidate failed to evaluate: %s", res.Trials[0].Err)
	}
}

func TestHarnessMutationAppears(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Task: "ad", Device: mcu.F767ZI, Trials: 40, Seed: 9, Workers: 2, MutateFrac: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	mutated := 0
	for _, rec := range res.Trials {
		if rec.Source == "mutate" {
			mutated++
		}
	}
	if mutated == 0 {
		t.Fatal("no evolutionary trials in a 40-trial run with MutateFrac 0.9")
	}
}

// TestResumeAfterTornWriteRepairsLog simulates a crash mid-append: the
// torn fragment must be truncated away on reopen, so the resumed run's
// appends produce a log that parses cleanly forever after.
func TestResumeAfterTornWriteRepairsLog(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "trials.jsonl")
	dev := mcu.F446RE
	if _, err := Run(context.Background(), Config{
		Task: "kws", Device: dev, Trials: 6, Seed: 4, CheckpointPath: ckpt,
	}); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(ckpt, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"trial":99,"sour`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	second, err := Run(context.Background(), Config{
		Task: "kws", Device: dev, Trials: 12, Seed: 4, CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.Resumed != 6 || second.Evaluated != 6 {
		t.Fatalf("resumed %d evaluated %d, want 6/6", second.Resumed, second.Evaluated)
	}
	// The log must now be fully parseable — the torn fragment must not
	// have been welded onto the resumed run's first append.
	recs, err := LoadTrialLog(ckpt)
	if err != nil {
		t.Fatalf("log corrupt after torn-write resume: %v", err)
	}
	if len(recs) != 12 {
		t.Fatalf("log has %d records, want 12", len(recs))
	}
}

// TestResumeIgnoresOtherSeed pins that -seed means a fresh search: a log
// written under one seed must not be replayed for another.
func TestResumeIgnoresOtherSeed(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "trials.jsonl")
	dev := mcu.F446RE
	if _, err := Run(context.Background(), Config{
		Task: "kws", Device: dev, Trials: 6, Seed: 1, CheckpointPath: ckpt,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Config{
		Task: "kws", Device: dev, Trials: 6, Seed: 2, CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != 0 || res.Evaluated != 6 {
		t.Fatalf("seed-mismatched log reused: resumed %d evaluated %d", res.Resumed, res.Evaluated)
	}
}

func TestReadTrialLogTornLine(t *testing.T) {
	good := `{"trial":0,"source":"random","feasible":false}` + "\n"
	torn := good + `{"trial":1,"sour`
	recs, err := ReadTrialLog(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn last line must be tolerated: %v", err)
	}
	if len(recs) != 1 || recs[0].Trial != 0 {
		t.Fatalf("got %+v, want the one intact record", recs)
	}
	corrupt := `{"trial":0}` + "\n" + `garbage` + "\n" + `{"trial":2}` + "\n"
	if _, err := ReadTrialLog(strings.NewReader(corrupt)); err == nil {
		t.Fatal("mid-file corruption must error")
	}
}

func TestExportFrontierRegistersInZoo(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Task: "kws", Device: mcu.F446RE, Trials: 8, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Frontier.Points()
	if len(pts) == 0 {
		t.Fatal("empty frontier")
	}
	file, names, err := ExportFrontier(pts, "NAS-test-kws-S", "search_test")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, n := range names {
			zoo.Unregister(n)
		}
	})
	if len(names) != len(pts) || len(file.Specs) != len(pts) {
		t.Fatalf("exported %d specs for %d points", len(file.Specs), len(pts))
	}
	for _, n := range names {
		e, err := zoo.Get(n)
		if err != nil {
			t.Fatalf("exported model %s not in zoo: %v", n, err)
		}
		if e.Notes == "" || !strings.Contains(e.Notes, "frontier") {
			t.Fatalf("exported model %s lacks a frontier note: %q", n, e.Notes)
		}
	}
	// Exported names must be servable (the serving registry filters on
	// ServableNames).
	servable := map[string]bool{}
	for _, n := range zoo.ServableNames() {
		servable[n] = true
	}
	for _, n := range names {
		if !servable[n] {
			t.Fatalf("exported model %s not servable", n)
		}
	}
}

func TestExportCascade(t *testing.T) {
	// A hand-made latency-sorted frontier: 5 points, 1..5 ms.
	var pts []Point
	for i := 0; i < 5; i++ {
		pts = append(pts, Point{Trial: i, Metrics: Metrics{LatencyS: float64(i+1) * 1e-3}})
	}
	spec, err := ExportCascade(pts, "NAS-kws-S", 0.8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "NAS-kws-S-cascade" {
		t.Fatalf("cascade name %q", spec.Name)
	}
	root := spec.Root
	if root.Kind != "cascade" || root.Threshold != 0.8 {
		t.Fatalf("root = %+v", root)
	}
	if len(root.Children) != 3 {
		t.Fatalf("stages = %d, want 3", len(root.Children))
	}
	// Fast → slow: endpoints included, trial indices map through ExportName.
	want := []string{"NAS-kws-S-000", "NAS-kws-S-002", "NAS-kws-S-004"}
	for i, c := range root.Children {
		if c.Model != want[i] {
			t.Fatalf("stage %d = %q, want %q", i, c.Model, want[i])
		}
		if c.Kind != "model" {
			t.Fatalf("stage %d kind %q", i, c.Kind)
		}
	}

	// Degenerate inputs.
	if _, err := ExportCascade(nil, "p", 0.5, 3); err == nil {
		t.Fatal("empty frontier must error")
	}
	if _, err := ExportCascade(pts[:1], "p", 0.5, 3); err == nil {
		t.Fatal("single-point frontier must error (a cascade needs 2 stages)")
	}
	// stages below 2 is clamped up.
	spec, err = ExportCascade(pts, "p", 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Root.Children) != 2 {
		t.Fatalf("clamped stages = %d, want 2", len(spec.Root.Children))
	}
}
