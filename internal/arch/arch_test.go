package arch

import (
	"math/rand"
	"strings"
	"testing"

	ag "micronets/internal/autograd"
	"micronets/internal/tensor"
)

func kwsM() *Spec {
	return &Spec{
		Name: "kws-m", Task: "kws",
		InputH: 49, InputW: 10, InputC: 1, NumClasses: 12,
		Blocks: []Block{
			{Kind: Conv, KH: 10, KW: 4, OutC: 140, Stride: 1},
			{Kind: DSBlock, KH: 3, KW: 3, OutC: 140, Stride: 2},
			{Kind: DSBlock, KH: 3, KW: 3, OutC: 140, Stride: 1},
			{Kind: DSBlock, KH: 3, KW: 3, OutC: 140, Stride: 1},
			{Kind: DSBlock, KH: 3, KW: 3, OutC: 112, Stride: 1},
			{Kind: DSBlock, KH: 3, KW: 3, OutC: 196, Stride: 1},
			{Kind: AvgPool, KH: 25, KW: 5, Stride: 1},
			{Kind: Dense, OutC: 12},
		},
	}
}

// TestAnalyzeMatchesPaperOps validates the op-counting convention against
// Table 4: MicroNet-KWS-M is reported at 30.6 Mops.
func TestAnalyzeMatchesPaperOps(t *testing.T) {
	a, err := kwsM().Analyze()
	if err != nil {
		t.Fatal(err)
	}
	mops := float64(a.TotalOps()) / 1e6
	if mops < 29 || mops > 33 {
		t.Fatalf("KWS-M ops = %.1f Mops, paper says 30.6", mops)
	}
	// And the parameter count should serialize near the paper's 163 KB
	// model (weights alone ~110 KB).
	if a.TotalParams < 100_000 || a.TotalParams > 130_000 {
		t.Fatalf("KWS-M params = %d", a.TotalParams)
	}
}

func TestAnalyzeShapes(t *testing.T) {
	a, err := kwsM().Analyze()
	if err != nil {
		t.Fatal(err)
	}
	first := a.Layers[0]
	if first.OutH != 49 || first.OutW != 10 || first.OutC != 140 {
		t.Fatalf("first conv out %dx%dx%d", first.OutH, first.OutW, first.OutC)
	}
	// After the stride-2 block: 25x5.
	dw := a.Layers[1]
	if dw.OutH != 25 || dw.OutW != 5 {
		t.Fatalf("stride-2 dw out %dx%d", dw.OutH, dw.OutW)
	}
	last := a.Layers[len(a.Layers)-1]
	if last.Kind != "dense" || last.OutC != 12 {
		t.Fatalf("last layer %+v", last)
	}
}

func TestAnalyzeIBNResidualAdd(t *testing.T) {
	s := &Spec{
		Name: "ibn", Task: "vww", InputH: 8, InputW: 8, InputC: 1, NumClasses: 2,
		Blocks: []Block{
			{Kind: Conv, KH: 3, KW: 3, OutC: 8, Stride: 1},
			{Kind: IBN, Expand: 16, OutC: 8, Stride: 1},
			{Kind: IBN, Expand: 16, OutC: 12, Stride: 2},
		},
	}
	a, err := s.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	adds := 0
	for _, l := range a.Layers {
		if l.Kind == "add" {
			adds++
		}
	}
	if adds != 1 {
		t.Fatalf("adds = %d, want 1 (only the stride-1 same-width IBN)", adds)
	}
}

func TestAnalyzeRejectsBadSpecs(t *testing.T) {
	bad := &Spec{Name: "bad", InputH: 0, InputW: 4, InputC: 1}
	if _, err := bad.Analyze(); err == nil {
		t.Fatal("zero input dim must error")
	}
	convAfterDense := &Spec{
		Name: "bad2", InputH: 4, InputW: 4, InputC: 1,
		Blocks: []Block{
			{Kind: Dense, OutC: 4},
			{Kind: Conv, KH: 3, KW: 3, OutC: 4},
		},
	}
	if _, err := convAfterDense.Analyze(); err == nil {
		t.Fatal("conv after flatten must error")
	}
	noExpand := &Spec{
		Name: "bad3", InputH: 4, InputW: 4, InputC: 1,
		Blocks: []Block{{Kind: IBN, OutC: 4}},
	}
	if _, err := noExpand.Analyze(); err == nil {
		t.Fatal("IBN without Expand must error")
	}
}

func TestAnalyzeTransposedConvNotDeployable(t *testing.T) {
	s := &Spec{
		Name: "tconv", InputH: 8, InputW: 8, InputC: 1,
		Blocks: []Block{{Kind: TransposedConv, KH: 3, KW: 3, OutC: 4, Stride: 2}},
	}
	a, err := s.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if a.Deployable {
		t.Fatal("transposed conv specs must be flagged non-deployable")
	}
}

func TestWorkingSetIsMax(t *testing.T) {
	a, err := kwsM().Analyze()
	if err != nil {
		t.Fatal(err)
	}
	var maxWS int64
	for _, l := range a.Layers {
		if ws := l.InBytes() + l.OutBytes(); ws > maxWS {
			maxWS = ws
		}
	}
	if a.PeakWorkingSetBytes != maxWS {
		t.Fatalf("peak %d != max over layers %d", a.PeakWorkingSetBytes, maxWS)
	}
}

func TestBuildForwardMatchesAnalyzeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	spec := &Spec{
		Name: "small", Task: "kws",
		InputH: 16, InputW: 8, InputC: 1, NumClasses: 4,
		Blocks: []Block{
			{Kind: Conv, KH: 3, KW: 3, OutC: 8, Stride: 1},
			{Kind: DSBlock, KH: 3, KW: 3, OutC: 12, Stride: 2},
			{Kind: IBN, Expand: 24, OutC: 12, Stride: 1},
			{Kind: MaxPool, KH: 2, KW: 2, Stride: 2},
			{Kind: GlobalPool},
			{Kind: Dropout, Rate: 0.1},
			{Kind: Dense, OutC: 4},
		},
	}
	model, err := Build(rng, spec, BuildOptions{DropoutRng: rng})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 1, 2, 16, 8, 1)
	y := model.Forward(ag.Constant(x), false)
	if y.Value.Shape[0] != 2 || y.Value.Shape[1] != 4 {
		t.Fatalf("output shape %v", y.Value.Shape)
	}
}

func TestBuildQATWiresQuantizers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	spec := &Spec{
		Name: "qat", Task: "kws", InputH: 8, InputW: 8, InputC: 1, NumClasses: 2,
		Blocks: []Block{
			{Kind: Conv, KH: 3, KW: 3, OutC: 4, Stride: 1},
			{Kind: GlobalPool},
			{Kind: Dense, OutC: 2},
		},
	}
	model, err := Build(rng, spec, BuildOptions{QuantWeightBits: 8, QuantActBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 1, 1, 8, 8, 1)
	model.Forward(ag.Constant(x), true) // trains observers without error
}

func TestBuildRejectsTransposedConv(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	spec := &Spec{
		Name: "tc", InputH: 8, InputW: 8, InputC: 1,
		Blocks: []Block{{Kind: TransposedConv, KH: 3, KW: 3, OutC: 4, Stride: 2}},
	}
	if _, err := Build(rng, spec, BuildOptions{}); err == nil {
		t.Fatal("builder must reject transposed conv")
	}
}

func TestSpecStringTable5Style(t *testing.T) {
	s := kwsM().String()
	for _, frag := range []string{"Conv2D(h:10,w:4,c:140,s:1)", "AvgPool(h:25,w:5)", "FC(c:12)"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("spec string missing %q: %s", frag, s)
		}
	}
}

func TestOutputDim(t *testing.T) {
	d, err := kwsM().OutputDim()
	if err != nil || d != 12 {
		t.Fatalf("OutputDim = %d, err %v", d, err)
	}
}
