package arch

import (
	"fmt"
	"math/rand"

	"micronets/internal/nn"
)

// BuildOptions configures trainable-model construction from a Spec.
type BuildOptions struct {
	// QuantWeightBits/QuantActBits enable quantization-aware training when
	// non-zero (8 for the paper's standard models, 4 for the sub-byte
	// study).
	QuantWeightBits int
	QuantActBits    int
	// DropoutRng supplies randomness for dropout layers (required if the
	// spec contains Dropout blocks and training is used).
	DropoutRng *rand.Rand
}

// Build constructs a trainable float model from the spec. The model mirrors
// the deployment lowering: Conv/DSBlock/IBN blocks get BatchNorm+ReLU (or
// ReLU6 for IBN) exactly where the int8 runtime folds them.
func Build(rng *rand.Rand, s *Spec, opts BuildOptions) (*nn.Sequential, error) {
	a, err := s.Analyze()
	if err != nil {
		return nil, err
	}
	if !a.Deployable {
		// Trainable but flagged; autoencoder decoders are trained in float.
		_ = a
	}
	model := nn.NewSequential()
	h, w, c := s.InputH, s.InputW, s.InputC
	newQuant := func() *nn.LayerQuant {
		if opts.QuantWeightBits == 0 && opts.QuantActBits == 0 {
			return nil
		}
		return nn.NewLayerQuant(opts.QuantWeightBits, opts.QuantActBits)
	}
	for i, b := range s.Blocks {
		stride := b.Stride
		if stride == 0 {
			stride = 1
		}
		name := fmt.Sprintf("b%d", i)
		switch b.Kind {
		case Conv:
			conv := nn.NewConv2D(rng, name+".conv", b.KH, b.KW, c, b.OutC, stride, nn.PadSame, false)
			conv.Quant = newQuant()
			model.Add(conv).
				Add(nn.NewBatchNorm(name+".bn", b.OutC)).
				Add(&nn.Activation{Kind: "relu"})
			h, w, c = sameOut(h, stride), sameOut(w, stride), b.OutC
		case DSBlock:
			dw := nn.NewDepthwiseConv2D(rng, name+".dw", b.KH, b.KW, c, stride, nn.PadSame, false)
			dw.Quant = newQuant()
			pw := nn.NewConv2D(rng, name+".pw", 1, 1, c, b.OutC, 1, nn.PadSame, false)
			pw.Quant = newQuant()
			model.Add(dw).
				Add(nn.NewBatchNorm(name+".dwbn", c)).
				Add(&nn.Activation{Kind: "relu"}).
				Add(pw).
				Add(nn.NewBatchNorm(name+".pwbn", b.OutC)).
				Add(&nn.Activation{Kind: "relu"})
			h, w, c = sameOut(h, stride), sameOut(w, stride), b.OutC
		case IBN:
			kh, kw := b.KH, b.KW
			if kh == 0 {
				kh, kw = 3, 3
			}
			exp := nn.NewConv2D(rng, name+".exp", 1, 1, c, b.Expand, 1, nn.PadSame, false)
			exp.Quant = newQuant()
			dw := nn.NewDepthwiseConv2D(rng, name+".dw", kh, kw, b.Expand, stride, nn.PadSame, false)
			dw.Quant = newQuant()
			proj := nn.NewConv2D(rng, name+".proj", 1, 1, b.Expand, b.OutC, 1, nn.PadSame, false)
			proj.Quant = newQuant()
			body := nn.NewSequential(
				exp, nn.NewBatchNorm(name+".expbn", b.Expand), &nn.Activation{Kind: "relu6"},
				dw, nn.NewBatchNorm(name+".dwbn", b.Expand), &nn.Activation{Kind: "relu6"},
				proj, nn.NewBatchNorm(name+".projbn", b.OutC),
			)
			if stride == 1 && b.OutC == c {
				model.Add(&nn.Residual{Body: body})
			} else {
				model.Add(body)
			}
			h, w, c = sameOut(h, stride), sameOut(w, stride), b.OutC
		case AvgPool:
			model.Add(&nn.AvgPool{KH: b.KH, KW: b.KW, Stride: stride, Pad: nn.PadValid})
			h, w = validOut(h, b.KH, stride), validOut(w, b.KW, stride)
		case MaxPool:
			model.Add(&nn.MaxPoolLayer{KH: b.KH, KW: b.KW, Stride: stride, Pad: nn.PadValid})
			h, w = validOut(h, b.KH, stride), validOut(w, b.KW, stride)
		case GlobalPool:
			model.Add(&nn.GlobalAvgPool{})
			h, w = 1, 1
		case Dense, DenseReLU:
			in := h * w * c
			d := nn.NewDense(rng, name+".fc", in, b.OutC, true)
			d.Quant = newQuant()
			model.Add(d)
			if b.Kind == DenseReLU {
				model.Add(&nn.Activation{Kind: "relu"})
			}
			h, w, c = 1, 1, b.OutC
		case Dropout:
			if opts.DropoutRng == nil {
				opts.DropoutRng = rand.New(rand.NewSource(0))
			}
			model.Add(&nn.Dropout{Rate: b.Rate, Rng: opts.DropoutRng})
		case TransposedConv:
			return nil, fmt.Errorf("arch: %s: training transposed convolutions is not supported by the Go trainer", s.Name)
		default:
			return nil, fmt.Errorf("arch: %s block %d: unknown kind %v", s.Name, i, b.Kind)
		}
	}
	return model, nil
}
