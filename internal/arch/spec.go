// Package arch defines the architecture specification language shared by
// the whole reproduction: the trainer builds float models from a Spec, the
// graph package lowers a Spec to the deployable int8 IR, the DNAS emits a
// Spec as its search result, and the zoo catalogues the paper's Table 5 /
// Figure 6 models as Specs.
package arch

import (
	"fmt"
	"strings"
)

// BlockKind enumerates the macro blocks the paper's models are built from.
type BlockKind int

const (
	// Conv is a standard 2-D convolution followed by BN and ReLU.
	Conv BlockKind = iota
	// DSBlock is a depthwise-separable block: DW conv + BN + ReLU then
	// 1x1 conv + BN + ReLU (the DS-CNN building block, Table 5).
	DSBlock
	// IBN is a MobileNetV2 inverted bottleneck: 1x1 expand + BN + ReLU6,
	// 3x3 DW + BN + ReLU6, 1x1 linear project + BN, with a residual when
	// stride is 1 and the channel count is preserved (Figure 6).
	IBN
	// AvgPool is an average-pooling block (VALID padding).
	AvgPool
	// MaxPool is a max-pooling block (VALID padding).
	MaxPool
	// GlobalPool averages over all spatial positions.
	GlobalPool
	// Dense is a fully connected layer (input flattened if needed).
	Dense
	// DenseReLU is a fully connected layer followed by ReLU (autoencoder
	// hidden layers).
	DenseReLU
	// Dropout is a training-only regularizer; it is a no-op at deployment.
	Dropout
	// TransposedConv marks decoder layers of convolutional autoencoders.
	// TFLM does not support it (§6.4), so specs containing it are
	// reported as non-deployable by the runtime, exactly as in Table 3.
	TransposedConv
)

// blockKindNames maps each kind to its canonical name (the String form).
// Keep in sync with the BlockKind constants; ParseBlockKind and the JSON
// round-trip tests walk it.
var blockKindNames = map[BlockKind]string{
	Conv: "Conv2D", DSBlock: "DSBlock", IBN: "IBN",
	AvgPool: "AvgPool", MaxPool: "MaxPool", GlobalPool: "GlobalPool",
	Dense: "Dense", DenseReLU: "DenseReLU", Dropout: "Dropout",
	TransposedConv: "TransposedConv",
}

// ParseBlockKind is the inverse of BlockKind.String, used when loading
// exported spec files.
func ParseBlockKind(s string) (BlockKind, error) {
	for k, name := range blockKindNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("arch: unknown block kind %q", s)
}

// MarshalText renders the kind by name so exported spec files (the NAS
// frontier export format) stay human-readable and stable across constant
// reordering.
func (k BlockKind) MarshalText() ([]byte, error) {
	if name, ok := blockKindNames[k]; ok {
		return []byte(name), nil
	}
	return nil, fmt.Errorf("arch: cannot marshal BlockKind(%d)", int(k))
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *BlockKind) UnmarshalText(b []byte) error {
	v, err := ParseBlockKind(string(b))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// String implements fmt.Stringer.
func (k BlockKind) String() string {
	if name, ok := blockKindNames[k]; ok {
		return name
	}
	return fmt.Sprintf("BlockKind(%d)", int(k))
}

// Block is one macro block of a network.
type Block struct {
	Kind   BlockKind
	KH, KW int     // kernel size (Conv, DSBlock, IBN dw, pools, TransposedConv)
	Stride int     // spatial stride
	OutC   int     // output channels / dense units
	Expand int     // IBN: number of expansion filters (absolute, as in Fig. 6)
	Rate   float32 // Dropout rate
}

// Spec is a complete architecture: input geometry plus a block sequence.
type Spec struct {
	Name string
	// Task is one of "kws", "vww", "ad".
	Task                   string
	InputH, InputW, InputC int
	NumClasses             int
	Blocks                 []Block
	// Source records provenance: "repro" for models we construct and
	// train, "paper" for comparison points reconstructed from published
	// numbers.
	Source string
}

// LayerInfo describes one primitive layer after lowering a macro block,
// with resolved shapes and costs. Several LayerInfos may correspond to one
// Block (e.g. a DSBlock lowers to a depthwise and a pointwise layer).
type LayerInfo struct {
	Name             string
	Kind             string // "conv", "dwconv", "dense", "avgpool", "maxpool", "add", "tconv"
	BlockIdx         int
	KH, KW           int
	Stride           int
	InH, InW, InC    int
	OutH, OutW, OutC int
	Params           int64 // weight count (excluding bias)
	Biases           int64
	// MACs is multiply-accumulates; Ops = 2*MACs following the paper's
	// convention ("a single multiply-accumulate is defined as two
	// operations").
	MACs int64
}

// Ops returns the op count of the layer (2 per MAC).
func (l LayerInfo) Ops() int64 { return 2 * l.MACs }

// InBytes returns the int8 activation size of the layer input.
func (l LayerInfo) InBytes() int64 { return int64(l.InH) * int64(l.InW) * int64(l.InC) }

// OutBytes returns the int8 activation size of the layer output.
func (l LayerInfo) OutBytes() int64 { return int64(l.OutH) * int64(l.OutW) * int64(l.OutC) }

// Analysis summarizes a lowered Spec.
type Analysis struct {
	Layers []LayerInfo
	// TotalParams counts weights (excluding biases).
	TotalParams int64
	TotalBiases int64
	TotalMACs   int64
	// PeakWorkingSetBytes is the SpArSe working-memory model used by the
	// paper's SRAM regularizer: max over layers of (inputs + outputs) in
	// int8 bytes. The TFLM arena planner refines this with buffer reuse.
	PeakWorkingSetBytes int64
	Deployable          bool
	WhyNotDeployable    string
}

// TotalOps returns 2*TotalMACs.
func (a Analysis) TotalOps() int64 { return 2 * a.TotalMACs }

// sameOut mirrors tensor.SamePadding without importing it (avoids a cycle
// risk and keeps arch dependency-free).
func sameOut(in, s int) int {
	if in%s == 0 {
		return in / s
	}
	return in/s + 1
}

func validOut(in, k, s int) int {
	o := (in-k)/s + 1
	if o < 1 {
		o = 1
	}
	return o
}

// Analyze lowers the spec to primitive layers and computes shapes, parameter
// counts and MACs. It returns an error for malformed specs.
func (s *Spec) Analyze() (*Analysis, error) {
	if s.InputH <= 0 || s.InputW <= 0 || s.InputC <= 0 {
		return nil, fmt.Errorf("arch: %s: bad input %dx%dx%d", s.Name, s.InputH, s.InputW, s.InputC)
	}
	a := &Analysis{Deployable: true}
	h, w, c := s.InputH, s.InputW, s.InputC
	flat := false
	addLayer := func(l LayerInfo) {
		a.Layers = append(a.Layers, l)
		a.TotalParams += l.Params
		a.TotalBiases += l.Biases
		a.TotalMACs += l.MACs
		ws := l.InBytes() + l.OutBytes()
		if ws > a.PeakWorkingSetBytes {
			a.PeakWorkingSetBytes = ws
		}
	}
	for i, b := range s.Blocks {
		stride := b.Stride
		if stride == 0 {
			stride = 1
		}
		switch b.Kind {
		case Conv:
			if flat {
				return nil, fmt.Errorf("arch: %s block %d: conv after flatten", s.Name, i)
			}
			oh, ow := sameOut(h, stride), sameOut(w, stride)
			addLayer(LayerInfo{
				Name: fmt.Sprintf("conv%d", i), Kind: "conv", BlockIdx: i,
				KH: b.KH, KW: b.KW, Stride: stride,
				InH: h, InW: w, InC: c, OutH: oh, OutW: ow, OutC: b.OutC,
				Params: int64(b.KH) * int64(b.KW) * int64(c) * int64(b.OutC),
				Biases: int64(b.OutC),
				MACs:   int64(oh) * int64(ow) * int64(b.OutC) * int64(b.KH) * int64(b.KW) * int64(c),
			})
			h, w, c = oh, ow, b.OutC
		case DSBlock:
			if flat {
				return nil, fmt.Errorf("arch: %s block %d: dsblock after flatten", s.Name, i)
			}
			oh, ow := sameOut(h, stride), sameOut(w, stride)
			addLayer(LayerInfo{
				Name: fmt.Sprintf("ds%d_dw", i), Kind: "dwconv", BlockIdx: i,
				KH: b.KH, KW: b.KW, Stride: stride,
				InH: h, InW: w, InC: c, OutH: oh, OutW: ow, OutC: c,
				Params: int64(b.KH) * int64(b.KW) * int64(c),
				Biases: int64(c),
				MACs:   int64(oh) * int64(ow) * int64(c) * int64(b.KH) * int64(b.KW),
			})
			addLayer(LayerInfo{
				Name: fmt.Sprintf("ds%d_pw", i), Kind: "conv", BlockIdx: i,
				KH: 1, KW: 1, Stride: 1,
				InH: oh, InW: ow, InC: c, OutH: oh, OutW: ow, OutC: b.OutC,
				Params: int64(c) * int64(b.OutC),
				Biases: int64(b.OutC),
				MACs:   int64(oh) * int64(ow) * int64(b.OutC) * int64(c),
			})
			h, w, c = oh, ow, b.OutC
		case IBN:
			if flat {
				return nil, fmt.Errorf("arch: %s block %d: ibn after flatten", s.Name, i)
			}
			e := b.Expand
			if e <= 0 {
				return nil, fmt.Errorf("arch: %s block %d: IBN needs Expand>0", s.Name, i)
			}
			// 1x1 expand.
			addLayer(LayerInfo{
				Name: fmt.Sprintf("ibn%d_exp", i), Kind: "conv", BlockIdx: i,
				KH: 1, KW: 1, Stride: 1,
				InH: h, InW: w, InC: c, OutH: h, OutW: w, OutC: e,
				Params: int64(c) * int64(e), Biases: int64(e),
				MACs: int64(h) * int64(w) * int64(e) * int64(c),
			})
			// DW.
			kh, kw := b.KH, b.KW
			if kh == 0 {
				kh, kw = 3, 3
			}
			oh, ow := sameOut(h, stride), sameOut(w, stride)
			addLayer(LayerInfo{
				Name: fmt.Sprintf("ibn%d_dw", i), Kind: "dwconv", BlockIdx: i,
				KH: kh, KW: kw, Stride: stride,
				InH: h, InW: w, InC: e, OutH: oh, OutW: ow, OutC: e,
				Params: int64(kh) * int64(kw) * int64(e), Biases: int64(e),
				MACs: int64(oh) * int64(ow) * int64(e) * int64(kh) * int64(kw),
			})
			// 1x1 project.
			addLayer(LayerInfo{
				Name: fmt.Sprintf("ibn%d_proj", i), Kind: "conv", BlockIdx: i,
				KH: 1, KW: 1, Stride: 1,
				InH: oh, InW: ow, InC: e, OutH: oh, OutW: ow, OutC: b.OutC,
				Params: int64(e) * int64(b.OutC), Biases: int64(b.OutC),
				MACs: int64(oh) * int64(ow) * int64(b.OutC) * int64(e),
			})
			if stride == 1 && b.OutC == c {
				addLayer(LayerInfo{
					Name: fmt.Sprintf("ibn%d_add", i), Kind: "add", BlockIdx: i,
					InH: oh, InW: ow, InC: b.OutC, OutH: oh, OutW: ow, OutC: b.OutC,
				})
			}
			h, w, c = oh, ow, b.OutC
		case AvgPool, MaxPool:
			if flat {
				return nil, fmt.Errorf("arch: %s block %d: pool after flatten", s.Name, i)
			}
			kind := "avgpool"
			if b.Kind == MaxPool {
				kind = "maxpool"
			}
			oh, ow := validOut(h, b.KH, stride), validOut(w, b.KW, stride)
			addLayer(LayerInfo{
				Name: fmt.Sprintf("%s%d", kind, i), Kind: kind, BlockIdx: i,
				KH: b.KH, KW: b.KW, Stride: stride,
				InH: h, InW: w, InC: c, OutH: oh, OutW: ow, OutC: c,
			})
			h, w = oh, ow
		case GlobalPool:
			if flat {
				return nil, fmt.Errorf("arch: %s block %d: pool after flatten", s.Name, i)
			}
			addLayer(LayerInfo{
				Name: fmt.Sprintf("gap%d", i), Kind: "avgpool", BlockIdx: i,
				KH: h, KW: w, Stride: 1,
				InH: h, InW: w, InC: c, OutH: 1, OutW: 1, OutC: c,
			})
			h, w = 1, 1
		case Dense, DenseReLU:
			in := h * w * c
			flat = true
			addLayer(LayerInfo{
				Name: fmt.Sprintf("fc%d", i), Kind: "dense", BlockIdx: i,
				InH: 1, InW: 1, InC: in, OutH: 1, OutW: 1, OutC: b.OutC,
				Params: int64(in) * int64(b.OutC), Biases: int64(b.OutC),
				MACs: int64(in) * int64(b.OutC),
			})
			h, w, c = 1, 1, b.OutC
		case Dropout:
			// Training-only; nothing at deployment.
		case TransposedConv:
			if flat {
				return nil, fmt.Errorf("arch: %s block %d: tconv after flatten", s.Name, i)
			}
			oh, ow := h*stride, w*stride
			addLayer(LayerInfo{
				Name: fmt.Sprintf("tconv%d", i), Kind: "tconv", BlockIdx: i,
				KH: b.KH, KW: b.KW, Stride: stride,
				InH: h, InW: w, InC: c, OutH: oh, OutW: ow, OutC: b.OutC,
				Params: int64(b.KH) * int64(b.KW) * int64(c) * int64(b.OutC),
				Biases: int64(b.OutC),
				MACs:   int64(oh) * int64(ow) * int64(b.OutC) * int64(b.KH) * int64(b.KW) * int64(c),
			})
			a.Deployable = false
			a.WhyNotDeployable = "transposed convolution is not supported by TFLM (§6.4)"
			h, w, c = oh, ow, b.OutC
		default:
			return nil, fmt.Errorf("arch: %s block %d: unknown kind %v", s.Name, i, b.Kind)
		}
	}
	return a, nil
}

// OutputDim returns the final feature dimension of the spec (classes for
// classifiers).
func (s *Spec) OutputDim() (int, error) {
	a, err := s.Analyze()
	if err != nil {
		return 0, err
	}
	last := a.Layers[len(a.Layers)-1]
	return last.OutH * last.OutW * last.OutC, nil
}

// String renders the spec in the style of the paper's Table 5.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%dx%dx%d]: ", s.Name, s.InputH, s.InputW, s.InputC)
	for i, blk := range s.Blocks {
		if i > 0 {
			b.WriteString("-")
		}
		switch blk.Kind {
		case Conv:
			fmt.Fprintf(&b, "Conv2D(h:%d,w:%d,c:%d,s:%d)", blk.KH, blk.KW, blk.OutC, max1(blk.Stride))
		case DSBlock:
			fmt.Fprintf(&b, "DSBlock(h:%d,w:%d,c:%d,s:%d)", blk.KH, blk.KW, blk.OutC, max1(blk.Stride))
		case IBN:
			fmt.Fprintf(&b, "IBN(%d,%d,s:%d)", blk.Expand, blk.OutC, max1(blk.Stride))
		case AvgPool:
			fmt.Fprintf(&b, "AvgPool(h:%d,w:%d)", blk.KH, blk.KW)
		case MaxPool:
			fmt.Fprintf(&b, "MaxPool(h:%d,w:%d)", blk.KH, blk.KW)
		case GlobalPool:
			b.WriteString("GlobalPool")
		case Dense:
			fmt.Fprintf(&b, "FC(c:%d)", blk.OutC)
		case DenseReLU:
			fmt.Fprintf(&b, "FC+ReLU(c:%d)", blk.OutC)
		case Dropout:
			fmt.Fprintf(&b, "Dropout(%.2f)", blk.Rate)
		case TransposedConv:
			fmt.Fprintf(&b, "TConv(h:%d,w:%d,c:%d,s:%d)", blk.KH, blk.KW, blk.OutC, max1(blk.Stride))
		}
	}
	return b.String()
}

func max1(s int) int {
	if s == 0 {
		return 1
	}
	return s
}
