package kernels

import (
	"math"

	"micronets/internal/graph"
)

// Ctx carries the per-op precomputed requantization multipliers plus the
// Gemm engine's prepared state; the tflm interpreter builds one per op at
// AllocateTensors time (this is part of what TFLM's "persistent buffers"
// hold, Figure 2).
type Ctx struct {
	Mults []QuantizedMultiplier

	// GEMM state, populated for Conv2D and Dense ops. K is the reduction
	// length (kh*kw*inC for conv, input elems for dense), PackedW is the
	// weight matrix repacked into gemmNR-wide column panels, and ZpBias is
	// the bias with the input zero-point term folded in
	// (bias[oc] − inZp·Σₖ w[k][oc]).
	K       int
	PackedW []int8
	ZpBias  []int32

	// DWSumPrefix, populated for DWConv2D ops, is the 2-D prefix sum of
	// the depthwise weights: P[ky][kx][ch] = Σ_{y<ky, x<kx} w[y][x][ch],
	// laid out [(KH+1)][(KW+1)][C]. The Gemm engine uses rectangle
	// queries on it to fold the input zero point out of the tap loop.
	DWSumPrefix []int32
}

// PrepareConv precomputes per-channel multipliers for a conv/dense op
// (effective scale = inScale * wScale[c] / outScale) and, for the ops the
// Gemm engine lowers to matrix multiplication, packs the weights and
// folds the input zero point into the bias.
func PrepareConv(m *graph.Model, op *graph.Op) *Ctx {
	in := m.Tensors[op.Inputs[0]]
	out := m.Tensors[op.Output]
	ctx := &Ctx{Mults: make([]QuantizedMultiplier, len(op.WeightScales))}
	for c, ws := range op.WeightScales {
		ctx.Mults[c] = QuantizeMultiplier(float64(in.Scale) * float64(ws) / float64(out.Scale))
	}
	switch op.Kind {
	case graph.OpConv2D:
		ctx.K = convK(m, op)
	case graph.OpDense:
		ctx.K = in.Elems()
	case graph.OpDWConv2D:
		ctx.DWSumPrefix = dwWeightPrefix(op, out.C)
		return ctx
	default:
		return ctx
	}
	ctx.PackedW = packWeights(op.Weights, ctx.K, out.C)
	ctx.ZpBias = foldZeroPoint(op.Weights, ctx.K, out.C, op.Bias, in.ZeroPoint)
	return ctx
}

// Conv2D executes a quantized standard convolution. Weight layout is
// [kh][kw][inC][outC]; activations are NHWC with N=1.
func Conv2D(m *graph.Model, op *graph.Op, ctx *Ctx, in, out []int8) {
	it := m.Tensors[op.Inputs[0]]
	ot := m.Tensors[op.Output]
	inZp := it.ZeroPoint
	outZp := ot.ZeroPoint
	h, w, inC := it.H, it.W, it.C
	oh, ow, outC := ot.H, ot.W, ot.C
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			outBase := (oy*ow + ox) * outC
			for oc := 0; oc < outC; oc++ {
				acc := op.Bias[oc]
				for ky := 0; ky < op.KH; ky++ {
					iy := oy*op.SH + ky - op.PadTop
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < op.KW; kx++ {
						ix := ox*op.SW + kx - op.PadLeft
						if ix < 0 || ix >= w {
							continue
						}
						inBase := (iy*w + ix) * inC
						wBase := ((ky*op.KW+kx)*inC)*outC + oc
						for ic := 0; ic < inC; ic++ {
							acc += (int32(in[inBase+ic]) - inZp) * int32(op.Weights[wBase+ic*outC])
						}
					}
				}
				v := ctx.Mults[oc].Apply(acc) + outZp
				out[outBase+oc] = int8(clamp32(v, op.ClampMin, op.ClampMax))
			}
		}
	}
}

// DWConv2D executes a quantized depthwise convolution (multiplier 1).
// Weight layout is [kh][kw][c].
func DWConv2D(m *graph.Model, op *graph.Op, ctx *Ctx, in, out []int8) {
	it := m.Tensors[op.Inputs[0]]
	ot := m.Tensors[op.Output]
	inZp := it.ZeroPoint
	outZp := ot.ZeroPoint
	h, w, c := it.H, it.W, it.C
	oh, ow := ot.H, ot.W
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			outBase := (oy*ow + ox) * c
			for ch := 0; ch < c; ch++ {
				acc := op.Bias[ch]
				for ky := 0; ky < op.KH; ky++ {
					iy := oy*op.SH + ky - op.PadTop
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < op.KW; kx++ {
						ix := ox*op.SW + kx - op.PadLeft
						if ix < 0 || ix >= w {
							continue
						}
						acc += (int32(in[(iy*w+ix)*c+ch]) - inZp) * int32(op.Weights[(ky*op.KW+kx)*c+ch])
					}
				}
				v := ctx.Mults[ch].Apply(acc) + outZp
				out[outBase+ch] = int8(clamp32(v, op.ClampMin, op.ClampMax))
			}
		}
	}
}

// Dense executes a quantized fully connected layer. Weight layout is
// [in][out].
func Dense(m *graph.Model, op *graph.Op, ctx *Ctx, in, out []int8) {
	it := m.Tensors[op.Inputs[0]]
	ot := m.Tensors[op.Output]
	inZp := it.ZeroPoint
	outZp := ot.ZeroPoint
	n := it.Elems()
	outC := ot.C
	for oc := 0; oc < outC; oc++ {
		acc := op.Bias[oc]
		for i := 0; i < n; i++ {
			acc += (int32(in[i]) - inZp) * int32(op.Weights[i*outC+oc])
		}
		v := ctx.Mults[oc].Apply(acc) + outZp
		out[oc] = int8(clamp32(v, op.ClampMin, op.ClampMax))
	}
}

// AvgPool executes average pooling; input and output share quantization
// parameters (as arranged by the exporter), so only integer averaging with
// round-to-nearest is required.
func AvgPool(m *graph.Model, op *graph.Op, in, out []int8) {
	avgPoolRows(m, op, in, out, 0, m.Tensors[op.Output].H)
}

// avgPoolRows pools output rows [oy0, oy1); the Gemm engine calls it per
// band, the Reference engine with the full range.
func avgPoolRows(m *graph.Model, op *graph.Op, in, out []int8, oy0, oy1 int) {
	it := m.Tensors[op.Inputs[0]]
	ot := m.Tensors[op.Output]
	h, w, c := it.H, it.W, it.C
	ow := ot.W
	for oy := oy0; oy < oy1; oy++ {
		for ox := 0; ox < ow; ox++ {
			outBase := (oy*ow + ox) * c
			for ch := 0; ch < c; ch++ {
				var sum, count int32
				for ky := 0; ky < op.KH; ky++ {
					iy := oy*op.SH + ky
					if iy >= h {
						continue
					}
					for kx := 0; kx < op.KW; kx++ {
						ix := ox*op.SW + kx
						if ix >= w {
							continue
						}
						sum += int32(in[(iy*w+ix)*c+ch])
						count++
					}
				}
				if count == 0 {
					count = 1
				}
				var v int32
				if sum >= 0 {
					v = (sum + count/2) / count
				} else {
					v = (sum - count/2) / count
				}
				out[outBase+ch] = int8(clamp32(v, op.ClampMin, op.ClampMax))
			}
		}
	}
}

// MaxPool executes max pooling.
func MaxPool(m *graph.Model, op *graph.Op, in, out []int8) {
	maxPoolRows(m, op, in, out, 0, m.Tensors[op.Output].H)
}

// maxPoolRows pools output rows [oy0, oy1).
func maxPoolRows(m *graph.Model, op *graph.Op, in, out []int8, oy0, oy1 int) {
	it := m.Tensors[op.Inputs[0]]
	ot := m.Tensors[op.Output]
	h, w, c := it.H, it.W, it.C
	ow := ot.W
	for oy := oy0; oy < oy1; oy++ {
		for ox := 0; ox < ow; ox++ {
			outBase := (oy*ow + ox) * c
			for ch := 0; ch < c; ch++ {
				best := int32(-128)
				for ky := 0; ky < op.KH; ky++ {
					iy := oy*op.SH + ky
					if iy >= h {
						continue
					}
					for kx := 0; kx < op.KW; kx++ {
						ix := ox*op.SW + kx
						if ix >= w {
							continue
						}
						if v := int32(in[(iy*w+ix)*c+ch]); v > best {
							best = v
						}
					}
				}
				out[outBase+ch] = int8(clamp32(best, op.ClampMin, op.ClampMax))
			}
		}
	}
}

// Add executes a residual addition, rescaling both inputs to the output
// scale (double-precision variant of TFLite's ADD).
func Add(m *graph.Model, op *graph.Op, a, b, out []int8) {
	at := m.Tensors[op.Inputs[0]]
	bt := m.Tensors[op.Inputs[1]]
	ot := m.Tensors[op.Output]
	sa := float64(at.Scale) / float64(ot.Scale)
	sb := float64(bt.Scale) / float64(ot.Scale)
	for i := range out {
		va := float64(int32(a[i])-at.ZeroPoint) * sa
		vb := float64(int32(b[i])-bt.ZeroPoint) * sb
		v := int32(math.Round(va+vb)) + ot.ZeroPoint
		out[i] = int8(clamp32(v, op.ClampMin, op.ClampMax))
	}
}

// Softmax dequantizes the logits, computes a stable softmax, and emits
// int8 with the standard TFLite output quantization (scale 1/256, zp -128).
func Softmax(m *graph.Model, op *graph.Op, in, out []int8) {
	softmaxInto(m, op, in, out, make([]float64, m.Tensors[op.Inputs[0]].Elems()))
}

// softmaxInto is Softmax staging the dequantized logits in the caller's
// buffer (len ≥ input elems) — the allocation-free form bound ops use.
func softmaxInto(m *graph.Model, op *graph.Op, in, out []int8, logits []float64) {
	it := m.Tensors[op.Inputs[0]]
	ot := m.Tensors[op.Output]
	n := it.Elems()
	logits = logits[:n]
	maxv := math.Inf(-1)
	for i := 0; i < n; i++ {
		logits[i] = float64(it.Scale) * float64(int32(in[i])-it.ZeroPoint)
		if logits[i] > maxv {
			maxv = logits[i]
		}
	}
	var sum float64
	for i := range logits {
		logits[i] = math.Exp(logits[i] - maxv)
		sum += logits[i]
	}
	for i := range logits {
		p := logits[i] / sum
		q := int32(math.Round(p/float64(ot.Scale))) + ot.ZeroPoint
		out[i] = int8(clamp32(q, op.ClampMin, op.ClampMax))
	}
}

// Run dispatches one op on the Default engine with transient scratch. It
// returns an error for ops the runtime does not implement
// (TransposedConv), which is how non-deployability surfaces.
func Run(m *graph.Model, op *graph.Op, ctx *Ctx, bufs [][]int8) error {
	return RunWith(Default, m, op, ctx, bufs, nil)
}
