package kernels

import (
	"micronets/internal/graph"
)

// Scratch is the per-invocation mutable state one interpreter (or other
// exclusive caller) owns: every buffer a kernel needs beyond its input,
// output, and immutable prepared weights. It exists so the steady-state
// invoke path allocates nothing — each region is sized once for the
// whole model and reused by every op that needs it. A Scratch must not
// be shared by concurrent invokes (it is the mutable half of the
// prepared/shared split; see PreparedModel for the immutable half).
type Scratch struct {
	// Par is the reusable fork-join context every parallel op runs on.
	Par Parallel
	// Im2col is the Gemm engine's patch-gather region: Workers() tiles of
	// gemmTileM rows, sized for the largest non-pointwise convolution
	// (Engine.ScratchBytes). Interpreters carve it from the arena tail so
	// it stays planner-accounted.
	Im2col []int8
	// Acc is the depthwise engine's per-worker int32 accumulator rows:
	// Workers() × the widest depthwise channel count.
	Acc []int32
	// F64 is the softmax staging buffer, sized for the widest softmax.
	F64 []float64
}

// NewScratch builds a Scratch for a model, adopting im2col (usually the
// interpreter's arena tail; may be nil for models with no non-pointwise
// convs) and allocating the typed regions the model's ops need.
func NewScratch(m *graph.Model, im2col []int8) *Scratch {
	s := &Scratch{Im2col: im2col}
	maxC, maxSoft := 0, 0
	for _, op := range m.Ops {
		switch op.Kind {
		case graph.OpDWConv2D:
			if c := m.Tensors[op.Output].C; c > maxC {
				maxC = c
			}
		case graph.OpSoftmax:
			if n := m.Tensors[op.Inputs[0]].Elems(); n > maxSoft {
				maxSoft = n
			}
		}
	}
	if maxC > 0 {
		s.Acc = make([]int32, Workers()*maxC)
	}
	if maxSoft > 0 {
		s.F64 = make([]float64, maxSoft)
	}
	return s
}

// Bytes reports the scratch footprint beyond the adopted im2col region —
// the accumulator and staging buffers an interpreter adds on top of its
// planner-accounted arena.
func (s *Scratch) Bytes() int {
	return 4*len(s.Acc) + 8*len(s.F64)
}
