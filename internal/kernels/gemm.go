package kernels

import (
	"micronets/internal/graph"
)

// The Gemm engine lowers Conv2D to C[M×N] = A[M×K] · B[K×N] where
// M = outH*outW output pixels, K = kh*kw*inC patch elements and
// N = outC: A is built by im2col into a per-worker scratch tile, B is the
// op's weights pre-packed at PrepareConv time into nr-wide column panels,
// and the product runs as a register-tiled (mr×nr accumulator block)
// int8×int8→int32 kernel parallelized across output-pixel tiles. The
// input zero point is folded into the bias ahead of time
// (zpBias[oc] = bias[oc] − inZp·Σₖ w[k][oc], im2col pads with inZp), so
// the inner loop is a pure int8 dot product yet remains bit-exact with
// the Reference engine: int32 addition wraps identically in any order.
//
// Two microkernels share this orchestration: the scalar 2-deep store
// loop below, and the 16-wide unrolled variant in gemm_wide.go (the Wide
// engine). Both consume the same packed panels, so one shared
// PreparedModel serves either engine.

const (
	// gemmTileM is the number of output pixels im2col'd per scratch tile.
	gemmTileM = 64
	// gemmMR×gemmNR is the register accumulator block: 4 output pixels ×
	// 4 output channels per inner loop, amortizing each packed-B load
	// over four A rows.
	gemmMR = 4
	gemmNR = 4
)

// storeFunc multiplies rows [0, rows) of an im2col tile against every
// packed panel and requantizes into the output; the scalar and wide
// microkernels are interchangeable behind it.
type storeFunc func(a []int8, rows, k int, ctx *Ctx, op *graph.Op, out []int8, m0, n int, outZp int32)

// denseFunc computes dense output panels [lo, hi).
type denseFunc func(ctx *Ctx, op *graph.Op, in, out []int8, n, k int, outZp int32, lo, hi int)

// convIsPointwise reports whether the conv is a 1×1/stride-1/no-pad
// convolution, for which the NHWC input is already the im2col matrix.
func convIsPointwise(op *graph.Op) bool {
	return op.KH == 1 && op.KW == 1 && op.SH == 1 && op.SW == 1 &&
		op.PadTop == 0 && op.PadLeft == 0 && op.PadBottom == 0 && op.PadRight == 0
}

// convK returns the GEMM K dimension (im2col patch length) of a conv op.
func convK(m *graph.Model, op *graph.Op) int {
	return op.KH * op.KW * m.Tensors[op.Inputs[0]].C
}

// ScratchBytes returns the im2col scratch the default engine needs for a
// model — the number the tflm memory planner accounts for.
func ScratchBytes(m *graph.Model) int {
	return Default.ScratchBytes(m)
}

// ScratchBytes returns the Gemm engine's im2col requirement: Workers()
// concurrent tiles of gemmTileM patches, sized for the largest
// non-pointwise convolution. The tflm memory planner places this region
// after the activation arena so host-side memory accounting stays
// honest; it is zero for models whose convs are all pointwise.
func (gemmEngine) ScratchBytes(m *graph.Model) int {
	maxK := 0
	for _, op := range m.Ops {
		if op.Kind != graph.OpConv2D || convIsPointwise(op) {
			continue
		}
		if k := convK(m, op); k > maxK {
			maxK = k
		}
	}
	return Workers() * gemmTileM * maxK
}

// packWeights repacks a row-major K×N weight matrix into gemmNR-wide
// column panels: panel j holds columns [j*nr, j*nr+nr) laid out k-major,
// zero-padded past N, so the micro-kernel streams B with unit stride.
func packWeights(w []int8, k, n int) []int8 {
	panels := (n + gemmNR - 1) / gemmNR
	packed := make([]int8, panels*k*gemmNR)
	for j := 0; j < panels; j++ {
		base := j * k * gemmNR
		for kk := 0; kk < k; kk++ {
			for r := 0; r < gemmNR; r++ {
				if col := j*gemmNR + r; col < n {
					packed[base+kk*gemmNR+r] = w[kk*n+col]
				}
			}
		}
	}
	return packed
}

// dwWeightPrefix builds the 2-D prefix sum over the [kh][kw][c] depthwise
// weights used to fold the input zero point out of the tap loop.
func dwWeightPrefix(op *graph.Op, c int) []int32 {
	kh1, kw1 := op.KH+1, op.KW+1
	p := make([]int32, kh1*kw1*c)
	for ky := 1; ky < kh1; ky++ {
		for kx := 1; kx < kw1; kx++ {
			dst := p[(ky*kw1+kx)*c:]
			up := p[((ky-1)*kw1+kx)*c:]
			left := p[(ky*kw1+kx-1)*c:]
			diag := p[((ky-1)*kw1+kx-1)*c:]
			wv := op.Weights[((ky-1)*op.KW+kx-1)*c:]
			for ch := 0; ch < c; ch++ {
				dst[ch] = up[ch] + left[ch] - diag[ch] + int32(wv[ch])
			}
		}
	}
	return p
}

// foldZeroPoint returns bias[oc] − inZp·Σₖ w[k][oc] for a row-major K×N
// weight matrix, the bias the pure-int8 GEMM accumulates on top of.
func foldZeroPoint(w []int8, k, n int, bias []int32, inZp int32) []int32 {
	folded := make([]int32, n)
	for col := 0; col < n; col++ {
		var sum int32
		for kk := 0; kk < k; kk++ {
			sum += int32(w[kk*n+col])
		}
		folded[col] = bias[col] - inZp*sum
	}
	return folded
}

// im2colTile gathers output pixels [m0, m1) into tile, one K-length patch
// per row in (ky, kx, ic) order — the same order the weights use. Padding
// positions are filled with the input zero point, which the folded bias
// cancels exactly.
func im2colTile(op *graph.Op, in []int8, h, w, inC int, ow, k, m0, m1 int, pad int8, tile []int8) {
	rowBytes := op.KW * inC
	for mm := m0; mm < m1; mm++ {
		oy, ox := mm/ow, mm%ow
		dst := tile[(mm-m0)*k:]
		for ky := 0; ky < op.KH; ky++ {
			iy := oy*op.SH + ky - op.PadTop
			d := dst[ky*rowBytes : ky*rowBytes+rowBytes]
			if iy < 0 || iy >= h {
				for i := range d {
					d[i] = pad
				}
				continue
			}
			for kx := 0; kx < op.KW; kx++ {
				ix := ox*op.SW + kx - op.PadLeft
				seg := d[kx*inC : kx*inC+inC]
				if ix < 0 || ix >= w {
					for i := range seg {
						seg[i] = pad
					}
					continue
				}
				copy(seg, in[(iy*w+ix)*inC:(iy*w+ix)*inC+inC])
			}
		}
	}
}

// gemmStoreRows multiplies rows [0, rows) of the im2col tile a (k-major,
// stride k) against every packed panel and requantizes straight into
// out[(m0+row)*n+col].
func gemmStoreRows(a []int8, rows, k int, ctx *Ctx, op *graph.Op, out []int8, m0, n int, outZp int32) {
	panels := (n + gemmNR - 1) / gemmNR
	var i int
	for i = 0; i+gemmMR <= rows; i += gemmMR {
		a0 := a[(i+0)*k : (i+0)*k+k : (i+0)*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k : (i+1)*k+k]
		a2 := a[(i+2)*k : (i+2)*k+k : (i+2)*k+k]
		a3 := a[(i+3)*k : (i+3)*k+k : (i+3)*k+k]
		for j := 0; j < panels; j++ {
			bp := ctx.PackedW[j*k*gemmNR : j*k*gemmNR+k*gemmNR : j*k*gemmNR+k*gemmNR]
			var c00, c01, c02, c03 int32
			var c10, c11, c12, c13 int32
			var c20, c21, c22, c23 int32
			var c30, c31, c32, c33 int32
			o := 0
			kk := 0
			for ; kk+2 <= k; kk += 2 {
				b0, b1, b2, b3 := int32(bp[o]), int32(bp[o+1]), int32(bp[o+2]), int32(bp[o+3])
				d0, d1, d2, d3 := int32(bp[o+4]), int32(bp[o+5]), int32(bp[o+6]), int32(bp[o+7])
				o += 2 * gemmNR
				va, vb := int32(a0[kk]), int32(a0[kk+1])
				c00 += va*b0 + vb*d0
				c01 += va*b1 + vb*d1
				c02 += va*b2 + vb*d2
				c03 += va*b3 + vb*d3
				va, vb = int32(a1[kk]), int32(a1[kk+1])
				c10 += va*b0 + vb*d0
				c11 += va*b1 + vb*d1
				c12 += va*b2 + vb*d2
				c13 += va*b3 + vb*d3
				va, vb = int32(a2[kk]), int32(a2[kk+1])
				c20 += va*b0 + vb*d0
				c21 += va*b1 + vb*d1
				c22 += va*b2 + vb*d2
				c23 += va*b3 + vb*d3
				va, vb = int32(a3[kk]), int32(a3[kk+1])
				c30 += va*b0 + vb*d0
				c31 += va*b1 + vb*d1
				c32 += va*b2 + vb*d2
				c33 += va*b3 + vb*d3
			}
			for ; kk < k; kk++ {
				b0, b1, b2, b3 := int32(bp[o]), int32(bp[o+1]), int32(bp[o+2]), int32(bp[o+3])
				o += gemmNR
				va := int32(a0[kk])
				c00 += va * b0
				c01 += va * b1
				c02 += va * b2
				c03 += va * b3
				va = int32(a1[kk])
				c10 += va * b0
				c11 += va * b1
				c12 += va * b2
				c13 += va * b3
				va = int32(a2[kk])
				c20 += va * b0
				c21 += va * b1
				c22 += va * b2
				c23 += va * b3
				va = int32(a3[kk])
				c30 += va * b0
				c31 += va * b1
				c32 += va * b2
				c33 += va * b3
			}
			accs := [gemmMR][gemmNR]int32{
				{c00, c01, c02, c03},
				{c10, c11, c12, c13},
				{c20, c21, c22, c23},
				{c30, c31, c32, c33},
			}
			for r := 0; r < gemmMR; r++ {
				outRow := out[(m0+i+r)*n : (m0+i+r)*n+n]
				for cc := 0; cc < gemmNR; cc++ {
					col := j*gemmNR + cc
					if col >= n {
						break
					}
					acc := accs[r][cc] + ctx.ZpBias[col]
					v := ctx.Mults[col].Apply(acc) + outZp
					outRow[col] = int8(clamp32(v, op.ClampMin, op.ClampMax))
				}
			}
		}
	}
	gemmStoreTailRows(a, i, rows, k, ctx, op, out, m0, n, outZp)
}

// gemmStoreTailRows handles rows [i, rows) one at a time — the shared
// remainder path of both microkernels.
func gemmStoreTailRows(a []int8, i, rows, k int, ctx *Ctx, op *graph.Op, out []int8, m0, n int, outZp int32) {
	panels := (n + gemmNR - 1) / gemmNR
	for ; i < rows; i++ {
		ar := a[i*k : i*k+k : i*k+k]
		outRow := out[(m0+i)*n : (m0+i)*n+n]
		for j := 0; j < panels; j++ {
			bp := ctx.PackedW[j*k*gemmNR : j*k*gemmNR+k*gemmNR : j*k*gemmNR+k*gemmNR]
			var c0, c1, c2, c3 int32
			o := 0
			for kk := 0; kk < k; kk++ {
				va := int32(ar[kk])
				c0 += va * int32(bp[o])
				c1 += va * int32(bp[o+1])
				c2 += va * int32(bp[o+2])
				c3 += va * int32(bp[o+3])
				o += gemmNR
			}
			for cc, acc := range [gemmNR]int32{c0, c1, c2, c3} {
				col := j*gemmNR + cc
				if col >= n {
					break
				}
				acc += ctx.ZpBias[col]
				v := ctx.Mults[col].Apply(acc) + outZp
				outRow[col] = int8(clamp32(v, op.ClampMin, op.ClampMax))
			}
		}
	}
}

// gemmDensePanels computes dense output panels [lo, hi) with the scalar
// (unroll-1) dot product.
func gemmDensePanels(ctx *Ctx, op *graph.Op, in, out []int8, n, k int, outZp int32, lo, hi int) {
	for j := lo; j < hi; j++ {
		bp := ctx.PackedW[j*k*gemmNR : j*k*gemmNR+k*gemmNR : j*k*gemmNR+k*gemmNR]
		var c0, c1, c2, c3 int32
		o := 0
		for kk := 0; kk < k; kk++ {
			va := int32(in[kk])
			c0 += va * int32(bp[o])
			c1 += va * int32(bp[o+1])
			c2 += va * int32(bp[o+2])
			c3 += va * int32(bp[o+3])
			o += gemmNR
		}
		for cc, acc := range [gemmNR]int32{c0, c1, c2, c3} {
			col := j*gemmNR + cc
			if col >= n {
				break
			}
			acc += ctx.ZpBias[col]
			v := ctx.Mults[col].Apply(acc) + outZp
			out[col] = int8(clamp32(v, op.ClampMin, op.ClampMax))
		}
	}
}

// gemmEngine is the im2col+GEMM engine family; the store and dense
// microkernels are swappable (scalar for Gemm, 16-wide unrolled for
// Wide) while the packing, orchestration, and all non-GEMM ops are
// shared.
type gemmEngine struct {
	name  string
	store storeFunc
	dense denseFunc
}

func (e gemmEngine) Name() string { return e.name }

//microvet:hotpath-stop per-call convenience API that binds then executes, allocating at bind time by design; the pooled serve path uses the prebound closures from bindConv2D instead
func (e gemmEngine) Conv2D(m *graph.Model, op *graph.Op, ctx *Ctx, in, out, scratch []int8) {
	sc := Scratch{Im2col: scratch}
	e.bindConv2D(m, op, ctx, in, out, &sc)()
}

// bindConv2D precomputes the conv orchestration once and returns a
// persistent executor: repeated calls perform zero allocations.
func (e gemmEngine) bindConv2D(m *graph.Model, op *graph.Op, ctx *Ctx, in, out []int8, s *Scratch) func() {
	it := m.Tensors[op.Inputs[0]]
	ot := m.Tensors[op.Output]
	h, w, inC := it.H, it.W, it.C
	oh, ow, n := ot.H, ot.W, ot.C
	k := ctx.K
	mTotal := oh * ow
	outZp := ot.ZeroPoint
	store := e.store

	if convIsPointwise(op) {
		// The NHWC input is already the M×K im2col matrix.
		fn := func(_, lo, hi int) {
			store(in[lo*k:], hi-lo, k, ctx, op, out, lo, n, outZp)
		}
		return func() { s.Par.For(mTotal, gemmTileM, fn) }
	}

	perWorker := gemmTileM * k
	tiles := s.Im2col
	if len(tiles) < Workers()*perWorker {
		// Caller did not plan scratch (direct engine calls in tests);
		// allocate once at bind time.
		tiles = make([]int8, Workers()*perWorker)
	}
	pad := int8(it.ZeroPoint)
	nTiles := (mTotal + gemmTileM - 1) / gemmTileM
	fn := func(chunk, lo, hi int) {
		tile := tiles[chunk*perWorker : (chunk+1)*perWorker]
		for t := lo; t < hi; t++ {
			m0 := t * gemmTileM
			m1 := m0 + gemmTileM
			if m1 > mTotal {
				m1 = mTotal
			}
			im2colTile(op, in, h, w, inC, ow, k, m0, m1, pad, tile)
			store(tile, m1-m0, k, ctx, op, out, m0, n, outZp)
		}
	}
	return func() { s.Par.For(nTiles, 1, fn) }
}

//microvet:hotpath-stop per-call convenience API that binds then executes, allocating at bind time by design; the pooled serve path uses the prebound closures from bindDense instead
func (e gemmEngine) Dense(m *graph.Model, op *graph.Op, ctx *Ctx, in, out []int8) {
	var sc Scratch
	e.bindDense(m, op, ctx, in, out, &sc)()
}

func (e gemmEngine) bindDense(m *graph.Model, op *graph.Op, ctx *Ctx, in, out []int8, s *Scratch) func() {
	ot := m.Tensors[op.Output]
	n := ot.C
	k := ctx.K
	outZp := ot.ZeroPoint
	panels := (n + gemmNR - 1) / gemmNR
	dense := e.dense
	fn := func(_, lo, hi int) {
		dense(ctx, op, in, out, n, k, outZp, lo, hi)
	}
	return func() { s.Par.For(panels, 8, fn) }
}

// DWConv2D has no GEMM form (each channel is its own tiny filter); the
// engine parallelizes output rows, hoists the pad-clipped kernel bounds
// out of the pixel loop, and accumulates channel-inner so both the
// activation and weight reads are unit-stride. Per channel the taps still
// run in (ky, kx) order, so the int32 accumulation matches Reference
// exactly.
//
//microvet:hotpath-stop per-call convenience API that binds then executes, allocating at bind time by design; the pooled serve path uses the prebound closures from bindDWConv2D instead
func (e gemmEngine) DWConv2D(m *graph.Model, op *graph.Op, ctx *Ctx, in, out []int8) {
	var sc Scratch
	e.bindDWConv2D(m, op, ctx, in, out, &sc)()
}

func (e gemmEngine) bindDWConv2D(m *graph.Model, op *graph.Op, ctx *Ctx, in, out []int8, s *Scratch) func() {
	it := m.Tensors[op.Inputs[0]]
	ot := m.Tensors[op.Output]
	inZp, outZp := it.ZeroPoint, ot.ZeroPoint
	h, w, c := it.H, it.W, it.C
	oh, ow := ot.H, ot.W
	kw1 := op.KW + 1
	pre := ctx.DWSumPrefix
	if len(s.Acc) < Workers()*c {
		// Direct engine calls arrive without a sized Scratch; interpreters
		// pre-size it, so this never runs on the serve path.
		s.Acc = make([]int32, Workers()*c)
	}
	accAll := s.Acc
	fn := func(chunk, lo, hi int) {
		acc := accAll[chunk*c : (chunk+1)*c : (chunk+1)*c]
		for oy := lo; oy < hi; oy++ {
			ky0, ky1 := clipKernel(oy*op.SH-op.PadTop, op.KH, h)
			for ox := 0; ox < ow; ox++ {
				kx0, kx1 := clipKernel(ox*op.SW-op.PadLeft, op.KW, w)
				// acc[ch] = bias − inZp·Σ_validTaps w: a rectangle query on
				// the weight prefix sum, so the tap loop below is a pure
				// int8 multiply-accumulate. Identical to per-tap
				// (x − zp)·w modulo 2³², hence bit-exact with Reference.
				if inZp == 0 {
					copy(acc, op.Bias)
				} else {
					p11 := pre[(ky1*kw1+kx1)*c : (ky1*kw1+kx1)*c+c : (ky1*kw1+kx1)*c+c]
					p01 := pre[(ky0*kw1+kx1)*c : (ky0*kw1+kx1)*c+c : (ky0*kw1+kx1)*c+c]
					p10 := pre[(ky1*kw1+kx0)*c : (ky1*kw1+kx0)*c+c : (ky1*kw1+kx0)*c+c]
					p00 := pre[(ky0*kw1+kx0)*c : (ky0*kw1+kx0)*c+c : (ky0*kw1+kx0)*c+c]
					for ch := range acc {
						acc[ch] = op.Bias[ch] - inZp*(p11[ch]-p01[ch]-p10[ch]+p00[ch])
					}
				}
				for ky := ky0; ky < ky1; ky++ {
					iy := oy*op.SH + ky - op.PadTop
					inRow := (iy*w + ox*op.SW - op.PadLeft) * c
					wRow := ky * op.KW * c
					for kx := kx0; kx < kx1; kx++ {
						a := in[inRow+kx*c : inRow+kx*c+c : inRow+kx*c+c]
						wv := op.Weights[wRow+kx*c : wRow+kx*c+c : wRow+kx*c+c]
						for ch := range a {
							acc[ch] += int32(a[ch]) * int32(wv[ch])
						}
					}
				}
				outRow := out[(oy*ow+ox)*c : (oy*ow+ox)*c+c : (oy*ow+ox)*c+c]
				for ch := range outRow {
					v := ctx.Mults[ch].Apply(acc[ch]) + outZp
					outRow[ch] = int8(clamp32(v, op.ClampMin, op.ClampMax))
				}
			}
		}
	}
	return func() { s.Par.For(oh, 1, fn) }
}

// clipKernel returns the [k0, k1) kernel tap range whose input positions
// start+k fall inside [0, limit).
func clipKernel(start, kSize, limit int) (int, int) {
	k0, k1 := 0, kSize
	if start < 0 {
		k0 = -start
	}
	if start+k1 > limit {
		k1 = limit - start
	}
	if k1 < k0 {
		k1 = k0
	}
	return k0, k1
}

//microvet:hotpath-stop per-call convenience API that binds then executes, allocating at bind time by design; the pooled serve path uses the prebound closures from bindAvgPool instead
func (e gemmEngine) AvgPool(m *graph.Model, op *graph.Op, in, out []int8) {
	var sc Scratch
	e.bindAvgPool(m, op, in, out, &sc)()
}

func (e gemmEngine) bindAvgPool(m *graph.Model, op *graph.Op, in, out []int8, s *Scratch) func() {
	oh := m.Tensors[op.Output].H
	fn := func(_, lo, hi int) { avgPoolRows(m, op, in, out, lo, hi) }
	return func() { s.Par.For(oh, 2, fn) }
}

//microvet:hotpath-stop per-call convenience API that binds then executes, allocating at bind time by design; the pooled serve path uses the prebound closures from bindMaxPool instead
func (e gemmEngine) MaxPool(m *graph.Model, op *graph.Op, in, out []int8) {
	var sc Scratch
	e.bindMaxPool(m, op, in, out, &sc)()
}

func (e gemmEngine) bindMaxPool(m *graph.Model, op *graph.Op, in, out []int8, s *Scratch) func() {
	oh := m.Tensors[op.Output].H
	fn := func(_, lo, hi int) { maxPoolRows(m, op, in, out, lo, hi) }
	return func() { s.Par.For(oh, 2, fn) }
}
