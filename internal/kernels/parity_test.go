package kernels

import (
	"fmt"
	"math/rand"
	"testing"

	"micronets/internal/graph"
)

// The Gemm engine must be bit-exact with Reference: identical int8 output
// bytes for every op, shape, stride, padding and zero-point combination.
// These tests sweep the geometry space table-driven and compare the two
// engines on random weights and activations.

type convCase struct {
	h, w, inC, outC int
	kh, kw, sh, sw  int
	padT, padL      int
	padB, padR      int
	inZp            int32
}

func convCases() []convCase {
	return []convCase{
		// 1×1 pointwise (the CMSIS-NN fast path the paper leans on).
		{h: 8, w: 8, inC: 8, outC: 16, kh: 1, kw: 1, sh: 1, sw: 1},
		{h: 7, w: 5, inC: 3, outC: 5, kh: 1, kw: 1, sh: 1, sw: 1},
		{h: 9, w: 9, inC: 17, outC: 13, kh: 1, kw: 1, sh: 1, sw: 1, inZp: -128},
		// 1×1 with stride (not the pointwise fast path: needs im2col).
		{h: 9, w: 9, inC: 4, outC: 4, kh: 1, kw: 1, sh: 2, sw: 2},
		// 3×3 same-padded, odd spatial sizes, assorted channel counts.
		{h: 5, w: 5, inC: 1, outC: 1, kh: 3, kw: 3, sh: 1, sw: 1, padT: 1, padL: 1, padB: 1, padR: 1},
		{h: 7, w: 7, inC: 3, outC: 8, kh: 3, kw: 3, sh: 1, sw: 1, padT: 1, padL: 1, padB: 1, padR: 1, inZp: -128},
		{h: 11, w: 9, inC: 5, outC: 7, kh: 3, kw: 3, sh: 1, sw: 1, padT: 1, padL: 1, padB: 1, padR: 1, inZp: 4},
		// Strided downsampling with TF-style asymmetric padding.
		{h: 10, w: 10, inC: 8, outC: 16, kh: 3, kw: 3, sh: 2, sw: 2, padT: 0, padL: 0, padB: 1, padR: 1},
		{h: 13, w: 13, inC: 4, outC: 12, kh: 3, kw: 3, sh: 2, sw: 2, padT: 1, padL: 1, padB: 1, padR: 1, inZp: -7},
		// Larger kernels, valid padding, non-square strides.
		{h: 12, w: 12, inC: 2, outC: 6, kh: 5, kw: 5, sh: 1, sw: 1},
		{h: 16, w: 8, inC: 3, outC: 4, kh: 5, kw: 3, sh: 2, sw: 1, padT: 2, padL: 1, padB: 2, padR: 1},
		// Wide output band to exercise multiple GEMM tiles and MR edges.
		{h: 20, w: 19, inC: 9, outC: 21, kh: 3, kw: 3, sh: 1, sw: 1, padT: 1, padL: 1, padB: 1, padR: 1, inZp: 33},
	}
}

func convOut(h, pad, k, s int) int { return (h+pad-k)/s + 1 }

func randomConvModel(t *testing.T, c convCase, kind graph.OpKind, rng *rand.Rand) *graph.Model {
	t.Helper()
	oh := convOut(c.h, c.padT+c.padB, c.kh, c.sh)
	ow := convOut(c.w, c.padL+c.padR, c.kw, c.sw)
	outC := c.outC
	var nW int
	switch kind {
	case graph.OpConv2D:
		nW = c.kh * c.kw * c.inC * outC
	case graph.OpDWConv2D:
		outC = c.inC
		nW = c.kh * c.kw * outC
	default:
		t.Fatalf("bad kind %v", kind)
	}
	m := &graph.Model{Name: "parity"}
	m.Tensors = []*graph.Tensor{
		{ID: 0, Name: "in", H: c.h, W: c.w, C: c.inC, Scale: 0.05, ZeroPoint: c.inZp, Bits: 8},
		{ID: 1, Name: "out", H: oh, W: ow, C: outC, Scale: 0.1, ZeroPoint: -3, Bits: 8},
	}
	op := &graph.Op{
		Kind: kind, Name: "op", Inputs: []int{0}, Output: 1,
		KH: c.kh, KW: c.kw, SH: c.sh, SW: c.sw,
		PadTop: c.padT, PadLeft: c.padL, PadBottom: c.padB, PadRight: c.padR,
		Weights: make([]int8, nW), WeightBits: 8,
		WeightScales: make([]float32, outC),
		Bias:         make([]int32, outC),
		ClampMin:     -128, ClampMax: 127,
	}
	for i := range op.Weights {
		op.Weights[i] = int8(rng.Intn(256) - 128)
	}
	for i := 0; i < outC; i++ {
		op.WeightScales[i] = 0.02 + 0.01*float32(i%5)
		op.Bias[i] = int32(rng.Intn(2048) - 1024)
	}
	m.Ops = []*graph.Op{op}
	m.Input, m.Output = 0, 1
	return m
}

func randomInput(n int, rng *rand.Rand) []int8 {
	in := make([]int8, n)
	for i := range in {
		in[i] = int8(rng.Intn(256) - 128)
	}
	return in
}

func TestConv2DGemmParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range convCases() {
		c := c
		name := fmt.Sprintf("h%dw%d_c%dx%d_k%dx%d_s%d%d_p%d%d%d%d_zp%d",
			c.h, c.w, c.inC, c.outC, c.kh, c.kw, c.sh, c.sw, c.padT, c.padL, c.padB, c.padR, c.inZp)
		t.Run(name, func(t *testing.T) {
			m := randomConvModel(t, c, graph.OpConv2D, rng)
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
			in := randomInput(m.Tensors[0].Elems(), rng)
			ctx := PrepareConv(m, m.Ops[0])
			want := make([]int8, m.Tensors[1].Elems())
			got := make([]int8, m.Tensors[1].Elems())
			Reference.Conv2D(m, m.Ops[0], ctx, in, want, nil)
			for _, eng := range []Engine{Gemm, Wide} {
				for i := range got {
					got[i] = 0
				}
				eng.Conv2D(m, m.Ops[0], ctx, in, got, nil)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("conv parity: out[%d] %s=%d reference=%d", i, eng.Name(), got[i], want[i])
					}
				}
			}
		})
	}
}

func TestDWConv2DGemmParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, c := range convCases() {
		c := c
		name := fmt.Sprintf("h%dw%d_c%d_k%dx%d_s%d%d_zp%d", c.h, c.w, c.inC, c.kh, c.kw, c.sh, c.sw, c.inZp)
		t.Run(name, func(t *testing.T) {
			m := randomConvModel(t, c, graph.OpDWConv2D, rng)
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
			in := randomInput(m.Tensors[0].Elems(), rng)
			ctx := PrepareConv(m, m.Ops[0])
			want := make([]int8, m.Tensors[1].Elems())
			got := make([]int8, m.Tensors[1].Elems())
			Reference.DWConv2D(m, m.Ops[0], ctx, in, want)
			for _, eng := range []Engine{Gemm, Wide} {
				for i := range got {
					got[i] = 0
				}
				eng.DWConv2D(m, m.Ops[0], ctx, in, got)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("dwconv parity: out[%d] %s=%d reference=%d", i, eng.Name(), got[i], want[i])
					}
				}
			}
		})
	}
}

func TestDenseGemmParity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []struct{ in, out int }{
		{1, 1}, {3, 2}, {16, 12}, {64, 10}, {127, 33}, {256, 5},
	} {
		t.Run(fmt.Sprintf("in%d_out%d", n.in, n.out), func(t *testing.T) {
			m := &graph.Model{Name: "fc"}
			m.Tensors = []*graph.Tensor{
				{ID: 0, Name: "in", H: 1, W: 1, C: n.in, Scale: 0.1, ZeroPoint: 5, Bits: 8},
				{ID: 1, Name: "out", H: 1, W: 1, C: n.out, Scale: 0.2, ZeroPoint: -1, Bits: 8},
			}
			op := &graph.Op{
				Kind: graph.OpDense, Name: "fc", Inputs: []int{0}, Output: 1,
				Weights: make([]int8, n.in*n.out), WeightBits: 8,
				WeightScales: make([]float32, n.out), Bias: make([]int32, n.out),
				ClampMin: -128, ClampMax: 127,
			}
			for i := range op.Weights {
				op.Weights[i] = int8(rng.Intn(256) - 128)
			}
			for i := 0; i < n.out; i++ {
				op.WeightScales[i] = 0.05
				op.Bias[i] = int32(rng.Intn(512) - 256)
			}
			m.Ops = []*graph.Op{op}
			m.Input, m.Output = 0, 1
			in := randomInput(n.in, rng)
			ctx := PrepareConv(m, op)
			want := make([]int8, n.out)
			got := make([]int8, n.out)
			Reference.Dense(m, op, ctx, in, want)
			for _, eng := range []Engine{Gemm, Wide} {
				for i := range got {
					got[i] = 0
				}
				eng.Dense(m, op, ctx, in, got)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("dense parity: out[%d] %s=%d reference=%d", i, eng.Name(), got[i], want[i])
					}
				}
			}
		})
	}
}

func TestPoolGemmParity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, c := range []struct{ h, w, ch, k, s int }{
		{4, 4, 1, 2, 2}, {7, 7, 3, 3, 2}, {10, 10, 8, 2, 2}, {25, 5, 4, 5, 5}, {6, 6, 16, 6, 6},
	} {
		for _, kind := range []graph.OpKind{graph.OpAvgPool, graph.OpMaxPool} {
			t.Run(fmt.Sprintf("%s_h%dw%dc%d_k%ds%d", kind, c.h, c.w, c.ch, c.k, c.s), func(t *testing.T) {
				oh := (c.h-c.k)/c.s + 1
				ow := (c.w-c.k)/c.s + 1
				m := &graph.Model{Name: "pool"}
				m.Tensors = []*graph.Tensor{
					{ID: 0, Name: "in", H: c.h, W: c.w, C: c.ch, Scale: 1, Bits: 8},
					{ID: 1, Name: "out", H: oh, W: ow, C: c.ch, Scale: 1, Bits: 8},
				}
				op := &graph.Op{
					Kind: kind, Name: "pool", Inputs: []int{0}, Output: 1,
					KH: c.k, KW: c.k, SH: c.s, SW: c.s, ClampMin: -128, ClampMax: 127,
				}
				m.Ops = []*graph.Op{op}
				m.Input, m.Output = 0, 1
				in := randomInput(c.h*c.w*c.ch, rng)
				want := make([]int8, oh*ow*c.ch)
				got := make([]int8, oh*ow*c.ch)
				if kind == graph.OpAvgPool {
					Reference.AvgPool(m, op, in, want)
					Gemm.AvgPool(m, op, in, got)
				} else {
					Reference.MaxPool(m, op, in, want)
					Gemm.MaxPool(m, op, in, got)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s parity: out[%d] gemm=%d reference=%d", kind, i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestGemmDeterministic re-runs the parallel conv on the same inputs and
// demands identical bytes: goroutine scheduling must never leak into the
// result.
func TestGemmDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := convCase{h: 16, w: 16, inC: 8, outC: 24, kh: 3, kw: 3, sh: 1, sw: 1, padT: 1, padL: 1, padB: 1, padR: 1, inZp: -128}
	m := randomConvModel(t, c, graph.OpConv2D, rng)
	in := randomInput(m.Tensors[0].Elems(), rng)
	ctx := PrepareConv(m, m.Ops[0])
	for _, eng := range []Engine{Gemm, Wide} {
		first := make([]int8, m.Tensors[1].Elems())
		eng.Conv2D(m, m.Ops[0], ctx, in, first, nil)
		for trial := 0; trial < 10; trial++ {
			got := make([]int8, len(first))
			eng.Conv2D(m, m.Ops[0], ctx, in, got, nil)
			for i := range first {
				if got[i] != first[i] {
					t.Fatalf("%s trial %d: nondeterministic out[%d]: %d vs %d", eng.Name(), trial, i, got[i], first[i])
				}
			}
		}
	}
}
