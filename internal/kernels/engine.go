package kernels

import (
	"fmt"

	"micronets/internal/graph"
)

// Engine is one implementation of the compute-heavy kernels. Two engines
// ship: Reference (the naive direct loops, kept as the semantic ground
// truth) and Gemm (im2col + cache-blocked parallel int8 GEMM, the default
// host path). Both produce bit-exact identical int8 outputs; the parity
// tests enforce it. Elementwise ops (Add, Softmax) are engine-independent.
type Engine interface {
	Name() string
	// ScratchBytes reports how much scratch the engine wants for a model
	// (0 for engines that need none); interpreters allocate exactly this
	// much and pass it to Conv2D.
	ScratchBytes(m *graph.Model) int
	Conv2D(m *graph.Model, op *graph.Op, ctx *Ctx, in, out, scratch []int8)
	DWConv2D(m *graph.Model, op *graph.Op, ctx *Ctx, in, out []int8)
	Dense(m *graph.Model, op *graph.Op, ctx *Ctx, in, out []int8)
	AvgPool(m *graph.Model, op *graph.Op, in, out []int8)
	MaxPool(m *graph.Model, op *graph.Op, in, out []int8)
}

// Reference is the naive direct-convolution engine: one quadruple-nested
// loop per op, no parallelism, no scratch. It is the bit-exactness oracle
// for Gemm and the baseline the Benchmark* functions compare against.
var Reference Engine = refEngine{}

// Gemm is the optimized engine: im2col into planner-provided scratch
// tiles, register-tiled int8 GEMM over pre-packed weights, and the
// worker pool fanned out across output tiles.
var Gemm Engine = gemmEngine{name: "gemm", store: gemmStoreRows, dense: gemmDensePanels}

// Wide shares Gemm's packing and orchestration but swaps in the 16-wide
// unrolled dot-product microkernels (gemm_wide.go). Same packed panels,
// same bit-exact outputs; only the inner loop differs.
var Wide Engine = gemmEngine{name: "gemm16", store: gemmStoreRowsWide, dense: gemmDensePanelsWide}

// Default is the engine used by Run and by interpreters that do not ask
// for a specific one.
var Default = Wide

type refEngine struct{}

func (refEngine) Name() string                    { return "reference" }
func (refEngine) ScratchBytes(m *graph.Model) int { return 0 }
func (refEngine) Conv2D(m *graph.Model, op *graph.Op, ctx *Ctx, in, out, _ []int8) {
	Conv2D(m, op, ctx, in, out)
}
func (refEngine) DWConv2D(m *graph.Model, op *graph.Op, ctx *Ctx, in, out []int8) {
	DWConv2D(m, op, ctx, in, out)
}
func (refEngine) Dense(m *graph.Model, op *graph.Op, ctx *Ctx, in, out []int8) {
	Dense(m, op, ctx, in, out)
}
func (refEngine) AvgPool(m *graph.Model, op *graph.Op, in, out []int8) { AvgPool(m, op, in, out) }
func (refEngine) MaxPool(m *graph.Model, op *graph.Op, in, out []int8) { MaxPool(m, op, in, out) }

// RunWith dispatches one op on the given engine. scratch is the im2col
// region sized by ScratchBytes (may be nil for callers that did not plan
// one; the Gemm engine then allocates transient tiles itself).
func RunWith(eng Engine, m *graph.Model, op *graph.Op, ctx *Ctx, bufs [][]int8, scratch []int8) error {
	out := bufs[op.Output]
	switch op.Kind {
	case graph.OpConv2D:
		eng.Conv2D(m, op, ctx, bufs[op.Inputs[0]], out, scratch)
	case graph.OpDWConv2D:
		eng.DWConv2D(m, op, ctx, bufs[op.Inputs[0]], out)
	case graph.OpDense:
		eng.Dense(m, op, ctx, bufs[op.Inputs[0]], out)
	case graph.OpAvgPool:
		eng.AvgPool(m, op, bufs[op.Inputs[0]], out)
	case graph.OpMaxPool:
		eng.MaxPool(m, op, bufs[op.Inputs[0]], out)
	case graph.OpAdd:
		Add(m, op, bufs[op.Inputs[0]], bufs[op.Inputs[1]], out)
	case graph.OpSoftmax:
		Softmax(m, op, bufs[op.Inputs[0]], out)
	default:
		return fmt.Errorf("kernels: op %s (%s) is not supported by the runtime", op.Name, op.Kind)
	}
	return nil
}
