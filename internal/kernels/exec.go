package kernels

import (
	"fmt"

	"micronets/internal/graph"
)

// The bind layer: instead of re-deriving tensor shapes, scratch slices
// and parallel closures on every Invoke (which costs allocations —
// closures escaping to the worker pool, accumulator slices, softmax
// staging), an interpreter binds each op ONCE at construction into a
// plain func() that captures everything it needs. The steady-state
// invoke loop is then just calling pre-bound funcs — zero allocations,
// proven by the AllocsPerRun tests in tflm.

// opBinder is implemented by engines that can prebind their ops into
// allocation-free executors. Engines that don't implement it still work
// through BindOp via their per-call Engine methods.
type opBinder interface {
	bindConv2D(m *graph.Model, op *graph.Op, ctx *Ctx, in, out []int8, s *Scratch) func()
	bindDWConv2D(m *graph.Model, op *graph.Op, ctx *Ctx, in, out []int8, s *Scratch) func()
	bindDense(m *graph.Model, op *graph.Op, ctx *Ctx, in, out []int8, s *Scratch) func()
	bindAvgPool(m *graph.Model, op *graph.Op, in, out []int8, s *Scratch) func()
	bindMaxPool(m *graph.Model, op *graph.Op, in, out []int8, s *Scratch) func()
}

// BindOp resolves one op against an engine, a prepared context, and the
// caller's buffers into a repeatedly-callable executor. All dispatch,
// shape derivation, and scratch sizing happens here, once; unsupported
// ops surface as an error at bind time instead of at invoke time. The
// returned func reads in-place from bufs, so callers rewrite inputs
// between invocations rather than rebinding.
func BindOp(eng Engine, m *graph.Model, op *graph.Op, ctx *Ctx, bufs [][]int8, s *Scratch) (func(), error) {
	out := bufs[op.Output]
	b, bindable := eng.(opBinder)
	switch op.Kind {
	case graph.OpConv2D:
		in := bufs[op.Inputs[0]]
		if bindable {
			return b.bindConv2D(m, op, ctx, in, out, s), nil
		}
		scratch := s.Im2col
		return func() { eng.Conv2D(m, op, ctx, in, out, scratch) }, nil
	case graph.OpDWConv2D:
		in := bufs[op.Inputs[0]]
		if bindable {
			return b.bindDWConv2D(m, op, ctx, in, out, s), nil
		}
		return func() { eng.DWConv2D(m, op, ctx, in, out) }, nil
	case graph.OpDense:
		in := bufs[op.Inputs[0]]
		if bindable {
			return b.bindDense(m, op, ctx, in, out, s), nil
		}
		return func() { eng.Dense(m, op, ctx, in, out) }, nil
	case graph.OpAvgPool:
		in := bufs[op.Inputs[0]]
		if bindable {
			return b.bindAvgPool(m, op, in, out, s), nil
		}
		return func() { eng.AvgPool(m, op, in, out) }, nil
	case graph.OpMaxPool:
		in := bufs[op.Inputs[0]]
		if bindable {
			return b.bindMaxPool(m, op, in, out, s), nil
		}
		return func() { eng.MaxPool(m, op, in, out) }, nil
	case graph.OpAdd:
		x, y := bufs[op.Inputs[0]], bufs[op.Inputs[1]]
		return func() { Add(m, op, x, y, out) }, nil
	case graph.OpSoftmax:
		in := bufs[op.Inputs[0]]
		n := m.Tensors[op.Inputs[0]].Elems()
		if len(s.F64) < n {
			s.F64 = make([]float64, n)
		}
		logits := s.F64[:n]
		return func() { softmaxInto(m, op, in, out, logits) }, nil
	default:
		return nil, fmt.Errorf("kernels: op %s (%s) is not supported by the runtime", op.Name, op.Kind)
	}
}

// Reference binds to plain direct-kernel calls; it needs no scratch and
// no parallelism, so its bound form is allocation-free too.
func (refEngine) bindConv2D(m *graph.Model, op *graph.Op, ctx *Ctx, in, out []int8, _ *Scratch) func() {
	return func() { Conv2D(m, op, ctx, in, out) }
}

func (refEngine) bindDWConv2D(m *graph.Model, op *graph.Op, ctx *Ctx, in, out []int8, _ *Scratch) func() {
	return func() { DWConv2D(m, op, ctx, in, out) }
}

func (refEngine) bindDense(m *graph.Model, op *graph.Op, ctx *Ctx, in, out []int8, _ *Scratch) func() {
	return func() { Dense(m, op, ctx, in, out) }
}

func (refEngine) bindAvgPool(m *graph.Model, op *graph.Op, in, out []int8, _ *Scratch) func() {
	return func() { AvgPool(m, op, in, out) }
}

func (refEngine) bindMaxPool(m *graph.Model, op *graph.Op, in, out []int8, _ *Scratch) func() {
	return func() { MaxPool(m, op, in, out) }
}
