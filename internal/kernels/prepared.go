package kernels

import (
	"unsafe"

	"micronets/internal/graph"
)

// PreparedModel is the immutable, model-derived kernel state for every op
// of a model: packed weight panels, zero-point-folded biases, depthwise
// weight prefix sums, and requantization multipliers. It depends only on
// the model (never on an arena), is never written after Prepare returns,
// and is therefore safe to share read-only across any number of
// concurrently invoking interpreters — one copy per model instead of one
// per pool replica. This is the TinyEngine-style split: prepare once,
// share the layout-specialized weights, keep only per-worker scratch
// private.
type PreparedModel struct {
	model *graph.Model
	ctxs  []*Ctx
	bytes int
}

// PrepareModel runs PrepareConv for every conv/dense/depthwise op of the
// model and freezes the result.
func PrepareModel(m *graph.Model) *PreparedModel {
	p := &PreparedModel{model: m, ctxs: make([]*Ctx, len(m.Ops))}
	for i, op := range m.Ops {
		switch op.Kind {
		case graph.OpConv2D, graph.OpDWConv2D, graph.OpDense:
			p.ctxs[i] = PrepareConv(m, op)
			p.bytes += p.ctxs[i].Bytes()
		}
	}
	return p
}

// Model returns the model this state was prepared for.
func (p *PreparedModel) Model() *graph.Model { return p.model }

// Ctx returns op i's prepared kernel context (nil for ops that need
// none). Callers must treat it as read-only.
func (p *PreparedModel) Ctx(i int) *Ctx { return p.ctxs[i] }

// Bytes is the RAM footprint of the prepared state: packed panels,
// folded biases, prefix sums, and multipliers summed over all ops. With
// sharing this is paid once per model; without it, once per replica.
func (p *PreparedModel) Bytes() int { return p.bytes }

// Bytes is the RAM footprint of one op's prepared context.
func (c *Ctx) Bytes() int {
	return len(c.PackedW) +
		4*len(c.ZpBias) +
		4*len(c.DWSumPrefix) +
		int(unsafe.Sizeof(QuantizedMultiplier{}))*len(c.Mults)
}
