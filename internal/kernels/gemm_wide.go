package kernels

import (
	"micronets/internal/graph"
)

// The Wide engine's microkernels: the same 4×4 accumulator block and
// packed-panel layout as the scalar kernel in gemm.go, with the
// reduction loop unrolled 16 deep. The explicit 16-element reslices give
// the compiler constant-length slices, so every load in the unrolled
// body is bounds-check-free — that, plus the 8× fewer loop branches, is
// where the win comes from. int32 accumulation wraps identically in any
// order, so outputs stay bit-exact with Reference and Gemm (the fuzz
// parity targets enforce it).

// gemmStoreRowsWide is the 16-wide variant of gemmStoreRows.
func gemmStoreRowsWide(a []int8, rows, k int, ctx *Ctx, op *graph.Op, out []int8, m0, n int, outZp int32) {
	panels := (n + gemmNR - 1) / gemmNR
	var i int
	for i = 0; i+gemmMR <= rows; i += gemmMR {
		a0 := a[(i+0)*k : (i+0)*k+k : (i+0)*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k : (i+1)*k+k]
		a2 := a[(i+2)*k : (i+2)*k+k : (i+2)*k+k]
		a3 := a[(i+3)*k : (i+3)*k+k : (i+3)*k+k]
		for j := 0; j < panels; j++ {
			bp := ctx.PackedW[j*k*gemmNR : j*k*gemmNR+k*gemmNR : j*k*gemmNR+k*gemmNR]
			var c00, c01, c02, c03 int32
			var c10, c11, c12, c13 int32
			var c20, c21, c22, c23 int32
			var c30, c31, c32, c33 int32
			o := 0
			kk := 0
			for ; kk+16 <= k; kk, o = kk+16, o+16*gemmNR {
				bb := bp[o : o+16*gemmNR : o+16*gemmNR]
				x0 := a0[kk : kk+16 : kk+16]
				x1 := a1[kk : kk+16 : kk+16]
				x2 := a2[kk : kk+16 : kk+16]
				x3 := a3[kk : kk+16 : kk+16]
				b0, b1, b2, b3 := int32(bb[0]), int32(bb[1]), int32(bb[2]), int32(bb[3])
				d0, d1, d2, d3 := int32(bb[4]), int32(bb[5]), int32(bb[6]), int32(bb[7])
				va, vb := int32(x0[0]), int32(x0[1])
				c00 += va*b0 + vb*d0
				c01 += va*b1 + vb*d1
				c02 += va*b2 + vb*d2
				c03 += va*b3 + vb*d3
				va, vb = int32(x1[0]), int32(x1[1])
				c10 += va*b0 + vb*d0
				c11 += va*b1 + vb*d1
				c12 += va*b2 + vb*d2
				c13 += va*b3 + vb*d3
				va, vb = int32(x2[0]), int32(x2[1])
				c20 += va*b0 + vb*d0
				c21 += va*b1 + vb*d1
				c22 += va*b2 + vb*d2
				c23 += va*b3 + vb*d3
				va, vb = int32(x3[0]), int32(x3[1])
				c30 += va*b0 + vb*d0
				c31 += va*b1 + vb*d1
				c32 += va*b2 + vb*d2
				c33 += va*b3 + vb*d3
				b0, b1, b2, b3 = int32(bb[8]), int32(bb[9]), int32(bb[10]), int32(bb[11])
				d0, d1, d2, d3 = int32(bb[12]), int32(bb[13]), int32(bb[14]), int32(bb[15])
				va, vb = int32(x0[2]), int32(x0[3])
				c00 += va*b0 + vb*d0
				c01 += va*b1 + vb*d1
				c02 += va*b2 + vb*d2
				c03 += va*b3 + vb*d3
				va, vb = int32(x1[2]), int32(x1[3])
				c10 += va*b0 + vb*d0
				c11 += va*b1 + vb*d1
				c12 += va*b2 + vb*d2
				c13 += va*b3 + vb*d3
				va, vb = int32(x2[2]), int32(x2[3])
				c20 += va*b0 + vb*d0
				c21 += va*b1 + vb*d1
				c22 += va*b2 + vb*d2
				c23 += va*b3 + vb*d3
				va, vb = int32(x3[2]), int32(x3[3])
				c30 += va*b0 + vb*d0
				c31 += va*b1 + vb*d1
				c32 += va*b2 + vb*d2
				c33 += va*b3 + vb*d3
				b0, b1, b2, b3 = int32(bb[16]), int32(bb[17]), int32(bb[18]), int32(bb[19])
				d0, d1, d2, d3 = int32(bb[20]), int32(bb[21]), int32(bb[22]), int32(bb[23])
				va, vb = int32(x0[4]), int32(x0[5])
				c00 += va*b0 + vb*d0
				c01 += va*b1 + vb*d1
				c02 += va*b2 + vb*d2
				c03 += va*b3 + vb*d3
				va, vb = int32(x1[4]), int32(x1[5])
				c10 += va*b0 + vb*d0
				c11 += va*b1 + vb*d1
				c12 += va*b2 + vb*d2
				c13 += va*b3 + vb*d3
				va, vb = int32(x2[4]), int32(x2[5])
				c20 += va*b0 + vb*d0
				c21 += va*b1 + vb*d1
				c22 += va*b2 + vb*d2
				c23 += va*b3 + vb*d3
				va, vb = int32(x3[4]), int32(x3[5])
				c30 += va*b0 + vb*d0
				c31 += va*b1 + vb*d1
				c32 += va*b2 + vb*d2
				c33 += va*b3 + vb*d3
				b0, b1, b2, b3 = int32(bb[24]), int32(bb[25]), int32(bb[26]), int32(bb[27])
				d0, d1, d2, d3 = int32(bb[28]), int32(bb[29]), int32(bb[30]), int32(bb[31])
				va, vb = int32(x0[6]), int32(x0[7])
				c00 += va*b0 + vb*d0
				c01 += va*b1 + vb*d1
				c02 += va*b2 + vb*d2
				c03 += va*b3 + vb*d3
				va, vb = int32(x1[6]), int32(x1[7])
				c10 += va*b0 + vb*d0
				c11 += va*b1 + vb*d1
				c12 += va*b2 + vb*d2
				c13 += va*b3 + vb*d3
				va, vb = int32(x2[6]), int32(x2[7])
				c20 += va*b0 + vb*d0
				c21 += va*b1 + vb*d1
				c22 += va*b2 + vb*d2
				c23 += va*b3 + vb*d3
				va, vb = int32(x3[6]), int32(x3[7])
				c30 += va*b0 + vb*d0
				c31 += va*b1 + vb*d1
				c32 += va*b2 + vb*d2
				c33 += va*b3 + vb*d3
				b0, b1, b2, b3 = int32(bb[32]), int32(bb[33]), int32(bb[34]), int32(bb[35])
				d0, d1, d2, d3 = int32(bb[36]), int32(bb[37]), int32(bb[38]), int32(bb[39])
				va, vb = int32(x0[8]), int32(x0[9])
				c00 += va*b0 + vb*d0
				c01 += va*b1 + vb*d1
				c02 += va*b2 + vb*d2
				c03 += va*b3 + vb*d3
				va, vb = int32(x1[8]), int32(x1[9])
				c10 += va*b0 + vb*d0
				c11 += va*b1 + vb*d1
				c12 += va*b2 + vb*d2
				c13 += va*b3 + vb*d3
				va, vb = int32(x2[8]), int32(x2[9])
				c20 += va*b0 + vb*d0
				c21 += va*b1 + vb*d1
				c22 += va*b2 + vb*d2
				c23 += va*b3 + vb*d3
				va, vb = int32(x3[8]), int32(x3[9])
				c30 += va*b0 + vb*d0
				c31 += va*b1 + vb*d1
				c32 += va*b2 + vb*d2
				c33 += va*b3 + vb*d3
				b0, b1, b2, b3 = int32(bb[40]), int32(bb[41]), int32(bb[42]), int32(bb[43])
				d0, d1, d2, d3 = int32(bb[44]), int32(bb[45]), int32(bb[46]), int32(bb[47])
				va, vb = int32(x0[10]), int32(x0[11])
				c00 += va*b0 + vb*d0
				c01 += va*b1 + vb*d1
				c02 += va*b2 + vb*d2
				c03 += va*b3 + vb*d3
				va, vb = int32(x1[10]), int32(x1[11])
				c10 += va*b0 + vb*d0
				c11 += va*b1 + vb*d1
				c12 += va*b2 + vb*d2
				c13 += va*b3 + vb*d3
				va, vb = int32(x2[10]), int32(x2[11])
				c20 += va*b0 + vb*d0
				c21 += va*b1 + vb*d1
				c22 += va*b2 + vb*d2
				c23 += va*b3 + vb*d3
				va, vb = int32(x3[10]), int32(x3[11])
				c30 += va*b0 + vb*d0
				c31 += va*b1 + vb*d1
				c32 += va*b2 + vb*d2
				c33 += va*b3 + vb*d3
				b0, b1, b2, b3 = int32(bb[48]), int32(bb[49]), int32(bb[50]), int32(bb[51])
				d0, d1, d2, d3 = int32(bb[52]), int32(bb[53]), int32(bb[54]), int32(bb[55])
				va, vb = int32(x0[12]), int32(x0[13])
				c00 += va*b0 + vb*d0
				c01 += va*b1 + vb*d1
				c02 += va*b2 + vb*d2
				c03 += va*b3 + vb*d3
				va, vb = int32(x1[12]), int32(x1[13])
				c10 += va*b0 + vb*d0
				c11 += va*b1 + vb*d1
				c12 += va*b2 + vb*d2
				c13 += va*b3 + vb*d3
				va, vb = int32(x2[12]), int32(x2[13])
				c20 += va*b0 + vb*d0
				c21 += va*b1 + vb*d1
				c22 += va*b2 + vb*d2
				c23 += va*b3 + vb*d3
				va, vb = int32(x3[12]), int32(x3[13])
				c30 += va*b0 + vb*d0
				c31 += va*b1 + vb*d1
				c32 += va*b2 + vb*d2
				c33 += va*b3 + vb*d3
				b0, b1, b2, b3 = int32(bb[56]), int32(bb[57]), int32(bb[58]), int32(bb[59])
				d0, d1, d2, d3 = int32(bb[60]), int32(bb[61]), int32(bb[62]), int32(bb[63])
				va, vb = int32(x0[14]), int32(x0[15])
				c00 += va*b0 + vb*d0
				c01 += va*b1 + vb*d1
				c02 += va*b2 + vb*d2
				c03 += va*b3 + vb*d3
				va, vb = int32(x1[14]), int32(x1[15])
				c10 += va*b0 + vb*d0
				c11 += va*b1 + vb*d1
				c12 += va*b2 + vb*d2
				c13 += va*b3 + vb*d3
				va, vb = int32(x2[14]), int32(x2[15])
				c20 += va*b0 + vb*d0
				c21 += va*b1 + vb*d1
				c22 += va*b2 + vb*d2
				c23 += va*b3 + vb*d3
				va, vb = int32(x3[14]), int32(x3[15])
				c30 += va*b0 + vb*d0
				c31 += va*b1 + vb*d1
				c32 += va*b2 + vb*d2
				c33 += va*b3 + vb*d3
			}
			for ; kk < k; kk++ {
				b0, b1, b2, b3 := int32(bp[o]), int32(bp[o+1]), int32(bp[o+2]), int32(bp[o+3])
				o += gemmNR
				va := int32(a0[kk])
				c00 += va * b0
				c01 += va * b1
				c02 += va * b2
				c03 += va * b3
				va = int32(a1[kk])
				c10 += va * b0
				c11 += va * b1
				c12 += va * b2
				c13 += va * b3
				va = int32(a2[kk])
				c20 += va * b0
				c21 += va * b1
				c22 += va * b2
				c23 += va * b3
				va = int32(a3[kk])
				c30 += va * b0
				c31 += va * b1
				c32 += va * b2
				c33 += va * b3
			}
			accs := [gemmMR][gemmNR]int32{
				{c00, c01, c02, c03},
				{c10, c11, c12, c13},
				{c20, c21, c22, c23},
				{c30, c31, c32, c33},
			}
			for r := 0; r < gemmMR; r++ {
				outRow := out[(m0+i+r)*n : (m0+i+r)*n+n]
				for cc := 0; cc < gemmNR; cc++ {
					col := j*gemmNR + cc
					if col >= n {
						break
					}
					acc := accs[r][cc] + ctx.ZpBias[col]
					v := ctx.Mults[col].Apply(acc) + outZp
					outRow[col] = int8(clamp32(v, op.ClampMin, op.ClampMax))
				}
			}
		}
	}
	gemmStoreTailRows(a, i, rows, k, ctx, op, out, m0, n, outZp)
}

// gemmDensePanelsWide is the 16-wide variant of gemmDensePanels.
func gemmDensePanelsWide(ctx *Ctx, op *graph.Op, in, out []int8, n, k int, outZp int32, lo, hi int) {
	for j := lo; j < hi; j++ {
		bp := ctx.PackedW[j*k*gemmNR : j*k*gemmNR+k*gemmNR : j*k*gemmNR+k*gemmNR]
		var c0, c1, c2, c3 int32
		o := 0
		kk := 0
		for ; kk+16 <= k; kk, o = kk+16, o+16*gemmNR {
			bb := bp[o : o+16*gemmNR : o+16*gemmNR]
			xv := in[kk : kk+16 : kk+16]
			va := int32(xv[0])
			c0 += va * int32(bb[0])
			c1 += va * int32(bb[1])
			c2 += va * int32(bb[2])
			c3 += va * int32(bb[3])
			va = int32(xv[1])
			c0 += va * int32(bb[4])
			c1 += va * int32(bb[5])
			c2 += va * int32(bb[6])
			c3 += va * int32(bb[7])
			va = int32(xv[2])
			c0 += va * int32(bb[8])
			c1 += va * int32(bb[9])
			c2 += va * int32(bb[10])
			c3 += va * int32(bb[11])
			va = int32(xv[3])
			c0 += va * int32(bb[12])
			c1 += va * int32(bb[13])
			c2 += va * int32(bb[14])
			c3 += va * int32(bb[15])
			va = int32(xv[4])
			c0 += va * int32(bb[16])
			c1 += va * int32(bb[17])
			c2 += va * int32(bb[18])
			c3 += va * int32(bb[19])
			va = int32(xv[5])
			c0 += va * int32(bb[20])
			c1 += va * int32(bb[21])
			c2 += va * int32(bb[22])
			c3 += va * int32(bb[23])
			va = int32(xv[6])
			c0 += va * int32(bb[24])
			c1 += va * int32(bb[25])
			c2 += va * int32(bb[26])
			c3 += va * int32(bb[27])
			va = int32(xv[7])
			c0 += va * int32(bb[28])
			c1 += va * int32(bb[29])
			c2 += va * int32(bb[30])
			c3 += va * int32(bb[31])
			va = int32(xv[8])
			c0 += va * int32(bb[32])
			c1 += va * int32(bb[33])
			c2 += va * int32(bb[34])
			c3 += va * int32(bb[35])
			va = int32(xv[9])
			c0 += va * int32(bb[36])
			c1 += va * int32(bb[37])
			c2 += va * int32(bb[38])
			c3 += va * int32(bb[39])
			va = int32(xv[10])
			c0 += va * int32(bb[40])
			c1 += va * int32(bb[41])
			c2 += va * int32(bb[42])
			c3 += va * int32(bb[43])
			va = int32(xv[11])
			c0 += va * int32(bb[44])
			c1 += va * int32(bb[45])
			c2 += va * int32(bb[46])
			c3 += va * int32(bb[47])
			va = int32(xv[12])
			c0 += va * int32(bb[48])
			c1 += va * int32(bb[49])
			c2 += va * int32(bb[50])
			c3 += va * int32(bb[51])
			va = int32(xv[13])
			c0 += va * int32(bb[52])
			c1 += va * int32(bb[53])
			c2 += va * int32(bb[54])
			c3 += va * int32(bb[55])
			va = int32(xv[14])
			c0 += va * int32(bb[56])
			c1 += va * int32(bb[57])
			c2 += va * int32(bb[58])
			c3 += va * int32(bb[59])
			va = int32(xv[15])
			c0 += va * int32(bb[60])
			c1 += va * int32(bb[61])
			c2 += va * int32(bb[62])
			c3 += va * int32(bb[63])
		}
		for ; kk < k; kk++ {
			va := int32(in[kk])
			c0 += va * int32(bp[o])
			c1 += va * int32(bp[o+1])
			c2 += va * int32(bp[o+2])
			c3 += va * int32(bp[o+3])
			o += gemmNR
		}
		for cc, acc := range [gemmNR]int32{c0, c1, c2, c3} {
			col := j*gemmNR + cc
			if col >= n {
				break
			}
			acc += ctx.ZpBias[col]
			v := ctx.Mults[col].Apply(acc) + outZp
			out[col] = int8(clamp32(v, op.ClampMin, op.ClampMax))
		}
	}
}
