package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"micronets/internal/graph"
)

func TestQuantizeMultiplierRoundTrip(t *testing.T) {
	for _, m := range []float64{0.00001, 0.004, 0.25, 0.5, 0.9999, 1.0, 1.7, 123.4} {
		q := QuantizeMultiplier(m)
		got := q.Float()
		if math.Abs(got-m) > 1e-6*m {
			t.Fatalf("QuantizeMultiplier(%v) represents %v", m, got)
		}
	}
}

func TestQuantizedMultiplierApplyMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		m := math.Exp(rng.Float64()*12 - 10) // 4.5e-5 .. ~7.4
		x := int32(rng.Intn(1<<20) - 1<<19)
		q := QuantizeMultiplier(m)
		got := q.Apply(x)
		want := math.Round(float64(x) * m)
		if math.Abs(float64(got)-want) > 1.01 {
			t.Fatalf("Apply(%d, m=%g) = %d, want ~%g", x, m, got, want)
		}
	}
}

func TestQuickApplyMonotone(t *testing.T) {
	q := QuantizeMultiplier(0.0042)
	f := func(a, b int32) bool {
		if a > b {
			a, b = b, a
		}
		// Avoid overflow range.
		a %= 1 << 24
		b %= 1 << 24
		if a > b {
			a, b = b, a
		}
		return q.Apply(a) <= q.Apply(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// tinyConvModel builds a 1-op conv model with hand-set quantization.
func tinyConvModel() *graph.Model {
	m := &graph.Model{Name: "tiny"}
	m.Tensors = []*graph.Tensor{
		{ID: 0, Name: "in", H: 3, W: 3, C: 1, Scale: 1, ZeroPoint: 0, Bits: 8},
		{ID: 1, Name: "out", H: 3, W: 3, C: 1, Scale: 1, ZeroPoint: 0, Bits: 8},
	}
	m.Ops = []*graph.Op{{
		Kind: graph.OpConv2D, Name: "conv", Inputs: []int{0}, Output: 1,
		KH: 3, KW: 3, SH: 1, SW: 1, PadTop: 1, PadLeft: 1, PadBottom: 1, PadRight: 1,
		Weights:      make([]int8, 9),
		WeightBits:   8,
		WeightScales: []float32{1},
		Bias:         []int32{0},
		ClampMin:     -128, ClampMax: 127,
	}}
	m.Input, m.Output = 0, 1
	return m
}

func TestConv2DIdentityKernel(t *testing.T) {
	m := tinyConvModel()
	m.Ops[0].Weights[4] = 1 // center tap: identity convolution
	in := []int8{1, 2, 3, 4, 5, 6, 7, 8, 9}
	out := make([]int8, 9)
	ctx := PrepareConv(m, m.Ops[0])
	Conv2D(m, m.Ops[0], ctx, in, out)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("identity conv: out[%d]=%d want %d", i, out[i], in[i])
		}
	}
}

func TestConv2DBiasAndClamp(t *testing.T) {
	m := tinyConvModel()
	m.Ops[0].Bias[0] = 100
	m.Ops[0].ClampMax = 50
	in := make([]int8, 9)
	out := make([]int8, 9)
	ctx := PrepareConv(m, m.Ops[0])
	Conv2D(m, m.Ops[0], ctx, in, out)
	for i := range out {
		if out[i] != 50 {
			t.Fatalf("clamped output = %d, want 50", out[i])
		}
	}
}

func TestConv2DZeroPointHandling(t *testing.T) {
	// With input zero point zp, feeding the all-zp input must produce
	// exactly the bias-only output.
	m := tinyConvModel()
	m.Tensors[0].ZeroPoint = -128
	m.Ops[0].Weights = []int8{1, 2, 3, 4, 5, 6, 7, 8, 9}
	m.Ops[0].Bias[0] = 7
	in := make([]int8, 9)
	for i := range in {
		in[i] = -128 // quantized zero
	}
	out := make([]int8, 9)
	ctx := PrepareConv(m, m.Ops[0])
	Conv2D(m, m.Ops[0], ctx, in, out)
	for i := range out {
		if out[i] != 7 {
			t.Fatalf("zero-input conv out=%d, want bias 7", out[i])
		}
	}
}

func TestDenseMatchesManual(t *testing.T) {
	m := &graph.Model{Name: "fc"}
	m.Tensors = []*graph.Tensor{
		{ID: 0, Name: "in", H: 1, W: 1, C: 3, Scale: 0.5, ZeroPoint: 0, Bits: 8},
		{ID: 1, Name: "out", H: 1, W: 1, C: 2, Scale: 1, ZeroPoint: 0, Bits: 8},
	}
	m.Ops = []*graph.Op{{
		Kind: graph.OpDense, Name: "fc", Inputs: []int{0}, Output: 1,
		Weights:      []int8{1, 0, 0, 1, 1, 1}, // [in=3][out=2]
		WeightBits:   8,
		WeightScales: []float32{1, 1},
		Bias:         []int32{0, 2},
		ClampMin:     -128, ClampMax: 127,
	}}
	m.Input, m.Output = 0, 1
	in := []int8{2, 4, 6}
	out := make([]int8, 2)
	ctx := PrepareConv(m, m.Ops[0])
	Dense(m, m.Ops[0], ctx, in, out)
	// acc0 = 2*1+4*0+6*1 = 8; real = 8*0.5*1/1 = 4
	// acc1 = 2*0+4*1+6*1+2 = 12; real = 6
	if out[0] != 4 || out[1] != 6 {
		t.Fatalf("dense out = %v, want [4 6]", out)
	}
}

func TestAvgPoolRounding(t *testing.T) {
	m := &graph.Model{Name: "pool"}
	m.Tensors = []*graph.Tensor{
		{ID: 0, Name: "in", H: 2, W: 2, C: 1, Scale: 1, ZeroPoint: 0, Bits: 8},
		{ID: 1, Name: "out", H: 1, W: 1, C: 1, Scale: 1, ZeroPoint: 0, Bits: 8},
	}
	m.Ops = []*graph.Op{{
		Kind: graph.OpAvgPool, Name: "pool", Inputs: []int{0}, Output: 1,
		KH: 2, KW: 2, SH: 2, SW: 2, ClampMin: -128, ClampMax: 127,
	}}
	in := []int8{1, 2, 2, 2} // avg 1.75 -> rounds to 2
	out := make([]int8, 1)
	AvgPool(m, m.Ops[0], in, out)
	if out[0] != 2 {
		t.Fatalf("avgpool = %d, want 2", out[0])
	}
	in = []int8{-1, -2, -2, -2} // avg -1.75 -> -2
	AvgPool(m, m.Ops[0], in, out)
	if out[0] != -2 {
		t.Fatalf("avgpool = %d, want -2", out[0])
	}
}

func TestSoftmaxDistribution(t *testing.T) {
	m := &graph.Model{Name: "sm"}
	m.Tensors = []*graph.Tensor{
		{ID: 0, Name: "in", H: 1, W: 1, C: 4, Scale: 0.1, ZeroPoint: 0, Bits: 8},
		{ID: 1, Name: "out", H: 1, W: 1, C: 4, Scale: 1.0 / 256, ZeroPoint: -128, Bits: 8},
	}
	m.Ops = []*graph.Op{{
		Kind: graph.OpSoftmax, Name: "sm", Inputs: []int{0}, Output: 1,
		ClampMin: -128, ClampMax: 127,
	}}
	in := []int8{10, 20, 5, 0}
	out := make([]int8, 4)
	Softmax(m, m.Ops[0], in, out)
	// Probabilities sum to ~1 (within quantization), argmax preserved.
	var sum float64
	best := 0
	for i, q := range out {
		p := float64(int32(q)+128) / 256
		sum += p
		if out[i] > out[best] {
			best = i
		}
	}
	if math.Abs(sum-1) > 0.05 {
		t.Fatalf("softmax sums to %v", sum)
	}
	if best != 1 {
		t.Fatalf("softmax argmax = %d, want 1", best)
	}
}

func TestAddRescales(t *testing.T) {
	m := &graph.Model{Name: "add"}
	m.Tensors = []*graph.Tensor{
		{ID: 0, Name: "a", H: 1, W: 1, C: 2, Scale: 0.5, ZeroPoint: 0, Bits: 8},
		{ID: 1, Name: "b", H: 1, W: 1, C: 2, Scale: 0.25, ZeroPoint: 0, Bits: 8},
		{ID: 2, Name: "out", H: 1, W: 1, C: 2, Scale: 1, ZeroPoint: 0, Bits: 8},
	}
	m.Ops = []*graph.Op{{
		Kind: graph.OpAdd, Name: "add", Inputs: []int{0, 1}, Output: 2,
		ClampMin: -128, ClampMax: 127,
	}}
	a := []int8{4, 8} // real: 2, 4
	b := []int8{8, 4} // real: 2, 1
	out := make([]int8, 2)
	Add(m, m.Ops[0], a, b, out)
	if out[0] != 4 || out[1] != 5 { // real 4 and 5 at scale 1
		t.Fatalf("add = %v, want [4 5]", out)
	}
}

func TestRunRejectsTransposedConv(t *testing.T) {
	m := tinyConvModel()
	m.Ops[0].Kind = graph.OpTransposedConv
	bufs := [][]int8{make([]int8, 9), make([]int8, 9)}
	if err := Run(m, m.Ops[0], nil, bufs); err == nil {
		t.Fatal("transposed conv must be rejected by the runtime")
	}
}
