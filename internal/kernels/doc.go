// Package kernels implements the int8 (and emulated int4) reference
// operator kernels used by the tflm interpreter — the reproduction of the
// CMSIS-NN kernel layer, including its fixed-point requantization scheme
// and the sub-byte kernels the paper adds in §5.1.3.
//
// Two interchangeable engines implement the same operator contract: a
// straightforward reference engine (the correctness oracle) and a
// GEMM-lowered engine that im2cols convolutions into matrix multiplies.
// Both produce bit-identical outputs; cmd/bench -exp engine tracks the
// speedup.
package kernels
