package kernels

import (
	"runtime"
	"sync"
)

// The host-side kernels parallelize across a fixed pool of
// runtime.NumCPU() worker goroutines. A shared pool (rather than
// per-call goroutine spawning) keeps per-op dispatch overhead low enough
// that even the small KWS layers benefit, and bounds the number of
// concurrently live im2col scratch tiles so the tflm planner can account
// for them up front.
//
// Dispatch is allocation-free: workers consume fixed-size chunkTask
// values from a buffered channel and call back into the Parallel that
// issued them. Together with once-bound op closures (see exec.go) this
// is what makes a warm Interpreter.Invoke report zero allocations.

var (
	poolOnce sync.Once
	poolSize int
	tasks    chan chunkTask
)

// chunkTask is one chunk of a fork-join loop, dispatched by value so
// issuing work allocates nothing.
type chunkTask struct {
	p      *Parallel
	chunk  int
	lo, hi int
}

//microvet:hotpath-stop one-time worker-pool construction behind poolOnce; never re-runs on the serve path
func initPool() {
	poolSize = runtime.NumCPU()
	if poolSize < 1 {
		poolSize = 1
	}
	tasks = make(chan chunkTask, 4*poolSize)
	for i := 0; i < poolSize; i++ {
		go func() {
			for t := range tasks {
				t.p.fn(t.chunk, t.lo, t.hi)
				t.p.wg.Done()
			}
		}()
	}
}

// Workers returns the size of the kernel worker pool. Parallel.For never
// splits a loop into more than this many chunks, which is what lets
// ScratchBytes size the im2col region as Workers() scratch tiles.
func Workers() int {
	poolOnce.Do(initPool)
	return poolSize
}

// Parallel is a reusable fork-join context. One loop runs at a time per
// Parallel; distinct Parallel values (one per interpreter scratch, or a
// local in the compatibility ParallelFor) may fork concurrently. Reusing
// the same value across calls keeps the WaitGroup and the fn slot off
// the per-invoke allocation path.
type Parallel struct {
	fn func(chunk, lo, hi int)
	wg sync.WaitGroup
}

// For splits [0, n) into at most Workers() contiguous chunks of at least
// minGrain iterations each and runs fn(chunk, lo, hi) for every chunk,
// returning when all chunks are done. Chunk indices are dense in
// [0, Workers()), so callers may use them to claim disjoint scratch
// regions. Small loops (or a single-CPU pool) run inline on the calling
// goroutine with chunk 0. When fn is a closure that outlives the call
// (bound once, invoked many times), For performs no allocations.
func (p *Parallel) For(n, minGrain int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	if minGrain < 1 {
		minGrain = 1
	}
	chunks := Workers()
	if c := (n + minGrain - 1) / minGrain; c < chunks {
		chunks = c
	}
	if chunks <= 1 {
		fn(0, 0, n)
		return
	}
	size := (n + chunks - 1) / chunks
	p.fn = fn
	for c := 1; c < chunks; c++ {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		p.wg.Add(1)
		select {
		case tasks <- chunkTask{p: p, chunk: c, lo: lo, hi: hi}:
		default:
			// Pool backed up (e.g. concurrent interpreters): run inline
			// rather than blocking; chunk ids stay disjoint either way.
			fn(c, lo, hi)
			p.wg.Done()
		}
	}
	fn(0, 0, size)
	p.wg.Wait()
	p.fn = nil
}

// ParallelFor is the one-shot form of Parallel.For for callers without a
// persistent Parallel. It may allocate (the transient context escapes to
// the worker pool); hot paths hold a Parallel instead.
func ParallelFor(n, minGrain int, fn func(chunk, lo, hi int)) {
	var p Parallel
	p.For(n, minGrain, fn)
}
