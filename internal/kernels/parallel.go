package kernels

import (
	"runtime"
	"sync"
)

// The host-side kernels parallelize across a fixed pool of
// runtime.NumCPU() worker goroutines. A shared pool (rather than
// per-call goroutine spawning) keeps per-op dispatch overhead low enough
// that even the small KWS layers benefit, and bounds the number of
// concurrently live im2col scratch tiles so the tflm planner can account
// for them up front.

var (
	poolOnce sync.Once
	poolSize int
	tasks    chan func()
)

func initPool() {
	poolSize = runtime.NumCPU()
	if poolSize < 1 {
		poolSize = 1
	}
	tasks = make(chan func(), 4*poolSize)
	for i := 0; i < poolSize; i++ {
		go func() {
			for f := range tasks {
				f()
			}
		}()
	}
}

// Workers returns the size of the kernel worker pool. ParallelFor never
// splits a loop into more than this many chunks, which is what lets
// ScratchBytes size the im2col region as Workers() scratch tiles.
func Workers() int {
	poolOnce.Do(initPool)
	return poolSize
}

// ParallelFor splits [0, n) into at most Workers() contiguous chunks of
// at least minGrain iterations each and runs fn(chunk, lo, hi) for every
// chunk, returning when all chunks are done. Chunk indices are dense in
// [0, Workers()), so callers may use them to claim disjoint scratch
// regions. Small loops (or a single-CPU pool) run inline on the calling
// goroutine with chunk 0.
func ParallelFor(n, minGrain int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	if minGrain < 1 {
		minGrain = 1
	}
	chunks := Workers()
	if c := (n + minGrain - 1) / minGrain; c < chunks {
		chunks = c
	}
	if chunks <= 1 {
		fn(0, 0, n)
		return
	}
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for c := 1; c < chunks; c++ {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		c := c
		wg.Add(1)
		task := func() {
			defer wg.Done()
			fn(c, lo, hi)
		}
		select {
		case tasks <- task:
		default:
			// Pool backed up (e.g. concurrent interpreters): run inline
			// rather than blocking; chunk ids stay disjoint either way.
			task()
		}
	}
	fn(0, 0, size)
	wg.Wait()
}
