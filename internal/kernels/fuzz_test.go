package kernels

import (
	"math"
	"math/rand"
	"testing"

	"micronets/internal/graph"
	"micronets/internal/tensor"
)

// Native Go fuzz harnesses over the lower→invoke numerics. The invariant
// throughout is the one the whole engine rests on: the optimized Gemm
// path must be bit-exact with the Reference loops for every reachable
// shape, stride, padding, zero point and data pattern — not just the
// table-driven cases in parity_test.go. Run continuously with
//
//	go test -fuzz FuzzConv2DParity -fuzztime 30s ./internal/kernels
//
// CI runs each target for a short smoke window (see .github/workflows).

// fuzzDims clamps fuzzed geometry into the envelope the runtime actually
// lowers (and keeps per-exec cost small enough to get useful throughput).
func fuzzDims(h, w, inC, outC, kh, kw, stride uint8) (int, int, int, int, int, int, int) {
	return 1 + int(h%14), 1 + int(w%14), 1 + int(inC%17), 1 + int(outC%17),
		1 + int(kh%5), 1 + int(kw%5), 1 + int(stride%3)
}

// buildConvCase constructs a valid single-op conv/dwconv model from
// fuzzed raw values, or nil when the combination has no valid output
// geometry.
func buildConvCase(kind graph.OpKind, h, w, inC, outC, kh, kw, stride uint8, same bool, inZp int8, dataSeed int64) (*graph.Model, []int8) {
	H, W, IC, OC, KH, KW, S := fuzzDims(h, w, inC, outC, kh, kw, stride)
	var padT, padL, padB, padR int
	if same {
		spec := tensor.Same(KH, KW, S, S, H, W)
		padT, padL, padB, padR = spec.PadTop, spec.PadLeft, spec.PadBottom, spec.PadRight
	}
	oh := (H+padT+padB-KH)/S + 1
	ow := (W+padL+padR-KW)/S + 1
	if oh < 1 || ow < 1 {
		return nil, nil
	}
	if kind == graph.OpDWConv2D {
		OC = IC
	}
	rng := rand.New(rand.NewSource(dataSeed))
	nW := KH * KW * IC * OC
	if kind == graph.OpDWConv2D {
		nW = KH * KW * OC
	}
	m := &graph.Model{Name: "fuzz"}
	m.Tensors = []*graph.Tensor{
		{ID: 0, Name: "in", H: H, W: W, C: IC, Scale: 0.05, ZeroPoint: int32(inZp), Bits: 8},
		{ID: 1, Name: "out", H: oh, W: ow, C: OC, Scale: 0.1, ZeroPoint: -3, Bits: 8},
	}
	op := &graph.Op{
		Kind: kind, Name: "op", Inputs: []int{0}, Output: 1,
		KH: KH, KW: KW, SH: S, SW: S,
		PadTop: padT, PadLeft: padL, PadBottom: padB, PadRight: padR,
		Weights: make([]int8, nW), WeightBits: 8,
		WeightScales: make([]float32, OC), Bias: make([]int32, OC),
		ClampMin: -128, ClampMax: 127,
	}
	for i := range op.Weights {
		op.Weights[i] = int8(rng.Intn(256) - 128)
	}
	for i := 0; i < OC; i++ {
		op.WeightScales[i] = 0.005 + 0.05*rng.Float32()
		op.Bias[i] = int32(rng.Intn(4096) - 2048)
	}
	m.Ops = []*graph.Op{op}
	m.Input, m.Output = 0, 1
	in := make([]int8, H*W*IC)
	for i := range in {
		in[i] = int8(rng.Intn(256) - 128)
	}
	return m, in
}

func FuzzConv2DParity(f *testing.F) {
	// Seed corpus: the pointwise fast path, strided im2col, asymmetric
	// same-padding, the div-4 channel boundary, and extreme zero points.
	f.Add(uint8(8), uint8(8), uint8(8), uint8(16), uint8(1), uint8(1), uint8(1), false, int8(0), int64(1))
	f.Add(uint8(9), uint8(9), uint8(3), uint8(5), uint8(3), uint8(3), uint8(2), true, int8(-128), int64(2))
	f.Add(uint8(13), uint8(5), uint8(4), uint8(12), uint8(5), uint8(3), uint8(2), true, int8(127), int64(3))
	f.Add(uint8(12), uint8(12), uint8(7), uint8(21), uint8(3), uint8(3), uint8(1), true, int8(33), int64(4))
	f.Fuzz(func(t *testing.T, h, w, inC, outC, kh, kw, stride uint8, same bool, inZp int8, dataSeed int64) {
		m, in := buildConvCase(graph.OpConv2D, h, w, inC, outC, kh, kw, stride, same, inZp, dataSeed)
		if m == nil {
			t.Skip()
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("fuzz built invalid model: %v", err)
		}
		ctx := PrepareConv(m, m.Ops[0])
		want := make([]int8, m.Tensors[1].Elems())
		got := make([]int8, m.Tensors[1].Elems())
		Reference.Conv2D(m, m.Ops[0], ctx, in, want, nil)
		for _, eng := range []Engine{Gemm, Wide} {
			for i := range got {
				got[i] = 0
			}
			eng.Conv2D(m, m.Ops[0], ctx, in, got, nil)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("conv parity: out[%d] %s=%d reference=%d (op %+v)", i, eng.Name(), got[i], want[i], m.Ops[0])
				}
			}
		}
	})
}

func FuzzDWConv2DParity(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint8(8), uint8(0), uint8(3), uint8(3), uint8(1), true, int8(-128), int64(1))
	f.Add(uint8(10), uint8(10), uint8(5), uint8(0), uint8(3), uint8(3), uint8(2), true, int8(4), int64(2))
	f.Add(uint8(5), uint8(5), uint8(1), uint8(0), uint8(5), uint8(5), uint8(1), false, int8(0), int64(3))
	f.Fuzz(func(t *testing.T, h, w, inC, outC, kh, kw, stride uint8, same bool, inZp int8, dataSeed int64) {
		m, in := buildConvCase(graph.OpDWConv2D, h, w, inC, outC, kh, kw, stride, same, inZp, dataSeed)
		if m == nil {
			t.Skip()
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("fuzz built invalid model: %v", err)
		}
		ctx := PrepareConv(m, m.Ops[0])
		want := make([]int8, m.Tensors[1].Elems())
		got := make([]int8, m.Tensors[1].Elems())
		Reference.DWConv2D(m, m.Ops[0], ctx, in, want)
		for _, eng := range []Engine{Gemm, Wide} {
			for i := range got {
				got[i] = 0
			}
			eng.DWConv2D(m, m.Ops[0], ctx, in, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("dwconv parity: out[%d] %s=%d reference=%d (op %+v)", i, eng.Name(), got[i], want[i], m.Ops[0])
				}
			}
		}
	})
}

func FuzzDenseParity(f *testing.F) {
	f.Add(uint16(1), uint16(1), int8(0), int64(1))
	f.Add(uint16(127), uint16(33), int8(5), int64(2))
	f.Add(uint16(256), uint16(5), int8(-128), int64(3))
	f.Fuzz(func(t *testing.T, nIn, nOut uint16, inZp int8, dataSeed int64) {
		IN, OUT := 1+int(nIn%512), 1+int(nOut%64)
		rng := rand.New(rand.NewSource(dataSeed))
		m := &graph.Model{Name: "fuzz-fc"}
		m.Tensors = []*graph.Tensor{
			{ID: 0, Name: "in", H: 1, W: 1, C: IN, Scale: 0.1, ZeroPoint: int32(inZp), Bits: 8},
			{ID: 1, Name: "out", H: 1, W: 1, C: OUT, Scale: 0.2, ZeroPoint: -1, Bits: 8},
		}
		op := &graph.Op{
			Kind: graph.OpDense, Name: "fc", Inputs: []int{0}, Output: 1,
			Weights: make([]int8, IN*OUT), WeightBits: 8,
			WeightScales: make([]float32, OUT), Bias: make([]int32, OUT),
			ClampMin: -128, ClampMax: 127,
		}
		for i := range op.Weights {
			op.Weights[i] = int8(rng.Intn(256) - 128)
		}
		for i := 0; i < OUT; i++ {
			op.WeightScales[i] = 0.01 + 0.04*rng.Float32()
			op.Bias[i] = int32(rng.Intn(1024) - 512)
		}
		m.Ops = []*graph.Op{op}
		m.Input, m.Output = 0, 1
		in := make([]int8, IN)
		for i := range in {
			in[i] = int8(rng.Intn(256) - 128)
		}
		ctx := PrepareConv(m, op)
		want := make([]int8, OUT)
		got := make([]int8, OUT)
		Reference.Dense(m, op, ctx, in, want)
		for _, eng := range []Engine{Gemm, Wide} {
			for i := range got {
				got[i] = 0
			}
			eng.Dense(m, op, ctx, in, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("dense parity: out[%d] %s=%d reference=%d (in=%d out=%d zp=%d)", i, eng.Name(), got[i], want[i], IN, OUT, inZp)
				}
			}
		}
	})
}

// FuzzRequantize fuzzes the fixed-point requantization pipeline over
// multiplier/shift edge cases: the Q31 mantissa must represent the real
// multiplier to Q31 precision, and the pure-integer Apply must agree with
// the real-arithmetic product to within the two roundings it performs
// (saturating-doubling-high-mul, then rounding-divide-by-power-of-two).
func FuzzRequantize(f *testing.F) {
	// Edge seeds: exact powers of two (mantissa exactly 0.5), the
	// round-up-to-1.0 overflow path inside QuantizeMultiplier, typical
	// conv effective scales (~1e-3), tiny and large multipliers, and
	// extreme accumulators.
	f.Add(0.5, int32(1))
	f.Add(1.0, int32(-1))
	f.Add(0.9999999999, int32(1<<30))
	f.Add(2.3283064365386963e-10, int32(1<<30)) // 2^-32: deep right shift
	f.Add(0.000728, int32(123456))
	f.Add(7.5, int32(-98765))
	f.Add(0.0, int32(42))
	f.Fuzz(func(t *testing.T, m float64, x int32) {
		if math.IsNaN(m) || math.IsInf(m, 0) {
			t.Skip()
		}
		q := QuantizeMultiplier(m)
		if m <= 0 {
			if q.M0 != 0 || q.Shift != 0 {
				t.Fatalf("non-positive multiplier %v must quantize to zero, got %+v", m, q)
			}
			if got := q.Apply(x); got != 0 {
				t.Fatalf("zero multiplier applied to %d gave %d", x, got)
			}
			return
		}
		// Keep the domain where the scheme is defined: TFLite multipliers
		// are effective scales, far below the saturation regime.
		if m < 1e-15 || m > 1e15 {
			t.Skip()
		}
		if q.M0 < 1<<30 || q.Shift < -62 || q.Shift > 62 {
			t.Fatalf("multiplier %v quantized outside Q31 normal form: %+v", m, q)
		}
		// Mantissa precision: the represented value matches to ~2^-31 rel.
		if rel := math.Abs(q.Float()-m) / m; rel > 1e-9 {
			t.Fatalf("multiplier %v represented as %v (rel err %v)", m, q.Float(), rel)
		}
		// Integer Apply vs real arithmetic, inside the non-saturating range.
		exact := float64(x) * m
		if math.Abs(exact) > float64(math.MaxInt32)/2 {
			t.Skip()
		}
		got := float64(q.Apply(x))
		if math.Abs(got-exact) > 1.0 {
			t.Fatalf("Apply(%d) with m=%v: got %v, want ~%v (err %v)", x, m, got, exact, math.Abs(got-exact))
		}
	})
}
