package kernels

import "math"

// QuantizedMultiplier is the fixed-point representation of a positive real
// multiplier m = m0 * 2^shift with m0 a Q31 value in [0.5, 1), exactly the
// TFLite/CMSIS-NN scheme.
type QuantizedMultiplier struct {
	M0    int32
	Shift int
}

// QuantizeMultiplier converts a double multiplier into fixed point.
func QuantizeMultiplier(m float64) QuantizedMultiplier {
	if m <= 0 {
		return QuantizedMultiplier{M0: 0, Shift: 0}
	}
	frac, exp := math.Frexp(m) // m = frac * 2^exp, frac in [0.5, 1)
	q := int64(math.Round(frac * (1 << 31)))
	if q == 1<<31 { // rounding overflow: 0.5 ulp above max
		q /= 2
		exp++
	}
	return QuantizedMultiplier{M0: int32(q), Shift: exp}
}

// Apply computes round(x * m) using only integer arithmetic, following
// TFLite's MultiplyByQuantizedMultiplier: an optional left shift, a
// saturating rounding doubling high multiply by the Q31 mantissa, then a
// rounding right shift.
func (q QuantizedMultiplier) Apply(x int32) int32 {
	leftShift, rightShift := 0, 0
	if q.Shift > 0 {
		leftShift = q.Shift
	} else {
		rightShift = -q.Shift
	}
	v := int64(x) << uint(leftShift)
	// SaturatingRoundingDoublingHighMul. The division must truncate toward
	// zero (as C++ '/' does in gemmlowp) — an arithmetic right shift floors
	// instead, which under-rounds negative products by one.
	prod := v * int64(q.M0)
	nudge := int64(1) << 30
	if prod < 0 {
		nudge = 1 - nudge
	}
	high := (prod + nudge) / (int64(1) << 31)
	if rightShift == 0 {
		return int32(high)
	}
	// RoundingDivideByPOT.
	mask := (int64(1) << uint(rightShift)) - 1
	remainder := high & mask
	threshold := mask >> 1
	if high < 0 {
		threshold++
	}
	res := high >> uint(rightShift)
	if remainder > threshold {
		res++
	}
	return int32(res)
}

// Float returns the real value the fixed-point multiplier represents;
// useful for tests.
func (q QuantizedMultiplier) Float() float64 {
	return float64(q.M0) / float64(int64(1)<<31) * math.Pow(2, float64(q.Shift))
}

func clamp32(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
