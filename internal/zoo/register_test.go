package zoo

import (
	"bytes"
	"reflect"
	"testing"

	"micronets/internal/arch"
)

func nasSpec(name string) *arch.Spec {
	return &arch.Spec{
		Name: name, Task: "kws", Source: "search",
		InputH: 49, InputW: 10, InputC: 1, NumClasses: 12,
		Blocks: []arch.Block{
			{Kind: arch.Conv, KH: 10, KW: 4, OutC: 32, Stride: 1},
			{Kind: arch.DSBlock, KH: 3, KW: 3, OutC: 32, Stride: 2},
			{Kind: arch.AvgPool, KH: 25, KW: 5, Stride: 1},
			{Kind: arch.Dense, OutC: 12},
		},
	}
}

func TestRegisterVisibleEverywhere(t *testing.T) {
	const name = "NAS-test-register"
	t.Cleanup(func() { Unregister(name) })
	if err := Register(&Entry{Name: name, Task: "kws", Spec: nasSpec(name)}); err != nil {
		t.Fatal(err)
	}
	if _, err := Get(name); err != nil {
		t.Fatalf("Get after Register: %v", err)
	}
	found := false
	for _, n := range ServableNames() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatal("registered model missing from ServableNames")
	}
	// Collisions with built-ins and name mismatches must be rejected.
	if err := Register(&Entry{Name: "MicroNet-KWS-S", Task: "kws", Spec: nasSpec("MicroNet-KWS-S")}); err == nil {
		t.Fatal("built-in collision must error")
	}
	if err := Register(&Entry{Name: "other", Task: "kws", Spec: nasSpec(name)}); err == nil {
		t.Fatal("name/spec mismatch must error")
	}
}

func TestSpecFileRoundTrip(t *testing.T) {
	f := &SpecFile{
		GeneratedBy: "test",
		Specs:       []*arch.Spec{nasSpec("NAS-test-roundtrip")},
		Notes:       map[string]string{"NAS-test-roundtrip": "frontier point"},
	}
	var buf bytes.Buffer
	if err := WriteSpecFile(&buf, f); err != nil {
		t.Fatal(err)
	}
	// Block kinds must serialize by name, not by integer constant.
	if !bytes.Contains(buf.Bytes(), []byte(`"DSBlock"`)) {
		t.Fatalf("spec file not human-readable: %s", buf.String())
	}
	got, err := ReadSpecFile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Specs[0], f.Specs[0]) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got.Specs[0], f.Specs[0])
	}
	if got.Notes["NAS-test-roundtrip"] == "" {
		t.Fatal("notes lost in round trip")
	}
}
