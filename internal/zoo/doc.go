// Package zoo catalogues the model architectures evaluated in the paper:
// the MicroNet family (Table 5, Figure 6), the DS-CNN and MobileNetV2
// baselines, the anomaly-detection autoencoders, and stats-only comparison
// points (ProxylessNAS, MSNet, MCUNet) whose exact architectures are not
// public — those carry the paper's published numbers and are marked
// Source: "paper".
//
// The catalogue is extensible at runtime: cmd/search exports frontier
// winners as spec files that Register/RegisterSpecFile add under NAS-*
// names, making them loadable by the serving repository like any built-in.
package zoo
