package zoo

import (
	"fmt"
	"sort"

	"micronets/internal/arch"
)

// PaperStats records the numbers published in Table 4 (and Tables 2/3) for
// side-by-side comparison with our measurements. Zero means "not reported".
type PaperStats struct {
	// Accuracy is test accuracy (%) for KWS/VWW or AUC (%) for AD.
	Accuracy float64
	MOps     float64
	BinaryKB float64
	FlashKB  float64
	SRAMKB   float64
	// Latencies in seconds on the small/medium/large MCU.
	LatS, LatM, LatL float64
	// Energies per inference in mJ on the small/medium MCU.
	EnergySmJ, EnergyMmJ float64
}

// Entry pairs an architecture spec with the paper's published numbers.
// Spec is nil for stats-only comparison points.
type Entry struct {
	Name  string
	Task  string
	Spec  *arch.Spec
	Paper PaperStats
	// Notes documents reconstruction caveats.
	Notes string
}

// ds builds a DSBlock.
func ds(c, s int) arch.Block {
	return arch.Block{Kind: arch.DSBlock, KH: 3, KW: 3, OutC: c, Stride: s}
}

// ibn builds an inverted bottleneck block.
func ibn(expand, c, s int) arch.Block {
	return arch.Block{Kind: arch.IBN, KH: 3, KW: 3, Expand: expand, OutC: c, Stride: s}
}

// MicroNetKWSL is MicroNet-KWS-L exactly as listed in Table 5.
func MicroNetKWSL() *arch.Spec {
	return &arch.Spec{
		Name: "MicroNet-KWS-L", Task: "kws", Source: "repro",
		InputH: 49, InputW: 10, InputC: 1, NumClasses: 12,
		Blocks: []arch.Block{
			{Kind: arch.Conv, KH: 10, KW: 4, OutC: 276, Stride: 1},
			ds(248, 2), ds(276, 1), ds(276, 1), ds(248, 1), ds(248, 1), ds(248, 1), ds(248, 1),
			{Kind: arch.AvgPool, KH: 25, KW: 5, Stride: 1},
			{Kind: arch.Dense, OutC: 12},
		},
	}
}

// MicroNetKWSM is MicroNet-KWS-M exactly as listed in Table 5.
func MicroNetKWSM() *arch.Spec {
	return &arch.Spec{
		Name: "MicroNet-KWS-M", Task: "kws", Source: "repro",
		InputH: 49, InputW: 10, InputC: 1, NumClasses: 12,
		Blocks: []arch.Block{
			{Kind: arch.Conv, KH: 10, KW: 4, OutC: 140, Stride: 1},
			ds(140, 2), ds(140, 1), ds(140, 1), ds(112, 1), ds(196, 1),
			{Kind: arch.AvgPool, KH: 25, KW: 5, Stride: 1},
			{Kind: arch.Dense, OutC: 12},
		},
	}
}

// MicroNetKWSS is MicroNet-KWS-S exactly as listed in Table 5.
func MicroNetKWSS() *arch.Spec {
	return &arch.Spec{
		Name: "MicroNet-KWS-S", Task: "kws", Source: "repro",
		InputH: 49, InputW: 10, InputC: 1, NumClasses: 12,
		Blocks: []arch.Block{
			{Kind: arch.Conv, KH: 10, KW: 4, OutC: 84, Stride: 1},
			ds(112, 2), ds(84, 1), ds(84, 1), ds(84, 1), ds(196, 1),
			{Kind: arch.AvgPool, KH: 25, KW: 5, Stride: 1},
			{Kind: arch.Dense, OutC: 12},
		},
	}
}

// MicroNetADL is MicroNet-AD-L exactly as listed in Table 5.
func MicroNetADL() *arch.Spec {
	return &arch.Spec{
		Name: "MicroNet-AD-L", Task: "ad", Source: "repro",
		InputH: 32, InputW: 32, InputC: 1, NumClasses: 4,
		Blocks: []arch.Block{
			{Kind: arch.Conv, KH: 3, KW: 3, OutC: 276, Stride: 1},
			ds(248, 2), ds(276, 1), ds(276, 1), ds(248, 2), ds(248, 2),
			{Kind: arch.AvgPool, KH: 4, KW: 4, Stride: 1},
			{Kind: arch.Dense, OutC: 4},
		},
	}
}

// MicroNetADM is MicroNet-AD-M exactly as listed in Table 5.
func MicroNetADM() *arch.Spec {
	return &arch.Spec{
		Name: "MicroNet-AD-M", Task: "ad", Source: "repro",
		InputH: 32, InputW: 32, InputC: 1, NumClasses: 4,
		Blocks: []arch.Block{
			{Kind: arch.Conv, KH: 3, KW: 3, OutC: 192, Stride: 1},
			ds(276, 2), ds(276, 1), ds(276, 1), ds(276, 2), ds(276, 2),
			{Kind: arch.AvgPool, KH: 4, KW: 4, Stride: 1},
			{Kind: arch.Dense, OutC: 4},
		},
	}
}

// MicroNetADS is MicroNet-AD-S exactly as listed in Table 5.
func MicroNetADS() *arch.Spec {
	return &arch.Spec{
		Name: "MicroNet-AD-S", Task: "ad", Source: "repro",
		InputH: 32, InputW: 32, InputC: 1, NumClasses: 4,
		Blocks: []arch.Block{
			{Kind: arch.Conv, KH: 3, KW: 3, OutC: 72, Stride: 1},
			ds(164, 2), ds(220, 1), ds(276, 2), ds(276, 2),
			{Kind: arch.AvgPool, KH: 4, KW: 4, Stride: 1},
			{Kind: arch.Dense, OutC: 4},
		},
	}
}

// DSCNN builds the Hello Edge DS-CNN baselines (S/M/L) used in Figure 7.
func DSCNN(size string) *arch.Spec {
	var c, blocks int
	switch size {
	case "S":
		c, blocks = 64, 4
	case "M":
		c, blocks = 172, 4
	case "L":
		c, blocks = 276, 5
	default:
		panic(fmt.Sprintf("zoo: unknown DSCNN size %q", size))
	}
	bl := []arch.Block{{Kind: arch.Conv, KH: 10, KW: 4, OutC: c, Stride: 2}}
	for i := 0; i < blocks; i++ {
		bl = append(bl, ds(c, 1))
	}
	bl = append(bl,
		arch.Block{Kind: arch.AvgPool, KH: 25, KW: 5, Stride: 1},
		arch.Block{Kind: arch.Dense, OutC: 12},
	)
	return &arch.Spec{
		Name: "DSCNN-" + size, Task: "kws", Source: "repro",
		InputH: 49, InputW: 10, InputC: 1, NumClasses: 12,
		Blocks: bl,
	}
}

// MBNetV2KWS builds the MobileNetV2-IBN-stack KWS baselines of Figure 7.
func MBNetV2KWS(size string) *arch.Spec {
	var c int
	var n int
	switch size {
	case "S":
		c, n = 48, 4
	case "M":
		c, n = 96, 4
	case "L":
		c, n = 192, 5
	default:
		panic(fmt.Sprintf("zoo: unknown MBNetV2 size %q", size))
	}
	bl := []arch.Block{{Kind: arch.Conv, KH: 3, KW: 3, OutC: c, Stride: 2}}
	for i := 0; i < n; i++ {
		bl = append(bl, ibn(c*3, c, 1))
	}
	bl = append(bl,
		arch.Block{Kind: arch.GlobalPool},
		arch.Block{Kind: arch.Dense, OutC: 12},
	)
	return &arch.Spec{
		Name: "MBNETV2-" + size, Task: "kws", Source: "repro",
		InputH: 49, InputW: 10, InputC: 1, NumClasses: 12,
		Blocks: bl,
	}
}

// FCAutoencoder builds the fully connected autoencoder AD baselines
// (Purohit et al.): 640-d input, four hidden layers of width `hidden`, an
// 8-d bottleneck, four more hidden layers, and the 640-d reconstruction.
func FCAutoencoder(name string, hidden int) *arch.Spec {
	bl := []arch.Block{}
	for i := 0; i < 4; i++ {
		bl = append(bl, arch.Block{Kind: arch.DenseReLU, OutC: hidden})
	}
	bl = append(bl, arch.Block{Kind: arch.DenseReLU, OutC: 8})
	for i := 0; i < 4; i++ {
		bl = append(bl, arch.Block{Kind: arch.DenseReLU, OutC: hidden})
	}
	bl = append(bl, arch.Block{Kind: arch.Dense, OutC: 640})
	return &arch.Spec{
		Name: name, Task: "ad", Source: "repro",
		InputH: 1, InputW: 1, InputC: 640, NumClasses: 0,
		Blocks: bl,
	}
}

// ConvAutoencoder reconstructs the Conv-AE baseline (Ribeiro et al. 2020).
// Its decoder uses transposed convolutions, which TFLM does not support, so
// the deployability checker must reject it — reproducing the "ND" entry in
// Table 3.
func ConvAutoencoder() *arch.Spec {
	return &arch.Spec{
		Name: "Conv-AE", Task: "ad", Source: "paper",
		InputH: 32, InputW: 32, InputC: 1, NumClasses: 0,
		Blocks: []arch.Block{
			{Kind: arch.Conv, KH: 3, KW: 3, OutC: 152, Stride: 2},
			{Kind: arch.Conv, KH: 3, KW: 3, OutC: 304, Stride: 2},
			{Kind: arch.Conv, KH: 3, KW: 3, OutC: 608, Stride: 2},
			{Kind: arch.TransposedConv, KH: 3, KW: 3, OutC: 304, Stride: 2},
			{Kind: arch.TransposedConv, KH: 3, KW: 3, OutC: 152, Stride: 2},
			{Kind: arch.TransposedConv, KH: 3, KW: 3, OutC: 1, Stride: 2},
		},
	}
}

// MBNetV20p5AD reconstructs the MobileNetV2-0.5 anomaly-detection model
// from the DCASE2020 winning solution (Giri et al. 2020) on 64x64
// spectrogram inputs.
func MBNetV20p5AD() *arch.Spec {
	bl := []arch.Block{{Kind: arch.Conv, KH: 3, KW: 3, OutC: 20, Stride: 2}}
	// MobileNetV2 stage table at width ~0.5 (scaled slightly up and given
	// the 1x1 head so the reconstruction matches the published flash size).
	type stage struct{ t, c, n, s int }
	stages := []stage{
		{1, 10, 1, 1}, {6, 15, 2, 2}, {6, 20, 3, 2}, {6, 40, 4, 2},
		{6, 60, 3, 1}, {6, 100, 3, 2}, {6, 200, 1, 1},
	}
	c := 20
	for _, st := range stages {
		for i := 0; i < st.n; i++ {
			s := 1
			if i == 0 {
				s = st.s
			}
			bl = append(bl, ibn(c*st.t, st.c, s))
			c = st.c
		}
	}
	bl = append(bl,
		arch.Block{Kind: arch.Conv, KH: 1, KW: 1, OutC: 800, Stride: 1},
		arch.Block{Kind: arch.GlobalPool},
		arch.Block{Kind: arch.Dense, OutC: 4},
	)
	return &arch.Spec{
		Name: "MBNETV2-0.5AD", Task: "ad", Source: "paper",
		InputH: 64, InputW: 64, InputC: 1, NumClasses: 4,
		Blocks: bl,
	}
}

// PersonDetection reconstructs the TFLM example model (MobileNetV1 0.25 on
// 96x96x1 grayscale), the VWW reference the paper compares against.
func PersonDetection() *arch.Spec {
	widths := []int{16, 32, 32, 64, 64, 128, 128, 128, 128, 128, 128, 256, 256}
	strides := []int{1, 2, 1, 2, 1, 2, 1, 1, 1, 1, 1, 2, 1}
	bl := []arch.Block{{Kind: arch.Conv, KH: 3, KW: 3, OutC: 8, Stride: 2}}
	for i := range widths {
		bl = append(bl, arch.Block{Kind: arch.DSBlock, KH: 3, KW: 3, OutC: widths[i], Stride: strides[i]})
	}
	bl = append(bl,
		arch.Block{Kind: arch.GlobalPool},
		arch.Block{Kind: arch.Dense, OutC: 2},
	)
	return &arch.Spec{
		Name: "Person Detection", Task: "vww", Source: "paper",
		InputH: 96, InputW: 96, InputC: 1, NumClasses: 2,
		Blocks: bl,
	}
}

// Catalog returns every entry, keyed by name: the built-in paper
// catalogue plus any dynamically registered architectures (see Register).
func Catalog() map[string]*Entry {
	return mergeRegistered(builtinCatalog())
}

// builtinCatalog returns the paper's fixed model set.
func builtinCatalog() map[string]*Entry {
	entries := []*Entry{
		{Name: "MicroNet-KWS-L", Task: "kws", Spec: MicroNetKWSL(),
			Paper: PaperStats{Accuracy: 96.5, MOps: 129, BinaryKB: 701, FlashKB: 612, SRAMKB: 208.8, LatM: 0.610, LatL: 0.596, EnergyMmJ: 274.32}},
		{Name: "MicroNet-KWS-M", Task: "kws", Spec: MicroNetKWSM(),
			Paper: PaperStats{Accuracy: 95.8, MOps: 30.6, BinaryKB: 252, FlashKB: 163, SRAMKB: 103.3, LatS: 0.426, LatM: 0.187, LatL: 0.181, EnergySmJ: 70.56, EnergyMmJ: 83.16}},
		{Name: "MicroNet-KWS-S", Task: "kws", Spec: MicroNetKWSS(),
			Paper: PaperStats{Accuracy: 95.3, MOps: 16.4, BinaryKB: 191, FlashKB: 102, SRAMKB: 53.2, LatS: 0.250, LatM: 0.109, LatL: 0.108, EnergySmJ: 40.68, EnergyMmJ: 48.6}},
		{Name: "MicroNet-AD-L", Task: "ad", Spec: MicroNetADL(),
			Paper: PaperStats{Accuracy: 97.28, MOps: 129, BinaryKB: 530, FlashKB: 442, SRAMKB: 383.7, LatL: 0.614}},
		{Name: "MicroNet-AD-M", Task: "ad", Spec: MicroNetADM(),
			Paper: PaperStats{Accuracy: 96.05, MOps: 124.7, BinaryKB: 562, FlashKB: 464, SRAMKB: 274.5, LatM: 0.608, LatL: 0.567, EnergyMmJ: 269.64}},
		{Name: "MicroNet-AD-S", Task: "ad", Spec: MicroNetADS(),
			Paper: PaperStats{Accuracy: 95.35, MOps: 37.5, BinaryKB: 351, FlashKB: 253, SRAMKB: 114.2, LatS: 0.457, LatM: 0.192, LatL: 0.194, EnergySmJ: 74.16, EnergyMmJ: 91.8}},
		{Name: "DSCNN-L", Task: "kws", Spec: DSCNN("L"),
			Paper: PaperStats{Accuracy: 95.9, MOps: 107.2, BinaryKB: 579, FlashKB: 490, SRAMKB: 201.3, LatM: 0.515, LatL: 0.497, EnergyMmJ: 229.32}},
		{Name: "DSCNN-M", Task: "kws", Spec: DSCNN("M"),
			Paper: PaperStats{Accuracy: 95.0, MOps: 37.3, BinaryKB: 270, FlashKB: 181, SRAMKB: 123.3, LatM: 0.219, LatL: 0.212, EnergyMmJ: 98.64}},
		{Name: "DSCNN-S", Task: "kws", Spec: DSCNN("S"),
			Paper: PaperStats{Accuracy: 94.15, MOps: 7.1, BinaryKB: 138, FlashKB: 49, SRAMKB: 47.2, LatS: 0.131, LatM: 0.058, LatL: 0.058, EnergySmJ: 21.132, EnergyMmJ: 25.956}},
		{Name: "MBNETV2-L", Task: "kws", Spec: MBNetV2KWS("L"),
			Paper: PaperStats{Accuracy: 95.5, MOps: 276.8, FlashKB: 988, SRAMKB: 530}},
		{Name: "MBNETV2-M", Task: "kws", Spec: MBNetV2KWS("M"),
			Paper: PaperStats{Accuracy: 94.9, MOps: 59.26, BinaryKB: 331, FlashKB: 233, SRAMKB: 266, LatM: 0.330, LatL: 0.317, EnergyMmJ: 147.6}},
		{Name: "MBNETV2-S", Task: "kws", Spec: MBNetV2KWS("S"),
			Paper: PaperStats{Accuracy: 94.0, MOps: 16.1, BinaryKB: 185, FlashKB: 87, SRAMKB: 134.2, LatM: 0.120, LatL: 0.115, EnergyMmJ: 15.264}},
		{Name: "MicroNet-VWW-1", Task: "vww", Spec: MicroNetVWW(1),
			Paper: PaperStats{Accuracy: 88.03, MOps: 135.9, BinaryKB: 949, FlashKB: 833, SRAMKB: 285.3, LatM: 1.133, LatL: 1.055, EnergyMmJ: 478.8}},
		{Name: "MicroNet-VWW-2", Task: "vww", Spec: MicroNetVWW(2),
			Paper: PaperStats{Accuracy: 78.1, MOps: 5.3, BinaryKB: 331, FlashKB: 230, SRAMKB: 69.5, LatS: 0.181, LatM: 0.079, LatL: 0.082, EnergySmJ: 27.25, EnergyMmJ: 36.36}},
		{Name: "MicroNet-VWW-3", Task: "vww", Spec: MicroNetVWW(3),
			Paper: PaperStats{Accuracy: 86.44, MOps: 45.2, BinaryKB: 564, FlashKB: 458, SRAMKB: 133.7, LatM: 0.467, LatL: 0.447, EnergyMmJ: 196.2}},
		{Name: "MicroNet-VWW-4", Task: "vww", Spec: MicroNetVWW(4),
			Paper: PaperStats{Accuracy: 82.49, MOps: 37.7, BinaryKB: 521, FlashKB: 416, SRAMKB: 118.7, LatS: 0.726, LatM: 0.31, LatL: 0.298, EnergyMmJ: 133.2}},
		{Name: "FC-AE(Baseline)", Task: "ad", Spec: FCAutoencoder("FC-AE(Baseline)", 128),
			Paper: PaperStats{Accuracy: 84.76, MOps: 0.52, BinaryKB: 346, FlashKB: 270, SRAMKB: 4.7, LatS: 0.007, LatM: 0.003, LatL: 0.003, EnergySmJ: 1.1736, EnergyMmJ: 1.26}},
		{Name: "FC-AE(Wide)", Task: "ad", Spec: FCAutoencoder("FC-AE(Wide)", 512),
			Paper: PaperStats{Accuracy: 87.1, MOps: 4.47, FlashKB: 2252.8, SRAMKB: 4.7}},
		{Name: "Conv-AE", Task: "ad", Spec: ConvAutoencoder(),
			Paper: PaperStats{Accuracy: 91.77, MOps: 578, FlashKB: 4198.4, SRAMKB: 160},
			Notes: "decoder uses transposed convolutions; not deployable on TFLM (Table 3 'ND')"},
		{Name: "MBNETV2-0.5AD", Task: "ad", Spec: MBNetV20p5AD(),
			Paper: PaperStats{Accuracy: 97.24, MOps: 31.1, BinaryKB: 1050, FlashKB: 965, SRAMKB: 206.8, LatL: 0.253},
			Notes: "DCASE2020 component model (Giri et al.); accuracy estimated from ensembles"},
		{Name: "Person Detection", Task: "vww", Spec: PersonDetection(),
			Paper: PaperStats{Accuracy: 76, MOps: 0, BinaryKB: 398, FlashKB: 294, SRAMKB: 82.3, LatS: 0.254, LatM: 0.108, LatL: 0.108, EnergySmJ: 39.96, EnergyMmJ: 49.32}},
		// Stats-only comparison points: architectures are not public.
		{Name: "ProxylessNas", Task: "vww", Spec: nil,
			Paper: PaperStats{Accuracy: 94.6, BinaryKB: 413, FlashKB: 309, SRAMKB: 349.8, LatM: 7.72, LatL: 7.543},
			Notes: "stats-only; fits small-MCU flash but needs large-MCU SRAM (§6.2)"},
		{Name: "MSNet", Task: "vww", Spec: nil,
			Paper: PaperStats{Accuracy: 95.13, BinaryKB: 362, FlashKB: 264, SRAMKB: 413, LatM: 8.69, LatL: 8.499},
			Notes: "stats-only"},
	}
	m := make(map[string]*Entry, len(entries))
	for _, e := range entries {
		m[e.Name] = e
	}
	return m
}

// Names returns all catalogue names in sorted order.
func Names() []string {
	cat := Catalog()
	names := make([]string, 0, len(cat))
	for n := range cat {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ServableNames returns the catalogue entries the int8 runtime can
// actually execute: a public architecture (Spec != nil) containing no
// transposed-conv decoder layers. This is the model set a serving registry
// may preload; stats-only comparison points and Conv-AE (Table 3 "ND") are
// excluded.
func ServableNames() []string {
	cat := Catalog()
	var out []string
	for _, n := range Names() {
		e := cat[n]
		if e.Spec == nil {
			continue
		}
		servable := true
		for _, b := range e.Spec.Blocks {
			if b.Kind == arch.TransposedConv {
				servable = false
				break
			}
		}
		if servable {
			out = append(out, n)
		}
	}
	return out
}

// Get returns the entry for a name, or an error listing alternatives.
func Get(name string) (*Entry, error) {
	cat := Catalog()
	if e, ok := cat[name]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("zoo: unknown model %q (have %v)", name, Names())
}

// ByTask returns entries for one task, sorted by name.
func ByTask(task string) []*Entry {
	cat := Catalog()
	var out []*Entry
	for _, n := range Names() {
		if cat[n].Task == task {
			out = append(out, cat[n])
		}
	}
	return out
}

// MCUNetKWSPoints returns the MCUNet comparison points for Figure 11,
// estimated from the figures published in Lin et al. 2020 (as the paper
// itself did: "our best estimates from figures published in...").
type ComparisonPoint struct {
	Name      string
	Accuracy  float64
	LatencyMS float64
	SRAMKB    float64
}

// MCUNetKWS returns estimated MCUNet KWS pareto points (Figure 11).
func MCUNetKWS() []ComparisonPoint {
	return []ComparisonPoint{
		{Name: "MCUNet-KWS-A", Accuracy: 91.5, LatencyMS: 210, SRAMKB: 130},
		{Name: "MCUNet-KWS-B", Accuracy: 93.2, LatencyMS: 360, SRAMKB: 190},
		{Name: "MCUNet-KWS-C", Accuracy: 94.4, LatencyMS: 590, SRAMKB: 250},
		{Name: "MCUNet-KWS-D", Accuracy: 95.2, LatencyMS: 880, SRAMKB: 365},
	}
}
