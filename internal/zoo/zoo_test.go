package zoo

import (
	"math"
	"testing"
)

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	required := []string{
		"MicroNet-KWS-L", "MicroNet-KWS-M", "MicroNet-KWS-S",
		"MicroNet-AD-L", "MicroNet-AD-M", "MicroNet-AD-S",
		"MicroNet-VWW-1", "MicroNet-VWW-2", "MicroNet-VWW-3", "MicroNet-VWW-4",
		"DSCNN-L", "DSCNN-M", "DSCNN-S",
		"MBNETV2-L", "MBNETV2-M", "MBNETV2-S",
		"FC-AE(Baseline)", "FC-AE(Wide)", "Conv-AE", "MBNETV2-0.5AD",
		"Person Detection", "ProxylessNas", "MSNet",
	}
	for _, name := range required {
		if cat[name] == nil {
			t.Errorf("catalogue missing %s", name)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("NotAModel"); err == nil {
		t.Fatal("unknown model must error")
	}
}

// TestOpsMatchPaper pins every constructible model's op count to the
// paper's Table 3/4 values. Tolerances: Table 5-derived models are exact
// to a few percent; reconstructed models (VWW, baselines) within 15%;
// documented deviations looser.
func TestOpsMatchPaper(t *testing.T) {
	tolerances := map[string]float64{
		"MBNETV2-0.5AD": 0.40, // documented reconstruction deviation
		"DSCNN-S":       0.30,
		"DSCNN-M":       0.15,
		"MBNETV2-L":     0.15,
	}
	for name, e := range Catalog() {
		if e.Spec == nil || e.Paper.MOps == 0 {
			continue
		}
		a, err := e.Spec.Analyze()
		if err != nil {
			t.Fatalf("analyze %s: %v", name, err)
		}
		got := float64(a.TotalOps()) / 1e6
		tol := tolerances[name]
		if tol == 0 {
			tol = 0.10
		}
		if math.Abs(got-e.Paper.MOps)/e.Paper.MOps > tol {
			t.Errorf("%s: %.1f Mops vs paper %.1f (tol %.0f%%)", name, got, e.Paper.MOps, tol*100)
		}
	}
}

func TestTable5ArchitecturesExact(t *testing.T) {
	// Spot-check the Table 5 listings are encoded verbatim.
	kwsL := MicroNetKWSL()
	if len(kwsL.Blocks) != 10 { // conv + 7 DS + pool + fc
		t.Fatalf("KWS-L blocks = %d", len(kwsL.Blocks))
	}
	if kwsL.Blocks[0].OutC != 276 || kwsL.Blocks[1].OutC != 248 || kwsL.Blocks[1].Stride != 2 {
		t.Fatal("KWS-L head mismatch with Table 5")
	}
	adS := MicroNetADS()
	if len(adS.Blocks) != 7 { // conv + 4 DS + pool + fc
		t.Fatalf("AD-S blocks = %d", len(adS.Blocks))
	}
	if adS.Blocks[0].OutC != 72 || adS.Blocks[4].OutC != 276 {
		t.Fatal("AD-S widths mismatch with Table 5")
	}
}

func TestTasksAndClassCounts(t *testing.T) {
	for _, e := range Catalog() {
		if e.Spec == nil {
			continue
		}
		switch e.Task {
		case "kws":
			if e.Spec.NumClasses != 12 {
				t.Errorf("%s: KWS must have 12 classes", e.Name)
			}
			if e.Spec.InputH != 49 || e.Spec.InputW != 10 {
				t.Errorf("%s: KWS input must be 49x10 MFCC", e.Name)
			}
		case "ad":
			if e.Spec.NumClasses != 0 && e.Spec.NumClasses != 4 {
				t.Errorf("%s: AD classifier must have 4 machine IDs", e.Name)
			}
		case "vww":
			if e.Spec.NumClasses != 2 {
				t.Errorf("%s: VWW must be binary", e.Name)
			}
		}
	}
}

func TestConvAENotDeployable(t *testing.T) {
	a, err := ConvAutoencoder().Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if a.Deployable {
		t.Fatal("Conv-AE must be non-deployable (Table 3 'ND')")
	}
}

func TestMCUNetPointsOrdered(t *testing.T) {
	pts := MCUNetKWS()
	if len(pts) < 3 {
		t.Fatal("need several MCUNet comparison points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Accuracy <= pts[i-1].Accuracy || pts[i].LatencyMS <= pts[i-1].LatencyMS {
			t.Fatal("MCUNet points must trade accuracy for latency monotonically")
		}
	}
}

func TestMicroNetSizeOrdering(t *testing.T) {
	// Within each family: S < M < L in both ops and params.
	families := [][]string{
		{"MicroNet-KWS-S", "MicroNet-KWS-M", "MicroNet-KWS-L"},
		{"MicroNet-AD-S", "MicroNet-AD-M", "MicroNet-AD-L"},
		{"DSCNN-S", "DSCNN-M", "DSCNN-L"},
	}
	for _, fam := range families {
		var prevOps int64 = -1
		for _, name := range fam {
			e, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			a, err := e.Spec.Analyze()
			if err != nil {
				t.Fatal(err)
			}
			if a.TotalOps() <= prevOps {
				t.Errorf("%s not larger than predecessor", name)
			}
			prevOps = a.TotalOps()
		}
	}
}

// TestServableNames: the serving registry's preload set must include the
// deployable reproductions and exclude stats-only entries and the
// transposed-conv Conv-AE (Table 3 "ND").
func TestServableNames(t *testing.T) {
	names := ServableNames()
	servable := make(map[string]bool, len(names))
	for _, n := range names {
		servable[n] = true
	}
	for _, want := range []string{"MicroNet-KWS-S", "MicroNet-VWW-2", "DSCNN-S", "FC-AE(Baseline)"} {
		if !servable[want] {
			t.Fatalf("%s missing from ServableNames %v", want, names)
		}
	}
	for _, reject := range []string{"Conv-AE", "ProxylessNas", "MSNet"} {
		if servable[reject] {
			t.Fatalf("%s must not be servable", reject)
		}
	}
}
