package zoo

import (
	"fmt"

	"micronets/internal/arch"
)

// MicroNetVWW reconstructs the four MicroNet VWW models. The paper shows
// VWW-1 and VWW-2 as block diagrams (Figure 6) whose exact filter counts
// are given graphically; we reconstruct IBN stacks that match the published
// op counts and model sizes (Table 4) to within a few percent, preserving
// the structural choices the figure shows: grayscale input, a MobilenetV2
// IBN backbone with per-block searched expansion/compression widths, and
// input resolutions of 160x160 (medium MCU) and 50x50 (small MCU).
//
// VWW-3 and VWW-4 are intermediate models from the same search space (the
// paper tabulates them without diagrams); we reconstruct them at 128x128
// and 112x112.
func MicroNetVWW(variant int) *arch.Spec {
	switch variant {
	case 1:
		// Medium MCU target: 160x160x1, ~135.9 Mops, ~833 KB flash.
		return &arch.Spec{
			Name: "MicroNet-VWW-1", Task: "vww", Source: "repro",
			InputH: 160, InputW: 160, InputC: 1, NumClasses: 2,
			Blocks: []arch.Block{
				{Kind: arch.Conv, KH: 3, KW: 3, OutC: 16, Stride: 2},
				ibn(16, 8, 1),
				ibn(24, 16, 2),
				ibn(64, 16, 1),
				ibn(64, 16, 1),
				ibn(96, 24, 2),
				ibn(144, 24, 1),
				ibn(144, 24, 1),
				ibn(144, 48, 2),
				ibn(288, 48, 1),
				ibn(288, 48, 1),
				ibn(288, 48, 1),
				ibn(288, 48, 1),
				ibn(288, 80, 1),
				ibn(480, 80, 1),
				ibn(480, 112, 2),
				ibn(624, 112, 1),
				ibn(624, 144, 1),
				{Kind: arch.Conv, KH: 1, KW: 1, OutC: 384, Stride: 1},
				{Kind: arch.GlobalPool},
				{Kind: arch.Dense, OutC: 2},
			},
		}
	case 2:
		// Small MCU target: 50x50x1, ~5.3 Mops, ~230 KB flash.
		return &arch.Spec{
			Name: "MicroNet-VWW-2", Task: "vww", Source: "repro",
			InputH: 50, InputW: 50, InputC: 1, NumClasses: 2,
			Blocks: []arch.Block{
				{Kind: arch.Conv, KH: 3, KW: 3, OutC: 8, Stride: 2},
				ibn(16, 8, 1),
				ibn(24, 16, 2),
				ibn(48, 16, 1),
				ibn(48, 24, 2),
				ibn(72, 24, 1),
				ibn(96, 40, 2),
				ibn(160, 40, 1),
				ibn(160, 80, 2),
				ibn(320, 80, 1),
				ibn(288, 144, 1),
				{Kind: arch.Conv, KH: 1, KW: 1, OutC: 256, Stride: 1},
				{Kind: arch.GlobalPool},
				{Kind: arch.Dense, OutC: 2},
			},
		}
	case 3:
		// ~45.2 Mops, ~458 KB flash at 128x128.
		return &arch.Spec{
			Name: "MicroNet-VWW-3", Task: "vww", Source: "repro",
			InputH: 128, InputW: 128, InputC: 1, NumClasses: 2,
			Blocks: []arch.Block{
				{Kind: arch.Conv, KH: 3, KW: 3, OutC: 16, Stride: 2},
				ibn(16, 8, 1),
				ibn(24, 16, 2),
				ibn(64, 16, 1),
				ibn(96, 24, 2),
				ibn(144, 24, 1),
				ibn(144, 40, 2),
				ibn(240, 40, 1),
				ibn(240, 40, 1),
				ibn(240, 56, 1),
				ibn(336, 56, 2),
				ibn(336, 96, 1),
				ibn(448, 96, 1),
				ibn(448, 96, 1),
				{Kind: arch.Conv, KH: 1, KW: 1, OutC: 320, Stride: 1},
				{Kind: arch.GlobalPool},
				{Kind: arch.Dense, OutC: 2},
			},
		}
	case 4:
		// ~37.7 Mops, ~416 KB flash at 112x112.
		return &arch.Spec{
			Name: "MicroNet-VWW-4", Task: "vww", Source: "repro",
			InputH: 112, InputW: 112, InputC: 1, NumClasses: 2,
			Blocks: []arch.Block{
				{Kind: arch.Conv, KH: 3, KW: 3, OutC: 16, Stride: 2},
				ibn(16, 8, 1),
				ibn(24, 16, 2),
				ibn(64, 16, 1),
				ibn(96, 24, 2),
				ibn(144, 24, 1),
				ibn(144, 40, 2),
				ibn(240, 40, 1),
				ibn(240, 40, 1),
				ibn(240, 56, 1),
				ibn(336, 56, 2),
				ibn(336, 96, 1),
				ibn(448, 96, 1),
				ibn(448, 96, 1),
				{Kind: arch.Conv, KH: 1, KW: 1, OutC: 288, Stride: 1},
				{Kind: arch.GlobalPool},
				{Kind: arch.Dense, OutC: 2},
			},
		}
	default:
		panic(fmt.Sprintf("zoo: unknown VWW variant %d", variant))
	}
}

// MobileNetV2VWW builds the full-width MobileNetV2 teacher used for
// distillation and as the "largest network in our search space" reference
// (88.75% accuracy in §6.2), on grayscale inputs.
func MobileNetV2VWW(inputSize int) *arch.Spec {
	type stage struct{ t, c, n, s int }
	stages := []stage{
		{1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 2}, {6, 64, 4, 2},
		{6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1},
	}
	bl := []arch.Block{{Kind: arch.Conv, KH: 3, KW: 3, OutC: 32, Stride: 2}}
	c := 32
	for _, st := range stages {
		for i := 0; i < st.n; i++ {
			s := 1
			if i == 0 {
				s = st.s
			}
			bl = append(bl, ibn(c*st.t, st.c, s))
			c = st.c
		}
	}
	bl = append(bl,
		arch.Block{Kind: arch.Conv, KH: 1, KW: 1, OutC: 1280, Stride: 1},
		arch.Block{Kind: arch.GlobalPool},
		arch.Block{Kind: arch.Dense, OutC: 2},
	)
	return &arch.Spec{
		Name: "MobileNetV2", Task: "vww", Source: "repro",
		InputH: inputSize, InputW: inputSize, InputC: 1, NumClasses: 2,
		Blocks: bl,
	}
}
