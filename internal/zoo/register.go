package zoo

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"micronets/internal/arch"
)

// The zoo's built-in catalogue is the paper's fixed model set; searches
// discover new architectures at runtime and need to publish them under
// stable names so every consumer of the zoo (the serving registry,
// cmd/serve, the experiment harness) can use them like any Table 5 model.
// Registered entries live alongside the built-ins: Catalog, Names, Get,
// ByTask and ServableNames all see them.

var (
	regMu      sync.RWMutex
	registered = map[string]*Entry{}
)

// Register publishes a dynamic entry (e.g. a NAS frontier winner) into
// the catalogue. The spec must be present and analyzable, and the name —
// which must match the spec name — must not collide with a built-in
// model. Re-registering the same name overwrites the previous dynamic
// entry (a re-run search replaces its own exports).
func Register(e *Entry) error {
	if e == nil || e.Spec == nil {
		return fmt.Errorf("zoo: register needs an entry with a spec")
	}
	if e.Name == "" || e.Name != e.Spec.Name {
		return fmt.Errorf("zoo: entry name %q must match spec name %q", e.Name, e.Spec.Name)
	}
	if _, err := e.Spec.Analyze(); err != nil {
		return fmt.Errorf("zoo: register %s: %w", e.Name, err)
	}
	if _, builtin := builtinCatalog()[e.Name]; builtin {
		return fmt.Errorf("zoo: %q collides with a built-in catalogue model", e.Name)
	}
	regMu.Lock()
	registered[e.Name] = e
	regMu.Unlock()
	return nil
}

// Unregister removes a dynamic entry; unknown names are a no-op. Tests
// use it to keep the process-wide catalogue clean.
func Unregister(name string) {
	regMu.Lock()
	delete(registered, name)
	regMu.Unlock()
}

// RegisteredNames lists the dynamic entries currently published.
func RegisteredNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registered))
	for n := range registered {
		names = append(names, n)
	}
	return names
}

// mergeRegistered adds the dynamic entries into a catalogue map.
func mergeRegistered(m map[string]*Entry) map[string]*Entry {
	regMu.RLock()
	defer regMu.RUnlock()
	for n, e := range registered {
		m[n] = e
	}
	return m
}

// SpecFile is the on-disk format for exported architectures — the bridge
// from a finished search run to a serving process: cmd/search writes one,
// cmd/serve -specs loads it and registers every spec at boot.
type SpecFile struct {
	// GeneratedBy records provenance (tool and parameters).
	GeneratedBy string `json:"generated_by,omitempty"`
	// Specs are complete architectures; block kinds serialize by name.
	Specs []*arch.Spec `json:"specs"`
	// Notes carries per-spec annotations keyed by spec name (e.g. the
	// search metrics a frontier point was selected on).
	Notes map[string]string `json:"notes,omitempty"`
}

// WriteSpecFile serializes a SpecFile as indented JSON.
func WriteSpecFile(w io.Writer, f *SpecFile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadSpecFile parses a SpecFile and validates every spec.
func ReadSpecFile(r io.Reader) (*SpecFile, error) {
	var f SpecFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("zoo: spec file: %w", err)
	}
	for _, s := range f.Specs {
		if s == nil || s.Name == "" {
			return nil, fmt.Errorf("zoo: spec file contains an unnamed spec")
		}
		if _, err := s.Analyze(); err != nil {
			return nil, fmt.Errorf("zoo: spec file: %w", err)
		}
	}
	return &f, nil
}

// RegisterSpecFile loads a spec file from disk and registers every spec,
// returning the registered names in file order.
func RegisterSpecFile(path string) ([]string, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	f, err := ReadSpecFile(fh)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	names := make([]string, 0, len(f.Specs))
	for _, s := range f.Specs {
		e := &Entry{Name: s.Name, Task: s.Task, Spec: s, Notes: f.Notes[s.Name]}
		if err := Register(e); err != nil {
			return nil, err
		}
		names = append(names, s.Name)
	}
	return names, nil
}
