// Package train provides the task trainers and evaluation metrics used to
// train final models after DNAS (§5.2): supervised training with the
// paper's recipes (cosine LR, weight decay, QAT, SpecAugment, mixup,
// optional knowledge distillation), accuracy evaluation, and the
// self-supervised anomaly-detection AUC protocol (§4.3).
package train

import (
	"fmt"
	"math/rand"
	"sort"

	ag "micronets/internal/autograd"
	"micronets/internal/datasets"
	"micronets/internal/nn"
	"micronets/internal/tensor"
)

// Config drives Fit.
type Config struct {
	Steps     int
	BatchSize int
	LR        nn.CosineSchedule
	// WeightDecay per the paper's recipes (e.g. 0.001 for KWS search,
	// 0.002 for final KWS training).
	WeightDecay float32
	// MixupAlpha enables mixup when > 0 (0.3 for AD, §5.2.3).
	MixupAlpha float32
	// SpecAugment enables time/frequency masking on [n,h,w,1] inputs
	// (used by KWS, §5.2.2).
	SpecAugment bool
	// Distill enables knowledge distillation from teacher logits
	// (coefficient 0.5, temperature 4 for VWW, §5.2.1).
	Distill     func(x *tensor.Tensor) *tensor.Tensor
	DistillCoef float32
	DistillTemp float32
	Seed        int64
	Log         func(string)
}

// QuickConfig returns the deterministic small-budget training recipe for
// a task, used by the NAS finalist re-rank (accuracy-in-the-loop search):
// each recipe is the paper's task recipe with the step budget as the only
// free knob, keyed by the caller's per-trial seed so re-running a trial
// reproduces its trained accuracy exactly.
func QuickConfig(task string, steps int, seed int64) (Config, error) {
	if steps <= 0 {
		return Config{}, fmt.Errorf("train: quick recipe needs steps > 0, got %d", steps)
	}
	cfg := Config{Steps: steps, BatchSize: 16, Seed: seed}
	switch task {
	case "kws":
		// §5.2.2: SpecAugment, search-phase weight decay.
		cfg.LR = nn.CosineSchedule{Start: 0.08, End: 0.008, Steps: steps}
		cfg.WeightDecay = 0.001
		cfg.SpecAugment = true
	case "vww":
		// §5.2.1 minus distillation (no teacher inside a search trial).
		cfg.LR = nn.CosineSchedule{Start: 0.05, End: 0.005, Steps: steps}
		cfg.WeightDecay = 0.001
	case "ad":
		// §5.2.3: mixup with alpha 0.3.
		cfg.LR = nn.CosineSchedule{Start: 0.05, End: 0.005, Steps: steps}
		cfg.WeightDecay = 0.001
		cfg.MixupAlpha = 0.3
	default:
		return Config{}, fmt.Errorf("train: no quick recipe for task %q (have kws, vww, ad)", task)
	}
	return cfg, nil
}

// Fit trains a model on the dataset and returns the final training loss.
func Fit(model *nn.Sequential, ds *datasets.Dataset, cfg Config) (float32, error) {
	if cfg.Steps <= 0 || cfg.BatchSize <= 0 {
		return 0, fmt.Errorf("train: Steps and BatchSize must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewSGD(0.9, cfg.WeightDecay)
	params := model.Params()
	var last float32
	for step := 0; step < cfg.Steps; step++ {
		x, labels := ds.RandomBatch(rng, cfg.BatchSize)
		if cfg.SpecAugment {
			x = SpecAugment(rng, x, 8, 2)
		}
		var loss *ag.Var
		if cfg.MixupAlpha > 0 {
			x2, targets := Mixup(rng, x, labels, ds.NumClasses, cfg.MixupAlpha)
			logits := model.Forward(ag.Constant(x2), true)
			loss = ag.SoftCrossEntropy(logits, targets)
		} else if cfg.Distill != nil {
			teacher := cfg.Distill(x)
			logits := model.Forward(ag.Constant(x), true)
			loss = ag.DistillLoss(logits, labels, teacher, cfg.DistillCoef, cfg.DistillTemp)
		} else {
			logits := model.Forward(ag.Constant(x), true)
			loss = ag.CrossEntropy(logits, labels)
		}
		ag.Backward(loss)
		nn.ClipGradNorm(params, 5)
		opt.Step(params, cfg.LR.LR(step))
		last = loss.Scalar()
		if cfg.Log != nil && (step%20 == 0 || step == cfg.Steps-1) {
			cfg.Log(fmt.Sprintf("step %d/%d loss=%.4f lr=%.4f", step+1, cfg.Steps, last, cfg.LR.LR(step)))
		}
	}
	return last, nil
}

// Accuracy evaluates top-1 accuracy of a float model on a dataset.
func Accuracy(model *nn.Sequential, ds *datasets.Dataset) float64 {
	if len(ds.Samples) == 0 {
		return 0
	}
	correct := 0
	const chunk = 32
	for start := 0; start < len(ds.Samples); start += chunk {
		end := start + chunk
		if end > len(ds.Samples) {
			end = len(ds.Samples)
		}
		idxs := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			idxs = append(idxs, i)
		}
		x, labels := ds.Batch(idxs)
		logits := model.Forward(ag.Constant(x), false)
		k := logits.Value.Shape[1]
		for i, y := range labels {
			row := logits.Value.Data[i*k : (i+1)*k]
			best := 0
			for j, v := range row {
				if v > row[best] {
					best = j
				}
			}
			if best == y {
				correct++
			}
		}
	}
	return float64(correct) / float64(len(ds.Samples))
}

// SpecAugment applies time and frequency masking to a batch of [n,h,w,1]
// spectrogram features (Park et al. 2019, used by the KWS recipe).
func SpecAugment(rng *rand.Rand, x *tensor.Tensor, maxTime, maxFreq int) *tensor.Tensor {
	n, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	out := x.Clone()
	for b := 0; b < n; b++ {
		// Time mask (rows).
		tLen := rng.Intn(maxTime + 1)
		if tLen > 0 && h > tLen {
			t0 := rng.Intn(h - tLen)
			for t := t0; t < t0+tLen; t++ {
				for c := 0; c < w; c++ {
					out.Data[(b*h+t)*w+c] = 0
				}
			}
		}
		// Frequency mask (columns).
		fLen := rng.Intn(maxFreq + 1)
		if fLen > 0 && w > fLen {
			f0 := rng.Intn(w - fLen)
			for t := 0; t < h; t++ {
				for c := f0; c < f0+fLen; c++ {
					out.Data[(b*h+t)*w+c] = 0
				}
			}
		}
	}
	return out
}

// Mixup blends random pairs within the batch (Zhang et al. 2017, used by
// the AD recipe with alpha 0.3) returning mixed inputs and soft targets.
func Mixup(rng *rand.Rand, x *tensor.Tensor, labels []int, numClasses int, alpha float32) (*tensor.Tensor, *tensor.Tensor) {
	n := x.Shape[0]
	per := x.Len() / n
	out := x.Clone()
	targets := tensor.New(n, numClasses)
	for i := 0; i < n; i++ {
		j := rng.Intn(n)
		// Beta(alpha, alpha) via the two-gamma construction would need a
		// gamma sampler; a symmetric triangular approximation with the
		// same support/mean keeps mixing strength comparable.
		lam := 1 - alpha*rng.Float32()
		for k := 0; k < per; k++ {
			out.Data[i*per+k] = lam*x.Data[i*per+k] + (1-lam)*x.Data[j*per+k]
		}
		targets.Data[i*numClasses+labels[i]] += lam
		targets.Data[i*numClasses+labels[j]] += 1 - lam
	}
	return out, targets
}

// AUC computes the area under the ROC curve given anomaly scores (higher
// = more anomalous) and ground truth.
func AUC(scores []float64, anomalous []bool) float64 {
	if len(scores) != len(anomalous) {
		panic("train: AUC length mismatch")
	}
	type pair struct {
		s float64
		a bool
	}
	ps := make([]pair, len(scores))
	for i := range scores {
		ps[i] = pair{scores[i], anomalous[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s < ps[j].s })
	// Rank-sum (Mann-Whitney U) with tie handling by average rank.
	var nPos, nNeg float64
	var rankSum float64
	i := 0
	rank := 1.0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		avgRank := (rank + rank + float64(j-i) - 1) / 2
		for k := i; k < j; k++ {
			if ps[k].a {
				rankSum += avgRank
				nPos++
			} else {
				nNeg++
			}
		}
		rank += float64(j - i)
		i = j
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	u := rankSum - nPos*(nPos+1)/2
	return u / (nPos * nNeg)
}

// AnomalyScores runs the self-supervised AD protocol (§4.3): the anomaly
// score of a test sample is the negative softmax probability assigned to
// its own machine ID.
func AnomalyScores(model *nn.Sequential, test []datasets.ADSample) (scores []float64, truth []bool) {
	for _, s := range test {
		x := s.X.Reshape(1, s.X.Shape[0], s.X.Shape[1], s.X.Shape[2])
		logits := model.Forward(ag.Constant(x), false)
		probs := ag.SoftmaxRows(logits.Value)
		scores = append(scores, -float64(probs.Data[s.MachineID]))
		truth = append(truth, s.Anomalous)
	}
	return scores, truth
}

// EvalAUC is the end-to-end AD metric.
func EvalAUC(model *nn.Sequential, test []datasets.ADSample) float64 {
	s, t := AnomalyScores(model, test)
	return AUC(s, t)
}
