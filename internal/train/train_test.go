package train

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"micronets/internal/arch"
	"micronets/internal/datasets"
	"micronets/internal/nn"
	"micronets/internal/tensor"
)

func TestAUCKnownValues(t *testing.T) {
	// Perfect separation.
	if got := AUC([]float64{1, 2, 3, 4}, []bool{false, false, true, true}); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
	// Inverted.
	if got := AUC([]float64{4, 3, 2, 1}, []bool{false, false, true, true}); got != 0 {
		t.Fatalf("inverted AUC = %v", got)
	}
	// All ties -> 0.5.
	if got := AUC([]float64{1, 1, 1, 1}, []bool{false, true, false, true}); got != 0.5 {
		t.Fatalf("tied AUC = %v", got)
	}
	// Degenerate single-class -> 0.5 by convention.
	if got := AUC([]float64{1, 2}, []bool{true, true}); got != 0.5 {
		t.Fatalf("single-class AUC = %v", got)
	}
}

func TestQuickAUCInvariantToMonotone(t *testing.T) {
	f := func(raw []float64, mask []bool) bool {
		n := len(raw)
		if len(mask) < n {
			n = len(mask)
		}
		if n < 2 {
			return true
		}
		scores := raw[:n]
		for _, s := range scores {
			if math.IsNaN(s) || math.IsInf(s, 0) || math.Abs(s) > 1e15 {
				return true
			}
		}
		truth := mask[:n]
		a := AUC(scores, truth)
		// Strictly monotone transform preserves AUC.
		tr := make([]float64, n)
		for i, s := range scores {
			tr[i] = 3*s + 7
		}
		b := AUC(tr, truth)
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecAugmentMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(2, 10, 8, 1).Fill(1)
	got := SpecAugment(rng, x, 4, 2)
	zeros := 0
	for _, v := range got.Data {
		if v == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Fatal("SpecAugment masked nothing across a batch")
	}
	for _, v := range x.Data {
		if v != 1 {
			t.Fatal("SpecAugment must not modify its input")
		}
	}
}

func TestMixupTargetsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(4, 2, 2, 1).Fill(1)
	labels := []int{0, 1, 2, 0}
	_, targets := Mixup(rng, x, labels, 3, 0.3)
	for i := 0; i < 4; i++ {
		var s float32
		for j := 0; j < 3; j++ {
			s += targets.Data[i*3+j]
		}
		if math.Abs(float64(s)-1) > 1e-5 {
			t.Fatalf("mixup target row %d sums to %v", i, s)
		}
	}
}

func tinyVWWModel(t *testing.T, rng *rand.Rand, size int) *nn.Sequential {
	t.Helper()
	spec := &arch.Spec{
		Name: "tiny-vww", Task: "vww",
		InputH: size, InputW: size, InputC: 1, NumClasses: 2,
		Blocks: []arch.Block{
			{Kind: arch.Conv, KH: 3, KW: 3, OutC: 8, Stride: 2},
			{Kind: arch.DSBlock, KH: 3, KW: 3, OutC: 16, Stride: 2},
			{Kind: arch.GlobalPool},
			{Kind: arch.Dense, OutC: 2},
		},
	}
	m, err := arch.Build(rng, spec, arch.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFitLearnsVWW is the supervised-path integration test: a tiny CNN
// must beat chance comfortably on the synthetic person-detection task.
func TestFitLearnsVWW(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := datasets.SynthVWW(datasets.VWWOptions{Size: 24, PerClass: 60, Seed: 4})
	trainDS, testDS := ds.Split(rng, 0.25)
	model := tinyVWWModel(t, rng, 24)
	_, err := Fit(model, trainDS, Config{
		Steps: 150, BatchSize: 16,
		LR:   nn.CosineSchedule{Start: 0.08, End: 0.005, Steps: 150},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(model, testDS)
	if acc < 0.7 {
		t.Fatalf("VWW accuracy %.2f, want > 0.7", acc)
	}
}

// TestADProtocolBeatsChance trains the machine-ID classifier and checks
// the self-supervised anomaly score yields AUC well above 0.5.
func TestADProtocolBeatsChance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ad := datasets.SynthAD(datasets.ADOptions{
		Machines: 4, ClipsPerMachine: 3, AnomaliesPerMachine: 2, ClipSeconds: 3, Seed: 7,
	})
	cls := ad.ClassifierDataset()
	spec := &arch.Spec{
		Name: "tiny-ad", Task: "ad",
		InputH: 32, InputW: 32, InputC: 1, NumClasses: 4,
		Blocks: []arch.Block{
			{Kind: arch.Conv, KH: 3, KW: 3, OutC: 8, Stride: 2},
			{Kind: arch.DSBlock, KH: 3, KW: 3, OutC: 16, Stride: 2},
			{Kind: arch.GlobalPool},
			{Kind: arch.Dense, OutC: 4},
		},
	}
	model, err := arch.Build(rng, spec, arch.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fit(model, cls, Config{
		Steps: 50, BatchSize: 16,
		LR:         nn.CosineSchedule{Start: 0.05, End: 0.005, Steps: 50},
		MixupAlpha: 0.3,
		Seed:       8,
	}); err != nil {
		t.Fatal(err)
	}
	auc := EvalAUC(model, ad.Test)
	if auc < 0.65 {
		t.Fatalf("AD AUC %.3f, want > 0.65", auc)
	}
}

func TestFitValidatesConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	model := tinyVWWModel(t, rng, 16)
	ds := datasets.SynthVWW(datasets.VWWOptions{Size: 16, PerClass: 2, Seed: 10})
	if _, err := Fit(model, ds, Config{}); err == nil {
		t.Fatal("zero-step config must error")
	}
}
