package core

import (
	"fmt"
	"math/rand"

	"micronets/internal/arch"
	ag "micronets/internal/autograd"
	"micronets/internal/nn"
	"micronets/internal/tensor"
)

// SupernetBlock configures one searchable depthwise-separable block.
type SupernetBlock struct {
	// Stride of the depthwise convolution.
	Stride int
	// WidthOptions are the candidate output widths (effective channels).
	WidthOptions []int
	// Skippable adds the parallel identity/pooling shortcut so DNAS can
	// drop the block entirely (depth search, §5.2.2). Stride-2 blocks are
	// conventionally non-skippable so the spatial schedule is preserved.
	Skippable bool
}

// SupernetConfig describes a DS-CNN style supernet backbone — the search
// space used for the KWS and AD MicroNets (§5.2.2, §5.2.3).
type SupernetConfig struct {
	Name                   string
	Task                   string
	InputH, InputW, InputC int
	NumClasses             int

	// First standard convolution.
	FirstKH, FirstKW, FirstStride int
	FirstWidthOptions             []int

	// MaxC is the physical channel width of every block (the largest
	// option); masking realizes narrower choices.
	MaxC int

	Blocks []SupernetBlock

	// Final VALID average pool size; zero means global pooling.
	PoolKH, PoolKW int
}

// Supernet is the trainable search network: shared weights at maximal
// width plus one DecisionNode per width/depth choice.
type Supernet struct {
	cfg SupernetConfig

	firstConv *nn.Conv2D
	firstBN   *nn.BatchNorm
	firstNode *DecisionNode

	dw    []*nn.DepthwiseConv2D
	dwBN  []*nn.BatchNorm
	pw    []*nn.Conv2D
	pwBN  []*nn.BatchNorm
	width []*DecisionNode
	depth []*DecisionNode // nil when not skippable

	fc *nn.Dense
}

// NewSupernet builds the supernet with He-initialized shared weights.
func NewSupernet(rng *rand.Rand, cfg SupernetConfig) (*Supernet, error) {
	if cfg.MaxC <= 0 {
		return nil, fmt.Errorf("core: supernet %s needs MaxC > 0", cfg.Name)
	}
	firstMax := cfg.FirstWidthOptions[len(cfg.FirstWidthOptions)-1]
	if firstMax != cfg.MaxC {
		return nil, fmt.Errorf("core: first conv max width %d must equal MaxC %d (uniform physical width)", firstMax, cfg.MaxC)
	}
	s := &Supernet{
		cfg:       cfg,
		firstConv: nn.NewConv2D(rng, "first", cfg.FirstKH, cfg.FirstKW, cfg.InputC, cfg.MaxC, cfg.FirstStride, nn.PadSame, false),
		firstBN:   nn.NewBatchNorm("first.bn", cfg.MaxC),
		firstNode: NewDecisionNode("first.width", len(cfg.FirstWidthOptions)),
	}
	for i, b := range cfg.Blocks {
		bm := b.WidthOptions[len(b.WidthOptions)-1]
		if bm != cfg.MaxC {
			return nil, fmt.Errorf("core: block %d max width %d must equal MaxC %d", i, bm, cfg.MaxC)
		}
		name := fmt.Sprintf("b%d", i)
		s.dw = append(s.dw, nn.NewDepthwiseConv2D(rng, name+".dw", 3, 3, cfg.MaxC, b.Stride, nn.PadSame, false))
		s.dwBN = append(s.dwBN, nn.NewBatchNorm(name+".dwbn", cfg.MaxC))
		s.pw = append(s.pw, nn.NewConv2D(rng, name+".pw", 1, 1, cfg.MaxC, cfg.MaxC, 1, nn.PadSame, false))
		s.pwBN = append(s.pwBN, nn.NewBatchNorm(name+".pwbn", cfg.MaxC))
		s.width = append(s.width, NewDecisionNode(name+".width", len(b.WidthOptions)))
		if b.Skippable && b.Stride == 1 {
			s.depth = append(s.depth, NewDecisionNode(name+".depth", 2))
		} else {
			s.depth = append(s.depth, nil)
		}
	}
	// Classifier input is the pooled MaxC vector.
	s.fc = nn.NewDense(rng, "fc", cfg.MaxC, cfg.NumClasses, true)
	return s, nil
}

// WeightParams returns the shared network weights (trained on the train
// split).
func (s *Supernet) WeightParams() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, s.firstConv.Params()...)
	ps = append(ps, s.firstBN.Params()...)
	for i := range s.dw {
		ps = append(ps, s.dw[i].Params()...)
		ps = append(ps, s.dwBN[i].Params()...)
		ps = append(ps, s.pw[i].Params()...)
		ps = append(ps, s.pwBN[i].Params()...)
	}
	ps = append(ps, s.fc.Params()...)
	return ps
}

// ArchParams returns the architecture logits (trained on the val split).
func (s *Supernet) ArchParams() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, &nn.Param{Name: s.firstNode.Name, V: s.firstNode.Alpha})
	for i := range s.width {
		ps = append(ps, &nn.Param{Name: s.width[i].Name, V: s.width[i].Alpha})
		if s.depth[i] != nil {
			ps = append(ps, &nn.Param{Name: s.depth[i].Name, V: s.depth[i].Alpha})
		}
	}
	return ps
}

// Resources aggregates the differentiable resource model of a forward
// pass: expected parameter count, op count, and the per-node working
// memory terms whose max is the SRAM model (§5.1.1, §5.1.2).
type Resources struct {
	// ParamCount is the expected number of weights (eq. 2 summed).
	ParamCount *ag.Var
	// OpCount is the expected MAC*2 count (the latency proxy).
	OpCount *ag.Var
	// WorkMemTerms are per-node (inputs+outputs) element counts; SRAM
	// working memory is their maximum (the SpArSe model).
	WorkMemTerms []*ag.Var
}

// WorkingMemory returns the differentiable max over node working-memory
// terms.
func (r *Resources) WorkingMemory() *ag.Var {
	return ag.MaxN(r.WorkMemTerms...)
}

// Forward runs the supernet, returning classifier logits and the resource
// model tied to the same architecture sample. rng enables Gumbel sampling
// (nil for deterministic softmax weights); tau is the relaxation
// temperature.
func (s *Supernet) Forward(x *ag.Var, training bool, rng *rand.Rand, tau float32) (*ag.Var, *Resources) {
	cfg := s.cfg
	res := &Resources{
		ParamCount: ag.Constant(tensor.Scalar(0)),
		OpCount:    ag.Constant(tensor.Scalar(0)),
	}
	h, w := cfg.InputH, cfg.InputW

	// First conv.
	zFirst := s.firstNode.Weights(rng, tau)
	y := s.firstConv.Forward(x, training)
	y = s.firstBN.Forward(y, training)
	y = ag.ReLU(y)
	mask := channelMask(zFirst, cfg.FirstWidthOptions, cfg.MaxC)
	y = ag.ChannelScale(y, mask)
	ePrev := ExpectedChannels(zFirst, cfg.FirstWidthOptions)
	oh, ow := sameOut(h, cfg.FirstStride), sameOut(w, cfg.FirstStride)
	inElems := float32(h * w * cfg.InputC)
	kArea := float32(cfg.FirstKH * cfg.FirstKW * cfg.InputC)
	res.ParamCount = ag.Add(res.ParamCount, ag.Scale(ePrev, kArea))
	res.OpCount = ag.Add(res.OpCount, ag.Scale(ePrev, 2*float32(oh*ow)*kArea))
	res.WorkMemTerms = append(res.WorkMemTerms,
		ag.AddScalar(ag.Scale(ePrev, float32(oh*ow)), inElems))
	h, w = oh, ow

	for i := range s.dw {
		blk := cfg.Blocks[i]
		zW := s.width[i].Weights(rng, tau)
		oh, ow = sameOut(h, blk.Stride), sameOut(w, blk.Stride)

		body := s.dw[i].Forward(y, training)
		body = s.dwBN[i].Forward(body, training)
		body = ag.ReLU(body)
		body = s.pw[i].Forward(body, training)
		body = s.pwBN[i].Forward(body, training)
		body = ag.ReLU(body)
		mask := channelMask(zW, blk.WidthOptions, cfg.MaxC)
		body = ag.ChannelScale(body, mask)
		eOut := ExpectedChannels(zW, blk.WidthOptions)

		// Differentiable costs for this block (dw then pw), scaled later
		// by the depth keep-probability when skippable.
		// dw params: 9*E[cin]; dw macs: oh*ow*9*E[cin].
		// pw params: E[cin]*E[cout]; pw macs: oh*ow*E[cin]*E[cout].
		dwParams := ag.Scale(ePrev, 9)
		dwOps := ag.Scale(ePrev, 2*9*float32(oh*ow))
		pwCross := ag.Mul(ePrev, eOut)
		pwOps := ag.Scale(pwCross, 2*float32(oh*ow))
		blockParams := ag.Add(dwParams, pwCross)
		blockOps := ag.Add(dwOps, pwOps)
		// Working memory: dw node sees (h*w + oh*ow)*E[cin]; pw node sees
		// oh*ow*(E[cin]+E[cout]).
		dwMem := ag.Scale(ePrev, float32(h*w+oh*ow))
		pwMem := ag.Scale(ag.Add(ePrev, eOut), float32(oh*ow))

		if s.depth[i] != nil {
			zD := s.depth[i].Weights(rng, tau)
			zKeep := ag.Index(zD, 0)
			zSkip := ag.Index(zD, 1)
			// Shortcut: identity (stride is 1 for skippable blocks).
			y = ag.Add(ag.ScalarMul(zKeep, body), ag.ScalarMul(zSkip, y))
			res.ParamCount = ag.Add(res.ParamCount, ag.ScalarMul(zKeep, blockParams))
			res.OpCount = ag.Add(res.OpCount, ag.ScalarMul(zKeep, blockOps))
			res.WorkMemTerms = append(res.WorkMemTerms,
				ag.ScalarMul(zKeep, dwMem), ag.ScalarMul(zKeep, pwMem))
			// Expected output width blends kept and skipped widths.
			eOut = ag.Add(ag.ScalarMul(zKeep, eOut), ag.ScalarMul(zSkip, ePrev))
		} else {
			y = body
			res.ParamCount = ag.Add(res.ParamCount, blockParams)
			res.OpCount = ag.Add(res.OpCount, blockOps)
			res.WorkMemTerms = append(res.WorkMemTerms, dwMem, pwMem)
		}
		ePrev = eOut
		h, w = oh, ow
	}

	// Final pool + classifier.
	if cfg.PoolKH > 0 {
		y = ag.AvgPool2D(y, tensor.ConvSpec{KH: cfg.PoolKH, KW: cfg.PoolKW, SH: 1, SW: 1})
		y = ag.Reshape(y, y.Value.Shape[0], -1)
	} else {
		y = ag.GlobalAvgPool(y)
	}
	logits := s.fc.Forward(y, training)
	fcParams := ag.Scale(ePrev, float32(cfg.NumClasses))
	res.ParamCount = ag.Add(res.ParamCount, fcParams)
	res.OpCount = ag.Add(res.OpCount, ag.Scale(fcParams, 2))
	return logits, res
}

// Discretize reads the decision nodes and emits the selected architecture
// as an arch.Spec ready for final training and deployment.
func (s *Supernet) Discretize(name string) *arch.Spec {
	cfg := s.cfg
	spec := &arch.Spec{
		Name: name, Task: cfg.Task, Source: "repro",
		InputH: cfg.InputH, InputW: cfg.InputW, InputC: cfg.InputC,
		NumClasses: cfg.NumClasses,
	}
	firstC := cfg.FirstWidthOptions[s.firstNode.ArgMax()]
	spec.Blocks = append(spec.Blocks, arch.Block{
		Kind: arch.Conv, KH: cfg.FirstKH, KW: cfg.FirstKW, OutC: firstC, Stride: cfg.FirstStride,
	})
	for i, b := range cfg.Blocks {
		if s.depth[i] != nil && s.depth[i].ArgMax() == 1 {
			continue // block skipped
		}
		c := b.WidthOptions[s.width[i].ArgMax()]
		spec.Blocks = append(spec.Blocks, arch.Block{
			Kind: arch.DSBlock, KH: 3, KW: 3, OutC: c, Stride: b.Stride,
		})
	}
	if cfg.PoolKH > 0 {
		spec.Blocks = append(spec.Blocks, arch.Block{Kind: arch.AvgPool, KH: cfg.PoolKH, KW: cfg.PoolKW, Stride: 1})
	} else {
		spec.Blocks = append(spec.Blocks, arch.Block{Kind: arch.GlobalPool})
	}
	spec.Blocks = append(spec.Blocks, arch.Block{Kind: arch.Dense, OutC: cfg.NumClasses})
	return spec
}

func sameOut(in, s int) int {
	if s <= 1 {
		return in
	}
	if in%s == 0 {
		return in / s
	}
	return in/s + 1
}
