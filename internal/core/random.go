package core

import (
	"fmt"
	"math/rand"

	"micronets/internal/arch"
)

// Random model sampling from parameterized supernet backbones — the
// methodology of §3.3: "we setup a parameterized supernet backbone that we
// randomly sample. This allows us to automatically generate a large number
// of random models with different layer types and dimensions."

// RandomKWSModel samples a DS-CNN-style model from the KWS backbone
// (49x10 MFCC input): random depth and random multiple-of-4 widths.
func RandomKWSModel(rng *rand.Rand, idx int) *arch.Spec {
	blocks := 2 + rng.Intn(6)        // 2..7 DS blocks
	firstC := 4 * (4 + rng.Intn(60)) // 16..252
	spec := &arch.Spec{
		Name: fmt.Sprintf("rand-kws-%d", idx), Task: "kws", Source: "repro",
		InputH: 49, InputW: 10, InputC: 1, NumClasses: 12,
	}
	spec.Blocks = append(spec.Blocks, arch.Block{
		Kind: arch.Conv, KH: 10, KW: 4, OutC: firstC, Stride: 1,
	})
	spec.Blocks = append(spec.Blocks, arch.Block{
		Kind: arch.DSBlock, KH: 3, KW: 3, OutC: 4 * (4 + rng.Intn(60)), Stride: 2,
	})
	for i := 1; i < blocks; i++ {
		spec.Blocks = append(spec.Blocks, arch.Block{
			Kind: arch.DSBlock, KH: 3, KW: 3, OutC: 4 * (4 + rng.Intn(60)), Stride: 1,
		})
	}
	spec.Blocks = append(spec.Blocks,
		arch.Block{Kind: arch.AvgPool, KH: 25, KW: 5, Stride: 1},
		arch.Block{Kind: arch.Dense, OutC: 12},
	)
	return spec
}

// RandomImageModel samples a CIFAR10-style image-classification model
// (32x32x3 input) from a MobileNetV2-like inverted-bottleneck backbone —
// the image backbone of Figures 4 and 5. IBN stacks spend a larger share
// of their ops in depthwise and narrow expansion layers, which is what
// gives the image backbone its ~40% lower Mops/s than the KWS backbone.
func RandomImageModel(rng *rand.Rand, idx int) *arch.Spec {
	spec := &arch.Spec{
		Name: fmt.Sprintf("rand-img-%d", idx), Task: "vww", Source: "repro",
		InputH: 32, InputW: 32, InputC: 3, NumClasses: 10,
	}
	// The image backbone's narrower layers and heavier depthwise share
	// keep its sustained Mops/s ~40% below the KWS backbone's (§3.3); an
	// occasional non-multiple-of-4 width (the VWW space searches 10%..100%
	// of MobileNetV2 widths, not 4-aligned ones) adds alignment-penalty
	// scatter.
	spec.Blocks = append(spec.Blocks, arch.Block{
		Kind: arch.Conv, KH: 3, KW: 3, OutC: 4 * (2 + rng.Intn(8)), Stride: 1,
	})
	stages := 2 + rng.Intn(2) // 2..3 downsampling stages
	for s := 0; s < stages; s++ {
		c := 4 * (4 + rng.Intn(12))
		e := c * (2 + rng.Intn(4))
		spec.Blocks = append(spec.Blocks, arch.Block{
			Kind: arch.IBN, KH: 3, KW: 3, Expand: e, OutC: c, Stride: 2,
		})
		per := 1 + rng.Intn(3)
		for i := 0; i < per; i++ {
			spec.Blocks = append(spec.Blocks, arch.Block{
				Kind: arch.IBN, KH: 3, KW: 3, Expand: c * (2 + rng.Intn(4)), OutC: c, Stride: 1,
			})
		}
	}
	spec.Blocks = append(spec.Blocks,
		arch.Block{Kind: arch.GlobalPool},
		arch.Block{Kind: arch.Dense, OutC: 10},
	)
	return spec
}

// RandomLayer describes a single-layer micro-benchmark for the layer-wise
// characterization of Figure 3.
type RandomLayer struct {
	Kind string // "conv", "dwconv", "fc"
	Spec *arch.Spec
}

// RandomSingleLayer samples one layer of the given kind with random
// dimensions, wrapped in a minimal Spec so it can be lowered and costed.
// Channel counts are NOT restricted to multiples of four: Figure 3's
// spread includes the CMSIS-NN alignment penalty.
func RandomSingleLayer(rng *rand.Rand, kind string, idx int) RandomLayer {
	name := fmt.Sprintf("layer-%s-%d", kind, idx)
	switch kind {
	case "conv":
		hw := []int{8, 16, 24, 32, 48, 64}[rng.Intn(6)]
		inC := 4 + rng.Intn(124)
		outC := 4 + rng.Intn(124)
		k := []int{1, 3, 5}[rng.Intn(3)]
		return RandomLayer{Kind: kind, Spec: &arch.Spec{
			Name: name, Task: "bench", InputH: hw, InputW: hw, InputC: inC,
			Blocks: []arch.Block{{Kind: arch.Conv, KH: k, KW: k, OutC: outC, Stride: 1 + rng.Intn(2)}},
		}}
	case "dwconv":
		hw := []int{8, 16, 24, 32, 48, 64}[rng.Intn(6)]
		c := 8 + rng.Intn(248)
		return RandomLayer{Kind: kind, Spec: &arch.Spec{
			Name: name, Task: "bench", InputH: hw, InputW: hw, InputC: c,
			Blocks: []arch.Block{
				{Kind: arch.DSBlock, KH: 3, KW: 3, OutC: c, Stride: 1 + rng.Intn(2)},
			},
		}}
	case "fc":
		in := 64 + rng.Intn(1984)
		out := 16 + rng.Intn(496)
		return RandomLayer{Kind: kind, Spec: &arch.Spec{
			Name: name, Task: "bench", InputH: 1, InputW: 1, InputC: in,
			Blocks: []arch.Block{{Kind: arch.Dense, OutC: out}},
		}}
	default:
		panic(fmt.Sprintf("core: unknown layer kind %q", kind))
	}
}
