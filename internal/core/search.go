package core

import (
	"fmt"
	"math/rand"

	"micronets/internal/arch"
	ag "micronets/internal/autograd"
	"micronets/internal/nn"
	"micronets/internal/tensor"
)

// Constraints are the MCU budgets the search must satisfy (§5.1): model
// size against eFlash, working memory against SRAM (minus the expected
// TFLM overhead), and op count as the latency/energy proxy justified by
// the hardware characterization (§3). All memory budgets are denominated
// in BYTES so they compose directly with the tflm planner's byte
// accounting (device SRAM/flash budgets, tflm.MemoryReport, the search
// harness). During the differentiable search the relaxed resource model
// counts int8 weights and activations, where one element is one byte, so
// the same budgets bound both the relaxed and the planner-measured model.
type Constraints struct {
	// MaxWeightBytes bounds the int8 weight bytes (the eFlash budget;
	// one weight is one byte).
	MaxWeightBytes float64
	// MaxArenaBytes bounds the activation working memory in bytes. The
	// differentiable proxy is max-over-nodes (inputs+outputs) int8 bytes;
	// the tflm arena planner refines it downward with buffer reuse, so a
	// relaxed model under this budget stays under it after planning (the
	// tflm property tests pin this).
	MaxArenaBytes float64
	// MaxOps bounds the op count (2*MACs).
	MaxOps float64

	// Penalty weights.
	LambdaParams, LambdaMem, LambdaOps float32
}

// DefaultLambdas fills zero penalty weights with sensible defaults.
func (c Constraints) withDefaults() Constraints {
	if c.LambdaParams == 0 {
		c.LambdaParams = 2
	}
	if c.LambdaMem == 0 {
		c.LambdaMem = 2
	}
	if c.LambdaOps == 0 {
		c.LambdaOps = 2
	}
	return c
}

// Penalty builds the differentiable constraint penalty
// Σ λ·relu(usage/budget − 1) from a forward pass's resource model.
func (c Constraints) Penalty(res *Resources) *ag.Var {
	cc := c.withDefaults()
	total := ag.Constant(tensor.Scalar(0))
	add := func(usage *ag.Var, budget float64, lambda float32) {
		if budget <= 0 {
			return
		}
		norm := ag.AddScalar(ag.Scale(usage, float32(1/budget)), -1)
		total = ag.Add(total, ag.Scale(ag.ReLU(norm), lambda))
	}
	add(res.ParamCount, c.MaxWeightBytes, cc.LambdaParams)
	add(res.WorkingMemory(), c.MaxArenaBytes, cc.LambdaMem)
	add(res.OpCount, c.MaxOps, cc.LambdaOps)
	return total
}

// Violations reports which budgets the current (discrete) resource values
// exceed; used for logging and tests.
func (c Constraints) Violations(res *Resources) []string {
	var v []string
	if c.MaxWeightBytes > 0 && float64(res.ParamCount.Scalar()) > c.MaxWeightBytes {
		v = append(v, fmt.Sprintf("weight bytes %.0f > %.0f", res.ParamCount.Scalar(), c.MaxWeightBytes))
	}
	if c.MaxArenaBytes > 0 && float64(res.WorkingMemory().Scalar()) > c.MaxArenaBytes {
		v = append(v, fmt.Sprintf("arena bytes %.0f > %.0f", res.WorkingMemory().Scalar(), c.MaxArenaBytes))
	}
	if c.MaxOps > 0 && float64(res.OpCount.Scalar()) > c.MaxOps {
		v = append(v, fmt.Sprintf("ops %.0f > %.0f", res.OpCount.Scalar(), c.MaxOps))
	}
	return v
}

// CheckBytes reports which budgets a concrete (already lowered or
// analyzed) model exceeds, given its byte-denominated usage: weightBytes
// from graph.Model.WeightBytes or arch.Analysis.TotalParams, arenaBytes
// from the tflm planner (or the analytic peak-working-set proxy), and ops
// as 2*MACs. It is the non-differentiable twin of Violations used by the
// hardware-in-the-loop search harness, where the planner's byte
// accounting replaces the relaxed element counts.
func (c Constraints) CheckBytes(weightBytes, arenaBytes, ops float64) []string {
	var v []string
	if c.MaxWeightBytes > 0 && weightBytes > c.MaxWeightBytes {
		v = append(v, fmt.Sprintf("weight bytes %.0f > %.0f", weightBytes, c.MaxWeightBytes))
	}
	if c.MaxArenaBytes > 0 && arenaBytes > c.MaxArenaBytes {
		v = append(v, fmt.Sprintf("arena bytes %.0f > %.0f", arenaBytes, c.MaxArenaBytes))
	}
	if c.MaxOps > 0 && ops > c.MaxOps {
		v = append(v, fmt.Sprintf("ops %.0f > %.0f", ops, c.MaxOps))
	}
	return v
}

// Batch is one training batch.
type Batch struct {
	X      *tensor.Tensor // [n,h,w,c]
	Labels []int
}

// SearchConfig drives RunSearch.
type SearchConfig struct {
	Steps int
	// ArchStartStep delays architecture updates so weights warm up first
	// (standard DNAS practice).
	ArchStartStep int
	WeightLR      nn.CosineSchedule
	ArchLR        float32
	// TauStart/TauEnd anneal the Gumbel-softmax temperature.
	TauStart, TauEnd float32
	Seed             int64
	// Log receives progress lines (optional).
	Log func(string)
}

// SearchResult reports the discovered architecture and its (expected)
// resource usage at the end of the search.
type SearchResult struct {
	Spec         *arch.Spec
	FinalLoss    float32
	FinalPenalty float32
	ParamCount   float64
	OpCount      float64
	WorkMemElems float64
	Violations   []string
}

// RunSearch trains the supernet with alternating weight/architecture
// updates (first-order DARTS style): weights minimize task loss on train
// batches, architecture logits minimize task loss + constraint penalty on
// validation batches.
func RunSearch(s *Supernet, train, val func(step int) Batch, cons Constraints, cfg SearchConfig) (*SearchResult, error) {
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("core: search needs Steps > 0")
	}
	if cfg.TauStart == 0 {
		cfg.TauStart = 5
	}
	if cfg.TauEnd == 0 {
		cfg.TauEnd = 0.5
	}
	if cfg.ArchLR == 0 {
		cfg.ArchLR = 0.05
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	wOpt := nn.NewSGD(0.9, 1e-4)
	aOpt := nn.NewAdam(0)
	wParams := s.WeightParams()
	aParams := s.ArchParams()

	var lastLoss, lastPen float32
	for step := 0; step < cfg.Steps; step++ {
		frac := float32(step) / float32(cfg.Steps)
		tau := cfg.TauStart + (cfg.TauEnd-cfg.TauStart)*frac

		// Weight update on the train split.
		b := train(step)
		logits, _ := s.Forward(ag.Constant(b.X), true, rng, tau)
		loss := ag.CrossEntropy(logits, b.Labels)
		ag.Backward(loss)
		nn.ClipGradNorm(wParams, 5)
		wOpt.Step(wParams, cfg.WeightLR.LR(step))
		lastLoss = loss.Scalar()

		// Architecture update on the val split.
		if step >= cfg.ArchStartStep {
			vb := val(step)
			vlogits, res := s.Forward(ag.Constant(vb.X), false, rng, tau)
			pen := cons.Penalty(res)
			vloss := ag.Add(ag.CrossEntropy(vlogits, vb.Labels), pen)
			ag.Backward(vloss)
			aOpt.Step(aParams, cfg.ArchLR)
			lastPen = pen.Scalar()
		}

		if cfg.Log != nil && (step%10 == 0 || step == cfg.Steps-1) {
			cfg.Log(fmt.Sprintf("step %d/%d tau=%.2f loss=%.4f penalty=%.4f",
				step+1, cfg.Steps, tau, lastLoss, lastPen))
		}
	}

	// Evaluate final resources deterministically (softmax weights, no
	// Gumbel noise, low temperature to approximate the discrete choice).
	b := val(cfg.Steps)
	_, res := s.Forward(ag.Constant(b.X), false, nil, 0.05)
	result := &SearchResult{
		Spec:         s.Discretize(fmt.Sprintf("DNAS-%s", s.cfg.Name)),
		FinalLoss:    lastLoss,
		FinalPenalty: lastPen,
		ParamCount:   float64(res.ParamCount.Scalar()),
		OpCount:      float64(res.OpCount.Scalar()),
		WorkMemElems: float64(res.WorkingMemory().Scalar()),
		Violations:   cons.Violations(res),
	}
	return result, nil
}

// KWSSupernetConfig returns the paper's KWS search space: an enlarged
// DS-CNN(L) backbone (§5.2.2) — first conv plus nine depthwise-separable
// blocks of up to 276 channels with parallel skips — here scaled by
// maxC/blocks so tests and laptop-scale searches stay tractable.
func KWSSupernetConfig(inputH, inputW, classes, maxC, blocks int) SupernetConfig {
	opts := WidthOptions(maxC, 8, true)
	cfg := SupernetConfig{
		Name: "kws", Task: "kws",
		InputH: inputH, InputW: inputW, InputC: 1, NumClasses: classes,
		FirstKH: 10, FirstKW: 4, FirstStride: 1,
		FirstWidthOptions: opts,
		MaxC:              maxC,
		PoolKH:            sameOut(inputH, 2), PoolKW: sameOut(inputW, 2),
	}
	for i := 0; i < blocks; i++ {
		b := SupernetBlock{Stride: 1, WidthOptions: opts, Skippable: i > 0}
		if i == 0 {
			b.Stride = 2
		}
		cfg.Blocks = append(cfg.Blocks, b)
	}
	return cfg
}

// ADSupernetConfig returns the anomaly-detection search space (§5.2.3):
// DS-CNN backbone on 32x32 spectrogram patches with the last two blocks at
// stride 2.
func ADSupernetConfig(maxC, blocks int) SupernetConfig {
	opts := WidthOptions(maxC, 8, true)
	cfg := SupernetConfig{
		Name: "ad", Task: "ad",
		InputH: 32, InputW: 32, InputC: 1, NumClasses: 4,
		FirstKH: 3, FirstKW: 3, FirstStride: 1,
		FirstWidthOptions: opts,
		MaxC:              maxC,
	}
	for i := 0; i < blocks; i++ {
		b := SupernetBlock{Stride: 1, WidthOptions: opts, Skippable: true}
		if i == 0 || i >= blocks-2 {
			b.Stride = 2
			b.Skippable = false
		}
		cfg.Blocks = append(cfg.Blocks, b)
	}
	// 32 -> 16 -> ... -> pool whatever remains globally.
	cfg.PoolKH, cfg.PoolKW = 0, 0
	return cfg
}
