package core

import (
	"math"
	"math/rand"
	"testing"

	"micronets/internal/arch"
	ag "micronets/internal/autograd"
	"micronets/internal/nn"
	"micronets/internal/tensor"
)

func TestWidthOptions(t *testing.T) {
	opts := WidthOptions(276, 8, true)
	for _, c := range opts {
		if c%4 != 0 {
			t.Fatalf("option %d not a multiple of 4", c)
		}
	}
	if opts[len(opts)-1] != 276 {
		t.Fatalf("largest option %d, want 276", opts[len(opts)-1])
	}
	for i := 1; i < len(opts); i++ {
		if opts[i] <= opts[i-1] {
			t.Fatal("options must be strictly increasing")
		}
	}
}

func TestDecisionNodeWeights(t *testing.T) {
	d := NewDecisionNode("d", 4)
	// Uniform logits -> uniform softmax.
	z := d.Weights(nil, 1)
	for _, v := range z.Value.Data {
		if math.Abs(float64(v)-0.25) > 1e-5 {
			t.Fatalf("uniform weights wrong: %v", z.Value.Data)
		}
	}
	// Gumbel samples are a valid distribution and vary.
	rng := rand.New(rand.NewSource(1))
	z1 := d.Weights(rng, 1)
	z2 := d.Weights(rng, 1)
	var s float32
	diff := false
	for i := range z1.Value.Data {
		s += z1.Value.Data[i]
		if z1.Value.Data[i] != z2.Value.Data[i] {
			diff = true
		}
	}
	if math.Abs(float64(s)-1) > 1e-5 {
		t.Fatalf("gumbel weights sum to %v", s)
	}
	if !diff {
		t.Fatal("gumbel samples must vary")
	}
	// Low temperature concentrates on the argmax.
	d.Alpha.Value.Data[2] = 5
	zc := d.Weights(nil, 0.1)
	if zc.Value.Data[2] < 0.99 {
		t.Fatalf("low-tau weights not concentrated: %v", zc.Value.Data)
	}
	if d.ArgMax() != 2 {
		t.Fatalf("ArgMax = %d", d.ArgMax())
	}
}

func TestChannelMask(t *testing.T) {
	z := ag.Constant(tensor.FromSlice([]float32{0.5, 0.5}, 2))
	m := channelMask(z, []int{2, 4}, 4)
	want := []float32{1, 1, 0.5, 0.5}
	for i := range want {
		if math.Abs(float64(m.Value.Data[i]-want[i])) > 1e-6 {
			t.Fatalf("mask = %v, want %v", m.Value.Data, want)
		}
	}
}

func TestExpectedChannels(t *testing.T) {
	z := ag.Constant(tensor.FromSlice([]float32{0.25, 0.75}, 2))
	e := ExpectedChannels(z, []int{4, 8})
	if math.Abs(float64(e.Scalar())-7) > 1e-5 {
		t.Fatalf("E[c] = %v, want 7", e.Scalar())
	}
}

func tinyConfig() SupernetConfig {
	opts := []int{4, 8}
	return SupernetConfig{
		Name: "tiny", Task: "kws",
		InputH: 8, InputW: 8, InputC: 1, NumClasses: 3,
		FirstKH: 3, FirstKW: 3, FirstStride: 1,
		FirstWidthOptions: opts,
		MaxC:              8,
		Blocks: []SupernetBlock{
			{Stride: 2, WidthOptions: opts},
			{Stride: 1, WidthOptions: opts, Skippable: true},
		},
	}
}

func TestSupernetForwardShapesAndResources(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, err := NewSupernet(rng, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := ag.Constant(tensor.Randn(rng, 1, 2, 8, 8, 1))
	logits, res := s.Forward(x, false, rng, 1)
	if logits.Value.Shape[0] != 2 || logits.Value.Shape[1] != 3 {
		t.Fatalf("logits shape %v", logits.Value.Shape)
	}
	if res.ParamCount.Scalar() <= 0 || res.OpCount.Scalar() <= 0 {
		t.Fatal("resources must be positive")
	}
	if len(res.WorkMemTerms) == 0 {
		t.Fatal("working-memory terms missing")
	}
	if res.WorkingMemory().Scalar() <= 0 {
		t.Fatal("working memory must be positive")
	}
}

func TestResourceModelMatchesDiscreteAnalysis(t *testing.T) {
	// When the decision nodes are (nearly) one-hot, the differentiable
	// resource model must agree with arch.Analyze on the discretized spec.
	rng := rand.New(rand.NewSource(3))
	s, err := NewSupernet(rng, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Force widths: first=8, block0=4, block1=8 kept.
	s.firstNode.Alpha.Value.Data[1] = 20
	s.width[0].Alpha.Value.Data[0] = 20
	s.width[1].Alpha.Value.Data[1] = 20
	s.depth[1].Alpha.Value.Data[0] = 20 // keep
	x := ag.Constant(tensor.Randn(rng, 1, 1, 8, 8, 1))
	_, res := s.Forward(x, false, nil, 0.05)

	spec := s.Discretize("check")
	a, err := spec.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	gotParams := float64(res.ParamCount.Scalar())
	// The analyzer counts the pool/bias-free params identically.
	if math.Abs(gotParams-float64(a.TotalParams))/float64(a.TotalParams) > 0.02 {
		t.Fatalf("differentiable params %.0f vs discrete %d", gotParams, a.TotalParams)
	}
	gotOps := float64(res.OpCount.Scalar())
	if math.Abs(gotOps-float64(a.TotalOps()))/float64(a.TotalOps()) > 0.02 {
		t.Fatalf("differentiable ops %.0f vs discrete %d", gotOps, a.TotalOps())
	}
}

func TestPenaltyZeroWhenUnderBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s, _ := NewSupernet(rng, tinyConfig())
	x := ag.Constant(tensor.Randn(rng, 1, 1, 8, 8, 1))
	_, res := s.Forward(x, false, nil, 1)
	cons := Constraints{MaxWeightBytes: 1e9, MaxArenaBytes: 1e9, MaxOps: 1e9}
	if p := cons.Penalty(res).Scalar(); p != 0 {
		t.Fatalf("penalty %v under budget, want 0", p)
	}
	tight := Constraints{MaxOps: 1}
	if p := tight.Penalty(res).Scalar(); p <= 0 {
		t.Fatal("penalty must be positive when over budget")
	}
	if len(tight.Violations(res)) == 0 {
		t.Fatal("violations must be reported")
	}
}

func TestPenaltyGradientPushesTowardSmaller(t *testing.T) {
	// One arch step against a tight ops budget must increase the logit of
	// the narrower width option.
	rng := rand.New(rand.NewSource(5))
	s, _ := NewSupernet(rng, tinyConfig())
	cons := Constraints{MaxOps: 1, LambdaOps: 10}
	x := ag.Constant(tensor.Randn(rng, 1, 2, 8, 8, 1))
	before := s.width[0].Probabilities()[0]
	for i := 0; i < 10; i++ {
		_, res := s.Forward(x, false, rng, 2)
		pen := cons.Penalty(res)
		ag.Backward(pen)
		opt := nn.NewSGD(0, 0)
		opt.Step(s.ArchParams(), 0.5)
	}
	after := s.width[0].Probabilities()[0]
	if after <= before {
		t.Fatalf("narrow-width probability must rise under ops pressure: %v -> %v", before, after)
	}
}

func TestDiscretizeStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s, _ := NewSupernet(rng, tinyConfig())
	s.depth[1].Alpha.Value.Data[1] = 10 // skip block 1
	spec := s.Discretize("d")
	// conv + block0 + pool + dense (block1 skipped).
	kinds := []arch.BlockKind{}
	for _, b := range spec.Blocks {
		kinds = append(kinds, b.Kind)
	}
	dsCount := 0
	for _, k := range kinds {
		if k == arch.DSBlock {
			dsCount++
		}
	}
	if dsCount != 1 {
		t.Fatalf("skipped block still present: %v", kinds)
	}
	if _, err := spec.Analyze(); err != nil {
		t.Fatalf("discretized spec invalid: %v", err)
	}
}

// TestSearchEndToEnd runs a tiny DNAS on a separable synthetic problem and
// asserts (a) it learns better than chance and (b) the discovered spec
// satisfies the constraints.
func TestSearchEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := tinyConfig()
	s, err := NewSupernet(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic 3-class task: class = which third of the image is bright.
	mkBatch := func(r *rand.Rand, n int) Batch {
		x := tensor.New(n, 8, 8, 1)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			c := r.Intn(3)
			labels[i] = c
			for y := 0; y < 8; y++ {
				for xx := 0; xx < 8; xx++ {
					v := float32(r.NormFloat64() * 0.3)
					if xx/3 == c || (c == 2 && xx >= 6) {
						v += 1.5
					}
					x.Data[(i*8+y)*8+xx] = v
				}
			}
		}
		return Batch{X: x, Labels: labels}
	}
	trainRng := rand.New(rand.NewSource(8))
	valRng := rand.New(rand.NewSource(9))
	cons := Constraints{MaxWeightBytes: 400, MaxOps: 40000, MaxArenaBytes: 2000, LambdaOps: 5, LambdaParams: 5, LambdaMem: 5}
	res, err := RunSearch(s,
		func(step int) Batch { return mkBatch(trainRng, 16) },
		func(step int) Batch { return mkBatch(valRng, 16) },
		cons,
		SearchConfig{
			Steps: 60, ArchStartStep: 10,
			WeightLR: nn.CosineSchedule{Start: 0.05, End: 0.005, Steps: 60},
			Seed:     10,
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec == nil {
		t.Fatal("no spec discovered")
	}
	a, err := res.Spec.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if float64(a.TotalParams) > cons.MaxWeightBytes {
		t.Errorf("discovered spec params %d exceed budget %.0f", a.TotalParams, cons.MaxWeightBytes)
	}
	if float64(a.TotalOps()) > cons.MaxOps {
		t.Errorf("discovered spec ops %d exceed budget %.0f", a.TotalOps(), cons.MaxOps)
	}
	// The supernet itself should classify better than chance by now.
	b := mkBatch(rand.New(rand.NewSource(11)), 60)
	logits, _ := s.Forward(ag.Constant(b.X), false, nil, 0.1)
	correct := 0
	for i, y := range b.Labels {
		row := logits.Value.Data[i*3 : (i+1)*3]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if best == y {
			correct++
		}
	}
	if correct < 30 { // chance is 20/60
		t.Fatalf("supernet accuracy %d/60 not better than chance", correct)
	}
}

func TestRandomModelsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 30; i++ {
		k := RandomKWSModel(rng, i)
		if _, err := k.Analyze(); err != nil {
			t.Fatalf("random kws %d invalid: %v", i, err)
		}
		m := RandomImageModel(rng, i)
		if _, err := m.Analyze(); err != nil {
			t.Fatalf("random image %d invalid: %v", i, err)
		}
	}
	for _, kind := range []string{"conv", "dwconv", "fc"} {
		l := RandomSingleLayer(rng, kind, 0)
		if _, err := l.Spec.Analyze(); err != nil {
			t.Fatalf("random layer %s invalid: %v", kind, err)
		}
	}
}

func TestKWSAndADSupernetConfigs(t *testing.T) {
	cfg := KWSSupernetConfig(49, 10, 12, 64, 4)
	rng := rand.New(rand.NewSource(13))
	s, err := NewSupernet(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := ag.Constant(tensor.Randn(rng, 1, 1, 49, 10, 1))
	logits, _ := s.Forward(x, false, nil, 1)
	if logits.Value.Shape[1] != 12 {
		t.Fatalf("KWS supernet classes %v", logits.Value.Shape)
	}
	adCfg := ADSupernetConfig(32, 4)
	ad, err := NewSupernet(rng, adCfg)
	if err != nil {
		t.Fatal(err)
	}
	xa := ag.Constant(tensor.Randn(rng, 1, 1, 32, 32, 1))
	alogits, _ := ad.Forward(xa, false, nil, 1)
	if alogits.Value.Shape[1] != 4 {
		t.Fatalf("AD supernet classes %v", alogits.Value.Shape)
	}
}
