package core

import (
	"math/rand"
	"testing"

	"micronets/internal/arch"
	ag "micronets/internal/autograd"
	"micronets/internal/nn"
	"micronets/internal/tensor"
)

func tinyIBNConfig() IBNSupernetConfig {
	return VWWSupernetConfig(16, 8, 2)
}

func TestIBNSupernetForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, err := NewIBNSupernet(rng, tinyIBNConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := ag.Constant(tensor.Randn(rng, 1, 2, 16, 16, 1))
	logits, res := s.Forward(x, false, rng, 1)
	if logits.Value.Shape[0] != 2 || logits.Value.Shape[1] != 2 {
		t.Fatalf("logits shape %v", logits.Value.Shape)
	}
	if res.ParamCount.Scalar() <= 0 || res.OpCount.Scalar() <= 0 {
		t.Fatal("resources must be positive")
	}
}

func TestIBNResourceModelMatchesDiscrete(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := tinyIBNConfig()
	s, err := NewIBNSupernet(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Force all decisions one-hot to the largest option.
	force := func(d *DecisionNode) { d.Alpha.Value.Data[d.K-1] = 25 }
	force(s.stemNode)
	for i := range s.expNode {
		force(s.expNode[i])
		force(s.outNode[i])
	}
	force(s.headNode)
	x := ag.Constant(tensor.Randn(rng, 1, 1, 16, 16, 1))
	_, res := s.Forward(x, false, nil, 0.05)
	spec := s.Discretize("check")
	a, err := spec.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	gotParams := float64(res.ParamCount.Scalar())
	// The discrete analyzer counts the residual add ops (zero params), so
	// parameters must agree tightly.
	rel := (gotParams - float64(a.TotalParams)) / float64(a.TotalParams)
	if rel < -0.02 || rel > 0.02 {
		t.Fatalf("IBN differentiable params %.0f vs discrete %d", gotParams, a.TotalParams)
	}
	gotOps := float64(res.OpCount.Scalar())
	relOps := (gotOps - float64(a.TotalOps())) / float64(a.TotalOps())
	if relOps < -0.02 || relOps > 0.02 {
		t.Fatalf("IBN differentiable ops %.0f vs discrete %d", gotOps, a.TotalOps())
	}
}

func TestIBNPenaltyShrinksWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, err := NewIBNSupernet(rng, tinyIBNConfig())
	if err != nil {
		t.Fatal(err)
	}
	cons := Constraints{MaxWeightBytes: 10, LambdaParams: 10}
	x := ag.Constant(tensor.Randn(rng, 1, 2, 16, 16, 1))
	before := s.headNode.Probabilities()[0]
	opt := nn.NewSGD(0, 0)
	for i := 0; i < 8; i++ {
		_, res := s.Forward(x, false, rng, 2)
		ag.Backward(cons.Penalty(res))
		opt.Step(s.ArchParams(), 0.5)
	}
	after := s.headNode.Probabilities()[0]
	if after <= before {
		t.Fatalf("head narrow-width probability must rise: %v -> %v", before, after)
	}
}

func TestIBNDiscretizeValid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s, err := NewIBNSupernet(rng, tinyIBNConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := s.Discretize("vww-search")
	a, err := spec.Analyze()
	if err != nil {
		t.Fatalf("discretized VWW spec invalid: %v", err)
	}
	if !a.Deployable {
		t.Fatal("VWW spec must be deployable")
	}
	// Structure: stem conv + IBNs + head conv + pool + fc.
	if spec.Blocks[0].Kind != arch.Conv || spec.Blocks[len(spec.Blocks)-1].Kind != arch.Dense {
		t.Fatal("discretized structure wrong")
	}
	ibnCount := 0
	for _, b := range spec.Blocks {
		if b.Kind == arch.IBN {
			ibnCount++
		}
	}
	if ibnCount != len(tinyIBNConfig().Blocks) {
		t.Fatalf("IBN count %d", ibnCount)
	}
}

func TestVWWSupernetConfigOptions(t *testing.T) {
	cfg := VWWSupernetConfig(50, 8, 10)
	// §5.2.1: widths searched in 10 steps (10%..100%).
	if len(cfg.StemOptions) < 5 {
		t.Fatalf("too few stem options: %v", cfg.StemOptions)
	}
	for _, b := range cfg.Blocks {
		if b.ExpandOptions[len(b.ExpandOptions)-1] != b.MaxExpand {
			t.Fatal("expand options must end at max")
		}
	}
}
