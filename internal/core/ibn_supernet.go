package core

import (
	"fmt"
	"math/rand"

	"micronets/internal/arch"
	ag "micronets/internal/autograd"
	"micronets/internal/nn"
	"micronets/internal/tensor"
)

// IBN supernet: the visual-wake-words search space of §5.2.1. The backbone
// is MobileNetV2; DNAS searches "the width of the first and last
// convolutions in each IBN" between 10% and 100% of the reference width.
// Physically each IBN runs at its maximal expansion/compression widths and
// the decision nodes mask channels, exactly as in the DS supernet.

// IBNSupernetBlock configures one searchable inverted bottleneck.
type IBNSupernetBlock struct {
	Stride int
	// MaxExpand / MaxOut are the physical (100%) widths.
	MaxExpand, MaxOut int
	// ExpandOptions / OutOptions are the searched effective widths; the
	// last entry must equal the corresponding max.
	ExpandOptions, OutOptions []int
}

// IBNSupernetConfig describes the full VWW search space.
type IBNSupernetConfig struct {
	Name                   string
	InputH, InputW, InputC int
	NumClasses             int
	// Stem convolution (width searched like the paper's "convolutions
	// preceding and following the sequence of IBN blocks").
	StemMax     int
	StemOptions []int
	Blocks      []IBNSupernetBlock
	// HeadMax / HeadOptions configure the final 1x1 convolution.
	HeadMax     int
	HeadOptions []int
}

// IBNSupernet is the trainable VWW search network.
type IBNSupernet struct {
	cfg IBNSupernetConfig

	stem     *nn.Conv2D
	stemBN   *nn.BatchNorm
	stemNode *DecisionNode

	exp    []*nn.Conv2D
	expBN  []*nn.BatchNorm
	dw     []*nn.DepthwiseConv2D
	dwBN   []*nn.BatchNorm
	proj   []*nn.Conv2D
	projBN []*nn.BatchNorm

	expNode []*DecisionNode
	outNode []*DecisionNode

	head     *nn.Conv2D
	headBN   *nn.BatchNorm
	headNode *DecisionNode
	fc       *nn.Dense
}

// NewIBNSupernet builds the supernet.
func NewIBNSupernet(rng *rand.Rand, cfg IBNSupernetConfig) (*IBNSupernet, error) {
	if len(cfg.StemOptions) == 0 || cfg.StemOptions[len(cfg.StemOptions)-1] != cfg.StemMax {
		return nil, fmt.Errorf("core: stem options must end at StemMax")
	}
	s := &IBNSupernet{
		cfg:      cfg,
		stem:     nn.NewConv2D(rng, "stem", 3, 3, cfg.InputC, cfg.StemMax, 2, nn.PadSame, false),
		stemBN:   nn.NewBatchNorm("stem.bn", cfg.StemMax),
		stemNode: NewDecisionNode("stem.width", len(cfg.StemOptions)),
	}
	inC := cfg.StemMax
	for i, b := range cfg.Blocks {
		if b.ExpandOptions[len(b.ExpandOptions)-1] != b.MaxExpand ||
			b.OutOptions[len(b.OutOptions)-1] != b.MaxOut {
			return nil, fmt.Errorf("core: block %d options must end at their max widths", i)
		}
		name := fmt.Sprintf("ibn%d", i)
		s.exp = append(s.exp, nn.NewConv2D(rng, name+".exp", 1, 1, inC, b.MaxExpand, 1, nn.PadSame, false))
		s.expBN = append(s.expBN, nn.NewBatchNorm(name+".expbn", b.MaxExpand))
		s.dw = append(s.dw, nn.NewDepthwiseConv2D(rng, name+".dw", 3, 3, b.MaxExpand, b.Stride, nn.PadSame, false))
		s.dwBN = append(s.dwBN, nn.NewBatchNorm(name+".dwbn", b.MaxExpand))
		s.proj = append(s.proj, nn.NewConv2D(rng, name+".proj", 1, 1, b.MaxExpand, b.MaxOut, 1, nn.PadSame, false))
		s.projBN = append(s.projBN, nn.NewBatchNorm(name+".projbn", b.MaxOut))
		s.expNode = append(s.expNode, NewDecisionNode(name+".expw", len(b.ExpandOptions)))
		s.outNode = append(s.outNode, NewDecisionNode(name+".outw", len(b.OutOptions)))
		inC = b.MaxOut
	}
	s.head = nn.NewConv2D(rng, "head", 1, 1, inC, cfg.HeadMax, 1, nn.PadSame, false)
	s.headBN = nn.NewBatchNorm("head.bn", cfg.HeadMax)
	s.headNode = NewDecisionNode("head.width", len(cfg.HeadOptions))
	s.fc = nn.NewDense(rng, "fc", cfg.HeadMax, cfg.NumClasses, true)
	return s, nil
}

// WeightParams returns the shared weights.
func (s *IBNSupernet) WeightParams() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, s.stem.Params()...)
	ps = append(ps, s.stemBN.Params()...)
	for i := range s.exp {
		ps = append(ps, s.exp[i].Params()...)
		ps = append(ps, s.expBN[i].Params()...)
		ps = append(ps, s.dw[i].Params()...)
		ps = append(ps, s.dwBN[i].Params()...)
		ps = append(ps, s.proj[i].Params()...)
		ps = append(ps, s.projBN[i].Params()...)
	}
	ps = append(ps, s.head.Params()...)
	ps = append(ps, s.headBN.Params()...)
	ps = append(ps, s.fc.Params()...)
	return ps
}

// ArchParams returns the architecture logits.
func (s *IBNSupernet) ArchParams() []*nn.Param {
	ps := []*nn.Param{{Name: s.stemNode.Name, V: s.stemNode.Alpha}}
	for i := range s.expNode {
		ps = append(ps, &nn.Param{Name: s.expNode[i].Name, V: s.expNode[i].Alpha})
		ps = append(ps, &nn.Param{Name: s.outNode[i].Name, V: s.outNode[i].Alpha})
	}
	ps = append(ps, &nn.Param{Name: s.headNode.Name, V: s.headNode.Alpha})
	return ps
}

// Forward runs the supernet and builds the differentiable resource model.
func (s *IBNSupernet) Forward(x *ag.Var, training bool, rng *rand.Rand, tau float32) (*ag.Var, *Resources) {
	cfg := s.cfg
	res := &Resources{
		ParamCount: ag.Constant(tensor.Scalar(0)),
		OpCount:    ag.Constant(tensor.Scalar(0)),
	}
	h, w := sameOut(cfg.InputH, 2), sameOut(cfg.InputW, 2)

	zStem := s.stemNode.Weights(rng, tau)
	y := ag.ReLU6(s.stemBN.Forward(s.stem.Forward(x, training), training))
	y = ag.ChannelScale(y, channelMask(zStem, cfg.StemOptions, cfg.StemMax))
	ePrev := ExpectedChannels(zStem, cfg.StemOptions)
	kArea := float32(9 * cfg.InputC)
	res.ParamCount = ag.Add(res.ParamCount, ag.Scale(ePrev, kArea))
	res.OpCount = ag.Add(res.OpCount, ag.Scale(ePrev, 2*float32(h*w)*kArea))
	res.WorkMemTerms = append(res.WorkMemTerms,
		ag.AddScalar(ag.Scale(ePrev, float32(h*w)), float32(cfg.InputH*cfg.InputW*cfg.InputC)))

	for i, b := range cfg.Blocks {
		zE := s.expNode[i].Weights(rng, tau)
		zO := s.outNode[i].Weights(rng, tau)
		oh, ow := sameOut(h, b.Stride), sameOut(w, b.Stride)

		t := ag.ReLU6(s.expBN[i].Forward(s.exp[i].Forward(y, training), training))
		t = ag.ChannelScale(t, channelMask(zE, b.ExpandOptions, b.MaxExpand))
		t = ag.ReLU6(s.dwBN[i].Forward(s.dw[i].Forward(t, training), training))
		t = ag.ChannelScale(t, channelMask(zE, b.ExpandOptions, b.MaxExpand))
		t = s.projBN[i].Forward(s.proj[i].Forward(t, training), training)
		t = ag.ChannelScale(t, channelMask(zO, b.OutOptions, b.MaxOut))

		eExp := ExpectedChannels(zE, b.ExpandOptions)
		eOut := ExpectedChannels(zO, b.OutOptions)

		// Residual only when shapes allow (stride 1, same physical width);
		// effective widths blend through the mask.
		residual := b.Stride == 1 && i > 0 && cfg.Blocks[i-1].MaxOut == b.MaxOut
		if residual {
			y = ag.Add(t, y)
		} else {
			y = t
		}

		// Costs: exp (E[in]*E[e]) + dw (9*E[e]) + proj (E[e]*E[out]).
		expCross := ag.Mul(ePrev, eExp)
		projCross := ag.Mul(eExp, eOut)
		params := ag.Add(ag.Add(expCross, ag.Scale(eExp, 9)), projCross)
		ops := ag.Add(
			ag.Add(ag.Scale(expCross, 2*float32(h*w)), ag.Scale(eExp, 2*9*float32(oh*ow))),
			ag.Scale(projCross, 2*float32(oh*ow)))
		res.ParamCount = ag.Add(res.ParamCount, params)
		res.OpCount = ag.Add(res.OpCount, ops)
		res.WorkMemTerms = append(res.WorkMemTerms,
			ag.Scale(ag.Add(ePrev, eExp), float32(h*w)),                          // exp node
			ag.Add(ag.Scale(eExp, float32(h*w)), ag.Scale(eExp, float32(oh*ow))), // dw node
			ag.Scale(ag.Add(eExp, eOut), float32(oh*ow)))                         // proj node
		ePrev = eOut
		h, w = oh, ow
	}

	zHead := s.headNode.Weights(rng, tau)
	y = ag.ReLU6(s.headBN.Forward(s.head.Forward(y, training), training))
	y = ag.ChannelScale(y, channelMask(zHead, cfg.HeadOptions, cfg.HeadMax))
	eHead := ExpectedChannels(zHead, cfg.HeadOptions)
	cross := ag.Mul(ePrev, eHead)
	res.ParamCount = ag.Add(res.ParamCount, cross)
	res.OpCount = ag.Add(res.OpCount, ag.Scale(cross, 2*float32(h*w)))

	y = ag.GlobalAvgPool(y)
	logits := s.fc.Forward(y, training)
	fcParams := ag.Scale(eHead, float32(cfg.NumClasses))
	res.ParamCount = ag.Add(res.ParamCount, fcParams)
	res.OpCount = ag.Add(res.OpCount, ag.Scale(fcParams, 2))
	return logits, res
}

// Discretize emits the selected VWW architecture.
func (s *IBNSupernet) Discretize(name string) *arch.Spec {
	cfg := s.cfg
	spec := &arch.Spec{
		Name: name, Task: "vww", Source: "repro",
		InputH: cfg.InputH, InputW: cfg.InputW, InputC: cfg.InputC,
		NumClasses: cfg.NumClasses,
	}
	spec.Blocks = append(spec.Blocks, arch.Block{
		Kind: arch.Conv, KH: 3, KW: 3,
		OutC: cfg.StemOptions[s.stemNode.ArgMax()], Stride: 2,
	})
	for i, b := range cfg.Blocks {
		spec.Blocks = append(spec.Blocks, arch.Block{
			Kind: arch.IBN, KH: 3, KW: 3,
			Expand: b.ExpandOptions[s.expNode[i].ArgMax()],
			OutC:   b.OutOptions[s.outNode[i].ArgMax()],
			Stride: b.Stride,
		})
	}
	spec.Blocks = append(spec.Blocks,
		arch.Block{Kind: arch.Conv, KH: 1, KW: 1, OutC: cfg.HeadOptions[s.headNode.ArgMax()], Stride: 1},
		arch.Block{Kind: arch.GlobalPool},
		arch.Block{Kind: arch.Dense, OutC: cfg.NumClasses},
	)
	return spec
}

// VWWSupernetConfig builds a MobileNetV2-backbone search space at the given
// input resolution, scaled by width so laptop-scale searches are feasible
// (the paper's full space uses the complete MobileNetV2 at 50x50 and
// 160x160 grayscale inputs). Widths are searched in `steps` fractions of
// the reference, per §5.2.1 ("between 10% and 100% ... in increments of
// 10%" would be steps=10).
func VWWSupernetConfig(inputSize, baseWidth, steps int) IBNSupernetConfig {
	mk := func(maxC int) []int { return WidthOptions(maxC, steps, false) }
	type st struct{ c, n, s int }
	stages := []st{{baseWidth, 1, 1}, {baseWidth * 2, 2, 2}, {baseWidth * 4, 2, 2}}
	cfg := IBNSupernetConfig{
		Name:   "vww",
		InputH: inputSize, InputW: inputSize, InputC: 1, NumClasses: 2,
		StemMax: baseWidth, StemOptions: mk(baseWidth),
		HeadMax: baseWidth * 8, HeadOptions: mk(baseWidth * 8),
	}
	for _, stg := range stages {
		for i := 0; i < stg.n; i++ {
			s := 1
			if i == 0 {
				s = stg.s
			}
			cfg.Blocks = append(cfg.Blocks, IBNSupernetBlock{
				Stride:        s,
				MaxExpand:     stg.c * 4,
				MaxOut:        stg.c,
				ExpandOptions: mk(stg.c * 4),
				OutOptions:    mk(stg.c),
			})
		}
	}
	return cfg
}
