// Package core implements the paper's primary contribution: differentiable
// neural architecture search (DNAS) for MCU-constrained models (§5).
//
// A supernet is a network whose convolutions carry *decision nodes*:
// y = Σ_k z_k f_k(x, θ_k), Σ_k z_k = 1 (eq. 1). Width choices are relaxed
// FBNetV2-style — the convolution runs at maximum width and the output is
// masked by a convex combination of channel masks — and depth choices put
// an identity/pooling shortcut in parallel with each block. The z are
// Gumbel-softmax samples of trainable logits, so the architecture is
// learned by gradient descent together with the weights, regularized by
// differentiable eFlash-size, SRAM-working-memory and op-count (latency
// proxy, §3) penalties.
package core

import (
	"fmt"
	"math"
	"math/rand"

	ag "micronets/internal/autograd"
	"micronets/internal/tensor"
)

// DecisionNode is one K-way architecture decision with trainable logits.
type DecisionNode struct {
	Name string
	// Alpha are the architecture logits (one per option).
	Alpha *ag.Var
	// K is the number of options.
	K int
}

// NewDecisionNode creates a node with uniform logits.
func NewDecisionNode(name string, k int) *DecisionNode {
	return &DecisionNode{Name: name, Alpha: ag.Param(tensor.New(k)), K: k}
}

// Weights returns the relaxed selection z. With rng non-nil it draws a
// Gumbel-softmax sample at the given temperature (training); with rng nil
// it returns the plain softmax (evaluation).
func (d *DecisionNode) Weights(rng *rand.Rand, temperature float32) *ag.Var {
	logits := d.Alpha
	if rng != nil {
		g := tensor.New(d.K)
		for i := range g.Data {
			u := rng.Float64()
			if u < 1e-12 {
				u = 1e-12
			}
			g.Data[i] = float32(-math.Log(-math.Log(u)))
		}
		logits = ag.Add(d.Alpha, ag.Constant(g))
	}
	return ag.SoftmaxVec(logits, temperature)
}

// ArgMax returns the currently preferred option.
func (d *DecisionNode) ArgMax() int {
	best := 0
	for i := 1; i < d.K; i++ {
		if d.Alpha.Value.Data[i] > d.Alpha.Value.Data[best] {
			best = i
		}
	}
	return best
}

// Probabilities returns the softmax of the logits as plain floats.
func (d *DecisionNode) Probabilities() []float32 {
	sm := ag.SoftmaxVec(ag.Constant(d.Alpha.Value), 1)
	return append([]float32(nil), sm.Value.Data...)
}

// WidthOptions builds the channel-count options for a width decision: the
// paper searches 10%..100% of the reference width in 10% steps for VWW
// (§5.2.1) and multiples of 4 for KWS/AD ("restricted to multiples of 4
// for good performance on hardware", §5.2.2).
func WidthOptions(maxC int, steps int, multipleOf4 bool) []int {
	if steps < 1 {
		steps = 1
	}
	opts := make([]int, 0, steps)
	seen := map[int]bool{}
	for i := 1; i <= steps; i++ {
		c := maxC * i / steps
		if multipleOf4 {
			c = (c + 3) / 4 * 4
		}
		if c < 1 {
			c = 1
		}
		if c > maxC {
			c = maxC
		}
		if !seen[c] {
			seen[c] = true
			opts = append(opts, c)
		}
	}
	return opts
}

// channelMask builds the convex channel mask m = Σ_k z_k mask_k for width
// options over maxC channels, where mask_k enables the first options[k]
// channels. The result is a differentiable function of z.
func channelMask(z *ag.Var, options []int, maxC int) *ag.Var {
	if len(options) != z.Value.Len() {
		panic(fmt.Sprintf("core: %d options vs %d weights", len(options), z.Value.Len()))
	}
	// m_c = Σ_{k: options[k] > c} z_k. Build via accumulating suffix sums:
	// differentiable because each mask entry is a sum of z entries.
	// Implemented as matrix multiply: mask = M^T z with M[k][c]=1[c<options[k]].
	mt := tensor.New(len(options), maxC)
	for k, c := range options {
		for j := 0; j < c && j < maxC; j++ {
			mt.Data[k*maxC+j] = 1
		}
	}
	zRow := ag.Reshape(z, 1, len(options))
	m := ag.MatMul(zRow, ag.Constant(mt)) // [1, maxC]
	return ag.Reshape(m, maxC)
}

// ExpectedChannels returns Σ_k z_k c_k as a scalar Var — the differentiable
// width used by the resource models.
func ExpectedChannels(z *ag.Var, options []int) *ag.Var {
	c := tensor.New(len(options))
	for i, v := range options {
		c.Data[i] = float32(v)
	}
	prod := ag.Mul(z, ag.Constant(c))
	return ag.Sum(prod)
}
