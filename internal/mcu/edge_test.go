package mcu

import (
	"math"
	"math/rand"
	"testing"

	"micronets/internal/graph"
)

// emptyModel is a structurally valid tensor set with no ops — the shape a
// caller gets from a malformed or still-being-built graph. graph.Validate
// rejects it, but the cost model must stay total (no NaNs) regardless.
func emptyModel() *graph.Model {
	return &graph.Model{
		Name: "empty",
		Tensors: []*graph.Tensor{
			{ID: 0, Name: "in", H: 4, W: 4, C: 1, Scale: 0.05, ZeroPoint: -128, Bits: 8},
		},
		Input: 0, Output: 0,
	}
}

// oneOpModel is the smallest invokable model: a single 1x1 conv.
func oneOpModel() *graph.Model {
	m := &graph.Model{
		Name: "one-op",
		Tensors: []*graph.Tensor{
			{ID: 0, Name: "in", H: 4, W: 4, C: 4, Scale: 0.05, ZeroPoint: -128, Bits: 8},
			{ID: 1, Name: "out", H: 4, W: 4, C: 4, Scale: 0.1, ZeroPoint: -128, Bits: 8},
		},
		Input: 0, Output: 1,
	}
	m.Ops = []*graph.Op{{
		Kind: graph.OpConv2D, Name: "pw", Inputs: []int{0}, Output: 1,
		KH: 1, KW: 1, SH: 1, SW: 1,
		Weights: make([]int8, 16), WeightBits: 8,
		WeightScales: make([]float32, 4), Bias: make([]int32, 4),
		ClampMin: -128, ClampMax: 127,
	}}
	for i := range m.Ops[0].WeightScales {
		m.Ops[0].WeightScales[i] = 0.02
	}
	return m
}

// TestZeroAndOneOpModels pins the degenerate-model contract across the
// whole cost model: a zero-op model costs nothing and traces nothing, a
// one-op model costs a positive finite amount, and nothing NaN-propagates.
func TestZeroAndOneOpModels(t *testing.T) {
	cases := []struct {
		name        string
		model       *graph.Model
		wantLatZero bool
		wantLayers  int
	}{
		{name: "zero-op", model: emptyModel(), wantLatZero: true, wantLayers: 0},
		{name: "one-op", model: oneOpModel(), wantLatZero: false, wantLayers: 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, dev := range Devices() {
				lat, layers, err := ModelLatency(c.model, dev)
				if err != nil {
					t.Fatalf("%s: %v", dev.Name, err)
				}
				if math.IsNaN(lat) || math.IsInf(lat, 0) {
					t.Fatalf("%s: latency %v not finite", dev.Name, lat)
				}
				if c.wantLatZero && lat != 0 {
					t.Fatalf("%s: zero-op latency %v, want 0", dev.Name, lat)
				}
				if !c.wantLatZero && lat <= 0 {
					t.Fatalf("%s: latency %v, want > 0", dev.Name, lat)
				}
				if len(layers) != c.wantLayers {
					t.Fatalf("%s: %d layers, want %d", dev.Name, len(layers), c.wantLayers)
				}

				rng := rand.New(rand.NewSource(1))
				meas := MeasureLatency(c.model, dev, rng)
				if math.IsNaN(meas) {
					t.Fatalf("%s: measured latency is NaN", dev.Name)
				}
				if c.wantLatZero && meas != 0 {
					t.Fatalf("%s: zero-op measured latency %v, want 0", dev.Name, meas)
				}

				e := EnergyPerInferenceMJ(c.model, dev)
				if math.IsNaN(e) || (c.wantLatZero && e != 0) || (!c.wantLatZero && e <= 0) {
					t.Fatalf("%s: energy %v inconsistent with latency", dev.Name, e)
				}

				trace := CurrentTrace(c.model, dev, 1.0, 0.001, 0.5, rng)
				if c.wantLatZero {
					if len(trace) != 0 {
						t.Fatalf("%s: zero-op trace has %d samples, want empty", dev.Name, len(trace))
					}
				} else {
					if len(trace) != 500 {
						t.Fatalf("%s: trace has %d samples, want 500", dev.Name, len(trace))
					}
					for _, p := range trace {
						if math.IsNaN(p.CurrentMA) {
							t.Fatalf("%s: NaN sample at t=%v", dev.Name, p.TimeS)
						}
					}
				}

				avg := DutyCycleAveragePowerMW(c.model, dev, 1.0)
				if math.IsNaN(avg) {
					t.Fatalf("%s: duty-cycle average is NaN", dev.Name)
				}
				if c.wantLatZero && avg != dev.SleepMW {
					t.Fatalf("%s: zero-op duty-cycle average %v, want sleep floor %v", dev.Name, avg, dev.SleepMW)
				}
			}
		})
	}
}

// TestDegenerateTraceParams pins the guard rails on the trace sampler
// itself: a zero or negative sample interval (or period) must yield an
// empty trace, never a NaN division or an infinite loop.
func TestDegenerateTraceParams(t *testing.T) {
	m := oneOpModel()
	rng := rand.New(rand.NewSource(2))
	for _, c := range []struct {
		name                 string
		period, dt, duration float64
	}{
		{name: "zero-dt", period: 1, dt: 0, duration: 1},
		{name: "negative-dt", period: 1, dt: -0.01, duration: 1},
		{name: "zero-period", period: 0, dt: 0.001, duration: 1},
		{name: "zero-duration", period: 1, dt: 0.001, duration: 0},
	} {
		t.Run(c.name, func(t *testing.T) {
			if got := CurrentTrace(m, F446RE, c.period, c.dt, c.duration, rng); len(got) != 0 {
				t.Fatalf("trace has %d samples, want empty", len(got))
			}
		})
	}
}

// TestModelLatencyErrorPaths pins the latency model's failure contract:
// an unscoreable device or an op kind the cost model does not cover must
// surface as an error, never as a silent 0-second (or infinite) latency.
// A zero latency would Pareto-dominate every real candidate in a
// latency-ranked search, which is exactly the bug this guards against.
func TestModelLatencyErrorPaths(t *testing.T) {
	m := oneOpModel()

	t.Run("nil-device", func(t *testing.T) {
		if _, _, err := ModelLatency(m, nil); err == nil {
			t.Fatal("nil device must error")
		}
	})
	t.Run("uncalibrated-device", func(t *testing.T) {
		broken := &Device{Name: "broken-board", ClockMHz: 0, CycleFactor: 1}
		lat, _, err := ModelLatency(m, broken)
		if err == nil {
			t.Fatalf("zero-clock device must error, got latency %v", lat)
		}
		broken = &Device{Name: "broken-board", ClockMHz: 180, CycleFactor: 0}
		if _, _, err := ModelLatency(m, broken); err == nil {
			t.Fatal("zero-cycle-factor device must error")
		}
	})
	t.Run("unmodeled-op-kind", func(t *testing.T) {
		weird := oneOpModel()
		weird.Ops[0].Kind = graph.OpKind(99)
		lat, layers, err := ModelLatency(weird, F446RE)
		if err == nil {
			t.Fatalf("unmodeled op kind must error, got latency %v (%d layers)", lat, len(layers))
		}
		if _, err := OpCycles(weird, weird.Ops[0]); err == nil {
			t.Fatal("OpCycles must reject an unmodeled op kind")
		}
	})
	t.Run("latency-nan-on-error", func(t *testing.T) {
		weird := oneOpModel()
		weird.Ops[0].Kind = graph.OpKind(99)
		if got := Latency(weird, F446RE); !math.IsNaN(got) {
			t.Fatalf("convenience Latency on an unscoreable model = %v, want NaN", got)
		}
		// The NaN must not slip past CurrentTrace's zero-latency guard and
		// masquerade as a believable all-sleep trace.
		rng := rand.New(rand.NewSource(3))
		if trace := CurrentTrace(weird, F446RE, 1.0, 0.001, 0.5, rng); len(trace) != 0 {
			t.Fatalf("unscoreable model produced a %d-sample trace, want empty", len(trace))
		}
	})
}
