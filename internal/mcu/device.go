package mcu

import "fmt"

// Device describes one MCU board.
type Device struct {
	// Name is the STM32 part (used throughout the paper's tables).
	Name string
	// CPU is the Arm core.
	CPU string
	// ClockMHz is the core clock.
	ClockMHz float64
	// SRAMKB and FlashKB are the on-chip memory sizes (Table 1).
	SRAMKB, FlashKB int
	// CycleFactor scales kernel cycle counts relative to the Cortex-M7
	// baseline: the M4 cannot dual-issue load+ALU and runs a slower
	// memory system, making it ~2x slower end to end (§3.1).
	CycleFactor float64
	// ActiveMW and SleepMW are board-level power draws as measured by an
	// Otii-style supply (§3.4, Figure 9).
	ActiveMW, SleepMW float64
	// SupplyVoltage converts power to current for trace plots.
	SupplyVoltage float64
	// PriceUSD as in Table 1.
	PriceUSD float64
	// Size class used in the tables: "S", "M" or "L".
	Class string
}

// The three targets of the paper (Table 1). Active power levels are the
// board-level values implied by Table 4's latency/energy pairs
// (e.g. MicroNet-KWS-S: 40.68 mJ / 0.250 s = 163 mW on the F446RE).
var (
	F446RE = &Device{
		Name: "STM32F446RE", CPU: "Cortex-M4", ClockMHz: 180,
		SRAMKB: 128, FlashKB: 512, CycleFactor: 1.90,
		ActiveMW: 163, SleepMW: 7, SupplyVoltage: 3.3, PriceUSD: 3, Class: "S",
	}
	F746ZG = &Device{
		Name: "STM32F746ZG", CPU: "Cortex-M7", ClockMHz: 216,
		SRAMKB: 320, FlashKB: 1024, CycleFactor: 1.0,
		ActiveMW: 445, SleepMW: 16, SupplyVoltage: 3.3, PriceUSD: 5, Class: "M",
	}
	F767ZI = &Device{
		Name: "STM32F767ZI", CPU: "Cortex-M7", ClockMHz: 216,
		SRAMKB: 512, FlashKB: 2048, CycleFactor: 0.975,
		ActiveMW: 460, SleepMW: 17, SupplyVoltage: 3.3, PriceUSD: 8, Class: "L",
	}
)

// Devices returns the three boards, smallest first.
func Devices() []*Device { return []*Device{F446RE, F746ZG, F767ZI} }

// ByClass returns the device for a size class ("S", "M", "L").
func ByClass(class string) (*Device, error) {
	for _, d := range Devices() {
		if d.Class == class {
			return d, nil
		}
	}
	return nil, fmt.Errorf("mcu: unknown device class %q", class)
}

// ByName returns the device with the given STM32 name.
func ByName(name string) (*Device, error) {
	for _, d := range Devices() {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("mcu: unknown device %q", name)
}

// SRAMBytes returns the SRAM size in bytes.
func (d *Device) SRAMBytes() int { return d.SRAMKB * 1024 }

// FlashBytes returns the flash size in bytes.
func (d *Device) FlashBytes() int { return d.FlashKB * 1024 }

// String implements fmt.Stringer.
func (d *Device) String() string {
	return fmt.Sprintf("%s (%s @ %.0f MHz, %d KB SRAM, %d KB flash)",
		d.Name, d.CPU, d.ClockMHz, d.SRAMKB, d.FlashKB)
}
