package mcu

import (
	"math"
	"testing"
)

func TestJoinProfileShares(t *testing.T) {
	m := model(t, "DSCNN-S", 7)
	// Perfectly linear measurement: ns = 2 × predicted cycles.
	measured := make([]float64, len(m.Ops))
	var totalCycles float64
	for i := range m.Ops {
		c, err := OpCycles(m, m.Ops[i])
		if err != nil {
			t.Fatal(err)
		}
		measured[i] = 2 * c
		totalCycles += c
	}
	p, err := JoinProfile(m, measured, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Model != m.Name || p.Runs != 4 || len(p.Ops) != len(m.Ops) {
		t.Fatalf("header mismatch: %+v", p)
	}
	if math.Abs(p.NsPerCycle-2) > 1e-9 {
		t.Fatalf("NsPerCycle = %v, want 2", p.NsPerCycle)
	}
	if math.Abs(p.R2-1) > 1e-9 {
		t.Fatalf("perfectly linear data should give R2 = 1, got %v", p.R2)
	}
	if math.Abs(p.TotalPredictedCycles-totalCycles) > 1e-6 {
		t.Fatalf("total cycles %v, want %v", p.TotalPredictedCycles, totalCycles)
	}
	var mShare, pShare float64
	for _, o := range p.Ops {
		mShare += o.MeasuredShare
		pShare += o.PredictedShare
		if o.PredictedCycles > 0 {
			if math.Abs(o.Ratio-1) > 1e-9 {
				t.Fatalf("op %d ratio = %v, want 1 for linear data", o.Index, o.Ratio)
			}
			if math.Abs(o.NsPerCycle-2) > 1e-9 {
				t.Fatalf("op %d ns/cycle = %v, want 2", o.Index, o.NsPerCycle)
			}
		}
	}
	if math.Abs(mShare-1) > 1e-9 || math.Abs(pShare-1) > 1e-9 {
		t.Fatalf("shares must each sum to 1: measured %v predicted %v", mShare, pShare)
	}
}

func TestJoinProfileNonlinearR2(t *testing.T) {
	m := model(t, "DSCNN-S", 8)
	// One op wildly off-model should pull R2 below 1.
	measured := make([]float64, len(m.Ops))
	for i := range m.Ops {
		c, err := OpCycles(m, m.Ops[i])
		if err != nil {
			t.Fatal(err)
		}
		measured[i] = 2 * c
	}
	measured[0] += 100 * measured[0]
	p, err := JoinProfile(m, measured, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.R2 >= 0.999 {
		t.Fatalf("distorted data should lower R2, got %v", p.R2)
	}
}

func TestJoinProfileLengthMismatch(t *testing.T) {
	m := model(t, "DSCNN-S", 9)
	if _, err := JoinProfile(m, make([]float64, len(m.Ops)+1), 1); err == nil {
		t.Fatal("length mismatch must error")
	}
}
