package mcu

import (
	"math"
	"math/rand"
	"testing"

	"micronets/internal/graph"
	"micronets/internal/zoo"
)

func model(t *testing.T, name string, seed int64) *graph.Model {
	t.Helper()
	e, err := zoo.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := graph.FromSpec(e.Spec, rand.New(rand.NewSource(seed)), graph.LowerOptions{AppendSoftmax: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDeviceDB(t *testing.T) {
	if len(Devices()) != 3 {
		t.Fatal("expected 3 devices (Table 1)")
	}
	for _, class := range []string{"S", "M", "L"} {
		d, err := ByClass(class)
		if err != nil {
			t.Fatal(err)
		}
		if d.Class != class {
			t.Fatalf("class mismatch for %s", class)
		}
	}
	if _, err := ByClass("X"); err == nil {
		t.Fatal("unknown class must error")
	}
	d, err := ByName("STM32F746ZG")
	if err != nil || d.SRAMKB != 320 || d.FlashKB != 1024 {
		t.Fatalf("F746ZG specs wrong: %+v err=%v", d, err)
	}
}

// TestPaperLatencyCalibration pins model latencies to Table 4 within 10%.
func TestPaperLatencyCalibration(t *testing.T) {
	cases := []struct {
		name     string
		dev      *Device
		paperSec float64
	}{
		{"MicroNet-KWS-M", F746ZG, 0.187},
		{"MicroNet-KWS-S", F746ZG, 0.109},
		{"MicroNet-KWS-L", F746ZG, 0.610},
		{"MicroNet-KWS-M", F446RE, 0.426},
		{"MicroNet-KWS-S", F446RE, 0.250},
		{"MicroNet-AD-M", F746ZG, 0.608},
		{"DSCNN-L", F746ZG, 0.515},
		{"MicroNet-VWW-1", F746ZG, 1.133},
	}
	for _, c := range cases {
		m := model(t, c.name, 1)
		got := Latency(m, c.dev)
		if math.Abs(got-c.paperSec)/c.paperSec > 0.10 {
			t.Errorf("%s on %s: %.3fs vs paper %.3fs (>10%%)", c.name, c.dev.Name, got, c.paperSec)
		}
	}
}

func TestM7TwiceAsFastAsM4(t *testing.T) {
	m := model(t, "MicroNet-KWS-M", 2)
	ratio := Latency(m, F446RE) / Latency(m, F746ZG)
	if ratio < 1.8 || ratio > 2.7 {
		t.Fatalf("M4/M7 latency ratio %.2f outside ~2x (§3.1)", ratio)
	}
}

func TestDivisibleBy4FastPath(t *testing.T) {
	// §3.2: increasing a conv layer's channels from 138 to 140 REDUCES
	// latency (the paper measured 37.5 -> 21.5 ms).
	mk := func(c int) *graph.Model {
		spec := zoo.DSCNN("S")
		spec.Blocks[1].OutC = c
		spec.Blocks[2].OutC = c
		m, err := graph.FromSpec(spec, rand.New(rand.NewSource(3)), graph.LowerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	l138 := Latency(mk(138), F767ZI)
	l140 := Latency(mk(140), F767ZI)
	if l140 >= l138 {
		t.Fatalf("140 channels (%.4fs) must be faster than 138 (%.4fs)", l140, l138)
	}
	if l138/l140 < 1.2 {
		t.Fatalf("÷4 speedup only %.2fx, want substantial", l138/l140)
	}
}

func TestDepthwiseSlowerPerOp(t *testing.T) {
	m := model(t, "MicroNet-KWS-M", 4)
	_, layers, err := ModelLatency(m, F767ZI)
	if err != nil {
		t.Fatal(err)
	}
	var convTp, dwTp []float64
	for i, op := range m.Ops {
		if layers[i].Seconds <= 0 || op.MACs(m) == 0 {
			continue
		}
		tp := float64(op.Ops(m)) / layers[i].Seconds
		switch op.Kind {
		case graph.OpConv2D:
			convTp = append(convTp, tp)
		case graph.OpDWConv2D:
			dwTp = append(dwTp, tp)
		}
	}
	avg := func(v []float64) float64 {
		var s float64
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	if avg(convTp) < 2*avg(dwTp) {
		t.Fatalf("conv throughput (%.0f) should be >> dwconv (%.0f) per Figure 3", avg(convTp), avg(dwTp))
	}
}

func TestLatencyScaleInvariance(t *testing.T) {
	// Modeled latency must be deterministic for the same model.
	m := model(t, "MicroNet-KWS-S", 5)
	if Latency(m, F746ZG) != Latency(m, F746ZG) {
		t.Fatal("latency model must be deterministic")
	}
}

func TestMeasureLatencyJitterSmall(t *testing.T) {
	m := model(t, "MicroNet-KWS-S", 6)
	rng := rand.New(rand.NewSource(7))
	base := Latency(m, F746ZG)
	for i := 0; i < 20; i++ {
		got := MeasureLatency(m, F746ZG, rng)
		if math.Abs(got-base)/base > 0.02 {
			t.Fatalf("measurement jitter too large: %v vs %v", got, base)
		}
	}
}

func TestPowerIsModelIndependent(t *testing.T) {
	devs := []*Device{F446RE, F746ZG}
	models := []string{"MicroNet-KWS-S", "MicroNet-KWS-M", "MicroNet-KWS-L", "DSCNN-S", "DSCNN-M"}
	for _, dev := range devs {
		var ps []float64
		for i, name := range models {
			ps = append(ps, ActivePowerMW(model(t, name, int64(i)), dev))
		}
		var sum, sumSq float64
		for _, p := range ps {
			sum += p
			sumSq += p * p
		}
		mean := sum / float64(len(ps))
		sd := math.Sqrt(sumSq/float64(len(ps)) - mean*mean)
		if sd/mean > 0.03 {
			t.Fatalf("power σ/µ = %v on %s, must be tiny (§3.4)", sd/mean, dev.Name)
		}
		if math.Abs(mean-dev.ActiveMW)/dev.ActiveMW > 0.05 {
			t.Fatalf("mean power %v far from device constant %v", mean, dev.ActiveMW)
		}
	}
}

func TestEnergyEqualsPowerTimesLatency(t *testing.T) {
	m := model(t, "MicroNet-KWS-M", 8)
	e := EnergyPerInferenceMJ(m, F746ZG)
	want := ActivePowerMW(m, F746ZG) * Latency(m, F746ZG)
	if math.Abs(e-want) > 1e-9 {
		t.Fatalf("energy %v != power*latency %v", e, want)
	}
}

func TestSmallMCULowerEnergyDespiteSlower(t *testing.T) {
	// §3.4: "executing the same model on a smaller MCU reduces the total
	// energy consumption despite an increase in latency."
	m := model(t, "MicroNet-KWS-S", 9)
	if Latency(m, F446RE) <= Latency(m, F746ZG) {
		t.Fatal("small MCU must be slower")
	}
	if EnergyPerInferenceMJ(m, F446RE) >= EnergyPerInferenceMJ(m, F746ZG) {
		t.Fatal("small MCU must use less energy per inference")
	}
}

func TestDutyCycleAveragePower(t *testing.T) {
	m := model(t, "MicroNet-KWS-S", 10)
	avg := DutyCycleAveragePowerMW(m, F446RE, 1.0)
	active := ActivePowerMW(m, F446RE)
	if avg >= active {
		t.Fatal("duty-cycled average must be below active power")
	}
	if avg <= F446RE.SleepMW {
		t.Fatal("duty-cycled average must be above sleep floor")
	}
	// Latency-bound period: average equals active power.
	if got := DutyCycleAveragePowerMW(m, F446RE, 0.0001); got != active {
		t.Fatalf("saturated duty cycle: %v != %v", got, active)
	}
}

func TestCurrentTraceShape(t *testing.T) {
	m := model(t, "MicroNet-KWS-S", 11)
	rng := rand.New(rand.NewSource(12))
	trace := CurrentTrace(m, F446RE, 1.0, 0.001, 2.0, rng)
	if len(trace) != 2000 {
		t.Fatalf("trace samples = %d", len(trace))
	}
	lat := Latency(m, F446RE)
	activeMA := ActivePowerMW(m, F446RE) / F446RE.SupplyVoltage
	// A sample mid-inference is near active current; one mid-sleep is near
	// the sleep floor.
	midActive := trace[int(lat/2/0.001)]
	if math.Abs(midActive.CurrentMA-activeMA)/activeMA > 0.1 {
		t.Fatalf("active sample %v far from %v", midActive.CurrentMA, activeMA)
	}
	midSleep := trace[int((lat+1.0)/2/0.001)]
	if midSleep.CurrentMA > activeMA/4 {
		t.Fatalf("sleep sample %v too high", midSleep.CurrentMA)
	}
	if AverageCurrentMA(trace) <= midSleep.CurrentMA {
		t.Fatal("average must exceed sleep current")
	}
}

func TestInt4KernelOverheadBand(t *testing.T) {
	// Figure 10: 4-bit/4-bit adds ~19-29% latency, larger for KWS-L.
	e, _ := zoo.Get("MicroNet-KWS-M")
	m8, _ := graph.FromSpec(e.Spec, rand.New(rand.NewSource(1)), graph.LowerOptions{})
	m4, _ := graph.FromSpec(e.Spec, rand.New(rand.NewSource(1)), graph.LowerOptions{WeightBits: 4, ActBits: 4})
	incM := Latency(m4, F746ZG)/Latency(m8, F746ZG) - 1
	if incM < 0.10 || incM > 0.40 {
		t.Fatalf("KWS-M 4-bit overhead %.1f%% outside plausible band", incM*100)
	}
	el, _ := zoo.Get("MicroNet-KWS-L")
	l8, _ := graph.FromSpec(el.Spec, rand.New(rand.NewSource(1)), graph.LowerOptions{})
	l4, _ := graph.FromSpec(el.Spec, rand.New(rand.NewSource(1)), graph.LowerOptions{WeightBits: 4, ActBits: 4})
	incL := Latency(l4, F746ZG)/Latency(l8, F746ZG) - 1
	if incL <= incM {
		t.Fatalf("KWS-L overhead (%.1f%%) must exceed KWS-M (%.1f%%) per Figure 10", incL*100, incM*100)
	}
}
