package mcu

import (
	"hash/fnv"
	"math"
	"math/rand"

	"micronets/internal/graph"
)

// The paper's §3.4 finding: "there is little variance in power consumption
// between models (σ/µ = 0.00731), i.e. power is essentially independent of
// model size or architecture." We model active power as the device constant
// with a deterministic per-model perturbation of exactly that magnitude.
const powerSigmaOverMu = 0.00731

// ActivePowerMW returns the board's active power draw while running the
// given model, with the (tiny) model-dependent variation observed in
// Figure 5.
func ActivePowerMW(m *graph.Model, dev *Device) float64 {
	h := fnv.New64a()
	h.Write([]byte(dev.Name))
	h.Write([]byte(m.Name))
	var b [8]byte
	n := m.TotalMACs()
	for i := range b {
		b[i] = byte(n >> (8 * i))
	}
	h.Write(b[:])
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	return dev.ActiveMW * (1 + rng.NormFloat64()*powerSigmaOverMu)
}

// EnergyPerInferenceMJ returns the energy of one inference in millijoules:
// since power is constant, energy is power times latency (§3.4).
func EnergyPerInferenceMJ(m *graph.Model, dev *Device) float64 {
	return ActivePowerMW(m, dev) * Latency(m, dev) // mW * s = mJ
}

// DutyCycleAveragePowerMW returns the average power of an application that
// runs one inference every periodS seconds and deep-sleeps in between —
// the Figure 9 experiment ("a tinyML application with a duty cycle of one
// frame per second").
func DutyCycleAveragePowerMW(m *graph.Model, dev *Device, periodS float64) float64 {
	lat := Latency(m, dev)
	if lat == 0 {
		// Zero-op model: the application never wakes, so the average is the
		// sleep floor (and never 0/0 for a zero period).
		return dev.SleepMW
	}
	if lat >= periodS {
		return ActivePowerMW(m, dev)
	}
	active := ActivePowerMW(m, dev) * lat
	sleep := dev.SleepMW * (periodS - lat)
	return (active + sleep) / periodS
}

// TracePoint is one sample of a simulated Otii current trace.
type TracePoint struct {
	TimeS     float64
	CurrentMA float64
}

// CurrentTrace synthesizes an Otii Arc-style current-vs-time trace for an
// application invoking the model once per periodS, sampled every dtS, for
// the given duration. Active phases carry measurement noise; sleep phases
// drop to the deep-sleep floor (Figure 9). A zero-op model (nothing to
// invoke) or a non-positive sample interval yields an empty trace — the
// old behaviour divided by dtS and took math.Mod against periodS, which
// NaN-propagated into every sample.
func CurrentTrace(m *graph.Model, dev *Device, periodS, dtS, durationS float64, rng *rand.Rand) []TracePoint {
	lat := Latency(m, dev)
	// NaN is Latency's unscoreable-model sentinel: without this guard,
	// `phase < NaN` is always false and the trace would silently read as
	// a believable all-sleep measurement.
	if lat == 0 || math.IsNaN(lat) || dtS <= 0 || periodS <= 0 {
		return nil
	}
	activeMA := ActivePowerMW(m, dev) / dev.SupplyVoltage
	sleepMA := dev.SleepMW / dev.SupplyVoltage
	n := int(durationS / dtS)
	out := make([]TracePoint, 0, n)
	for i := 0; i < n; i++ {
		t := float64(i) * dtS
		phase := math.Mod(t, periodS)
		ma := sleepMA
		if phase < lat {
			ma = activeMA * (1 + rng.NormFloat64()*0.01)
		}
		out = append(out, TracePoint{TimeS: t, CurrentMA: ma})
	}
	return out
}

// AverageCurrentMA integrates a trace to its mean current.
func AverageCurrentMA(trace []TracePoint) float64 {
	if len(trace) == 0 {
		return 0
	}
	var s float64
	for _, p := range trace {
		s += p.CurrentMA
	}
	return s / float64(len(trace))
}
