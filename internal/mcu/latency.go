package mcu

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"micronets/internal/graph"
)

// Cost-model constants, calibrated so whole-model latencies match the
// paper's Table 4 on the Cortex-M7 baseline (see DESIGN.md §5):
//
//	cycles/MAC = cpmBase + cpmSetup/n,  n = dot-product length (kh*kw*inC)
//
// Long dot products amortize per-output setup (pointer arithmetic, SIMD
// head/tail handling), which is why depthwise convolutions (n = 9) are much
// slower per op than pointwise convolutions — the spread in Figure 3 — and
// why larger models achieve higher Mops/s.
const (
	cpmBase  = 1.20
	cpmSetup = 83.0

	// div4Penalty models the CMSIS-NN fast path: the int8 conv kernel is
	// "substantially faster when the number of input and output channels
	// are divisible by four" (§3.2: 138->140 channels cut latency 37.5 ms
	// to 21.5 ms).
	div4Penalty = 1.74

	// im2colPerElem is the per-patch-element cost of the IM2COL expansion
	// CMSIS-NN performs for non-1x1 convolutions (§3.2).
	im2colPerElem = 0.55

	// Sub-byte emulation overheads (§5.1.3, Figure 10): unpacking 4-bit
	// weights / activations with 8/16-bit instructions adds per-MAC work.
	int4WeightPerMAC = 0.35
	int4ActPerMAC    = 0.17

	// Cheap elementwise ops, cycles per element.
	poolPerElemTap = 1.1
	addPerElem     = 4.0
	softmaxPerElem = 70.0

	// Fixed per-inference overhead (interpreter dispatch etc), cycles.
	invokeOverhead = 30000

	// layerNoiseSigma is the lognormal sigma of the deterministic
	// per-layer-shape cost perturbation, representing micro-architectural
	// effects the analytic model does not capture (cache alignment, loop
	// remainders). This creates the Figure 3 scatter; whole models average
	// it away, which is the paper's central Figure 4 observation.
	layerNoiseSigma = 0.095
)

// layerNoise returns a deterministic lognormal factor keyed by the op's
// shape signature, shared across devices (the same layer is consistently
// fast or slow, as on real hardware).
func layerNoise(op *graph.Op, m *graph.Model) float64 {
	h := fnv.New64a()
	out := m.Tensors[op.Output]
	in := m.Tensors[op.Inputs[0]]
	for _, v := range []int{int(op.Kind), op.KH, op.KW, op.SH, in.C, out.C, out.H, out.W} {
		var b [4]byte
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(b[:])
	}
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	return math.Exp(rng.NormFloat64() * layerNoiseSigma)
}

// OpCycles returns the modeled cycle count for one op on the M7 baseline
// (before the device CycleFactor is applied). An op kind the cost model
// does not cover is an error: scoring it as zero cycles would let a
// malformed model undercut every real candidate in a latency-ranked
// search.
func OpCycles(m *graph.Model, op *graph.Op) (float64, error) {
	in := m.Tensors[op.Inputs[0]]
	out := m.Tensors[op.Output]
	macs := float64(op.MACs(m))
	var cycles float64
	switch op.Kind {
	case graph.OpConv2D, graph.OpTransposedConv:
		n := float64(op.KH * op.KW * in.C)
		cpm := cpmBase + cpmSetup/n
		// The ÷4 fast path concerns the channel-vectorized inner loop;
		// image-input layers (inC <= 3) use a dedicated kernel and are
		// exempt.
		if (in.C > 3 && in.C%4 != 0) || out.C%4 != 0 {
			cpm *= div4Penalty
		}
		cycles = macs * cpm
		if op.KH*op.KW > 1 {
			// IM2COL: every output position copies a kh*kw*inC patch.
			cycles += float64(out.H*out.W*op.KH*op.KW*in.C) * im2colPerElem
		}
	case graph.OpDWConv2D:
		n := float64(op.KH * op.KW)
		cpm := cpmBase + cpmSetup/n
		if out.C%4 != 0 {
			cpm *= math.Sqrt(div4Penalty) // dw kernel is less channel-vectorized
		}
		cycles = macs * cpm
	case graph.OpDense:
		n := float64(in.Elems())
		cpm := cpmBase + cpmSetup/math.Max(n, 1)
		cycles = macs * cpm
	case graph.OpAvgPool, graph.OpMaxPool:
		cycles = float64(out.Elems()*op.KH*op.KW) * poolPerElemTap
	case graph.OpAdd:
		cycles = float64(out.Elems()) * addPerElem
	case graph.OpSoftmax:
		cycles = float64(out.Elems()) * softmaxPerElem
	default:
		return 0, fmt.Errorf("mcu: no latency model for op %s (kind %v)", op.Name, op.Kind)
	}
	// Sub-byte emulation overheads apply to the MAC-bearing kernels.
	if macs > 0 {
		if op.WeightBits == 4 {
			cycles += macs * int4WeightPerMAC
		}
		if in.Bits == 4 || out.Bits == 4 {
			cycles += macs * int4ActPerMAC
		}
	}
	return cycles * layerNoise(op, m), nil
}

// LayerLatency describes one op's modeled latency on a device.
type LayerLatency struct {
	Name    string
	Kind    graph.OpKind
	Ops     int64
	Seconds float64
}

// ModelLatency returns the end-to-end inference latency in seconds for the
// model on the device, plus the per-layer breakdown. A model with no ops
// has nothing to invoke: latency is 0 and the breakdown is empty (rather
// than charging the interpreter dispatch overhead for a dispatch that
// never happens). A device the cost model cannot score (missing clock or
// cycle calibration) or an op with no latency model is an error, never a
// silent 0 — a 0-second candidate would Pareto-dominate every real one.
func ModelLatency(m *graph.Model, dev *Device) (float64, []LayerLatency, error) {
	if dev == nil {
		return 0, nil, fmt.Errorf("mcu: ModelLatency needs a device")
	}
	if dev.ClockMHz <= 0 || dev.CycleFactor <= 0 {
		return 0, nil, fmt.Errorf("mcu: device %s has no latency calibration (clock %.1f MHz, cycle factor %.3f)",
			dev.Name, dev.ClockMHz, dev.CycleFactor)
	}
	if len(m.Ops) == 0 {
		return 0, nil, nil
	}
	clock := dev.ClockMHz * 1e6
	total := invokeOverhead / clock * dev.CycleFactor
	layers := make([]LayerLatency, 0, len(m.Ops))
	for _, op := range m.Ops {
		cycles, err := OpCycles(m, op)
		if err != nil {
			return 0, nil, err
		}
		sec := cycles * dev.CycleFactor / clock
		total += sec
		layers = append(layers, LayerLatency{
			Name: op.Name, Kind: op.Kind, Ops: op.Ops(m), Seconds: sec,
		})
	}
	if math.IsNaN(total) || math.IsInf(total, 0) {
		return 0, nil, fmt.Errorf("mcu: non-finite latency for %s on %s", m.Name, dev.Name)
	}
	return total, layers, nil
}

// Latency returns just the end-to-end latency in seconds. Unlike
// ModelLatency it keeps the historical convenience signature for report
// renderers over known-good zoo models; an unscoreable model/device pair
// returns NaN so the failure poisons downstream numbers visibly instead
// of ranking as a free model.
func Latency(m *graph.Model, dev *Device) float64 {
	t, _, err := ModelLatency(m, dev)
	if err != nil {
		return math.NaN()
	}
	return t
}

// MeasureLatency simulates a timed measurement (the paper uses the Mbed
// Timer API): the modeled latency plus small run-to-run jitter from rng.
// A zero-op model measures exactly 0 — multiplicative jitter on a zero
// baseline would be meaningless (and historically let NaNs from malformed
// models propagate into traces).
func MeasureLatency(m *graph.Model, dev *Device, rng *rand.Rand) float64 {
	t := Latency(m, dev)
	if t == 0 {
		return 0
	}
	return t * math.Exp(rng.NormFloat64()*0.003)
}
