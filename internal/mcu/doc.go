// Package mcu simulates the three commodity STM32 microcontrollers the
// paper characterizes (Table 1): latency via a per-kernel cycle-cost model
// calibrated to the paper's measured throughputs, and energy via the
// paper's empirical finding that power is workload-independent (§3.4).
//
// This package is the substitution for the physical dev boards (see
// DESIGN.md): it reproduces the *mechanisms* behind the paper's claims —
// per-layer cost spread that averages out over whole models (Fig. 3 vs 4),
// the CMSIS-NN divisible-by-4 channel fast path (§3.2), dual-issue M7 vs
// M4 (§3.1), and constant power (Fig. 5).
package mcu
