package mcu

import (
	"fmt"

	"micronets/internal/graph"
)

// OpProfile is one row of a measured-vs-predicted join: the op's wall
// time on the serving host against the cost model's M7-baseline cycle
// prediction. Shares (fractions of the model total) are the scale-free
// comparison — if the paper's §3 linearity claim holds, MeasuredShare
// tracks PredictedShare and Ratio sits near 1 for every op.
type OpProfile struct {
	Index           int     `json:"index"`
	Kind            string  `json:"kind"`
	Name            string  `json:"name"`
	MeasuredNs      float64 `json:"measured_ns"`
	MeasuredShare   float64 `json:"measured_share"`
	PredictedCycles float64 `json:"predicted_cycles"`
	PredictedShare  float64 `json:"predicted_share"`
	// Ratio = MeasuredShare / PredictedShare: >1 means the op is slower
	// than the model expects relative to its peers, <1 faster.
	Ratio float64 `json:"ratio"`
	// NsPerCycle is the op's own measured-ns-per-predicted-cycle — the
	// per-op linearity constant.
	NsPerCycle float64 `json:"ns_per_cycle"`
}

// Profile is a whole-model measured-vs-predicted join.
type Profile struct {
	Model                string  `json:"model"`
	Runs                 int     `json:"runs"`
	TotalMeasuredNs      float64 `json:"total_measured_ns"`
	TotalPredictedCycles float64 `json:"total_predicted_cycles"`
	// NsPerCycle is the whole-model linearity constant (total measured
	// ns over total predicted cycles).
	NsPerCycle float64 `json:"ns_per_cycle"`
	// R2 is the coefficient of determination of the per-op linear fit
	// measured_ns ≈ NsPerCycle × predicted_cycles through the origin —
	// the live check of the paper's §3 claim that latency is linear in
	// modeled op cost (1.0 = perfectly linear).
	R2  float64     `json:"r2"`
	Ops []OpProfile `json:"ops"`
}

// JoinProfile joins measured per-op wall times (ns, averaged over runs,
// in op execution order — e.g. from tflm.Interpreter.ProfileInvoke)
// against OpCycles predictions for the same model. It errors if the
// measurement has the wrong op count or if any op is unmodeled, so a
// profile can never silently compare mismatched tables.
func JoinProfile(m *graph.Model, measuredNs []float64, runs int) (*Profile, error) {
	if len(measuredNs) != len(m.Ops) {
		return nil, fmt.Errorf("mcu: profile has %d measured ops, model %s has %d", len(measuredNs), m.Name, len(m.Ops))
	}
	p := &Profile{Model: m.Name, Runs: runs, Ops: make([]OpProfile, len(m.Ops))}
	for i := range m.Ops {
		op := m.Ops[i]
		cycles, err := OpCycles(m, op)
		if err != nil {
			return nil, fmt.Errorf("mcu: profile op %d (%s %q): %w", i, op.Kind, op.Name, err)
		}
		p.Ops[i] = OpProfile{
			Index:           i,
			Kind:            op.Kind.String(),
			Name:            op.Name,
			MeasuredNs:      measuredNs[i],
			PredictedCycles: cycles,
		}
		p.TotalMeasuredNs += measuredNs[i]
		p.TotalPredictedCycles += cycles
	}
	if p.TotalPredictedCycles > 0 {
		p.NsPerCycle = p.TotalMeasuredNs / p.TotalPredictedCycles
	}
	for i := range p.Ops {
		o := &p.Ops[i]
		if p.TotalMeasuredNs > 0 {
			o.MeasuredShare = o.MeasuredNs / p.TotalMeasuredNs
		}
		if p.TotalPredictedCycles > 0 {
			o.PredictedShare = o.PredictedCycles / p.TotalPredictedCycles
		}
		if o.PredictedShare > 0 {
			o.Ratio = o.MeasuredShare / o.PredictedShare
		}
		if o.PredictedCycles > 0 {
			o.NsPerCycle = o.MeasuredNs / o.PredictedCycles
		}
	}
	p.R2 = rSquaredThroughOrigin(p.Ops, p.NsPerCycle)
	return p, nil
}

// rSquaredThroughOrigin scores how well measured_ns = k × cycles fits
// the per-op points, relative to the mean-only baseline.
func rSquaredThroughOrigin(ops []OpProfile, k float64) float64 {
	if len(ops) == 0 {
		return 0
	}
	var mean float64
	for _, o := range ops {
		mean += o.MeasuredNs
	}
	mean /= float64(len(ops))
	var ssRes, ssTot float64
	for _, o := range ops {
		r := o.MeasuredNs - k*o.PredictedCycles
		ssRes += r * r
		d := o.MeasuredNs - mean
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
