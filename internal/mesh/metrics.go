package mesh

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"micronets/internal/obs"
)

// handleMetrics renders the micronets_mesh_* family in Prometheus text
// exposition format, hand-rolled like the replica tier so the repo
// stays dependency-free. Per-replica series carry a replica="<url>"
// label; fleet-wide counters (retries, placement failures) are
// unlabeled.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP micronets_mesh_uptime_seconds Seconds since the router started.\n")
	fmt.Fprintf(&b, "# TYPE micronets_mesh_uptime_seconds gauge\n")
	fmt.Fprintf(&b, "micronets_mesh_uptime_seconds %.3f\n", time.Since(rt.start).Seconds())
	fmt.Fprintf(&b, "# HELP micronets_mesh_replicas Configured backend replicas.\n")
	fmt.Fprintf(&b, "# TYPE micronets_mesh_replicas gauge\n")
	fmt.Fprintf(&b, "micronets_mesh_replicas %d\n", len(rt.replicas))
	fmt.Fprintf(&b, "# HELP micronets_mesh_replicas_up Replicas currently marked up.\n")
	fmt.Fprintf(&b, "# TYPE micronets_mesh_replicas_up gauge\n")
	fmt.Fprintf(&b, "micronets_mesh_replicas_up %d\n", rt.upCount())
	fmt.Fprintf(&b, "# HELP micronets_mesh_request_retries_total Proxied attempts moved to an alternate replica.\n")
	fmt.Fprintf(&b, "# TYPE micronets_mesh_request_retries_total counter\n")
	fmt.Fprintf(&b, "micronets_mesh_request_retries_total %d\n", rt.retries.Load())
	fmt.Fprintf(&b, "# HELP micronets_mesh_placement_failures_total Placements no replica could take (fleet-wide 409s).\n")
	fmt.Fprintf(&b, "# TYPE micronets_mesh_placement_failures_total counter\n")
	fmt.Fprintf(&b, "micronets_mesh_placement_failures_total %d\n", rt.placeFails.Load())

	gauge := func(name, help string, val func(*replica, replicaView) int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, rep := range rt.replicas {
			fmt.Fprintf(&b, "%s{replica=%q} %d\n", name, rep.url, val(rep, rep.snapshotView()))
		}
	}
	gauge("micronets_mesh_replica_up", "Health state of the replica (1 = up).",
		func(rep *replica, _ replicaView) int64 {
			if rep.up.Load() {
				return 1
			}
			return 0
		})
	gauge("micronets_mesh_replica_models_ready", "Models with a READY version on the replica (last probe).",
		func(_ *replica, v replicaView) int64 { return int64(v.modelsReady) })
	gauge("micronets_mesh_replica_ram_budget_bytes", "Replica RAM budget (0 = unbudgeted or unknown).",
		func(_ *replica, v replicaView) int64 { return int64(v.budgetBytes) })
	gauge("micronets_mesh_replica_ram_planned_bytes", "Bytes the replica has planned against its budget.",
		func(_ *replica, v replicaView) int64 { return int64(v.plannedBytes) })
	gauge("micronets_mesh_replica_free_bytes", "Replica budget headroom (-1 = unbudgeted).",
		func(_ *replica, v replicaView) int64 { return int64(v.freeBytes) })

	counter := func(name, help string, val func(*replica) uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, rep := range rt.replicas {
			fmt.Fprintf(&b, "%s{replica=%q} %d\n", name, rep.url, val(rep))
		}
	}
	counter("micronets_mesh_replica_requests_total", "Proxied requests the replica answered.",
		func(rep *replica) uint64 { return rep.requests.Load() })
	counter("micronets_mesh_replica_errors_total", "Transport failures talking to the replica.",
		func(rep *replica) uint64 { return rep.errors.Load() })
	counter("micronets_mesh_placements_total", "Admin loads and graph registrations placed on the replica.",
		func(rep *replica) uint64 { return rep.placements.Load() })
	counter("micronets_mesh_spills_total", "Placements the replica rejected over budget (or was pre-skipped for).",
		func(rep *replica) uint64 { return rep.spills.Load() })
	counter("micronets_mesh_health_transitions_total", "Times the replica flipped up/down.",
		func(rep *replica) uint64 { return rep.transitions.Load() })

	obs.WriteHistogramHead(&b, "micronets_mesh_request_latency_seconds",
		"Latency of proxied requests, per replica (router-side).")
	for _, rep := range rt.replicas {
		rep.hist.Snapshot().WritePrometheus(&b, "micronets_mesh_request_latency_seconds",
			fmt.Sprintf("replica=%q", rep.url))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(b.String())) //microvet:ignore droppederr client disconnects during a scrape are not actionable
}
