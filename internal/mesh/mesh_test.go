package mesh

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeReplica emulates the slice of the cmd/serve surface the router
// talks to: health, repository index with budget accounting, loads
// that 409 over budget, unloads, infer, and a minimal graph API.
type fakeReplica struct {
	tag string // echoed in infer responses to identify who answered

	mu      sync.Mutex
	budget  int            // 0 = unbudgeted
	costs   map[string]int // model name → bytes a load would plan
	models  map[string]bool
	graphs  map[string][]string // graph name → referenced models
	planned int

	srv *httptest.Server
}

func newFakeReplica(t *testing.T, tag string, budget int, costs map[string]int) *fakeReplica {
	t.Helper()
	f := &fakeReplica{
		tag:    tag,
		budget: budget,
		costs:  costs,
		models: map[string]bool{},
		graphs: map[string][]string{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v2/health/ready", f.handleReady)
	mux.HandleFunc("GET /v2/repository/index", f.handleIndex)
	mux.HandleFunc("GET /v2/graphs", f.handleGraphList)
	mux.HandleFunc("POST /v2/repository/models/{name}/load", f.handleLoad)
	mux.HandleFunc("POST /v2/repository/models/{name}/unload", f.handleUnload)
	mux.HandleFunc("GET /v2/models/{name}", f.handleMeta)
	mux.HandleFunc("POST /v2/models/{name}/infer", f.handleInfer)
	mux.HandleFunc("PUT /v2/graphs/{name}", f.handleGraphPut)
	mux.HandleFunc("POST /v2/graphs/{name}/infer", f.handleGraphInfer)
	mux.HandleFunc("DELETE /v2/graphs/{name}", f.handleGraphDelete)
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeReplica) url() string { return f.srv.URL }

func (f *fakeReplica) loadDirect(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.models[name] = true
	f.planned += f.costs[name]
}

func (f *fakeReplica) unloadDirect(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.models[name] {
		delete(f.models, name)
		f.planned -= f.costs[name]
	}
}

func (f *fakeReplica) holds(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.models[name]
}

func (f *fakeReplica) handleReady(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	n := len(f.models)
	f.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"ready": true, "models_ready": n})
}

func (f *fakeReplica) handleIndex(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rows := []map[string]any{}
	for name := range f.models {
		rows = append(rows, map[string]any{
			"name": name, "state": "READY", "task": "test", "version": 1,
			"planned_ram_bytes": f.costs[name],
		})
	}
	free := -1
	if f.budget > 0 {
		free = f.budget - f.planned
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"models":            rows,
		"ram_budget_bytes":  f.budget,
		"ram_planned_bytes": f.planned,
		"free_bytes":        free,
	})
}

func (f *fakeReplica) handleGraphList(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rows := []map[string]any{}
	for name, models := range f.graphs {
		rows = append(rows, map[string]any{"name": name, "models": models})
	}
	writeJSON(w, http.StatusOK, map[string]any{"graphs": rows})
}

func (f *fakeReplica) handleLoad(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.costs[name]
	if cost == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "unknown model " + name})
		return
	}
	if !f.models[name] && f.budget > 0 && f.planned+cost > f.budget {
		writeJSON(w, http.StatusConflict, budget409{
			Error:        fmt.Sprintf("model %s needs %d bytes, budget %d", name, cost, f.budget),
			Code:         "ram_budget_exceeded",
			Model:        name,
			NeededBytes:  cost,
			BudgetBytes:  f.budget,
			PlannedBytes: f.planned,
			FreeBytes:    f.budget - f.planned,
		})
		return
	}
	if !f.models[name] {
		f.models[name] = true
		f.planned += cost
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "state": "READY"})
}

func (f *fakeReplica) handleUnload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.models[name] {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "not loaded"})
		return
	}
	delete(f.models, name)
	f.planned -= f.costs[name]
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "state": "UNLOADED"})
}

func (f *fakeReplica) handleMeta(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !f.holds(name) {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown model " + name})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "platform": "fake"})
}

func (f *fakeReplica) handleInfer(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !f.holds(name) {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown model " + name})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"model_name": name, "served_by": f.tag})
}

func (f *fakeReplica) handleGraphPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var spec struct {
		Models []string `json:"models"`
	}
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad JSON"})
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range spec.Models {
		if !f.models[m] {
			writeJSON(w, http.StatusNotFound, map[string]any{
				"error": "unknown model " + m, "code": "unknown_model"})
			return
		}
	}
	f.graphs[name] = spec.Models
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "revision": 1})
}

func (f *fakeReplica) handleGraphInfer(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	f.mu.Lock()
	_, ok := f.graphs[name]
	f.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown graph " + name})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"graph": name, "served_by": f.tag})
}

func (f *fakeReplica) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.graphs[name]; !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown graph"})
		return
	}
	delete(f.graphs, name)
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "deleted": true})
}

// newTestRouter builds a router over the fakes with a dormant health
// loop (tests drive probes explicitly via probeAll / setUp).
func newTestRouter(t *testing.T, fakes ...*fakeReplica) *Router {
	t.Helper()
	urls := make([]string, len(fakes))
	for i, f := range fakes {
		urls[i] = f.url()
	}
	rt, err := New(Config{
		Replicas:       urls,
		HealthInterval: time.Hour, // tests probe explicitly
		RetryBackoff:   time.Millisecond,
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// keyOwnedBy finds a model name whose ring walk starts at the given
// replica, so spill/retry tests are deterministic regardless of how the
// ephemeral httptest URLs hash.
func keyOwnedBy(t *testing.T, rt *Router, url, prefix string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("%s-%d", prefix, i)
		if rt.ring.Owner(k) == url {
			return k
		}
	}
	t.Fatal("no key found owned by " + url)
	return ""
}

func doReq(t *testing.T, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	out := map[string]any{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s %s: non-JSON body %q", method, path, rec.Body.String())
	}
	return rec, out
}

// TestPlacementSpillsToFreeReplica forces the affinity owner to be the
// full replica: the load must spill to the replica with headroom, and
// the spill must be visible in the per-replica counters.
func TestPlacementSpillsToFreeReplica(t *testing.T) {
	costs := map[string]int{}
	a := newFakeReplica(t, "A", 100, costs)
	b := newFakeReplica(t, "B", 1000, costs)
	rt := newTestRouter(t, a, b)
	model := keyOwnedBy(t, rt, a.url(), "spill")
	costs[model] = 500 // fits B, not A

	rec, _ := doReq(t, rt.Handler(), "POST", "/v2/repository/models/"+model+"/load", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("load = %d, body %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Micronets-Replica"); got != b.url() {
		t.Errorf("placed on %s, want %s", got, b.url())
	}
	if !b.holds(model) || a.holds(model) {
		t.Errorf("model on A=%v B=%v; want B only", a.holds(model), b.holds(model))
	}
	if got := rt.byURL[a.url()].spills.Load(); got != 1 {
		t.Errorf("A spills = %d, want 1", got)
	}
	if got := rt.byURL[b.url()].placements.Load(); got != 1 {
		t.Errorf("B placements = %d, want 1", got)
	}
	// The synchronous post-placement refresh makes the new model visible
	// in the merged index immediately.
	rec, idx := doReq(t, rt.Handler(), "GET", "/v2/repository/index", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("index = %d", rec.Code)
	}
	found := false
	for _, row := range idx["models"].([]any) {
		m := row.(map[string]any)
		if m["name"] == model && m["replica"] == b.url() {
			found = true
		}
	}
	if !found {
		t.Errorf("merged index lacks %s on %s: %v", model, b.url(), idx["models"])
	}
}

// TestPlacementFleetwide409 checks the router's own 409 once every
// replica has spilled, and that the pre-skip path (free_bytes <
// needed hint) counts as a spill without an HTTP call.
func TestPlacementFleetwide409(t *testing.T) {
	costs := map[string]int{}
	a := newFakeReplica(t, "A", 100, costs)
	b := newFakeReplica(t, "B", 1000, costs)
	rt := newTestRouter(t, a, b)
	model := keyOwnedBy(t, rt, a.url(), "huge")
	costs[model] = 5000 // fits nothing

	rec, body := doReq(t, rt.Handler(), "POST", "/v2/repository/models/"+model+"/load", nil)
	if rec.Code != http.StatusConflict {
		t.Fatalf("load = %d, want 409; body %s", rec.Code, rec.Body.String())
	}
	if body["code"] != "ram_budget_exceeded" {
		t.Errorf("code = %v", body["code"])
	}
	if body["needed_bytes"].(float64) != 5000 {
		t.Errorf("needed_bytes = %v, want 5000", body["needed_bytes"])
	}
	if rt.placeFails.Load() != 1 {
		t.Errorf("placement failures = %d, want 1", rt.placeFails.Load())
	}
	// B was pre-skipped off the 409 hint: spill counted, no load call.
	if got := rt.byURL[b.url()].spills.Load(); got != 1 {
		t.Errorf("B spills = %d, want 1 (free_bytes pre-skip)", got)
	}
	if b.holds(model) {
		t.Error("model must not land anywhere")
	}
}

// TestLoadAffinity: with headroom everywhere, the load lands on the
// ring owner.
func TestLoadAffinity(t *testing.T) {
	costs := map[string]int{}
	a := newFakeReplica(t, "A", 0, costs)
	b := newFakeReplica(t, "B", 0, costs)
	rt := newTestRouter(t, a, b)
	model := keyOwnedBy(t, rt, b.url(), "aff")
	costs[model] = 10

	rec, _ := doReq(t, rt.Handler(), "POST", "/v2/repository/models/"+model+"/load", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("load = %d", rec.Code)
	}
	if !b.holds(model) || a.holds(model) {
		t.Errorf("affinity owner is %s but model on A=%v B=%v", b.url(), a.holds(model), b.holds(model))
	}
}

// TestInferRetriesOnAlternateReplica kills the affinity-preferred
// replica's listener: the proxied infer must fail over to the survivor
// within one request.
func TestInferRetriesOnAlternateReplica(t *testing.T) {
	costs := map[string]int{}
	a := newFakeReplica(t, "A", 0, costs)
	b := newFakeReplica(t, "B", 0, costs)
	rt := newTestRouter(t, a, b)
	model := keyOwnedBy(t, rt, a.url(), "retry")
	costs[model] = 10
	a.loadDirect(model)
	b.loadDirect(model)
	rt.probeAll(1) // pick up both holders

	a.srv.Close() // connection failures from now on; A still marked up

	rec, body := doReq(t, rt.Handler(), "POST", "/v2/models/"+model+"/infer", map[string]any{"inputs": []any{}})
	if rec.Code != http.StatusOK {
		t.Fatalf("infer = %d, body %s", rec.Code, rec.Body.String())
	}
	if body["served_by"] != "B" {
		t.Errorf("served_by = %v, want B", body["served_by"])
	}
	if rt.retries.Load() == 0 {
		t.Error("retry counter did not move")
	}
	if rt.byURL[a.url()].errors.Load() == 0 {
		t.Error("A error counter did not move")
	}
}

// TestInferStaleView404FallsThrough: the router's view says A holds the
// model but A has already dropped it — the 404 must fall through to the
// real holder instead of surfacing.
func TestInferStaleView404FallsThrough(t *testing.T) {
	costs := map[string]int{}
	a := newFakeReplica(t, "A", 0, costs)
	b := newFakeReplica(t, "B", 0, costs)
	rt := newTestRouter(t, a, b)
	model := keyOwnedBy(t, rt, a.url(), "stale")
	costs[model] = 10
	a.loadDirect(model)
	b.loadDirect(model)
	rt.probeAll(1)
	a.unloadDirect(model) // behind the router's back

	rec, body := doReq(t, rt.Handler(), "POST", "/v2/models/"+model+"/infer", map[string]any{"inputs": []any{}})
	if rec.Code != http.StatusOK {
		t.Fatalf("infer = %d, body %s", rec.Code, rec.Body.String())
	}
	if body["served_by"] != "B" {
		t.Errorf("served_by = %v, want B", body["served_by"])
	}
	// A model on no replica is a plain 404.
	rec, _ = doReq(t, rt.Handler(), "POST", "/v2/models/definitely-absent/infer", map[string]any{"inputs": []any{}})
	if rec.Code != http.StatusNotFound {
		t.Errorf("absent model infer = %d, want 404", rec.Code)
	}
}

// TestUnloadFansOutToHolders: an unload through the router removes the
// model from every replica holding it; unloading a model nobody holds
// is a 404.
func TestUnloadFansOutToHolders(t *testing.T) {
	costs := map[string]int{"m": 10}
	a := newFakeReplica(t, "A", 0, costs)
	b := newFakeReplica(t, "B", 0, costs)
	rt := newTestRouter(t, a, b)
	a.loadDirect("m")
	b.loadDirect("m")
	rt.probeAll(1)

	rec, body := doReq(t, rt.Handler(), "POST", "/v2/repository/models/m/unload", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("unload = %d, body %s", rec.Code, rec.Body.String())
	}
	if got := len(body["unloaded_from"].([]any)); got != 2 {
		t.Errorf("unloaded_from %d replicas, want 2", got)
	}
	if a.holds("m") || b.holds("m") {
		t.Error("model still loaded somewhere")
	}
	rec, _ = doReq(t, rt.Handler(), "POST", "/v2/repository/models/m/unload", nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("second unload = %d, want 404", rec.Code)
	}
}

// TestMergedViewsAndReady checks the fleet union surfaces and the
// readiness aggregate across health flips.
func TestMergedViewsAndReady(t *testing.T) {
	costs := map[string]int{"only-a": 10, "only-b": 20, "shared": 5}
	a := newFakeReplica(t, "A", 0, costs)
	b := newFakeReplica(t, "B", 1000, costs)
	rt := newTestRouter(t, a, b)
	a.loadDirect("only-a")
	a.loadDirect("shared")
	b.loadDirect("only-b")
	b.loadDirect("shared")
	rt.probeAll(1)

	rec, body := doReq(t, rt.Handler(), "GET", "/v2/models", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("models = %d", rec.Code)
	}
	var names []string
	for _, m := range body["models"].([]any) {
		names = append(names, m.(map[string]any)["name"].(string))
	}
	if got := strings.Join(names, ","); got != "only-a,only-b,shared" {
		t.Errorf("fleet model union = %s", got)
	}

	rec, body = doReq(t, rt.Handler(), "GET", "/v2/health/ready", nil)
	if rec.Code != http.StatusOK || body["ready"] != true {
		t.Fatalf("ready = %d %v", rec.Code, body)
	}
	if body["replicas_up"].(float64) != 2 || body["models_ready"].(float64) != 3 {
		t.Errorf("ready body = %v", body)
	}

	// Mixed budgets: one unbudgeted replica makes the fleet totals
	// unbounded (-1), matching the single-replica convention.
	rec, idx := doReq(t, rt.Handler(), "GET", "/v2/repository/index", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("index = %d", rec.Code)
	}
	if idx["ram_budget_bytes"].(float64) != -1 || idx["free_bytes"].(float64) != -1 {
		t.Errorf("fleet totals = %v / %v, want -1 / -1", idx["ram_budget_bytes"], idx["free_bytes"])
	}
	if got := len(idx["replicas"].([]any)); got != 2 {
		t.Errorf("replica summaries = %d, want 2", got)
	}

	// All replicas down → 503, not ready.
	for _, rep := range rt.replicas {
		rep.setUp(false)
	}
	rec, body = doReq(t, rt.Handler(), "GET", "/v2/health/ready", nil)
	if rec.Code != http.StatusServiceUnavailable || body["ready"] != false {
		t.Errorf("all-down ready = %d %v", rec.Code, body)
	}
	rec, _ = doReq(t, rt.Handler(), "POST", "/v2/models/shared/infer", map[string]any{})
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("all-down infer = %d, want 503", rec.Code)
	}
}

// TestGraphPutPlacesWhereModelsLive: a graph registration spills off
// replicas lacking the referenced models and lands where they live;
// graph infer then routes there.
func TestGraphPutPlacesWhereModelsLive(t *testing.T) {
	costs := map[string]int{"gm": 10}
	a := newFakeReplica(t, "A", 0, costs)
	b := newFakeReplica(t, "B", 0, costs)
	rt := newTestRouter(t, a, b)
	b.loadDirect("gm")
	rt.probeAll(1)
	graph := keyOwnedBy(t, rt, a.url(), "graph") // affinity prefers the wrong replica

	rec, _ := doReq(t, rt.Handler(), "PUT", "/v2/graphs/"+graph, map[string]any{"models": []string{"gm"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("graph put = %d, body %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Micronets-Replica"); got != b.url() {
		t.Errorf("graph placed on %s, want %s", got, b.url())
	}
	rec, body := doReq(t, rt.Handler(), "POST", "/v2/graphs/"+graph+"/infer", map[string]any{})
	if rec.Code != http.StatusOK || body["served_by"] != "B" {
		t.Errorf("graph infer = %d %v, want 200 via B", rec.Code, body)
	}
	// Merged graph list includes it after the post-placement refresh.
	rec, gl := doReq(t, rt.Handler(), "GET", "/v2/graphs", nil)
	if rec.Code != http.StatusOK || len(gl["graphs"].([]any)) != 1 {
		t.Errorf("fleet graph list = %d %v", rec.Code, gl)
	}
	rec, _ = doReq(t, rt.Handler(), "DELETE", "/v2/graphs/"+graph, nil)
	if rec.Code != http.StatusOK {
		t.Errorf("graph delete = %d", rec.Code)
	}
}

// TestTraceIDPropagation: an inbound trace ID survives the proxy hop
// and is minted when absent.
func TestTraceIDPropagation(t *testing.T) {
	costs := map[string]int{"m": 10}
	a := newFakeReplica(t, "A", 0, costs)
	rt := newTestRouter(t, a)
	a.loadDirect("m")
	rt.probeAll(1)

	req := httptest.NewRequest("GET", "/v2/models/m", nil)
	req.Header.Set("X-Micronets-Trace-Id", "trace-in")
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Micronets-Trace-Id"); got != "trace-in" {
		t.Errorf("trace id = %q, want trace-in", got)
	}
	rec2 := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec2, httptest.NewRequest("GET", "/v2/models/m", nil))
	if rec2.Header().Get("X-Micronets-Trace-Id") == "" {
		t.Error("no trace id minted")
	}
}

// TestMetricsRender sanity-checks the micronets_mesh_* exposition:
// family heads present, per-replica series labeled, counters moved.
func TestMetricsRender(t *testing.T) {
	costs := map[string]int{"m": 10}
	a := newFakeReplica(t, "A", 100, costs)
	rt := newTestRouter(t, a)
	a.loadDirect("m")
	rt.probeAll(1)
	doReq(t, rt.Handler(), "POST", "/v2/models/m/infer", map[string]any{})

	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	page := rec.Body.String()
	for _, want := range []string{
		"micronets_mesh_replicas 1",
		"micronets_mesh_replicas_up 1",
		"micronets_mesh_replica_up{replica=",
		"micronets_mesh_replica_requests_total{replica=",
		"micronets_mesh_request_latency_seconds_bucket",
		"# TYPE micronets_mesh_request_latency_seconds histogram",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page lacks %q", want)
		}
	}
}

// TestConcurrentInferStorm hammers the data plane while one replica
// flaps up/down, under -race: no panics, and every response is either a
// success (served by a live replica) or a clean routing error.
func TestConcurrentInferStorm(t *testing.T) {
	costs := map[string]int{"m": 10}
	a := newFakeReplica(t, "A", 0, costs)
	b := newFakeReplica(t, "B", 0, costs)
	rt := newTestRouter(t, a, b)
	a.loadDirect("m")
	b.loadDirect("m")
	rt.probeAll(1)

	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	stop := make(chan struct{})
	var flips sync.WaitGroup
	flips.Add(1)
	go func() { // single flipper: hysteresis counters are not data-path state
		defer flips.Done()
		rep := rt.byURL[a.url()]
		for i := 0; ; i++ {
			select {
			case <-stop:
				rep.setUp(true)
				return
			default:
				rep.setUp(i%2 == 0)
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan string, 1024)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				resp, err := http.Post(front.URL+"/v2/models/m/infer", "application/json",
					strings.NewReader(`{"inputs":[]}`))
				if err != nil {
					errs <- err.Error()
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("status %d", resp.StatusCode)
				}
				drainClose(resp.Body)
			}
		}()
	}
	wg.Wait()
	close(stop)
	flips.Wait()
	close(errs)
	// B stays up throughout, so every request must succeed: a flap of A
	// is at worst one extra attempt.
	for e := range errs {
		t.Errorf("storm request failed: %s", e)
	}
}
