package mesh

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over replica URLs. Each member is
// hashed onto the ring at VirtualNodes points; a key's preference order
// is the distinct members met walking clockwise from the key's hash.
// Two properties matter to the placer:
//
//   - affinity: the same model name always starts its candidate walk at
//     the same replica, so repeated loads and the data plane agree on
//     where a model should live without any coordination state;
//   - minimal movement: adding a member only steals keys for itself and
//     removing one only reassigns the keys it owned, so fleet membership
//     changes do not reshuffle every placement.
//
// A Ring is not safe for concurrent mutation; the router builds one at
// construction and only reads it afterwards.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	urls   []string    // distinct members, insertion order
}

type ringPoint struct {
	hash uint64
	url  string
}

// NewRing builds a ring with vnodes virtual nodes per member (≤0 picks
// the default 128) over the given members.
func NewRing(vnodes int, urls ...string) *Ring {
	if vnodes <= 0 {
		vnodes = 128
	}
	r := &Ring{vnodes: vnodes}
	for _, u := range urls {
		r.Add(u)
	}
	return r
}

// Add inserts a member (no-op when already present).
func (r *Ring) Add(url string) {
	for _, u := range r.urls {
		if u == url {
			return
		}
	}
	r.urls = append(r.urls, url)
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: hash64(url + "#" + strconv.Itoa(i)), url: url})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member (no-op when absent).
func (r *Ring) Remove(url string) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.url != url {
			kept = append(kept, p)
		}
	}
	r.points = kept
	for i, u := range r.urls {
		if u == url {
			r.urls = append(r.urls[:i], r.urls[i+1:]...)
			break
		}
	}
}

// Members returns the current member URLs (insertion order).
func (r *Ring) Members() []string {
	out := make([]string, len(r.urls))
	copy(out, r.urls)
	return out
}

// Owner returns the first member of Order(key), or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].url
}

// Order returns every member in the key's preference order: the walk
// clockwise from the key's hash, keeping the first occurrence of each
// member. The full order (not just the owner) is what budget spill
// traverses.
func (r *Ring) Order(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.urls))
	seen := make(map[string]bool, len(r.urls))
	start := r.search(key)
	for i := 0; i < len(r.points) && len(out) < len(r.urls); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.url] {
			seen[p.url] = true
			out = append(out, p.url)
		}
	}
	return out
}

// search returns the index of the first ring point at or after the
// key's hash (wrapping).
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) // hash.Hash writes never fail
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. Raw fnv-1a clusters badly on
// near-identical strings — vnode labels differ only in a digit or two,
// and an unmixed ring ends up with whole octants owned by one replica.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
