package mesh

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// meshError is the router's own error body, shape-compatible with the
// replicas' v2 error body.
type meshError struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v) //microvet:ignore droppederr headers are already written; an encode failure means the client hung up
}

// readBody buffers the request body (bounded) so an attempt can be
// replayed against an alternate replica. Returns false after writing
// the error response.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, meshError{
			Error: fmt.Sprintf("request body exceeds %d bytes", rt.cfg.MaxBodyBytes)})
		return nil, false
	}
	return body, true
}

// attempt issues one proxied request to one replica and returns the
// response with its body fully buffered (bounded). The replica's
// request/error counters and latency histogram are updated here.
func (rt *Router) attempt(rep *replica, r *http.Request, path string, body []byte) (*http.Response, []byte, error) {
	url := rep.url + path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	req.Header.Set("X-Micronets-Trace-Id", r.Header.Get("X-Micronets-Trace-Id"))
	start := time.Now()
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		rep.errors.Add(1)
		return nil, nil, err
	}
	defer drainClose(resp.Body)
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		rep.errors.Add(1)
		return nil, nil, err
	}
	rep.requests.Add(1)
	rep.hist.Observe(time.Since(start))
	return resp, respBody, nil
}

// writeProxied relays a buffered replica response to the client,
// stamping which replica answered.
func writeProxied(w http.ResponseWriter, rep *replica, resp *http.Response, body []byte) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	for k, vs := range resp.Header {
		if strings.HasPrefix(k, "X-Micronets-") && k != "X-Micronets-Trace-Id" {
			w.Header()[k] = vs
		}
	}
	w.Header().Set("X-Micronets-Replica", rep.url)
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body) //microvet:ignore droppederr headers are already written; a write failure means the client hung up
}

// forward proxies one data-plane request along the candidate list:
// connection failures back off exponentially and move to the next
// candidate, and (when retryOn404 is set, for infer/metadata routes
// keyed by a name the fleet view may be stale about) a 404 from one
// replica falls through to the next. Any other response — success or
// error — is the answer and is relayed as-is.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key string, holds func(*replica) bool, retryOn404 bool) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	cands := rt.candidates(key, holds)
	if len(cands) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, meshError{
			Error: "no replicas available", Code: "no_replicas"})
		return
	}
	if len(cands) > rt.cfg.MaxAttempts {
		cands = cands[:rt.cfg.MaxAttempts]
	}
	backoff := rt.cfg.RetryBackoff
	var lastErr error
	var last404 *http.Response
	var last404Body []byte
	var last404Rep *replica
	for i, rep := range cands {
		if i > 0 {
			rt.retries.Add(1)
		}
		resp, respBody, err := rt.attempt(rep, r, r.URL.Path, body)
		if err != nil {
			lastErr = err
			if i < len(cands)-1 {
				time.Sleep(backoff)
				if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
			}
			continue
		}
		if retryOn404 && resp.StatusCode == http.StatusNotFound && i < len(cands)-1 {
			last404, last404Body, last404Rep = resp, respBody, rep
			continue
		}
		writeProxied(w, rep, resp, respBody)
		return
	}
	if last404 != nil {
		writeProxied(w, last404Rep, last404, last404Body)
		return
	}
	writeJSON(w, http.StatusBadGateway, meshError{
		Error: fmt.Sprintf("all replicas failed: %v", lastErr), Code: "replicas_unreachable"})
}

// handleModelProxy serves the per-model data plane (metadata, profile,
// infer): prefer replicas holding the model, fall through the fleet on
// stale-view 404s.
func (rt *Router) handleModelProxy(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rt.forward(w, r, name, func(rep *replica) bool { return rep.holdsModel(name) }, true)
}

// handleGraphProxy serves per-graph reads and infers the same way.
func (rt *Router) handleGraphProxy(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rt.forward(w, r, name, func(rep *replica) bool { return rep.holdsGraph(name) }, true)
}

func (rt *Router) handleLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"live": true})
}

// handleReady reports fleet readiness: ready while at least one replica
// is up, with the up count and the fleet-wide distinct READY model
// count so orchestration can gate on "serving" rather than "listening".
func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	up := rt.upCount()
	body := map[string]any{
		"ready":        up > 0,
		"replicas":     len(rt.replicas),
		"replicas_up":  up,
		"models_ready": len(rt.mergedModels()),
	}
	code := http.StatusOK
	if up == 0 {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// handleModels answers GET /v2/models with the fleet union.
func (rt *Router) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": rt.mergedModels()})
}

// handleGraphList answers GET /v2/graphs with the fleet union,
// deduplicated by graph name.
func (rt *Router) handleGraphList(w http.ResponseWriter, r *http.Request) {
	seen := map[string]bool{}
	graphs := []map[string]any{}
	for _, rep := range rt.replicas {
		if !rep.up.Load() {
			continue
		}
		for _, row := range rep.snapshotView().graphRows {
			name, _ := row["name"].(string)
			if name == "" || seen[name] {
				continue
			}
			seen[name] = true
			graphs = append(graphs, row)
		}
	}
	sort.Slice(graphs, func(i, j int) bool {
		ni, _ := graphs[i]["name"].(string)
		nj, _ := graphs[j]["name"].(string)
		return ni < nj
	})
	writeJSON(w, http.StatusOK, map[string]any{"graphs": graphs})
}

// handleFleetIndex answers GET /v2/repository/index with the merged
// fleet view: every replica's index rows annotated with the replica
// that holds them, a per-replica budget summary, and fleet totals.
// Fleet ram_budget_bytes / free_bytes are -1 (unbounded) when any up
// replica is unbudgeted, matching the single-replica convention.
func (rt *Router) handleFleetIndex(w http.ResponseWriter, r *http.Request) {
	rows := []map[string]any{}
	replicas := []map[string]any{}
	budget, planned, free := 0, 0, 0
	unbounded := false
	for _, rep := range rt.replicas {
		up := rep.up.Load()
		v := rep.snapshotView()
		replicas = append(replicas, map[string]any{
			"url":               rep.url,
			"up":                up,
			"models_ready":      v.modelsReady,
			"ram_budget_bytes":  v.budgetBytes,
			"ram_planned_bytes": v.plannedBytes,
			"free_bytes":        v.freeBytes,
		})
		if !up {
			continue
		}
		if v.budgetBytes <= 0 {
			unbounded = true
		} else {
			budget += v.budgetBytes
			free += v.freeBytes
		}
		planned += v.plannedBytes
		for _, row := range v.rows {
			merged := make(map[string]any, len(row)+1)
			for k, val := range row {
				merged[k] = val
			}
			merged["replica"] = rep.url
			rows = append(rows, merged)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		ni, _ := rows[i]["name"].(string)
		nj, _ := rows[j]["name"].(string)
		if ni != nj {
			return ni < nj
		}
		ri, _ := rows[i]["replica"].(string)
		rj, _ := rows[j]["replica"].(string)
		return ri < rj
	})
	if unbounded {
		budget, free = -1, -1
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"models":            rows,
		"replicas":          replicas,
		"ram_budget_bytes":  budget,
		"ram_planned_bytes": planned,
		"free_bytes":        free,
	})
}
