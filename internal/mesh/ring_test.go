package mesh

import (
	"fmt"
	"testing"
)

func ringURLs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://replica-%d:8151", i)
	}
	return out
}

func ringKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("model-%d", i)
	}
	return out
}

// TestRingDistribution checks that ownership is roughly balanced for
// every fleet size the router is designed for: no replica owns less
// than half or more than double its fair share of 10k keys.
func TestRingDistribution(t *testing.T) {
	const nKeys = 10000
	keys := ringKeys(nKeys)
	for _, n := range []int{2, 3, 4, 5, 6, 7, 8} {
		t.Run(fmt.Sprintf("replicas=%d", n), func(t *testing.T) {
			r := NewRing(0, ringURLs(n)...)
			counts := map[string]int{}
			for _, k := range keys {
				counts[r.Owner(k)]++
			}
			if len(counts) != n {
				t.Fatalf("only %d of %d replicas own keys", len(counts), n)
			}
			fair := float64(nKeys) / float64(n)
			for url, c := range counts {
				if float64(c) < fair/2 || float64(c) > fair*2 {
					t.Errorf("%s owns %d keys; want within [%.0f, %.0f] of fair share %.0f",
						url, c, fair/2, fair*2, fair)
				}
			}
		})
	}
}

// TestRingMinimalMovement checks the consistent-hashing contract:
// adding a member only steals keys for itself, removing one only
// reassigns the keys it owned.
func TestRingMinimalMovement(t *testing.T) {
	const nKeys = 10000
	keys := ringKeys(nKeys)
	cases := []struct{ before int }{{2}, {3}, {4}, {7}}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("add-to-%d", tc.before), func(t *testing.T) {
			urls := ringURLs(tc.before + 1)
			r := NewRing(0, urls[:tc.before]...)
			before := map[string]string{}
			for _, k := range keys {
				before[k] = r.Owner(k)
			}
			added := urls[tc.before]
			r.Add(added)
			moved := 0
			for _, k := range keys {
				if now := r.Owner(k); now != before[k] {
					moved++
					if now != added {
						t.Fatalf("key %s moved %s → %s, not to the added member %s",
							k, before[k], now, added)
					}
				}
			}
			// Expect ~1/(n+1) of keys to move; allow 2× slack.
			if maxMoved := 2 * nKeys / (tc.before + 1); moved > maxMoved {
				t.Errorf("%d keys moved on add; want ≤ %d", moved, maxMoved)
			}
			if moved == 0 {
				t.Error("no keys moved to the added member; it owns nothing")
			}
		})
		t.Run(fmt.Sprintf("remove-from-%d", tc.before+1), func(t *testing.T) {
			urls := ringURLs(tc.before + 1)
			r := NewRing(0, urls...)
			before := map[string]string{}
			for _, k := range keys {
				before[k] = r.Owner(k)
			}
			removed := urls[tc.before]
			r.Remove(removed)
			for _, k := range keys {
				now := r.Owner(k)
				if before[k] == removed {
					if now == removed {
						t.Fatalf("key %s still owned by removed member", k)
					}
				} else if now != before[k] {
					t.Fatalf("key %s moved %s → %s although its owner was not removed",
						k, before[k], now)
				}
			}
		})
	}
}

// TestRingOrder checks the preference walk: every member exactly once,
// starting at the owner, and deterministic for one key.
func TestRingOrder(t *testing.T) {
	urls := ringURLs(5)
	r := NewRing(0, urls...)
	for _, k := range ringKeys(50) {
		order := r.Order(k)
		if len(order) != len(urls) {
			t.Fatalf("Order(%s) returned %d members, want %d", k, len(order), len(urls))
		}
		if order[0] != r.Owner(k) {
			t.Fatalf("Order(%s)[0] = %s, Owner = %s", k, order[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, u := range order {
			if seen[u] {
				t.Fatalf("Order(%s) repeats %s", k, u)
			}
			seen[u] = true
		}
		again := r.Order(k)
		for i := range order {
			if order[i] != again[i] {
				t.Fatalf("Order(%s) is not deterministic", k)
			}
		}
	}
}

// TestRingEdgeCases covers empty and single-member rings plus
// duplicate adds.
func TestRingEdgeCases(t *testing.T) {
	r := NewRing(0)
	if got := r.Owner("x"); got != "" {
		t.Errorf("empty ring Owner = %q, want empty", got)
	}
	if got := r.Order("x"); got != nil {
		t.Errorf("empty ring Order = %v, want nil", got)
	}
	r.Add("http://a")
	r.Add("http://a") // duplicate: no-op
	if got := len(r.Members()); got != 1 {
		t.Fatalf("members after duplicate add = %d, want 1", got)
	}
	if got := r.Owner("anything"); got != "http://a" {
		t.Errorf("single-member Owner = %q", got)
	}
}
