package mesh

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"micronets/internal/obs"
)

// replica is one backend cmd/serve process as the router sees it:
// health state, the last fleet-view snapshot (which models and graphs
// it serves, how much budget is free), and per-replica metrics.
type replica struct {
	url string // base URL, no trailing slash

	up atomic.Bool
	// consecFails / consecOKs drive the mark-down / mark-up hysteresis.
	// They are touched only by the health loop (and by tests through
	// setUp), never by the data path.
	consecFails int
	consecOKs   int

	transitions atomic.Uint64 // health state flips (either direction)
	requests    atomic.Uint64 // proxied requests the replica answered
	errors      atomic.Uint64 // transport failures talking to it
	placements  atomic.Uint64 // admin loads placed here
	spills      atomic.Uint64 // budget 409s (or free_bytes skips) here
	hist        obs.Histogram // latency of answered proxied requests

	mu   sync.Mutex
	view replicaView // guarded by replica.mu
}

// replicaView is the router's last successful snapshot of a replica's
// repository index and graph list. A zero view (before the first
// refresh, or while the replica is down) holds nothing.
type replicaView struct {
	// models maps name → true for names with a READY version; graphs
	// likewise for registered graphs.
	models map[string]bool
	graphs map[string]bool
	// rows / graphRows are the raw index and graph-list rows (decoded
	// JSON objects), kept verbatim so the merged fleet views never lag
	// the replica's schema.
	rows      []map[string]any
	graphRows []map[string]any
	// budget accounting from the index top level; freeBytes is -1 for
	// an unbudgeted replica.
	budgetBytes  int
	plannedBytes int
	freeBytes    int
	modelsReady  int
}

func newReplica(url string) *replica {
	return &replica{url: strings.TrimRight(url, "/")}
}

// setUp transitions the health state, counting actual flips. It resets
// the opposite-direction hysteresis counter so a recovered replica
// needs fresh consecutive failures to go down again (and vice versa).
func (rep *replica) setUp(up bool) {
	if rep.up.Swap(up) != up {
		rep.transitions.Add(1)
	}
	if up {
		rep.consecFails = 0
	} else {
		rep.consecOKs = 0
		rep.mu.Lock()
		rep.view = replicaView{}
		rep.mu.Unlock()
	}
}

// snapshotView returns the current view under the lock.
func (rep *replica) snapshotView() replicaView {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return rep.view
}

// holdsModel / holdsGraph consult the fleet view.
func (rep *replica) holdsModel(name string) bool {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return rep.view.models[name]
}

func (rep *replica) holdsGraph(name string) bool {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return rep.view.graphs[name]
}

// freeBytes returns the last observed free budget (-1 = unbudgeted or
// unknown, which the placer treats as "no pressure").
func (rep *replica) freeBytes() int {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.view.rows == nil && rep.view.budgetBytes == 0 {
		return -1 // never refreshed
	}
	return rep.view.freeBytes
}

// probe runs one health check against the replica and applies the
// mark-down / mark-up hysteresis: down after downAfter consecutive
// failures, up after upAfter consecutive successes. On success the
// fleet view is refreshed too. Called from the health loop (or New's
// synchronous first round); never concurrently for one replica.
func (rep *replica) probe(client *http.Client, downAfter, upAfter int) {
	ready, modelsReady, err := rep.checkReady(client)
	if err != nil || !ready {
		rep.consecOKs = 0
		rep.consecFails++
		if rep.up.Load() && rep.consecFails >= downAfter {
			rep.setUp(false)
		}
		return
	}
	rep.consecFails = 0
	rep.consecOKs++
	if !rep.up.Load() && rep.consecOKs >= upAfter {
		rep.setUp(true)
	}
	if rep.up.Load() {
		if err := rep.refreshView(client); err == nil {
			rep.mu.Lock()
			rep.view.modelsReady = modelsReady
			rep.mu.Unlock()
		}
	}
}

// checkReady probes GET /v2/health/ready: up iff the replica answers
// 200 with ready:true. The models_ready count distinguishes "up but
// empty" from "serving" during warm-up.
func (rep *replica) checkReady(client *http.Client) (ready bool, modelsReady int, err error) {
	var body struct {
		Ready       bool `json:"ready"`
		ModelsReady int  `json:"models_ready"`
	}
	resp, err := client.Get(rep.url + "/v2/health/ready")
	if err != nil {
		return false, 0, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return false, 0, fmt.Errorf("mesh: %s ready: %s", rep.url, resp.Status)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err != nil {
		return false, 0, err
	}
	return body.Ready, body.ModelsReady, nil
}

// refreshView re-reads the replica's repository index and graph list
// into the fleet view. Partial failures keep the previous view: a
// stale map beats an empty one for routing.
func (rep *replica) refreshView(client *http.Client) error {
	var idx struct {
		Models          []map[string]any `json:"models"`
		RAMBudgetBytes  int              `json:"ram_budget_bytes"`
		RAMPlannedBytes int              `json:"ram_planned_bytes"`
		FreeBytes       int              `json:"free_bytes"`
	}
	if err := getJSON(client, rep.url+"/v2/repository/index", &idx); err != nil {
		return err
	}
	var gl struct {
		Graphs []map[string]any `json:"graphs"`
	}
	if err := getJSON(client, rep.url+"/v2/graphs", &gl); err != nil {
		return err
	}
	v := replicaView{
		models:       make(map[string]bool, len(idx.Models)),
		graphs:       make(map[string]bool, len(gl.Graphs)),
		rows:         idx.Models,
		graphRows:    gl.Graphs,
		budgetBytes:  idx.RAMBudgetBytes,
		plannedBytes: idx.RAMPlannedBytes,
		freeBytes:    idx.FreeBytes,
	}
	if v.rows == nil {
		v.rows = []map[string]any{}
	}
	if v.graphRows == nil {
		v.graphRows = []map[string]any{}
	}
	for _, row := range idx.Models {
		name, _ := row["name"].(string)
		state, _ := row["state"].(string)
		if name != "" && state == "READY" {
			v.models[name] = true
		}
	}
	for _, g := range gl.Graphs {
		if name, _ := g["name"].(string); name != "" {
			v.graphs[name] = true
		}
	}
	rep.mu.Lock()
	modelsReady := rep.view.modelsReady
	rep.view = v
	rep.view.modelsReady = modelsReady
	rep.mu.Unlock()
	return nil
}

// getJSON fetches one JSON document (bounded) or fails on non-200.
func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("mesh: GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(v)
}

// drainClose empties and closes a response body so the transport can
// reuse the connection.
func drainClose(rc io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(rc, 1<<20))
	rc.Close()
}
