package mesh

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// budget409 is the structured ram_budget_exceeded body a replica
// answers an over-budget load with. It doubles as the router's own
// fleet-wide 409 once every candidate has spilled.
type budget409 struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	Model        string `json:"model"`
	NeededBytes  int    `json:"needed_bytes"`
	BudgetBytes  int    `json:"budget_bytes"`
	PlannedBytes int    `json:"planned_bytes"`
	FreeBytes    int    `json:"free_bytes"`
}

// handleLoad places an admin load onto the fleet. Candidates are the up
// replicas in the model's ring-affinity order, holders first (a reload
// should land where the model already lives). A candidate is skipped
// up-front when its last observed free_bytes already can't fit the
// needed bytes a previous 409 reported; a candidate that answers 409
// ram_budget_exceeded spills the placement to the next one. Any other
// replica answer (200, 400 bad spec, ...) is final and relayed. When
// every candidate spilled, the router answers its own 409 with the
// largest free budget seen, so the caller knows how far over the fleet
// the load was.
func (rt *Router) handleLoad(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	cands := rt.candidates(name, func(rep *replica) bool { return rep.holdsModel(name) })
	if len(cands) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, meshError{
			Error: "no replicas available", Code: "no_replicas"})
		return
	}
	neededHint := 0 // from the first 409; enables free_bytes pre-skips
	spilled := 0
	maxFree := -1
	backoff := rt.cfg.RetryBackoff
	var lastErr error
	for _, rep := range cands {
		if free := rep.freeBytes(); free >= 0 {
			if free > maxFree {
				maxFree = free
			}
			// Pre-skip only on evidence: a hint from a real 409.
			if neededHint > 0 && free < neededHint {
				rep.spills.Add(1)
				spilled++
				continue
			}
		}
		resp, respBody, err := rt.attempt(rep, r, r.URL.Path, body)
		if err != nil {
			lastErr = err
			time.Sleep(backoff)
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		if resp.StatusCode == http.StatusConflict {
			var be budget409
			if json.Unmarshal(respBody, &be) == nil && be.Code == "ram_budget_exceeded" {
				rep.spills.Add(1)
				spilled++
				if be.NeededBytes > neededHint {
					neededHint = be.NeededBytes
				}
				if be.FreeBytes > maxFree {
					maxFree = be.FreeBytes
				}
				continue
			}
		}
		if resp.StatusCode == http.StatusOK {
			rep.placements.Add(1)
			// Refresh the winner synchronously so the data plane and the
			// fleet index see the new model before the next health tick.
			_ = rep.refreshView(rt.cfg.Client) //microvet:ignore droppederr view refresh is best-effort; the health loop repairs it within one interval
		}
		writeProxied(w, rep, resp, respBody)
		return
	}
	if spilled > 0 {
		rt.placeFails.Add(1)
		writeJSON(w, http.StatusConflict, budget409{
			Error: fmt.Sprintf(
				"model %s does not fit on any of %d replicas (needs %d bytes, best free %d)",
				name, len(cands), neededHint, maxFree),
			Code:        "ram_budget_exceeded",
			Model:       name,
			NeededBytes: neededHint,
			FreeBytes:   maxFree,
		})
		return
	}
	writeJSON(w, http.StatusBadGateway, meshError{
		Error: fmt.Sprintf("all replicas failed: %v", lastErr), Code: "replicas_unreachable"})
}

// handleUnload fans the unload out to every up replica holding the
// model (per the fleet view) and aggregates: 200 when every holder
// unloaded, 404 when none holds it, the first non-OK replica answer
// otherwise.
func (rt *Router) handleUnload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	holders := rt.holdersOf(name, func(rep *replica) bool { return rep.holdsModel(name) })
	if len(holders) == 0 {
		writeJSON(w, http.StatusNotFound, meshError{
			Error: fmt.Sprintf("model %s is not loaded on any replica", name)})
		return
	}
	unloaded := []string{}
	for _, rep := range holders {
		resp, respBody, err := rt.attempt(rep, r, r.URL.Path, body)
		if err != nil {
			writeJSON(w, http.StatusBadGateway, meshError{
				Error: fmt.Sprintf("unload on %s failed: %v", rep.url, err),
				Code:  "replicas_unreachable"})
			return
		}
		if resp.StatusCode != http.StatusOK {
			writeProxied(w, rep, resp, respBody)
			return
		}
		unloaded = append(unloaded, rep.url)
		_ = rep.refreshView(rt.cfg.Client) //microvet:ignore droppederr view refresh is best-effort; the health loop repairs it within one interval
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"model": name, "unloaded_from": unloaded})
}

// handleGraphPut places a graph registration: the target replica must
// already hold every model the graph references, so a 404 unknown_model
// or 409 model_not_loaded from one candidate spills to the next. Other
// answers (200, 400 bad graph, 409 stale_version CAS failures) are
// final.
func (rt *Router) handleGraphPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	cands := rt.candidates(name, func(rep *replica) bool { return rep.holdsGraph(name) })
	if len(cands) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, meshError{
			Error: "no replicas available", Code: "no_replicas"})
		return
	}
	backoff := rt.cfg.RetryBackoff
	var lastErr error
	var lastSpill *struct {
		rep  *replica
		resp *http.Response
		body []byte
	}
	for _, rep := range cands {
		resp, respBody, err := rt.attempt(rep, r, r.URL.Path, body)
		if err != nil {
			lastErr = err
			time.Sleep(backoff)
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		if graphPlacementSpill(resp.StatusCode, respBody) {
			rep.spills.Add(1)
			lastSpill = &struct {
				rep  *replica
				resp *http.Response
				body []byte
			}{rep, resp, respBody}
			continue
		}
		if resp.StatusCode == http.StatusOK {
			rep.placements.Add(1)
			_ = rep.refreshView(rt.cfg.Client) //microvet:ignore droppederr view refresh is best-effort; the health loop repairs it within one interval
		}
		writeProxied(w, rep, resp, respBody)
		return
	}
	if lastSpill != nil {
		rt.placeFails.Add(1)
		writeProxied(w, lastSpill.rep, lastSpill.resp, lastSpill.body)
		return
	}
	writeJSON(w, http.StatusBadGateway, meshError{
		Error: fmt.Sprintf("all replicas failed: %v", lastErr), Code: "replicas_unreachable"})
}

// graphPlacementSpill reports whether a graph PUT answer means "this
// replica lacks the referenced models" (spill) rather than "the graph
// itself is bad" (final).
func graphPlacementSpill(status int, body []byte) bool {
	if status != http.StatusNotFound && status != http.StatusConflict {
		return false
	}
	var e struct {
		Code string `json:"code"`
	}
	if json.Unmarshal(body, &e) != nil {
		return false
	}
	return e.Code == "unknown_model" || e.Code == "model_not_loaded"
}

// handleGraphDelete fans the delete out to every up replica holding the
// graph; 404 when none does.
func (rt *Router) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	holders := rt.holdersOf(name, func(rep *replica) bool { return rep.holdsGraph(name) })
	if len(holders) == 0 {
		writeJSON(w, http.StatusNotFound, meshError{
			Error: fmt.Sprintf("graph %s is not registered on any replica", name)})
		return
	}
	deleted := []string{}
	for _, rep := range holders {
		resp, respBody, err := rt.attempt(rep, r, r.URL.Path, body)
		if err != nil {
			writeJSON(w, http.StatusBadGateway, meshError{
				Error: fmt.Sprintf("delete on %s failed: %v", rep.url, err),
				Code:  "replicas_unreachable"})
			return
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
			writeProxied(w, rep, resp, respBody)
			return
		}
		deleted = append(deleted, rep.url)
		_ = rep.refreshView(rt.cfg.Client) //microvet:ignore droppederr view refresh is best-effort; the health loop repairs it within one interval
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"graph": name, "deleted_from": deleted})
}
