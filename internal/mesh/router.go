package mesh

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"micronets/internal/obs"
)

// Config configures a Router.
type Config struct {
	// Replicas are the backend cmd/serve base URLs (e.g.
	// "http://10.0.0.5:8151"). At least one is required.
	Replicas []string
	// HealthInterval is the period of the health/fleet-view poll
	// (default 1s).
	HealthInterval time.Duration
	// DownAfter marks a replica down after that many consecutive failed
	// ready probes (default 2); UpAfter marks it back up after that many
	// consecutive successes (default 1).
	DownAfter int
	UpAfter   int
	// MaxAttempts bounds how many replicas one proxied request may try
	// (default 3). Only connection-level failures (and, on the data
	// plane, a stale-view 404) move to the next candidate; an HTTP error
	// from a reached replica is passed through.
	MaxAttempts int
	// RetryBackoff is the initial pause before a retry after a
	// connection failure, doubling per attempt (default 25ms, capped at
	// 1s). Backoff applies only to connection failures: budget spills
	// and stale-view 404s move on immediately.
	RetryBackoff time.Duration
	// VirtualNodes is the consistent-hash ring density (default 128).
	VirtualNodes int
	// MaxBodyBytes bounds buffered request and response bodies
	// (default 32MB). Bodies are buffered so an attempt can be replayed
	// on an alternate replica.
	MaxBodyBytes int64
	// Client issues proxied requests (default: http.Transport defaults,
	// no overall timeout so long infers are not cut off). HealthClient
	// issues probes (default 2s timeout).
	Client       *http.Client
	HealthClient *http.Client
	// Logger receives one structured line per proxied request (default
	// slog.Default).
	Logger *slog.Logger
}

func (c *Config) fill() error {
	if len(c.Replicas) == 0 {
		return errors.New("mesh: at least one replica is required")
	}
	seen := map[string]bool{}
	for _, u := range c.Replicas {
		if u == "" {
			return errors.New("mesh: empty replica URL")
		}
		if seen[u] {
			return fmt.Errorf("mesh: duplicate replica %s", u)
		}
		seen[u] = true
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 2
	}
	if c.UpAfter <= 0 {
		c.UpAfter = 1
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.HealthClient == nil {
		c.HealthClient = &http.Client{Timeout: 2 * time.Second}
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return nil
}

// Router is the fleet front door: it health-checks its replicas, places
// admin loads by consistent-hash affinity with budget spill, and
// proxies the /v2 data plane with retry-on-alternate-replica. Construct
// with New (which probes every replica once, synchronously, so the
// first request already routes), mount Handler, Close to stop the
// health loop.
type Router struct {
	cfg      Config
	ring     *Ring
	replicas []*replica // fixed set, Config.Replicas order
	byURL    map[string]*replica
	mux      *http.ServeMux
	log      *slog.Logger
	start    time.Time

	retries    atomic.Uint64 // attempts moved to an alternate replica
	placeFails atomic.Uint64 // placements no replica could take

	stopHealth context.CancelFunc
	healthDone chan struct{}
	closeOnce  sync.Once
}

// New builds the router, probes every replica once (a dead replica at
// boot is marked down, not fatal), and starts the health loop.
func New(cfg Config) (*Router, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:   cfg,
		ring:  NewRing(cfg.VirtualNodes, cfg.Replicas...),
		byURL: make(map[string]*replica, len(cfg.Replicas)),
		log:   cfg.Logger,
		start: time.Now(),
	}
	for _, u := range cfg.Replicas {
		rep := newReplica(u)
		rt.replicas = append(rt.replicas, rep)
		rt.byURL[rep.url] = rep
	}
	// First round synchronously, with UpAfter forced to 1: a healthy
	// fleet serves from the first request instead of after UpAfter
	// polls.
	rt.probeAll(1)

	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("GET /v2/health/live", rt.handleLive)
	rt.mux.HandleFunc("GET /v2/health/ready", rt.handleReady)
	rt.mux.HandleFunc("GET /v2/models", rt.handleModels)
	rt.mux.HandleFunc("GET /v2/models/{name}", rt.handleModelProxy)
	rt.mux.HandleFunc("GET /v2/models/{name}/profile", rt.handleModelProxy)
	rt.mux.HandleFunc("POST /v2/models/{name}/infer", rt.handleModelProxy)
	rt.mux.HandleFunc("GET /v2/graphs", rt.handleGraphList)
	rt.mux.HandleFunc("GET /v2/graphs/{name}", rt.handleGraphProxy)
	rt.mux.HandleFunc("POST /v2/graphs/{name}/infer", rt.handleGraphProxy)
	rt.mux.HandleFunc("PUT /v2/graphs/{name}", rt.handleGraphPut)
	rt.mux.HandleFunc("DELETE /v2/graphs/{name}", rt.handleGraphDelete)
	rt.mux.HandleFunc("GET /v2/repository/index", rt.handleFleetIndex)
	rt.mux.HandleFunc("POST /v2/repository/models/{name}/load", rt.handleLoad)
	rt.mux.HandleFunc("POST /v2/repository/models/{name}/unload", rt.handleUnload)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)

	ctx, cancel := context.WithCancel(context.Background())
	rt.stopHealth = cancel
	rt.healthDone = make(chan struct{})
	go rt.healthLoop(ctx)
	return rt, nil
}

// Handler returns the routed handler wrapped in request logging.
func (rt *Router) Handler() http.Handler { return rt.logMiddleware(rt.mux) }

// Close stops the health loop. In-flight proxied requests finish.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() {
		rt.stopHealth()
		<-rt.healthDone
	})
}

// ListenAndServe serves on addr until ctx is cancelled.
func (rt *Router) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	rt.log.Info("mesh router serving", "addr", ln.Addr().String(),
		"replicas", len(rt.replicas), "replicas_up", rt.upCount())
	select {
	case err := <-errc:
		rt.Close()
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = hs.Shutdown(shutCtx)
	rt.Close()
	return err
}

// healthLoop re-probes every replica each HealthInterval.
func (rt *Router) healthLoop(ctx context.Context) {
	defer close(rt.healthDone)
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.probeAll(rt.cfg.UpAfter)
		}
	}
}

// probeAll probes every replica concurrently and logs health flips.
func (rt *Router) probeAll(upAfter int) {
	var wg sync.WaitGroup
	for _, rep := range rt.replicas {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			was := rep.up.Load()
			rep.probe(rt.cfg.HealthClient, rt.cfg.DownAfter, upAfter)
			if now := rep.up.Load(); now != was {
				rt.log.Info("replica health transition", "replica", rep.url, "up", now)
			}
		}(rep)
	}
	wg.Wait()
}

func (rt *Router) upCount() int {
	n := 0
	for _, rep := range rt.replicas {
		if rep.up.Load() {
			n++
		}
	}
	return n
}

// candidates returns the up replicas in the key's ring-affinity order.
// When holds is non-nil, replicas currently holding the target sort
// before the rest (still affinity-ordered within each group), so the
// data plane prefers a known holder but can still fall through to the
// fleet when the view is stale.
func (rt *Router) candidates(key string, holds func(*replica) bool) []*replica {
	order := rt.ring.Order(key)
	var holders, rest []*replica
	for _, u := range order {
		rep := rt.byURL[u]
		if rep == nil || !rep.up.Load() {
			continue
		}
		if holds != nil && holds(rep) {
			holders = append(holders, rep)
		} else {
			rest = append(rest, rep)
		}
	}
	return append(holders, rest...)
}

// holdersOf returns the up replicas whose view holds the target,
// affinity-ordered. Unlike candidates it never falls through to
// non-holders — unload and graph delete must only touch replicas that
// actually serve the name.
func (rt *Router) holdersOf(key string, holds func(*replica) bool) []*replica {
	var out []*replica
	for _, u := range rt.ring.Order(key) {
		rep := rt.byURL[u]
		if rep != nil && rep.up.Load() && holds(rep) {
			out = append(out, rep)
		}
	}
	return out
}

// mergedModels is the fleet view behind GET /v2/models: the union of
// every up replica's READY models, deduplicated by name.
func (rt *Router) mergedModels() []map[string]any {
	seen := map[string]bool{}
	var out []map[string]any
	for _, rep := range rt.replicas {
		if !rep.up.Load() {
			continue
		}
		v := rep.snapshotView()
		for _, row := range v.rows {
			name, _ := row["name"].(string)
			state, _ := row["state"].(string)
			if name == "" || state != "READY" || seen[name] {
				continue
			}
			seen[name] = true
			task, _ := row["task"].(string)
			version, _ := row["version"].(float64)
			out = append(out, map[string]any{
				"name": name, "task": task, "state": state, "version": int(version),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i]["name"].(string) < out[j]["name"].(string)
	})
	return out
}

// traceIDFor honors an inbound X-Micronets-Trace-Id or mints one, so
// traces span router → replica.
func traceIDFor(r *http.Request) string {
	if id := r.Header.Get("X-Micronets-Trace-Id"); id != "" {
		return id
	}
	return obs.NewTraceID()
}

// statusWriter captures the response code for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += n
	return n, err
}

// logMiddleware stamps every request with a trace ID and emits one
// structured line per request.
func (rt *Router) logMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traceID := traceIDFor(r)
		r.Header.Set("X-Micronets-Trace-Id", traceID)
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set("X-Micronets-Trace-Id", traceID)
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		rt.log.Info("mesh request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"dur_ms", float64(time.Since(start).Microseconds())/1000,
			"replica", sw.Header().Get("X-Micronets-Replica"),
			"trace", traceID,
		)
	})
}
