// Package mesh is the fleet tier: a model-mesh placement router that
// fronts N cmd/serve replicas — each a budget-bounded model repository —
// behind one /v2 door.
//
// The router discovers replicas from a static list, health-checks each
// one via /v2/health/ready (mark-down after consecutive failures,
// mark-up after consecutive successes), and keeps a per-replica fleet
// view: which models and graphs the replica serves, and how much of its
// RAM budget is free. Admin loads are *placed*: candidates are ordered
// by consistent-hash affinity on the model name, and a replica that
// rejects the load with a structured 409 ram_budget_exceeded spills the
// placement to the next candidate — the same SRAM-class bin-packing the
// paper does per device, lifted to the fleet. The data plane
// (models/{name}/infer, graphs/{name}/infer, metadata, profile) proxies
// to a replica holding the target, retrying on an alternate replica
// with exponential backoff when the connection fails, and
// GET /v2/repository/index answers with the merged fleet view.
// Everything the router observes — per-replica request/error/latency,
// placement decisions, spills, health transitions — is exported as the
// micronets_mesh_* metric family.
package mesh
