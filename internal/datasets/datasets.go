// Package datasets synthesizes stand-ins for the three TinyMLperf datasets
// the paper evaluates on (§4), none of which can be redistributed here:
//
//   - Google Speech Commands v2 (KWS)  -> formant-synthesized keywords
//   - Visual Wake Words (VWW)          -> rendered person/no-person scenes
//   - MIMII slide rail (AD)            -> harmonic machine-sound generator
//
// Each generator exercises the identical downstream code path as the real
// dataset (MFCC/log-mel front ends, augmentation, training, AUC scoring)
// and preserves the property the experiments rely on: class structure that
// is learnable, with difficulty scaling so larger models score higher.
// See DESIGN.md ("Substitutions").
package datasets

import (
	"math"
	"math/rand"

	"micronets/internal/dsp"
	"micronets/internal/tensor"
)

// Sample is one labeled example.
type Sample struct {
	X     *tensor.Tensor
	Label int
}

// Dataset is an in-memory labeled dataset.
type Dataset struct {
	Samples    []Sample
	NumClasses int
	// Shape of each sample, [h,w,c].
	H, W, C int
}

// Batch assembles samples[idxs] into a single [n,h,w,c] tensor + labels.
func (d *Dataset) Batch(idxs []int) (*tensor.Tensor, []int) {
	n := len(idxs)
	x := tensor.New(n, d.H, d.W, d.C)
	labels := make([]int, n)
	per := d.H * d.W * d.C
	for i, idx := range idxs {
		copy(x.Data[i*per:(i+1)*per], d.Samples[idx].X.Data)
		labels[i] = d.Samples[idx].Label
	}
	return x, labels
}

// RandomBatch samples a batch uniformly with replacement.
func (d *Dataset) RandomBatch(rng *rand.Rand, n int) (*tensor.Tensor, []int) {
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = rng.Intn(len(d.Samples))
	}
	return d.Batch(idxs)
}

// Split partitions the dataset into train/test with the given test
// fraction, shuffled by rng.
func (d *Dataset) Split(rng *rand.Rand, testFrac float64) (train, test *Dataset) {
	perm := rng.Perm(len(d.Samples))
	nTest := int(float64(len(d.Samples)) * testFrac)
	mk := func(idxs []int) *Dataset {
		out := &Dataset{NumClasses: d.NumClasses, H: d.H, W: d.W, C: d.C}
		for _, i := range idxs {
			out.Samples = append(out.Samples, d.Samples[i])
		}
		return out
	}
	return mk(perm[nTest:]), mk(perm[:nTest])
}

// ---------------------------------------------------------------------------
// Keyword spotting (Google Speech Commands stand-in).

// KWSOptions configures the synthetic keyword generator.
type KWSOptions struct {
	// NumClasses defaults to 12: 10 keywords + "silence" + "unknown",
	// matching the TinyMLperf task definition (§4.2).
	NumClasses int
	// PerClass is the number of clips per class.
	PerClass int
	// ClipSeconds defaults to 1.0 (the task's 1-second window).
	ClipSeconds float64
	// NoiseLevel is the background-noise amplitude (augmentation, §4.2).
	NoiseLevel float64
	// JitterMS is the random timing jitter applied to each clip.
	JitterMS float64
	Seed     int64
}

func (o KWSOptions) withDefaults() KWSOptions {
	if o.NumClasses == 0 {
		o.NumClasses = 12
	}
	if o.PerClass == 0 {
		o.PerClass = 20
	}
	if o.ClipSeconds == 0 {
		o.ClipSeconds = 1
	}
	if o.NoiseLevel == 0 {
		o.NoiseLevel = 0.05
	}
	if o.JitterMS == 0 {
		o.JitterMS = 40
	}
	return o
}

// keywordSignature returns the formant frequencies (Hz) that define one
// synthetic keyword class: a two-"syllable" pattern of three formants,
// deterministic per class.
func keywordSignature(class int) [2][3]float64 {
	rng := rand.New(rand.NewSource(int64(7919 + class*104729)))
	var sig [2][3]float64
	for s := 0; s < 2; s++ {
		base := 180 + rng.Float64()*220 // fundamental 180..400 Hz
		sig[s][0] = base
		sig[s][1] = base * (2.2 + rng.Float64()*1.8)
		sig[s][2] = base * (4.5 + rng.Float64()*3.5)
	}
	return sig
}

// SynthKeyword renders one clip of the given class at 16 kHz. Class 10 is
// "silence" (noise floor only); class 11 is "unknown" (a random signature
// drawn per clip, as the unknown class mixes many words).
func SynthKeyword(rng *rand.Rand, class int, opts KWSOptions) []float64 {
	o := opts.withDefaults()
	n := int(16000 * o.ClipSeconds)
	sig := make([]float64, n)
	// Background noise (applied to every clip, per the training recipe).
	for i := range sig {
		sig[i] = rng.NormFloat64() * o.NoiseLevel
	}
	if class == 10 { // silence
		return sig
	}
	var formants [2][3]float64
	if class == 11 { // unknown: random word each time
		formants = keywordSignature(1000 + rng.Intn(100000))
	} else {
		formants = keywordSignature(class)
	}
	// Word occupies ~0.5 s centered with timing jitter.
	jitter := int(o.JitterMS / 1000 * 16000 * (rng.Float64()*2 - 1))
	start := n/4 + jitter
	if start < 0 {
		start = 0
	}
	dur := n / 2
	half := dur / 2
	for s := 0; s < 2; s++ {
		segStart := start + s*half
		// Per-utterance pitch variation.
		pitchScale := 1 + rng.NormFloat64()*0.03
		for i := 0; i < half; i++ {
			t := float64(segStart+i) / 16000
			// Hann envelope over the syllable.
			env := 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(half)))
			var v float64
			for f, freq := range formants[s] {
				amp := 1.0 / float64(f+1)
				v += amp * math.Sin(2*math.Pi*freq*pitchScale*t)
			}
			idx := segStart + i
			if idx >= 0 && idx < n {
				sig[idx] += 0.5 * env * v
			}
		}
	}
	return sig
}

// SynthKWS builds a complete synthetic keyword-spotting dataset as 49x10x1
// MFCC tensors (the paper's input representation).
func SynthKWS(opts KWSOptions) *Dataset {
	o := opts.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	cfg := dsp.KWSConfig()
	ds := &Dataset{NumClasses: o.NumClasses, H: 49, W: 10, C: 1}
	for class := 0; class < o.NumClasses; class++ {
		for i := 0; i < o.PerClass; i++ {
			sig := SynthKeyword(rng, class, o)
			feat := dsp.NormalizeMeanStd(dsp.Extract(cfg, sig))
			ds.Samples = append(ds.Samples, Sample{X: feat, Label: class})
		}
	}
	return ds
}

// ---------------------------------------------------------------------------
// Visual wake words (person/no-person stand-in).

// VWWOptions configures the synthetic scene renderer.
type VWWOptions struct {
	// Size is the square grayscale resolution (the paper resizes to 50 for
	// the small MCU and 160 for the medium one, §5.2.1).
	Size     int
	PerClass int
	Seed     int64
}

func (o VWWOptions) withDefaults() VWWOptions {
	if o.Size == 0 {
		o.Size = 50
	}
	if o.PerClass == 0 {
		o.PerClass = 100
	}
	return o
}

// renderScene draws background clutter (rectangles and gradients) and, for
// person scenes, a person-like figure: a head disc over a torso ellipse
// with two legs — enough structure that detecting it requires real spatial
// features, not just first-order statistics.
func renderScene(rng *rand.Rand, size int, person bool) *tensor.Tensor {
	img := tensor.New(size, size, 1)
	// Background gradient.
	gx := rng.Float64()*2 - 1
	gy := rng.Float64()*2 - 1
	base := rng.Float64()*0.4 + 0.2
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			v := base + 0.25*(gx*float64(x)/float64(size)+gy*float64(y)/float64(size))
			img.Data[y*size+x] = float32(v)
		}
	}
	// Clutter rectangles (buildings, furniture...).
	for i := 0; i < 3+rng.Intn(4); i++ {
		x0, y0 := rng.Intn(size), rng.Intn(size)
		w, h := 2+rng.Intn(size/3), 2+rng.Intn(size/3)
		shade := float32(rng.Float64())
		for y := y0; y < y0+h && y < size; y++ {
			for x := x0; x < x0+w && x < size; x++ {
				img.Data[y*size+x] = img.Data[y*size+x]*0.3 + shade*0.7
			}
		}
	}
	if person {
		// Person occupying >=0.5% of the frame (the dataset's labeling
		// rule): scale 15-45% of frame height.
		ph := float64(size) * (0.15 + rng.Float64()*0.3)
		cx := float64(size)*0.15 + rng.Float64()*float64(size)*0.7
		cy := float64(size)*0.2 + rng.Float64()*float64(size)*0.6
		shade := float32(0.05 + rng.Float64()*0.25) // darker silhouette
		if rng.Float64() < 0.3 {
			shade = float32(0.75 + rng.Float64()*0.2) // sometimes bright
		}
		headR := ph * 0.18
		torsoW := ph * 0.3
		torsoH := ph * 0.45
		put := func(x, y int) {
			if x >= 0 && x < size && y >= 0 && y < size {
				img.Data[y*size+x] = shade
			}
		}
		// Head.
		for y := -int(headR); y <= int(headR); y++ {
			for x := -int(headR); x <= int(headR); x++ {
				if float64(x*x+y*y) <= headR*headR {
					put(int(cx)+x, int(cy)-int(torsoH/2+headR)+y)
				}
			}
		}
		// Torso ellipse.
		for y := -int(torsoH / 2); y <= int(torsoH/2); y++ {
			for x := -int(torsoW / 2); x <= int(torsoW/2); x++ {
				nx := float64(x) / (torsoW / 2)
				ny := float64(y) / (torsoH / 2)
				if nx*nx+ny*ny <= 1 {
					put(int(cx)+x, int(cy)+y)
				}
			}
		}
		// Legs.
		legLen := int(ph * 0.35)
		legW := int(math.Max(1, torsoW*0.22))
		for l := 0; l < 2; l++ {
			off := int(torsoW/4) * (2*l - 1)
			for y := 0; y < legLen; y++ {
				for x := -legW / 2; x <= legW/2; x++ {
					put(int(cx)+off+x, int(cy)+int(torsoH/2)+y)
				}
			}
		}
	}
	// Sensor noise.
	for i := range img.Data {
		img.Data[i] += float32(rng.NormFloat64() * 0.02)
	}
	return img
}

// SynthVWW builds the synthetic visual-wake-words dataset: label 1 when a
// person-like figure is present, 0 otherwise.
func SynthVWW(opts VWWOptions) *Dataset {
	o := opts.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	ds := &Dataset{NumClasses: 2, H: o.Size, W: o.Size, C: 1}
	for class := 0; class < 2; class++ {
		for i := 0; i < o.PerClass; i++ {
			img := renderScene(rng, o.Size, class == 1)
			ds.Samples = append(ds.Samples, Sample{X: img, Label: class})
		}
	}
	return ds
}

// ---------------------------------------------------------------------------
// Anomaly detection (MIMII slide-rail stand-in).

// ADOptions configures the synthetic machine-sound generator.
type ADOptions struct {
	// Machines is the number of machine IDs (4 in MIMII slide rail).
	Machines int
	// ClipsPerMachine is the number of normal training clips per machine.
	ClipsPerMachine int
	// AnomaliesPerMachine is the number of anomalous test clips.
	AnomaliesPerMachine int
	// ClipSeconds defaults to 3 (enough for one 64-frame spectrogram
	// image; MIMII uses 10 s clips cut into overlapping images).
	ClipSeconds float64
	Seed        int64
}

func (o ADOptions) withDefaults() ADOptions {
	if o.Machines == 0 {
		o.Machines = 4
	}
	if o.ClipsPerMachine == 0 {
		o.ClipsPerMachine = 16
	}
	if o.AnomaliesPerMachine == 0 {
		o.AnomaliesPerMachine = 8
	}
	if o.ClipSeconds == 0 {
		o.ClipSeconds = 3
	}
	return o
}

// machineSignature returns the base frequency and harmonic amplitudes of
// one machine ID, deterministic per ID.
func machineSignature(id int) (base float64, harmonics []float64) {
	rng := rand.New(rand.NewSource(int64(33301 + id*7349)))
	base = 60 + rng.Float64()*180 // 60..240 Hz rotation fundamental
	harmonics = make([]float64, 8)
	for i := range harmonics {
		harmonics[i] = rng.Float64() / float64(i+1)
	}
	return base, harmonics
}

// SynthMachineClip renders one machine-sound clip. Anomalous clips inject
// the MIMII failure signatures: a detuned fundamental, a loud interloper
// harmonic, and broadband rattle bursts.
func SynthMachineClip(rng *rand.Rand, machine int, anomalous bool, opts ADOptions) []float64 {
	o := opts.withDefaults()
	n := int(16000 * o.ClipSeconds)
	base, harm := machineSignature(machine)
	if anomalous {
		base *= 1 + 0.08*(rng.Float64()+0.5) // bearing slip detune
	}
	sig := make([]float64, n)
	phase := rng.Float64() * 2 * math.Pi
	for i := 0; i < n; i++ {
		t := float64(i) / 16000
		var v float64
		for h, amp := range harm {
			v += amp * math.Sin(2*math.Pi*base*float64(h+1)*t+phase)
		}
		// Slide-rail movement: slow amplitude modulation.
		v *= 0.6 + 0.4*math.Sin(2*math.Pi*0.8*t)
		sig[i] = 0.3*v + rng.NormFloat64()*0.02
	}
	if anomalous {
		// Interloper harmonic.
		f := base * (2.5 + rng.Float64()*3)
		for i := 0; i < n; i++ {
			t := float64(i) / 16000
			sig[i] += 0.15 * math.Sin(2*math.Pi*f*t)
		}
		// Rattle bursts.
		for b := 0; b < 4+rng.Intn(4); b++ {
			at := rng.Intn(n - 800)
			for i := 0; i < 800; i++ {
				sig[at+i] += rng.NormFloat64() * 0.25 * math.Exp(-float64(i)/300)
			}
		}
	}
	return sig
}

// ADSample is one spectrogram image with machine ID and anomaly ground
// truth (the label used for the self-supervised protocol is the machine
// ID; Anomalous is only used for AUC scoring).
type ADSample struct {
	X         *tensor.Tensor // 32x32x1 downsampled log-mel image (§4.3)
	MachineID int
	Anomalous bool
}

// ADDataset holds normal training images and a mixed test set.
type ADDataset struct {
	Train []ADSample // all normal
	Test  []ADSample // normal + anomalous
}

// clipToImages converts a clip to 32x32 spectrogram images per §4.3:
// 64-mel log spectrogram, 64-frame stacks, bilinear-downsampled to 32x32.
func clipToImages(sig []float64) []*tensor.Tensor {
	cfg := dsp.ADConfig()
	spec := dsp.Extract(cfg, sig)
	imgs := dsp.StackSpectrogramImages(spec, 64, 20)
	out := make([]*tensor.Tensor, 0, len(imgs))
	for _, im := range imgs {
		big := im.Reshape(1, 64, 64, 1)
		small := tensor.BilinearResize(big, 32, 32).Reshape(32, 32, 1)
		out = append(out, dsp.NormalizeMeanStd(small))
	}
	return out
}

// SynthAD builds the synthetic anomaly-detection dataset.
func SynthAD(opts ADOptions) *ADDataset {
	o := opts.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	ds := &ADDataset{}
	for id := 0; id < o.Machines; id++ {
		for i := 0; i < o.ClipsPerMachine; i++ {
			for _, img := range clipToImages(SynthMachineClip(rng, id, false, o)) {
				ds.Train = append(ds.Train, ADSample{X: img, MachineID: id})
			}
		}
		// Test: held-out normals plus anomalies.
		for i := 0; i < o.AnomaliesPerMachine; i++ {
			for _, img := range clipToImages(SynthMachineClip(rng, id, false, o)) {
				ds.Test = append(ds.Test, ADSample{X: img, MachineID: id})
			}
			for _, img := range clipToImages(SynthMachineClip(rng, id, true, o)) {
				ds.Test = append(ds.Test, ADSample{X: img, MachineID: id, Anomalous: true})
			}
		}
	}
	return ds
}

// ClassifierDataset converts AD training samples into a machine-ID
// classification dataset (the self-supervised reformulation of §4.3).
func (d *ADDataset) ClassifierDataset() *Dataset {
	out := &Dataset{NumClasses: 4, H: 32, W: 32, C: 1}
	for _, s := range d.Train {
		out.Samples = append(out.Samples, Sample{X: s.X, Label: s.MachineID})
	}
	return out
}

// ---------------------------------------------------------------------------
// Quick variants for accuracy-in-the-loop search.

// The quick datasets below are the small-budget editions the NAS finalist
// re-rank trains on: big enough that a better architecture scores higher,
// small enough that re-ranking K finalists costs seconds, and keyed by a
// single seed so every finalist of one search run competes on identical
// data.

// QuickKWS builds the small-budget keyword-spotting dataset (16 clips per
// class) used to re-rank search finalists with real training runs.
func QuickKWS(seed int64) *Dataset {
	return SynthKWS(KWSOptions{PerClass: 16, Seed: seed})
}

// QuickVWW builds the small-budget visual-wake-words dataset (40 scenes
// per class at 50x50) for finalist re-ranking.
func QuickVWW(seed int64) *Dataset {
	return SynthVWW(VWWOptions{Size: 50, PerClass: 40, Seed: seed})
}

// QuickAD builds the small-budget anomaly-detection dataset (8 normal
// clips and 3 anomalous test clips per machine) for finalist re-ranking
// under the §4.3 AUC protocol.
func QuickAD(seed int64) *ADDataset {
	return SynthAD(ADOptions{ClipsPerMachine: 8, AnomaliesPerMachine: 3, Seed: seed})
}
