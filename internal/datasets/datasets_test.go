package datasets

import (
	"math"
	"math/rand"
	"testing"
)

func TestSynthKWSShapes(t *testing.T) {
	ds := SynthKWS(KWSOptions{PerClass: 2, Seed: 1})
	if ds.NumClasses != 12 {
		t.Fatalf("classes = %d", ds.NumClasses)
	}
	if len(ds.Samples) != 24 {
		t.Fatalf("samples = %d", len(ds.Samples))
	}
	for _, s := range ds.Samples {
		if s.X.Shape[0] != 49 || s.X.Shape[1] != 10 || s.X.Shape[2] != 1 {
			t.Fatalf("KWS sample shape %v", s.X.Shape)
		}
	}
}

func TestKeywordClassesDistinct(t *testing.T) {
	// Same-class clips must be closer (on average) than cross-class clips
	// in MFCC space, otherwise nothing can learn the task.
	opts := KWSOptions{PerClass: 3, Seed: 2}
	ds := SynthKWS(opts)
	byClass := map[int][][]float32{}
	for _, s := range ds.Samples {
		byClass[s.Label] = append(byClass[s.Label], s.X.Data)
	}
	dist := func(a, b []float32) float64 {
		var d float64
		for i := range a {
			dd := float64(a[i] - b[i])
			d += dd * dd
		}
		return math.Sqrt(d)
	}
	within := dist(byClass[0][0], byClass[0][1])
	across := dist(byClass[0][0], byClass[3][0])
	if within >= across {
		t.Fatalf("class 0 internal distance %.2f >= cross-class %.2f", within, across)
	}
}

func TestSilenceClassIsQuiet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sil := SynthKeyword(rng, 10, KWSOptions{})
	kw := SynthKeyword(rng, 0, KWSOptions{})
	var eS, eK float64
	for i := range sil {
		eS += sil[i] * sil[i]
		eK += kw[i] * kw[i]
	}
	if eS >= eK/2 {
		t.Fatalf("silence energy %.2f not well below keyword %.2f", eS, eK)
	}
}

func TestSynthVWWShapesAndBalance(t *testing.T) {
	ds := SynthVWW(VWWOptions{Size: 32, PerClass: 5, Seed: 4})
	if len(ds.Samples) != 10 || ds.NumClasses != 2 {
		t.Fatalf("samples %d classes %d", len(ds.Samples), ds.NumClasses)
	}
	count := map[int]int{}
	for _, s := range ds.Samples {
		count[s.Label]++
		if s.X.Shape[0] != 32 || s.X.Shape[1] != 32 {
			t.Fatalf("VWW sample shape %v", s.X.Shape)
		}
	}
	if count[0] != 5 || count[1] != 5 {
		t.Fatalf("class balance %v", count)
	}
}

func TestSynthADStructure(t *testing.T) {
	ds := SynthAD(ADOptions{Machines: 2, ClipsPerMachine: 1, AnomaliesPerMachine: 1, ClipSeconds: 3, Seed: 5})
	if len(ds.Train) == 0 || len(ds.Test) == 0 {
		t.Fatal("empty AD dataset")
	}
	for _, s := range ds.Train {
		if s.Anomalous {
			t.Fatal("training split must contain only normal samples (§4.3)")
		}
		if s.X.Shape[0] != 32 || s.X.Shape[1] != 32 {
			t.Fatalf("AD image shape %v", s.X.Shape)
		}
	}
	hasAnom, hasNorm := false, false
	for _, s := range ds.Test {
		if s.Anomalous {
			hasAnom = true
		} else {
			hasNorm = true
		}
	}
	if !hasAnom || !hasNorm {
		t.Fatal("test split must mix normal and anomalous")
	}
	cls := ds.ClassifierDataset()
	if cls.NumClasses != 4 {
		t.Fatalf("classifier dataset classes = %d", cls.NumClasses)
	}
}

func TestMachineSignaturesDiffer(t *testing.T) {
	b0, _ := machineSignature(0)
	b1, _ := machineSignature(1)
	if b0 == b1 {
		t.Fatal("machine IDs must have distinct fundamentals")
	}
}

func TestAnomalousClipsDiffer(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	opts := ADOptions{ClipSeconds: 1}
	norm := SynthMachineClip(rng, 0, false, opts)
	anom := SynthMachineClip(rng, 0, true, opts)
	var dn, da float64
	for i := range norm {
		dn += norm[i] * norm[i]
		da += anom[i] * anom[i]
	}
	if da <= dn {
		t.Fatal("anomalous clips must carry extra energy (rattle + interloper)")
	}
}

func TestBatchAndSplit(t *testing.T) {
	ds := SynthVWW(VWWOptions{Size: 16, PerClass: 10, Seed: 7})
	rng := rand.New(rand.NewSource(8))
	x, labels := ds.RandomBatch(rng, 4)
	if x.Shape[0] != 4 || len(labels) != 4 {
		t.Fatalf("batch shapes %v %d", x.Shape, len(labels))
	}
	train, test := ds.Split(rng, 0.25)
	if len(train.Samples) != 15 || len(test.Samples) != 5 {
		t.Fatalf("split %d/%d", len(train.Samples), len(test.Samples))
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := SynthVWW(VWWOptions{Size: 16, PerClass: 2, Seed: 42})
	b := SynthVWW(VWWOptions{Size: 16, PerClass: 2, Seed: 42})
	for i := range a.Samples {
		for j := range a.Samples[i].X.Data {
			if a.Samples[i].X.Data[j] != b.Samples[i].X.Data[j] {
				t.Fatal("same seed must reproduce the dataset")
			}
		}
	}
}
