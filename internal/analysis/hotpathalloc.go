package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPathAlloc is the static complement of the AllocsPerRun CI gates: no
// allocation-inducing construct may appear in a function statically
// reachable from the zero-alloc serve path. The roots are
// Interpreter.Invoke / InvokeBatchInto, the Batcher flush path, and the
// bound op closures produced by kernels.BindOp and the engines' bind*
// methods (closures built at Prepare time but *executed* per invoke).
//
// Reachability is a worklist over function declarations and literals:
//
//   - static calls and function-value references resolve through
//     go/types objects;
//   - interface method calls widen by class-hierarchy analysis over
//     every module-local named type (this is how eng.Conv2D inside a
//     bound closure reaches the ref and gemm engines);
//   - when a package first contributes a hot function, functions
//     referenced from its package-level var initializers join the set
//     (this is how the engine function-pointer tables — gemmStoreRows,
//     gemmDensePanels and the wide variants — become hot);
//   - a `//microvet:hotpath-stop <reason>` doc directive marks a
//     deliberate slow-path boundary (lazy pool growth, opt-in tracing)
//     that traversal does not cross.
//
// Inside a hot function the analyzer flags: make/new/append, slice and
// map composite literals, function literals (closure allocation), fmt.*
// calls, string concatenation, string<->[]byte conversions, and
// variadic-interface boxing. Intentional allocations on cold branches
// are blessed in place with //microvet:ignore hotpathalloc <reason>.
type HotPathAlloc struct {
	// Roots are funcKey patterns ("pkg/path.Recv.Method"; trailing *
	// is a prefix wildcard) whose bodies are hot.
	Roots []string
	// ClosureContainers are funcKey patterns whose function literals are
	// hot (the bound op closures) while the containing body itself is
	// bind-time code and stays cold unless reached by a call edge.
	ClosureContainers []string

	// Reachable is filled in by Run: the funcKeys of every hot function
	// declaration. Exported so tests can prove the reachability set
	// covers the same functions the AllocsPerRun gates measure.
	Reachable map[string]bool
	// Origin maps each reachable funcKey to the key of the unit that
	// first reached it ("" for roots) — the edge that explains WHY a
	// function is considered hot.
	Origin map[string]string
}

// NewHotPathAlloc returns the analyzer with the production roots.
func NewHotPathAlloc() *HotPathAlloc {
	return &HotPathAlloc{
		Roots: []string{
			"micronets/internal/tflm.Interpreter.Invoke",
			"micronets/internal/tflm.Interpreter.InvokeBatchInto",
			"micronets/internal/serve.Batcher.flush",
		},
		ClosureContainers: []string{
			"micronets/internal/kernels.BindOp",
			"micronets/internal/kernels.refEngine.bind*",
			"micronets/internal/kernels.gemmEngine.bind*",
		},
	}
}

func (*HotPathAlloc) Name() string { return "hotpathalloc" }
func (*HotPathAlloc) Doc() string {
	return "no allocation-inducing constructs reachable from the zero-alloc serve path"
}

// unit is one analyzable function body: a declaration or a literal.
type unit struct {
	pkg  *Package
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	key  string
}

func (u *unit) body() *ast.BlockStmt {
	if u.decl != nil {
		return u.decl.Body
	}
	return u.lit.Body
}

func matchPattern(patterns []string, key string) bool {
	for _, p := range patterns {
		if strings.HasSuffix(p, "*") {
			if strings.HasPrefix(key, strings.TrimSuffix(p, "*")) {
				return true
			}
		} else if p == key {
			return true
		}
	}
	return false
}

func (a *HotPathAlloc) Run(pass *Pass) {
	a.Reachable = make(map[string]bool)
	a.Origin = make(map[string]string)

	// Index every function declaration by key and by types.Object, and
	// every module-local named type for CHA.
	byKey := make(map[string]*unit)
	byObj := make(map[types.Object]*unit)
	stopped := make(map[*unit]bool)
	var namedTypes []*types.Named
	litUnits := make(map[*ast.FuncLit]*unit)

	for _, pkg := range pass.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if n, ok := tn.Type().(*types.Named); ok {
					namedTypes = append(namedTypes, n)
				}
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				u := &unit{pkg: pkg, decl: fd, key: funcKey(pkg.Path, fd)}
				byKey[u.key] = u
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					byObj[obj] = u
				}
				if reason, ok := docHas(fd.Doc, stopPrefix); ok {
					if reason == "" {
						pass.Reportf(fd.Pos(), "microvet:hotpath-stop needs a reason: //microvet:hotpath-stop <why traversal stops here>")
					}
					stopped[u] = true
				}
			}
		}
	}
	litUnit := func(parent *unit, lit *ast.FuncLit) *unit {
		if u, ok := litUnits[lit]; ok {
			return u
		}
		u := &unit{pkg: parent.pkg, lit: lit, key: parent.key + "$lit"}
		litUnits[lit] = u
		return u
	}

	hot := make(map[*unit]bool)
	hotPkgs := make(map[*Package]bool)
	var work []*unit
	enqueue := func(u *unit, from string) {
		if u == nil || hot[u] || stopped[u] {
			return
		}
		hot[u] = true
		a.Origin[u.key] = from
		if u.decl != nil {
			a.Reachable[u.key] = true
		}
		work = append(work, u)
	}

	// Seed the roots and the container closures.
	for key, u := range byKey {
		if matchPattern(a.Roots, key) {
			enqueue(u, "")
		}
		if matchPattern(a.ClosureContainers, key) {
			parent := u
			ast.Inspect(u.body(), func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					enqueue(litUnit(parent, lit), "")
					return false // nested literals traverse when their parent runs
				}
				return true
			})
		}
	}

	// resolve maps a used function object to the units it may invoke:
	// its own body for concrete functions, every implementing method for
	// interface methods (CHA).
	resolve := func(fn *types.Func) []*unit {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return nil
		}
		recv := sig.Recv()
		if recv == nil || !types.IsInterface(recv.Type()) {
			if u := byObj[fn]; u != nil {
				return []*unit{u}
			}
			return nil
		}
		iface, ok := recv.Type().Underlying().(*types.Interface)
		if !ok {
			return nil
		}
		var out []*unit
		for _, n := range namedTypes {
			if types.IsInterface(n) {
				continue
			}
			if !types.Implements(n, iface) && !types.Implements(types.NewPointer(n), iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(n), true, fn.Pkg(), fn.Name())
			if m, ok := obj.(*types.Func); ok {
				if u := byObj[m]; u != nil {
					out = append(out, u)
				}
			}
		}
		return out
	}

	for len(work) > 0 {
		u := work[0]
		work = work[1:]

		// First hot function of a package: its package-level var
		// initializers' function references (the engine dispatch tables)
		// become reachable too.
		if !hotPkgs[u.pkg] {
			hotPkgs[u.pkg] = true
			for _, f := range u.pkg.Files {
				for _, decl := range f.Decls {
					gd, ok := decl.(*ast.GenDecl)
					if !ok {
						continue
					}
					for _, spec := range gd.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, val := range vs.Values {
							ast.Inspect(val, func(n ast.Node) bool {
								if id, ok := n.(*ast.Ident); ok {
									if fn, ok := u.pkg.Info.Uses[id].(*types.Func); ok {
										for _, t := range resolve(fn) {
											enqueue(t, u.pkg.Path+" package var init")
										}
									}
								}
								return true
							})
						}
					}
				}
			}
		}

		a.scanUnit(pass, u, func(lit *ast.FuncLit) { enqueue(litUnit(u, lit), u.key) },
			func(fn *types.Func) {
				for _, t := range resolve(fn) {
					enqueue(t, u.key)
				}
			})
	}
}

// scanUnit walks one hot function body (stopping at nested literals),
// flags allocation constructs, and feeds referenced functions and nested
// literals back to the worklist.
func (a *HotPathAlloc) scanUnit(pass *Pass, u *unit, onLit func(*ast.FuncLit), onFunc func(*types.Func)) {
	info := u.pkg.Info
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if u.lit != x { // the unit itself is not its own nested literal
				pass.Reportf(x.Pos(), "closure allocation on the hot path")
				onLit(x)
				return false
			}
		case *ast.Ident:
			if fn, ok := info.Uses[x].(*types.Func); ok {
				onFunc(fn)
			}
		case *ast.CompositeLit:
			// Keep descending: elements may hide further allocations or
			// call edges of their own.
			switch info.Types[x].Type.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(x.Pos(), "slice literal allocates on the hot path")
			case *types.Map:
				pass.Reportf(x.Pos(), "map literal allocates on the hot path")
			}
		case *ast.BinaryExpr:
			if x.Op.String() == "+" {
				// Constant-folded concatenation never reaches runtime.
				if tv := info.Types[x]; tv.Value == nil {
					if t := info.Types[x.X].Type; t != nil {
						if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
							pass.Reportf(x.OpPos, "string concatenation allocates on the hot path")
						}
					}
				}
			}
		case *ast.CallExpr:
			a.checkCall(pass, u, x)
		}
		return true
	}
	ast.Inspect(u.body(), walk)
}

func (a *HotPathAlloc) checkCall(pass *Pass, u *unit, call *ast.CallExpr) {
	info := u.pkg.Info
	fun := unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make allocates on the hot path")
			case "new":
				pass.Reportf(call.Pos(), "new allocates on the hot path")
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array on the hot path")
			}
			return
		}
	}

	// Conversions: string <-> []byte/[]rune copy their payload.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		dst := tv.Type.Underlying()
		if len(call.Args) == 1 {
			src := info.Types[call.Args[0]].Type
			if src != nil && conversionAllocates(dst, src.Underlying()) {
				pass.Reportf(call.Pos(), "string/byte-slice conversion allocates on the hot path")
			}
		}
		return
	}

	// fmt.* calls allocate (boxing + formatting state).
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if pkgID, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[pkgID].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				pass.Reportf(call.Pos(), "fmt.%s allocates on the hot path", sel.Sel.Name)
				return
			}
		}
	}

	// Variadic ...interface{} parameters box their arguments.
	if sig, ok := info.Types[fun].Type.(*types.Signature); ok && sig.Variadic() && call.Ellipsis == 0 {
		last := sig.Params().At(sig.Params().Len() - 1)
		if slice, ok := last.Type().(*types.Slice); ok && types.IsInterface(slice.Elem()) {
			if len(call.Args) >= sig.Params().Len() {
				pass.Reportf(call.Pos(), "variadic call boxes arguments into interfaces on the hot path")
			}
		}
	}
}

func conversionAllocates(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStr(src))
}
