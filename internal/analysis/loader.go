package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Loader discovers, parses, and type-checks packages for analysis. It is
// deliberately stdlib-only: discovery shells out to `go list -json`,
// module-local imports are type-checked recursively from source, and
// standard-library imports are satisfied from the build cache's export
// data (`go list -export`), since Go no longer ships precompiled .a
// files for importer.Default to find.
type Loader struct {
	Fset *token.FileSet

	// Dir is the working directory for go list (the module root).
	Dir string

	modulePath string
	exports    map[string]string // stdlib import path -> export file
	srcPkgs    map[string]*srcPkg
	stdImp     types.Importer
}

type srcPkg struct {
	pkg   *Package
	files []string // absolute paths of the package's non-test Go files
	err   error
	done  bool
}

type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// NewLoader returns a loader rooted at dir (the module root).
func NewLoader(dir string) *Loader {
	return &Loader{
		Fset:    token.NewFileSet(),
		Dir:     dir,
		exports: make(map[string]string),
		srcPkgs: make(map[string]*srcPkg),
	}
}

// Load resolves the go list patterns (e.g. "./...") to module packages
// and returns them parsed and type-checked, sorted by import path.
// Test files are excluded: microvet checks production invariants.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.goList(append([]string{"-deps", "-export"}, patterns...))
	if err != nil {
		return nil, err
	}
	var roots []string
	for _, p := range listed {
		if p.Standard {
			if p.Export != "" {
				l.exports[p.ImportPath] = p.Export
			}
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Module != nil && l.modulePath == "" {
			l.modulePath = p.Module.Path
		}
	}
	// Re-list without -deps to get exactly the requested packages (the
	// -deps pass above was for harvesting stdlib export data and module
	// deps' metadata).
	direct, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	for _, p := range direct {
		if !p.Standard {
			roots = append(roots, p.ImportPath)
			l.registerDir(p)
		}
	}
	for _, p := range listed {
		if !p.Standard {
			l.registerDir(p)
		}
	}

	var out []*Package
	for _, path := range roots {
		pkg, err := l.importSource(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// registerDir records a listed module package's metadata so importSource
// can parse it later without re-invoking go list.
func (l *Loader) registerDir(p listedPkg) {
	if _, ok := l.srcPkgs[p.ImportPath]; ok {
		return
	}
	files := make([]string, len(p.GoFiles))
	for i, f := range p.GoFiles {
		files[i] = filepath.Join(p.Dir, f)
	}
	l.srcPkgs[p.ImportPath] = &srcPkg{
		pkg:   &Package{Path: p.ImportPath, Name: p.Name, Dir: p.Dir},
		files: files,
	}
}

// goList runs `go list -json=<fields>` with the given arguments and
// decodes the stream of package objects.
func (l *Loader) goList(args []string) ([]listedPkg, error) {
	full := append([]string{"list", "-json=ImportPath,Name,Dir,GoFiles,Standard,Export,Module,Error"}, args...)
	cmd := exec.Command("go", full...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listedPkg
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// importSource parses and type-checks a module-local package (memoized).
// Imports recurse: module-local paths come back through here, stdlib
// paths go through the gc export-data importer.
func (l *Loader) importSource(path string) (*Package, error) {
	sp, ok := l.srcPkgs[path]
	if !ok {
		// Not pre-registered (can happen for fixture imports); list it.
		listed, err := l.goList([]string{path})
		if err != nil || len(listed) == 0 {
			return nil, fmt.Errorf("cannot locate package %s: %v", path, err)
		}
		l.registerDir(listed[0])
		sp = l.srcPkgs[path]
	}
	if sp.done {
		return sp.pkg, sp.err
	}
	sp.done = true
	sp.err = l.check(sp)
	return sp.pkg, sp.err
}

// check parses sp's files and runs the type checker, filling in
// pkg.Files, pkg.Types, and pkg.Info.
func (l *Loader) check(sp *srcPkg) error {
	var files []*ast.File
	for _, name := range sp.files {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		files = append(files, f)
	}
	sp.pkg.Files = files
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			return l.importPath(path)
		}),
		Error: func(err error) {}, // collect only the first via Check's return
	}
	tpkg, err := conf.Check(sp.pkg.Path, l.Fset, files, info)
	if err != nil {
		return fmt.Errorf("typecheck %s: %v", sp.pkg.Path, err)
	}
	sp.pkg.Types = tpkg
	sp.pkg.Info = info
	return nil
}

// importPath satisfies an import encountered while type-checking:
// module-local packages recurse through importSource, unsafe maps to
// types.Unsafe, everything else is treated as stdlib and resolved from
// gc export data.
func (l *Loader) importPath(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.modulePath != "" && (path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")) {
		pkg, err := l.importSource(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if _, ok := l.srcPkgs[path]; ok { // fixture-local fake module paths
		pkg, err := l.importSource(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if l.stdImp == nil {
		l.stdImp = importer.ForCompiler(l.Fset, "gc", func(p string) (io.ReadCloser, error) {
			file, ok := l.exports[p]
			if !ok {
				// Export data not harvested yet (e.g. an import only
				// reachable from a fixture): ask go list for it.
				listed, err := l.goList([]string{"-export", p})
				if err != nil || len(listed) == 0 || listed[0].Export == "" {
					return nil, fmt.Errorf("no export data for %s: %v", p, err)
				}
				file = listed[0].Export
				l.exports[p] = file
			}
			return os.Open(file)
		})
	}
	return l.stdImp.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// LoadDir loads a single directory of Go files as a package with the
// given synthetic import path. Used by tests to load fixture packages
// under testdata/ (which go list ignores) at import paths that match the
// analyzers' production configuration, e.g.
// "micronets/internal/fixture/droppederr".
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := ctx.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if !match {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	if l.modulePath == "" {
		// Fixture loads may happen before any Load call; learn the module
		// path so module-local imports from fixtures still resolve.
		listed, err := l.goList([]string{"."})
		if err == nil && len(listed) > 0 && listed[0].Module != nil {
			l.modulePath = listed[0].Module.Path
		}
	}
	sp := &srcPkg{pkg: &Package{Path: importPath, Dir: dir}, files: files}
	l.srcPkgs[importPath] = sp
	sp.done = true
	sp.err = l.check(sp)
	if sp.err != nil {
		return nil, sp.err
	}
	sp.pkg.Name = sp.pkg.Types.Name()
	return sp.pkg, nil
}
