// Package analysis implements microvet, the repo-specific static
// analyzer driver behind `go run ./cmd/microvet`. It is built purely on
// the standard library (go/parser, go/ast, go/types; package discovery
// via `go list -json`), since the module deliberately has no third-party
// dependencies — including golang.org/x/tools.
//
// Each analyzer encodes one invariant the runtime earned the hard way
// and would otherwise only defend at runtime or in review:
//
//   - hotpathalloc: no allocation-inducing constructs in functions
//     statically reachable from the zero-alloc serve path (the static
//     complement of the AllocsPerRun CI gates).
//   - preparedwrite: prepared kernel/model state is immutable outside
//     the Prepare* construction path (the shared-weights invariant).
//   - droppederr: no silently discarded error values in internal/
//     packages (the `lat, _ :=` silent-metrics bug class).
//   - lockguard: fields annotated `// guarded by X.mu` are only touched
//     by functions that lock that mutex (syntactic approximation).
//   - metricname: metric literals follow the micronets_<subsystem>_...
//     exposition conventions and stay unique across packages.
//   - pkgdoc: first-class packages carry a package comment.
//
// Violations that are intentional are blessed in place with a
// `//microvet:ignore <analyzer> <reason>` comment; the reason is
// mandatory. See docs/ANALYSIS.md for the full protocol.
package analysis
