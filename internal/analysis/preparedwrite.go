package analysis

import (
	"go/ast"
	"strings"
)

// PreparedWrite enforces the PR 8 shared-state invariant: a prepared
// model's packed panels, folded biases, and per-op contexts are shared
// by every pool replica, so once construction finishes they are
// immutable. Any assignment whose destination reaches through one of the
// target types (kernels.PreparedModel, kernels.Ctx, tflm.Prepared) is a
// data race against every other replica — unless it happens inside the
// Prepare* construction path.
//
// Composite-literal construction (&Ctx{...}) is naturally exempt: keyed
// literal fields are not assignment statements.
type PreparedWrite struct {
	// Targets are qualified names of the immutable-after-construction
	// types, e.g. "micronets/internal/kernels.PreparedModel".
	Targets []string
	// AllowPrefixes are function-name prefixes allowed to write
	// (the construction path).
	AllowPrefixes []string
}

// NewPreparedWrite returns the analyzer with the production configuration.
func NewPreparedWrite() *PreparedWrite {
	return &PreparedWrite{
		Targets: []string{
			"micronets/internal/kernels.PreparedModel",
			"micronets/internal/kernels.Ctx",
			"micronets/internal/tflm.Prepared",
		},
		AllowPrefixes: []string{"Prepare", "prepare"},
	}
}

func (*PreparedWrite) Name() string { return "preparedwrite" }
func (*PreparedWrite) Doc() string {
	return "prepared model/kernel state is immutable outside the Prepare* construction path"
}

func (a *PreparedWrite) Run(pass *Pass) {
	targets := make(map[string]bool, len(a.Targets))
	for _, t := range a.Targets {
		targets[t] = true
	}
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if a.allowed(fd.Name.Name) {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch stmt := n.(type) {
					case *ast.AssignStmt:
						for _, lhs := range stmt.Lhs {
							a.checkDest(pass, pkg, targets, lhs, fd.Name.Name)
						}
					case *ast.IncDecStmt:
						a.checkDest(pass, pkg, targets, stmt.X, fd.Name.Name)
					}
					return true
				})
			}
		}
	}
}

func (a *PreparedWrite) allowed(name string) bool {
	for _, p := range a.AllowPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// checkDest walks an assignment destination inward (selectors, indexes,
// derefs) and reports if any step reaches through a target type: writing
// pm.ctxs[i].Mults[j] mutates state shared across replicas no matter how
// deep the chain goes.
func (a *PreparedWrite) checkDest(pass *Pass, pkg *Package, targets map[string]bool, dest ast.Expr, funcName string) {
	for {
		dest = unparen(dest)
		var inner ast.Expr
		switch x := dest.(type) {
		case *ast.SelectorExpr:
			inner = x.X
		case *ast.IndexExpr:
			inner = x.X
		case *ast.StarExpr:
			inner = x.X
		default:
			return
		}
		if n := namedOf(pkg.Info.Types[inner].Type); n != nil && targets[qualifiedName(n)] {
			pass.Reportf(dest.Pos(),
				"write to %s state in %s; prepared state is shared across pool replicas and only the Prepare* construction path may mutate it",
				qualifiedName(n), funcName)
			return
		}
		dest = inner
	}
}
